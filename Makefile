# Development entry points. CI runs the same commands (.github/workflows/ci.yml).

GO        ?= go
BENCHTIME ?= 2s

.PHONY: all build test race lint bench clean

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }
	$(GO) vet ./...
	$(GO) run ./cmd/synclint ./...

# bench runs the E1 exploration-throughput benchmark (pool and prune
# variants included) and archives the numbers — ns/op, allocs/op, and
# schedules/sec per variant — as BENCH_explore.json. Override BENCHTIME
# (e.g. BENCHTIME=1x) for a smoke run.
bench:
	$(GO) test -run '^$$' -bench BenchmarkE1ExploreThroughput -benchmem -benchtime $(BENCHTIME) -count 1 . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_explore.json

clean:
	rm -f BENCH_explore.json
