# Development entry points. CI runs the same commands (.github/workflows/ci.yml).

GO        ?= go
BENCHTIME ?= 2s

.PHONY: all build test race lint bench bench-check hunt load load-check load-million fuzz xcheck dpor-audit clean

# Load-run knobs for make load; see cmd/syncload -h for the full set.
LOAD_RATE     ?= 2000
LOAD_DURATION ?= 2s

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }
	$(GO) vet ./...
	$(GO) run ./cmd/synclint ./...

# bench runs the E1 exploration benchmarks — throughput variants, the
# checkpointed-DFS pooled/stream/checkpoint column, and the DPOR
# schedules-to-finding/-exhaustion hunts — and archives the numbers
# (ns/op, allocs/op, schedules/sec, schedules-to-finding,
# schedules-to-exhaustion, explored-fraction per variant) into
# BENCH_explore.json. The file is a committed baseline: benchjson
# merges fresh runs into it line by line instead of overwriting, so a
# partial -bench filter never loses the other variants. Override
# BENCHTIME (e.g. BENCHTIME=1x) for a smoke run.
bench:
	$(GO) test -run '^$$' -bench BenchmarkE1 -benchmem -benchtime $(BENCHTIME) -count 1 . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_explore.json

# bench-check regression-gates a fresh bench run against the committed
# BENCH_explore.json baseline: any variant whose goodness ratio on a
# gated metric (schedules/sec and explored-fraction up,
# schedules-to-finding and schedules-to-exhaustion down) falls below
# TOLERANCE fails. Metrics the baseline predates are skipped, so a
# pre-DPOR baseline never fails a post-DPOR run. CI runs this after
# the bench smoke.
TOLERANCE ?= 0.8
bench-check:
	$(GO) test -run '^$$' -bench BenchmarkE1 -benchmem -benchtime $(BENCHTIME) -count 1 . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o bench-fresh.json
	$(GO) run ./cmd/benchjson -compare -tolerance $(TOLERANCE) BENCH_explore.json bench-fresh.json

# load runs the real-runtime evaluation matrix — every mechanism plus the
# scalable semaphore variants × the canonical problem trio under Poisson
# open-loop and fixed-client closed-loop traffic — traced, oracle-judged,
# prefixed with the histogram-harness calibration, then validated and
# archived as BENCH_load.json by benchjson. BENCH_load.json is a committed
# baseline (load-check gates against it). Two steps so syncload's exit
# code (nonzero on a kernel error or oracle violation) is never swallowed
# by the pipe.
load:
	$(GO) run ./cmd/syncload -mech all,variants -rate $(LOAD_RATE) -duration $(LOAD_DURATION) \
		-calibrate -json -o load-raw.json
	$(GO) run ./cmd/benchjson -load -o BENCH_load.json < load-raw.json

# load-check regression-gates a fresh load run against the committed
# BENCH_load.json baseline, direction-aware: throughput down or per-class
# p99 (wait or total) up beyond LOAD_TOLERANCE fails. Pairings only one
# side ran are skipped. CI refreshes the baseline on the same runner first
# (make load), so the gate measures the code, not the machine; latency
# under real scheduling is noisy, hence the generous default floor.
LOAD_TOLERANCE ?= 0.3
load-check:
	$(GO) run ./cmd/syncload -mech all,variants -rate $(LOAD_RATE) -duration $(LOAD_DURATION) \
		-json -o load-fresh-raw.json
	$(GO) run ./cmd/benchjson -load -o load-fresh.json < load-fresh-raw.json
	$(GO) run ./cmd/benchjson -load-compare -tolerance $(LOAD_TOLERANCE) BENCH_load.json load-fresh.json

# load-million is the million-arrival tier: the generator-exactness test
# scaled to 10^6 arrivals, then a 10^6-op open-loop run per scalable
# semaphore variant on the FCFS resource, untraced (3M trace events would
# dominate memory) and without yield-stretched bodies (an offered rate of
# 10^6/s already outruns the absorb rate, so the open-loop backlog — up to
# a million in-flight procs — is the stress; stretching each op would turn
# the run into a goroutine-hoarding contest instead of a semaphore one).
# The baseline FIFO semaphore is deliberately absent: per-op direct
# hand-off under a ~10^6-deep backlog takes minutes, and its numbers live
# in the standard matrix. Calibrated, archived as BENCH_load_million.json.
load-million:
	LOAD_MILLION=1 $(GO) test -run TestGeneratorSustainsBatchedArrivals -v ./internal/load/
	$(GO) run ./cmd/syncload -mech semaphore-fast,semaphore-striped \
		-problem fcfs -arrival poisson -rate 1000000 -ops 1000000 -duration 0s \
		-yields 0 -trace=false -watchdog 10m -calibrate -json -o load-million-raw.json
	$(GO) run ./cmd/benchjson -load -o BENCH_load_million.json < load-million-raw.json

# fuzz is the generated-corpus smoke: FUZZ_N constraint sets from a fixed
# seed, every mechanism plus the naive-gate control, explored under -race
# with a small budget. Findings are shrunk and sealed into fuzz-artifacts/
# and the deterministic repro-fuzz/v1 summary lands in fuzz-summary.json;
# the replay step then re-verifies every sealed artifact in the same
# invocation, so a sealed schedule that no longer reproduces fails the
# target. The sweep itself exits 0 — findings on the control are the
# point, not a failure.
FUZZ_N    ?= 8
FUZZ_SEED ?= 26
fuzz:
	$(GO) run -race ./cmd/syncfuzz -n $(FUZZ_N) -seed $(FUZZ_SEED) \
		-o fuzz-artifacts -summary fuzz-summary.json
	$(GO) run -race ./cmd/syncfuzz -replay fuzz-artifacts

# hunt runs the Figure-1 anomaly search with live progress, shrinks the
# finding to a 1-minimal schedule, and saves it as a replayable artifact
# (exploration exits 1 on a finding — expected here — so the replay step
# is the success check).
hunt:
	-$(GO) run ./cmd/simtrace -mech pathexpr -problem readers-priority \
		-explore -shrink -pool -progress -save-sched figure1-found.sched -quiet
	$(GO) run ./cmd/simtrace -replay figure1-found.sched

# dpor-audit proves the partial-order reduction sound on this tree: the
# full T4 conformance matrix runs with every search doubled — reduced,
# then unreduced at the same budget — and fails if the reduction missed
# any violation rule, then the per-scenario coverage table (T8) reports
# how much of each schedule space the reduced search proved covered.
dpor-audit:
	$(GO) test -run TestDPORMatchesFull ./internal/explore/
	$(GO) run ./cmd/evalsync -experiment T8


# directions: -hunt tries to realize every lockorder/lostwakeup finding
# by schedule exploration (exit 0 — confirmed findings on the seeded
# fixture are the expected outcome, reported per row), and -audit
# replays the sealed counterexample corpus against the static pass,
# failing on any deadlock lockorder no longer flags.
xcheck:
	$(GO) run ./cmd/synclint -hunt
	$(GO) run ./cmd/synclint -audit internal/explore/testdata

# BENCH_explore.json and BENCH_load.json are committed baselines, not
# build products, so clean leaves them alone.
clean:
	rm -f load-raw.json load-fresh-raw.json load-fresh.json soak-stream.ndjson \
		load-million-raw.json BENCH_load_million.json bench-fresh.json figure1-found.sched \
		fuzz-summary.json
	rm -rf fuzz-artifacts
