# Development entry points. CI runs the same commands (.github/workflows/ci.yml).

GO        ?= go
BENCHTIME ?= 2s

.PHONY: all build test race lint bench bench-check hunt load xcheck dpor-audit clean

# Load-run knobs for make load; see cmd/syncload -h for the full set.
LOAD_RATE     ?= 2000
LOAD_DURATION ?= 2s

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }
	$(GO) vet ./...
	$(GO) run ./cmd/synclint ./...

# bench runs the E1 exploration benchmarks — throughput variants, the
# checkpointed-DFS pooled/stream/checkpoint column, and the DPOR
# schedules-to-finding/-exhaustion hunts — and archives the numbers
# (ns/op, allocs/op, schedules/sec, schedules-to-finding,
# schedules-to-exhaustion, explored-fraction per variant) into
# BENCH_explore.json. The file is a committed baseline: benchjson
# merges fresh runs into it line by line instead of overwriting, so a
# partial -bench filter never loses the other variants. Override
# BENCHTIME (e.g. BENCHTIME=1x) for a smoke run.
bench:
	$(GO) test -run '^$$' -bench BenchmarkE1 -benchmem -benchtime $(BENCHTIME) -count 1 . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_explore.json

# bench-check regression-gates a fresh bench run against the committed
# BENCH_explore.json baseline: any variant whose goodness ratio on a
# gated metric (schedules/sec and explored-fraction up,
# schedules-to-finding and schedules-to-exhaustion down) falls below
# TOLERANCE fails. Metrics the baseline predates are skipped, so a
# pre-DPOR baseline never fails a post-DPOR run. CI runs this after
# the bench smoke.
TOLERANCE ?= 0.8
bench-check:
	$(GO) test -run '^$$' -bench BenchmarkE1 -benchmem -benchtime $(BENCHTIME) -count 1 . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o bench-fresh.json
	$(GO) run ./cmd/benchjson -compare -tolerance $(TOLERANCE) BENCH_explore.json bench-fresh.json

# load runs the real-runtime evaluation matrix — every mechanism × the
# canonical problem trio under Poisson open-loop and fixed-client
# closed-loop traffic — traced, oracle-judged, then validated and
# archived as BENCH_load.json by benchjson. Two steps so syncload's exit
# code (nonzero on a kernel error or oracle violation) is never
# swallowed by the pipe.
load:
	$(GO) run ./cmd/syncload -rate $(LOAD_RATE) -duration $(LOAD_DURATION) \
		-json -o load-raw.json
	$(GO) run ./cmd/benchjson -load -o BENCH_load.json < load-raw.json

# hunt runs the Figure-1 anomaly search with live progress, shrinks the
# finding to a 1-minimal schedule, and saves it as a replayable artifact
# (exploration exits 1 on a finding — expected here — so the replay step
# is the success check).
hunt:
	-$(GO) run ./cmd/simtrace -mech pathexpr -problem readers-priority \
		-explore -shrink -pool -progress -save-sched figure1-found.sched -quiet
	$(GO) run ./cmd/simtrace -replay figure1-found.sched

# dpor-audit proves the partial-order reduction sound on this tree: the
# full T4 conformance matrix runs with every search doubled — reduced,
# then unreduced at the same budget — and fails if the reduction missed
# any violation rule, then the per-scenario coverage table (T8) reports
# how much of each schedule space the reduced search proved covered.
dpor-audit:
	$(GO) test -run TestDPORMatchesFull ./internal/explore/
	$(GO) run ./cmd/evalsync -experiment T8


# directions: -hunt tries to realize every lockorder/lostwakeup finding
# by schedule exploration (exit 0 — confirmed findings on the seeded
# fixture are the expected outcome, reported per row), and -audit
# replays the sealed counterexample corpus against the static pass,
# failing on any deadlock lockorder no longer flags.
xcheck:
	$(GO) run ./cmd/synclint -hunt
	$(GO) run ./cmd/synclint -audit internal/explore/testdata

# BENCH_explore.json is a committed baseline, not a build product, so
# clean leaves it alone.
clean:
	rm -f BENCH_load.json load-raw.json bench-fresh.json figure1-found.sched
