// The experiment bench harness: one benchmark per reproduced table or
// figure (see DESIGN.md §3), plus the B1 mechanism-cost ablation the paper
// could not run in 1979. Regenerate everything with
//
//	go test -bench=. -benchmem .
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/explore"
	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/trace"
)

// ---- F1 / F2: the paper's figures ----

// BenchmarkF1PathExprReadersPriority measures one run of the footnote-3
// scenario against the Figure-1 solution on the deterministic kernel.
func BenchmarkF1PathExprReadersPriority(b *testing.B) {
	suite, _ := solutions.ByMechanism("pathexpr")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := kernel.NewSim()
		r := trace.NewRecorder(k)
		eval.FigureScenario(suite.NewReadersPriority(k))(k, r)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF1AnomalySearch measures the schedule exploration that
// rediscovers the footnote-3 anomaly.
func BenchmarkF1AnomalySearch(b *testing.B) {
	suite, _ := solutions.ByMechanism("pathexpr")
	for i := 0; i < b.N; i++ {
		prog := explore.Program(func(k kernel.Kernel, r *trace.Recorder) {
			eval.FigureScenario(suite.NewReadersPriority(k))(k, r)
		})
		res := explore.Run(prog, problems.CheckReadersPriority,
			explore.Options{RandomRuns: 300, DFSRuns: 600})
		if !res.Found {
			b.Fatal("anomaly not found")
		}
	}
}

// BenchmarkF2PathExprWritersPriority measures the Figure-2 counterpart.
func BenchmarkF2PathExprWritersPriority(b *testing.B) {
	suite, _ := solutions.ByMechanism("pathexpr")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := kernel.NewSim()
		r := trace.NewRecorder(k)
		eval.FigureScenario(suite.NewWritersPriority(k))(k, r)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E1: exploration throughput (ours; what makes deep searches affordable) ----

// benchExploreThroughput measures schedules/sec through explore.Run on a
// clean workload (the monitor readers-priority solution), so every run
// exhausts its budget and executes a known number of schedules.
func benchExploreThroughput(b *testing.B, opts explore.Options) {
	suite, _ := solutions.ByMechanism("monitor")
	prog := explore.Program(func(k kernel.Kernel, r *trace.Recorder) {
		eval.FigureScenario(suite.NewReadersPriority(k))(k, r)
	})
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		res := explore.Run(prog, problems.CheckReadersPriority, opts)
		if res.Found {
			b.Fatal("unexpected finding")
		}
		total += res.Runs
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "schedules/sec")
}

// BenchmarkE1ExploreThroughput tracks the exploration engine's speed for
// the random and DFS phases separately, with the parallel engine (Workers
// follows GOMAXPROCS, so `-cpu 1,2,4` sweeps the scaling curve) and with
// the engine pinned sequential (the speedup baseline). Results are
// identical across worker counts by construction; only throughput moves.
func BenchmarkE1ExploreThroughput(b *testing.B) {
	const budget = 64
	b.Run("random", func(b *testing.B) {
		benchExploreThroughput(b, explore.Options{RandomRuns: budget, DFSRuns: 0})
	})
	b.Run("random-seq", func(b *testing.B) {
		benchExploreThroughput(b, explore.Options{RandomRuns: budget, DFSRuns: 0, Workers: 1})
	})
	b.Run("dfs", func(b *testing.B) {
		benchExploreThroughput(b, explore.Options{RandomRuns: -1, DFSRuns: budget})
	})
	b.Run("dfs-seq", func(b *testing.B) {
		benchExploreThroughput(b, explore.Options{RandomRuns: -1, DFSRuns: budget, Workers: 1})
	})
	// Run recycling (Options.Pool): same schedules, same Result, but
	// kernels/recorders/buffers are reused across runs instead of
	// reallocated. Compare each -pool line against its sibling above.
	b.Run("random-pool", func(b *testing.B) {
		benchExploreThroughput(b, explore.Options{RandomRuns: budget, DFSRuns: 0, Pool: true})
	})
	b.Run("random-seq-pool", func(b *testing.B) {
		benchExploreThroughput(b, explore.Options{RandomRuns: budget, DFSRuns: 0, Workers: 1, Pool: true})
	})
	b.Run("dfs-pool", func(b *testing.B) {
		benchExploreThroughput(b, explore.Options{RandomRuns: -1, DFSRuns: budget, Pool: true})
	})
	b.Run("dfs-seq-pool", func(b *testing.B) {
		benchExploreThroughput(b, explore.Options{RandomRuns: -1, DFSRuns: budget, Workers: 1, Pool: true})
	})
	// Fingerprint pruning (Options.Prune) collapses the DFS frontier on
	// top of pooling; schedules/sec also reflects that fewer (deduped)
	// schedules need executing at all to cover the same space.
	b.Run("dfs-seq-pool-prune", func(b *testing.B) {
		benchExploreThroughput(b, explore.Options{RandomRuns: -1, DFSRuns: budget, Workers: 1, Pool: true, Prune: true})
	})
}

// benchDeepDFS measures schedules/sec on a deep clean scenario — a
// scaled-up readers–writers workload on the monitor solution (20 procs,
// 80 intervals, no artificial yields), whose runs produce long traces
// relative to their scheduling steps. That trace density is what deep
// hunts look like: the per-run cost is dominated by recording and
// judging the operation history, exactly the work that replay-from-root
// engines redo for the shared prefix of every sibling schedule. The
// checkpointed engine forks from a snapshot at the branch point
// instead: prefix events are served canned from the checkpoint and the
// per-step scheduling pipeline is skipped, so only the suffix pays full
// freight.
func benchDeepDFS(b *testing.B, opts explore.Options) {
	suite, _ := solutions.ByMechanism("monitor")
	cfg := problems.RWConfig{Readers: 12, Writers: 8, Rounds: 4}
	prog := explore.Program(func(k kernel.Kernel, r *trace.Recorder) {
		_ = problems.SpawnRW(k, suite.NewReadersPriority(k), r, cfg)
	})
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	var last explore.StatsCore
	for i := 0; i < b.N; i++ {
		res := explore.Run(prog, problems.CheckReadersPriority, opts)
		if res.Found {
			b.Fatal("unexpected finding")
		}
		total += res.Runs
		last = res.Stats
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "schedules/sec")
	if opts.Checkpoint {
		b.ReportMetric(float64(last.CheckpointForks), "forks/hunt")
		b.ReportMetric(float64(last.SavedSteps), "saved-steps/hunt")
		b.ReportMetric(float64(last.ReplayedSteps), "replayed-steps/hunt")
	}
}

// BenchmarkE1CheckpointDFS compares checkpointed DFS against the
// replay-from-root engines it is byte-identical to (see
// TestCheckpointMatchesReplay): `pooled` is the PR 3 baseline (run
// recycling only), `pooled-stream` adds incremental judging, and
// `checkpoint` adds prefix sharing on top of both. All three execute
// the same schedule budget and return the same Result.
func BenchmarkE1CheckpointDFS(b *testing.B) {
	const budget = 64
	inc, ok := problems.IncrementalOracleFor(problems.NameReadersPriority)
	if !ok {
		b.Fatal("no incremental oracle for readers-priority")
	}
	base := explore.Options{RandomRuns: -1, DFSRuns: budget, DFSDepth: 48, Workers: 1, Pool: true}
	b.Run("pooled", func(b *testing.B) {
		benchDeepDFS(b, base)
	})
	b.Run("pooled-stream", func(b *testing.B) {
		opts := base
		opts.Stream = inc.New
		benchDeepDFS(b, opts)
	})
	b.Run("checkpoint", func(b *testing.B) {
		opts := base
		opts.Stream = inc.New
		opts.Checkpoint = true
		benchDeepDFS(b, opts)
	})
}

// benchSchedulesToFinding hunts the Figure-1 anomaly in a scaled
// workload — the path-expression readers-priority solution under a
// readers–writers scenario deep enough (long writes, arrival gaps)
// that the anomaly hides in a ~2^36 schedule space — and reports how
// many schedules the search judged before finding it. Unlike the
// throughput benches above, fewer is better here: this is the metric
// partial-order reduction exists to shrink. With DPOR on, the
// analytically covered fraction of the schedule space rides along.
func benchSchedulesToFinding(b *testing.B, opts explore.Options) {
	suite, _ := solutions.ByMechanism("pathexpr")
	cfg := problems.RWConfig{Readers: 3, Writers: 2, Rounds: 1,
		WriteYields: 6, ReadYields: 1, GapYields: 1}
	prog := explore.Program(func(k kernel.Kernel, r *trace.Recorder) {
		_ = problems.SpawnRW(k, suite.NewReadersPriority(k), r, cfg)
	})
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	var last explore.Result
	for i := 0; i < b.N; i++ {
		res := explore.Run(prog, problems.CheckReadersPriority, opts)
		if !res.Found {
			b.Fatalf("anomaly not found in %d runs", res.Runs)
		}
		total += res.Runs
		last = res
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "schedules/sec")
	b.ReportMetric(float64(last.Runs), "schedules-to-finding")
}

// benchSchedulesToExhaustion explores the clean footnote-3 scenario (the
// monitor readers-priority solution, which has no anomaly) until the DFS
// frontier empties, and reports how many schedules that took. This is
// the repo's first schedules-to-exhaustion number: before DPOR the
// search had no way to know it was done with the space, only with its
// budget. The explored fraction is 1 by definition at exhaustion — the
// metric line pins that the engine still proves full coverage.
func benchSchedulesToExhaustion(b *testing.B, opts explore.Options) {
	suite, _ := solutions.ByMechanism("monitor")
	prog := explore.Program(func(k kernel.Kernel, r *trace.Recorder) {
		eval.FigureScenario(suite.NewReadersPriority(k))(k, r)
	})
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	var last explore.Result
	for i := 0; i < b.N; i++ {
		res := explore.Run(prog, problems.CheckReadersPriority, opts)
		if res.Found {
			b.Fatal("unexpected finding")
		}
		if !res.Stats.Exhausted {
			b.Fatalf("budget %d too small: frontier not exhausted after %d runs", opts.DFSRuns, res.Runs)
		}
		total += res.Runs
		last = res
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "schedules/sec")
	b.ReportMetric(float64(last.Runs), "schedules-to-exhaustion")
	if opts.DPOR {
		b.ReportMetric(last.Stats.ExploredFraction, "explored-fraction")
	}
}

// BenchmarkE1SchedulesToFinding compares how many schedules fingerprint
// pruning alone versus pruning plus dynamic partial-order reduction
// needs to reach the deep Figure-1 finding, and — on the clean scenario
// — to prove the whole schedule space covered (the searches are
// deterministic, so the counts are exact, not sampled). The committed
// baseline archives all four lines; `make bench-check` gates
// schedules-to-finding and schedules-to-exhaustion downward and
// explored-fraction upward.
func BenchmarkE1SchedulesToFinding(b *testing.B) {
	base := explore.Options{RandomRuns: -1, DFSRuns: 200000, DFSDepth: 48, Workers: 1, Pool: true, Prune: true}
	b.Run("prune", func(b *testing.B) {
		benchSchedulesToFinding(b, base)
	})
	b.Run("dpor-prune", func(b *testing.B) {
		opts := base
		opts.DPOR = true
		benchSchedulesToFinding(b, opts)
	})
	exhaust := explore.Options{RandomRuns: -1, DFSRuns: 500000, Workers: 1, Pool: true, Prune: true}
	b.Run("exhaust-prune", func(b *testing.B) {
		benchSchedulesToExhaustion(b, exhaust)
	})
	b.Run("exhaust-dpor-prune", func(b *testing.B) {
		opts := exhaust
		opts.DPOR = true
		benchSchedulesToExhaustion(b, opts)
	})
}

// ---- T1: expressive-power matrix ----

// BenchmarkT1PowerVerification measures the full matrix verification
// (36 cells, each a conformance run plus structural witnesses).
func BenchmarkT1PowerVerification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, v := range eval.VerifyPower() {
			if !v.OK() {
				b.Fatalf("inconsistent cell: %+v", v)
			}
		}
	}
}

// ---- T2: constraint-independence analysis ----

// BenchmarkT2StructuralDiff measures the go/parser-based similarity
// analysis across all mechanisms and variant pairs.
func BenchmarkT2StructuralDiff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.IndependenceTable()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// ---- T3: modularity experiments ----

// BenchmarkT3NestedMonitor measures the nested-monitor-call experiment
// (one deadlocking and one structured run).
func BenchmarkT3NestedMonitor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := eval.RunNestedMonitorExperiment()
		if !out.NaiveDeadlocks || !out.StructuredCompletes {
			b.Fatalf("unexpected outcome: %+v", out)
		}
	}
}

// ---- T5: the monitor queue-conflict workload ----

// BenchmarkT5TwoStageQueue measures the monitor FCFS readers–writers
// solution (two-stage queueing) under the standard workload.
func BenchmarkT5TwoStageQueue(b *testing.B) {
	suite, _ := solutions.ByMechanism("monitor")
	for i := 0; i < b.N; i++ {
		k := kernel.NewSim()
		_, vs, err := solutions.RunStandard(k, suite, problems.NameFCFSRW, true)
		if err != nil || len(vs) > 0 {
			b.Fatalf("err=%v violations=%v", err, vs)
		}
	}
}

// ---- T4 / T6: suite-wide conformance ----

// BenchmarkT4SuiteConformance measures one full pass of every mechanism
// over the footnote-2 problem set on the deterministic kernel.
func BenchmarkT4SuiteConformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, suite := range solutions.All() {
			for _, problem := range problems.AllProblems() {
				k := kernel.NewSim()
				strict := !(suite.Mechanism == "pathexpr" && problem == problems.NameReadersPriority)
				_, vs, err := solutions.RunStandard(k, suite, problem, strict)
				if err != nil {
					b.Fatalf("%s/%s: %v", suite.Mechanism, problem, err)
				}
				if len(vs) > 0 {
					b.Fatalf("%s/%s: %v", suite.Mechanism, problem, vs)
				}
			}
		}
	}
}

// ---- B1: mechanism-cost ablation (ours; the paper is qualitative) ----

// benchProblemReal runs one mechanism's solution to one problem under the
// real kernel, reporting operations/sec through the standard workload.
func benchProblemReal(b *testing.B, mechanism, problem string) {
	suite, ok := solutions.ByMechanism(mechanism)
	if !ok {
		b.Fatalf("no suite %s", mechanism)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := kernel.NewReal(kernel.WithWatchdog(60 * time.Second))
		_, vs, err := solutions.RunStandard(k, suite, problem, false)
		if err != nil {
			b.Fatalf("%v", err)
		}
		if len(vs) > 0 {
			b.Fatalf("violations: %v", vs)
		}
	}
}

func BenchmarkB1BoundedBuffer(b *testing.B) {
	for _, mech := range []string{"semaphore", "ccr", "pathexpr", "monitor", "serializer", "csp"} {
		b.Run(mech, func(b *testing.B) { benchProblemReal(b, mech, problems.NameBoundedBuffer) })
	}
}

func BenchmarkB1ReadersWriters(b *testing.B) {
	for _, mech := range []string{"semaphore", "ccr", "pathexpr", "monitor", "serializer", "csp"} {
		b.Run(mech, func(b *testing.B) { benchProblemReal(b, mech, problems.NameReadersPriority) })
	}
}

func BenchmarkB1DiskScheduler(b *testing.B) {
	for _, mech := range []string{"semaphore", "ccr", "pathexpr", "monitor", "serializer", "csp"} {
		b.Run(mech, func(b *testing.B) { benchProblemReal(b, mech, problems.NameDisk) })
	}
}

// BenchmarkB1KernelAblation compares the two kernel substrates on the
// same workload (DESIGN.md §6.1): the deterministic kernel pays one
// scheduler handshake per step; the real kernel pays goroutine wakeups.
func BenchmarkB1KernelAblation(b *testing.B) {
	suite, _ := solutions.ByMechanism("monitor")
	b.Run("sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := kernel.NewSim()
			if _, _, err := solutions.RunStandard(k, suite, problems.NameBoundedBuffer, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("real", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := kernel.NewReal(kernel.WithWatchdog(60 * time.Second))
			if _, _, err := solutions.RunStandard(k, suite, problems.NameBoundedBuffer, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestBenchHarnessSmoke keeps the bench harness itself correct under
// plain `go test`: every benchmark body must run once without failing.
func TestBenchHarnessSmoke(t *testing.T) {
	suite, _ := solutions.ByMechanism("monitor")
	k := kernel.NewSim()
	if _, vs, err := solutions.RunStandard(k, suite, problems.NameBoundedBuffer, true); err != nil || len(vs) > 0 {
		t.Fatalf("err=%v vs=%v", err, vs)
	}
	rows, err := eval.IndependenceTable()
	if err != nil || len(rows) != 6 {
		t.Fatalf("independence table: %v (%d rows)", err, len(rows))
	}
	out := eval.RunNestedMonitorExperiment()
	if !out.NaiveDeadlocks || !out.StructuredCompletes {
		t.Fatalf("nested monitor experiment: %+v", out)
	}
	res := eval.RunFigure1()
	if !res.AnomalyFound {
		t.Fatalf("figure-1 anomaly not reproduced (%d runs)", res.Runs)
	}
	fmt.Fprintln(testingDiscard{}, eval.RenderFigure1(res)) // exercise rendering
}

type testingDiscard struct{}

func (testingDiscard) Write(p []byte) (int, error) { return len(p), nil }
