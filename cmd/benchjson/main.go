// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark numbers (ns/op, allocs/op, and custom metrics
// like the exploration engine's schedules/sec) can be archived and
// diffed across commits by CI.
//
// With -load it instead ingests a syncload report (internal/load's
// versioned schema), validates it — schema version, histogram/bucket
// consistency, quantile monotonicity — and archives the normalized
// document. Malformed input is rejected with a line-numbered diagnostic
// (JSON syntax/type errors) or a field-path diagnostic (semantic errors
// like a histogram whose buckets disagree with its count).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkE1ExploreThroughput -benchmem . | benchjson -o BENCH_explore.json
//	syncload -json | benchjson -load -o BENCH_load.json
//
// Input lines it understands (everything else passes through untouched):
//
//	goos: linux
//	goarch: amd64
//	pkg: repro
//	BenchmarkE1ExploreThroughput/dfs-seq-pool-8  223  5347102 ns/op  82584 schedules/sec  2629 allocs/op
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/load"
)

// Benchmark is one result line: the sub-benchmark name with its -N cpu
// suffix split off, the iteration count, and every reported metric keyed
// by unit.
type Benchmark struct {
	Name       string             `json:"name"`
	CPUs       int                `json:"cpus,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	loadMode := flag.Bool("load", false, "ingest a syncload report instead of bench output")
	flag.Parse()

	var buf []byte
	var err error
	if *loadMode {
		buf, err = ingestLoad(os.Stdin)
	} else {
		buf, err = ingestBench(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// ingestBench is the original mode: bench text in, JSON document out.
func ingestBench(r io.Reader) ([]byte, error) {
	report, err := parse(bufio.NewScanner(r))
	if err != nil {
		return nil, err
	}
	if len(report.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin (did the bench run produce output?)")
	}
	return marshal(report)
}

// ingestLoad validates a syncload report and re-emits it normalized.
// JSON syntax and type errors carry the input line; semantic errors
// (internal/load's Validate) carry the offending field's path.
func ingestLoad(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var rep load.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		switch e := err.(type) {
		case *json.SyntaxError:
			return nil, fmt.Errorf("load report: line %d: %v", lineAt(data, e.Offset), e)
		case *json.UnmarshalTypeError:
			return nil, fmt.Errorf("load report: line %d: field %q: cannot decode %s into %s",
				lineAt(data, e.Offset), e.Field, e.Value, e.Type)
		}
		return nil, fmt.Errorf("load report: %v", err)
	}
	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("load report: %v", err)
	}
	return marshal(rep)
}

// lineAt converts a byte offset of the input into a 1-based line number.
func lineAt(data []byte, off int64) int {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	return 1 + bytes.Count(data[:off], []byte{'\n'})
}

func marshal(v any) ([]byte, error) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// parse reads the bench output. A malformed Benchmark result line —
// truncated mid-write, interleaved with a crash, wrong field count — is
// an error, not a skip: silently dropping lines would let CI archive a
// report that looks complete but is missing data.
func parse(sc *bufio.Scanner) (Report, error) {
	var r Report
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			r.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			r.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			r.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			r.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line)
			if err != nil {
				return r, fmt.Errorf("line %d: %w: %q", lineno, err, line)
			}
			r.Benchmarks = append(r.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return r, err
	}
	return r, nil
}

// parseBenchLine parses one result line: name, iterations, then
// value/unit pairs.
func parseBenchLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line (%d fields, want an even count >= 4)", len(fields))
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("malformed iteration count %q", fields[1])
	}
	b := Benchmark{Iterations: iters, Metrics: map[string]float64{}}
	b.Name, b.CPUs = splitCPUSuffix(fields[0])
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("malformed metric value %q", fields[i])
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

// splitCPUSuffix splits the trailing "-N" GOMAXPROCS marker off a
// benchmark name. Names without one (GOMAXPROCS=1 runs) pass through.
func splitCPUSuffix(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 0
	}
	return name[:i], n
}
