// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark numbers (ns/op, allocs/op, and custom metrics
// like the exploration engine's schedules/sec) can be archived and
// diffed across commits by CI.
//
// With -load it instead ingests a syncload report (internal/load's
// versioned schema), validates it — schema version, histogram/bucket
// consistency, quantile monotonicity — and archives the normalized
// document. Malformed input is rejected with a line-numbered diagnostic
// (JSON syntax/type errors) or a field-path diagnostic (semantic errors
// like a histogram whose buckets disagree with its count).
//
// When -o names an existing report, the new results are merged into it
// rather than replacing it: benchmarks with the same name and cpu count
// are updated in place, everything else is preserved. A partial bench
// run (say, one -bench filter out of several) therefore refreshes its
// own lines in a committed baseline without discarding the rest.
//
// With -load-compare it gates load reports the same way -compare gates
// bench reports: runs are matched by (mechanism, problem, arrival),
// throughput is higher-is-better, per-class wait/total p99 latencies are
// lower-is-better, unmatched runs or empty classes are SKIPped, and the
// exit status is non-zero when any goodness ratio falls below tolerance.
//
// With -compare it gates instead of archiving: given a baseline report
// and a fresh one, every benchmark present in both is checked on the
// gated metrics — schedules/sec and explored-fraction (higher is
// better), schedules-to-finding (lower is better) — and the run exits
// non-zero if any goodness ratio fell below tolerance. Metrics the
// baseline predates (pre-DPOR reports have no schedules-to-finding)
// are skipped, not failed. CI runs this after the bench smoke so an
// exploration-engine regression fails the build.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkE1 -benchmem . | benchjson -o BENCH_explore.json
//	syncload -json | benchjson -load -o BENCH_load.json
//	syncload -soak -json | benchjson -load -o BENCH_load.json   # NDJSON: every snapshot validated, final archived
//	benchjson -compare -tolerance 0.8 BENCH_explore.json fresh.json
//	benchjson -load-compare -tolerance 0.7 BENCH_load.json fresh_load.json
//
// Input lines it understands (everything else passes through untouched):
//
//	goos: linux
//	goarch: amd64
//	pkg: repro
//	BenchmarkE1ExploreThroughput/dfs-seq-pool-8  223  5347102 ns/op  82584 schedules/sec  2629 allocs/op
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/load"
)

// Benchmark is one result line: the sub-benchmark name with its -N cpu
// suffix split off, the iteration count, and every reported metric keyed
// by unit.
type Benchmark struct {
	Name       string             `json:"name"`
	CPUs       int                `json:"cpus,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout; an existing bench report is merged into, not overwritten")
	loadMode := flag.Bool("load", false, "ingest a syncload report instead of bench output")
	compareMode := flag.Bool("compare", false, "compare two reports (baseline.json fresh.json) on the gated metrics (schedules/sec, schedules-to-finding, explored-fraction); exit non-zero on regression")
	loadCompareMode := flag.Bool("load-compare", false, "compare two syncload reports (baseline.json fresh.json) on throughput and p99 latency; exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0.8, "with -compare/-load-compare, minimum acceptable goodness ratio (fresh/baseline, inverted for lower-is-better metrics)")
	flag.Parse()

	if *compareMode || *loadCompareMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare wants exactly two arguments: baseline.json fresh.json")
			os.Exit(2)
		}
		cmp := compareReports
		if *loadCompareMode {
			cmp = compareLoadReports
		}
		ok, err := cmp(flag.Arg(0), flag.Arg(1), *tolerance, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	var buf []byte
	var err error
	if *loadMode {
		buf, err = ingestLoad(os.Stdin)
	} else {
		buf, err = ingestBench(os.Stdin, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// ingestBench is the original mode: bench text in, JSON document out.
// When dest names an existing report, the parsed results are merged
// into it (mergeReports); a corrupt existing report is an error rather
// than something to silently overwrite — baselines are committed
// artifacts.
func ingestBench(r io.Reader, dest string) ([]byte, error) {
	report, err := parse(bufio.NewScanner(r))
	if err != nil {
		return nil, err
	}
	if len(report.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin (did the bench run produce output?)")
	}
	if dest != "" {
		if data, err := os.ReadFile(dest); err == nil {
			var base Report
			if err := json.Unmarshal(data, &base); err != nil {
				return nil, fmt.Errorf("existing report %s: %v (refusing to overwrite; delete it to start fresh)", dest, err)
			}
			report = mergeReports(base, report)
		}
	}
	return marshal(report)
}

// mergeReports folds the fresh run into the baseline: benchmarks with
// the same name and cpu count are replaced in place (keeping the
// baseline's ordering), new ones are appended, and untouched baseline
// lines survive. Header fields follow the fresh run, which describes
// the machine that produced the newest numbers.
func mergeReports(base, fresh Report) Report {
	type key struct {
		name string
		cpus int
	}
	replaced := make(map[key]bool, len(fresh.Benchmarks))
	byKey := make(map[key]Benchmark, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		byKey[key{b.Name, b.CPUs}] = b
	}
	merged := fresh
	merged.Benchmarks = nil
	for _, b := range base.Benchmarks {
		k := key{b.Name, b.CPUs}
		if nb, ok := byKey[k]; ok {
			merged.Benchmarks = append(merged.Benchmarks, nb)
			replaced[k] = true
			continue
		}
		merged.Benchmarks = append(merged.Benchmarks, b)
	}
	for _, b := range fresh.Benchmarks {
		if !replaced[key{b.Name, b.CPUs}] {
			merged.Benchmarks = append(merged.Benchmarks, b)
		}
	}
	return merged
}

// gatedMetrics are the metrics the -compare gate guards, each with the
// direction that counts as better. schedules/sec is the engine's raw
// throughput; schedules-to-finding is how many schedules the reduced
// search judges before the Figure-1 anomaly (fewer is the whole point
// of DPOR); explored-fraction is the analytically covered share of the
// schedule space. ns/op is deliberately not gated — wall-clock per
// hunt moves with budget choices, while these are figures of merit.
var gatedMetrics = []struct {
	unit         string
	higherBetter bool
}{
	{"schedules/sec", true},
	{"schedules-to-finding", false},
	{"schedules-to-exhaustion", false},
	{"explored-fraction", true},
}

// compareReports checks every benchmark present in both reports on each
// gated metric, writing one verdict line per comparison, and reports
// whether the fresh run passed: no goodness ratio (fresh/base for
// higher-is-better metrics, base/fresh for lower-is-better ones) below
// tolerance. Benchmarks or metrics only one side knows are listed as
// SKIP but never fail the gate — so a baseline carrying extra suites
// does not break a narrower CI smoke, and a baseline archived before a
// metric existed (e.g. pre-DPOR reports without schedules-to-finding)
// does not fail a fresh run that reports it.
func compareReports(basePath, freshPath string, tolerance float64, w io.Writer) (bool, error) {
	base, err := readReport(basePath)
	if err != nil {
		return false, err
	}
	fresh, err := readReport(freshPath)
	if err != nil {
		return false, err
	}
	type key struct {
		name string
		cpus int
	}
	freshBy := make(map[key]Benchmark, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshBy[key{b.Name, b.CPUs}] = b
	}
	ok, compared := true, 0
	for _, b := range base.Benchmarks {
		nb, found := freshBy[key{b.Name, b.CPUs}]
		for _, m := range gatedMetrics {
			old, has := b.Metrics[m.unit]
			if !has || old <= 0 {
				if found {
					if now, hasNew := nb.Metrics[m.unit]; hasNew && now > 0 {
						fmt.Fprintf(w, "SKIP %s: baseline %s predates the %s metric\n", b.Name, basePath, m.unit)
					}
				}
				continue
			}
			if !found {
				fmt.Fprintf(w, "SKIP %s: not in %s\n", b.Name, freshPath)
				continue
			}
			now, has := nb.Metrics[m.unit]
			if !has {
				fmt.Fprintf(w, "SKIP %s: no %s metric in %s\n", b.Name, m.unit, freshPath)
				continue
			}
			compared++
			ratio := now / old
			if !m.higherBetter {
				ratio = old / now
			}
			verdict := "ok"
			if ratio < tolerance {
				verdict = "REGRESSION"
				ok = false
			}
			fmt.Fprintf(w, "%-10s %s: %.4g -> %.4g %s (%.2fx, floor %.2fx)\n",
				verdict, b.Name, old, now, m.unit, ratio, tolerance)
		}
	}
	if compared == 0 {
		return false, fmt.Errorf("no benchmarks with a gated metric in common between %s and %s", basePath, freshPath)
	}
	return ok, nil
}

// readReport loads a JSON report written by this tool.
func readReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

// ingestLoad validates a syncload report and re-emits it normalized.
// JSON syntax and type errors carry the input line; semantic errors
// (internal/load's Validate) carry the offending field's path. Input may
// also be the NDJSON stream of a soak run (one report per line): every
// line — each incremental snapshot — is validated, and the last line (the
// final report) is the one archived.
func ingestLoad(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if lines := ndjsonLines(data); len(lines) > 1 {
		var last load.Report
		for i, line := range lines {
			var rep load.Report
			if err := json.Unmarshal(line, &rep); err != nil {
				return nil, fmt.Errorf("load report: NDJSON line %d: %v", i+1, err)
			}
			if err := rep.Validate(); err != nil {
				return nil, fmt.Errorf("load report: NDJSON line %d: %v", i+1, err)
			}
			last = rep
		}
		return marshal(last)
	}
	var rep load.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		switch e := err.(type) {
		case *json.SyntaxError:
			return nil, fmt.Errorf("load report: line %d: %v", lineAt(data, e.Offset), e)
		case *json.UnmarshalTypeError:
			return nil, fmt.Errorf("load report: line %d: field %q: cannot decode %s into %s",
				lineAt(data, e.Offset), e.Field, e.Value, e.Type)
		}
		return nil, fmt.Errorf("load report: %v", err)
	}
	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("load report: %v", err)
	}
	return marshal(rep)
}

// ndjsonLines reports the input's non-empty lines when it looks like an
// NDJSON stream: more than one line, every line a complete JSON object
// (soak streams are written one document per line; an indented document
// never has '{'-prefixed continuation lines).
func ndjsonLines(data []byte) [][]byte {
	var lines [][]byte
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if line[0] != '{' || line[len(line)-1] != '}' {
			return nil
		}
		lines = append(lines, line)
	}
	return lines
}

// compareLoadReports gates a fresh syncload report against a baseline:
// runs are matched by (mechanism, problem, arrival) — soak snapshots
// (snapshot_seq > 0) are ignored on both sides — and each gated metric
// present and non-zero on both sides must keep its goodness ratio above
// tolerance: throughput is higher-is-better, per-class p99 queueing
// (wait) and end-to-end (total) latency are lower-is-better. Mean and max
// are deliberately not gated — max is a single-sample lottery under real
// scheduling, and mean moves with the arrival mix. Unmatched runs and
// empty classes are SKIPped, never failed, so a narrower CI smoke can
// gate against a fuller committed baseline. Latency comparisons clamp
// both sides up to loadLatencyFloorNs first: a p99 of tens of
// microseconds is scheduler jitter, not queueing, so swings below the
// floor ratio to ~1 instead of flapping the build, while a genuine blowup
// from microseconds to milliseconds still lands far below tolerance and
// fails.
func compareLoadReports(basePath, freshPath string, tolerance float64, w io.Writer) (bool, error) {
	base, err := readLoadReport(basePath)
	if err != nil {
		return false, err
	}
	fresh, err := readLoadReport(freshPath)
	if err != nil {
		return false, err
	}
	finals := func(rep *load.Report) map[string]*load.RunReport {
		out := make(map[string]*load.RunReport)
		for i := range rep.Runs {
			rr := &rep.Runs[i]
			if rr.SnapshotSeq == 0 {
				out[rr.Mechanism+"/"+rr.Problem+"/"+rr.Arrival] = rr
			}
		}
		return out
	}
	const loadLatencyFloorNs = 250_000
	baseBy, freshBy := finals(&base), finals(&fresh)
	ok, compared := true, 0
	for _, key := range sortedKeys(baseBy) {
		brr := baseBy[key]
		frr, found := freshBy[key]
		if !found {
			fmt.Fprintf(w, "SKIP %s: not in %s\n", key, freshPath)
			continue
		}
		check := func(metric string, old, now float64, higherBetter bool) {
			if old <= 0 || now <= 0 {
				fmt.Fprintf(w, "SKIP %s %s: zero on one side (%.4g -> %.4g)\n", key, metric, old, now)
				return
			}
			compared++
			note := ""
			ratio := now / old
			if !higherBetter {
				effOld, effNow := old, now
				if effOld < loadLatencyFloorNs {
					effOld = loadLatencyFloorNs
				}
				if effNow < loadLatencyFloorNs {
					effNow = loadLatencyFloorNs
				}
				if effOld != old || effNow != now {
					note = " [floored]"
				}
				ratio = effOld / effNow
			}
			verdict := "ok"
			if ratio < tolerance {
				verdict = "REGRESSION"
				ok = false
			}
			fmt.Fprintf(w, "%-10s %s %s: %.4g -> %.4g (%.2fx, floor %.2fx)%s\n",
				verdict, key, metric, old, now, ratio, tolerance, note)
		}
		check("throughput_ops_sec", brr.ThroughputOpsSec, frr.ThroughputOpsSec, true)
		for i := range brr.Classes {
			bc := &brr.Classes[i]
			var fc *load.ClassReport
			for j := range frr.Classes {
				if frr.Classes[j].Name == bc.Name {
					fc = &frr.Classes[j]
					break
				}
			}
			if fc == nil {
				fmt.Fprintf(w, "SKIP %s class %s: not in %s\n", key, bc.Name, freshPath)
				continue
			}
			check(bc.Name+".wait_p99_ns", float64(bc.Wait.P99Ns), float64(fc.Wait.P99Ns), false)
			check(bc.Name+".total_p99_ns", float64(bc.Total.P99Ns), float64(fc.Total.P99Ns), false)
		}
	}
	if compared == 0 {
		return false, fmt.Errorf("no load runs with a gated metric in common between %s and %s", basePath, freshPath)
	}
	return ok, nil
}

func sortedKeys(m map[string]*load.RunReport) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// readLoadReport loads and validates a syncload report: a gate against a
// malformed baseline would pass or fail for the wrong reason.
func readLoadReport(path string) (load.Report, error) {
	var r load.Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	if err := r.Validate(); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

// lineAt converts a byte offset of the input into a 1-based line number.
func lineAt(data []byte, off int64) int {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	return 1 + bytes.Count(data[:off], []byte{'\n'})
}

func marshal(v any) ([]byte, error) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// parse reads the bench output. A malformed Benchmark result line —
// truncated mid-write, interleaved with a crash, wrong field count — is
// an error, not a skip: silently dropping lines would let CI archive a
// report that looks complete but is missing data.
func parse(sc *bufio.Scanner) (Report, error) {
	var r Report
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			r.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			r.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			r.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			r.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line)
			if err != nil {
				return r, fmt.Errorf("line %d: %w: %q", lineno, err, line)
			}
			r.Benchmarks = append(r.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return r, err
	}
	return r, nil
}

// parseBenchLine parses one result line: name, iterations, then
// value/unit pairs.
func parseBenchLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line (%d fields, want an even count >= 4)", len(fields))
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("malformed iteration count %q", fields[1])
	}
	b := Benchmark{Iterations: iters, Metrics: map[string]float64{}}
	b.Name, b.CPUs = splitCPUSuffix(fields[0])
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("malformed metric value %q", fields[i])
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

// splitCPUSuffix splits the trailing "-N" GOMAXPROCS marker off a
// benchmark name. Names without one (GOMAXPROCS=1 runs) pass through.
func splitCPUSuffix(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 0
	}
	return name[:i], n
}
