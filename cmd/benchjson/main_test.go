package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkE1ExploreThroughput/dfs-seq-pool-8         	     223	   5347102 ns/op	     2629 allocs/op	     82584 schedules/sec
BenchmarkE1ExploreThroughput/random                 	     100	  10000000 ns/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	r, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if r.GoOS != "linux" || r.GoArch != "amd64" || r.Package != "repro" {
		t.Fatalf("header: %+v", r)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("benchmarks: %+v", r.Benchmarks)
	}
	b := r.Benchmarks[0]
	if b.Name != "BenchmarkE1ExploreThroughput/dfs-seq-pool" || b.CPUs != 8 || b.Iterations != 223 {
		t.Fatalf("first line: %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 5347102, "allocs/op": 2629, "schedules/sec": 82584,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Fatalf("%s = %v, want %v", unit, got, want)
		}
	}
	if b := r.Benchmarks[1]; b.Name != "BenchmarkE1ExploreThroughput/random" || b.CPUs != 0 {
		t.Fatalf("second line: %+v", b)
	}
}

// Truncated or corrupted bench output must be a parse error with a
// diagnostic naming the offending line — never a silently thinner report.
func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"truncated-mid-line", "BenchmarkX-8\t 223\t 5347102\n", "malformed benchmark line"},
		{"odd-field-count", "BenchmarkX-8 223 5347102 ns/op extra\n", "malformed benchmark line"},
		{"bad-iterations", "BenchmarkX-8 fast 5347102 ns/op\n", "malformed iteration count"},
		{"bad-metric-value", "BenchmarkX-8 223 quick ns/op\n", "malformed metric value"},
		{"truncated-after-good-line", sample[:strings.Index(sample, "PASS")] + "BenchmarkY-8 10\n", "malformed benchmark line"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parse(bufio.NewScanner(strings.NewReader(c.in)))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("parse error = %v, want substring %q", err, c.want)
			}
		})
	}
}

// Non-benchmark noise (build logs, PASS/ok lines, blank lines) still
// passes through untouched; an input with only noise yields an empty
// report, which main turns into the "no benchmark lines" diagnostic.
func TestParseEmptyOutput(t *testing.T) {
	r, err := parse(bufio.NewScanner(strings.NewReader("PASS\nok  \trepro\t1.2s\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 0 {
		t.Fatalf("benchmarks: %+v", r.Benchmarks)
	}
}

func TestSplitCPUSuffix(t *testing.T) {
	cases := []struct {
		in   string
		name string
		cpus int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX/sub-case-16", "BenchmarkX/sub-case", 16},
		{"BenchmarkX/sub-case", "BenchmarkX/sub-case", 0},
		{"BenchmarkX", "BenchmarkX", 0},
	}
	for _, c := range cases {
		if name, cpus := splitCPUSuffix(c.in); name != c.name || cpus != c.cpus {
			t.Fatalf("splitCPUSuffix(%q) = %q, %d; want %q, %d", c.in, name, cpus, c.name, c.cpus)
		}
	}
}

// A well-formed load report round-trips through -load ingestion and
// comes out normalized (indented, schema intact).
func TestIngestLoadRoundTrip(t *testing.T) {
	in := `{"schema":"repro-load/v1","runs":[{"mechanism":"monitor","problem":"fcfs",
	"arrival":"poisson","rate_per_sec":1000,"seed":1,"elapsed_ns":5000000,
	"issued":2,"completed":2,"throughput_ops_sec":400,"judged":false,
	"classes":[{"name":"use","issued":2,"completed":2,"completed_share":1,"issued_share":1,
	"wait":{"count":2,"p50_ns":40,"p90_ns":50,"p99_ns":50,"max_ns":50,"mean_ns":45,
	"buckets":[{"index":40,"count":1},{"index":44,"count":1}]},
	"total":{"count":2,"p50_ns":60,"p90_ns":70,"p99_ns":70,"max_ns":70,"mean_ns":65,
	"buckets":[{"index":46,"count":1},{"index":48,"count":1}]}}]}]}`
	out, err := ingestLoad(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"schema": "repro-load/v1"`) {
		t.Fatalf("normalized output missing schema:\n%s", out)
	}
}

// Malformed load reports are rejected: syntax and type errors with the
// input line, semantic histogram errors with the field path.
func TestIngestLoadRejectsMalformed(t *testing.T) {
	good := `{"schema":"repro-load/v1","runs":[{"mechanism":"m","problem":"p","arrival":"poisson",
"seed":1,"elapsed_ns":1,"issued":1,"completed":1,"throughput_ops_sec":1,"judged":false,
"classes":[{"name":"use","issued":1,"completed":1,"completed_share":1,"issued_share":1,
"wait":{"count":1,"p50_ns":5,"p90_ns":5,"p99_ns":5,"max_ns":5,"mean_ns":5,"buckets":[{"index":5,"count":1}]},
"total":{"count":1,"p50_ns":5,"p90_ns":5,"p99_ns":5,"max_ns":5,"mean_ns":5,"buckets":[{"index":5,"count":1}]}}]}]}`
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"syntax", "{\"schema\": \"repro-load/v1\",\n\"runs\": [}", "line 2"},
		{"type", "{\"schema\": \"repro-load/v1\",\n\"runs\": [{\"mechanism\": 7}]}", "line 2"},
		{"schema-version", `{"schema":"repro-load/v0","runs":[]}`, `schema: got "repro-load/v0"`},
		{"no-runs", `{"schema":"repro-load/v1","runs":[]}`, "no runs"},
		{"bucket-sum", strings.Replace(good, `"wait":{"count":1`, `"wait":{"count":3`, 1),
			"runs[0].classes[0].wait: count 3 exceeds issued"},
		{"bucket-index", strings.Replace(good, `"buckets":[{"index":5,"count":1}]},
"total"`, `"buckets":[{"index":99999,"count":1}]},
"total"`, 1), "runs[0].classes[0].wait: bucket index 99999"},
		{"quantile-order", strings.Replace(good, `"p50_ns":5,"p90_ns":5,"p99_ns":5,"max_ns":5,"mean_ns":5,"buckets":[{"index":5,"count":1}]},
"total"`, `"p50_ns":9,"p90_ns":5,"p99_ns":5,"max_ns":5,"mean_ns":5,"buckets":[{"index":5,"count":1}]},
"total"`, 1), "quantiles not monotone"},
		{"class-sum", strings.Replace(good, `"issued":1,"completed":1,"throughput`, `"issued":1,"completed":0,"throughput`, 1),
			"classes sum to"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ingestLoad(strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}
