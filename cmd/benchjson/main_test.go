package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkE1ExploreThroughput/dfs-seq-pool-8         	     223	   5347102 ns/op	     2629 allocs/op	     82584 schedules/sec
BenchmarkE1ExploreThroughput/random                 	     100	  10000000 ns/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	r, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if r.GoOS != "linux" || r.GoArch != "amd64" || r.Package != "repro" {
		t.Fatalf("header: %+v", r)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("benchmarks: %+v", r.Benchmarks)
	}
	b := r.Benchmarks[0]
	if b.Name != "BenchmarkE1ExploreThroughput/dfs-seq-pool" || b.CPUs != 8 || b.Iterations != 223 {
		t.Fatalf("first line: %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 5347102, "allocs/op": 2629, "schedules/sec": 82584,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Fatalf("%s = %v, want %v", unit, got, want)
		}
	}
	if b := r.Benchmarks[1]; b.Name != "BenchmarkE1ExploreThroughput/random" || b.CPUs != 0 {
		t.Fatalf("second line: %+v", b)
	}
}

// Truncated or corrupted bench output must be a parse error with a
// diagnostic naming the offending line — never a silently thinner report.
func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"truncated-mid-line", "BenchmarkX-8\t 223\t 5347102\n", "malformed benchmark line"},
		{"odd-field-count", "BenchmarkX-8 223 5347102 ns/op extra\n", "malformed benchmark line"},
		{"bad-iterations", "BenchmarkX-8 fast 5347102 ns/op\n", "malformed iteration count"},
		{"bad-metric-value", "BenchmarkX-8 223 quick ns/op\n", "malformed metric value"},
		{"truncated-after-good-line", sample[:strings.Index(sample, "PASS")] + "BenchmarkY-8 10\n", "malformed benchmark line"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parse(bufio.NewScanner(strings.NewReader(c.in)))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("parse error = %v, want substring %q", err, c.want)
			}
		})
	}
}

// Non-benchmark noise (build logs, PASS/ok lines, blank lines) still
// passes through untouched; an input with only noise yields an empty
// report, which main turns into the "no benchmark lines" diagnostic.
func TestParseEmptyOutput(t *testing.T) {
	r, err := parse(bufio.NewScanner(strings.NewReader("PASS\nok  \trepro\t1.2s\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 0 {
		t.Fatalf("benchmarks: %+v", r.Benchmarks)
	}
}

func TestSplitCPUSuffix(t *testing.T) {
	cases := []struct {
		in   string
		name string
		cpus int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX/sub-case-16", "BenchmarkX/sub-case", 16},
		{"BenchmarkX/sub-case", "BenchmarkX/sub-case", 0},
		{"BenchmarkX", "BenchmarkX", 0},
	}
	for _, c := range cases {
		if name, cpus := splitCPUSuffix(c.in); name != c.name || cpus != c.cpus {
			t.Fatalf("splitCPUSuffix(%q) = %q, %d; want %q, %d", c.in, name, cpus, c.name, c.cpus)
		}
	}
}

// Merging a fresh run into a baseline replaces matching lines in place,
// appends new ones, and keeps everything the fresh run did not touch.
func TestMergeReports(t *testing.T) {
	base := Report{
		GoOS: "linux", CPU: "old-cpu",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA", CPUs: 8, Iterations: 10, Metrics: map[string]float64{"schedules/sec": 100}},
			{Name: "BenchmarkB", CPUs: 8, Iterations: 20, Metrics: map[string]float64{"schedules/sec": 200}},
		},
	}
	fresh := Report{
		GoOS: "linux", CPU: "new-cpu",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkB", CPUs: 8, Iterations: 30, Metrics: map[string]float64{"schedules/sec": 250}},
			{Name: "BenchmarkC", CPUs: 8, Iterations: 40, Metrics: map[string]float64{"schedules/sec": 300}},
		},
	}
	m := mergeReports(base, fresh)
	if m.CPU != "new-cpu" {
		t.Fatalf("header should follow the fresh run: %+v", m)
	}
	names := make([]string, len(m.Benchmarks))
	for i, b := range m.Benchmarks {
		names[i] = b.Name
	}
	if got, want := strings.Join(names, ","), "BenchmarkA,BenchmarkB,BenchmarkC"; got != want {
		t.Fatalf("merged order = %s, want %s", got, want)
	}
	if m.Benchmarks[1].Iterations != 30 || m.Benchmarks[1].Metrics["schedules/sec"] != 250 {
		t.Fatalf("BenchmarkB not replaced by the fresh run: %+v", m.Benchmarks[1])
	}
	if m.Benchmarks[0].Metrics["schedules/sec"] != 100 {
		t.Fatalf("BenchmarkA (untouched) changed: %+v", m.Benchmarks[0])
	}
}

// The -compare gate: within tolerance passes, a drop below tolerance
// fails, benchmarks on one side only are skipped without failing, and
// zero comparable benchmarks is a configuration error.
func TestCompareReports(t *testing.T) {
	write := func(t *testing.T, name string, r Report) string {
		t.Helper()
		buf, err := marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		p := t.TempDir() + "/" + name
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	bench := func(name string, v float64) Benchmark {
		return Benchmark{Name: name, Iterations: 1, Metrics: map[string]float64{"schedules/sec": v}}
	}
	base := write(t, "base.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkA", 1000), bench("BenchmarkOnlyInBase", 500),
	}})

	var out strings.Builder
	ok, err := compareReports(base, write(t, "good.json", Report{
		Benchmarks: []Benchmark{bench("BenchmarkA", 900)},
	}), 0.8, &out)
	if err != nil || !ok {
		t.Fatalf("within tolerance: ok=%v err=%v\n%s", ok, err, out.String())
	}
	if !strings.Contains(out.String(), "SKIP BenchmarkOnlyInBase") {
		t.Fatalf("missing skip line:\n%s", out.String())
	}

	out.Reset()
	ok, err = compareReports(base, write(t, "bad.json", Report{
		Benchmarks: []Benchmark{bench("BenchmarkA", 700)},
	}), 0.8, &out)
	if err != nil || ok {
		t.Fatalf("regression not caught: ok=%v err=%v\n%s", ok, err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION BenchmarkA") {
		t.Fatalf("missing regression line:\n%s", out.String())
	}

	if _, err = compareReports(base, write(t, "none.json", Report{
		Benchmarks: []Benchmark{{Name: "BenchmarkUnrelated", Iterations: 1, Metrics: map[string]float64{"ns/op": 1}}},
	}), 0.8, &out); err == nil {
		t.Fatal("zero comparable benchmarks should be an error")
	}
}

// Direction-aware gating: schedules-to-finding regresses when it grows,
// explored-fraction when it shrinks, and a baseline that predates a
// metric (pre-DPOR reports) skips that metric instead of failing.
func TestCompareReportsDirectionAware(t *testing.T) {
	write := func(t *testing.T, name string, r Report) string {
		t.Helper()
		buf, err := marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		p := t.TempDir() + "/" + name
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	bench := func(m map[string]float64) Benchmark {
		return Benchmark{Name: "BenchmarkE1SchedulesToFinding/dpor-prune", Iterations: 1, Metrics: m}
	}
	base := write(t, "base.json", Report{Benchmarks: []Benchmark{bench(map[string]float64{
		"schedules-to-finding": 100, "explored-fraction": 0.5,
	})}})

	// Fewer schedules to the finding and a larger covered fraction both
	// count as improvements.
	var out strings.Builder
	ok, err := compareReports(base, write(t, "better.json", Report{Benchmarks: []Benchmark{
		bench(map[string]float64{"schedules-to-finding": 40, "explored-fraction": 0.9}),
	}}), 0.8, &out)
	if err != nil || !ok {
		t.Fatalf("improvement flagged: ok=%v err=%v\n%s", ok, err, out.String())
	}

	// Needing more schedules is a regression even though the number went up.
	out.Reset()
	ok, err = compareReports(base, write(t, "slower.json", Report{Benchmarks: []Benchmark{
		bench(map[string]float64{"schedules-to-finding": 200, "explored-fraction": 0.5}),
	}}), 0.8, &out)
	if err != nil || ok {
		t.Fatalf("schedules-to-finding growth not caught: ok=%v err=%v\n%s", ok, err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "schedules-to-finding") {
		t.Fatalf("missing regression line:\n%s", out.String())
	}

	// A shrinking explored fraction is a regression too.
	out.Reset()
	ok, err = compareReports(base, write(t, "thinner.json", Report{Benchmarks: []Benchmark{
		bench(map[string]float64{"schedules-to-finding": 100, "explored-fraction": 0.1}),
	}}), 0.8, &out)
	if err != nil || ok {
		t.Fatalf("explored-fraction drop not caught: ok=%v err=%v\n%s", ok, err, out.String())
	}

	// A pre-DPOR baseline knows only schedules/sec: the new metrics are
	// SKIPped, the old gate still runs, and nothing fails.
	preDPOR := write(t, "predpor.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkE1SchedulesToFinding/dpor-prune", Iterations: 1,
			Metrics: map[string]float64{"schedules/sec": 1000}},
	}})
	out.Reset()
	ok, err = compareReports(preDPOR, write(t, "post.json", Report{Benchmarks: []Benchmark{
		bench(map[string]float64{"schedules/sec": 950, "schedules-to-finding": 40, "explored-fraction": 0.9}),
	}}), 0.8, &out)
	if err != nil || !ok {
		t.Fatalf("pre-DPOR baseline should pass: ok=%v err=%v\n%s", ok, err, out.String())
	}
	if !strings.Contains(out.String(), "predates the schedules-to-finding metric") ||
		!strings.Contains(out.String(), "predates the explored-fraction metric") {
		t.Fatalf("missing pre-DPOR skip lines:\n%s", out.String())
	}
}

// ingestBench with an existing destination merges rather than clobbers,
// and refuses to proceed over a corrupt baseline.
func TestIngestBenchMerges(t *testing.T) {
	dir := t.TempDir()
	dest := dir + "/BENCH.json"
	buf, err := marshal(Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkKeep", Iterations: 5, Metrics: map[string]float64{"ns/op": 42}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dest, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := ingestBench(strings.NewReader("BenchmarkNew 7 99 ns/op\n"), dest)
	if err != nil {
		t.Fatal(err)
	}
	var merged Report
	if err := json.Unmarshal(out, &merged); err != nil {
		t.Fatal(err)
	}
	if len(merged.Benchmarks) != 2 || merged.Benchmarks[0].Name != "BenchmarkKeep" || merged.Benchmarks[1].Name != "BenchmarkNew" {
		t.Fatalf("merged = %+v", merged.Benchmarks)
	}

	if err := os.WriteFile(dest, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ingestBench(strings.NewReader("BenchmarkNew 7 99 ns/op\n"), dest); err == nil ||
		!strings.Contains(err.Error(), "refusing to overwrite") {
		t.Fatalf("corrupt baseline: err = %v", err)
	}
}

// A well-formed load report round-trips through -load ingestion and
// comes out normalized (indented, schema intact).
func TestIngestLoadRoundTrip(t *testing.T) {
	in := `{"schema":"repro-load/v1","runs":[{"mechanism":"monitor","problem":"fcfs",
	"arrival":"poisson","rate_per_sec":1000,"seed":1,"elapsed_ns":5000000,
	"issued":2,"completed":2,"throughput_ops_sec":400,"judged":false,
	"classes":[{"name":"use","issued":2,"completed":2,"completed_share":1,"issued_share":1,
	"wait":{"count":2,"p50_ns":40,"p90_ns":50,"p99_ns":50,"max_ns":50,"mean_ns":45,
	"buckets":[{"index":40,"count":1},{"index":44,"count":1}]},
	"total":{"count":2,"p50_ns":60,"p90_ns":70,"p99_ns":70,"max_ns":70,"mean_ns":65,
	"buckets":[{"index":46,"count":1},{"index":48,"count":1}]}}]}]}`
	out, err := ingestLoad(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"schema": "repro-load/v1"`) {
		t.Fatalf("normalized output missing schema:\n%s", out)
	}
}

// Malformed load reports are rejected: syntax and type errors with the
// input line, semantic histogram errors with the field path.
func TestIngestLoadRejectsMalformed(t *testing.T) {
	good := `{"schema":"repro-load/v1","runs":[{"mechanism":"m","problem":"p","arrival":"poisson",
"seed":1,"elapsed_ns":1,"issued":1,"completed":1,"throughput_ops_sec":1,"judged":false,
"classes":[{"name":"use","issued":1,"completed":1,"completed_share":1,"issued_share":1,
"wait":{"count":1,"p50_ns":5,"p90_ns":5,"p99_ns":5,"max_ns":5,"mean_ns":5,"buckets":[{"index":5,"count":1}]},
"total":{"count":1,"p50_ns":5,"p90_ns":5,"p99_ns":5,"max_ns":5,"mean_ns":5,"buckets":[{"index":5,"count":1}]}}]}]}`
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"syntax", "{\"schema\": \"repro-load/v1\",\n\"runs\": [}", "line 2"},
		{"type", "{\"schema\": \"repro-load/v1\",\n\"runs\": [{\"mechanism\": 7}]}", "line 2"},
		{"schema-version", `{"schema":"repro-load/v0","runs":[]}`, `schema: got "repro-load/v0"`},
		{"no-runs", `{"schema":"repro-load/v1","runs":[]}`, "no runs"},
		{"bucket-sum", strings.Replace(good, `"wait":{"count":1`, `"wait":{"count":3`, 1),
			"runs[0].classes[0].wait: count 3 exceeds issued"},
		{"bucket-index", strings.Replace(good, `"buckets":[{"index":5,"count":1}]},
"total"`, `"buckets":[{"index":99999,"count":1}]},
"total"`, 1), "runs[0].classes[0].wait: bucket index 99999"},
		{"quantile-order", strings.Replace(good, `"p50_ns":5,"p90_ns":5,"p99_ns":5,"max_ns":5,"mean_ns":5,"buckets":[{"index":5,"count":1}]},
"total"`, `"p50_ns":9,"p90_ns":5,"p99_ns":5,"max_ns":5,"mean_ns":5,"buckets":[{"index":5,"count":1}]},
"total"`, 1), "quantiles not monotone"},
		{"class-sum", strings.Replace(good, `"issued":1,"completed":1,"throughput`, `"issued":1,"completed":0,"throughput`, 1),
			"classes sum to"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ingestLoad(strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

// loadReportJSON builds a minimal valid one-run load report with the given
// throughput and per-class p99s (wait, total share the same value here).
func loadReportJSON(t *testing.T, tput float64, p99 int64) string {
	t.Helper()
	return fmt.Sprintf(`{"schema":"repro-load/v1","runs":[{"mechanism":"monitor","problem":"fcfs",
"arrival":"poisson","seed":1,"elapsed_ns":1000,"issued":1,"completed":1,"throughput_ops_sec":%g,"judged":false,
"classes":[{"name":"use","issued":1,"completed":1,"completed_share":1,"issued_share":1,
"wait":{"count":1,"p50_ns":%d,"p90_ns":%d,"p99_ns":%d,"max_ns":%d,"mean_ns":1,"buckets":[{"index":5,"count":1}]},
"total":{"count":1,"p50_ns":%d,"p90_ns":%d,"p99_ns":%d,"max_ns":%d,"mean_ns":1,"buckets":[{"index":5,"count":1}]}}]}]}`,
		tput, p99, p99, p99, p99, p99, p99, p99, p99)
}

// The load gate is direction-aware: lower throughput and higher p99 both
// regress; improvements on either axis pass; unmatched pairings skip.
func TestCompareLoadReports(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", loadReportJSON(t, 1000, 1_000_000))

	var out strings.Builder
	ok, err := compareLoadReports(base, write("same.json", loadReportJSON(t, 1000, 1_000_000)), 0.8, &out)
	if err != nil || !ok {
		t.Fatalf("identical reports: ok=%v err=%v\n%s", ok, err, out.String())
	}

	out.Reset()
	ok, err = compareLoadReports(base, write("slow.json", loadReportJSON(t, 500, 1_000_000)), 0.8, &out)
	if err != nil || ok {
		t.Fatalf("halved throughput passed: err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "throughput_ops_sec") {
		t.Fatalf("missing throughput regression verdict:\n%s", out.String())
	}

	out.Reset()
	ok, err = compareLoadReports(base, write("lat.json", loadReportJSON(t, 1000, 10_000_000)), 0.8, &out)
	if err != nil || ok {
		t.Fatalf("10x p99 passed: err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "total_p99_ns") {
		t.Fatalf("missing p99 regression verdict:\n%s", out.String())
	}

	// Better on both axes passes: direction-awareness, not change detection.
	out.Reset()
	ok, err = compareLoadReports(base, write("fast.json", loadReportJSON(t, 2000, 1_000_000)), 0.8, &out)
	if err != nil || !ok {
		t.Fatalf("doubled throughput failed: err=%v\n%s", err, out.String())
	}

	// Microsecond-scale p99 pairs are scheduler jitter, not queueing: a
	// 10x swing below the noise floor ratios to ~1 (both sides clamp up
	// to the floor) instead of flapping the gate.
	tiny := write("tiny-base.json", loadReportJSON(t, 1000, 5_000))
	out.Reset()
	ok, err = compareLoadReports(tiny, write("tiny-fresh.json", loadReportJSON(t, 1000, 50_000)), 0.8, &out)
	if err != nil || !ok {
		t.Fatalf("sub-floor latency jitter failed the gate: err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "[floored]") {
		t.Fatalf("sub-floor pair not marked as floored:\n%s", out.String())
	}
	// ...but a genuine blowup past the floor still fails.
	out.Reset()
	ok, err = compareLoadReports(tiny, write("blowup.json", loadReportJSON(t, 1000, 10_000_000)), 0.8, &out)
	if err != nil || ok {
		t.Fatalf("5µs -> 10ms blowup passed: err=%v\n%s", err, out.String())
	}

	// A fresh run of a different pairing shares nothing: SKIP, then error
	// because no metric was compared at all.
	other := strings.Replace(loadReportJSON(t, 1000, 1_000_000), `"problem":"fcfs"`, `"problem":"bounded-buffer"`, 1)
	out.Reset()
	if _, err = compareLoadReports(base, write("other.json", other), 0.8, &out); err == nil {
		t.Fatalf("disjoint reports produced a verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "SKIP") {
		t.Fatalf("disjoint pairing not SKIPped:\n%s", out.String())
	}

	// A corrupt baseline is a hard error, not a silent pass.
	if _, err = compareLoadReports(write("bad.json", `{"schema":"repro-load/v9","runs":[]}`), base, 0.8, io.Discard); err == nil {
		t.Fatal("invalid baseline accepted")
	}
}

// NDJSON soak streams ingest line by line: every snapshot validated, the
// final (last) report archived; one bad line rejects the stream.
func TestIngestLoadNDJSON(t *testing.T) {
	snap := strings.Replace(loadReportJSON(t, 400, 5), `"seed":1`, `"snapshot_seq":1,"seed":1`, 1)
	final := loadReportJSON(t, 900, 5)
	oneLine := func(s string) string { return strings.ReplaceAll(s, "\n", " ") }
	out, err := ingestLoad(strings.NewReader(oneLine(snap) + "\n" + oneLine(final) + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"throughput_ops_sec": 900`) {
		t.Fatalf("archived report is not the final line:\n%s", out)
	}
	if strings.Contains(string(out), "snapshot_seq") {
		t.Fatalf("archived report is a snapshot:\n%s", out)
	}
	bad := strings.Replace(oneLine(snap), "repro-load/v1", "repro-load/v0", 1)
	if _, err := ingestLoad(strings.NewReader(bad + "\n" + oneLine(final) + "\n")); err == nil ||
		!strings.Contains(err.Error(), "NDJSON line 1") {
		t.Fatalf("bad snapshot line accepted: %v", err)
	}
}
