package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkE1ExploreThroughput/dfs-seq-pool-8         	     223	   5347102 ns/op	     2629 allocs/op	     82584 schedules/sec
BenchmarkE1ExploreThroughput/random                 	     100	  10000000 ns/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	r, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if r.GoOS != "linux" || r.GoArch != "amd64" || r.Package != "repro" {
		t.Fatalf("header: %+v", r)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("benchmarks: %+v", r.Benchmarks)
	}
	b := r.Benchmarks[0]
	if b.Name != "BenchmarkE1ExploreThroughput/dfs-seq-pool" || b.CPUs != 8 || b.Iterations != 223 {
		t.Fatalf("first line: %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 5347102, "allocs/op": 2629, "schedules/sec": 82584,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Fatalf("%s = %v, want %v", unit, got, want)
		}
	}
	if b := r.Benchmarks[1]; b.Name != "BenchmarkE1ExploreThroughput/random" || b.CPUs != 0 {
		t.Fatalf("second line: %+v", b)
	}
}

// Truncated or corrupted bench output must be a parse error with a
// diagnostic naming the offending line — never a silently thinner report.
func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"truncated-mid-line", "BenchmarkX-8\t 223\t 5347102\n", "malformed benchmark line"},
		{"odd-field-count", "BenchmarkX-8 223 5347102 ns/op extra\n", "malformed benchmark line"},
		{"bad-iterations", "BenchmarkX-8 fast 5347102 ns/op\n", "malformed iteration count"},
		{"bad-metric-value", "BenchmarkX-8 223 quick ns/op\n", "malformed metric value"},
		{"truncated-after-good-line", sample[:strings.Index(sample, "PASS")] + "BenchmarkY-8 10\n", "malformed benchmark line"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parse(bufio.NewScanner(strings.NewReader(c.in)))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("parse error = %v, want substring %q", err, c.want)
			}
		})
	}
}

// Non-benchmark noise (build logs, PASS/ok lines, blank lines) still
// passes through untouched; an input with only noise yields an empty
// report, which main turns into the "no benchmark lines" diagnostic.
func TestParseEmptyOutput(t *testing.T) {
	r, err := parse(bufio.NewScanner(strings.NewReader("PASS\nok  \trepro\t1.2s\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 0 {
		t.Fatalf("benchmarks: %+v", r.Benchmarks)
	}
}

func TestSplitCPUSuffix(t *testing.T) {
	cases := []struct {
		in   string
		name string
		cpus int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX/sub-case-16", "BenchmarkX/sub-case", 16},
		{"BenchmarkX/sub-case", "BenchmarkX/sub-case", 0},
		{"BenchmarkX", "BenchmarkX", 0},
	}
	for _, c := range cases {
		if name, cpus := splitCPUSuffix(c.in); name != c.name || cpus != c.cpus {
			t.Fatalf("splitCPUSuffix(%q) = %q, %d; want %q, %d", c.in, name, cpus, c.name, c.cpus)
		}
	}
}
