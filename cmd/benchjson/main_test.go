package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkE1ExploreThroughput/dfs-seq-pool-8         	     223	   5347102 ns/op	     2629 allocs/op	     82584 schedules/sec
BenchmarkE1ExploreThroughput/random                 	     100	  10000000 ns/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	r := parse(bufio.NewScanner(strings.NewReader(sample)))
	if r.GoOS != "linux" || r.GoArch != "amd64" || r.Package != "repro" {
		t.Fatalf("header: %+v", r)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("benchmarks: %+v", r.Benchmarks)
	}
	b := r.Benchmarks[0]
	if b.Name != "BenchmarkE1ExploreThroughput/dfs-seq-pool" || b.CPUs != 8 || b.Iterations != 223 {
		t.Fatalf("first line: %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 5347102, "allocs/op": 2629, "schedules/sec": 82584,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Fatalf("%s = %v, want %v", unit, got, want)
		}
	}
	if b := r.Benchmarks[1]; b.Name != "BenchmarkE1ExploreThroughput/random" || b.CPUs != 0 {
		t.Fatalf("second line: %+v", b)
	}
}

func TestSplitCPUSuffix(t *testing.T) {
	cases := []struct {
		in   string
		name string
		cpus int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX/sub-case-16", "BenchmarkX/sub-case", 16},
		{"BenchmarkX/sub-case", "BenchmarkX/sub-case", 0},
		{"BenchmarkX", "BenchmarkX", 0},
	}
	for _, c := range cases {
		if name, cpus := splitCPUSuffix(c.in); name != c.name || cpus != c.cpus {
			t.Fatalf("splitCPUSuffix(%q) = %q, %d; want %q, %d", c.in, name, cpus, c.name, c.cpus)
		}
	}
}
