// Command evalsync runs the paper's evaluation methodology end to end and
// prints every reproduced table and figure.
//
// Usage:
//
//	evalsync                  # run everything
//	evalsync -experiment F1   # one experiment: F1 F2 T1 T2 T3 T4 T5 T6
//	evalsync -detail          # include per-declaration similarity detail
//
// Experiments (see DESIGN.md §3 and EXPERIMENTS.md):
//
//	F1  Figure 1: path-expression readers-priority + footnote-3 anomaly
//	F2  Figure 2: path-expression writers-priority
//	T1  expressive-power matrix over the six information types
//	T2  constraint-independence analysis over problem variants
//	T3  modularity criteria + nested-monitor-call experiment
//	T4  test-set coverage of the information types
//	T5  the monitor request-type/request-time queue conflict
//	T6  CSP evaluated with the same methodology (the paper's §6)
//	E1  mechanism evolution: the numeric path operator fixes the
//	    weakness T1 predicts (Flon–Habermann, discussed in §5.1)
//	E2  starvation: the admissible-starvation profile of each variant
//	B2  queueing delays under the standard readers-writers workload
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (F1 F2 T1 T2 T3 T4 T5 T6 E1 E2 B2) or all")
	detail := flag.Bool("detail", false, "include per-declaration similarity detail in T2")
	workers := flag.Int("workers", 0, "goroutines per schedule exploration (0 = all cores; results are identical for any value)")
	flag.Parse()
	eval.ExploreWorkers = *workers

	run := func(id string) bool {
		want := strings.ToUpper(*experiment)
		return want == "ALL" || want == id
	}

	fmt.Println("Evaluating Synchronization Mechanisms — Bloom, SOSP 1979 (reproduction)")
	fmt.Println(strings.Repeat("=", 78))
	ran := false

	if run("T4") {
		ran = true
		fmt.Println()
		fmt.Print(eval.RenderCoverage())
	}
	if run("T1") {
		ran = true
		fmt.Println()
		fmt.Print(eval.RenderPowerMatrix())
		fmt.Println()
		fmt.Print(eval.RenderPowerRationales())
		fmt.Print(eval.RenderVerification(eval.VerifyPower()))
	}
	if run("T2") {
		ran = true
		fmt.Println()
		rows, err := eval.IndependenceTable()
		if err != nil {
			fatal(err)
		}
		fmt.Print(eval.RenderIndependence(rows))
		fmt.Println()
		sizes, err := eval.SizeTable()
		if err != nil {
			fatal(err)
		}
		fmt.Print(eval.RenderSizes(sizes))
		if *detail {
			fmt.Println()
			for _, s := range solutions.All() {
				rep, err := eval.ComparePair(s.Mechanism, problems.NameReadersPriority, problems.NameWritersPriority)
				if err != nil {
					fatal(err)
				}
				fmt.Print(eval.RenderPairDetail(rep))
				fmt.Println()
			}
		}
	}
	if run("T3") {
		ran = true
		fmt.Println()
		fmt.Print(eval.RenderModularity(eval.RunNestedMonitorExperiment(), eval.RunCrowdConcurrencyExperiment()))
	}
	if run("T5") {
		ran = true
		fmt.Println()
		fmt.Print(renderT5())
	}
	if run("T6") {
		ran = true
		fmt.Println()
		fmt.Print(renderT6())
	}
	if run("E1") {
		ran = true
		fmt.Println()
		fmt.Print(eval.RenderEvolution(eval.RunEvolution()))
	}
	if run("B2") {
		ran = true
		fmt.Println()
		fmt.Print(eval.RenderFairness(eval.RunFairness()))
	}
	if run("E2") {
		ran = true
		fmt.Println()
		fmt.Print(eval.RenderStarvation(eval.RunStarvation()))
	}
	if run("F1") {
		ran = true
		fmt.Println()
		fmt.Print(eval.RenderFigure1(eval.RunFigure1()))
	}
	if run("F2") {
		ran = true
		fmt.Println()
		fmt.Print(eval.RenderFigure2(eval.RunFigure2()))
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *experiment))
	}
}

// renderT5 demonstrates the §5.2 monitor queue conflict: the FCFS
// readers–writers problem needs request type AND request time, which both
// live in queues; the monitor solution's two-stage queueing resolves it,
// and the run shows the FCFS admission order holding while reads share.
func renderT5() string {
	var b strings.Builder
	b.WriteString("T5. The monitor request-type/request-time conflict (§5.2)\n\n")
	b.WriteString("  Both information types are carried by queues: order needs one queue, types need\n")
	b.WriteString("  separate queues. The monitor FCFS readers-writers solution therefore keeps a\n")
	b.WriteString("  single FIFO condition (order) plus a parallel type list (two-stage queueing).\n\n")

	suite, _ := solutions.ByMechanism("monitor")
	k := kernel.NewSim()
	tr, vs, err := solutions.RunStandard(k, suite, problems.NameFCFSRW, true)
	if err != nil {
		fmt.Fprintf(&b, "  run failed: %v\n", err)
		return b.String()
	}
	ivs := tr.MustIntervals()
	overlappingReads := 0
	for i := 0; i < len(ivs); i++ {
		for j := i + 1; j < len(ivs); j++ {
			if ivs[i].Op == "read" && ivs[j].Op == "read" && ivs[i].OverlapsExecution(ivs[j]) {
				overlappingReads++
			}
		}
	}
	fmt.Fprintf(&b, "  operations executed:        %d\n", len(ivs))
	fmt.Fprintf(&b, "  overlapping read pairs:     %d (type information preserved: reads still share)\n", overlappingReads)
	fmt.Fprintf(&b, "  FCFS violations:            %d (time information preserved)\n", len(vs))
	b.WriteString("\n  Serializers dissolve the conflict (one queue, guarantees carry the type); the\n")
	b.WriteString("  T2 table shows their FCFS variant staying structurally close to readers-priority.\n")
	return b.String()
}

// renderT6 is the §6 extension: CSP evaluated with the same method.
func renderT6() string {
	var b strings.Builder
	b.WriteString("T6. Message passing evaluated with the same methodology (§6: CSP [20])\n\n")
	suite, _ := solutions.ByMechanism("csp")
	for _, problem := range problems.AllProblems() {
		k := kernel.NewSim()
		_, vs, err := solutions.RunStandard(k, suite, problem, true)
		status := "ok"
		if err != nil {
			status = "FAILED: " + err.Error()
		} else if len(vs) > 0 {
			status = fmt.Sprintf("%d violations", len(vs))
		}
		fmt.Fprintf(&b, "  %-18s %s\n", problem, status)
	}
	b.WriteString("\n  ratings (T1 row): ")
	ratings := eval.ExpressivePower()["csp"]
	var cells []string
	for _, it := range core.AllInfoTypes() {
		cells = append(cells, fmt.Sprintf("%s=%s", eval.FmtInfoTypeShort(it), eval.PowerCell(ratings[it])))
	}
	b.WriteString(strings.Join(cells, " "))
	b.WriteString("\n")
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evalsync:", err)
	os.Exit(1)
}
