// Command evalsync runs the paper's evaluation methodology end to end and
// prints every reproduced table and figure.
//
// Usage:
//
//	evalsync                  # run everything
//	evalsync -experiment F1   # one experiment: F1 F2 T1 T2 T3 T4 T5 T6 T7
//	evalsync -detail          # include per-declaration similarity detail
//
// Experiments (see DESIGN.md §3 and EXPERIMENTS.md):
//
//	F1  Figure 1: path-expression readers-priority + footnote-3 anomaly
//	F2  Figure 2: path-expression writers-priority
//	T1  expressive-power matrix over the six information types
//	T2  constraint-independence analysis over problem variants
//	T3  modularity criteria + nested-monitor-call experiment
//	T4  test-set coverage of the information types
//	T5  the monitor request-type/request-time queue conflict
//	T6  CSP evaluated with the same methodology (the paper's §6)
//	T7  static lockorder/lostwakeup findings cross-validated by
//	    schedule exploration (the synclint xcheck gate)
//	T8  schedule-space coverage under partial-order reduction, one row
//	    per T4 pairing (opt-in: runs only as -experiment T8, never in all)
//	T9  discriminating power of the generated constraint corpus: verdict
//	    counts by mechanism × constraint shape, naive-gate control
//	    included (opt-in: runs only as -experiment T9, never in all)
//	E1  mechanism evolution: the numeric path operator fixes the
//	    weakness T1 predicts (Flon–Habermann, discussed in §5.1)
//	E2  starvation: the admissible-starvation profile of each variant
//	B2  queueing delays under the standard readers-writers workload
//
// Every experiment is checked against the paper's expectation as it runs;
// evalsync exits non-zero when any outcome contradicts the paper, so a CI
// invocation is itself a reproduction check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/explore"
	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/synclint/xcheck"
	"repro/internal/synth"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (F1 F2 T1 T2 T3 T4 T5 T6 T7 E1 E2 B2) or all; T8 (DPOR coverage) and T9 (synth corpus power) run only when named explicitly")
	detail := flag.Bool("detail", false, "include per-declaration similarity detail in T2")
	workers := flag.Int("workers", 0, "goroutines per schedule exploration (0 = all cores; results are identical for any value)")
	pool := flag.Bool("pool", false, "recycle kernels/recorders across exploration runs (throughput only; identical results)")
	prune := flag.Bool("prune", false, "prune schedule exploration via state fingerprints (reaches findings in fewer runs, so reported run counts shrink)")
	shrink := flag.Bool("shrink", false, "minimize every exploration finding by delta debugging (adds a shrunk-schedule line to F1)")
	checkpoint := flag.Bool("checkpoint", false, "fork exploration DFS runs from kernel snapshots at their branch point (throughput only; identical results)")
	dpor := flag.Bool("dpor", false, "reduce schedule exploration by dynamic partial-order reduction (fewer runs to the same findings; adds coverage stats)")
	dporAudit := flag.Bool("dpor-audit", false, "run every exploration reduced and unreduced and fail on any missed violation rule (implies -dpor)")
	progress := flag.Bool("progress", false, "print a one-line live exploration status to stderr")
	saveSched := flag.String("save-sched", "", "write the F1 anomaly (shrunk when -shrink) to this path as a replayable .sched artifact")
	flag.Parse()
	eval.ExploreWorkers = *workers
	eval.ExplorePool = *pool
	eval.ExplorePrune = *prune
	eval.ExploreShrink = *shrink
	eval.ExploreCheckpoint = *checkpoint
	eval.ExploreDPOR = *dpor
	eval.ExploreDPORAudit = *dporAudit
	if *progress {
		eval.ExploreProgress = progressLine()
	}
	saveSchedPath = *saveSched

	contradictions, err := writeReport(os.Stdout, strings.ToUpper(*experiment), *detail)
	if err != nil {
		fatal(err)
	}
	if len(contradictions) > 0 {
		fmt.Fprintf(os.Stderr, "\nevalsync: %d outcome(s) contradict the paper's expectations:\n", len(contradictions))
		for _, c := range contradictions {
			fmt.Fprintln(os.Stderr, "  - "+c)
		}
		os.Exit(1)
	}
}

// writeReport renders the selected experiments to w and returns a line
// for every outcome that contradicts the paper's expectation. experiment
// is an upper-case id or "ALL".
func writeReport(w io.Writer, experiment string, detail bool) ([]string, error) {
	run := func(id string) bool {
		return experiment == "ALL" || experiment == id
	}
	var contradictions []string
	contradict := func(format string, args ...any) {
		contradictions = append(contradictions, fmt.Sprintf(format, args...))
	}

	fmt.Fprintln(w, "Evaluating Synchronization Mechanisms — Bloom, SOSP 1979 (reproduction)")
	fmt.Fprintln(w, strings.Repeat("=", 78))
	ran := false

	if run("T4") {
		ran = true
		fmt.Fprintln(w)
		out := eval.RenderCoverage()
		fmt.Fprint(w, out)
		// The footnote-2 problem set must exercise every information type.
		n := len(core.AllInfoTypes())
		if !strings.Contains(out, fmt.Sprintf("%d of %d information types covered", n, n)) {
			contradict("T4: the test set no longer covers all %d information types", n)
		}
	}
	if run("T1") {
		ran = true
		fmt.Fprintln(w)
		fmt.Fprint(w, eval.RenderPowerMatrix())
		fmt.Fprintln(w)
		fmt.Fprint(w, eval.RenderPowerRationales())
		vs := eval.VerifyPower()
		fmt.Fprint(w, eval.RenderVerification(vs))
		for _, v := range vs {
			if !v.OK() {
				contradict("T1: %s/%s cell inconsistent with the run evidence (err=%v)", v.Mechanism, v.InfoType, v.Err)
			}
		}
	}
	if run("T2") {
		ran = true
		fmt.Fprintln(w)
		rows, err := eval.IndependenceTable()
		if err != nil {
			return nil, err
		}
		fmt.Fprint(w, eval.RenderIndependence(rows))
		if len(rows) != len(solutions.All()) {
			contradict("T2: expected one similarity row per mechanism, got %d", len(rows))
		}
		for _, r := range rows {
			if r.RPvsWP <= 0 || r.RPvsWP > 1 || r.RPvsFCFS <= 0 || r.RPvsFCFS > 1 {
				contradict("T2: %s similarity out of range (%v, %v)", r.Mechanism, r.RPvsWP, r.RPvsFCFS)
			}
		}
		fmt.Fprintln(w)
		sizes, err := eval.SizeTable()
		if err != nil {
			return nil, err
		}
		fmt.Fprint(w, eval.RenderSizes(sizes))
		if detail {
			fmt.Fprintln(w)
			for _, s := range solutions.All() {
				rep, err := eval.ComparePair(s.Mechanism, problems.NameReadersPriority, problems.NameWritersPriority)
				if err != nil {
					return nil, err
				}
				fmt.Fprint(w, eval.RenderPairDetail(rep))
				fmt.Fprintln(w)
			}
		}
	}
	if run("T3") {
		ran = true
		fmt.Fprintln(w)
		nested := eval.RunNestedMonitorExperiment()
		crowd := eval.RunCrowdConcurrencyExperiment()
		fmt.Fprint(w, eval.RenderModularity(nested, crowd))
		if !nested.NaiveDeadlocks {
			contradict("T3: naive nested monitor call did not deadlock")
		}
		if !nested.StructuredCompletes {
			contradict("T3: structured nested call did not complete (%v)", nested.StructuredErr)
		}
		if !crowd.OverlapObserved {
			contradict("T3: serializer crowd never overlapped resource access with possession")
		}
		table := eval.ModularityTable()
		for i, sm := range eval.StaticModularityTable() {
			if sm.Err != nil {
				contradict("T3: static analysis of %s failed: %v", sm.Mechanism, sm.Err)
				continue
			}
			if sm.Encapsulated() != table[i].Encapsulation {
				contradict("T3: static encapsulation verdict for %s (%d/%d types bound) contradicts the table",
					sm.Mechanism, sm.Summary.BoundCount(), len(sm.Summary.Types))
			}
		}
	}
	if run("T5") {
		ran = true
		fmt.Fprintln(w)
		out, t5 := renderT5()
		fmt.Fprint(w, out)
		if t5.err != nil {
			contradict("T5: monitor FCFSRW run failed: %v", t5.err)
		} else {
			if t5.overlappingReads == 0 {
				contradict("T5: no overlapping read pairs — type information was lost")
			}
			if t5.violations != 0 {
				contradict("T5: %d FCFS violations — time information was lost", t5.violations)
			}
		}
	}
	if run("T6") {
		ran = true
		fmt.Fprintln(w)
		out, failures := renderT6()
		fmt.Fprint(w, out)
		for _, f := range failures {
			contradict("T6: csp %s", f)
		}
	}
	if run("T7") {
		ran = true
		fmt.Fprintln(w)
		rows, err := eval.RunCrossCheck()
		if err != nil {
			return nil, err
		}
		fmt.Fprint(w, eval.RenderCrossCheck(rows))
		fixtureConfirmed := false
		for _, r := range rows {
			switch {
			case r.Status == "unmapped":
				contradict("T7: finding at %s:%d has no standard workload to hunt on",
					r.Finding.Pos.Filename, r.Finding.Pos.Line)
			case r.Mechanism == xcheck.FixtureMechanism && r.Status == "confirmed":
				fixtureConfirmed = true
			case r.Mechanism != xcheck.FixtureMechanism && r.Status == "confirmed":
				contradict("T7: allow-reasoned finding at %s:%d was realized as a %s/%s hazard — its suppression is wrong",
					r.Finding.Pos.Filename, r.Finding.Pos.Line, r.Mechanism, r.Problem)
			}
		}
		if !fixtureConfirmed {
			contradict("T7: the hunt failed to realize the seeded cyclic-wait fixture")
		}
	}
	// T8 is opt-in (never part of "all"): it runs 36 reduced explorations
	// and reports coverage, which is diagnostic detail rather than part
	// of the paper's reproduction.
	if experiment == "T8" {
		ran = true
		fmt.Fprintln(w)
		rows, err := eval.RunDPORCoverage()
		if err != nil {
			return nil, err
		}
		fmt.Fprint(w, eval.RenderDPORCoverage(rows))
		for _, r := range rows {
			if r.Explored <= 0 || r.Explored > 1 {
				contradict("T8: %s/%s explored fraction %v out of (0, 1]", r.Mechanism, r.Problem, r.Explored)
			}
		}
	}
	// T9 is opt-in for the same reason: it explores a whole generated
	// corpus across every adapter, which is a fuzzing figure rather than
	// part of the paper's reproduction.
	if experiment == "T9" {
		ran = true
		fmt.Fprintln(w)
		// The window is chosen so the fixed smoke budget has teeth: it
		// contains corpus seeds the naive-gate control loses races on.
		const n, seed = 12, 18
		rows, err := eval.RunSynthPower(n, seed)
		if err != nil {
			return nil, err
		}
		fmt.Fprint(w, eval.RenderSynthPower(rows, n, seed))
		gateCaught, pathRefused := false, false
		for _, r := range rows {
			if r.Mechanism == synth.NaiveGate && r.Fail > 0 {
				gateCaught = true
			}
			if r.Mechanism == "pathexpr" && r.Inexpressible > 0 {
				pathRefused = true
			}
			if r.Mechanism != synth.NaiveGate && r.Fail+r.Error > 0 {
				contradict("T9: correct mechanism %s failed %d and errored %d generated problems (shape %s)",
					r.Mechanism, r.Fail, r.Error, r.Shape)
			}
		}
		if !gateCaught {
			contradict("T9: the naive-gate control passed the whole corpus — the generated problems have no discriminating power at this budget")
		}
		if !pathRefused {
			contradict("T9: path expressions expressed every sampled set — the vocabulary gate is not engaging")
		}
	}
	if run("E1") {
		ran = true
		fmt.Fprintln(w)
		res := eval.RunEvolution()
		fmt.Fprint(w, eval.RenderEvolution(res))
		if !res.OK() {
			contradict("E1: the numeric path operator did not remove the escape (err=%v)", res.Err)
		}
	}
	if run("B2") {
		ran = true
		fmt.Fprintln(w)
		rows := eval.RunFairness()
		fmt.Fprint(w, eval.RenderFairness(rows))
		for _, r := range rows {
			if r.Err != nil {
				contradict("B2: %s/%s run failed: %v", r.Mechanism, r.Variant, r.Err)
				continue
			}
			switch r.Variant {
			case problems.NameReadersPriority:
				if r.ReadAvgQ > r.WriteAvgQ {
					contradict("B2: %s readers-priority delays readers more than writers (%.1f > %.1f)",
						r.Mechanism, r.ReadAvgQ, r.WriteAvgQ)
				}
			case problems.NameWritersPriority:
				if r.WriteAvgQ > r.ReadAvgQ {
					contradict("B2: %s writers-priority delays writers more than readers (%.1f > %.1f)",
						r.Mechanism, r.WriteAvgQ, r.ReadAvgQ)
				}
			}
		}
	}
	if run("E2") {
		ran = true
		fmt.Fprintln(w)
		rows := eval.RunStarvation()
		fmt.Fprint(w, eval.RenderStarvation(rows))
		for _, r := range rows {
			if r.Err != nil {
				contradict("E2: %s/%s/%s run failed: %v", r.Mechanism, r.Variant, r.Storm, r.Err)
				continue
			}
			if want := eval.ExpectedStarved(r.Variant, r.Storm); r.Starved != want {
				contradict("E2: %s/%s under a %s storm: starved=%v, specification admits %v",
					r.Mechanism, r.Variant, r.Storm, r.Starved, want)
			}
		}
	}
	if run("F1") {
		ran = true
		fmt.Fprintln(w)
		res := eval.RunFigure1()
		fmt.Fprint(w, eval.RenderFigure1(res))
		if !res.AnomalyFound {
			contradict("F1: the footnote-3 anomaly was not found in %d runs", res.Runs)
		} else if saveSchedPath != "" {
			if err := eval.SaveFigure1Sched(res, saveSchedPath); err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "\n  saved schedule artifact: %s (replay with: simtrace -replay %s)\n",
				saveSchedPath, saveSchedPath)
		}
	}
	if run("F2") {
		ran = true
		fmt.Fprintln(w)
		res := eval.RunFigure2()
		fmt.Fprint(w, eval.RenderFigure2(res))
		if !res.WritersPriorityHolds {
			contradict("F2: a writers-priority violation was found in the Figure-2 solution")
		}
		if !res.ReadersPriorityViolated {
			contradict("F2: the Figure-2 solution unexpectedly satisfies readers-priority")
		}
	}
	if !ran {
		return nil, fmt.Errorf("unknown experiment %q", experiment)
	}
	return contradictions, nil
}

// t5Outcome carries the measured facts out of renderT5 for the
// contradiction check.
type t5Outcome struct {
	overlappingReads int
	violations       int
	err              error
}

// renderT5 demonstrates the §5.2 monitor queue conflict: the FCFS
// readers–writers problem needs request type AND request time, which both
// live in queues; the monitor solution's two-stage queueing resolves it,
// and the run shows the FCFS admission order holding while reads share.
func renderT5() (string, t5Outcome) {
	var b strings.Builder
	b.WriteString("T5. The monitor request-type/request-time conflict (§5.2)\n\n")
	b.WriteString("  Both information types are carried by queues: order needs one queue, types need\n")
	b.WriteString("  separate queues. The monitor FCFS readers-writers solution therefore keeps a\n")
	b.WriteString("  single FIFO condition (order) plus a parallel type list (two-stage queueing).\n\n")

	suite, _ := solutions.ByMechanism("monitor")
	k := kernel.NewSim()
	tr, vs, err := solutions.RunStandard(k, suite, problems.NameFCFSRW, true)
	if err != nil {
		fmt.Fprintf(&b, "  run failed: %v\n", err)
		return b.String(), t5Outcome{err: err}
	}
	ivs := tr.MustIntervals()
	overlappingReads := 0
	for i := 0; i < len(ivs); i++ {
		for j := i + 1; j < len(ivs); j++ {
			if ivs[i].Op == "read" && ivs[j].Op == "read" && ivs[i].OverlapsExecution(ivs[j]) {
				overlappingReads++
			}
		}
	}
	fmt.Fprintf(&b, "  operations executed:        %d\n", len(ivs))
	fmt.Fprintf(&b, "  overlapping read pairs:     %d (type information preserved: reads still share)\n", overlappingReads)
	fmt.Fprintf(&b, "  FCFS violations:            %d (time information preserved)\n", len(vs))
	b.WriteString("\n  Serializers dissolve the conflict (one queue, guarantees carry the type); the\n")
	b.WriteString("  T2 table shows their FCFS variant staying structurally close to readers-priority.\n")
	return b.String(), t5Outcome{overlappingReads: overlappingReads, violations: len(vs)}
}

// renderT6 is the §6 extension: CSP evaluated with the same method. The
// second result lists problems whose run failed or violated its oracle.
func renderT6() (string, []string) {
	var b strings.Builder
	var failures []string
	b.WriteString("T6. Message passing evaluated with the same methodology (§6: CSP [20])\n\n")
	suite, _ := solutions.ByMechanism("csp")
	for _, problem := range problems.AllProblems() {
		k := kernel.NewSim()
		_, vs, err := solutions.RunStandard(k, suite, problem, true)
		status := "ok"
		if err != nil {
			status = "FAILED: " + err.Error()
		} else if len(vs) > 0 {
			status = fmt.Sprintf("%d violations", len(vs))
		}
		if status != "ok" {
			failures = append(failures, fmt.Sprintf("%s: %s", problem, status))
		}
		fmt.Fprintf(&b, "  %-18s %s\n", problem, status)
	}
	b.WriteString("\n  ratings (T1 row): ")
	ratings := eval.ExpressivePower()["csp"]
	var cells []string
	for _, it := range core.AllInfoTypes() {
		cells = append(cells, fmt.Sprintf("%s=%s", eval.FmtInfoTypeShort(it), eval.PowerCell(ratings[it])))
	}
	b.WriteString(strings.Join(cells, " "))
	b.WriteString("\n")
	return b.String(), failures
}

// saveSchedPath, when set via -save-sched, makes the F1 experiment write
// its anomaly as a replayable schedule artifact.
var saveSchedPath string

// progressLine renders exploration Stats snapshots as a single
// overwritten stderr line, throttled to keep rendering cheap.
func progressLine() func(explore.Stats) {
	var last time.Time
	return func(s explore.Stats) {
		if s.Phase != "done" && time.Since(last) < 100*time.Millisecond {
			return
		}
		last = time.Now()
		fmt.Fprintf(os.Stderr,
			"\rexplore: phase=%-8s runs=%-7d %6.0f/s pruned=%-6d frontier=%-4d shrink=%d(len %d)   ",
			s.Phase, s.Runs, s.RunsPerSec, s.Pruned, s.Frontier, s.ShrinkRuns, s.ShrinkLen)
		if s.Phase == "done" {
			fmt.Fprintln(os.Stderr)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evalsync:", err)
	os.Exit(1)
}
