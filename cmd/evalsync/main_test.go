package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden report")

// TestReportGolden locks the T1–T7 text report byte for byte: every
// table, rating, and measured number in the deterministic part of the
// report is part of the reproduction's contract. Regenerate with
//
//	go test ./cmd/evalsync -run TestReportGolden -update
func TestReportGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, id := range []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7"} {
		contradictions, err := writeReport(&buf, id, false)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, c := range contradictions {
			t.Errorf("%s: %s", id, c)
		}
	}
	golden := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from %s (run with -update if the change is intended)\n--- got ---\n%s", golden, buf.String())
	}
}

// TestUnknownExperiment pins the error path.
func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if _, err := writeReport(&buf, "T99", false); err == nil {
		t.Fatal("want error for unknown experiment id")
	}
}
