// Command pathc is a path-expression compiler and checker
// (Campbell–Habermann paths, the version of Bloom's §5.1).
//
// Usage:
//
//	pathc -e 'path {read} , write end'            # parse and describe
//	pathc -e '...' -check 'read read write'       # admissibility of a history
//	pathc -e '...' -startable                     # what may start initially
//	pathc -e '...' -translate                     # the compiled P/V program
//	pathc -f paths.txt -check 'a b a b'           # read paths from a file
//	pathc -figure1 | -figure2                     # the paper's figures
//
// Histories given to -check are whitespace-separated operation names,
// each denoting one complete (start+finish) execution. Use -trace to
// print the admissible prefix step by step.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/pathexpr"
	"repro/internal/solutions/pathexprsol"
)

func main() {
	expr := flag.String("e", "", "path expression source (one or more 'path ... end')")
	file := flag.String("f", "", "file containing path expressions")
	check := flag.String("check", "", "whitespace-separated operation history to check")
	startable := flag.Bool("startable", false, "list operations that may start in the initial state")
	translate := flag.Bool("translate", false, "print the compiled semaphore translation (Campbell–Habermann)")
	traceFlag := flag.Bool("trace", false, "with -check: print each step")
	figure1 := flag.Bool("figure1", false, "use the paper's Figure 1 paths")
	figure2 := flag.Bool("figure2", false, "use the paper's Figure 2 paths")
	flag.Parse()

	src := *expr
	switch {
	case *figure1:
		src = pathexprsol.Figure1Paths
	case *figure2:
		src = pathexprsol.Figure2Paths
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	if src == "" {
		flag.Usage()
		os.Exit(2)
	}

	paths, err := pathexpr.ParseList(src)
	if err != nil {
		fatal(err)
	}
	set, err := pathexpr.CompileList(paths)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("parsed %d path(s):\n", len(paths))
	for i, p := range paths {
		fmt.Printf("  %d: %s\n", i+1, p)
	}
	fmt.Printf("constrained operations: %s\n", strings.Join(set.Ops(), ", "))
	if *translate {
		fmt.Print(set.Describe())
	}

	checker := pathexpr.NewChecker(set)
	if *startable {
		fmt.Printf("startable now: %s\n", strings.Join(checker.Startable(), ", "))
	}
	if *check != "" {
		history := strings.Fields(*check)
		ok := true
		for i, op := range history {
			err := checker.Exec(op)
			if *traceFlag {
				status := "ok"
				if err != nil {
					status = "BLOCKED"
				}
				fmt.Printf("  step %2d: %-16s %s\n", i+1, op, status)
			}
			if err != nil {
				fmt.Printf("history INADMISSIBLE at step %d (%s): %v\n", i+1, op, err)
				fmt.Printf("startable instead: %s\n", strings.Join(checker.Startable(), ", "))
				ok = false
				break
			}
		}
		if ok {
			fmt.Printf("history admissible (%d operations)\n", len(history))
			fmt.Printf("startable next: %s\n", strings.Join(checker.Startable(), ", "))
		} else {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pathc:", err)
	os.Exit(1)
}
