// Command simtrace runs one (mechanism, problem) solution on the
// deterministic kernel and prints the trace and oracle verdict; with
// -explore it hunts schedules for a violating interleaving.
//
// Usage:
//
//	simtrace -mech monitor -problem readers-priority
//	simtrace -mech pathexpr -problem readers-priority -explore
//	simtrace -mech csp -problem disk-scheduler -policy random -seed 9
//	simtrace -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/eval"
	"repro/internal/explore"
	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/trace"
)

func main() {
	mech := flag.String("mech", "monitor", "mechanism: semaphore ccr pathexpr monitor serializer csp")
	problem := flag.String("problem", problems.NameReadersPriority, "problem name")
	policy := flag.String("policy", "fifo", "schedule policy: fifo, lifo, random")
	seed := flag.Int64("seed", 1, "seed for -policy random")
	exploreFlag := flag.Bool("explore", false, "hunt schedules for a violation (readers/writers-priority problems)")
	workers := flag.Int("workers", 0, "goroutines for -explore (0 = all cores; results are identical for any value)")
	prune := flag.Bool("prune", false, "prune the -explore DFS via state fingerprints (fewer schedules to a finding)")
	pool := flag.Bool("pool", false, "recycle kernels and recorders across -explore runs (higher throughput)")
	list := flag.Bool("list", false, "list mechanisms and problems")
	quiet := flag.Bool("quiet", false, "suppress the trace, print only the verdict")
	flag.Parse()

	if *list {
		var mechs []string
		for _, s := range solutions.All() {
			mechs = append(mechs, s.Mechanism)
		}
		fmt.Println("mechanisms:", strings.Join(mechs, ", "))
		fmt.Println("problems:  ", strings.Join(problems.AllProblems(), ", "))
		return
	}

	suite, ok := solutions.ByMechanism(*mech)
	if !ok {
		fatal(fmt.Errorf("unknown mechanism %q", *mech))
	}

	if *exploreFlag {
		runExplore(suite, *problem, *quiet, explore.Options{
			RandomRuns: 300, DFSRuns: 600,
			Workers: *workers, Prune: *prune, Pool: *pool,
		})
		return
	}

	var pol kernel.Policy
	switch *policy {
	case "fifo":
		pol = kernel.FIFO()
	case "lifo":
		pol = kernel.LIFO()
	case "random":
		pol = kernel.Random(*seed)
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	k := kernel.NewSim(kernel.WithPolicy(pol))
	strict := *policy == "fifo"
	tr, vs, err := solutions.RunStandard(k, suite, *problem, strict)
	if !*quiet {
		fmt.Print(tr)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d events, %d scheduling steps, strict=%v\n", len(tr), k.Steps(), strict)
	if stats, serr := tr.Stats(); serr == nil {
		fmt.Print(trace.RenderStats(stats))
	}
	if len(vs) == 0 {
		fmt.Println("oracle: trace admissible")
		return
	}
	fmt.Printf("oracle: %d violation(s):\n", len(vs))
	for _, v := range vs {
		fmt.Println("  " + v.String())
	}
	os.Exit(1)
}

// runExplore hunts for priority violations on the figure scenario.
func runExplore(suite solutions.Suite, problem string, quiet bool, opts explore.Options) {
	var oracle explore.Oracle
	switch problem {
	case problems.NameReadersPriority:
		oracle = problems.CheckReadersPriority
	case problems.NameWritersPriority:
		oracle = problems.CheckWritersPriority
	default:
		fatal(fmt.Errorf("-explore supports readers-priority and writers-priority, not %q", problem))
	}
	prog := explore.Program(func(k kernel.Kernel, r *trace.Recorder) {
		var store problems.RWStore
		switch problem {
		case problems.NameReadersPriority:
			store = suite.NewReadersPriority(k)
		default:
			store = suite.NewWritersPriority(k)
		}
		eval.FigureScenario(store)(k, r)
	})
	if inc, ok := problems.IncrementalOracleFor(problem); ok && opts.Pool {
		opts.Stream = inc.New
	}
	res := explore.Run(prog, oracle, opts)
	if res.Pruned > 0 {
		fmt.Printf("explored %d schedules (pruned %d)\n", res.Runs, res.Pruned)
	} else {
		fmt.Printf("explored %d schedules\n", res.Runs)
	}
	if !res.Found {
		fmt.Println("no violation found")
		return
	}
	if res.Err != nil {
		fmt.Printf("kernel error under some schedule: %v\n", res.Err)
	}
	if !quiet {
		fmt.Println("violating trace:")
		fmt.Print(res.Trace)
	}
	for _, v := range res.Violations {
		fmt.Println("violation: " + v.String())
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simtrace:", err)
	os.Exit(1)
}
