// Command simtrace runs one (mechanism, problem) solution on the
// deterministic kernel and prints the trace and oracle verdict; with
// -explore it hunts schedules for a violating interleaving.
//
// Usage:
//
//	simtrace -mech monitor -problem readers-priority
//	simtrace -mech monitor -problem readers-priority -kernel real
//	simtrace -mech pathexpr -problem readers-priority -explore
//	simtrace -mech pathexpr -problem readers-priority -explore -shrink -save-sched f1.sched
//	simtrace -replay f1.sched
//	simtrace -mech csp -problem disk-scheduler -policy random -seed 9
//	simtrace -list
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"repro/internal/eval"
	"repro/internal/explore"
	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/synclint/xcheck"
	"repro/internal/synclint/xcheck/cyclicfix"
	"repro/internal/trace"
)

func main() {
	mech := flag.String("mech", "monitor", "mechanism: semaphore ccr pathexpr monitor serializer csp")
	problem := flag.String("problem", problems.NameReadersPriority, "problem name")
	kernelFlag := flag.String("kernel", "sim", "kernel: sim (deterministic scheduler) or real (goroutines, wall clock)")
	policy := flag.String("policy", "fifo", "schedule policy: fifo, lifo, random (sim kernel only)")
	seed := flag.Int64("seed", 1, "seed for -policy random")
	exploreFlag := flag.Bool("explore", false, "hunt schedules for a violation (readers/writers-priority problems)")
	workers := flag.Int("workers", 0, "goroutines for -explore (0 = all cores; results are identical for any value)")
	prune := flag.Bool("prune", false, "prune the -explore DFS via state fingerprints (fewer schedules to a finding)")
	pool := flag.Bool("pool", false, "recycle kernels and recorders across -explore runs (higher throughput)")
	checkpoint := flag.Bool("checkpoint", false, "fork -explore DFS runs from kernel snapshots at their branch point instead of replaying the prefix from the root")
	dpor := flag.Bool("dpor", false, "reduce the -explore DFS by dynamic partial-order reduction (backtrack only where happens-before analysis demands; reports schedule-space coverage)")
	dporAudit := flag.Bool("dpor-audit", false, "run the -explore search reduced and unreduced and fail if the reduction missed a violation rule (implies -dpor)")
	shrink := flag.Bool("shrink", false, "minimize the -explore finding by delta debugging (1-minimal schedule)")
	progress := flag.Bool("progress", false, "print a one-line live exploration status to stderr")
	saveSched := flag.String("save-sched", "", "write the -explore finding to this path as a replayable .sched artifact")
	replayFile := flag.String("replay", "", "replay a saved .sched artifact with drift detection; exits 0 iff it reproduces")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) during -explore")
	list := flag.Bool("list", false, "list mechanisms and problems")
	quiet := flag.Bool("quiet", false, "suppress the trace, print only the verdict")
	flag.Parse()

	if *list {
		var mechs []string
		for _, s := range solutions.All() {
			mechs = append(mechs, s.Mechanism)
		}
		fmt.Println("mechanisms:", strings.Join(mechs, ", "))
		fmt.Println("problems:  ", strings.Join(problems.AllProblems(), ", "))
		return
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "simtrace: pprof:", err)
			}
		}()
	}

	if *replayFile != "" {
		runReplay(*replayFile, *quiet)
		return
	}

	suite, ok := solutions.ByMechanism(*mech)
	if !ok {
		fatal(fmt.Errorf("unknown mechanism %q", *mech))
	}

	switch *kernelFlag {
	case "sim":
	case "real":
		if *exploreFlag {
			fatal(fmt.Errorf("-explore needs the deterministic kernel (drop -kernel=real)"))
		}
		if *dpor || *dporAudit {
			fatal(fmt.Errorf("-dpor needs the deterministic kernel's dependency trace (drop -kernel=real)"))
		}
		if *policy != "fifo" {
			fatal(fmt.Errorf("-policy has no effect on the real kernel (goroutines schedule themselves)"))
		}
		runReal(suite, *problem, *quiet)
		return
	default:
		fatal(fmt.Errorf("unknown kernel %q (want sim or real)", *kernelFlag))
	}

	if *exploreFlag {
		opts := explore.Options{
			RandomRuns: 300, DFSRuns: 600,
			Workers: *workers, Prune: *prune, Pool: *pool, Shrink: *shrink,
			Checkpoint: *checkpoint, DPOR: *dpor, DPORAudit: *dporAudit,
		}
		if *progress {
			opts.Progress = progressLine()
		}
		runExplore(suite, *problem, *quiet, *saveSched, opts)
		return
	}

	var pol kernel.Policy
	switch *policy {
	case "fifo":
		pol = kernel.FIFO()
	case "lifo":
		pol = kernel.LIFO()
	case "random":
		pol = kernel.Random(*seed)
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	k := kernel.NewSim(kernel.WithPolicy(pol))
	strict := *policy == "fifo"
	tr, vs, err := solutions.RunStandard(k, suite, *problem, strict)
	if !*quiet {
		fmt.Print(tr)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d events, %d scheduling steps, strict=%v\n", len(tr), k.Steps(), strict)
	if stats, serr := tr.Stats(); serr == nil {
		fmt.Print(trace.RenderStats(stats))
	}
	if len(vs) == 0 {
		fmt.Println("oracle: trace admissible")
		return
	}
	fmt.Printf("oracle: %d violation(s):\n", len(vs))
	for _, v := range vs {
		fmt.Println("  " + v.String())
	}
	os.Exit(1)
}

// runReal runs the standard workload once on the real kernel: genuine
// goroutine concurrency and wall-clock time instead of the simulated
// scheduler. The trace is judged non-strict — exclusion and resource
// safety only — because FCFS/priority ordering is exact only on
// deterministic traces (that remains the sim kernel's job; see
// DESIGN.md §8). Steps are not reported: the real kernel makes no
// scheduling decisions of its own.
func runReal(suite solutions.Suite, problem string, quiet bool) {
	k := kernel.NewReal()
	defer k.Close()
	tr, vs, err := solutions.RunStandard(k, suite, problem, false)
	if !quiet {
		fmt.Print(tr)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d events on the real kernel (non-deterministic), strict=false\n", len(tr))
	if stats, serr := tr.Stats(); serr == nil {
		fmt.Print(trace.RenderStats(stats))
	}
	if len(vs) == 0 {
		fmt.Println("oracle: trace admissible")
		return
	}
	fmt.Printf("oracle: %d violation(s):\n", len(vs))
	for _, v := range vs {
		fmt.Println("  " + v.String())
	}
	os.Exit(1)
}

// figureProgram rebuilds the figure-scenario exploration program and
// oracle for a (mechanism, priority-problem) pair — shared by -explore,
// -save-sched sealing, and -replay verification, which must all agree.
func figureProgram(suite solutions.Suite, problem string) (explore.Program, explore.Oracle, error) {
	var oracle explore.Oracle
	switch problem {
	case problems.NameReadersPriority:
		oracle = problems.CheckReadersPriority
	case problems.NameWritersPriority:
		oracle = problems.CheckWritersPriority
	default:
		return nil, nil, fmt.Errorf("figure scenario supports readers-priority and writers-priority, not %q", problem)
	}
	prog := explore.Program(func(k kernel.Kernel, r *trace.Recorder) {
		var store problems.RWStore
		switch problem {
		case problems.NameReadersPriority:
			store = suite.NewReadersPriority(k)
		default:
			store = suite.NewWritersPriority(k)
		}
		eval.FigureScenario(store)(k, r)
	})
	return prog, oracle, nil
}

// schedProgram rebuilds the program and oracle a schedule file was saved
// against, from its mechanism/problem/scenario fields.
func schedProgram(f *explore.SchedFile) (explore.Program, explore.Oracle, error) {
	if f.Scenario == xcheck.FixtureScenario {
		// The synclint cross-validation fixture is its own program; no
		// mechanism suite to resolve.
		return cyclicfix.Program, func(trace.Trace) []problems.Violation { return nil }, nil
	}
	suite, ok := solutions.ByMechanism(f.Mechanism)
	if !ok {
		return nil, nil, fmt.Errorf("schedule file names unknown mechanism %q", f.Mechanism)
	}
	switch f.Scenario {
	case "figure":
		return figureProgram(suite, f.Problem)
	case "standard":
		prog, check, err := solutions.StandardProgram(suite, f.Problem, false)
		if err != nil {
			return nil, nil, err
		}
		return explore.Program(prog), check, nil
	default:
		return nil, nil, fmt.Errorf("schedule file names unknown scenario %q", f.Scenario)
	}
}

// runReplay replays a saved schedule artifact with full drift detection
// and exits 0 iff it reproduces the recorded finding.
func runReplay(path string, quiet bool) {
	f, err := explore.ReadSchedFile(path)
	if err != nil {
		fatal(err)
	}
	prog, oracle, err := schedProgram(f)
	if err != nil {
		fatal(err)
	}
	tr, vs, err := f.Verify(prog, oracle)
	if !quiet && len(tr) > 0 {
		fmt.Print(tr)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replay ok: %s/%s/%s, %d choices, fingerprint %s\n",
		f.Mechanism, f.Problem, f.Scenario, len(f.Choices), f.Fingerprint)
	if f.KernelError != "" {
		fmt.Printf("reproduced kernel error class: %s\n", f.KernelError)
		return
	}
	for _, v := range vs {
		fmt.Println("reproduced violation: " + v.String())
	}
}

// progressLine renders Stats snapshots as a single overwritten stderr
// line, throttled so rendering never slows the hunt.
func progressLine() func(explore.Stats) {
	var last time.Time
	return func(s explore.Stats) {
		if s.Phase != "done" && time.Since(last) < 100*time.Millisecond {
			return
		}
		last = time.Now()
		fmt.Fprintf(os.Stderr,
			"\rexplore: phase=%-8s runs=%-7d %6.0f/s pruned=%-6d frontier=%-4d shrink=%d(len %d) pool=%d/%d   ",
			s.Phase, s.Runs, s.RunsPerSec, s.Pruned, s.Frontier,
			s.ShrinkRuns, s.ShrinkLen, s.PoolReuses, s.PoolSlots)
		if s.Phase == "done" {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// runExplore hunts for priority violations on the figure scenario.
func runExplore(suite solutions.Suite, problem string, quiet bool, saveSched string, opts explore.Options) {
	prog, oracle, err := figureProgram(suite, problem)
	if err != nil {
		fatal(fmt.Errorf("-explore: %w", err))
	}
	if inc, ok := problems.IncrementalOracleFor(problem); ok && opts.Pool {
		opts.Stream = inc.New
	}
	res := explore.Run(prog, oracle, opts)
	if res.Pruned > 0 {
		fmt.Printf("explored %d schedules (pruned %d)\n", res.Runs, res.Pruned)
	} else {
		fmt.Printf("explored %d schedules\n", res.Runs)
	}
	if opts.DPOR || opts.DPORAudit {
		approx := "exactly "
		if !res.Stats.ScheduleSpaceExact {
			approx = "at most "
		}
		fmt.Printf("schedule space: %s2^%.1f interleavings; explored %.3g (backtracks %d, commuting siblings skipped %d)\n",
			approx, res.Stats.ScheduleSpaceLog2, res.Stats.ExploredFraction,
			res.Stats.BacktrackPoints, res.Stats.DPORBlocked)
	}
	if !res.Found {
		fmt.Println("no violation found")
		return
	}
	if res.Err != nil {
		fmt.Printf("kernel error under some schedule: %v\n", res.Err)
	}
	if !quiet {
		fmt.Println("violating trace:")
		fmt.Print(res.Trace)
	}
	for _, v := range res.Violations {
		fmt.Println("violation: " + v.String())
	}
	if res.MinSchedule != nil {
		fmt.Printf("shrunk schedule: %d choices (from %d, %d shrink replays): %v\n",
			len(res.MinSchedule), len(res.Schedule), res.ShrinkRuns, res.MinSchedule)
	}
	if saveSched != "" {
		schedule := res.Schedule
		if res.MinSchedule != nil {
			schedule = res.MinSchedule
		}
		f := explore.NewSchedFile(suite.Mechanism, problem, "figure", schedule)
		f.Note = "found by simtrace -explore"
		if err := f.Seal(prog, oracle); err != nil {
			fatal(fmt.Errorf("sealing %s: %w", saveSched, err))
		}
		if err := f.WriteFile(saveSched); err != nil {
			fatal(err)
		}
		fmt.Printf("saved schedule artifact: %s (replay with: simtrace -replay %s)\n", saveSched, saveSched)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simtrace:", err)
	os.Exit(1)
}
