// Command syncfuzz runs generated synchronization problems (package
// synth) across every mechanism through the exploration engine, and
// reports which mechanisms uphold which constraint shapes. It is the
// paper's evaluation turned into a fuzzer: instead of seven handwritten
// problems, an unbounded constraint-grammar corpus, each problem judged
// by its mechanically derived oracle.
//
// Usage:
//
//	syncfuzz                                  # 20 problems, all mechanisms
//	syncfuzz -n 200 -seed 7 -mech semaphore,csp
//	syncfuzz -n 50 -o fuzz-artifacts -summary fuzz-summary.json
//	syncfuzz -replay fuzz-artifacts           # re-verify sealed findings
//
// Every finding is shrunk to a 1-minimal schedule and sealed as a
// replayable .sched artifact (with -o). The JSON summary (-summary) is
// versioned repro-fuzz/v1 and deterministic: same seed and budgets give
// byte-identical output at any -workers count.
//
// Exit status is 0 when the sweep completed (mechanism failures are
// results, not errors), 1 on infrastructure errors (a finding that will
// not seal, a replay that will not verify), 2 on usage errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/explore"
	"repro/internal/kernel"
	"repro/internal/synth"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// Summary schema identifier; bump on any incompatible change.
const summarySchema = "repro-fuzz/v1"

// mechResult is one mechanism's outcome on one generated problem.
type mechResult struct {
	// Status: "pass", "fail" (oracle violation), "deadlock", "error"
	// (other kernel error), or "inexpressible" (the mechanism's verdict
	// that it cannot encode the constraints — pathexpr).
	Status string `json:"status"`
	// Reason carries the inexpressibility verdict.
	Reason string `json:"reason,omitempty"`
	// Rules are the violated constraint IDs for "fail".
	Rules []string `json:"rules,omitempty"`
	// Runs is the number of schedules judged (deterministic).
	Runs int `json:"runs,omitempty"`
	// Sched is the sealed artifact's file name (with -o).
	Sched string `json:"sched,omitempty"`
	// MinChoices is the length of the shrunk schedule.
	MinChoices int `json:"min_choices,omitempty"`
}

// problemResult is one generated problem's row.
type problemResult struct {
	Seed       int64                 `json:"seed"`
	Name       string                `json:"name"`
	Shape      string                `json:"shape"`
	Classes    int                   `json:"classes"`
	Mechanisms map[string]mechResult `json:"mechanisms"`
}

// tableRow aggregates one mechanism × constraint shape cell.
type tableRow struct {
	Mechanism     string `json:"mechanism"`
	Shape         string `json:"shape"`
	Pass          int    `json:"pass"`
	Fail          int    `json:"fail"`
	Deadlock      int    `json:"deadlock"`
	Error         int    `json:"error,omitempty"`
	Inexpressible int    `json:"inexpressible,omitempty"`
}

type summary struct {
	Schema     string          `json:"schema"`
	Seed       int64           `json:"seed"`
	N          int             `json:"n"`
	Mechanisms []string        `json:"mechanisms"`
	Problems   []problemResult `json:"problems"`
	Table      []tableRow      `json:"table"`
}

type options struct {
	n       int
	seed    int64
	mechs   []string
	runs    int
	dfs     int
	steps   int64
	workers int
	outDir  string
	sumPath string
	quiet   bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("syncfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 20, "number of generated problems")
	seed := fs.Int64("seed", 1, "base corpus seed (problem i uses seed+i)")
	mech := fs.String("mech", "all", "mechanism, comma list, or \"all\" (includes the naive-gate control)")
	runs := fs.Int("runs", 150, "random schedules per problem and mechanism")
	dfs := fs.Int("dfs", 100, "systematic (DFS) schedules per problem and mechanism")
	steps := fs.Int64("steps", 0, "per-run kernel step bound (0: engine default)")
	workers := fs.Int("workers", 0, "exploration workers (0: GOMAXPROCS; results are identical at any value)")
	outDir := fs.String("o", "", "seal findings as .sched artifacts in this directory")
	sumPath := fs.String("summary", "", "write the repro-fuzz/v1 JSON summary here (\"-\": stdout)")
	quiet := fs.Bool("quiet", false, "suppress per-problem progress lines")
	replay := fs.String("replay", "", "verify sealed artifacts (.sched file or directory) instead of fuzzing")
	list := fs.Bool("list", false, "list mechanisms")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		fmt.Fprintln(stdout, strings.Join(synth.Mechanisms(), "\n"))
		return 0
	}
	if *replay != "" {
		return runReplay(*replay, stdout, stderr)
	}
	if *n < 1 {
		fmt.Fprintln(stderr, "syncfuzz: -n must be at least 1")
		return 2
	}
	mechs, err := expandMechs(*mech)
	if err != nil {
		fmt.Fprintf(stderr, "syncfuzz: %v\n", err)
		return 2
	}
	return runFuzz(options{
		n: *n, seed: *seed, mechs: mechs, runs: *runs, dfs: *dfs,
		steps: *steps, workers: *workers, outDir: *outDir,
		sumPath: *sumPath, quiet: *quiet,
	}, stdout, stderr)
}

func expandMechs(spec string) ([]string, error) {
	all := synth.Mechanisms()
	if spec == "all" {
		return all, nil
	}
	known := map[string]bool{}
	for _, m := range all {
		known[m] = true
	}
	var out []string
	for _, m := range strings.Split(spec, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		if !known[m] {
			return nil, fmt.Errorf("unknown mechanism %q (use -list)", m)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no mechanisms selected")
	}
	return out, nil
}

func runFuzz(o options, stdout, stderr io.Writer) int {
	if o.outDir != "" {
		if err := os.MkdirAll(o.outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "syncfuzz: %v\n", err)
			return 1
		}
	}
	sum := summary{Schema: summarySchema, Seed: o.seed, N: o.n, Mechanisms: o.mechs}
	cells := map[string]*tableRow{}
	for i := 0; i < o.n; i++ {
		pseed := o.seed + int64(i)
		set := synth.Generate(pseed)
		pr := problemResult{
			Seed:       pseed,
			Name:       set.Name,
			Shape:      set.Shape(),
			Classes:    len(set.Classes),
			Mechanisms: map[string]mechResult{},
		}
		for _, mech := range o.mechs {
			mr, err := fuzzOne(o, pseed, set, mech)
			if err != nil {
				fmt.Fprintf(stderr, "syncfuzz: %s on %s: %v\n", mech, set.Name, err)
				return 1
			}
			pr.Mechanisms[mech] = mr
			key := mech + "\x00" + pr.Shape
			cell := cells[key]
			if cell == nil {
				cell = &tableRow{Mechanism: mech, Shape: pr.Shape}
				cells[key] = cell
			}
			switch mr.Status {
			case "pass":
				cell.Pass++
			case "fail":
				cell.Fail++
			case "deadlock":
				cell.Deadlock++
			case "error":
				cell.Error++
			case "inexpressible":
				cell.Inexpressible++
			}
		}
		sum.Problems = append(sum.Problems, pr)
		if !o.quiet {
			fmt.Fprintf(stdout, "%-12s %-40s %s\n", set.Name, pr.Shape, renderRow(pr, o.mechs))
		}
	}
	for _, cell := range cells {
		sum.Table = append(sum.Table, *cell)
	}
	sort.Slice(sum.Table, func(i, j int) bool {
		if sum.Table[i].Mechanism != sum.Table[j].Mechanism {
			return sum.Table[i].Mechanism < sum.Table[j].Mechanism
		}
		return sum.Table[i].Shape < sum.Table[j].Shape
	})
	if !o.quiet {
		renderTable(stdout, sum.Table)
	}
	if o.sumPath != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "syncfuzz: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if o.sumPath == "-" {
			stdout.Write(data)
		} else if err := os.WriteFile(o.sumPath, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "syncfuzz: %v\n", err)
			return 1
		}
	}
	return 0
}

// fuzzOne explores one generated problem under one mechanism and seals
// any finding. The returned error is infrastructural (seal failure);
// mechanism failures land in the result.
func fuzzOne(o options, pseed int64, set *synth.Set, mech string) (mechResult, error) {
	if err := synth.Supports(mech, set); err != nil {
		return mechResult{Status: "inexpressible", Reason: err.Error()}, nil
	}
	prog, oracle, err := synth.Program(set, mech)
	if err != nil {
		return mechResult{}, err
	}
	res := explore.Run(prog, oracle, explore.Options{
		RandomRuns: o.runs,
		DFSRuns:    o.dfs,
		MaxSteps:   o.steps,
		Workers:    o.workers,
		Prune:      true,
		DPOR:       true,
		Checkpoint: true,
		Pool:       true,
		Shrink:     true,
	})
	mr := mechResult{Runs: res.Runs}
	if !res.Found {
		mr.Status = "pass"
		return mr, nil
	}
	switch {
	case res.Err != nil && errors.Is(res.Err, kernel.ErrDeadlock):
		mr.Status = "deadlock"
	case res.Err != nil:
		mr.Status = "error"
	default:
		mr.Status = "fail"
		for _, v := range res.Violations {
			mr.Rules = append(mr.Rules, v.Rule)
		}
	}
	sched := res.MinSchedule
	if len(sched) == 0 {
		sched = res.Schedule
	}
	mr.MinChoices = len(sched)
	if o.outDir != "" {
		f := explore.NewSchedFile(mech, fmt.Sprintf("synth/%d", pseed), "synth", sched)
		f.MaxSteps = o.steps
		if err := f.Seal(prog, oracle); err != nil {
			return mr, fmt.Errorf("sealing finding: %w", err)
		}
		name := fmt.Sprintf("synth-%d-%s.sched", pseed, mech)
		if err := f.WriteFile(filepath.Join(o.outDir, name)); err != nil {
			return mr, err
		}
		mr.Sched = name
	}
	return mr, nil
}

func renderRow(pr problemResult, mechs []string) string {
	short := map[string]string{
		"pass": "ok", "fail": "FAIL", "deadlock": "DEAD",
		"error": "ERR", "inexpressible": "n/e",
	}
	parts := make([]string, 0, len(mechs))
	for _, m := range mechs {
		parts = append(parts, fmt.Sprintf("%s=%s", m, short[pr.Mechanisms[m].Status]))
	}
	return strings.Join(parts, " ")
}

func renderTable(w io.Writer, rows []tableRow) {
	fmt.Fprintf(w, "\n%-12s %-40s %5s %5s %5s %5s %5s\n",
		"mechanism", "shape", "pass", "fail", "dead", "err", "n/e")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-40s %5d %5d %5d %5d %5d\n",
			r.Mechanism, r.Shape, r.Pass, r.Fail, r.Deadlock, r.Error, r.Inexpressible)
	}
}

// runReplay verifies sealed artifacts: each file's problem seed is
// parsed back out, the generator reproduces the set, and SchedFile.Verify
// replays the schedule with full drift detection.
func runReplay(path string, stdout, stderr io.Writer) int {
	info, err := os.Stat(path)
	if err != nil {
		fmt.Fprintf(stderr, "syncfuzz: %v\n", err)
		return 1
	}
	var files []string
	if info.IsDir() {
		ents, err := os.ReadDir(path)
		if err != nil {
			fmt.Fprintf(stderr, "syncfuzz: %v\n", err)
			return 1
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".sched") {
				files = append(files, filepath.Join(path, e.Name()))
			}
		}
		sort.Strings(files)
		if len(files) == 0 {
			fmt.Fprintf(stderr, "syncfuzz: no .sched files in %s\n", path)
			return 1
		}
	} else {
		files = []string{path}
	}
	bad := 0
	for _, file := range files {
		if err := replayOne(file); err != nil {
			fmt.Fprintf(stderr, "syncfuzz: %s: %v\n", filepath.Base(file), err)
			bad++
			continue
		}
		fmt.Fprintf(stdout, "%s: verified\n", filepath.Base(file))
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "syncfuzz: %d of %d artifacts failed to verify\n", bad, len(files))
		return 1
	}
	return 0
}

func replayOne(path string) error {
	f, err := explore.ReadSchedFile(path)
	if err != nil {
		return err
	}
	seedStr, ok := strings.CutPrefix(f.Problem, "synth/")
	if !ok {
		return fmt.Errorf("not a syncfuzz artifact (problem %q)", f.Problem)
	}
	pseed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return fmt.Errorf("bad problem seed %q: %v", seedStr, err)
	}
	set := synth.Generate(pseed)
	prog, oracle, err := synth.Program(set, f.Mechanism)
	if err != nil {
		return err
	}
	_, _, err = f.Verify(prog, oracle)
	return err
}
