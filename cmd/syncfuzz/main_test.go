package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSummaryIsWorkersInvariant pins the determinism contract: the same
// corpus seed and budgets produce a byte-identical summary regardless of
// exploration parallelism.
func TestSummaryIsWorkersInvariant(t *testing.T) {
	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "w1.json"), filepath.Join(dir, "w4.json")}
	for i, workers := range []string{"1", "4"} {
		var out, errb bytes.Buffer
		code := run([]string{
			"-n", "4", "-seed", "11", "-runs", "40", "-dfs", "30",
			"-workers", workers, "-quiet", "-summary", paths[i],
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("workers=%s: exit %d, stderr: %s", workers, code, errb.String())
		}
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("summaries differ between -workers 1 and 4:\n--- w1 ---\n%s\n--- w4 ---\n%s", a, b)
	}
	if !strings.Contains(string(a), `"schema": "repro-fuzz/v1"`) {
		t.Fatalf("summary missing schema tag:\n%s", a)
	}
}

// TestSealAndReplayRoundTrip fuzzes a corpus window known to produce
// findings (the naive-gate control is always in the sweep), seals them,
// and verifies every artifact through the -replay path.
func TestSealAndReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	art := filepath.Join(dir, "artifacts")
	var out, errb bytes.Buffer
	code := run([]string{
		"-n", "8", "-seed", "26", "-runs", "120", "-dfs", "60",
		"-quiet", "-o", art, "-summary", filepath.Join(dir, "s.json"),
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("fuzz: exit %d, stderr: %s", code, errb.String())
	}
	ents, err := os.ReadDir(art)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no sealed artifacts produced (err %v) — corpus window no longer yields findings?", err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-replay", art}, &out, &errb); code != 0 {
		t.Fatalf("replay: exit %d, stderr: %s", code, errb.String())
	}
	if got := strings.Count(out.String(), "verified"); got != len(ents) {
		t.Fatalf("replay verified %d of %d artifacts:\n%s", got, len(ents), out.String())
	}
}

// TestUsageErrors pins the exit-code contract for bad invocations.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "0"},
		{"-mech", "quantum"},
		{"-bogus-flag"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
