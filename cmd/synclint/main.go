// Command synclint checks the repository's synchronization discipline
// statically (see internal/synclint): balanced exclusion brackets,
// nested-monitor hazards, resource state escaping its mechanism, hollow
// signals, kernel API misuse, cyclic lock orders, and lost-wakeup
// windows.
//
// Usage:
//
//	synclint ./...                 # every package under the tree
//	synclint ./internal/eval       # one package
//	synclint -json ./...           # machine-readable findings
//	synclint -analyzers bracket,escape ./...
//	synclint -hunt                 # cross-validate findings by schedule exploration
//	synclint -hunt -sched-dir out  # ...sealing a .sched artifact per confirmed finding
//	synclint -audit internal/explore/testdata
//
// -hunt runs the cross-validation gate (internal/synclint/xcheck): every
// lockorder/lostwakeup finding on the embedded solution sources seeds an
// exploration hunt that tries to realize the hazard. -audit replays a
// directory of sealed .sched artifacts against the static pass and fails
// on any deadlock the lockorder analyzer no longer flags.
//
// Exit status is 0 when no findings remain, 1 when findings are reported
// (or the audit misses), and 2 when a package fails to load.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/synclint"
	"repro/internal/synclint/xcheck"
)

func main() {
	jsonOut := flag.Bool("json", false, "print findings as JSON")
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	hunt := flag.Bool("hunt", false, "cross-validate lockorder/lostwakeup findings on the embedded solutions by schedule exploration")
	schedDir := flag.String("sched-dir", "", "with -hunt: seal a replayable .sched artifact per confirmed finding into this directory")
	huntRandom := flag.Int("hunt-random", 0, "with -hunt: random schedules per hunt (0 = explore default)")
	huntDFS := flag.Int("hunt-dfs", 400, "with -hunt: systematic DFS runs per hunt")
	audit := flag.String("audit", "", "miss-audit: classify every .sched under this directory against the static pass")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: synclint [-json] [-analyzers list] packages...\n       synclint -hunt [-sched-dir dir]\n       synclint -audit dir\n\nanalyzers:\n")
		for _, a := range synclint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *audit != "" {
		runAudit(*audit)
		return
	}
	if *hunt {
		runHunt(xcheck.Options{RandomRuns: *huntRandom, DFSRuns: *huntDFS, SchedDir: *schedDir})
		return
	}

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synclint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synclint:", err)
		os.Exit(2)
	}

	all, err := lintPackages(dirs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synclint:", err)
		os.Exit(2)
	}
	if err := printFindings(os.Stdout, all, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "synclint:", err)
		os.Exit(2)
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}

// lintPackages runs the analyzers over every directory and returns all
// findings in one deterministic order (file, line, column, analyzer) —
// the order the golden test pins.
func lintPackages(dirs []string, analyzers []*synclint.Analyzer) ([]synclint.Finding, error) {
	var all []synclint.Finding
	for _, dir := range dirs {
		pkg, err := synclint.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		findings, _ := synclint.Run(pkg, analyzers)
		all = append(all, findings...)
	}
	synclint.SortFindings(all)
	return all, nil
}

func printFindings(w io.Writer, all []synclint.Finding, jsonOut bool) error {
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []synclint.Finding{}
		}
		return enc.Encode(all)
	}
	for _, f := range all {
		fmt.Fprintln(w, f)
	}
	return nil
}

// runHunt executes the cross-validation gate and prints one row per
// static finding with the hunt's verdict.
func runHunt(opts xcheck.Options) {
	rows, err := xcheck.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synclint:", err)
		os.Exit(2)
	}
	confirmed := 0
	for _, r := range rows {
		line := fmt.Sprintf("%-10s %-16s %-11s runs=%-5d %s: %s",
			r.Mechanism, r.Problem, r.Status, r.Runs, r.Finding.Analyzer,
			fmt.Sprintf("%s:%d", r.Finding.Pos.Filename, r.Finding.Pos.Line))
		if r.SchedPath != "" {
			line += "  sealed: " + r.SchedPath
		}
		fmt.Println(line)
		if r.Status == "confirmed" {
			confirmed++
		}
	}
	fmt.Printf("%d finding(s) cross-validated, %d confirmed by exploration\n", len(rows), confirmed)
}

// runAudit classifies sealed schedule artifacts against the static pass
// and exits 1 if any deadlock is no longer flagged.
func runAudit(dir string) {
	rows, err := xcheck.MissAudit(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synclint:", err)
		os.Exit(2)
	}
	for _, r := range rows {
		fmt.Printf("%-24s %-10s %-13s %s\n", r.File, r.Class, r.Verdict, r.Detail)
	}
	if xcheck.Missed(rows) {
		fmt.Println("miss audit FAILED: a realized hazard is no longer statically flagged")
		os.Exit(1)
	}
	fmt.Printf("miss audit passed over %d artifact(s)\n", len(rows))
}

func selectAnalyzers(names string) ([]*synclint.Analyzer, error) {
	if names == "" {
		return synclint.Analyzers(), nil
	}
	byName := map[string]*synclint.Analyzer{}
	for _, a := range synclint.Analyzers() {
		byName[a.Name] = a
	}
	var out []*synclint.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a := byName[n]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(synclint.AnalyzerNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// expandPatterns resolves package patterns to directories holding
// non-test Go files. "dir/..." walks recursively, skipping hidden
// directories and testdata.
func expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "..."); ok {
			root = filepath.Clean(strings.TrimSuffix(root, "/"))
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Clean(pat))
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no Go packages match %s", strings.Join(patterns, " "))
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
