// Command synclint checks the repository's synchronization discipline
// statically (see internal/synclint): balanced exclusion brackets,
// nested-monitor hazards, resource state escaping its mechanism, hollow
// signals, and kernel API misuse.
//
// Usage:
//
//	synclint ./...                 # every package under the tree
//	synclint ./internal/eval       # one package
//	synclint -json ./...           # machine-readable findings
//	synclint -analyzers bracket,escape ./...
//
// Exit status is 0 when no findings remain, 1 when findings are
// reported, and 2 when a package fails to load.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/synclint"
)

func main() {
	jsonOut := flag.Bool("json", false, "print findings as JSON")
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: synclint [-json] [-analyzers list] packages...\n\nanalyzers:\n")
		for _, a := range synclint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synclint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synclint:", err)
		os.Exit(2)
	}

	var all []synclint.Finding
	for _, dir := range dirs {
		pkg, err := synclint.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synclint:", err)
			os.Exit(2)
		}
		findings, _ := synclint.Run(pkg, analyzers)
		all = append(all, findings...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []synclint.Finding{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "synclint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range all {
			fmt.Println(f)
		}
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}

func selectAnalyzers(names string) ([]*synclint.Analyzer, error) {
	if names == "" {
		return synclint.Analyzers(), nil
	}
	byName := map[string]*synclint.Analyzer{}
	for _, a := range synclint.Analyzers() {
		byName[a.Name] = a
	}
	var out []*synclint.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a := byName[n]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(synclint.AnalyzerNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// expandPatterns resolves package patterns to directories holding
// non-test Go files. "dir/..." walks recursively, skipping hidden
// directories and testdata.
func expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "..."); ok {
			root = filepath.Clean(strings.TrimSuffix(root, "/"))
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Clean(pat))
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no Go packages match %s", strings.Join(patterns, " "))
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
