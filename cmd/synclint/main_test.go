package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/synclint"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// TestJSONGolden pins the -json output — findings and their global
// order (file, line, column, analyzer) — over a fixture package with
// one deliberate violation per layer. Regenerate with:
//
//	go test ./cmd/synclint -run JSONGolden -update
func TestJSONGolden(t *testing.T) {
	dirs, err := expandPatterns([]string{filepath.Join("testdata", "src", "demo")})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	all, err := lintPackages(dirs, synclint.Analyzers())
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	var buf bytes.Buffer
	if err := printFindings(&buf, all, true); err != nil {
		t.Fatalf("encode: %v", err)
	}

	golden := filepath.Join("testdata", "findings.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("findings drifted from golden (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestFindingOrderDeterministic runs the same lint twice and across a
// permuted dir list: identical output both times.
func TestFindingOrderDeterministic(t *testing.T) {
	dir := filepath.Join("testdata", "src", "demo")
	a, err := lintPackages([]string{dir}, synclint.Analyzers())
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	b, err := lintPackages([]string{dir}, synclint.Analyzers())
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if len(a) == 0 {
		t.Fatalf("fixture produced no findings")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order drifted between runs: %v vs %v", a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		prev, cur := a[i-1], a[i]
		if prev.Pos.Filename > cur.Pos.Filename {
			t.Fatalf("findings not sorted by file: %v before %v", prev, cur)
		}
	}
}
