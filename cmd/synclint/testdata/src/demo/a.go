// Package demo is the golden-test fixture for cmd/synclint: a small
// package with one deliberate finding per layer — a bracket leak, a
// nested-monitor hold, an ABBA lock-order cycle split across two files,
// and a reason-less suppression. The golden file pins both the findings
// and their global ordering (file, line, column, analyzer).
package demo

type Desks struct {
	left  *Monitor
	right *Monitor
}

func (d *Desks) Leak(p *Proc, urgent bool) {
	d.left.Enter(p)
	if urgent {
		return
	}
	d.left.Exit(p)
}

func (d *Desks) Forward(p *Proc) {
	d.left.Enter(p)
	d.right.Enter(p)
	d.right.Exit(p)
	d.left.Exit(p)
}
