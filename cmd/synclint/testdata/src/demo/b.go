package demo

func (d *Desks) Backward(p *Proc) {
	d.right.Enter(p)
	d.left.Enter(p)
	d.left.Exit(p)
	d.right.Exit(p)
}

func (d *Desks) Quiet(p *Proc) {
	//synclint:allow holdwait
	d.left.Enter(p)
	d.left.Exit(p)
}
