// Command syncload generates traffic against solutions running on the
// real kernel (genuine goroutine concurrency, wall-clock time) and
// measures latency, throughput, and per-class fairness. It is the
// real-runtime leg of the evaluation: the same solutions the simulator
// checks over every schedule, now under load, optionally traced and
// judged by the same oracles.
//
// Usage:
//
//	syncload                                  # full matrix: all mechanisms × canonical trio × poisson+closed
//	syncload -mech monitor -problem fcfs -arrival poisson -rate 5000 -duration 2s
//	syncload -arrival closed -clients 16 -think 50
//	syncload -json -o load-raw.json           # machine-readable report (benchjson -load archives it)
//	syncload -list
//
// Exit status is 0 when every run completed cleanly, 1 when any run hit
// a kernel error (watchdog expiry — a lost wakeup or deadlock under
// load) or an oracle violation, and 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/load"
	"repro/internal/solutions"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// options is the parsed command line; a separate struct keeps run
// testable without touching global flag state.
type options struct {
	mechs    []string
	problems []string
	arrivals []load.ArrivalKind

	rate     float64
	burst    int
	clients  int
	think    int64
	duration time.Duration
	ops      int64
	seed     int64
	readFrac float64
	bufCap   int
	yields   int
	watchdog time.Duration

	trace   bool
	jsonOut bool
	outPath string
	quiet   bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("syncload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mech := fs.String("mech", "all", "mechanism, comma-separated list, or \"all\"")
	problem := fs.String("problem", "default", "problem, comma list, \"default\" (canonical trio), or \"all\"")
	arrival := fs.String("arrival", "poisson,closed", "arrival models to run, comma list of closed poisson uniform burst")
	rate := fs.Float64("rate", 1000, "open-loop offered rate, ops/sec")
	burst := fs.Int("burst", 8, "arrivals per burst for -arrival burst")
	clients := fs.Int("clients", 4, "closed-loop client population")
	think := fs.Int64("think", 100, "closed-loop mean think time, kernel ticks")
	duration := fs.Duration("duration", time.Second, "traffic-generation duration per run (0 with -ops: op count governs)")
	ops := fs.Int64("ops", 0, "operation cap per run (0: duration governs)")
	seed := fs.Int64("seed", 1, "traffic seed (offered load is deterministic per seed)")
	readFrac := fs.Float64("read-frac", 0.9, "read share of readers–writers traffic")
	bufCap := fs.Int("cap", 0, "bounded-buffer capacity (0: standard)")
	yields := fs.Int("yields", 2, "yields inside each operation body (contention window width)")
	watchdog := fs.Duration("watchdog", 0, "per-run watchdog (0: duration+30s)")
	traceFlag := fs.Bool("trace", true, "record each run and judge it with the problem oracle")
	jsonOut := fs.Bool("json", false, "emit the versioned JSON report (human summary goes to stderr)")
	outPath := fs.String("o", "", "write the JSON report here instead of stdout (implies -json)")
	quiet := fs.Bool("quiet", false, "suppress the per-run human summary")
	list := fs.Bool("list", false, "list mechanisms, problems, and arrival models")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		var mechs []string
		for _, s := range solutions.All() {
			mechs = append(mechs, s.Mechanism)
		}
		fmt.Fprintln(stdout, "mechanisms:", strings.Join(mechs, ", "))
		fmt.Fprintln(stdout, "problems:  ", strings.Join(load.LoadProblems(), ", "))
		fmt.Fprintln(stdout, "arrivals:   closed, poisson, uniform, burst")
		return 0
	}

	opt := &options{
		rate: *rate, burst: *burst, clients: *clients, think: *think,
		duration: *duration, ops: *ops, seed: *seed, readFrac: *readFrac,
		bufCap: *bufCap, yields: *yields, watchdog: *watchdog,
		trace: *traceFlag, jsonOut: *jsonOut || *outPath != "", outPath: *outPath,
		quiet: *quiet,
	}
	var err error
	if opt.mechs, err = expandMechs(*mech); err == nil {
		if opt.problems, err = expandProblems(*problem); err == nil {
			opt.arrivals, err = expandArrivals(*arrival)
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "syncload:", err)
		return 2
	}
	return execute(opt, stdout, stderr)
}

// execute runs the matrix and emits the report.
func execute(opt *options, stdout, stderr io.Writer) int {
	human := stdout
	if opt.jsonOut {
		human = stderr
	}
	if opt.quiet {
		human = io.Discard
	}

	rep := load.NewReport()
	failed := false
	for _, mech := range opt.mechs {
		for _, problem := range opt.problems {
			for _, arrival := range opt.arrivals {
				res, err := load.Run(load.Config{
					Mechanism: mech, Problem: problem, Arrival: arrival,
					RatePerSec: opt.rate, BurstSize: opt.burst,
					Clients: opt.clients, ThinkTicks: opt.think,
					Duration: opt.duration, MaxOps: opt.ops, Seed: opt.seed,
					ReadFraction: opt.readFrac, BufferCap: opt.bufCap,
					WorkYields: opt.yields, Watchdog: opt.watchdog,
					Trace: opt.trace,
				})
				if err != nil {
					fmt.Fprintln(stderr, "syncload:", err)
					return 2
				}
				if res.Failed() {
					failed = true
				}
				one := load.Report{Schema: load.SchemaVersion, Runs: []load.RunReport{res.Report()}}
				one.Render(human)
				rep.Runs = append(rep.Runs, one.Runs[0])
			}
		}
	}

	if err := rep.Validate(); err != nil {
		fmt.Fprintln(stderr, "syncload: internal error: emitted report invalid:", err)
		return 2
	}
	if opt.jsonOut {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "syncload:", err)
			return 2
		}
		buf = append(buf, '\n')
		if opt.outPath != "" {
			if err := os.WriteFile(opt.outPath, buf, 0o644); err != nil {
				fmt.Fprintln(stderr, "syncload:", err)
				return 2
			}
		} else {
			stdout.Write(buf)
		}
	}
	if failed {
		fmt.Fprintln(stderr, "syncload: FAILED — kernel errors or oracle violations above")
		return 1
	}
	return 0
}

func expandMechs(s string) ([]string, error) {
	if s == "all" {
		var out []string
		for _, suite := range solutions.All() {
			out = append(out, suite.Mechanism)
		}
		return out, nil
	}
	out := splitList(s)
	for _, m := range out {
		if _, ok := solutions.ByMechanism(m); !ok {
			return nil, fmt.Errorf("unknown mechanism %q", m)
		}
	}
	return out, nil
}

func expandProblems(s string) ([]string, error) {
	switch s {
	case "default":
		return load.DefaultProblems(), nil
	case "all":
		return load.LoadProblems(), nil
	}
	out := splitList(s)
	for _, p := range out {
		found := false
		for _, known := range load.LoadProblems() {
			if p == known {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("problem %q is not load-generable (want one of %v)", p, load.LoadProblems())
		}
	}
	return out, nil
}

func expandArrivals(s string) ([]load.ArrivalKind, error) {
	var out []load.ArrivalKind
	for _, a := range splitList(s) {
		kind, err := load.ParseArrival(a)
		if err != nil {
			return nil, err
		}
		out = append(out, kind)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no arrival models given")
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
