// Command syncload generates traffic against solutions running on the
// real kernel (genuine goroutine concurrency, wall-clock time) and
// measures latency, throughput, and per-class fairness. It is the
// real-runtime leg of the evaluation: the same solutions the simulator
// checks over every schedule, now under load, optionally traced and
// judged by the same oracles.
//
// Usage:
//
//	syncload                                  # full matrix: all mechanisms × canonical trio × poisson+closed
//	syncload -mech monitor -problem fcfs -arrival poisson -rate 5000 -duration 2s
//	syncload -mech all,variants               # include the scalable semaphore variants
//	syncload -arrival closed -clients 16 -think 50
//	syncload -json -o load-raw.json           # machine-readable report (benchjson -load archives it)
//	syncload -soak -duration 10m -interval 10s -json   # stream NDJSON snapshots while running
//	syncload -calibrate                       # archive harness calibration in the report
//	syncload -list
//
// Exit status is 0 when every run completed cleanly, 1 when any run hit
// a kernel error (watchdog expiry — a lost wakeup or deadlock under
// load) or an oracle violation, and 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/load"
	"repro/internal/solutions"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// options is the parsed command line; a separate struct keeps run
// testable without touching global flag state.
type options struct {
	mechs    []string
	problems []string
	arrivals []load.ArrivalKind

	rate     float64
	burst    int
	clients  int
	think    int64
	duration time.Duration
	ops      int64
	seed     int64
	readFrac float64
	bufCap   int
	yields   int
	watchdog time.Duration

	shards      int
	soak        bool
	interval    time.Duration
	fairnessMin float64
	calibrate   bool

	trace   bool
	jsonOut bool
	outPath string
	quiet   bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("syncload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mech := fs.String("mech", "all", "mechanism, comma-separated list, or \"all\"")
	problem := fs.String("problem", "default", "problem, comma list, \"default\" (canonical trio), or \"all\"")
	arrival := fs.String("arrival", "poisson,closed", "arrival models to run, comma list of closed poisson uniform burst")
	rate := fs.Float64("rate", 1000, "open-loop offered rate, ops/sec")
	burst := fs.Int("burst", 8, "arrivals per burst for -arrival burst")
	clients := fs.Int("clients", 4, "closed-loop client population")
	think := fs.Int64("think", 100, "closed-loop mean think time, kernel ticks")
	duration := fs.Duration("duration", time.Second, "traffic-generation duration per run (0 with -ops: op count governs)")
	ops := fs.Int64("ops", 0, "operation cap per run (0: duration governs)")
	seed := fs.Int64("seed", 1, "traffic seed (offered load is deterministic per seed)")
	readFrac := fs.Float64("read-frac", 0.9, "read share of readers–writers traffic")
	bufCap := fs.Int("cap", 0, "bounded-buffer capacity (0: standard)")
	yields := fs.Int("yields", 2, "yields inside each operation body (contention window width)")
	watchdog := fs.Duration("watchdog", 0, "per-run watchdog (0: duration+30s)")
	shards := fs.Int("shards", 0, "latency histogram shards per class (0: cover GOMAXPROCS; 1: shared-histogram baseline)")
	soak := fs.Bool("soak", false, "stream an incremental snapshot of each run every -interval")
	interval := fs.Duration("interval", 10*time.Second, "soak snapshot interval")
	fairnessMin := fs.Float64("fairness-min", 0, "soak-only: fail (exit 1) if any snapshot's Jain fairness index drops below this (0: disabled)")
	calibrate := fs.Bool("calibrate", false, "measure histogram harness throughput first and archive it in the report")
	traceFlag := fs.Bool("trace", true, "record each run and judge it with the problem oracle")
	jsonOut := fs.Bool("json", false, "emit the versioned JSON report (human summary goes to stderr)")
	outPath := fs.String("o", "", "write the JSON report here instead of stdout (implies -json)")
	quiet := fs.Bool("quiet", false, "suppress the per-run human summary")
	list := fs.Bool("list", false, "list mechanisms, problems, and arrival models")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		var mechs []string
		for _, s := range solutions.All() {
			mechs = append(mechs, s.Mechanism)
		}
		var variants []string
		for _, s := range solutions.Variants() {
			variants = append(variants, s.Mechanism)
		}
		fmt.Fprintln(stdout, "mechanisms:", strings.Join(mechs, ", "))
		fmt.Fprintln(stdout, "variants:  ", strings.Join(variants, ", "), "(opt in with -mech variants or all,variants)")
		fmt.Fprintln(stdout, "problems:  ", strings.Join(load.LoadProblems(), ", "))
		fmt.Fprintln(stdout, "arrivals:   closed, poisson, uniform, burst, diurnal, pareto")
		return 0
	}

	opt := &options{
		rate: *rate, burst: *burst, clients: *clients, think: *think,
		duration: *duration, ops: *ops, seed: *seed, readFrac: *readFrac,
		bufCap: *bufCap, yields: *yields, watchdog: *watchdog,
		shards: *shards, soak: *soak, interval: *interval,
		fairnessMin: *fairnessMin, calibrate: *calibrate,
		trace: *traceFlag, jsonOut: *jsonOut || *outPath != "", outPath: *outPath,
		quiet: *quiet,
	}
	if opt.soak && opt.interval <= 0 {
		fmt.Fprintln(stderr, "syncload: -interval must be positive with -soak")
		return 2
	}
	if opt.fairnessMin != 0 {
		if !opt.soak {
			fmt.Fprintln(stderr, "syncload: -fairness-min only applies to soak snapshots; add -soak")
			return 2
		}
		if opt.fairnessMin < 0 || opt.fairnessMin > 1 {
			fmt.Fprintln(stderr, "syncload: -fairness-min must be in (0, 1] (Jain index range)")
			return 2
		}
	}
	var err error
	if opt.mechs, err = expandMechs(*mech); err == nil {
		if opt.problems, err = expandProblems(*problem); err == nil {
			opt.arrivals, err = expandArrivals(*arrival)
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "syncload:", err)
		return 2
	}
	return execute(opt, stdout, stderr)
}

// execute runs the matrix and emits the report. In soak mode each run
// additionally streams incremental snapshots: one-line NDJSON reports to
// stdout under -json (the final indented report then goes to -o, or is
// appended as a last NDJSON line when -o is absent), or compact human soak
// lines with Jain-decay tracking otherwise.
func execute(opt *options, stdout, stderr io.Writer) int {
	human := stdout
	if opt.jsonOut {
		human = stderr
	}
	if opt.quiet {
		human = io.Discard
	}

	rep := load.NewReport()
	if opt.calibrate {
		hr := load.CalibrateHistograms(250 * time.Millisecond)
		rep.Harness = &hr
		fmt.Fprintf(human, "harness: %d cores, %d shards, shared %.2fM rec/s, sharded %.2fM rec/s, speedup %.2fx\n",
			hr.Cores, hr.HistShards, hr.SharedRecordsPerSec/1e6, hr.ShardedRecordsPerSec/1e6, hr.Speedup)
	}
	failed := false
	for _, mech := range opt.mechs {
		for _, problem := range opt.problems {
			for _, arrival := range opt.arrivals {
				cfg := load.Config{
					Mechanism: mech, Problem: problem, Arrival: arrival,
					RatePerSec: opt.rate, BurstSize: opt.burst,
					Clients: opt.clients, ThinkTicks: opt.think,
					Duration: opt.duration, MaxOps: opt.ops, Seed: opt.seed,
					ReadFraction: opt.readFrac, BufferCap: opt.bufCap,
					WorkYields: opt.yields, Watchdog: opt.watchdog,
					Trace: opt.trace, HistShards: opt.shards,
				}
				if opt.soak {
					cfg.SnapshotEvery = opt.interval
					lastJain := math.NaN()
					cfg.OnSnapshot = func(r *load.Result) {
						if err := emitSnapshot(r, opt, stdout, human, &lastJain); err != nil {
							fmt.Fprintln(stderr, "syncload:", err)
							failed = true
						}
					}
				}
				res, err := load.Run(cfg)
				if err != nil {
					fmt.Fprintln(stderr, "syncload:", err)
					return 2
				}
				if res.Failed() {
					failed = true
				}
				one := load.Report{Schema: load.SchemaVersion, Runs: []load.RunReport{res.Report()}}
				one.Render(human)
				rep.Runs = append(rep.Runs, one.Runs[0])
			}
		}
	}

	if err := rep.Validate(); err != nil {
		fmt.Fprintln(stderr, "syncload: internal error: emitted report invalid:", err)
		return 2
	}
	if opt.jsonOut {
		if opt.outPath != "" {
			buf, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintln(stderr, "syncload:", err)
				return 2
			}
			if err := os.WriteFile(opt.outPath, append(buf, '\n'), 0o644); err != nil {
				fmt.Fprintln(stderr, "syncload:", err)
				return 2
			}
		} else if opt.soak {
			// Keep stdout pure NDJSON: the final report joins the
			// snapshot stream as one more single-line document.
			buf, err := json.Marshal(rep)
			if err != nil {
				fmt.Fprintln(stderr, "syncload:", err)
				return 2
			}
			fmt.Fprintf(stdout, "%s\n", buf)
		} else {
			buf, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintln(stderr, "syncload:", err)
				return 2
			}
			stdout.Write(append(buf, '\n'))
		}
	}
	if failed {
		fmt.Fprintln(stderr, "syncload: FAILED — kernel errors or oracle violations above")
		return 1
	}
	return 0
}

// emitSnapshot validates and emits one incremental soak result: a compact
// NDJSON repro-load/v1 report to stdout under -json, a human soak line
// (with the Jain index's delta since the previous snapshot — the fairness
// decay a long soak exists to surface) otherwise. With -fairness-min set,
// a snapshot whose Jain index falls below the floor is still emitted but
// returns an error, failing the run: the soak keeps streaming so the
// decay trajectory stays observable, while the exit code records that
// the floor was breached.
func emitSnapshot(r *load.Result, opt *options, stdout, human io.Writer, lastJain *float64) error {
	one := load.Report{Schema: load.SchemaVersion, Runs: []load.RunReport{r.Report()}}
	if err := one.Validate(); err != nil {
		return fmt.Errorf("snapshot invalid: %w", err)
	}
	rr := &one.Runs[0]
	if opt.jsonOut {
		buf, err := json.Marshal(&one)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", buf)
		return checkFairnessFloor(rr, opt)
	}
	line := fmt.Sprintf("  soak #%d t=%v completed=%d %.0f ops/s",
		rr.SnapshotSeq, time.Duration(rr.ElapsedNs).Round(time.Millisecond),
		rr.Completed, rr.ThroughputOpsSec)
	var p99 int64
	for i := range rr.Classes {
		if q := rr.Classes[i].Total.P99Ns; q > p99 {
			p99 = q
		}
	}
	line += fmt.Sprintf(" p99=%v", time.Duration(p99).Round(time.Microsecond))
	if len(rr.ClientCompleted) > 0 {
		line += fmt.Sprintf(" jain=%.3f", rr.JainIndex)
		if !math.IsNaN(*lastJain) {
			line += fmt.Sprintf(" (Δ%+.3f)", rr.JainIndex-*lastJain)
		}
		*lastJain = rr.JainIndex
	}
	fmt.Fprintln(human, line)
	return checkFairnessFloor(rr, opt)
}

// checkFairnessFloor enforces -fairness-min against one snapshot. Only
// snapshots with per-client completion data carry a Jain index (closed-
// loop traffic); open-loop snapshots pass vacuously.
func checkFairnessFloor(rr *load.RunReport, opt *options) error {
	if opt.fairnessMin > 0 && len(rr.ClientCompleted) > 0 && rr.JainIndex < opt.fairnessMin {
		return fmt.Errorf("fairness floor breached: %s/%s snapshot #%d jain=%.3f < -fairness-min %.3f",
			rr.Mechanism, rr.Problem, rr.SnapshotSeq, rr.JainIndex, opt.fairnessMin)
	}
	return nil
}

func expandMechs(s string) ([]string, error) {
	var out []string
	for _, m := range splitList(s) {
		switch m {
		case "all":
			for _, suite := range solutions.All() {
				out = append(out, suite.Mechanism)
			}
		case "variants":
			for _, suite := range solutions.Variants() {
				out = append(out, suite.Mechanism)
			}
		default:
			if _, ok := solutions.ByMechanism(m); !ok {
				return nil, fmt.Errorf("unknown mechanism %q", m)
			}
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no mechanisms given")
	}
	return out, nil
}

func expandProblems(s string) ([]string, error) {
	switch s {
	case "default":
		return load.DefaultProblems(), nil
	case "all":
		return load.LoadProblems(), nil
	}
	out := splitList(s)
	for _, p := range out {
		if strings.HasPrefix(p, "synth:") {
			// Generated problem (synth:<seed>); the load engine parses
			// the seed and reports malformed ones.
			continue
		}
		found := false
		for _, known := range load.LoadProblems() {
			if p == known {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("problem %q is not load-generable (want one of %v, or synth:<seed>)", p, load.LoadProblems())
		}
	}
	return out, nil
}

func expandArrivals(s string) ([]load.ArrivalKind, error) {
	var out []load.ArrivalKind
	for _, a := range splitList(s) {
		kind, err := load.ParseArrival(a)
		if err != nil {
			return nil, err
		}
		out = append(out, kind)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no arrival models given")
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
