package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/load"
)

func TestExpandMechs(t *testing.T) {
	all, err := expandMechs("all")
	if err != nil || len(all) != 6 {
		t.Fatalf("all = %v, %v", all, err)
	}
	two, err := expandMechs("monitor, csp")
	if err != nil || len(two) != 2 || two[0] != "monitor" {
		t.Fatalf("list = %v, %v", two, err)
	}
	if _, err := expandMechs("mutex"); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

func TestExpandProblems(t *testing.T) {
	if def, err := expandProblems("default"); err != nil || len(def) != 3 {
		t.Fatalf("default = %v, %v", def, err)
	}
	if all, err := expandProblems("all"); err != nil || len(all) != 5 {
		t.Fatalf("all = %v, %v", all, err)
	}
	if _, err := expandProblems("disk-scheduler"); err == nil {
		t.Fatal("non-load-generable problem accepted")
	}
}

func TestExpandArrivals(t *testing.T) {
	ks, err := expandArrivals("poisson,closed")
	if err != nil || len(ks) != 2 || ks[0] != load.ArrivalPoisson || ks[1] != load.ArrivalClosed {
		t.Fatalf("arrivals = %v, %v", ks, err)
	}
	if _, err := expandArrivals("bursty"); err == nil {
		t.Fatal("unknown arrival accepted")
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-mech", "nope"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "unknown mechanism") {
		t.Fatalf("stderr = %q", errBuf.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"semaphore", "bounded-buffer", "poisson"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

// End-to-end: a tiny matrix run must exit 0, write a valid versioned
// report to -o, and print the human summary to stderr.
func TestRunEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.json")
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-mech", "monitor,semaphore", "-problem", "bounded-buffer",
		"-arrival", "poisson,closed",
		"-ops", "40", "-duration", "0s", "-rate", "20000", "-think", "10",
		"-o", path,
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, errBuf.String())
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep load.Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if len(rep.Runs) != 4 {
		t.Fatalf("runs = %d, want 2 mechs × 2 arrivals", len(rep.Runs))
	}
	for _, rr := range rep.Runs {
		if !rr.Judged || len(rr.Violations) != 0 || rr.KernelError != "" {
			t.Fatalf("run %s/%s/%s not clean: %+v", rr.Mechanism, rr.Problem, rr.Arrival, rr)
		}
	}
	if !strings.Contains(errBuf.String(), "oracle clean") {
		t.Fatalf("human summary missing from stderr:\n%s", errBuf.String())
	}
}
