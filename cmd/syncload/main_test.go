package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/load"
)

func TestExpandMechs(t *testing.T) {
	all, err := expandMechs("all")
	if err != nil || len(all) != 6 {
		t.Fatalf("all = %v, %v", all, err)
	}
	two, err := expandMechs("monitor, csp")
	if err != nil || len(two) != 2 || two[0] != "monitor" {
		t.Fatalf("list = %v, %v", two, err)
	}
	vs, err := expandMechs("variants")
	if err != nil || len(vs) != 2 || vs[0] != "semaphore-fast" || vs[1] != "semaphore-striped" {
		t.Fatalf("variants = %v, %v", vs, err)
	}
	if both, err := expandMechs("all,variants"); err != nil || len(both) != 8 {
		t.Fatalf("all,variants = %v, %v", both, err)
	}
	if _, err := expandMechs("mutex"); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	if _, err := expandMechs(""); err == nil {
		t.Fatal("empty mechanism list accepted")
	}
}

func TestExpandProblems(t *testing.T) {
	if def, err := expandProblems("default"); err != nil || len(def) != 3 {
		t.Fatalf("default = %v, %v", def, err)
	}
	if all, err := expandProblems("all"); err != nil || len(all) != 5 {
		t.Fatalf("all = %v, %v", all, err)
	}
	if _, err := expandProblems("disk-scheduler"); err == nil {
		t.Fatal("non-load-generable problem accepted")
	}
}

func TestExpandArrivals(t *testing.T) {
	ks, err := expandArrivals("poisson,closed")
	if err != nil || len(ks) != 2 || ks[0] != load.ArrivalPoisson || ks[1] != load.ArrivalClosed {
		t.Fatalf("arrivals = %v, %v", ks, err)
	}
	newOnes, err := expandArrivals("diurnal,pareto")
	if err != nil || len(newOnes) != 2 || newOnes[0] != load.ArrivalDiurnal || newOnes[1] != load.ArrivalPareto {
		t.Fatalf("arrivals = %v, %v", newOnes, err)
	}
	if _, err := expandArrivals("bursty"); err == nil {
		t.Fatal("unknown arrival accepted")
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-mech", "nope"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "unknown mechanism") {
		t.Fatalf("stderr = %q", errBuf.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"semaphore", "bounded-buffer", "poisson", "diurnal", "pareto", "semaphore-fast", "semaphore-striped"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

// End-to-end: a tiny matrix run must exit 0, write a valid versioned
// report to -o, and print the human summary to stderr.
func TestRunEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.json")
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-mech", "monitor,semaphore", "-problem", "bounded-buffer",
		"-arrival", "poisson,closed",
		"-ops", "40", "-duration", "0s", "-rate", "20000", "-think", "10",
		"-o", path,
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, errBuf.String())
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep load.Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if len(rep.Runs) != 4 {
		t.Fatalf("runs = %d, want 2 mechs × 2 arrivals", len(rep.Runs))
	}
	for _, rr := range rep.Runs {
		if !rr.Judged || len(rr.Violations) != 0 || rr.KernelError != "" {
			t.Fatalf("run %s/%s/%s not clean: %+v", rr.Mechanism, rr.Problem, rr.Arrival, rr)
		}
	}
	if !strings.Contains(errBuf.String(), "oracle clean") {
		t.Fatalf("human summary missing from stderr:\n%s", errBuf.String())
	}
}

// Soak mode with -json streams pure NDJSON: every stdout line — the
// incremental snapshots and the final report — is a standalone valid
// repro-load/v1 document, snapshot sequence numbers increase, and mid-run
// quantiles of a non-empty class are never zero.
func TestRunSoakStreamsValidSnapshots(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-mech", "semaphore-striped", "-problem", "fcfs", "-arrival", "poisson",
		"-rate", "50000", "-duration", "300ms", "-trace=false",
		"-soak", "-interval", "50ms", "-json",
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, errBuf.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("got %d NDJSON lines, want snapshots plus a final report:\n%s", len(lines), out.String())
	}
	lastSeq := 0
	for i, line := range lines {
		var rep load.Report
		if err := json.Unmarshal([]byte(line), &rep); err != nil {
			t.Fatalf("line %d not a JSON document: %v\n%s", i, err, line)
		}
		if err := rep.Validate(); err != nil {
			t.Fatalf("line %d invalid: %v", i, err)
		}
		rr := &rep.Runs[0]
		final := i == len(lines)-1
		if final {
			if rr.SnapshotSeq != 0 {
				t.Fatalf("final report has snapshot_seq %d", rr.SnapshotSeq)
			}
		} else {
			if rr.SnapshotSeq <= lastSeq {
				t.Fatalf("line %d: snapshot_seq %d not increasing past %d", i, rr.SnapshotSeq, lastSeq)
			}
			lastSeq = rr.SnapshotSeq
		}
		for _, c := range rr.Classes {
			if c.Total.Count > 0 && c.Total.P99Ns == 0 && c.Total.MaxNs > 0 {
				t.Fatalf("line %d class %s: count=%d max=%d but p99=0", i, c.Name, c.Total.Count, c.Total.MaxNs)
			}
		}
	}
}

// Human soak mode prints the per-snapshot line with Jain tracking for
// closed-loop runs.
func TestRunSoakHumanOutput(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-mech", "monitor", "-problem", "fcfs", "-arrival", "closed",
		"-clients", "4", "-think", "10", "-duration", "250ms", "-trace=false",
		"-soak", "-interval", "50ms",
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "soak #") || !strings.Contains(out.String(), "jain=") {
		t.Fatalf("soak lines missing from human output:\n%s", out.String())
	}
}

// -calibrate archives the harness measurement in the emitted report.
func TestRunCalibrate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.json")
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-mech", "semaphore", "-problem", "fcfs", "-arrival", "poisson",
		"-ops", "30", "-duration", "0s", "-rate", "20000",
		"-calibrate", "-o", path,
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, errBuf.String())
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep load.Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if rep.Harness == nil || rep.Harness.Cores < 1 || rep.Harness.ShardedRecordsPerSec <= 0 {
		t.Fatalf("harness block missing or empty: %+v", rep.Harness)
	}
	if !strings.Contains(errBuf.String(), "harness:") {
		t.Fatalf("human calibration line missing:\n%s", errBuf.String())
	}
}

// -fairness-min is a soak-snapshot gate: usable only with -soak, range-
// checked, passing when fairness holds, and failing the run (exit 1)
// when a snapshot's Jain index falls below the floor.
func TestRunFairnessMin(t *testing.T) {
	t.Run("requires soak", func(t *testing.T) {
		var out, errBuf bytes.Buffer
		if code := run([]string{"-fairness-min", "0.9"}, &out, &errBuf); code != 2 {
			t.Fatalf("exit = %d, want 2; stderr: %s", code, errBuf.String())
		}
		if !strings.Contains(errBuf.String(), "add -soak") {
			t.Fatalf("stderr = %q", errBuf.String())
		}
	})
	t.Run("range checked", func(t *testing.T) {
		var out, errBuf bytes.Buffer
		if code := run([]string{"-soak", "-fairness-min", "1.5"}, &out, &errBuf); code != 2 {
			t.Fatalf("exit = %d, want 2; stderr: %s", code, errBuf.String())
		}
	})
	t.Run("holds on a fair run", func(t *testing.T) {
		var out, errBuf bytes.Buffer
		code := run([]string{
			"-mech", "monitor", "-problem", "fcfs", "-arrival", "closed",
			"-clients", "4", "-think", "10", "-duration", "250ms", "-trace=false",
			"-soak", "-interval", "50ms", "-fairness-min", "0.05",
		}, &out, &errBuf)
		if code != 0 {
			t.Fatalf("exit = %d\nstderr: %s", code, errBuf.String())
		}
	})
	t.Run("breach fails the run", func(t *testing.T) {
		// An unreachable floor: any closed-loop snapshot with a finite
		// population has jain <= 1, so a floor above 1 cannot hold. The
		// flag gate rejects >1, so drive checkFairnessFloor directly.
		rr := &load.RunReport{
			Mechanism: "monitor", Problem: "fcfs", SnapshotSeq: 3,
			ClientCompleted: []int64{9, 1}, JainIndex: 0.61,
		}
		err := checkFairnessFloor(rr, &options{fairnessMin: 0.9})
		if err == nil || !strings.Contains(err.Error(), "fairness floor breached") {
			t.Fatalf("err = %v, want floor breach", err)
		}
		if err := checkFairnessFloor(rr, &options{fairnessMin: 0.5}); err != nil {
			t.Fatalf("floor 0.5 against jain 0.61: %v", err)
		}
		// Open-loop snapshots (no per-client data) pass vacuously.
		open := &load.RunReport{Mechanism: "monitor", Problem: "fcfs", JainIndex: 0}
		if err := checkFairnessFloor(open, &options{fairnessMin: 0.9}); err != nil {
			t.Fatalf("open-loop snapshot: %v", err)
		}
	})
}
