// Package repro reproduces Toby Bloom's "Evaluating Synchronization
// Mechanisms" (SOSP 1979) as a working Go system: six synchronization
// mechanisms built from scratch on a dual real/deterministic process
// kernel, the paper's eight-problem test suite with machine-checkable
// oracles, forty-eight mechanism×problem solutions, and an evaluation
// engine that regenerates the paper's findings — the expressive-power
// matrix, the constraint-independence analysis, the modularity criteria,
// and the Figure-1 footnote-3 anomaly — as reproducible experiments.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record. The root bench suite (bench_test.go) carries
// one benchmark per experiment; run it with
//
//	go test -bench=. -benchmem .
package repro
