// The alarm clock (Hoare 1974) on virtual time: sleepers ask to be woken
// n ticks in the future; the deterministic kernel advances a logical
// clock. The same program runs against the monitor solution (priority
// waits ranked by due time) and the CCR solution (guards over the clock),
// printing the wake schedule.
//
// Run with:
//
//	go run ./examples/alarmclock
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/trace"
)

func main() {
	sleepers := []problems.Sleeper{
		{Ticks: 7, Delay: 0},
		{Ticks: 3, Delay: 0},
		{Ticks: 12, Delay: 2},
		{Ticks: 1, Delay: 4},
		{Ticks: 5, Delay: 6},
	}
	fmt.Println("sleepers (ticks, arrival delay):")
	for i, s := range sleepers {
		fmt.Printf("  sleeper %d: wants %2d ticks, arrives after %d yields\n", i+1, s.Ticks, s.Delay)
	}
	fmt.Println()

	for _, mech := range []string{"monitor", "ccr", "serializer"} {
		suite, ok := solutions.ByMechanism(mech)
		if !ok {
			log.Fatalf("no suite for %s", mech)
		}
		k := kernel.NewSim()
		r := trace.NewRecorder(k)
		ac := suite.NewAlarmClock(k)
		cfg := problems.ClockConfig{Sleepers: sleepers, TotalTicks: 16}
		if err := problems.DriveAlarmClock(k, ac, r, cfg); err != nil {
			log.Fatalf("%s: %v", mech, err)
		}
		tr := r.Events()
		if vs := problems.CheckAlarmClock(tr); len(vs) > 0 {
			log.Fatalf("%s: oracle violations: %v", mech, vs)
		}

		type wake struct{ due, at int64 }
		var wakes []wake
		ticks := int64(0)
		for _, e := range tr {
			switch {
			case e.Kind == trace.KindEnter && e.Op == problems.OpTick:
				ticks = e.Arg
			case e.Kind == trace.KindEnter && e.Op == problems.OpWakeMe:
				wakes = append(wakes, wake{due: e.Arg, at: ticks})
			}
		}
		sort.Slice(wakes, func(i, j int) bool { return wakes[i].due < wakes[j].due })
		fmt.Printf("%s:\n", mech)
		for _, w := range wakes {
			fmt.Printf("  due at tick %2d, woke during tick %2d\n", w.due, w.at)
		}
		fmt.Println()
	}
	fmt.Println("No sleeper woke before its due tick (the oracle checked every run).")
}
