// Disk-head scheduling three ways: the same elevator policy implemented
// with Hoare's monitor priority waits, serializer priority queues, and a
// CSP server — all serving one workload on the deterministic kernel, with
// the seek distance compared against first-come-first-served order.
//
// Run with:
//
//	go run ./examples/diskscheduler
package main

import (
	"fmt"
	"log"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/trace"
)

const (
	startTrack = 50
	maxTrack   = 200
)

func workload() problems.DiskConfig {
	return problems.DiskConfig{
		Requests: []problems.DiskRequest{
			{Track: 55, Delay: 0},
			{Track: 10, Delay: 0},
			{Track: 60, Delay: 0},
			{Track: 90, Delay: 0},
			{Track: 20, Delay: 0},
			{Track: 75, Delay: 6},
			{Track: 40, Delay: 6},
			{Track: 120, Delay: 12},
		},
		WorkYields: 4,
	}
}

func main() {
	cfg := workload()
	var arrival []int64
	for _, r := range cfg.Requests {
		arrival = append(arrival, r.Track)
	}
	fmt.Printf("workload: tracks %v, head starts at %d\n", arrival, startTrack)
	fmt.Printf("FCFS order would seek %d tracks; a full pre-loaded SCAN would seek %d\n\n",
		problems.SeekDistance(startTrack, arrival),
		problems.SeekDistance(startTrack, problems.ScanReference(startTrack, arrival)))

	for _, mech := range []string{"monitor", "serializer", "csp"} {
		suite, ok := solutions.ByMechanism(mech)
		if !ok {
			log.Fatalf("no suite for %s", mech)
		}
		k := kernel.NewSim()
		r := trace.NewRecorder(k)
		d := suite.NewDisk(k, startTrack, maxTrack)
		if err := problems.DriveDisk(k, d, r, cfg); err != nil {
			log.Fatalf("%s: %v", mech, err)
		}
		tr := r.Events()
		if vs := problems.CheckDisk(tr, startTrack, true); len(vs) > 0 {
			log.Fatalf("%s: oracle violations: %v", mech, vs)
		}
		var order []int64
		for _, iv := range tr.MustIntervals() {
			if iv.Op == problems.OpSeek {
				order = append(order, iv.Arg)
			}
		}
		fmt.Printf("  %-12s service order %v   seek distance %d\n",
			mech, order, problems.SeekDistance(startTrack, order))
	}

	fmt.Println("\nAll three implement Hoare's elevator; the orders agree and beat FCFS.")
	fmt.Println("(Arrivals mid-sweep keep the measured distance slightly above the ideal")
	fmt.Println("pre-loaded SCAN, which sees the whole workload up front.)")
}
