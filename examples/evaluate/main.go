// Evaluating YOUR mechanism with the paper's methodology — the library's
// extension story.
//
// The paper's §6 closes by hoping the techniques prove useful for
// mechanisms it never saw. This example defines a brand-new toy
// mechanism — an *event-count/sequencer* pair (Reed & Kanodia's style:
// tickets for ordering, an event count to await) — implements three of
// the footnote-2 problems with it, and judges the solutions with the
// standard oracles, exactly as the built-in suites are judged.
//
// Run with:
//
//	go run ./examples/evaluate
package main

import (
	"fmt"
	"log"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/semaphore"
	"repro/internal/trace"
)

// --- The mechanism under evaluation: event counts and sequencers ---

// Sequencer hands out strictly increasing tickets.
type Sequencer struct {
	mu   semaphore.Mutex
	next int64
}

// TicketFor draws the next ticket.
func (s *Sequencer) TicketFor(p *kernel.Proc) int64 {
	s.mu.Lock(p)
	t := s.next
	s.next++
	s.mu.Unlock(p)
	return t
}

// EventCount is an awaitable monotone counter.
type EventCount struct {
	mu      semaphore.Mutex
	value   int64
	waiters []ecWaiter
}

type ecWaiter struct {
	threshold int64
	gate      *semaphore.Semaphore
}

// Read reports the current value.
func (e *EventCount) Read(p *kernel.Proc) int64 {
	e.mu.Lock(p)
	v := e.value
	e.mu.Unlock(p)
	return v
}

// Await blocks until the count reaches threshold.
func (e *EventCount) Await(p *kernel.Proc, threshold int64) {
	e.mu.Lock(p)
	if e.value >= threshold {
		e.mu.Unlock(p)
		return
	}
	w := ecWaiter{threshold: threshold, gate: semaphore.New(0)}
	e.waiters = append(e.waiters, w)
	e.mu.Unlock(p)
	w.gate.P(p)
}

// Advance increments the count and releases every waiter now due.
func (e *EventCount) Advance(p *kernel.Proc) {
	e.mu.Lock(p)
	e.value++
	var due []ecWaiter
	rest := e.waiters[:0]
	for _, w := range e.waiters {
		if w.threshold <= e.value {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	e.waiters = rest
	e.mu.Unlock(p)
	for _, w := range due {
		w.gate.V()
	}
}

// --- Solutions to three footnote-2 problems ---

// ecFCFS: the ticket/event-count idiom IS first-come-first-served.
type ecFCFS struct {
	seq  Sequencer
	done EventCount
}

func (f *ecFCFS) Use(p *kernel.Proc, body func()) {
	t := f.seq.TicketFor(p)
	f.done.Await(p, t) // wait for all earlier tickets to finish
	body()
	f.done.Advance(p)
}

// ecOneSlot: alternation from two counts (puts completed, gets completed).
type ecOneSlot struct {
	puts EventCount
	gets EventCount
	seqP Sequencer
	seqG Sequencer
	slot int64
}

func (s *ecOneSlot) Put(p *kernel.Proc, item int64, body func()) {
	t := s.seqP.TicketFor(p)
	s.gets.Await(p, t) // the t-th put needs t completed gets
	body()
	s.slot = item
	s.puts.Advance(p)
}

func (s *ecOneSlot) Get(p *kernel.Proc, body func(int64)) {
	t := s.seqG.TicketFor(p)
	s.puts.Await(p, t+1) // the t-th get needs t+1 completed puts
	body(s.slot)
	s.gets.Advance(p)
}

// ecBoundedBuffer: the classic event-count buffer — occupancy bounds are
// arithmetic over the two counts.
type ecBoundedBuffer struct {
	in, out  EventCount
	seqP     Sequencer
	seqG     Sequencer
	capacity int
	buf      []int64
	mu       semaphore.Mutex
}

func (b *ecBoundedBuffer) Cap() int { return b.capacity }

func (b *ecBoundedBuffer) Deposit(p *kernel.Proc, item int64, body func()) {
	t := b.seqP.TicketFor(p)
	b.out.Await(p, t-int64(b.capacity)+1) // room for the t-th deposit
	b.mu.Lock(p)
	body()
	b.buf = append(b.buf, item)
	b.mu.Unlock(p)
	b.in.Advance(p)
}

func (b *ecBoundedBuffer) Remove(p *kernel.Proc, body func(int64)) {
	t := b.seqG.TicketFor(p)
	b.in.Await(p, t+1) // the t-th removal needs t+1 deposits
	b.mu.Lock(p)
	item := b.buf[0]
	b.buf = b.buf[1:]
	body(item)
	b.mu.Unlock(p)
	b.out.Advance(p)
}

// --- The evaluation, with the standard drivers and oracles ---

func main() {
	fmt.Println("Evaluating a user-defined mechanism (event counts + sequencers)")
	fmt.Println("with the paper's test problems and oracles:")
	fmt.Println()

	// FCFS allocator.
	{
		k := kernel.NewSim()
		r := trace.NewRecorder(k)
		err := problems.DriveFCFS(k, &ecFCFS{}, r, problems.FCFSConfig{
			Processes: 5, Rounds: 4, WorkYields: 2, GapYields: 3,
		})
		report(problems.NameFCFS, err, problems.CheckFCFS(r.Events(), true))
	}

	// One-slot buffer.
	{
		k := kernel.NewSim()
		r := trace.NewRecorder(k)
		err := problems.DriveOneSlot(k, &ecOneSlot{}, r, problems.OneSlotConfig{
			Producers: 2, Consumers: 2, ItemsPerProducer: 8,
		})
		report(problems.NameOneSlot, err, problems.CheckOneSlot(r.Events(), 16))
	}

	// Bounded buffer.
	{
		k := kernel.NewSim()
		r := trace.NewRecorder(k)
		bb := &ecBoundedBuffer{capacity: 3}
		err := problems.DriveBoundedBuffer(k, bb, r, problems.BBConfig{
			Producers: 3, Consumers: 2, ItemsPerProducer: 10, WorkYields: 2,
		})
		report(problems.NameBoundedBuffer, err, problems.CheckBoundedBuffer(r.Events(), 3, 30))
	}

	fmt.Println()
	fmt.Println("Assessment in the paper's terms: request TIME is the mechanism's native")
	fmt.Println("information (tickets are arrival order — FCFS is one line); LOCAL STATE is")
	fmt.Println("arithmetic over counts; but request TYPE and PRIORITY constraints have no")
	fmt.Println("construct at all — a readers-priority scheme would need hand-built queues,")
	fmt.Println("exactly the kind of finding the T1 matrix records for the classic mechanisms.")
}

func report(problem string, err error, vs []problems.Violation) {
	switch {
	case err != nil:
		log.Fatalf("  %-18s FAILED: %v", problem, err)
	case len(vs) > 0:
		fmt.Printf("  %-18s %d violations:\n", problem, len(vs))
		for _, v := range vs {
			fmt.Println("     " + v.String())
		}
	default:
		fmt.Printf("  %-18s ok (oracle admitted the trace)\n", problem)
	}
}
