// Quickstart: a bounded buffer protected by a Hoare monitor, running as a
// real concurrent Go program on the kernel substrate.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/kernel"
	"repro/internal/monitor"
)

func main() {
	// The kernel hosts processes. RealKernel runs them as goroutines;
	// swap in kernel.NewSim() for a deterministic, single-stepped run.
	k := kernel.NewReal()

	// A monitor encapsulates the buffer: one process inside at a time,
	// conditions carry the local-state constraints.
	m := monitor.New("buffer")
	notFull := m.NewCondition("notfull")
	notEmpty := m.NewCondition("notempty")
	const capacity = 4
	var buf []int

	deposit := func(p *kernel.Proc, v int) {
		m.Enter(p)
		if len(buf) == capacity {
			notFull.Wait(p) // Hoare semantics: space is guaranteed on resume
		}
		buf = append(buf, v)
		notEmpty.Signal(p)
		m.Exit(p)
	}
	remove := func(p *kernel.Proc) int {
		m.Enter(p)
		if len(buf) == 0 {
			notEmpty.Wait(p)
		}
		v := buf[0]
		buf = buf[1:]
		notFull.Signal(p)
		m.Exit(p)
		return v
	}

	const items = 20
	results := make([]int, 0, items)

	k.Spawn("producer", func(p *kernel.Proc) {
		for i := 1; i <= items; i++ {
			deposit(p, i*i)
		}
	})
	k.Spawn("consumer", func(p *kernel.Proc) {
		for i := 0; i < items; i++ {
			results = append(results, remove(p))
		}
	})

	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("consumed:", results)
	fmt.Printf("%d items moved through a %d-slot monitor-protected buffer\n", len(results), capacity)
}
