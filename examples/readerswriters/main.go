// Readers–writers across all six mechanisms — the paper's central
// example, live.
//
// The program runs the footnote-3 scenario (a writer holds the database
// while a reader and then a second writer arrive) against every
// mechanism's readers-priority solution and reports which admit the
// second writer past the waiting reader. The published Figure-1
// path-expression solution is the one that misbehaves — the paper's
// anomaly, reproduced on demand.
//
// Run with:
//
//	go run ./examples/readerswriters
package main

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/explore"
	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/trace"
)

func main() {
	fmt.Println("The footnote-3 scenario: writer1 is writing; a reader arrives, then writer2.")
	fmt.Println("Readers-priority demands the reader be admitted before writer2.")
	fmt.Println()

	for _, suite := range solutions.All() {
		suite := suite
		prog := explore.Program(func(k kernel.Kernel, r *trace.Recorder) {
			eval.FigureScenario(suite.NewReadersPriority(k))(k, r)
		})
		res := explore.Run(prog, problems.CheckReadersPriority,
			explore.Options{RandomRuns: 200, DFSRuns: 400})
		verdict := "readers-priority preserved"
		if res.Found {
			verdict = "ANOMALY: writer2 overtook the waiting reader"
		}
		fmt.Printf("  %-12s %-45s (%d schedules explored)\n", suite.Mechanism, verdict, res.Runs)
	}

	fmt.Println()
	fmt.Println("The pathexpr row is the paper's Figure 1; its violating history:")
	f1 := eval.RunFigure1()
	if f1.AnomalyFound {
		for _, e := range f1.Trace {
			fmt.Println("   " + e.String())
		}
		for _, v := range f1.Violations {
			fmt.Println("   -> " + v.String())
		}
	} else {
		fmt.Println("   (not reproduced this run)")
	}
}
