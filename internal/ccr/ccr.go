// Package ccr implements Brinch Hansen's conditional critical regions
// ("Operating System Principles", 1973 — the paper's reference [6]):
//
//	region v when B do S
//
// A process enters the region when no other process is inside it and the
// guard B holds; otherwise it waits. Whenever a process leaves the region,
// the guards of waiting processes are re-evaluated (under the region's
// exclusion) and the longest-waiting process whose guard now holds is
// admitted.
//
// Discipline: guards must depend only on state protected by this region.
// Under that discipline the implementation is complete without polling —
// protected state can change only inside the region, so guards can change
// truth value only at region exit, which is exactly when they are
// re-evaluated. (A guard reading unprotected state could become true
// without any exit; such a guard is a bug in the caller, mirroring the
// language rule that region variables are only touched inside regions.)
//
// CCRs are evaluated alongside the paper's three mechanisms because they
// are the era's main "automatic signalling" alternative to monitors: they
// trade the explicit-signal total ordering the paper criticizes in §5.2
// for guard re-evaluation cost, the same trade serializers make.
package ccr

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
)

// Region is one conditional critical region protecting one shared
// variable bundle.
type Region struct {
	name string

	mu       sync.Mutex
	occupant *kernel.Proc
	waiters  kernel.WaitList // tags are guard functions
}

// New creates a region. The name appears in misuse panics.
func New(name string) *Region { return &Region{name: name} }

// Name reports the region's name.
func (r *Region) Name() string { return r.name }

// True is the always-true guard: `region v do S` (unconditional critical
// region).
func True() bool { return true }

// Execute runs body inside the region once guard holds: the Go rendering
// of `region v when guard do body`. The guard is evaluated only with the
// region's exclusion held. Nested Execute by the same process panics.
func (r *Region) Execute(p *kernel.Proc, guard func() bool, body func()) {
	r.mu.Lock()
	if r.occupant == p {
		r.mu.Unlock()
		panic(fmt.Sprintf("ccr %s: %s nested region entry", r.name, p))
	}
	if r.occupant == nil && guard() {
		r.occupant = p
		r.mu.Unlock()
	} else {
		r.waiters.PushTagged(p, 0, guard)
		r.mu.Unlock()
		p.Park()
		// Admitted by an exiting process, which verified our guard under
		// exclusion and installed us as occupant.
	}

	defer r.exit(p)
	body()
}

// exit releases the region and admits the longest-waiting process whose
// guard now holds, if any.
func (r *Region) exit(p *kernel.Proc) {
	r.mu.Lock()
	if r.occupant != p {
		r.mu.Unlock()
		panic(fmt.Sprintf("ccr %s: exit by non-occupant %s", r.name, p))
	}
	// Re-evaluate guards in arrival order. We still hold the region
	// conceptually, so guards may safely read protected state.
	var admitted *kernel.Proc
	var rest []struct {
		p *kernel.Proc
		g func() bool
	}
	for {
		w, tag := r.waiters.PopTagged()
		if w == nil {
			break
		}
		g := tag.(func() bool)
		if admitted == nil && g() {
			admitted = w
			continue
		}
		rest = append(rest, struct {
			p *kernel.Proc
			g func() bool
		}{w, g})
	}
	for _, e := range rest {
		r.waiters.PushTagged(e.p, 0, e.g)
	}
	r.occupant = admitted
	r.mu.Unlock()
	if admitted != nil {
		admitted.Unpark()
	}
}

// Occupied reports whether a process is inside the region; advisory under
// the real kernel.
func (r *Region) Occupied() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.occupant != nil
}

// Waiting reports how many processes are blocked on guards.
func (r *Region) Waiting() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.waiters.Len()
}

// Await blocks until guard holds, then runs body — sugar for the common
// pattern of a region used purely as a condition synchronizer.
func (r *Region) Await(p *kernel.Proc, guard func() bool) {
	r.Execute(p, guard, func() {})
}
