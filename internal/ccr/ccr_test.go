package ccr

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/kernel"
)

func TestUnconditionalExclusion(t *testing.T) {
	k := kernel.NewSim(kernel.WithPolicy(kernel.Random(11)))
	r := New("v")
	inside, maxInside := 0, 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *kernel.Proc) {
			for j := 0; j < 6; j++ {
				r.Execute(p, True, func() {
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					p.Yield()
					inside--
				})
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("maxInside = %d, want 1", maxInside)
	}
}

func TestGuardBlocksUntilTrue(t *testing.T) {
	k := kernel.NewSim()
	r := New("v")
	ready := false
	var order []string
	k.Spawn("waiter", func(p *kernel.Proc) {
		r.Execute(p, func() bool { return ready }, func() {
			order = append(order, "entered")
		})
	})
	k.Spawn("setter", func(p *kernel.Proc) {
		r.Execute(p, True, func() {
			order = append(order, "set")
			ready = true
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[set entered]" {
		t.Fatalf("order = %v", order)
	}
}

func TestGuardEvaluatedUnderExclusion(t *testing.T) {
	k := kernel.NewSim()
	r := New("v")
	evals := 0
	occupiedDuringEval := true
	k.Spawn("holder", func(p *kernel.Proc) {
		r.Execute(p, True, func() {
			p.Yield() // waiter arrives while we are inside
			p.Yield()
		})
	})
	k.Spawn("waiter", func(p *kernel.Proc) {
		r.Execute(p, func() bool {
			evals++
			// The guard must never run while another process is inside
			// body; the occupant at evaluation time is the evaluator's
			// admitter or nobody-but-us.
			return true
		}, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if evals == 0 {
		t.Fatal("guard never evaluated")
	}
	_ = occupiedDuringEval
}

// Admission is longest-waiting-first among processes whose guards hold.
func TestFIFOAmongTrueGuards(t *testing.T) {
	k := kernel.NewSim()
	r := New("v")
	gate := false
	var order []int
	k.Spawn("holder", func(p *kernel.Proc) {
		r.Execute(p, True, func() {
			for i := 0; i < 5; i++ {
				p.Yield() // let waiters queue up
			}
			gate = true
		})
	})
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *kernel.Proc) {
			r.Execute(p, func() bool { return gate }, func() {
				order = append(order, p.ID())
			})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[2 3 4 5]" {
		t.Fatalf("admission order = %v, want FIFO", order)
	}
}

// A waiter whose guard is false is skipped in favor of a later waiter
// whose guard is true.
func TestFalseGuardSkipped(t *testing.T) {
	k := kernel.NewSim()
	r := New("v")
	a, b := false, false
	var order []string
	k.Spawn("holder", func(p *kernel.Proc) {
		r.Execute(p, True, func() {
			for i := 0; i < 4; i++ {
				p.Yield()
			}
			b = true // only the second waiter's guard becomes true
		})
	})
	k.Spawn("waiterA", func(p *kernel.Proc) {
		r.Execute(p, func() bool { return a }, func() { order = append(order, "A") })
	})
	k.Spawn("waiterB", func(p *kernel.Proc) {
		r.Execute(p, func() bool { return b }, func() {
			order = append(order, "B")
			a = true // now A can go
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[B A]" {
		t.Fatalf("order = %v, want B then A", order)
	}
}

func TestUnsatisfiableGuardDeadlocks(t *testing.T) {
	k := kernel.NewSim()
	r := New("v")
	k.Spawn("stuck", func(p *kernel.Proc) {
		r.Execute(p, func() bool { return false }, func() {})
	})
	if err := k.Run(); !errors.Is(err, kernel.ErrDeadlock) {
		t.Fatalf("Run = %v, want deadlock", err)
	}
}

func TestNestedEntryPanics(t *testing.T) {
	k := kernel.NewSim()
	r := New("v")
	var recovered any
	k.Spawn("bad", func(p *kernel.Proc) {
		defer func() { recovered = recover() }()
		r.Execute(p, True, func() {
			r.Execute(p, True, func() {})
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recovered == nil {
		t.Fatal("nested entry did not panic")
	}
}

func TestRegionReleasedOnBodyPanic(t *testing.T) {
	k := kernel.NewSim()
	r := New("v")
	entered := false
	k.Spawn("panicker", func(p *kernel.Proc) {
		defer func() { recover() }()
		r.Execute(p, True, func() { panic("boom") })
	})
	k.Spawn("next", func(p *kernel.Proc) {
		r.Execute(p, True, func() { entered = true })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !entered {
		t.Fatal("region not released after body panic")
	}
}

func TestAwait(t *testing.T) {
	k := kernel.NewSim()
	r := New("v")
	n := 0
	passed := false
	k.Spawn("waiter", func(p *kernel.Proc) {
		r.Await(p, func() bool { return n >= 3 })
		passed = true
	})
	k.Spawn("bumper", func(p *kernel.Proc) {
		for i := 0; i < 3; i++ {
			r.Execute(p, True, func() { n++ })
			p.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !passed {
		t.Fatal("Await never returned")
	}
}

// Bounded buffer via CCR, real kernel + race detector.
func TestBoundedBufferReal(t *testing.T) {
	k := kernel.NewReal(kernel.WithWatchdog(30 * time.Second))
	r := New("buffer")
	const cap = 3
	var buf []int
	const items = 1500
	var got []int
	k.Spawn("producer", func(p *kernel.Proc) {
		for i := 0; i < items; i++ {
			r.Execute(p, func() bool { return len(buf) < cap }, func() {
				buf = append(buf, i)
			})
		}
	})
	k.Spawn("consumer", func(p *kernel.Proc) {
		for i := 0; i < items; i++ {
			r.Execute(p, func() bool { return len(buf) > 0 }, func() {
				got = append(got, buf[0])
				buf = buf[1:]
			})
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != items {
		t.Fatalf("consumed %d, want %d", len(got), items)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d = %d", i, v)
		}
	}
}

func BenchmarkRegionUncontended(b *testing.B) {
	k := kernel.NewReal()
	r := New("bench")
	done := make(chan struct{})
	k.Spawn("p", func(p *kernel.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Execute(p, True, func() {})
		}
		close(done)
	})
	<-done
}

func BenchmarkRegionGuardedHandoff(b *testing.B) {
	k := kernel.NewReal(kernel.WithWatchdog(0))
	r := New("bench")
	turn := 0
	b.ResetTimer()
	k.Spawn("a", func(p *kernel.Proc) {
		for i := 0; i < b.N; i++ {
			r.Execute(p, func() bool { return turn == 0 }, func() { turn = 1 })
		}
	})
	k.Spawn("b", func(p *kernel.Proc) {
		for i := 0; i < b.N; i++ {
			r.Execute(p, func() bool { return turn == 1 }, func() { turn = 0 })
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
