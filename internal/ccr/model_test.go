package ccr

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
)

// Model-based testing: a reference automaton of conditional-critical-
// region semantics — guards over a shared counter, longest-waiting-first
// admission among true guards at region exit, and occupancy held by an
// admitted-but-not-yet-scheduled waiter — checked against the
// implementation on random programs under the FIFO SimKernel.

type ccrOp struct {
	threshold int // guard: counter >= threshold (0 = always true)
	delta     int // body: counter += delta
}

type ccrProgram [][]ccrOp

// runCCRReference mirrors the implementation over the FIFO SimKernel.
func runCCRReference(progs ccrProgram) []string {
	n := len(progs)
	counter := 0
	occupant := -1
	type waiter struct {
		proc int
		op   ccrOp
	}
	var waitList []waiter
	ip := make([]int, n)
	pendingBody := make([]*ccrOp, n) // body to run when scheduled (admitted)
	var ready []int
	var history []string
	for i := 0; i < n; i++ {
		if len(progs[i]) > 0 {
			ready = append(ready, i)
		}
	}

	// exit releases the region: admit the longest-waiting true guard.
	exit := func() {
		occupant = -1
		for i, w := range waitList {
			if counter >= w.op.threshold {
				waitList = append(waitList[:i], waitList[i+1:]...)
				occupant = w.proc
				op := w.op
				pendingBody[w.proc] = &op
				ready = append(ready, w.proc)
				return
			}
		}
	}

	steps := 0
	for len(ready) > 0 && steps < 100000 {
		steps++
		proc := ready[0]
		ready = ready[1:]
		if b := pendingBody[proc]; b != nil {
			// Resuming inside Execute: run the admitted body and exit.
			counter += b.delta
			history = append(history, fmt.Sprintf("x%d:%d", proc, counter))
			pendingBody[proc] = nil
			exit()
		}
	running:
		for ip[proc] < len(progs[proc]) {
			op := progs[proc][ip[proc]]
			ip[proc]++
			if occupant == -1 && counter >= op.threshold {
				// Immediate entry: body runs atomically, region exits.
				occupant = proc
				counter += op.delta
				history = append(history, fmt.Sprintf("x%d:%d", proc, counter))
				exit()
				// If exit admitted a waiter, occupancy now belongs to it;
				// we keep running (we are past our own region).
				continue
			}
			waitList = append(waitList, waiter{proc, op})
			break running // parked until admitted
		}
	}
	return history
}

// runCCRImplementation executes the same programs on a real Region.
func runCCRImplementation(progs ccrProgram) ([]string, error) {
	k := kernel.NewSim()
	r := New("model")
	counter := 0
	var history []string
	for proc := range progs {
		proc := proc
		prog := progs[proc]
		k.Spawn(fmt.Sprintf("p%d", proc), func(p *kernel.Proc) {
			for _, op := range prog {
				op := op
				r.Execute(p, func() bool { return counter >= op.threshold }, func() {
					counter += op.delta
					history = append(history, fmt.Sprintf("x%d:%d", proc, counter))
				})
			}
		})
	}
	err := k.Run()
	return history, err
}

// Property: reference and implementation produce identical execution
// histories (operation order and counter evolution), including identical
// stuck prefixes on programs that deadlock on unsatisfiable guards.
func TestPropertyCCRModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nProcs := 2 + rng.Intn(3)
		progs := make(ccrProgram, nProcs)
		for i := range progs {
			for o := 0; o < 1+rng.Intn(4); o++ {
				progs[i] = append(progs[i], ccrOp{
					threshold: rng.Intn(4), // small thresholds: mostly satisfiable
					delta:     rng.Intn(3), // non-negative: counter grows
				})
			}
		}
		ref := runCCRReference(progs)
		impl, err := runCCRImplementation(progs)
		if fmt.Sprint(ref) != fmt.Sprint(impl) {
			t.Logf("progs: %+v", progs)
			t.Logf("ref:  %v", ref)
			t.Logf("impl: %v (err %v)", impl, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
