// Package core models the paper's evaluation framework: synchronization
// schemes as sets of constraints, classified by kind (exclusion/priority)
// and by the categories of information their conditions reference (§3).
//
// Everything downstream hangs off this model: each problem (package
// problems) declares its scheme as Constraints with stable IDs; variant
// problems share constraint IDs exactly when the paper says they share
// constraints (readers-priority and writers-priority share "rw-exclusion"),
// which is what makes the constraint-independence analysis (package eval)
// mechanical; and the expressive-power matrix is indexed by the InfoType
// values defined here.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// InfoType is one of the six categories of information a constraint's
// condition may reference (paper §3).
type InfoType int

const (
	// RequestType is the operation requested ("readers have priority over
	// writers" discriminates on request type).
	RequestType InfoType = iota
	// RequestTime is the time of a request relative to other events,
	// typically used to order requests (first-come-first-served).
	RequestTime
	// RequestParams are the arguments passed with the request (the track
	// number in the disk-head scheduler, the delay in the alarm clock).
	RequestParams
	// SyncState is state needed only for synchronization: which processes
	// are currently inside the resource, counts of active readers, etc.
	SyncState
	// LocalState is state of the unsynchronized resource itself, present
	// even in a sequential program (whether a buffer is full).
	LocalState
	// History is information about completed past events (whether a
	// given procedure has been executed), as distinct from SyncState's
	// in-progress information.
	History
)

// AllInfoTypes lists the six categories in the paper's order.
func AllInfoTypes() []InfoType {
	return []InfoType{RequestType, RequestTime, RequestParams, SyncState, LocalState, History}
}

func (t InfoType) String() string {
	switch t {
	case RequestType:
		return "request type"
	case RequestTime:
		return "request time"
	case RequestParams:
		return "request parameters"
	case SyncState:
		return "synchronization state"
	case LocalState:
		return "local state"
	case History:
		return "history"
	}
	return fmt.Sprintf("InfoType(%d)", int(t))
}

// ConstraintKind is the paper's two-way classification of constraints
// (§3): exclusion constraints ensure consistency; priority constraints
// schedule access.
type ConstraintKind int

const (
	// Exclusion: "if condition then exclude process A".
	Exclusion ConstraintKind = iota
	// Priority: "if condition then process A has priority over B".
	Priority
)

func (k ConstraintKind) String() string {
	switch k {
	case Exclusion:
		return "exclusion"
	case Priority:
		return "priority"
	}
	return fmt.Sprintf("ConstraintKind(%d)", int(k))
}

// Constraint is one constraint of a synchronization scheme. Constraints
// with the same ID in different schemes are the *same* constraint (the
// basis of the independence analysis): readers-priority and
// writers-priority both carry the "rw-exclusion" constraint.
type Constraint struct {
	ID   string
	Kind ConstraintKind
	Uses []InfoType
	// Desc states the constraint in the paper's conditional form, e.g.
	// "if a writer is active then exclude readers and writers".
	Desc string
}

// String renders the constraint compactly.
func (c Constraint) String() string {
	uses := make([]string, len(c.Uses))
	for i, u := range c.Uses {
		uses[i] = u.String()
	}
	return fmt.Sprintf("%s [%s; %s]", c.ID, c.Kind, strings.Join(uses, ", "))
}

// UsesType reports whether the constraint's condition references t.
func (c Constraint) UsesType(t InfoType) bool {
	for _, u := range c.Uses {
		if u == t {
			return true
		}
	}
	return false
}

// Scheme is a synchronization scheme: the full set of constraints
// governing one shared resource.
type Scheme struct {
	Name        string
	Constraints []Constraint
}

// InfoTypes returns the union of information types the scheme's
// constraints use, in the paper's canonical order.
func (s Scheme) InfoTypes() []InfoType {
	var out []InfoType
	for _, t := range AllInfoTypes() {
		for _, c := range s.Constraints {
			if c.UsesType(t) {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

// Constraint returns the constraint with the given ID, if present.
func (s Scheme) Constraint(id string) (Constraint, bool) {
	for _, c := range s.Constraints {
		if c.ID == id {
			return c, true
		}
	}
	return Constraint{}, false
}

// IDs lists the scheme's constraint IDs, sorted.
func (s Scheme) IDs() []string {
	out := make([]string, len(s.Constraints))
	for i, c := range s.Constraints {
		out[i] = c.ID
	}
	sort.Strings(out)
	return out
}

// SharedConstraints returns the constraint IDs present in both schemes —
// the constraints whose implementations the independence criterion says
// should be identical across the two solutions (§4.2).
func SharedConstraints(a, b Scheme) []string {
	var out []string
	for _, ca := range a.Constraints {
		if _, ok := b.Constraint(ca.ID); ok {
			out = append(out, ca.ID)
		}
	}
	sort.Strings(out)
	return out
}

// DifferingConstraints returns the constraint IDs present in exactly one
// of the schemes.
func DifferingConstraints(a, b Scheme) []string {
	var out []string
	for _, ca := range a.Constraints {
		if _, ok := b.Constraint(ca.ID); !ok {
			out = append(out, ca.ID)
		}
	}
	for _, cb := range b.Constraints {
		if _, ok := a.Constraint(cb.ID); !ok {
			out = append(out, cb.ID)
		}
	}
	sort.Strings(out)
	return out
}

// Support is the expressive-power rating of a mechanism for one
// information type (§4.1): whether the mechanism provides a
// straightforward way to express constraints using that information.
type Support int

const (
	// Unsupported: no way to express constraints on this information
	// within the mechanism itself.
	Unsupported Support = iota
	// Indirect: expressible only through auxiliary machinery outside the
	// construct proper (the paper's "synchronization procedures" in path
	// expressions, hand-maintained counts in monitors).
	Indirect
	// Direct: the mechanism has a construct for this information type
	// (monitor condition queues for request time, serializer crowds for
	// synchronization state, …).
	Direct
)

func (s Support) String() string {
	switch s {
	case Unsupported:
		return "unsupported"
	case Indirect:
		return "indirect"
	case Direct:
		return "direct"
	}
	return fmt.Sprintf("Support(%d)", int(s))
}

// Mechanism describes one synchronization construct under evaluation.
type Mechanism struct {
	Name string // stable key: "semaphore", "monitor", "serializer", "pathexpr", "ccr", "csp"
	Full string // display name
	Year int
	Ref  string // the paper's bibliography entry it corresponds to
}

// Mechanisms lists the constructs this repository implements and
// evaluates, in historical order. The first three are the paper's §5
// subjects; semaphores are the §1 baseline; CCRs and CSP are the
// extensions §6 calls for.
func Mechanisms() []Mechanism {
	return []Mechanism{
		{Name: "semaphore", Full: "Semaphores (Dijkstra)", Year: 1968, Ref: "[9]"},
		{Name: "ccr", Full: "Conditional critical regions (Brinch Hansen)", Year: 1973, Ref: "[6]"},
		{Name: "pathexpr", Full: "Path expressions (Campbell–Habermann)", Year: 1974, Ref: "[7]"},
		{Name: "monitor", Full: "Monitors (Hoare)", Year: 1974, Ref: "[13]"},
		{Name: "serializer", Full: "Serializers (Atkinson–Hewitt)", Year: 1979, Ref: "[3]"},
		{Name: "csp", Full: "Communicating sequential processes (Hoare)", Year: 1978, Ref: "[20]"},
	}
}

// MechanismByName looks up a mechanism descriptor.
func MechanismByName(name string) (Mechanism, bool) {
	for _, m := range Mechanisms() {
		if m.Name == name {
			return m, true
		}
	}
	return Mechanism{}, false
}
