package core

import (
	"fmt"
	"strings"
	"testing"
)

func TestAllInfoTypesOrderAndNames(t *testing.T) {
	all := AllInfoTypes()
	if len(all) != 6 {
		t.Fatalf("len = %d, want 6", len(all))
	}
	wantNames := []string{
		"request type", "request time", "request parameters",
		"synchronization state", "local state", "history",
	}
	for i, it := range all {
		if it.String() != wantNames[i] {
			t.Errorf("type %d = %q, want %q", i, it, wantNames[i])
		}
	}
}

func TestConstraintKindNames(t *testing.T) {
	if Exclusion.String() != "exclusion" || Priority.String() != "priority" {
		t.Fatalf("kind names: %q, %q", Exclusion, Priority)
	}
}

func TestConstraintUsesType(t *testing.T) {
	c := Constraint{ID: "x", Kind: Exclusion, Uses: []InfoType{RequestType, SyncState}}
	if !c.UsesType(RequestType) || !c.UsesType(SyncState) {
		t.Fatal("UsesType false negatives")
	}
	if c.UsesType(History) {
		t.Fatal("UsesType false positive")
	}
}

func TestConstraintString(t *testing.T) {
	c := Constraint{ID: "rw-exclusion", Kind: Exclusion, Uses: []InfoType{RequestType}}
	s := c.String()
	if !strings.Contains(s, "rw-exclusion") || !strings.Contains(s, "exclusion") || !strings.Contains(s, "request type") {
		t.Fatalf("String = %q", s)
	}
}

func twoSchemes() (Scheme, Scheme) {
	excl := Constraint{ID: "rw-exclusion", Kind: Exclusion, Uses: []InfoType{RequestType, SyncState}}
	rp := Scheme{
		Name: "readers-priority",
		Constraints: []Constraint{
			excl,
			{ID: "readers-priority", Kind: Priority, Uses: []InfoType{RequestType}},
		},
	}
	wp := Scheme{
		Name: "writers-priority",
		Constraints: []Constraint{
			excl,
			{ID: "writers-priority", Kind: Priority, Uses: []InfoType{RequestType}},
		},
	}
	return rp, wp
}

func TestSchemeInfoTypes(t *testing.T) {
	rp, _ := twoSchemes()
	got := rp.InfoTypes()
	if fmt.Sprint(got) != fmt.Sprint([]InfoType{RequestType, SyncState}) {
		t.Fatalf("InfoTypes = %v", got)
	}
}

func TestSchemeConstraintLookup(t *testing.T) {
	rp, _ := twoSchemes()
	if _, ok := rp.Constraint("rw-exclusion"); !ok {
		t.Fatal("rw-exclusion not found")
	}
	if _, ok := rp.Constraint("nope"); ok {
		t.Fatal("phantom constraint found")
	}
	ids := rp.IDs()
	if fmt.Sprint(ids) != "[readers-priority rw-exclusion]" {
		t.Fatalf("IDs = %v", ids)
	}
}

// The paper's §4.2 example: readers-priority and writers-priority share
// the exclusion constraint and differ in the priority constraint.
func TestSharedAndDifferingConstraints(t *testing.T) {
	rp, wp := twoSchemes()
	if got := SharedConstraints(rp, wp); fmt.Sprint(got) != "[rw-exclusion]" {
		t.Fatalf("Shared = %v", got)
	}
	if got := DifferingConstraints(rp, wp); fmt.Sprint(got) != "[readers-priority writers-priority]" {
		t.Fatalf("Differing = %v", got)
	}
}

func TestSharedConstraintsIdenticalSchemes(t *testing.T) {
	rp, _ := twoSchemes()
	if got := SharedConstraints(rp, rp); len(got) != 2 {
		t.Fatalf("Shared(self) = %v", got)
	}
	if got := DifferingConstraints(rp, rp); len(got) != 0 {
		t.Fatalf("Differing(self) = %v", got)
	}
}

func TestSupportNames(t *testing.T) {
	if Direct.String() != "direct" || Indirect.String() != "indirect" || Unsupported.String() != "unsupported" {
		t.Fatal("support names wrong")
	}
}

func TestMechanismsRoster(t *testing.T) {
	ms := Mechanisms()
	if len(ms) != 6 {
		t.Fatalf("mechanisms = %d, want 6", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.Name] = true
	}
	for _, want := range []string{"semaphore", "ccr", "pathexpr", "monitor", "serializer", "csp"} {
		if !names[want] {
			t.Errorf("mechanism %q missing", want)
		}
	}
	if m, ok := MechanismByName("monitor"); !ok || m.Year != 1974 {
		t.Fatalf("MechanismByName(monitor) = %+v, %v", m, ok)
	}
	if _, ok := MechanismByName("none"); ok {
		t.Fatal("phantom mechanism")
	}
}
