// Package csp implements a message-passing synchronization mechanism in
// the style of Hoare's "Communicating Sequential Processes" (CACM 21(8),
// 1978 — the paper's reference [20]).
//
// Bloom's §6 names CSP and guarded commands as the constructs her
// methodology should be extended to; this package performs that extension.
// A shared resource is realized as a *server process* that owns the
// resource state outright and serves client requests received over
// synchronous channels, choosing among them with a guarded Select — the
// guarded-command alternation of CSP.
//
// Channels are rendezvous (unbuffered) and built on the kernel substrate,
// NOT on Go channels: a Go channel operation would block a simulated
// process invisibly, breaking SimKernel's determinism and deadlock
// detection. All channels of one Net share a single lock, which keeps
// multi-channel Select atomic without lock ordering concerns.
//
// Determinism: when several alternatives of a Select are ready, the one
// whose sender has been waiting longest is chosen (the same
// longest-waiting rule the other mechanisms use); plain sends and receives
// pair FIFO.
package csp

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
)

// Net is a universe of channels sharing one lock and one arrival clock.
type Net struct {
	mu    sync.Mutex
	stamp int64
}

// NewNet creates an empty channel universe.
func NewNet() *Net { return &Net{} }

// Chan is a synchronous (rendezvous) channel carrying values of any type.
type Chan struct {
	net  *Net
	name string

	senders   []*sendWaiter
	receivers []*recvWaiter
}

type sendWaiter struct {
	p     *kernel.Proc
	value any
	stamp int64
}

// selectState coordinates a receiver blocked in Select across channels.
type selectState struct {
	claimed bool
	chosen  int
	value   any
}

type recvWaiter struct {
	p       *kernel.Proc
	sel     *selectState // nil for a plain Recv
	caseIdx int
	slot    *any // plain Recv delivery target
}

// NewChan creates a channel in the net.
func (n *Net) NewChan(name string) *Chan {
	return &Chan{net: n, name: name}
}

// Name reports the channel's name.
func (c *Chan) Name() string { return c.name }

// Send delivers v to a receiver, blocking until one takes it (rendezvous).
func (c *Chan) Send(p *kernel.Proc, v any) {
	n := c.net
	n.mu.Lock()
	// Deliver to the first live receiver, skipping select-waiters already
	// claimed by another channel.
	for len(c.receivers) > 0 {
		w := c.receivers[0]
		c.receivers = c.receivers[1:]
		if w.sel != nil {
			if w.sel.claimed {
				continue // stale registration; the selector went elsewhere
			}
			w.sel.claimed = true
			w.sel.chosen = w.caseIdx
			w.sel.value = v
		} else {
			*w.slot = v
		}
		n.mu.Unlock()
		w.p.Unpark()
		return
	}
	n.stamp++
	c.senders = append(c.senders, &sendWaiter{p: p, value: v, stamp: n.stamp})
	n.mu.Unlock()
	p.Park()
}

// Recv receives a value, blocking until a sender provides one.
func (c *Chan) Recv(p *kernel.Proc) any {
	n := c.net
	n.mu.Lock()
	if len(c.senders) > 0 {
		s := c.senders[0]
		c.senders = c.senders[1:]
		n.mu.Unlock()
		s.p.Unpark()
		return s.value
	}
	var slot any
	c.receivers = append(c.receivers, &recvWaiter{p: p, slot: &slot})
	n.mu.Unlock()
	p.Park()
	return slot
}

// Pending reports the number of senders blocked on the channel; it is the
// CSP analogue of a queue-length probe. It locks the net and therefore
// must NOT be called from inside a Select guard — use PendingG there.
func (c *Chan) Pending() int {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	return len(c.senders)
}

// PendingG returns a guard-safe closure reporting the number of blocked
// senders: it reads without locking, for use inside Select guards (which
// already run under the net's lock). Readers-priority servers use it to
// express "no reader is waiting".
func (c *Chan) PendingG() func() int {
	return func() int { return len(c.senders) }
}

// Case is one guarded alternative of a Select: a receive from Chan,
// enabled when Guard() is true (a nil Guard is always enabled). Guards are
// evaluated under the net's lock; they must only read state owned by the
// selecting process (the CSP server's own resource state), never call
// channel operations.
type Case struct {
	Chan  *Chan
	Guard func() bool
}

// Select blocks until one enabled alternative can receive, then returns
// its index and the received value — Hoare's guarded alternation. If every
// guard is false, Select panics (in CSP the alternation would fail; our
// servers always keep at least one alternative enabled).
//
// When several enabled alternatives have waiting senders, the sender that
// has been blocked longest (across channels) is chosen.
func Select(p *kernel.Proc, cases []Case) (int, any) {
	if len(cases) == 0 {
		panic("csp: Select with no cases")
	}
	n := cases[0].Chan.net
	n.mu.Lock()
	enabled := 0
	best := -1
	var bestStamp int64
	for i, cs := range cases {
		if cs.Chan.net != n {
			n.mu.Unlock()
			panic("csp: Select across different Nets")
		}
		if cs.Guard != nil && !cs.Guard() {
			continue
		}
		enabled++
		if len(cs.Chan.senders) > 0 {
			st := cs.Chan.senders[0].stamp
			if best < 0 || st < bestStamp {
				best, bestStamp = i, st
			}
		}
	}
	if enabled == 0 {
		n.mu.Unlock()
		panic("csp: Select with all guards false (alternation failure)")
	}
	if best >= 0 {
		ch := cases[best].Chan
		s := ch.senders[0]
		ch.senders = ch.senders[1:]
		n.mu.Unlock()
		s.p.Unpark()
		return best, s.value
	}
	// No sender ready: register on every enabled channel and park.
	st := &selectState{}
	for i, cs := range cases {
		if cs.Guard != nil && !cs.Guard() {
			continue
		}
		cs.Chan.receivers = append(cs.Chan.receivers, &recvWaiter{p: p, sel: st, caseIdx: i})
	}
	n.mu.Unlock()
	p.Park()

	// Claimed by exactly one sender; purge stale registrations.
	n.mu.Lock()
	for _, cs := range cases {
		ws := cs.Chan.receivers[:0]
		for _, w := range cs.Chan.receivers {
			if w.sel != st {
				ws = append(ws, w)
			}
		}
		cs.Chan.receivers = ws
	}
	chosen, value := st.chosen, st.value
	n.mu.Unlock()
	return chosen, value
}

// Call is the remote-procedure idiom from Hoare's paper and Bloom's CSP
// discussion: the client sends a request carrying a private reply channel
// and blocks receiving the reply.
type Call struct {
	Arg   any
	reply *Chan
}

// Reply answers the call; the server invokes it exactly once per call.
func (c Call) Reply(p *kernel.Proc, v any) { c.reply.Send(p, v) }

// DoCall performs a call over ch with the given argument and returns the
// server's reply.
func (n *Net) DoCall(p *kernel.Proc, ch *Chan, arg any) any {
	reply := n.NewChan(ch.name + ".reply")
	ch.Send(p, Call{Arg: arg, reply: reply})
	return reply.Recv(p)
}

// String formats the channel for diagnostics.
func (c *Chan) String() string {
	return fmt.Sprintf("chan(%s)", c.name)
}
