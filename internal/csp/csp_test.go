package csp

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/kernel"
)

func TestSendRecvRendezvous(t *testing.T) {
	k := kernel.NewSim()
	n := NewNet()
	ch := n.NewChan("c")
	var got any
	k.Spawn("recv", func(p *kernel.Proc) { got = ch.Recv(p) })
	k.Spawn("send", func(p *kernel.Proc) { ch.Send(p, 42) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got = %v", got)
	}
}

func TestSendBlocksUntilReceiver(t *testing.T) {
	k := kernel.NewSim()
	n := NewNet()
	ch := n.NewChan("c")
	var order []string
	k.Spawn("send", func(p *kernel.Proc) {
		order = append(order, "sending")
		ch.Send(p, 1)
		order = append(order, "sent")
	})
	k.Spawn("recv", func(p *kernel.Proc) {
		order = append(order, "recv")
		ch.Recv(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[sending recv sent]" {
		t.Fatalf("order = %v", order)
	}
}

func TestRecvBlocksUntilSender(t *testing.T) {
	k := kernel.NewSim()
	n := NewNet()
	ch := n.NewChan("c")
	k.Spawn("recv", func(p *kernel.Proc) { ch.Recv(p) })
	if err := k.Run(); !errors.Is(err, kernel.ErrDeadlock) {
		t.Fatalf("Run = %v, want deadlock", err)
	}
}

func TestSendersPairFIFO(t *testing.T) {
	k := kernel.NewSim()
	n := NewNet()
	ch := n.NewChan("c")
	var got []any
	for i := 1; i <= 3; i++ {
		k.Spawn("send", func(p *kernel.Proc) { ch.Send(p, p.ID()) })
	}
	k.Spawn("recv", func(p *kernel.Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, ch.Recv(p))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("receive order = %v, want sender FIFO", got)
	}
}

func TestReceiversPairFIFO(t *testing.T) {
	k := kernel.NewSim()
	n := NewNet()
	ch := n.NewChan("c")
	var got []string
	for i := 0; i < 3; i++ {
		k.Spawn("recv", func(p *kernel.Proc) {
			v := ch.Recv(p)
			got = append(got, fmt.Sprintf("%d<-%v", p.ID(), v))
		})
	}
	k.Spawn("send", func(p *kernel.Proc) {
		for i := 1; i <= 3; i++ {
			ch.Send(p, i*10)
			p.Yield() // let the receiver record before the next send
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1<-10 2<-20 3<-30]" {
		t.Fatalf("pairing = %v, want receiver FIFO", got)
	}
}

func TestSelectPrefersLongestWaitingSender(t *testing.T) {
	k := kernel.NewSim()
	n := NewNet()
	a := n.NewChan("a")
	b := n.NewChan("b")
	var got []any
	k.Spawn("sendB", func(p *kernel.Proc) { b.Send(p, "b") })
	k.Spawn("sendA", func(p *kernel.Proc) { a.Send(p, "a") })
	k.Spawn("server", func(p *kernel.Proc) {
		for i := 0; i < 2; i++ {
			_, v := Select(p, []Case{{Chan: a}, {Chan: b}})
			got = append(got, v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// sendB spawned (and blocked) first, so "b" must be served first even
	// though channel a is listed first.
	if fmt.Sprint(got) != "[b a]" {
		t.Fatalf("service order = %v, want longest-waiting first", got)
	}
}

func TestSelectGuardsDisableAlternatives(t *testing.T) {
	k := kernel.NewSim()
	n := NewNet()
	a := n.NewChan("a")
	b := n.NewChan("b")
	allowA := false
	var got []any
	k.Spawn("sendA", func(p *kernel.Proc) { a.Send(p, "a") })
	k.Spawn("sendB", func(p *kernel.Proc) { p.Yield(); b.Send(p, "b") })
	k.Spawn("server", func(p *kernel.Proc) {
		for i := 0; i < 2; i++ {
			_, v := Select(p, []Case{
				{Chan: a, Guard: func() bool { return allowA }},
				{Chan: b},
			})
			got = append(got, v)
			allowA = true
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Despite "a" waiting longer, its guard is false for the first
	// selection, so "b" is served first.
	if fmt.Sprint(got) != "[b a]" {
		t.Fatalf("service order = %v", got)
	}
}

func TestSelectBlocksThenWakes(t *testing.T) {
	k := kernel.NewSim()
	n := NewNet()
	a := n.NewChan("a")
	b := n.NewChan("b")
	var got any
	var idx int
	k.Spawn("server", func(p *kernel.Proc) {
		idx, got = Select(p, []Case{{Chan: a}, {Chan: b}})
	})
	k.Spawn("send", func(p *kernel.Proc) { b.Send(p, 7) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 1 || got != 7 {
		t.Fatalf("Select = %d,%v", idx, got)
	}
}

// A parked selector claimed by one channel must not be claimable by a
// second sender on another channel; the second send pairs with the next
// receive instead.
func TestSelectClaimedOnceOnly(t *testing.T) {
	k := kernel.NewSim()
	n := NewNet()
	a := n.NewChan("a")
	b := n.NewChan("b")
	var first any
	var second any
	k.Spawn("server", func(p *kernel.Proc) {
		_, first = Select(p, []Case{{Chan: a}, {Chan: b}})
		second = a.Recv(p)
	})
	k.Spawn("sendB", func(p *kernel.Proc) { b.Send(p, "fromB") })
	k.Spawn("sendA", func(p *kernel.Proc) { a.Send(p, "fromA") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if first != "fromB" || second != "fromA" {
		t.Fatalf("first=%v second=%v", first, second)
	}
}

func TestSelectAllGuardsFalsePanics(t *testing.T) {
	k := kernel.NewSim()
	n := NewNet()
	a := n.NewChan("a")
	var recovered any
	k.Spawn("server", func(p *kernel.Proc) {
		defer func() { recovered = recover() }()
		Select(p, []Case{{Chan: a, Guard: func() bool { return false }}})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recovered == nil {
		t.Fatal("alternation failure did not panic")
	}
}

func TestSelectAcrossNetsPanics(t *testing.T) {
	k := kernel.NewSim()
	n1, n2 := NewNet(), NewNet()
	a := n1.NewChan("a")
	b := n2.NewChan("b")
	var recovered any
	k.Spawn("server", func(p *kernel.Proc) {
		defer func() { recovered = recover() }()
		Select(p, []Case{{Chan: a}, {Chan: b}})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recovered == nil {
		t.Fatal("cross-net Select did not panic")
	}
}

func TestPending(t *testing.T) {
	k := kernel.NewSim()
	n := NewNet()
	ch := n.NewChan("c")
	k.Spawn("s1", func(p *kernel.Proc) { ch.Send(p, 1) })
	k.Spawn("s2", func(p *kernel.Proc) { ch.Send(p, 2) })
	k.Spawn("check", func(p *kernel.Proc) {
		if ch.Pending() != 2 {
			t.Errorf("Pending = %d, want 2", ch.Pending())
		}
		ch.Recv(p)
		ch.Recv(p)
		if ch.Pending() != 0 {
			t.Errorf("Pending = %d, want 0", ch.Pending())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoCallRoundTrip(t *testing.T) {
	k := kernel.NewSim()
	n := NewNet()
	svc := n.NewChan("double")
	k.Spawn("server", func(p *kernel.Proc) {
		for i := 0; i < 2; i++ {
			call := svc.Recv(p).(Call)
			call.Reply(p, call.Arg.(int)*2)
		}
	})
	var r1, r2 any
	k.Spawn("client1", func(p *kernel.Proc) { r1 = n.DoCall(p, svc, 21) })
	k.Spawn("client2", func(p *kernel.Proc) { r2 = n.DoCall(p, svc, 100) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if r1 != 42 || r2 != 200 {
		t.Fatalf("replies = %v, %v", r1, r2)
	}
}

// Real kernel with -race: a CSP server serializing a counter under
// genuine parallelism.
func TestServerRealKernelStress(t *testing.T) {
	k := kernel.NewReal(kernel.WithWatchdog(30 * time.Second))
	n := NewNet()
	incr := n.NewChan("incr")
	read := n.NewChan("read")
	stop := n.NewChan("stop")
	k.Spawn("server", func(p *kernel.Proc) {
		counter := 0
		for {
			idx, v := Select(p, []Case{{Chan: incr}, {Chan: read}, {Chan: stop}})
			switch idx {
			case 0:
				counter++
			case 1:
				v.(Call).Reply(p, counter)
			case 2:
				return
			}
		}
	})
	const clients, rounds = 8, 200
	done := n.NewChan("done")
	for i := 0; i < clients; i++ {
		k.Spawn("client", func(p *kernel.Proc) {
			for j := 0; j < rounds; j++ {
				incr.Send(p, nil)
			}
			done.Send(p, nil)
		})
	}
	var final any
	k.Spawn("controller", func(p *kernel.Proc) {
		for i := 0; i < clients; i++ {
			done.Recv(p)
		}
		final = n.DoCall(p, read, nil)
		stop.Send(p, nil)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if final != clients*rounds {
		t.Fatalf("counter = %v, want %d", final, clients*rounds)
	}
}

func BenchmarkSendRecvPingPong(b *testing.B) {
	k := kernel.NewReal(kernel.WithWatchdog(0))
	n := NewNet()
	ping := n.NewChan("ping")
	pong := n.NewChan("pong")
	b.ResetTimer()
	k.Spawn("a", func(p *kernel.Proc) {
		for i := 0; i < b.N; i++ {
			ping.Send(p, i)
			pong.Recv(p)
		}
	})
	k.Spawn("b", func(p *kernel.Proc) {
		for i := 0; i < b.N; i++ {
			ping.Recv(p)
			pong.Send(p, i)
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSelectTwoChannels(b *testing.B) {
	k := kernel.NewReal(kernel.WithWatchdog(0))
	n := NewNet()
	a := n.NewChan("a")
	c := n.NewChan("c")
	b.ResetTimer()
	k.Spawn("server", func(p *kernel.Proc) {
		for i := 0; i < b.N; i++ {
			Select(p, []Case{{Chan: a}, {Chan: c}})
		}
	})
	k.Spawn("client", func(p *kernel.Proc) {
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				a.Send(p, i)
			} else {
				c.Send(p, i)
			}
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
