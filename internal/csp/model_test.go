package csp

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
)

// Model-based testing: a reference automaton of rendezvous-channel
// semantics (FIFO pairing both ways, the arriving side completing
// immediately when a counterpart waits, the parked side completing when
// next scheduled) is checked against the implementation on random
// multi-process send/recv programs under the FIFO SimKernel.

type chanOp struct {
	isSend bool
	ch     int
	val    int
}

type chanProgram [][]chanOp

// runChanReference mirrors the implementation's semantics exactly.
func runChanReference(progs chanProgram, nchans int) []string {
	n := len(progs)
	type sender struct {
		proc int
		val  int
	}
	sendQ := make([][]sender, nchans)
	recvQ := make([][]int, nchans)
	ip := make([]int, n)
	pending := make([]string, n) // completion recorded when next scheduled
	var ready []int
	var history []string
	for i := 0; i < n; i++ {
		if len(progs[i]) > 0 {
			ready = append(ready, i)
		}
	}
	steps := 0
	for len(ready) > 0 && steps < 100000 {
		steps++
		proc := ready[0]
		ready = ready[1:]
		if pending[proc] != "" {
			history = append(history, pending[proc])
			pending[proc] = ""
		}
	running:
		for ip[proc] < len(progs[proc]) {
			op := progs[proc][ip[proc]]
			ip[proc]++
			if op.isSend {
				if len(recvQ[op.ch]) > 0 {
					r := recvQ[op.ch][0]
					recvQ[op.ch] = recvQ[op.ch][1:]
					history = append(history, fmt.Sprintf("s%d.%d", proc, op.ch))
					pending[r] = fmt.Sprintf("r%d.%d=%d", r, op.ch, op.val)
					ready = append(ready, r)
				} else {
					sendQ[op.ch] = append(sendQ[op.ch], sender{proc, op.val})
					break running // parked until a receiver arrives
				}
			} else {
				if len(sendQ[op.ch]) > 0 {
					s := sendQ[op.ch][0]
					sendQ[op.ch] = sendQ[op.ch][1:]
					history = append(history, fmt.Sprintf("r%d.%d=%d", proc, op.ch, s.val))
					pending[s.proc] = fmt.Sprintf("s%d.%d", s.proc, op.ch)
					ready = append(ready, s.proc)
				} else {
					recvQ[op.ch] = append(recvQ[op.ch], proc)
					break running // parked until a sender arrives
				}
			}
		}
	}
	return history
}

// runChanImplementation executes the same programs on real channels.
func runChanImplementation(progs chanProgram, nchans int) ([]string, error) {
	k := kernel.NewSim()
	n := NewNet()
	chans := make([]*Chan, nchans)
	for i := range chans {
		chans[i] = n.NewChan(fmt.Sprintf("c%d", i))
	}
	var history []string
	for proc := range progs {
		proc := proc
		prog := progs[proc]
		k.Spawn(fmt.Sprintf("p%d", proc), func(p *kernel.Proc) {
			for _, op := range prog {
				if op.isSend {
					chans[op.ch].Send(p, op.val)
					history = append(history, fmt.Sprintf("s%d.%d", proc, op.ch))
				} else {
					v := chans[op.ch].Recv(p)
					history = append(history, fmt.Sprintf("r%d.%d=%v", proc, op.ch, v))
				}
			}
		})
	}
	err := k.Run()
	return history, err
}

// Property: reference and implementation produce identical completion
// histories on every random program (including identical deadlock
// prefixes).
func TestPropertyChannelModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nProcs := 2 + rng.Intn(3)
		nchans := 1 + rng.Intn(2)
		progs := make(chanProgram, nProcs)
		val := 0
		for i := range progs {
			for o := 0; o < 1+rng.Intn(5); o++ {
				val++
				progs[i] = append(progs[i], chanOp{
					isSend: rng.Intn(2) == 0,
					ch:     rng.Intn(nchans),
					val:    val,
				})
			}
		}
		ref := runChanReference(progs, nchans)
		impl, err := runChanImplementation(progs, nchans)
		if fmt.Sprint(ref) != fmt.Sprint(impl) {
			t.Logf("progs: %+v", progs)
			t.Logf("ref:  %v", ref)
			t.Logf("impl: %v (err %v)", impl, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
