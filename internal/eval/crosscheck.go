package eval

import (
	"fmt"
	"strings"

	"repro/internal/synclint/xcheck"
)

// CrossCheckRandomRuns and CrossCheckDFSRuns are the per-hunt
// exploration budgets of the T7 gate. They are fixed (rather than
// explore's defaults) so the table — including its run counts — is
// deterministic and can be pinned by the evalsync golden test: the
// seeded fixture confirms well inside this budget, and the budget is
// large enough that "unrealized" is meaningful evidence for a
// finding's allow reason, not an artifact of an undersized hunt.
const (
	CrossCheckRandomRuns = 60
	CrossCheckDFSRuns    = 200
)

// RunCrossCheck executes the T7 cross-validation gate: every
// lockorder/lostwakeup finding on the embedded solution sources (and
// the seeded cyclic-wait fixture) seeds a Prune+Checkpoint+Shrink hunt
// that tries to realize the hazard on its standard workload. Honors
// the ExploreWorkers/ExploreProgress knobs; the results are identical
// for any worker count.
func RunCrossCheck() ([]xcheck.Row, error) {
	return xcheck.Run(xcheck.Options{
		RandomRuns: CrossCheckRandomRuns,
		DFSRuns:    CrossCheckDFSRuns,
		Workers:    ExploreWorkers,
		Progress:   ExploreProgress,
	})
}

// RenderCrossCheck renders the T7 table.
func RenderCrossCheck(rows []xcheck.Row) string {
	var b strings.Builder
	b.WriteString("T7. Static deadlock findings cross-validated by schedule exploration\n\n")
	b.WriteString("  Every lockorder/lostwakeup finding on the embedded solutions — with allow\n")
	b.WriteString("  annotations deliberately ignored, so reasoned suppressions are re-litigated\n")
	b.WriteString("  rather than trusted — seeds a targeted exploration hunt that tries to realize\n")
	b.WriteString("  the hazard. \"confirmed\" seals a replayable schedule; \"unrealized\" after a\n")
	fmt.Fprintf(&b, "  %d-random + %d-DFS budget is evidence for the finding's allow reason.\n\n",
		CrossCheckRandomRuns, CrossCheckDFSRuns)
	fmt.Fprintf(&b, "  %-10s %-16s %-10s %-22s %-11s %s\n",
		"mechanism", "problem", "analyzer", "finding", "status", "runs")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %-16s %-10s %-22s %-11s %d\n",
			r.Mechanism, r.Problem, r.Finding.Analyzer,
			fmt.Sprintf("%s:%d", r.Finding.Pos.Filename, r.Finding.Pos.Line),
			r.Status, r.Runs)
	}
	confirmed, unrealized := 0, 0
	for _, r := range rows {
		switch r.Status {
		case "confirmed":
			confirmed++
		case "unrealized":
			unrealized++
		}
	}
	fmt.Fprintf(&b, "\n  %d finding(s): %d confirmed by exploration, %d unrealized under budget\n",
		len(rows), confirmed, unrealized)
	return b.String()
}
