package eval

import (
	"fmt"
	"strings"

	"repro/internal/explore"
	"repro/internal/problems"
	"repro/internal/solutions"
)

// DPORCoverageRow is one scenario's schedule-space coverage under the
// partial-order-reduced search: how big the space is (analytically, from
// the baseline run's happens-before order), how much of it the budget
// covered, and what the reduction did.
type DPORCoverageRow struct {
	Mechanism string
	Problem   string

	Runs            int     // schedules judged
	Exhausted       bool    // frontier emptied before the budget
	BacktrackPoints int     // persistent-set branches pushed
	DPORBlocked     int     // commuting siblings never scheduled
	SpaceLog2       float64 // log2 of the scenario's interleaving count
	Exact           bool    // exact linear-extension count vs upper bound
	Explored        float64 // covered fraction of the space
	Found           bool    // a violation was found (expected for none)
}

// dporCoverageBudget is the per-scenario exploration budget of the T8
// table: deep enough that the reduction has races to act on, small
// enough that the 36-cell sweep stays interactive.
var dporCoverageBudget = explore.Options{RandomRuns: -1, DFSRuns: 400, DFSDepth: 12}

// RunDPORCoverage measures schedule-space coverage for every T4
// mechanism × problem pairing: each standard scenario is explored with
// DPOR (plus the package-level knobs) and its deterministic coverage
// stats are tabulated. The per-run budget is fixed, so rows are
// comparable across mechanisms.
func RunDPORCoverage() ([]DPORCoverageRow, error) {
	var rows []DPORCoverageRow
	for _, suite := range solutions.All() {
		for _, problem := range problems.AllProblems() {
			strict := !(suite.Mechanism == "pathexpr" && problem == problems.NameReadersPriority)
			prog, check, err := solutions.StandardProgram(suite, problem, strict)
			if err != nil {
				return nil, fmt.Errorf("T8 %s/%s: %w", suite.Mechanism, problem, err)
			}
			opts := exploreOpts(dporCoverageBudget)
			opts.DPOR = true
			opts.Pool = true
			res := explore.Run(explore.Program(prog), check, opts)
			rows = append(rows, DPORCoverageRow{
				Mechanism:       suite.Mechanism,
				Problem:         problem,
				Runs:            res.Runs,
				Exhausted:       res.Stats.Exhausted,
				BacktrackPoints: res.Stats.BacktrackPoints,
				DPORBlocked:     res.Stats.DPORBlocked,
				SpaceLog2:       res.Stats.ScheduleSpaceLog2,
				Exact:           res.Stats.ScheduleSpaceExact,
				Explored:        res.Stats.ExploredFraction,
				Found:           res.Found,
			})
		}
	}
	return rows, nil
}

// RenderDPORCoverage renders the T8 table.
func RenderDPORCoverage(rows []DPORCoverageRow) string {
	var b strings.Builder
	b.WriteString("T8. Schedule-space coverage under partial-order reduction\n")
	b.WriteString(strings.Repeat("-", 78) + "\n")
	fmt.Fprintf(&b, "%-10s %-16s %6s %6s %8s %8s %10s %9s\n",
		"mechanism", "problem", "runs", "done", "backtrk", "blocked", "space", "explored")
	for _, r := range rows {
		space := fmt.Sprintf("2^%.1f", r.SpaceLog2)
		if !r.Exact {
			space = "≤" + space
		}
		done := ""
		if r.Exhausted {
			done = "yes"
		}
		fmt.Fprintf(&b, "%-10s %-16s %6d %6s %8d %8d %10s %9.2g\n",
			r.Mechanism, r.Problem, r.Runs, done, r.BacktrackPoints, r.DPORBlocked,
			space, r.Explored)
	}
	b.WriteString("\nspace: interleaving count from the baseline run's happens-before order\n")
	b.WriteString("(exact linear-extension count unless ≤, the chain-multinomial bound);\n")
	b.WriteString("explored: judged fraction of that space, 1 when the frontier exhausted.\n")
	return b.String()
}
