package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/problems"
	"repro/internal/solutions/monitorsol"
	"repro/internal/solutions/serializersol"
)

// ---- T2: structural analysis ----

func TestLoadSolutionFindsDecls(t *testing.T) {
	s, err := LoadSolution("monitor", problems.NameReadersPriority)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"type", "new", "Read", "Write"} {
		if _, ok := s.Decls[want]; !ok {
			t.Errorf("decl %q missing; have %v", want, declKeys(s))
		}
	}
	if s.TotalTokens() == 0 {
		t.Error("TotalTokens = 0")
	}
}

func declKeys(s *SolutionDecls) []string {
	var out []string
	for k := range s.Decls {
		out = append(out, k)
	}
	return out
}

func TestLoadSolutionAllPairs(t *testing.T) {
	for mech := range pkgDirs {
		for problem := range solutionTypes {
			if _, err := LoadSolution(mech, problem); err != nil {
				t.Errorf("%s/%s: %v", mech, problem, err)
			}
		}
	}
}

func TestLoadSolutionUnknown(t *testing.T) {
	if _, err := LoadSolution("nope", problems.NameFCFS); err == nil {
		t.Error("unknown mechanism accepted")
	}
	if _, err := LoadSolution("monitor", "nope"); err == nil {
		t.Error("unknown problem accepted")
	}
}

func TestSimilarityBounds(t *testing.T) {
	if s := Similarity("func A() { x++ }", "func A() { x++ }"); s != 1 {
		t.Fatalf("identical similarity = %v", s)
	}
	if s := Similarity("func A() { alpha() }", "func B() { beta(1,2) }"); s >= 0.9 {
		t.Fatalf("dissimilar similarity = %v", s)
	}
	// Type-name normalization: a pure rename is fully similar.
	a := "func NewReadersPriority() *ReadersPriority { return &ReadersPriority{} }"
	b := "func NewWritersPriority() *WritersPriority { return &WritersPriority{} }"
	if s := Similarity(a, b, "ReadersPriority", "WritersPriority"); s != 1 {
		t.Fatalf("renamed similarity = %v, want 1", s)
	}
}

// The paper's central T2 finding, as an inequality over measured source:
// path expressions rewrite everything between the variants, while
// monitors and serializers localize the change.
func TestIndependenceFindingsMatchPaper(t *testing.T) {
	rows, err := IndependenceTable()
	if err != nil {
		t.Fatal(err)
	}
	byMech := map[string]IndependenceRow{}
	for _, r := range rows {
		byMech[r.Mechanism] = r
	}
	pe, mon, ser := byMech["pathexpr"], byMech["monitor"], byMech["serializer"]
	if !(pe.RPvsWP < mon.RPvsWP) {
		t.Errorf("pathexpr RPvsWP (%.2f) not below monitor (%.2f)", pe.RPvsWP, mon.RPvsWP)
	}
	if !(pe.RPvsWP < ser.RPvsWP) {
		t.Errorf("pathexpr RPvsWP (%.2f) not below serializer (%.2f)", pe.RPvsWP, ser.RPvsWP)
	}
	// "The overall change can be expected to be more difficult" for the
	// readers-priority -> FCFS modification (different information type)
	// than for readers -> writers priority. This holds for monitors and
	// CSP. Serializers are the measured exception — and that is itself a
	// §5.2 finding: because a single queue carries order while guarantees
	// carry type, the FCFS variant is *structurally closer* to
	// readers-priority than the priority swap is (the queue conflict the
	// monitor needs two-stage queueing for simply dissolves).
	for _, mech := range []string{"monitor", "csp"} {
		r := byMech[mech]
		if r.RPvsFCFS > r.RPvsWP {
			t.Errorf("%s: RPvsFCFS (%.2f) > RPvsWP (%.2f)", mech, r.RPvsFCFS, r.RPvsWP)
		}
	}
	if ser.RPvsFCFS < 0.8 {
		t.Errorf("serializer RPvsFCFS = %.2f; expected the FCFS variant to stay close to readers-priority", ser.RPvsFCFS)
	}
	for _, r := range rows {
		if r.RPvsWP <= 0 || r.RPvsWP > 1 || r.RPvsFCFS <= 0 || r.RPvsFCFS > 1 {
			t.Errorf("%s: similarity out of range: %+v", r.Mechanism, r)
		}
	}
}

func TestComparePairDetail(t *testing.T) {
	rep, err := ComparePair("monitor", problems.NameReadersPriority, problems.NameWritersPriority)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diffs) == 0 {
		t.Fatal("no per-decl diffs")
	}
	if rep.Overall <= 0 || rep.Overall > 1 {
		t.Fatalf("overall = %v", rep.Overall)
	}
	out := RenderPairDetail(rep)
	if !strings.Contains(out, "Read") || !strings.Contains(out, "Write") {
		t.Fatalf("detail rendering missing methods:\n%s", out)
	}
}

// ---- T1: expressive power ----

func TestExpressivePowerMatrixComplete(t *testing.T) {
	matrix := ExpressivePower()
	for _, m := range core.Mechanisms() {
		ratings, ok := matrix[m.Name]
		if !ok {
			t.Fatalf("no ratings for %s", m.Name)
		}
		for _, it := range core.AllInfoTypes() {
			r, ok := ratings[it]
			if !ok {
				t.Errorf("%s missing rating for %v", m.Name, it)
				continue
			}
			if r.Rationale == "" {
				t.Errorf("%s/%v has no rationale", m.Name, it)
			}
		}
	}
}

// The paper's §5.1 path-expression findings, pinned.
func TestExpressivePowerMatchesPaperPathExpr(t *testing.T) {
	pe := ExpressivePower()["pathexpr"]
	if pe[core.RequestParams].Support != core.Unsupported {
		t.Error("pathexpr request-params should be unsupported (no way to use parameter values in paths)")
	}
	if pe[core.LocalState].Support != core.Unsupported {
		t.Error("pathexpr local-state should be unsupported")
	}
	if pe[core.RequestType].Support != core.Direct {
		t.Error("pathexpr request-type should be direct")
	}
	if pe[core.History].Support != core.Direct {
		t.Error("pathexpr history should be direct")
	}
}

// The paper's §5.2 findings for monitors and serializers, pinned.
func TestExpressivePowerMatchesPaperMonitorSerializer(t *testing.T) {
	mon := ExpressivePower()["monitor"]
	if mon[core.SyncState].Support != core.Indirect {
		t.Error("monitor sync-state should be indirect (explicitly kept by the user)")
	}
	if mon[core.RequestParams].Support != core.Direct {
		t.Error("monitor request-params should be direct (priority queues)")
	}
	ser := ExpressivePower()["serializer"]
	if ser[core.SyncState].Support != core.Direct {
		t.Error("serializer sync-state should be direct (crowds)")
	}
}

func TestExpressivePowerMatrixVerified(t *testing.T) {
	for _, v := range VerifyPower() {
		if !v.OK() {
			t.Errorf("inconsistent cell: %+v", v)
		}
	}
}

// ---- T3: modularity ----

func TestNestedMonitorDeadlockAndStructuredAvoidance(t *testing.T) {
	out := RunNestedMonitorExperiment()
	if !out.NaiveDeadlocks {
		t.Errorf("naive nesting did not deadlock: %v", out.NaiveErr)
	}
	if !out.StructuredCompletes {
		t.Errorf("structured form failed: %v", out.StructuredErr)
	}
}

func TestCrowdConcurrency(t *testing.T) {
	out := RunCrowdConcurrencyExperiment()
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if !out.OverlapObserved {
		t.Fatal("crowd did not release possession during resource access")
	}
}

func TestModularityTableComplete(t *testing.T) {
	rows := ModularityTable()
	if len(rows) != len(core.Mechanisms()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(core.Mechanisms()))
	}
	for _, r := range rows {
		if _, ok := core.MechanismByName(r.Mechanism); !ok {
			t.Errorf("unknown mechanism %q", r.Mechanism)
		}
		if r.Notes == "" {
			t.Errorf("%s: empty notes", r.Mechanism)
		}
	}
}

// ---- F1 / F2 ----

func TestFigure1AnomalyReproduced(t *testing.T) {
	res := RunFigure1()
	if !res.AnomalyFound {
		t.Fatalf("footnote-3 anomaly not reproduced in %d runs", res.Runs)
	}
	if len(res.Violations) == 0 {
		t.Fatal("no violations recorded")
	}
	for _, v := range res.Violations {
		if v.Rule != "readers-priority" {
			t.Errorf("unexpected rule %q", v.Rule)
		}
	}
}

func TestFigure2WritersPriorityHolds(t *testing.T) {
	res := RunFigure2()
	if !res.WritersPriorityHolds {
		t.Fatal("Figure 2 violated writers-priority")
	}
	if !res.ReadersPriorityViolated {
		t.Fatal("Figure 2 unexpectedly satisfies readers-priority; the variants would not differ")
	}
}

// The paper's contrast: the same scenario finds no anomaly in the monitor
// and serializer readers-priority solutions.
func TestFigureScenarioCleanOnMonitorAndSerializer(t *testing.T) {
	if anomaly, runs := MechanismFigureCheck(func() problems.RWStore {
		return monitorsol.NewReadersPriority()
	}); anomaly {
		t.Errorf("monitor solution showed the anomaly (%d runs)", runs)
	}
	if anomaly, runs := MechanismFigureCheck(func() problems.RWStore {
		return serializersol.NewReadersPriority()
	}); anomaly {
		t.Errorf("serializer solution showed the anomaly (%d runs)", runs)
	}
}

// ---- report rendering ----

func TestRenderings(t *testing.T) {
	if out := RenderPowerMatrix(); !strings.Contains(out, "pathexpr") || !strings.Contains(out, "direct") {
		t.Errorf("power matrix rendering:\n%s", out)
	}
	if out := RenderPowerRationales(); !strings.Contains(out, "crowds") {
		t.Errorf("rationales rendering:\n%s", out)
	}
	rows, err := IndependenceTable()
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderIndependence(rows); !strings.Contains(out, "T2.") {
		t.Errorf("independence rendering:\n%s", out)
	}
	if out := RenderCoverage(); !strings.Contains(out, "6 of 6") {
		t.Errorf("coverage rendering:\n%s", out)
	}
	nested := RunNestedMonitorExperiment()
	crowd := RunCrowdConcurrencyExperiment()
	if out := RenderModularity(nested, crowd); !strings.Contains(out, "deadlocks = true") {
		t.Errorf("modularity rendering:\n%s", out)
	}
	vs := VerifyPower()
	if out := RenderVerification(vs); !strings.Contains(out, "0 inconsistent") {
		t.Errorf("verification rendering:\n%s", out)
	}
}

func BenchmarkIndependenceTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := IndependenceTable(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		VerifyPower()
	}
}

// ---- E1: mechanism evolution ----

func TestEvolutionNumericOperatorFixesBoundedBuffer(t *testing.T) {
	res := RunEvolution()
	if !res.OK() {
		t.Fatalf("E1 failed: %+v", res)
	}
	if len(res.Paths) != 2 {
		t.Fatalf("extended solution paths = %v", res.Paths)
	}
	out := RenderEvolution(res)
	if !strings.Contains(out, "pure paths") {
		t.Fatalf("rendering:\n%s", out)
	}
}

func TestLoadNamedSolution(t *testing.T) {
	s, err := LoadNamedSolution("pathexpr", "BoundedBufferNumeric")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Decls["Deposit"]; !ok {
		t.Fatalf("Deposit missing; have %v", declKeys(s))
	}
	if _, err := LoadNamedSolution("pathexpr", "NoSuchType"); err == nil {
		t.Fatal("phantom type loaded")
	}
}

// ---- E2: starvation profiles ----

func TestStarvationProfilesMatchSpecs(t *testing.T) {
	rows := RunStarvation()
	if len(rows) != 6*2*2 {
		t.Fatalf("rows = %d, want 24", len(rows))
	}
	for _, r := range rows {
		if r.Err != nil {
			t.Errorf("%s/%s/%s: %v", r.Mechanism, r.Variant, r.Storm, r.Err)
			continue
		}
		expect := ExpectedStarved(r.Variant, r.Storm)
		if r.Starved != expect {
			t.Errorf("%s/%s storm=%s: starved=%v, spec admits %v (victim after %d/%d)",
				r.Mechanism, r.Variant, r.Storm, r.Starved, expect, r.VictimWaited, r.StormTotal)
		}
	}
	out := RenderStarvation(rows)
	if !strings.Contains(out, "E2.") {
		t.Fatalf("rendering:\n%s", out)
	}
}

// ---- solution sizes ----

func TestSizeTable(t *testing.T) {
	rows, err := SizeTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 {
			t.Errorf("%s: total = %d", r.Mechanism, r.Total)
		}
		for p, n := range r.Tokens {
			if n <= 0 {
				t.Errorf("%s/%s: tokens = %d", r.Mechanism, p, n)
			}
		}
	}
	out := RenderSizes(rows)
	if !strings.Contains(out, "total") || !strings.Contains(out, "monitor") {
		t.Fatalf("rendering:\n%s", out)
	}
}

// ---- B2: queueing fairness ----

func TestFairnessTable(t *testing.T) {
	rows := RunFairness()
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Err != nil {
			t.Errorf("%s/%s: %v", r.Mechanism, r.Variant, r.Err)
			continue
		}
		if r.MaxRdConc < 2 {
			t.Errorf("%s/%s: max read concurrency = %d, want >= 2", r.Mechanism, r.Variant, r.MaxRdConc)
		}
		if r.Variant == problems.NameReadersPriority && r.WriteAvgQ < r.ReadAvgQ {
			t.Errorf("%s/%s: write delay (%.1f) below read delay (%.1f) under readers priority",
				r.Mechanism, r.Variant, r.WriteAvgQ, r.ReadAvgQ)
		}
	}
	if out := RenderFairness(rows); !strings.Contains(out, "B2.") {
		t.Fatalf("rendering:\n%s", out)
	}
}
