package eval

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions/pathexprsol"
	"repro/internal/trace"
)

// Experiment E1 — mechanism evolution. Bloom closes §5.1 by noting that
// the weaknesses her method reveals "correspond to some extent with
// those found in other evaluations": later path-expression versions added
// exactly the missing constructs, among them the Flon–Habermann numeric
// operator for synchronization-state and history information. We
// implement that operator (pathexpr's "path n : e end") and show the
// prediction holds: the 1974-dialect bounded buffer needs synchronization
// procedures (auxiliary semaphores — the T1 "unsupported" escape
// witness), while the extended-dialect solution is pure paths and passes
// the same oracle.

// EvolutionResult is the E1 outcome.
type EvolutionResult struct {
	// Dialect1974Passes / ExtendedPasses: both solutions satisfy the
	// bounded-buffer oracle under the standard workload.
	Dialect1974Passes bool
	ExtendedPasses    bool
	// Dialect1974Escapes: the 1974 solution references machinery outside
	// the mechanism (auxiliary semaphores).
	Dialect1974Escapes bool
	// ExtendedEscapes must be false: the numeric operator removes the
	// need for synchronization procedures.
	ExtendedEscapes bool
	// Paths are the extended solution's path declarations, for the report.
	Paths []string
	Err   error
}

// OK reports whether the experiment confirms the paper's prediction.
func (r EvolutionResult) OK() bool {
	return r.Err == nil && r.Dialect1974Passes && r.ExtendedPasses &&
		r.Dialect1974Escapes && !r.ExtendedEscapes
}

// runBB drives one bounded-buffer implementation through the standard
// workload on the deterministic kernel and judges it.
func runBB(bb problems.BoundedBuffer, capacity int) (bool, error) {
	k := kernel.NewSim()
	r := trace.NewRecorder(k)
	cfg := problems.BBConfig{Producers: 3, Consumers: 2, ItemsPerProducer: 10, WorkYields: 2}
	if err := problems.DriveBoundedBuffer(k, bb, r, cfg); err != nil {
		return false, err
	}
	vs := problems.CheckBoundedBuffer(r.Events(), capacity, cfg.TotalItems())
	return len(vs) == 0, nil
}

// RunEvolution executes E1.
func RunEvolution() EvolutionResult {
	const capacity = 4
	var res EvolutionResult

	ok, err := runBB(pathexprsol.NewBoundedBuffer(capacity), capacity)
	if err != nil {
		res.Err = fmt.Errorf("1974 dialect: %w", err)
		return res
	}
	res.Dialect1974Passes = ok

	ext := pathexprsol.NewBoundedBufferNumeric(capacity)
	ok, err = runBB(ext, capacity)
	if err != nil {
		res.Err = fmt.Errorf("extended dialect: %w", err)
		return res
	}
	res.ExtendedPasses = ok
	res.Paths = ext.Paths()

	res.Dialect1974Escapes = declsReferenceSemaphores("pathexpr", "BoundedBuffer")
	res.ExtendedEscapes = declsReferenceSemaphores("pathexpr", "BoundedBufferNumeric")
	return res
}

// declsReferenceSemaphores is the structural escape witness for an
// arbitrary solution type (generalizing solutionUsesEscape).
func declsReferenceSemaphores(mechanism, typeName string) bool {
	decls, err := LoadNamedSolution(mechanism, typeName)
	if err != nil {
		return false
	}
	for _, src := range decls.Decls {
		if strings.Contains(src, "semaphore.") {
			return true
		}
	}
	return false
}

// RenderEvolution renders experiment E1.
func RenderEvolution(res EvolutionResult) string {
	var b strings.Builder
	b.WriteString("E1. Mechanism evolution (§5.1): the numeric operator fixes the predicted weakness\n\n")
	if res.Err != nil {
		fmt.Fprintf(&b, "  experiment failed: %v\n", res.Err)
		return b.String()
	}
	b.WriteString("  bounded buffer, 1974 dialect:     passes oracle = ")
	fmt.Fprintf(&b, "%v, uses synchronization procedures = %v\n", res.Dialect1974Passes, res.Dialect1974Escapes)
	b.WriteString("  bounded buffer, numeric operator: passes oracle = ")
	fmt.Fprintf(&b, "%v, uses synchronization procedures = %v\n", res.ExtendedPasses, res.ExtendedEscapes)
	b.WriteString("\n  the extended solution is pure paths:\n")
	for _, p := range res.Paths {
		fmt.Fprintf(&b, "    %s\n", p)
	}
	b.WriteString("\n  The T1 'unsupported' cells predicted exactly what the later dialect had to add —\n")
	b.WriteString("  the paper's claim that the method anticipates the designers' own corrections.\n")
	return b.String()
}
