package eval

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
)

// Experiment B2 (ours) — queueing behavior under the standard
// readers–writers workload. The paper's priority constraints are about
// who gets in first; this table shows what the same decisions cost in
// queueing delay: readers-priority solutions keep reader delay low and
// writer delay high, writers-priority the reverse. Delays are event-count
// distances on deterministic traces (see trace.OpStats), so the table is
// exactly reproducible.

// FairnessRow summarizes one (mechanism, variant) run.
type FairnessRow struct {
	Mechanism string
	Variant   string
	ReadAvgQ  float64
	WriteAvgQ float64
	MaxRdConc int
	Err       error
}

// RunFairness executes B2 over all mechanisms and both priority variants.
func RunFairness() []FairnessRow {
	var out []FairnessRow
	for _, s := range solutions.All() {
		for _, variant := range []string{problems.NameReadersPriority, problems.NameWritersPriority} {
			row := FairnessRow{Mechanism: s.Mechanism, Variant: variant}
			k := kernel.NewSim()
			tr, _, err := solutions.RunStandard(k, s, variant, false)
			if err != nil {
				row.Err = err
				out = append(out, row)
				continue
			}
			stats, err := tr.Stats()
			if err != nil {
				row.Err = err
				out = append(out, row)
				continue
			}
			for _, st := range stats {
				switch st.Op {
				case problems.OpRead:
					row.ReadAvgQ = st.AvgQueue
					row.MaxRdConc = st.MaxConcurrent
				case problems.OpWrite:
					row.WriteAvgQ = st.AvgQueue
				}
			}
			out = append(out, row)
		}
	}
	return out
}

// RenderFairness renders experiment B2.
func RenderFairness(rows []FairnessRow) string {
	var b strings.Builder
	b.WriteString("B2. Queueing under the standard readers–writers workload (event-count delays)\n\n")
	fmt.Fprintf(&b, "  %-12s %-18s %10s %10s %10s\n", "", "variant", "read avgQ", "write avgQ", "max rd conc")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "  %-12s %-18s ERROR: %v\n", r.Mechanism, r.Variant, r.Err)
			continue
		}
		fmt.Fprintf(&b, "  %-12s %-18s %10.1f %10.1f %10d\n",
			r.Mechanism, r.Variant, r.ReadAvgQ, r.WriteAvgQ, r.MaxRdConc)
	}
	b.WriteString("\n  Expected shape: readers-priority keeps read delay below write delay;\n")
	b.WriteString("  writers-priority narrows or inverts the gap. Both variants overlap reads.\n")
	return b.String()
}
