package eval

import (
	"repro/internal/explore"
	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions/pathexprsol"
	"repro/internal/trace"
)

// Experiment F1: the paper's Figure 1 — the published path-expression
// readers-priority solution — and its footnote-3 anomaly: "If a write is
// in progress, and another WRITE starts, the second writer can start
// writeattempt and requestwrite, and become blocked at the third path. If
// a reader enters before the end of the first write, it will be blocked
// at entry to the second path by the requestwrite in progress. The second
// writer will therefore gain access to the resource before the reader,
// though readers should have priority."
//
// Experiment F2: Figure 2, the writers-priority counterpart, which under
// the same arrival pattern must admit the second writer before the reader
// — the behavior that is *wrong* for F1 is *required* for F2.

// ExploreWorkers is the worker count handed to every anomaly search in
// this package (explore.Options.Workers): 0 uses all cores. Exploration
// results are identical for every value — parallelism only speculates
// ahead of the canonical search order — so this is purely a throughput
// knob, settable from the evalsync -workers flag.
var ExploreWorkers int

// ExplorePool recycles kernels and recorders across exploration runs
// (explore.Options.Pool). Like ExploreWorkers it is a pure throughput
// knob — results are identical either way — settable from the evalsync
// -pool flag.
var ExplorePool bool

// ExplorePrune enables fingerprint pruning in every anomaly search
// (explore.Options.Prune), settable from the evalsync -prune flag.
// Pruning reaches findings in fewer runs, so reported run counts shrink;
// the default report (and its golden pin) keeps it off.
var ExplorePrune bool

// ExploreShrink minimizes every finding's schedule by delta debugging
// (explore.Options.Shrink), settable from the evalsync -shrink flag.
// Shrinking changes nothing about how findings are reached — only
// MinSchedule/ShrinkRuns are added to the outcome.
var ExploreShrink bool

// ExploreCheckpoint enables checkpointed DFS in every anomaly search
// (explore.Options.Checkpoint): sibling schedules fork from kernel
// snapshots at their branch point instead of replaying the shared
// prefix from the root. Settable from the evalsync -checkpoint flag.
// Results are byte-identical either way, apart from the checkpoint
// counters in Result.Stats.
var ExploreCheckpoint bool

// ExploreDPOR enables dynamic partial-order reduction in every anomaly
// search (explore.Options.DPOR): the DFS backtracks only where the
// happens-before analysis of completed runs demands it, and Result.Stats
// gains the schedule-space coverage fields. Settable from the evalsync
// -dpor flag. Like pruning it changes reported run counts, so the
// default report keeps it off.
var ExploreDPOR bool

// ExploreDPORAudit runs every anomaly search twice — reduced and fully
// unreduced at the same budget — and fails the search if the reduction
// missed any violation rule (explore.Options.DPORAudit; implies
// ExploreDPOR). Settable from the evalsync -dpor-audit flag.
var ExploreDPORAudit bool

// ExploreProgress, when non-nil, receives live progress snapshots from
// every anomaly search (explore.Options.Progress), settable from the
// evalsync -progress flag. Observes only; results are unchanged.
var ExploreProgress func(explore.Stats)

// exploreOpts applies the package-level exploration knobs to base.
func exploreOpts(base explore.Options) explore.Options {
	base.Workers = ExploreWorkers
	base.Pool = ExplorePool
	base.Prune = ExplorePrune
	base.Shrink = ExploreShrink
	base.Checkpoint = ExploreCheckpoint
	base.DPOR = ExploreDPOR
	base.DPORAudit = ExploreDPORAudit
	base.Progress = ExploreProgress
	return base
}

// FigureScenario spawns the footnote-3 arrival pattern against db: a
// first writer holds the resource while one reader and then a second
// writer arrive.
func FigureScenario(db problems.RWStore) explore.Program {
	return func(k kernel.Kernel, r *trace.Recorder) {
		k.Spawn("writer1", func(p *kernel.Proc) {
			r.Request(p, problems.OpWrite, trace.NoArg)
			db.Write(p, func() {
				r.Enter(p, problems.OpWrite, trace.NoArg)
				for i := 0; i < 6; i++ {
					p.Yield()
				}
				r.Exit(p, problems.OpWrite, trace.NoArg)
			})
		})
		k.Spawn("reader", func(p *kernel.Proc) {
			p.Yield()
			r.Request(p, problems.OpRead, trace.NoArg)
			db.Read(p, func() {
				r.Enter(p, problems.OpRead, trace.NoArg)
				p.Yield()
				r.Exit(p, problems.OpRead, trace.NoArg)
			})
		})
		k.Spawn("writer2", func(p *kernel.Proc) {
			p.Yield()
			p.Yield()
			r.Request(p, problems.OpWrite, trace.NoArg)
			db.Write(p, func() {
				r.Enter(p, problems.OpWrite, trace.NoArg)
				p.Yield()
				r.Exit(p, problems.OpWrite, trace.NoArg)
			})
		})
	}
}

// Figure1Result is the F1 experiment outcome.
type Figure1Result struct {
	// AnomalyFound: schedule exploration exhibited a readers-priority
	// violation in the Figure-1 solution, confirming footnote 3.
	AnomalyFound bool
	// Schedule replays the anomaly.
	Schedule []kernel.Choice
	// Trace is the violating history.
	Trace trace.Trace
	// Violations are the oracle findings.
	Violations []problems.Violation
	Runs       int
	// MinSchedule is the shrunk anomaly schedule (ExploreShrink); nil when
	// shrinking was off.
	MinSchedule []kernel.Choice
	// ShrinkRuns counts the shrinker's replays (not included in Runs).
	ShrinkRuns int
}

// RunFigure1 searches for the footnote-3 anomaly in the Figure-1
// solution.
func RunFigure1() Figure1Result {
	prog := explore.Program(func(k kernel.Kernel, r *trace.Recorder) {
		FigureScenario(pathexprsol.NewReadersPriority())(k, r)
	})
	res := explore.Run(prog, problems.CheckReadersPriority,
		exploreOpts(explore.Options{RandomRuns: 300, DFSRuns: 600}))
	return Figure1Result{
		AnomalyFound: res.Found && res.Err == nil,
		Schedule:     res.Schedule,
		Trace:        res.Trace,
		Violations:   res.Violations,
		Runs:         res.Runs,
		MinSchedule:  res.MinSchedule,
		ShrinkRuns:   res.ShrinkRuns,
	}
}

// SaveFigure1Sched seals the F1 finding as a replayable schedule artifact
// and writes it to path. The shrunk schedule is preferred when available.
func SaveFigure1Sched(res Figure1Result, path string) error {
	schedule := res.Schedule
	if res.MinSchedule != nil {
		schedule = res.MinSchedule
	}
	prog := explore.Program(func(k kernel.Kernel, r *trace.Recorder) {
		FigureScenario(pathexprsol.NewReadersPriority())(k, r)
	})
	f := explore.NewSchedFile("pathexpr", problems.NameReadersPriority, "figure", schedule)
	f.Note = "footnote-3 readers-priority anomaly found by evalsync F1"
	if err := f.Seal(prog, problems.CheckReadersPriority); err != nil {
		return err
	}
	return f.WriteFile(path)
}

// Figure2Result is the F2 experiment outcome.
type Figure2Result struct {
	// WritersPriorityHolds: exploration found no writers-priority
	// violation in the Figure-2 solution.
	WritersPriorityHolds bool
	// ReadersPriorityViolated: the same solution violates the
	// readers-priority oracle (it implements the opposite constraint) —
	// evidence the two figures genuinely differ in their priority
	// constraint while sharing the exclusion constraint.
	ReadersPriorityViolated bool
	Runs                    int
}

// RunFigure2 checks the Figure-2 solution both ways.
func RunFigure2() Figure2Result {
	prog := explore.Program(func(k kernel.Kernel, r *trace.Recorder) {
		FigureScenario(pathexprsol.NewWritersPriority())(k, r)
	})
	hold := explore.Run(prog, problems.CheckWritersPriority,
		exploreOpts(explore.Options{RandomRuns: 200, DFSRuns: 400}))
	inverse := explore.Run(prog, problems.CheckReadersPriority,
		exploreOpts(explore.Options{RandomRuns: 200, DFSRuns: 400}))
	return Figure2Result{
		WritersPriorityHolds:    !hold.Found,
		ReadersPriorityViolated: inverse.Found && inverse.Err == nil,
		Runs:                    hold.Runs + inverse.Runs,
	}
}

// MechanismFigureCheck runs the F1 scenario against another mechanism's
// readers-priority solution and reports whether the anomaly exists there
// (for the paper's monitor/serializer contrast, it must not).
func MechanismFigureCheck(db func() problems.RWStore) (anomaly bool, runs int) {
	prog := explore.Program(func(k kernel.Kernel, r *trace.Recorder) {
		FigureScenario(db())(k, r)
	})
	res := explore.Run(prog, problems.CheckReadersPriority,
		exploreOpts(explore.Options{RandomRuns: 200, DFSRuns: 400}))
	return res.Found, res.Runs
}
