// Package eval implements the paper's evaluation methodology: the
// expressive-power matrix over the six information types (§4.1), the
// constraint-independence analysis over problem variants (§4.2), the
// modularity criteria (§2), and executable reproductions of the paper's
// Figure 1/Figure 2 analysis including the footnote-3 anomaly.
package eval

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/scanner"
	"go/token"
	"sort"
	"strings"

	"repro/internal/problems"
	"repro/internal/solutions"
)

// The constraint-independence criterion (§4.2): two problems that share a
// constraint should have solutions whose implementation of that
// constraint is identical; modifying the other constraint should leave it
// untouched. We mechanize the comparison Bloom performs by eye: pull each
// variant solution's declarations out of the (embedded) package source,
// canonicalize, and measure token-level similarity between corresponding
// methods. High similarity between readers-priority and writers-priority
// solutions means the changed priority constraint was localized; low
// similarity means the change rewrote the shared exclusion constraint too
// — the paper's verdict on path expressions.

// solutionTypes maps problem names to the solution type implementing them
// in every mechanism package (a deliberate cross-package naming
// convention, asserted by tests).
var solutionTypes = map[string]string{
	problems.NameBoundedBuffer:   "BoundedBuffer",
	problems.NameFCFS:            "FCFS",
	problems.NameReadersPriority: "ReadersPriority",
	problems.NameWritersPriority: "WritersPriority",
	problems.NameFCFSRW:          "FCFSRW",
	problems.NameDisk:            "Disk",
	problems.NameAlarmClock:      "AlarmClock",
	problems.NameOneSlot:         "OneSlot",
}

// pkgDirs maps mechanism keys to their solution package directories in
// the embedded source tree.
var pkgDirs = map[string]string{
	"semaphore":  "semsol",
	"ccr":        "ccrsol",
	"pathexpr":   "pathexprsol",
	"monitor":    "monitorsol",
	"serializer": "serializersol",
	"csp":        "cspsol",
}

// SolutionDecls is the extracted source of one solution: its type
// declaration, constructor, and methods, canonically printed.
type SolutionDecls struct {
	Mechanism string
	Problem   string
	TypeName  string
	// Decls maps a stable key ("type", "new", method names) to the
	// canonicalized source text of that declaration.
	Decls map[string]string
}

// TotalTokens reports the token count across all declarations — the
// solution-size metric used in reports.
func (s *SolutionDecls) TotalTokens() int {
	n := 0
	for _, src := range s.Decls {
		n += len(tokenize(src))
	}
	return n
}

// LoadSolution extracts the declarations implementing problem in the
// given mechanism's package from the embedded sources.
func LoadSolution(mechanism, problem string) (*SolutionDecls, error) {
	typeName, ok := solutionTypes[problem]
	if !ok {
		return nil, fmt.Errorf("eval: unknown problem %q", problem)
	}
	s, err := LoadNamedSolution(mechanism, typeName)
	if err != nil {
		return nil, err
	}
	s.Problem = problem
	return s, nil
}

// LoadNamedSolution extracts the declarations of an arbitrary solution
// type in the mechanism's package (used by E1 for the extended-dialect
// solutions, which have no problem-registry entry).
func LoadNamedSolution(mechanism, typeName string) (*SolutionDecls, error) {
	dir, ok := pkgDirs[mechanism]
	if !ok {
		return nil, fmt.Errorf("eval: unknown mechanism %q", mechanism)
	}
	fset := token.NewFileSet()
	entries, err := solutions.Sources.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("eval: reading %s: %w", dir, err)
	}
	out := &SolutionDecls{
		Mechanism: mechanism,
		TypeName:  typeName,
		Decls:     map[string]string{},
	}
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		src, err := solutions.Sources.ReadFile(dir + "/" + e.Name())
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(fset, e.Name(), src, 0)
		if err != nil {
			return nil, fmt.Errorf("eval: parsing %s: %w", e.Name(), err)
		}
		collectDecls(fset, file, typeName, out.Decls)
	}
	if len(out.Decls) == 0 {
		return nil, fmt.Errorf("eval: no declarations for %s in %s", typeName, dir)
	}
	return out, nil
}

// collectDecls walks a file for the type named typeName, its constructor
// New<typeName>, and its methods.
func collectDecls(fset *token.FileSet, file *ast.File, typeName string, into map[string]string) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != typeName {
					continue
				}
				into["type"] = printDecl(fset, d)
			}
		case *ast.FuncDecl:
			if d.Recv == nil {
				if d.Name.Name == "New"+typeName {
					into["new"] = printDecl(fset, d)
				}
				continue
			}
			if recvTypeName(d.Recv) == typeName {
				into[d.Name.Name] = printDecl(fset, d)
			}
		}
	}
}

func recvTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func printDecl(fset *token.FileSet, d ast.Decl) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, d); err != nil {
		return ""
	}
	return buf.String()
}

// tokenize splits canonicalized Go source into semantic tokens, dropping
// comments.
func tokenize(src string) []string {
	var s scanner.Scanner
	fset := token.NewFileSet()
	f := fset.AddFile("frag.go", fset.Base(), len(src))
	s.Init(f, []byte(src), nil, 0)
	var out []string
	for {
		_, tok, lit := s.Scan()
		if tok == token.EOF {
			break
		}
		if tok == token.COMMENT || tok == token.SEMICOLON {
			continue
		}
		if lit != "" {
			out = append(out, lit)
		} else {
			out = append(out, tok.String())
		}
	}
	return out
}

// normalize replaces occurrences of the solutions' own type names with a
// placeholder so that the diff measures structure, not the unavoidable
// rename between ReadersPriority and WritersPriority.
func normalize(tokens []string, typeNames ...string) []string {
	names := map[string]bool{}
	for _, t := range typeNames {
		names[t] = true
		names["New"+t] = true
	}
	out := make([]string, len(tokens))
	for i, t := range tokens {
		if names[t] {
			out[i] = "θ"
		} else {
			out[i] = t
		}
	}
	return out
}

// lcsLen computes the longest-common-subsequence length of two token
// slices (O(len(a)*len(b)), fine at solution scale).
func lcsLen(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Similarity is the token-level resemblance of two declarations:
// 2·LCS/(|a|+|b|), 1.0 for identical text, 0.0 for nothing in common.
func Similarity(aSrc, bSrc string, typeNames ...string) float64 {
	a := normalize(tokenize(aSrc), typeNames...)
	b := normalize(tokenize(bSrc), typeNames...)
	if len(a)+len(b) == 0 {
		return 1
	}
	return 2 * float64(lcsLen(a, b)) / float64(len(a)+len(b))
}

// DeclDiff is the similarity of one corresponding declaration pair.
type DeclDiff struct {
	Name       string
	Similarity float64 // -1 when the declaration exists on one side only
}

// PairReport is the independence comparison of one mechanism's solutions
// to two problems.
type PairReport struct {
	Mechanism string
	ProblemA  string
	ProblemB  string
	Diffs     []DeclDiff
	// Overall is the token-weighted similarity across all corresponding
	// declarations (one-sided declarations count as similarity 0 with
	// their own weight).
	Overall float64
}

// ComparePair loads both solutions and measures their similarity.
func ComparePair(mechanism, problemA, problemB string) (PairReport, error) {
	a, err := LoadSolution(mechanism, problemA)
	if err != nil {
		return PairReport{}, err
	}
	b, err := LoadSolution(mechanism, problemB)
	if err != nil {
		return PairReport{}, err
	}
	rep := PairReport{Mechanism: mechanism, ProblemA: problemA, ProblemB: problemB}

	keys := map[string]bool{}
	for k := range a.Decls {
		keys[k] = true
	}
	for k := range b.Decls {
		keys[k] = true
	}
	var sorted []string
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	totalWeight := 0
	weightedSim := 0.0
	for _, k := range sorted {
		sa, oka := a.Decls[k]
		sb, okb := b.Decls[k]
		switch {
		case oka && okb:
			sim := Similarity(sa, sb, a.TypeName, b.TypeName)
			w := len(tokenize(sa)) + len(tokenize(sb))
			totalWeight += w
			weightedSim += sim * float64(w)
			rep.Diffs = append(rep.Diffs, DeclDiff{Name: k, Similarity: sim})
		case oka:
			w := len(tokenize(sa))
			totalWeight += w
			rep.Diffs = append(rep.Diffs, DeclDiff{Name: k, Similarity: -1})
		default:
			w := len(tokenize(sb))
			totalWeight += w
			rep.Diffs = append(rep.Diffs, DeclDiff{Name: k, Similarity: -1})
		}
	}
	if totalWeight > 0 {
		rep.Overall = weightedSim / float64(totalWeight)
	}
	return rep, nil
}

// IndependenceRow is one mechanism's line in the T2 table.
type IndependenceRow struct {
	Mechanism string
	// RPvsWP is the similarity of the readers-priority and
	// writers-priority solutions (same information types, different
	// priority constraint).
	RPvsWP float64
	// RPvsFCFS is the similarity against the FCFS variant (the priority
	// constraint changes information type).
	RPvsFCFS float64
}

// IndependenceTable computes the T2 table across all mechanisms.
func IndependenceTable() ([]IndependenceRow, error) {
	var out []IndependenceRow
	for _, s := range solutions.All() {
		rpwp, err := ComparePair(s.Mechanism, problems.NameReadersPriority, problems.NameWritersPriority)
		if err != nil {
			return nil, err
		}
		rpff, err := ComparePair(s.Mechanism, problems.NameReadersPriority, problems.NameFCFSRW)
		if err != nil {
			return nil, err
		}
		out = append(out, IndependenceRow{
			Mechanism: s.Mechanism,
			RPvsWP:    rpwp.Overall,
			RPvsFCFS:  rpff.Overall,
		})
	}
	return out, nil
}
