package eval

import (
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	if got := tokenize(""); len(got) != 0 {
		t.Errorf("empty source should yield no tokens, got %v", got)
	}
	if got := tokenize("x"); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("single-token source: got %v", got)
	}
	// Comments and the scanner's inserted semicolons are dropped;
	// identifiers, keywords, literals, and operators survive.
	got := tokenize("x := 1 // count\n")
	want := []string{"x", ":=", "1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tokenize: got %v, want %v", got, want)
	}
}

func TestNormalize(t *testing.T) {
	got := normalize([]string{"ReadersPriority", "NewReadersPriority", "rc"}, "ReadersPriority")
	want := []string{"θ", "θ", "rc"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("normalize: got %v, want %v", got, want)
	}
	if got := normalize(nil, "X"); len(got) != 0 {
		t.Errorf("normalize of no tokens: got %v", got)
	}
}

func TestLCSLen(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"x"}, nil, 0},
		{[]string{"a", "b", "c"}, []string{"a", "b", "c"}, 3},
		{[]string{"a", "b", "c", "d"}, []string{"b", "d"}, 2},
		{[]string{"a"}, []string{"b"}, 0},
	}
	for _, c := range cases {
		if got := lcsLen(c.a, c.b); got != c.want {
			t.Errorf("lcsLen(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSimilarity(t *testing.T) {
	// Two empty declarations are vacuously identical.
	if got := Similarity("", ""); got != 1 {
		t.Errorf("Similarity of empty decls = %v, want 1", got)
	}
	// Identical only after type-name normalization.
	a := "func (d *ReadersPriority) Read() { d.rc++ }"
	b := "func (d *WritersPriority) Read() { d.rc++ }"
	if got := Similarity(a, b, "ReadersPriority", "WritersPriority"); got != 1 {
		t.Errorf("Similarity with renamed types = %v, want 1", got)
	}
	// Without normalization the rename costs a token.
	if got := Similarity(a, b); got >= 1 {
		t.Errorf("Similarity without normalization = %v, want < 1", got)
	}
	// Nothing in common.
	if got := Similarity("x", "y"); got != 0 {
		t.Errorf("Similarity of disjoint decls = %v, want 0", got)
	}
	// One side empty: not identical, not NaN.
	if got := Similarity("x := 1", ""); got != 0 {
		t.Errorf("Similarity against empty decl = %v, want 0", got)
	}
}
