package eval

import (
	"errors"

	"repro/internal/kernel"
	"repro/internal/monitor"
	"repro/internal/serializer"
)

// The paper's §2 modularity requirements:
//
//  1. the synchronization is encapsulated with the resource (callers see
//     one protected-resource abstraction);
//  2. the protected resource separates into an unsynchronized resource
//     plus a synchronizer.
//
// §5.2 connects requirement 2 to the nested monitor call problem [18]:
// when resource operations ARE monitor operations, a wait inside a
// lower-level monitor deadlocks the hierarchy, whereas the structured
// form (release the monitor before invoking the resource operation)
// avoids it. These demonstrations make that argument executable.

// ModularityRating is one mechanism's row in the T3 table.
type ModularityRating struct {
	Mechanism string
	// Encapsulation: the mechanism itself associates synchronization with
	// the resource (true), or depends on programmer discipline (false).
	Encapsulation bool
	// Separation: the mechanism separates the unsynchronized resource
	// from the synchronizer structurally.
	Separation bool
	Notes      string
}

// ModularityTable returns the §2/§5 modularity findings for all six
// mechanisms.
func ModularityTable() []ModularityRating {
	return []ModularityRating{
		{"semaphore", false, false,
			"synchronization code sits at every access site; nothing associates it with the resource"},
		{"ccr", true, false,
			"the region names the protected variable bundle, but guard logic and resource code interleave in region bodies"},
		{"pathexpr", true, false,
			"paths are declared with the resource type (requirement 1); but synchronization procedures blur resource and synchronizer (requirement 2 fails, §5.1)"},
		{"monitor", false, true,
			"the three-module structure (shared resource = resource + monitor) works — but only by programmer discipline; in [13]'s own examples resource and synchronizer data mix (§5.2)"},
		{"serializer", true, true,
			"the serializer contains the resource and join/leave brackets resource access; the structure is the mechanism (§5.2)"},
		{"csp", true, true,
			"the server process owns the resource; clients can only reach it through request channels"},
	}
}

// NestedMonitorOutcome reports the nested-monitor-call experiment.
type NestedMonitorOutcome struct {
	// NaiveDeadlocks: invoking the lower-level monitor operation from
	// inside the higher-level monitor deadlocks when the inner operation
	// waits.
	NaiveDeadlocks bool
	// StructuredCompletes: releasing the outer monitor before calling the
	// lower level (the paper's protected-resource structure) completes.
	StructuredCompletes bool
	NaiveErr            error
	StructuredErr       error
}

// nestedScenario builds a two-level hierarchy: an inner one-slot buffer
// monitor and an outer monitor whose operation consumes from the inner
// buffer. A producer fills the inner buffer from outside the hierarchy.
// If the outer monitor is held across the inner wait, the producer can
// never deliver (it needs the inner monitor, which is free — but the
// consumer woke only via the inner condition, which the producer signals
// fine... the deadlock is on the OUTER monitor: the producer's delivery
// path also goes through the outer monitor).
//
//synclint:allow holdwait: the nested-monitor hazard is the experiment
func nestedScenario(holdOuterAcrossInner bool) error {
	k := kernel.NewSim()

	inner := monitor.New("inner")
	innerFull := inner.NewCondition("full")
	full := false

	outer := monitor.New("outer")

	// innerGet waits (inside the inner monitor) until the slot is full.
	innerGet := func(p *kernel.Proc) {
		inner.Enter(p)
		if !full {
			innerFull.Wait(p)
		}
		full = false
		inner.Exit(p)
	}
	// innerPut fills the slot.
	innerPut := func(p *kernel.Proc) {
		inner.Enter(p)
		full = true
		innerFull.Signal(p)
		inner.Exit(p)
	}

	// The outer resource operation: consume one item. In the naive form
	// the inner call happens with the outer monitor held; in the
	// structured form the outer monitor is released first (the monitor
	// only brackets the outer resource's own bookkeeping).
	outerConsume := func(p *kernel.Proc) {
		if holdOuterAcrossInner {
			outer.Enter(p)
			innerGet(p) // waits inside while holding outer
			outer.Exit(p)
		} else {
			outer.Enter(p)
			// bookkeeping only
			outer.Exit(p)
			innerGet(p)
		}
	}
	// The producer delivers through the outer abstraction too — the
	// natural shape when the outer module encapsulates the resource.
	outerProduce := func(p *kernel.Proc) {
		outer.Enter(p)
		outer.Exit(p)
		innerPut(p)
	}
	if holdOuterAcrossInner {
		outerProduce = func(p *kernel.Proc) {
			outer.Enter(p)
			innerPut(p)
			outer.Exit(p)
		}
	}

	k.Spawn("consumer", func(p *kernel.Proc) { outerConsume(p) })
	k.Spawn("producer", func(p *kernel.Proc) {
		p.Yield() // let the consumer get in first
		outerProduce(p)
	})
	return k.Run()
}

// RunNestedMonitorExperiment executes both variants.
func RunNestedMonitorExperiment() NestedMonitorOutcome {
	naiveErr := nestedScenario(true)
	structuredErr := nestedScenario(false)
	return NestedMonitorOutcome{
		NaiveDeadlocks:      errors.Is(naiveErr, kernel.ErrDeadlock),
		StructuredCompletes: structuredErr == nil,
		NaiveErr:            naiveErr,
		StructuredErr:       structuredErr,
	}
}

// CrowdConcurrencyOutcome reports the serializer-structure experiment:
// with resource access bracketed by a crowd, another process can possess
// the serializer while the access runs — the property that dissolves the
// nested-call problem (§5.2).
type CrowdConcurrencyOutcome struct {
	// OverlapObserved: a second process possessed the serializer while a
	// crowd member's resource access was in progress.
	OverlapObserved bool
	Err             error
}

// RunCrowdConcurrencyExperiment demonstrates the join-crowd release.
func RunCrowdConcurrencyExperiment() CrowdConcurrencyOutcome {
	k := kernel.NewSim()
	s := serializer.New("outer")
	c := s.NewCrowd("access")
	overlap := false
	inAccess := false

	k.Spawn("member", func(p *kernel.Proc) {
		s.Enter(p)
		c.Join(p, func() {
			inAccess = true
			p.Yield() // give the prober a chance
			p.Yield()
			inAccess = false
		})
		s.Exit(p)
	})
	k.Spawn("prober", func(p *kernel.Proc) {
		p.Yield()
		s.Enter(p) // succeeds only because Join released possession
		if inAccess {
			overlap = true
		}
		s.Exit(p)
	})
	err := k.Run()
	return CrowdConcurrencyOutcome{OverlapObserved: overlap, Err: err}
}

// modularityScore counts satisfied requirements, for report sorting.
func modularityScore(r ModularityRating) int {
	n := 0
	if r.Encapsulation {
		n++
	}
	if r.Separation {
		n++
	}
	return n
}
