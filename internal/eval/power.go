package eval

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
)

// Rating is one cell of the expressive-power matrix: how a mechanism
// handles one information type, with the rationale the paper's §4.1 asks
// for ("identify the particular way in which to handle each information
// type").
type Rating struct {
	Support   core.Support
	Rationale string
}

// ExpressivePower returns the T1 matrix: mechanism → information type →
// rating. The ratings encode the paper's §5 findings (path expressions,
// monitors, serializers), the §1 baseline (semaphores), and the §6
// extensions (CCRs, CSP) assessed with the same criteria:
//
//	Direct      — the mechanism has a construct for this information
//	Indirect    — expressible, but through hand-built auxiliary machinery
//	Unsupported — not expressible within the mechanism; solutions must
//	              escape to synchronization procedures outside it
//
// Every rating is backed by the solution source the structural analysis
// loads, and VerifyPower checks the matrix against actual conformance
// runs and structural witnesses.
func ExpressivePower() map[string]map[core.InfoType]Rating {
	return map[string]map[core.InfoType]Rating{
		"pathexpr": { // paper §5.1
			core.RequestType:   {core.Direct, "operation names in paths; distinctions are the path structure"},
			core.RequestTime:   {core.Indirect, "longest-waiting selection orders requests, but additional request operations may be needed (FCFSRW's pass gate)"},
			core.RequestParams: {core.Unsupported, "no way to use parameter values in paths; disk/alarm solutions are synchronization procedures behind a path-built mutex"},
			core.SyncState:     {core.Indirect, "automatic mutual exclusion encodes it implicitly; no direct access (Figure 1 resorts to requestread/requestwrite gates)"},
			core.LocalState:    {core.Unsupported, "local resource state is not available in paths; the bounded buffer needs auxiliary counting semaphores"},
			core.History:       {core.Direct, "the path position is the history; the one-slot buffer is a two-element path"},
		},
		"monitor": { // paper §5.2
			core.RequestType:   {core.Direct, "one condition queue per request class"},
			core.RequestTime:   {core.Direct, "condition queues are FIFO; a single queue is arrival order"},
			core.RequestParams: {core.Direct, "priority waits carry the parameter (disk scheduler ranks by track)"},
			core.SyncState:     {core.Indirect, "must be explicitly kept by the user as local data of the monitor (reader counts)"},
			core.LocalState:    {core.Direct, "the resource state is monitor-local data, tested directly"},
			core.History:       {core.Indirect, "kept as explicit monitor-local flags (the one-slot full bit)"},
		},
		"serializer": { // paper §5.2
			core.RequestType:   {core.Direct, "queues with per-waiter guarantees; types coexist in one queue"},
			core.RequestTime:   {core.Direct, "queue order with head-blocking makes FCFS exact"},
			core.RequestParams: {core.Direct, "priority queues (added to the mechanism later, as the paper notes)"},
			core.SyncState:     {core.Direct, "crowds record the processes currently accessing the resource"},
			core.LocalState:    {core.Direct, "serializer-local variables tested in guarantees (also a later addition)"},
			core.History:       {core.Indirect, "kept as explicit flags, as in monitors"},
		},
		"semaphore": { // the §1 baseline
			core.RequestType:   {core.Indirect, "one semaphore per request class, routed by hand"},
			core.RequestTime:   {core.Direct, "a FIFO semaphore queue is arrival order"},
			core.RequestParams: {core.Indirect, "explicit pending lists plus a private gate semaphore per request"},
			core.SyncState:     {core.Indirect, "hand-kept counts under a mutex (readcount)"},
			core.LocalState:    {core.Indirect, "counting semaphores mirror the state (slots/items), maintained manually"},
			core.History:       {core.Indirect, "a token in a 0/1 semaphore records the event"},
		},
		"ccr": { // §6 extension, same criteria
			core.RequestType:   {core.Indirect, "types become hand-split counters consulted by guards"},
			core.RequestTime:   {core.Indirect, "reified as ticket numbers (next/serving)"},
			core.RequestParams: {core.Direct, "guards are boolean expressions over the parameters"},
			core.SyncState:     {core.Indirect, "want-counts maintained by extra region entries (guards cannot see waiters)"},
			core.LocalState:    {core.Direct, "region when B do S is exactly a local-state condition"},
			core.History:       {core.Indirect, "explicit protected flags"},
		},
		"csp": { // §6 extension
			core.RequestType:   {core.Direct, "the channel a request arrives on is its type"},
			core.RequestTime:   {core.Direct, "channel FIFO; a single request channel is exact FCFS"},
			core.RequestParams: {core.Direct, "parameters travel in the message"},
			core.SyncState:     {core.Indirect, "server-kept counters and explicit pending-request lists (guards cannot see waiting senders reliably)"},
			core.LocalState:    {core.Direct, "the server owns the resource state outright"},
			core.History:       {core.Direct, "the server's control flow is the history (the one-slot server alternates receives)"},
		},
	}
}

// problemsByInfoType maps each information type to the footnote-2 problem
// that tests it.
func problemsByInfoType() map[core.InfoType]string {
	return map[core.InfoType]string{
		core.LocalState:    problems.NameBoundedBuffer,
		core.RequestTime:   problems.NameFCFS,
		core.RequestType:   problems.NameReadersPriority,
		core.SyncState:     problems.NameReadersPriority,
		core.RequestParams: problems.NameDisk,
		core.History:       problems.NameOneSlot,
	}
}

// PowerVerification is the outcome of checking one matrix cell against
// runs and sources.
type PowerVerification struct {
	Mechanism string
	InfoType  core.InfoType
	Rating    core.Support
	Problem   string
	// SolvedByRun: the mechanism's solution to the type's test problem
	// passes its oracle under the deterministic kernel.
	SolvedByRun bool
	// EscapeWitness: for Unsupported ratings, the solution source
	// references machinery outside the mechanism (the semaphore package —
	// "synchronization procedures"); for other ratings it must not need
	// to be checked.
	EscapeWitness bool
	Err           error
}

// OK reports whether the cell is consistent with the evidence.
func (v PowerVerification) OK() bool {
	if v.Err != nil || !v.SolvedByRun {
		return false
	}
	if v.Rating == core.Unsupported && !v.EscapeWitness {
		return false
	}
	return true
}

// VerifyPower checks every cell of the matrix: each mechanism's solution
// to the test problem for each information type must pass its oracle
// (expressible at all — the footnote-2 methodology), and every
// Unsupported cell must exhibit the synchronization-procedure escape in
// its source.
func VerifyPower() []PowerVerification {
	matrix := ExpressivePower()
	byType := problemsByInfoType()
	var out []PowerVerification

	for _, s := range solutions.All() {
		ratings := matrix[s.Mechanism]
		for _, it := range core.AllInfoTypes() {
			problem := byType[it]
			v := PowerVerification{
				Mechanism: s.Mechanism,
				InfoType:  it,
				Rating:    ratings[it].Support,
				Problem:   problem,
			}
			k := kernel.NewSim()
			// The Figure-1 pathexpr solution is known to violate the
			// priority constraint (the paper's finding); expressibility of
			// the exclusion/information machinery is judged on safety.
			strict := !(s.Mechanism == "pathexpr" && problem == problems.NameReadersPriority)
			_, vs, err := solutions.RunStandard(k, s, problem, strict)
			if err != nil {
				v.Err = err
			}
			v.SolvedByRun = err == nil && len(vs) == 0
			if v.Rating == core.Unsupported {
				v.EscapeWitness = solutionUsesEscape(s.Mechanism, problem)
			}
			out = append(out, v)
		}
	}
	return out
}

// solutionUsesEscape reports whether the solution's source references the
// semaphore package — the "synchronization procedures" escape hatch for
// information a mechanism cannot express.
func solutionUsesEscape(mechanism, problem string) bool {
	decls, err := LoadSolution(mechanism, problem)
	if err != nil {
		return false
	}
	for _, src := range decls.Decls {
		if strings.Contains(src, "semaphore.") {
			return true
		}
	}
	return false
}

// PowerCell formats one rating compactly for the table renderer.
func PowerCell(r Rating) string {
	switch r.Support {
	case core.Direct:
		return "direct"
	case core.Indirect:
		return "indirect"
	default:
		return "—"
	}
}

// FmtInfoTypeShort gives the column headers used in reports.
func FmtInfoTypeShort(t core.InfoType) string {
	switch t {
	case core.RequestType:
		return "type"
	case core.RequestTime:
		return "time"
	case core.RequestParams:
		return "params"
	case core.SyncState:
		return "sync"
	case core.LocalState:
		return "local"
	case core.History:
		return "history"
	}
	return fmt.Sprint(t)
}
