package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/problems"
)

// Report renderers: each experiment becomes a plain-text table, printed
// by cmd/evalsync and asserted on by tests. Output is deterministic.

// RenderPowerMatrix renders experiment T1.
func RenderPowerMatrix() string {
	matrix := ExpressivePower()
	var b strings.Builder
	b.WriteString("T1. Expressive power: mechanism x information type (§4.1, §5)\n")
	b.WriteString("    direct = construct exists; indirect = hand-built machinery; — = not expressible in the mechanism\n\n")
	fmt.Fprintf(&b, "%-12s", "")
	for _, it := range core.AllInfoTypes() {
		fmt.Fprintf(&b, " %-9s", FmtInfoTypeShort(it))
	}
	b.WriteByte('\n')
	for _, m := range core.Mechanisms() {
		ratings := matrix[m.Name]
		fmt.Fprintf(&b, "%-12s", m.Name)
		for _, it := range core.AllInfoTypes() {
			fmt.Fprintf(&b, " %-9s", PowerCell(ratings[it]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderPowerRationales renders the per-cell justifications.
func RenderPowerRationales() string {
	matrix := ExpressivePower()
	var b strings.Builder
	for _, m := range core.Mechanisms() {
		fmt.Fprintf(&b, "%s (%s, %d):\n", m.Full, m.Ref, m.Year)
		ratings := matrix[m.Name]
		for _, it := range core.AllInfoTypes() {
			r := ratings[it]
			fmt.Fprintf(&b, "  %-22s %-11s %s\n", it.String()+":", r.Support, r.Rationale)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderVerification renders the T1 verification run.
func RenderVerification(vs []PowerVerification) string {
	var b strings.Builder
	b.WriteString("T1 verification: every cell checked against a conformance run (and, for —, a synchronization-procedure witness)\n\n")
	bad := 0
	for _, v := range vs {
		status := "ok"
		if !v.OK() {
			status = "INCONSISTENT"
			bad++
		}
		fmt.Fprintf(&b, "  %-11s %-22s rated=%-11s problem=%-17s run=%-5v %s\n",
			v.Mechanism, v.InfoType, v.Rating, v.Problem, v.SolvedByRun, status)
	}
	fmt.Fprintf(&b, "\n  %d cells, %d inconsistent\n", len(vs), bad)
	return b.String()
}

// RenderIndependence renders experiment T2.
func RenderIndependence(rows []IndependenceRow) string {
	var b strings.Builder
	b.WriteString("T2. Constraint independence (§4.2): solution similarity across problem variants\n")
	b.WriteString("    1.00 = identical implementation of the shared constraints; low values mean the\n")
	b.WriteString("    unchanged constraint had to be reimplemented (the paper's path-expression verdict)\n\n")
	fmt.Fprintf(&b, "  %-12s %-28s %-28s\n", "", "readers-pri ~ writers-pri", "readers-pri ~ fcfs-rw")
	sorted := make([]IndependenceRow, len(rows))
	copy(sorted, rows)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].RPvsWP > sorted[j].RPvsWP })
	for _, r := range sorted {
		fmt.Fprintf(&b, "  %-12s %-28.2f %-28.2f\n", r.Mechanism, r.RPvsWP, r.RPvsFCFS)
	}
	return b.String()
}

// RenderPairDetail renders one pair comparison, per declaration.
func RenderPairDetail(rep PairReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s vs %s (overall %.2f)\n", rep.Mechanism, rep.ProblemA, rep.ProblemB, rep.Overall)
	for _, d := range rep.Diffs {
		if d.Similarity < 0 {
			fmt.Fprintf(&b, "  %-12s only on one side\n", d.Name)
		} else {
			fmt.Fprintf(&b, "  %-12s %.2f\n", d.Name, d.Similarity)
		}
	}
	return b.String()
}

// RenderModularity renders experiment T3. The static column is the
// synclint escape analyzer's verdict over the embedded solution sources,
// printed next to each hand-assessed Encapsulation rating.
func RenderModularity(nested NestedMonitorOutcome, crowd CrowdConcurrencyOutcome) string {
	var b strings.Builder
	b.WriteString("T3. Modularity (§2, §5.2)\n\n")
	static := map[string]StaticModularity{}
	for _, sm := range StaticModularityTable() {
		static[sm.Mechanism] = sm
	}
	fmt.Fprintf(&b, "  %-12s %-14s %-22s %-12s %s\n", "", "encapsulation", "static evidence", "separation", "notes")
	rows := ModularityTable()
	sort.SliceStable(rows, func(i, j int) bool { return modularityScore(rows[i]) > modularityScore(rows[j]) })
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %-14v %-22s %-12v %s\n",
			r.Mechanism, r.Encapsulation, staticEvidence(static[r.Mechanism], r), r.Separation, r.Notes)
	}
	b.WriteString("\n  Nested monitor calls [18]:\n")
	fmt.Fprintf(&b, "    naive (resource ops are monitor ops):      deadlocks = %v (%v)\n",
		nested.NaiveDeadlocks, nested.NaiveErr)
	fmt.Fprintf(&b, "    structured (monitor released before call): completes = %v\n",
		nested.StructuredCompletes)
	b.WriteString("  Serializer crowds:\n")
	fmt.Fprintf(&b, "    resource access overlapped possession:     %v\n", crowd.OverlapObserved)
	return b.String()
}

// staticEvidence formats one mechanism's synclint escape verdict and
// whether it agrees with the hand-assessed rating.
func staticEvidence(sm StaticModularity, r ModularityRating) string {
	if sm.Err != nil {
		return "load error"
	}
	verdict := "agrees"
	if sm.Encapsulated() != r.Encapsulation {
		verdict = "DISAGREES"
	}
	return fmt.Sprintf("%d/%d bound (%s)", sm.Summary.BoundCount(), len(sm.Summary.Types), verdict)
}

// RenderCoverage renders experiment T4: the footnote-2 problem set covers
// every information type.
func RenderCoverage() string {
	var b strings.Builder
	b.WriteString("T4. Test-set coverage (footnote 2): each information type has a test problem\n\n")
	footnote2 := []string{
		problems.NameBoundedBuffer, problems.NameFCFS, problems.NameReadersPriority,
		problems.NameDisk, problems.NameAlarmClock, problems.NameOneSlot,
	}
	for _, name := range footnote2 {
		spec, _ := problems.SpecOf(name)
		var types []string
		for _, it := range spec.InfoTypes() {
			types = append(types, it.String())
		}
		fmt.Fprintf(&b, "  %-18s %s\n", name, strings.Join(types, ", "))
	}
	covered := map[core.InfoType]bool{}
	for _, name := range footnote2 {
		spec, _ := problems.SpecOf(name)
		for _, it := range spec.InfoTypes() {
			covered[it] = true
		}
	}
	missing := 0
	for _, it := range core.AllInfoTypes() {
		if !covered[it] {
			missing++
		}
	}
	fmt.Fprintf(&b, "\n  %d of %d information types covered\n", len(core.AllInfoTypes())-missing, len(core.AllInfoTypes()))
	return b.String()
}

// RenderFigure1 renders experiment F1.
func RenderFigure1(res Figure1Result) string {
	var b strings.Builder
	b.WriteString("F1. Figure 1 (path-expression readers-priority) and the footnote-3 anomaly\n\n")
	fmt.Fprintf(&b, "  schedules explored: %d\n", res.Runs)
	fmt.Fprintf(&b, "  anomaly reproduced: %v\n", res.AnomalyFound)
	if res.MinSchedule != nil {
		fmt.Fprintf(&b, "  shrunk schedule:    %d choices (from %d, %d shrink replays)\n",
			len(res.MinSchedule), len(res.Schedule), res.ShrinkRuns)
	}
	if res.AnomalyFound {
		b.WriteString("\n  violating history (writer2 overtakes the waiting reader):\n")
		for _, e := range res.Trace {
			b.WriteString("    " + e.String() + "\n")
		}
		b.WriteString("\n  oracle findings:\n")
		for _, v := range res.Violations {
			b.WriteString("    " + v.String() + "\n")
		}
	}
	return b.String()
}

// RenderFigure2 renders experiment F2.
func RenderFigure2(res Figure2Result) string {
	var b strings.Builder
	b.WriteString("F2. Figure 2 (path-expression writers-priority)\n\n")
	fmt.Fprintf(&b, "  schedules explored:                 %d\n", res.Runs)
	fmt.Fprintf(&b, "  writers-priority holds:             %v\n", res.WritersPriorityHolds)
	fmt.Fprintf(&b, "  readers-priority (inverse) violated: %v  (same scenario, opposite verdicts vs F1 — the\n", res.ReadersPriorityViolated)
	b.WriteString("  two figures share the exclusion constraint and differ exactly in the priority constraint)\n")
	return b.String()
}
