package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/problems"
	"repro/internal/solutions"
)

// Solution-size measurement — a coarse proxy for the paper's "complexity
// of constructing the solution" (§4.2 distinguishes it from the
// complexity of the solution itself, but size is the observable part).
// Sizes are semantic token counts over the extracted declarations, so
// comments and formatting do not count.

// SizeRow is one mechanism's solution sizes across the problem suite.
type SizeRow struct {
	Mechanism string
	Tokens    map[string]int // problem -> token count
	Total     int
}

// SizeTable measures every solution in the registry.
func SizeTable() ([]SizeRow, error) {
	var out []SizeRow
	for _, s := range solutions.All() {
		row := SizeRow{Mechanism: s.Mechanism, Tokens: map[string]int{}}
		for _, problem := range problems.AllProblems() {
			decls, err := LoadSolution(s.Mechanism, problem)
			if err != nil {
				return nil, err
			}
			n := decls.TotalTokens()
			row.Tokens[problem] = n
			row.Total += n
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderSizes renders the size table, smallest total first.
func RenderSizes(rows []SizeRow) string {
	var b strings.Builder
	b.WriteString("Solution sizes (semantic tokens per solution; construction-effort proxy)\n\n")
	probs := problems.AllProblems()
	fmt.Fprintf(&b, "  %-12s", "")
	for _, p := range probs {
		fmt.Fprintf(&b, " %7s", shortProblem(p))
	}
	fmt.Fprintf(&b, " %7s\n", "total")

	sorted := make([]SizeRow, len(rows))
	copy(sorted, rows)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Total < sorted[j].Total })
	for _, r := range sorted {
		fmt.Fprintf(&b, "  %-12s", r.Mechanism)
		for _, p := range probs {
			fmt.Fprintf(&b, " %7d", r.Tokens[p])
		}
		fmt.Fprintf(&b, " %7d\n", r.Total)
	}
	return b.String()
}

// shortProblem abbreviates problem names for column headers.
func shortProblem(p string) string {
	switch p {
	case problems.NameBoundedBuffer:
		return "buffer"
	case problems.NameFCFS:
		return "fcfs"
	case problems.NameReadersPriority:
		return "rdpri"
	case problems.NameWritersPriority:
		return "wrpri"
	case problems.NameFCFSRW:
		return "fcfsrw"
	case problems.NameDisk:
		return "disk"
	case problems.NameAlarmClock:
		return "alarm"
	case problems.NameOneSlot:
		return "1slot"
	}
	return p
}
