package eval

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/trace"
)

// Experiment E2 — starvation profiles. The paper notes in passing that
// the readers-priority specification "allows writers to starve" (and,
// symmetrically, writers-priority starves readers). That admissibility is
// a property of the *scheme*, so every correct solution to a variant must
// exhibit it under overload: a continuous stream of favored requests must
// shut the disfavored one out until the stream ends, in every mechanism.
// This doubles as a behavioral cross-check on the 12 priority solutions:
// a readers-priority implementation that lets the writer in mid-storm is
// wrong (too weak), and a writers-priority one that starves the writer is
// wrong too.

// StarvationRow is one (mechanism, variant, storm) measurement.
type StarvationRow struct {
	Mechanism string
	Variant   string // problem name
	Storm     string // "readers" or "writers": which op floods
	// VictimWaited: operations of the storming kind completed before the
	// single victim request was admitted.
	VictimWaited int
	// StormTotal is the number of storming operations in the workload.
	StormTotal int
	// Starved: the victim was admitted only after the entire storm
	// completed — the storm never yielded to it.
	Starved bool
	Err     error
}

// RunStarvation executes E2 across all mechanisms and both variants under
// both storm directions.
func RunStarvation() []StarvationRow {
	var out []StarvationRow
	for _, s := range solutions.All() {
		for _, variant := range []string{problems.NameReadersPriority, problems.NameWritersPriority} {
			for _, stormIsRead := range []bool{true, false} {
				row := runStarvationFor(s, variant, stormIsRead)
				row.Mechanism = s.Mechanism
				row.Variant = variant
				out = append(out, row)
			}
		}
	}
	return out
}

func runStarvationFor(s solutions.Suite, variant string, stormIsRead bool) StarvationRow {
	// Build kernel first so server daemons live on the same kernel.
	k := kernel.NewSim()
	var db problems.RWStore
	if variant == problems.NameReadersPriority {
		db = s.NewReadersPriority(k)
	} else {
		db = s.NewWritersPriority(k)
	}
	return starvationScenarioOn(k, db, stormIsRead)
}

// starvationScenarioOn is starvationScenario with a caller-provided
// kernel (needed for CSP, whose servers must be spawned on it).
func starvationScenarioOn(k *kernel.SimKernel, db problems.RWStore, stormIsRead bool) StarvationRow {
	const (
		stormProcs  = 3
		stormRounds = 8
	)
	r := trace.NewRecorder(k)

	stormOp, victimOp := problems.OpRead, problems.OpWrite
	if !stormIsRead {
		stormOp, victimOp = problems.OpWrite, problems.OpRead
	}
	do := func(p *kernel.Proc, op string, body func(func())) {
		r.Request(p, op, trace.NoArg)
		body(func() {
			r.Enter(p, op, trace.NoArg)
			p.Yield()
			p.Yield()
			r.Exit(p, op, trace.NoArg)
		})
	}
	for i := 0; i < stormProcs; i++ {
		k.Spawn("storm", func(p *kernel.Proc) {
			for j := 0; j < stormRounds; j++ {
				if stormIsRead {
					do(p, stormOp, func(b func()) { db.Read(p, b) })
				} else {
					do(p, stormOp, func(b func()) { db.Write(p, b) })
				}
			}
		})
	}
	k.Spawn("victim", func(p *kernel.Proc) {
		for i := 0; i < 4; i++ {
			p.Yield()
		}
		if stormIsRead {
			do(p, victimOp, func(b func()) { db.Write(p, b) })
		} else {
			do(p, victimOp, func(b func()) { db.Read(p, b) })
		}
	})

	row := StarvationRow{StormTotal: stormProcs * stormRounds}
	if stormIsRead {
		row.Storm = "readers"
	} else {
		row.Storm = "writers"
	}
	if err := k.Run(); err != nil {
		row.Err = err
		return row
	}
	tr := r.Events()
	var victimEnter int64
	for _, e := range tr {
		if e.Kind == trace.KindEnter && e.Op == victimOp {
			victimEnter = e.Seq
			break
		}
	}
	if victimEnter == 0 {
		row.Err = fmt.Errorf("victim never admitted")
		return row
	}
	for _, e := range tr {
		if e.Kind == trace.KindExit && e.Op == stormOp && e.Seq < victimEnter {
			row.VictimWaited++
		}
	}
	row.Starved = row.VictimWaited >= row.StormTotal
	return row
}

// ExpectedStarved reports whether the scheme admits starvation of the
// victim under the given storm: readers-priority starves writers under a
// reader storm; writers-priority starves readers under a writer storm.
func ExpectedStarved(variant, storm string) bool {
	return (variant == problems.NameReadersPriority && storm == "readers") ||
		(variant == problems.NameWritersPriority && storm == "writers")
}

// RenderStarvation renders experiment E2.
func RenderStarvation(rows []StarvationRow) string {
	var b strings.Builder
	b.WriteString("E2. Starvation profiles: what each variant's specification admits, measured\n")
	b.WriteString("    (a 3-process storm of the favored operation, one early victim request)\n\n")
	fmt.Fprintf(&b, "  %-12s %-18s %-9s %-22s %s\n", "", "variant", "storm", "victim admitted after", "starved (expected)")
	for _, r := range rows {
		expect := ExpectedStarved(r.Variant, r.Storm)
		status := fmt.Sprintf("%v (%v)", r.Starved, expect)
		if r.Err != nil {
			status = "ERROR: " + r.Err.Error()
		}
		fmt.Fprintf(&b, "  %-12s %-18s %-9s %-22s %s\n",
			r.Mechanism, r.Variant, r.Storm,
			fmt.Sprintf("%d of %d storm ops", r.VictimWaited, r.StormTotal), status)
	}
	b.WriteString("\n  The paper (§5.1.1): the readers-priority specification 'allows writers to starve';\n")
	b.WriteString("  the profiles show every mechanism's solution implementing exactly its variant's\n")
	b.WriteString("  admissible starvation — and no more.\n")
	return b.String()
}
