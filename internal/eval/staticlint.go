package eval

import (
	"repro/internal/solutions"
	"repro/internal/synclint"
)

// StaticModularity is the synclint escape analyzer's mechanical verdict
// for one mechanism's solution package: how many solution types the
// mechanism itself binds to their resource state (structurally protected
// accesses), and any state accesses that escaped every bracket. It is
// the static evidence behind the hand-assessed Encapsulation column of
// the T3 table — the two are pinned together by
// TestModularityStaticAgreement.
type StaticModularity struct {
	Mechanism string
	Summary   synclint.EscapeSummary
	// Escapes are accesses outside any bracket — empty for every shipped
	// solution (synclint gates CI on that).
	Escapes []synclint.Finding
	Err     error
}

// Encapsulated is the static T3 verdict: a majority of the package's
// solution types are mechanism-bound.
func (s StaticModularity) Encapsulated() bool { return s.Summary.Encapsulated() }

// StaticModularityTable derives the Encapsulation column from source: it
// runs the escape analyzer over each embedded solution package (the same
// text the independence analysis reads), in ModularityTable order.
func StaticModularityTable() []StaticModularity {
	var out []StaticModularity
	for _, r := range ModularityTable() {
		sm := StaticModularity{Mechanism: r.Mechanism}
		pkg, err := synclint.LoadFS(solutions.Sources, pkgDirs[r.Mechanism])
		if err != nil {
			sm.Err = err
		} else {
			sm.Summary, sm.Escapes = synclint.AnalyzeEscape(pkg)
		}
		out = append(out, sm)
	}
	return out
}
