package eval

import (
	"strings"
	"testing"
)

// TestModularityStaticAgreement pins the hand-assessed T3 Encapsulation
// column to the synclint escape analyzer's mechanical verdict over the
// embedded solution sources: the claim in the paper-reproduction table is
// derivable from the code it describes.
func TestModularityStaticAgreement(t *testing.T) {
	static := map[string]StaticModularity{}
	for _, sm := range StaticModularityTable() {
		static[sm.Mechanism] = sm
	}
	for _, r := range ModularityTable() {
		sm, ok := static[r.Mechanism]
		if !ok {
			t.Errorf("%s: no static analysis result", r.Mechanism)
			continue
		}
		if sm.Err != nil {
			t.Errorf("%s: %v", r.Mechanism, sm.Err)
			continue
		}
		if len(sm.Summary.Types) == 0 {
			t.Errorf("%s: escape analysis saw no solution types", r.Mechanism)
		}
		if got := sm.Encapsulated(); got != r.Encapsulation {
			t.Errorf("%s: static encapsulation verdict %v (%d/%d types bound), table says %v",
				r.Mechanism, got, sm.Summary.BoundCount(), len(sm.Summary.Types), r.Encapsulation)
		}
		for _, f := range sm.Escapes {
			t.Errorf("%s: unbracketed state access: %s", r.Mechanism, f)
		}
	}
}

func TestRenderModularityStaticColumn(t *testing.T) {
	out := RenderModularity(RunNestedMonitorExperiment(), RunCrowdConcurrencyExperiment())
	if !strings.Contains(out, "static evidence") {
		t.Fatalf("T3 report lacks the static evidence column:\n%s", out)
	}
	if strings.Contains(out, "DISAGREES") || strings.Contains(out, "load error") {
		t.Fatalf("static evidence contradicts the table:\n%s", out)
	}
}
