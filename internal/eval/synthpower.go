package eval

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/explore"
	"repro/internal/kernel"
	"repro/internal/synth"
)

// SynthPowerRow aggregates one mechanism's verdicts over the generated
// corpus, split by constraint shape: the discriminating power of the
// synthesized problems. A correct mechanism passes everything it can
// express; the naive-gate control exists to fail; path expressions
// refuse the shapes outside their vocabulary.
type SynthPowerRow struct {
	Mechanism string
	Shape     string

	Pass          int
	Fail          int
	Deadlock      int
	Error         int
	Inexpressible int
}

// synthPowerBudget is the per-problem exploration budget of the T9
// sweep: the same window the syncfuzz smoke job uses — enough schedules
// that the naive-gate control loses races it can lose, small enough
// that N problems × mechanisms stays interactive.
var synthPowerBudget = explore.Options{RandomRuns: 100, DFSRuns: 60}

// RunSynthPower fuzzes n generated problems (corpus seeds seed..seed+n-1)
// through every synth adapter — the real mechanisms plus the naive-gate
// control — and tabulates verdicts by mechanism and constraint shape.
// Everything downstream of the seed is deterministic, so the table is a
// reproducible figure, not a flaky sample.
func RunSynthPower(n int, seed int64) ([]SynthPowerRow, error) {
	cells := map[string]*SynthPowerRow{}
	touch := func(mech, shape string) *SynthPowerRow {
		key := mech + "\x00" + shape
		if cells[key] == nil {
			cells[key] = &SynthPowerRow{Mechanism: mech, Shape: shape}
		}
		return cells[key]
	}
	for i := 0; i < n; i++ {
		pseed := seed + int64(i)
		set := synth.Generate(pseed)
		shape := set.Shape()
		for _, mech := range synth.Mechanisms() {
			cell := touch(mech, shape)
			if err := synth.Supports(mech, set); err != nil {
				cell.Inexpressible++
				continue
			}
			prog, oracle, err := synth.Program(set, mech)
			if err != nil {
				return nil, fmt.Errorf("T9 %s/%s: %w", mech, set.Name, err)
			}
			opts := exploreOpts(synthPowerBudget)
			opts.Prune = true
			opts.DPOR = true
			opts.Pool = true
			opts.Checkpoint = true
			res := explore.Run(prog, oracle, opts)
			switch {
			case !res.Found:
				cell.Pass++
			case res.Err != nil && errors.Is(res.Err, kernel.ErrDeadlock):
				cell.Deadlock++
			case res.Err != nil:
				cell.Error++
			default:
				cell.Fail++
			}
		}
	}
	rows := make([]SynthPowerRow, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, *c)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Mechanism != rows[j].Mechanism {
			return rows[i].Mechanism < rows[j].Mechanism
		}
		return rows[i].Shape < rows[j].Shape
	})
	return rows, nil
}

// RenderSynthPower renders the T9 table.
func RenderSynthPower(rows []SynthPowerRow, n int, seed int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "T9. Discriminating power of the generated corpus (%d problems, seed %d)\n", n, seed)
	b.WriteString(strings.Repeat("-", 78) + "\n")
	fmt.Fprintf(&b, "%-12s %-34s %5s %5s %5s %5s %5s\n",
		"mechanism", "shape", "pass", "fail", "dead", "err", "n/e")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-34s %5d %5d %5d %5d %5d\n",
			r.Mechanism, r.Shape, r.Pass, r.Fail, r.Deadlock, r.Error, r.Inexpressible)
	}
	b.WriteString("\nEach generated problem is explored under the fuzz smoke budget; a correct\n")
	b.WriteString("mechanism passes every expressible set, the naive-gate control documents\n")
	b.WriteString("what the corpus catches, and path expressions refuse shapes outside their\n")
	b.WriteString("vocabulary (n/e). Deadlocks are wedgeable sets and hit every mechanism alike.\n")
	return b.String()
}
