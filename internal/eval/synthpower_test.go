package eval

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

// One corpus seed with known discriminating power (the naive-gate
// control loses a race on it at the T9 budget) exercises the whole
// sweep: every adapter gets a row, the control fails, the correct
// mechanisms do not, and the rendering carries the verdict columns.
func TestSynthPowerSingleSeed(t *testing.T) {
	rows, err := RunSynthPower(1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(synth.Mechanisms()) {
		t.Fatalf("rows = %d, want one per mechanism (%d)", len(rows), len(synth.Mechanisms()))
	}
	for _, r := range rows {
		total := r.Pass + r.Fail + r.Deadlock + r.Error + r.Inexpressible
		if total != 1 {
			t.Errorf("%s: verdicts sum to %d, want 1", r.Mechanism, total)
		}
		if r.Mechanism == synth.NaiveGate && r.Fail != 1 {
			t.Errorf("naive-gate on seed 21: fail = %d, want 1 (corpus lost its teeth?)", r.Fail)
		}
		if r.Mechanism != synth.NaiveGate && r.Fail+r.Error > 0 {
			t.Errorf("%s: fail=%d error=%d on a set a correct mechanism must pass", r.Mechanism, r.Fail, r.Error)
		}
	}
	out := RenderSynthPower(rows, 1, 21)
	for _, want := range []string{"T9.", "naive-gate", "mechanism", "shape"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
