// Checkpoint-tree DFS (Options.Checkpoint): sibling schedules share
// their common prefix through kernel snapshots instead of replaying it
// from the root.
//
// Every DFS child node branches at the last choice of its prefix, so the
// deepest snapshot that can serve it sits exactly at that branch point —
// captured from the parent run that pushed it. After each clean judged
// run the driver registers one checkpoint per decision point the run
// branched from (the kernel part via kernel.SnapshotAt, the trace prefix
// as a copy), keyed by the binary prefix key the frontier dedup already
// uses. When a node is popped, the driver consumes its branch-point
// entry and forks: kernel.WithRestore re-drives the prefix with the
// per-step pipeline skipped, the recorder serves prefix events from the
// snapshot, and a streaming checker is brought to the fork point by
// re-feeding it the prefix.
//
// Everything here runs on the driver in canonical pop order, so
// registration, consumption, and eviction — and therefore the
// CheckpointForks/SavedSteps/ReplayedSteps counters — are independent of
// the worker count. Helper workers keep executing speculative runs by
// full replay; a fork only happens when the driver runs a node inline.
// Restore-and-re-drive is observationally identical to replay by
// determinism (pinned by TestCheckpointMatchesReplay), so checkpointing
// never changes what is judged, only what it costs.
package explore

import (
	"repro/internal/kernel"
	"repro/internal/trace"
)

// ckptEntry is one live checkpoint: the kernel snapshot and trace prefix
// at a branch point, plus the bookkeeping that drives eviction.
type ckptEntry struct {
	key     string // binary key of the choice prefix (appendScheduleKey)
	depth   int    // decision points captured
	pending int    // sibling schedules not yet popped from the frontier
	lastUse int64  // registry tick of the most recent consumption
	snap    *kernel.Snapshot
	events  trace.Trace // recorder prefix at the capture point (owned copy)
}

// ckptGroupsPerRun caps how many branch points one run registers,
// counted from the deepest. The frontier pops LIFO, so the next runs
// fork from a run's deepest branch points; shallower ones would usually
// be evicted before their subtree's turn comes, and a miss only costs a
// full replay (which then registers its own deepest branch points).
const ckptGroupsPerRun = 3

// ckptRegistry is the driver-side checkpoint store for one DFS scan.
type ckptRegistry struct {
	budget int
	tick   int64
	byKey  map[string]*ckptEntry
	order  []*ckptEntry // registration order: deterministic eviction scans
	keyBuf []byte       // scratch for key encoding, reused across runs
}

func newCkptRegistry(budget int) *ckptRegistry {
	if budget < 1 {
		budget = 1
	}
	return &ckptRegistry{budget: budget, byKey: make(map[string]*ckptEntry, budget)}
}

// take consumes one pending sibling of the checkpoint covering
// branchKey, returning the entry to fork from (nil when no checkpoint
// covers the prefix — never registered, or evicted). A fully consumed
// entry leaves the registry but stays valid for the caller: its snapshot
// and events are owned copies.
func (g *ckptRegistry) take(branchKey []byte) *ckptEntry {
	ent := g.byKey[string(branchKey)]
	if ent == nil {
		return nil
	}
	g.tick++
	ent.lastUse = g.tick
	ent.pending--
	if ent.pending <= 0 {
		g.remove(ent)
	}
	return ent
}

// registerRun captures checkpoints for a judged run's deepest branch
// points (ckptGroupsPerRun of them): one per decision point that
// expandDFS branched from, each serving the sibling schedules pushed
// there. children arrive in ascending branch order. The run is captured
// once, at the deepest branch point; the shallower branch points are
// zero-copy truncations of that snapshot (kernel.Snapshot.Truncate)
// sub-slicing the same trace copy, and their map keys come from one
// shared encoding pass (the key encoding is concatenative), so a run
// with several branch points costs little more than one. Only clean
// runs register — a violating or errored run may have been cut short
// (Options.Stream stops violating runs mid-flight), so its trace is not
// a sound prefix to resume from.
func (g *ckptRegistry) registerRun(out runOut, children []*dfsNode) {
	// Collect the deepest groups, scanning from the tail.
	var depths, pendings [ckptGroupsPerRun]int
	n := 0
	for i := len(children); i > 0 && n < ckptGroupsPerRun; {
		d := len(children[i-1].prefix) - 1
		j := i
		for j > 0 && len(children[j-1].prefix)-1 == d {
			j--
		}
		if d >= 1 { // forking at the root saves nothing
			depths[n], pendings[n] = d, i-j
			n++
		}
		i = j
	}
	if n == 0 {
		return
	}
	deepest := depths[0]
	deep, err := out.slot.k.SnapshotAt(deepest)
	if err != nil || deep.Events > len(out.tr) {
		return // defensive: never block the search on a capture failure
	}
	events := append(trace.Trace(nil), out.tr[:deep.Events]...)
	// One encoding pass over the deepest prefix, byte offsets per group.
	var offs [ckptGroupsPerRun]int
	buf, prev := g.keyBuf[:0], 0
	for i := n - 1; i >= 0; i-- { // ascending depth order
		buf = appendScheduleKey(buf, out.schedule[prev:depths[i]])
		offs[i], prev = len(buf), depths[i]
	}
	g.keyBuf = buf
	for i := n - 1; i >= 0; i-- {
		d := depths[i]
		snap, evs := deep, events
		if d < deepest {
			if snap, err = deep.Truncate(d); err != nil || snap.Events > len(events) {
				continue
			}
			evs = events[:snap.Events]
		}
		g.register(string(buf[:offs[i]]), d, pendings[i], snap, evs)
	}
}

func (g *ckptRegistry) register(key string, depth, pending int, snap *kernel.Snapshot, events trace.Trace) {
	if ent := g.byKey[key]; ent != nil {
		// A previous run already covers this prefix; its copy serves the
		// new siblings too (they are frontier duplicates and will be
		// dedup-skipped, but each pop still consumes a pending slot).
		ent.pending += pending
		return
	}
	for len(g.order) >= g.budget {
		g.evict()
	}
	g.tick++
	g.byKey[key] = &ckptEntry{
		key:     key,
		depth:   depth,
		pending: pending,
		lastUse: g.tick,
		snap:    snap,
		events:  events,
	}
	g.order = append(g.order, g.byKey[key])
}

// evict removes the least valuable checkpoint: fewest pending siblings
// (smallest remaining subtree) first, ties broken by least recent use.
// The scan runs over registration order, so eviction is deterministic.
func (g *ckptRegistry) evict() {
	if len(g.order) == 0 {
		return
	}
	victim := g.order[0]
	for _, e := range g.order[1:] {
		if e.pending < victim.pending ||
			(e.pending == victim.pending && e.lastUse < victim.lastUse) {
			victim = e
		}
	}
	g.remove(victim)
}

func (g *ckptRegistry) remove(ent *ckptEntry) {
	delete(g.byKey, ent.key)
	for i, e := range g.order {
		if e == ent {
			g.order = append(g.order[:i], g.order[i+1:]...)
			return
		}
	}
}
