package explore

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/solutions/monitorsol"
	"repro/internal/solutions/pathexprsol"
	"repro/internal/trace"
)

// The snapshot/restore equivalence suite: for every T4 mechanism×problem
// pairing, run a random schedule, checkpoint at a random visible step,
// restore, run to completion, and require the trace and run fingerprint
// byte-identical to the uncheckpointed run. This is the soundness
// argument for checkpointed DFS applied to the whole solution matrix.
func TestSnapshotRestoreTracesIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite sweep")
	}
	for _, suite := range solutions.All() {
		for _, problem := range problems.AllProblems() {
			prog, _, err := solutions.StandardProgram(suite, problem, false)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(len(suite.Mechanism) + 31*len(problem))))
			for _, seed := range []int64{1, 2, 7, 42} {
				base := kernel.NewSim(kernel.WithPolicy(kernel.Random(seed)), kernel.WithDepTrace())
				br := trace.NewRecorder(base)
				base.SetDecisionMark(br.LenCooperative)
				prog(base, br)
				baseErr := base.Run()
				schedule := base.Choices()
				visible := base.StepVisibility()

				// Checkpoint at a random visible step of the run.
				var candidates []int
				for i := 1; i < len(schedule); i++ {
					if i-1 < len(visible) && visible[i-1] {
						candidates = append(candidates, i)
					}
				}
				if len(candidates) == 0 {
					continue
				}
				depth := candidates[rng.Intn(len(candidates))]
				snap, err := base.SnapshotAt(depth)
				if err != nil {
					t.Fatalf("%s/%s seed %d: SnapshotAt(%d): %v",
						suite.Mechanism, problem, seed, depth, err)
				}
				baseTrace := br.Events()

				restored := kernel.NewSim(kernel.WithDepTrace())
				rr := trace.NewRecorder(restored)
				restored.SetDecisionMark(rr.LenCooperative)
				restored.Restore(snap, kernel.WithPolicy(kernel.Replay(schedule[depth:])))
				rr.ResumeFrom(baseTrace[:snap.Events])
				prog(restored, rr)
				restoredErr := restored.Run()

				if (baseErr == nil) != (restoredErr == nil) {
					t.Fatalf("%s/%s seed %d depth %d: base err %v, restored err %v",
						suite.Mechanism, problem, seed, depth, baseErr, restoredErr)
				}
				if got := rr.Events(); !reflect.DeepEqual(got, baseTrace) {
					t.Fatalf("%s/%s seed %d depth %d: restored trace diverged\nbase:\n%s\nrestored:\n%s",
						suite.Mechanism, problem, seed, depth, baseTrace, got)
				}
				if got, want := restored.RunFingerprint(), base.RunFingerprint(); got != want {
					t.Fatalf("%s/%s seed %d depth %d: run fingerprint %#x, want %#x",
						suite.Mechanism, problem, seed, depth, got, want)
				}
				// The dependency trace DPOR consumes must be equally
				// stable across snapshot/restore: prefix records served
				// from the snapshot, suffix re-recorded live, byte-equal
				// to the uncheckpointed run's.
				if got, want := restored.DepAccesses(), base.DepAccesses(); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s seed %d depth %d: restored dependency trace diverged\nbase: %v\nrestored: %v",
						suite.Mechanism, problem, seed, depth, want, got)
				}
				if got, want := restored.ReadySetIDs(), base.ReadySetIDs(); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s seed %d depth %d: restored ready-set ids diverged",
						suite.Mechanism, problem, seed, depth)
				}
				if got, want := restored.ReadyCauses(), base.ReadyCauses(); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s seed %d depth %d: restored ready causes diverged",
						suite.Mechanism, problem, seed, depth)
				}
			}
		}
	}
}

// zeroCkptCounters clears the counters that legitimately differ between
// the checkpointed and replay-from-root engines, leaving everything else
// for the byte-identity comparison.
func zeroCkptCounters(res Result) Result {
	res.Stats.CheckpointForks = 0
	res.Stats.SavedSteps = 0
	res.Stats.ReplayedSteps = 0
	return res
}

// The determinism contract of checkpointed DFS: apart from the three
// checkpoint counters, the Result is byte-identical to the
// replay-from-root engine at Workers 1, 4, and max — across findings,
// clean exhaustion, pruning, streaming, shrinking, and a starved
// checkpoint budget.
func TestCheckpointMatchesReplay(t *testing.T) {
	figure1 := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(pathexprsol.NewReadersPriority())(k, r)
	})
	monitor := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(monitorsol.NewReadersPriority())(k, r)
	})
	inc, ok := problems.IncrementalOracleFor(problems.NameReadersPriority)
	if !ok {
		t.Fatal("no incremental oracle for readers-priority")
	}
	cases := []struct {
		name   string
		prog   Program
		oracle Oracle
		opts   Options
	}{
		{"dfs-finding", figure1, problems.CheckReadersPriority,
			Options{RandomRuns: -1, DFSRuns: 2000, DFSDepth: 24}},
		{"clean-exhaustion", monitor, problems.CheckReadersPriority,
			Options{RandomRuns: -1, DFSRuns: 400, DFSDepth: 24}},
		{"pruned-pooled", monitor, problems.CheckReadersPriority,
			Options{RandomRuns: -1, DFSRuns: 400, DFSDepth: 24, Prune: true, Pool: true}},
		{"streamed-shrunk", figure1, problems.CheckReadersPriority,
			Options{RandomRuns: -1, DFSRuns: 2000, DFSDepth: 24, Pool: true,
				Stream: inc.New, Shrink: true}},
		{"starved-budget", monitor, problems.CheckReadersPriority,
			Options{RandomRuns: -1, DFSRuns: 400, DFSDepth: 24, Pool: true,
				CheckpointBudget: 2}},
	}
	workers := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			baseOpts := tc.opts
			baseOpts.Workers = 1
			base := Run(tc.prog, tc.oracle, baseOpts)
			for _, w := range workers {
				ckptOpts := tc.opts
				ckptOpts.Checkpoint = true
				ckptOpts.Workers = w
				ckpt := Run(tc.prog, tc.oracle, ckptOpts)
				if (base.Err == nil) != (ckpt.Err == nil) {
					t.Fatalf("workers=%d: err %v vs %v", w, base.Err, ckpt.Err)
				}
				bz, cz := zeroCkptCounters(base), zeroCkptCounters(ckpt)
				bz.Err, cz.Err = nil, nil
				if !reflect.DeepEqual(bz, cz) {
					t.Fatalf("workers=%d: checkpointed Result diverged from replay-from-root:\nbase: %+v\nckpt: %+v",
						w, bz, cz)
				}
			}
		})
	}
}

// Checkpointed DFS on a clean scenario must actually share prefixes:
// most runs fork (CheckpointForks), and the steps served from snapshots
// dominate the steps replayed through the full pipeline.
func TestCheckpointSavesSteps(t *testing.T) {
	prog := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(monitorsol.NewReadersPriority())(k, r)
	})
	res := Run(prog, problems.CheckReadersPriority,
		Options{RandomRuns: -1, DFSRuns: 400, DFSDepth: 24, Pool: true,
			Checkpoint: true, Workers: 1})
	if res.Found {
		t.Fatalf("unexpected finding: %+v", res)
	}
	if res.Stats.CheckpointForks == 0 {
		t.Fatal("no DFS run forked from a checkpoint")
	}
	if res.Stats.SavedSteps <= res.Stats.ReplayedSteps {
		t.Fatalf("SavedSteps = %d not greater than ReplayedSteps = %d (forks = %d)",
			res.Stats.SavedSteps, res.Stats.ReplayedSteps, res.Stats.CheckpointForks)
	}
}

// Two identical hunts produce byte-identical Result.Stats — the pin for
// the deterministic-core/live-view split: no wall-clock or pool state
// can leak into a Result.
func TestResultStatsBytesIdentical(t *testing.T) {
	prog := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(monitorsol.NewReadersPriority())(k, r)
	})
	opts := Options{RandomRuns: 20, DFSRuns: 100, Prune: true, Pool: true,
		Checkpoint: true, Shrink: true, DPOR: true}
	a := Run(prog, problems.CheckReadersPriority, opts)
	b := Run(prog, problems.CheckReadersPriority, opts)
	if a.Stats != b.Stats {
		t.Fatalf("Result.Stats differ between identical hunts:\n%+v\n%+v", a.Stats, b.Stats)
	}
	ab, err := json.Marshal(a.Stats)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b.Stats)
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Fatalf("Result.Stats bytes differ:\n%s\n%s", ab, bb)
	}
}
