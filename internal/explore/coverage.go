// Analytic schedule-space coverage (Options.DPOR).
//
// The baseline run's dependency trace induces a partial order on its
// steps — the same happens-before relation DPOR backtracks on — and the
// scenario's interleavings are exactly that order's linear extensions.
// Counting them follows the "Combinatorics of Barrier Synchronization"
// program: per-process step chains plus cross-process constraint edges
// form a DAG whose linear-extension count is computed by dynamic
// programming over down-sets. The per-proc chain structure keeps the
// down-set lattice small — a down-set is a vector of chain positions, so
// the state space is Π(n_p + 1), not 2^S — and when even that is too
// large the multinomial bound S! / Π n_p! (all constraints dropped)
// still upper-bounds the count, flagged inexact.
//
// The DAG deliberately uses only the *synchronization* edges of the
// dependency trace — readying causes and per-process cells (park/unpark,
// grants, hand-offs) — and drops the global trace-cell conflicts
// (kernel.DepObjTrace). Those conflicts exist to make the race detection
// conservative about oracle order-sensitivity; folding them into the
// denominator would serialize every recording step and collapse the
// count toward 1, understating the space the search actually ranges
// over.
package explore

import (
	"math"

	"repro/internal/kernel"
)

// maxCovStates caps the down-set DP's state space (product of per-proc
// chain lengths + 1). ~2M float64 memo entries ≈ 16 MB, transient.
const maxCovStates = 1 << 21

// coverageOf measures the schedule space of the scenario from a
// completed baseline run: log2 of the number of linear extensions of the
// run's happens-before order, and whether the count is exact or the
// multinomial upper bound.
func coverageOf(out runOut) (log2 float64, exact bool) {
	schedule := out.schedule
	steps := len(schedule)
	if steps > dporAnalysisCap {
		steps = dporAnalysisCap
	}
	if steps == 0 {
		return 0, true
	}

	// Flattened ready-set offsets and the executing process per step.
	off := make([]int, len(schedule))
	o := 0
	for i, c := range schedule {
		off[i] = o
		o += c.Ready
	}
	if o > len(out.readyIDs) || len(out.causes) < len(schedule) {
		return 0, false // no dependency records; nothing to count
	}
	var maxID int32
	for _, p := range out.readyIDs {
		if p > maxID {
			maxID = p
		}
	}
	nProcs := int(maxID) + 1
	stepProc := make([]int32, steps)
	for i := 0; i < steps; i++ {
		stepProc[i] = out.readyIDs[off[i]+schedule[i].Picked]
	}

	// Chain position of each step within its process.
	count := make([]int, nProcs) // steps per process
	pos := make([]int32, steps)
	for i := 0; i < steps; i++ {
		pos[i] = int32(count[stepProc[i]])
		count[stepProc[i]]++
	}

	// Cross-process predecessor edges: readying causes plus same-object
	// last-access adjacency (transitively sufficient — each step need
	// only wait for the latest prior access of each object it touches).
	type pred struct{ proc, pos int32 }
	preds := make([][]pred, steps)
	addPred := func(j, i int) {
		if i < 0 || i >= j || stepProc[i] == stepProc[j] {
			return // same-chain edges are implied by chain order
		}
		p := pred{proc: stepProc[i], pos: pos[i]}
		for _, q := range preds[j] {
			if q == p {
				return
			}
		}
		preds[j] = append(preds[j], p)
	}
	lastAcc := map[uint64]int32{}
	di := 0
	deps := out.deps
	for di < len(deps) && deps[di].Step < 0 {
		di++
	}
	for j := 0; j < steps; j++ {
		if c := out.causes[j]; c >= 0 {
			addPred(j, int(c))
		}
		start := di
		for di < len(deps) && deps[di].Step == int32(j) {
			if obj := deps[di].Obj; obj != kernel.DepObjTrace {
				if i, ok := lastAcc[obj]; ok {
					addPred(j, int(i))
				}
			}
			di++
		}
		for k := start; k < di; k++ {
			if obj := deps[k].Obj; obj != kernel.DepObjTrace {
				lastAcc[obj] = int32(j)
			}
		}
	}

	// Upper bound, always available: drop every cross edge and count the
	// interleavings of free chains, S! / Π n_p!.
	bound := lgamma(float64(steps) + 1)
	states := 1
	overflow := false
	for _, n := range count {
		bound -= lgamma(float64(n) + 1)
		if !overflow {
			states *= n + 1
			if states > maxCovStates {
				overflow = true
			}
		}
	}
	bound /= math.Ln2

	if overflow {
		return bound, false
	}

	// Exact count: memoized top-down DP over down-sets. A state is the
	// per-process vector of completed chain positions, encoded in mixed
	// radix; f(state) is the number of linear extensions of the remaining
	// steps. A process's next step is schedulable when every cross
	// predecessor (pp, pos) is already done: c[pp] > pos.
	stride := make([]int, nProcs)
	s := 1
	for p := 0; p < nProcs; p++ {
		stride[p] = s
		s *= count[p] + 1
	}
	// Step lookup: stepAt[p][n] = global index of process p's n-th step.
	stepAt := make([][]int32, nProcs)
	for p := range stepAt {
		stepAt[p] = make([]int32, 0, count[p])
	}
	for i := 0; i < steps; i++ {
		stepAt[stepProc[i]] = append(stepAt[stepProc[i]], int32(i))
	}
	memo := make([]float64, s)
	for i := range memo {
		memo[i] = -1
	}
	done := make([]int32, nProcs)
	var f func(idx int) float64
	f = func(idx int) float64 {
		if v := memo[idx]; v >= 0 {
			return v
		}
		total := 0.0
		complete := true
		for p := 0; p < nProcs; p++ {
			if int(done[p]) >= count[p] {
				continue
			}
			complete = false
			j := stepAt[p][done[p]]
			ok := true
			for _, q := range preds[j] {
				if done[q.proc] <= q.pos {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			done[p]++
			total += f(idx + stride[p])
			done[p]--
			if math.IsInf(total, 1) {
				break
			}
		}
		if complete {
			total = 1
		}
		memo[idx] = total
		return total
	}
	n := f(0)
	if math.IsInf(n, 1) || n <= 0 {
		return bound, false
	}
	return math.Log2(n), true
}

// lgamma is math.Lgamma without the sign (arguments here are ≥ 1).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// exploredFraction is the judged share of the schedule space: runs out
// of 2^log2Total, clamped to 1, and exactly 1 when the DFS frontier was
// exhausted — a reduced search that empties its frontier has covered
// every happens-before equivalence class regardless of raw run count.
func exploredFraction(runs int, exhausted bool, log2Total float64) float64 {
	if exhausted {
		return 1
	}
	if runs <= 0 {
		return 0
	}
	f := math.Exp2(math.Log2(float64(runs)) - log2Total)
	if f > 1 {
		return 1
	}
	return f
}
