// Dynamic partial-order reduction for the DFS phase (Options.DPOR).
//
// The plain DFS branches at every visible decision point, then relies on
// fingerprint pruning to dedup states after the fact. DPOR avoids
// scheduling the redundant siblings in the first place: after each run
// the driver reconstructs a happens-before relation from the kernel's
// dependency trace (kernel.WithDepTrace) via per-step vector clocks, and
// for every pair of conflicting steps not ordered by happens-before it
// pushes a backtrack point at the earlier step's branch group — schedule
// the later step's process there instead (a persistent set). If that
// process was not enabled at the branch group, every alternative is
// pushed (the conservative fallback). Runs whose steps all commute with
// their siblings push nothing, so independent interleavings are never
// enumerated.
//
// A sleep-set memory spans the scan: for each branch group the engine
// remembers which processes have already been scheduled from it — by an
// executed run passing through or by a proposal already pushed.
// Re-proposing such a process would re-run a continuation the search
// already owns, so it is suppressed. Without Prune a branch group is a
// choice prefix (byte-exact: identical prefixes drive identical runs, so
// the suppression loses nothing). With Prune it is a state fingerprint:
// equivalent states have equivalent continuations, so a (state, process)
// pair needs branching only once no matter how many prefixes reach the
// state — the two reductions compose per (state, process) pair rather
// than per decision point. Suppressing a whole point because its state
// was expanded before (what plain pruned DFS does) would be unsound
// here: the earlier expansion pushed only the siblings its own races
// demanded, not all of them.
//
// Everything here runs on the driver, over completed runs, in canonical
// LIFO order — helpers only speculate executions — so the reduced search
// is byte-deterministic at every Workers count. The dependency relation
// itself is deliberately conservative but heuristic (see kernel/deps.go);
// Options.DPORAudit is the correctness gate, mirroring PruneAudit.
package explore

import (
	"sort"

	"repro/internal/kernel"
)

// dporAnalysisCap bounds the number of scheduling steps the vector-clock
// pass walks per run. Runs longer than this (possible only with very
// deep scenarios) have races past the cap ignored; backtrack points can
// only land within Options.DFSDepth anyway, and the audit covers the
// loss like every other approximation here.
const dporAnalysisCap = 4096

// dporProposal is one backtrack point: branch to alternative alt at
// decision point i.
type dporProposal struct{ i, alt int }

// dporState is the per-scan reduction state: the sleep-set memory plus
// reusable analysis scratch, all mutated on the driver only.
type dporState struct {
	// groupSeen maps a branch group — the binary key of the choice
	// prefix before a decision point — to the process ids already
	// scheduled from it. Used without Prune.
	groupSeen map[string][]int32
	// stateSeen is groupSeen keyed by state fingerprint instead of
	// prefix. Used with Prune: equivalent states share one sleep set.
	stateSeen map[uint64][]int32

	// Per-run scratch, reused across runs.
	off      []int   // readyIDs offset per decision point
	stepProc []int32 // executing process id per step
	lastOf   []int32 // process id -> its latest step so far, -1 if none
	clocks   []int32 // flat per-step vector clocks, stride = max id + 1
	pclock   []int32 // pre-access clock of the step under analysis
	lastAcc  map[uint64]int32
	props    []dporProposal
	propSeen map[int64]bool
	pushedAt map[int]int
	keyBuf   []byte
}

func newDPORState() *dporState {
	return &dporState{
		groupSeen: map[string][]int32{},
		stateSeen: map[uint64][]int32{},
		lastAcc:   map[uint64]int32{},
		propSeen:  map[int64]bool{},
		pushedAt:  map[int]int{},
	}
}

// addGroupSeen records that process p has been scheduled from the branch
// group key; it reports false if p was already known there.
func (d *dporState) addGroupSeen(key []byte, p int32) bool {
	set := d.groupSeen[string(key)]
	for _, q := range set {
		if q == p {
			return false
		}
	}
	d.groupSeen[string(key)] = append(set, p)
	return true
}

// addStateSeen is addGroupSeen keyed by state fingerprint.
func (d *dporState) addStateSeen(fp uint64, p int32) bool {
	set := d.stateSeen[fp]
	for _, q := range set {
		if q == p {
			return false
		}
	}
	d.stateSeen[fp] = append(set, p)
	return true
}

// join folds the stored clock of step into dst (component-wise max).
func (d *dporState) join(dst []int32, step int) {
	src := d.clocks[step*len(dst) : (step+1)*len(dst)]
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// expand is DPOR's replacement for expandDFS: it analyzes the completed
// run's dependency trace and returns only the backtrack points the
// detected races demand, sorted like expandDFS's output (ascending
// branch depth, so checkpoint registration and LIFO pop order are
// unchanged). blocked counts the sibling alternatives within the node's
// own suffix that plain branching would have pushed and the reduction
// did not.
func (d *dporState) expand(prefix []kernel.Choice, out runOut, depth int, parallel bool, expanded map[uint64]bool, pruned *int) ([]*dfsNode, int) {
	schedule := out.schedule
	limit := len(schedule)
	if limit > depth {
		limit = depth
	}
	if limit > len(out.visible) {
		limit = len(out.visible)
	}
	if limit > len(out.fps) {
		limit = len(out.fps)
	}

	// Offsets of each decision's segment in the flattened ready-set ids.
	d.off = d.off[:0]
	off := 0
	for _, c := range schedule {
		d.off = append(d.off, off)
		off += c.Ready
	}
	if off > len(out.readyIDs) || len(out.causes) < len(schedule) {
		// No dependency records (defensive; the executor enables
		// WithDepTrace whenever DPOR is on): fall back to plain branching.
		return expandDFS(prefix, out, depth, parallel, expanded, pruned), 0
	}
	var maxID int32
	for _, p := range out.readyIDs {
		if p > maxID {
			maxID = p
		}
	}
	d.stepProc = d.stepProc[:0]
	for i, c := range schedule {
		d.stepProc = append(d.stepProc, out.readyIDs[d.off[i]+c.Picked])
	}

	// Sleep-set bookkeeping: every branchable decision this run passed
	// through has scheduled its picked process from that branch group —
	// a state with Prune (expanded non-nil), a choice prefix without.
	if expanded != nil {
		for i := 0; i < limit; i++ {
			if schedule[i].Ready >= 2 && out.visible[i] {
				d.addStateSeen(out.fps[i], d.stepProc[i])
			}
		}
	} else {
		d.keyBuf = d.keyBuf[:0]
		for i := 0; i < limit; i++ {
			if schedule[i].Ready >= 2 {
				d.addGroupSeen(d.keyBuf, d.stepProc[i])
			}
			d.keyBuf = appendScheduleKey(d.keyBuf, schedule[i:i+1])
		}
	}

	// Forward vector-clock pass. A step's clock is the join of its
	// process's previous step, the step that readied the process
	// (unpark/spawn edges), and the last accesses of the objects it
	// touches; component p holds the latest step of process p known to
	// happen before. A pair (i, j) accessing a common object from
	// different processes races iff i is not in j's pre-access clock.
	steps := len(schedule)
	if steps > dporAnalysisCap {
		steps = dporAnalysisCap
	}
	stride := int(maxID) + 1
	if need := steps * stride; cap(d.clocks) < need {
		d.clocks = make([]int32, need)
	} else {
		d.clocks = d.clocks[:need]
	}
	if cap(d.pclock) < stride {
		d.pclock = make([]int32, stride)
	}
	d.pclock = d.pclock[:stride]
	if cap(d.lastOf) < stride {
		d.lastOf = make([]int32, stride)
	}
	d.lastOf = d.lastOf[:stride]
	for i := range d.lastOf {
		d.lastOf[i] = -1
	}
	clear(d.lastAcc)
	d.props = d.props[:0]
	clear(d.propSeen)

	deps := out.deps
	di := 0
	for di < len(deps) && deps[di].Step < 0 {
		di++ // pre-run accesses precede every decision; nothing to backtrack
	}
	for j := 0; j < steps; j++ {
		q := d.stepProc[j]
		pc := d.pclock
		if last := d.lastOf[q]; last >= 0 {
			copy(pc, d.clocks[int(last)*stride:(int(last)+1)*stride])
		} else {
			for i := range pc {
				pc[i] = -1
			}
		}
		if c := out.causes[j]; c >= 0 && int(c) < j {
			d.join(pc, int(c))
		}
		start := di
		for di < len(deps) && deps[di].Step == int32(j) {
			if i, ok := d.lastAcc[deps[di].Obj]; ok {
				p := d.stepProc[i]
				if p != q && pc[p] < i {
					d.propose(int(i), q, out, limit, expanded, pruned)
				}
			}
			di++
		}
		jc := d.clocks[j*stride : (j+1)*stride]
		copy(jc, pc)
		for k := start; k < di; k++ {
			if i, ok := d.lastAcc[deps[k].Obj]; ok {
				d.join(jc, int(i))
			}
		}
		jc[q] = int32(j)
		d.lastOf[q] = int32(j)
		for k := start; k < di; k++ {
			d.lastAcc[deps[k].Obj] = int32(j)
		}
	}

	// Materialize the surviving proposals as frontier nodes, ascending
	// (depth, alternative) like expandDFS's push order.
	sort.Slice(d.props, func(a, b int) bool {
		if d.props[a].i != d.props[b].i {
			return d.props[a].i < d.props[b].i
		}
		return d.props[a].alt < d.props[b].alt
	})
	var children []*dfsNode
	clear(d.pushedAt)
	for _, pr := range d.props {
		branch := make([]kernel.Choice, pr.i+1)
		copy(branch, schedule[:pr.i])
		branch[pr.i] = kernel.Choice{Ready: schedule[pr.i].Ready, Picked: pr.alt}
		children = append(children, newDFSNode(branch, parallel))
		d.pushedAt[pr.i]++
	}
	blocked := 0
	for i := len(prefix); i < limit; i++ {
		if schedule[i].Ready >= 2 {
			blocked += schedule[i].Ready - 1 - d.pushedAt[i]
		}
	}
	return children, blocked
}

// propose adds a backtrack point at decision i, the earlier step of a
// detected race, aiming to schedule process q there. Proposals may land
// anywhere in the run — inside the node's inherited prefix too, which
// grows an ancestor's backtrack set; the scan's pop-time dedup keeps
// duplicates from re-running.
func (d *dporState) propose(i int, q int32, out runOut, limit int, expanded map[uint64]bool, pruned *int) {
	schedule := out.schedule
	if i < 0 || i >= limit || schedule[i].Ready < 2 {
		return
	}
	// With Prune, invisible decision points are not branchable (same
	// visibility reduction expandDFS applies): the step left no mark on
	// the recorded trace, so reordering it cannot change a verdict.
	if expanded != nil && !out.visible[i] {
		*pruned++
		return
	}
	ids := out.readyIDs[d.off[i] : d.off[i]+schedule[i].Ready]
	target := -1
	for a, id := range ids {
		if id == q {
			target = a
			break
		}
	}
	if target == schedule[i].Picked {
		return // the race partner is the step already taken here
	}
	if target >= 0 {
		d.proposeAlt(i, target, q, out, expanded, pruned)
		return
	}
	// q was not enabled at i: the persistent-set fallback branches every
	// alternative, since some enabled process must lead to q running.
	for a, id := range ids {
		if a != schedule[i].Picked {
			d.proposeAlt(i, a, id, out, expanded, pruned)
		}
	}
}

// proposeAlt records proposal (i, alt) targeting process p unless the
// run already proposed it or the sleep-set memory shows p was already
// scheduled from that branch group (a state with Prune, a prefix
// without; state-keyed suppressions count as pruned schedules).
func (d *dporState) proposeAlt(i, alt int, p int32, out runOut, expanded map[uint64]bool, pruned *int) {
	schedule := out.schedule
	key := int64(i)<<32 | int64(alt)
	if d.propSeen[key] {
		return
	}
	d.propSeen[key] = true
	if expanded != nil {
		if !d.addStateSeen(out.fps[i], p) {
			*pruned++
			return
		}
	} else {
		d.keyBuf = appendScheduleKey(d.keyBuf[:0], schedule[:i])
		if !d.addGroupSeen(d.keyBuf, p) {
			return
		}
	}
	d.props = append(d.props, dporProposal{i: i, alt: alt})
}
