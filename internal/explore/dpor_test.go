package explore

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/trace"
)

// deepFigure1Program is the Figure-1 anomaly embedded in a scaled
// workload: the same path-expression readers-priority solution, driven
// by a readers–writers scenario wide and deep enough (long writes,
// arrival gaps) that the anomaly hides in a ~2^36 schedule space instead
// of the footnote's 3-process sketch. This is the deep hunt partial-order
// reduction exists for.
func deepFigure1Program() Program {
	suite, _ := solutions.ByMechanism("pathexpr")
	cfg := problems.RWConfig{Readers: 3, Writers: 2, Rounds: 1,
		WriteYields: 6, ReadYields: 1, GapYields: 1}
	return func(k kernel.Kernel, r *trace.Recorder) {
		_ = problems.SpawnRW(k, suite.NewReadersPriority(k), r, cfg)
	}
}

// DPOR must reach the Figure-1 finding in at least 5x fewer schedules
// than fingerprint pruning alone on the deep scenario (the acceptance
// bar for this optimization), and the reduced finding must still replay.
func TestDPORReachesFindingFaster(t *testing.T) {
	opts := Options{RandomRuns: -1, DFSRuns: 200000, DFSDepth: 48, Prune: true, Pool: true}
	pruneOnly := Run(deepFigure1Program(), problems.CheckReadersPriority, opts)
	if !pruneOnly.Found {
		t.Fatalf("pruned DFS found nothing in %d runs", pruneOnly.Runs)
	}

	reduced := opts
	reduced.DPOR = true
	fast := Run(deepFigure1Program(), problems.CheckReadersPriority, reduced)
	if !fast.Found {
		t.Fatalf("DPOR found nothing in %d runs (backtracks %d, blocked %d)",
			fast.Runs, fast.Stats.BacktrackPoints, fast.Stats.DPORBlocked)
	}
	if fast.Err != nil {
		t.Fatalf("DPOR reported a kernel error: %v", fast.Err)
	}
	if fast.Runs*5 > pruneOnly.Runs {
		t.Fatalf("reduction saved too little: %d runs with DPOR vs %d with prune alone (want >= 5x fewer)",
			fast.Runs, pruneOnly.Runs)
	}
	if fast.Stats.BacktrackPoints == 0 || fast.Stats.DPORBlocked == 0 {
		t.Fatalf("reduction counters empty: %+v", fast.Stats)
	}
	if fast.Stats.ScheduleSpaceLog2 <= 0 {
		t.Fatalf("schedule space not measured: %+v", fast.Stats)
	}
	// The reduced finding must still replay to a real violation.
	tr, err := Replay(deepFigure1Program(), fast.Schedule, 0)
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if vs := problems.CheckReadersPriority(tr); len(vs) == 0 {
		t.Fatalf("reduced finding does not replay:\n%s", tr)
	}
	t.Logf("schedules to finding: %d with prune, %d with DPOR (%.1fx); space 2^%.1f, explored %.2g",
		pruneOnly.Runs, fast.Runs, float64(pruneOnly.Runs)/float64(fast.Runs),
		fast.Stats.ScheduleSpaceLog2, fast.Stats.ExploredFraction)
}

// TestDPORMatchesFull is the reduction's correctness contract over the
// full T4 suite: at Workers 1, 4, and max, the audited reduced search
// misses no violation rule the unreduced frontier surfaces, never runs
// more schedules than the unreduced engine, runs strictly fewer in
// aggregate, reports ExploredFraction, and returns byte-identical
// Results at every worker count.
func TestDPORMatchesFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite audit is slow")
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, suite := range solutions.All() {
		for _, problem := range problems.AllProblems() {
			suite, problem := suite, problem
			t.Run(suite.Mechanism+"/"+problem, func(t *testing.T) {
				t.Parallel()
				strict := !(suite.Mechanism == "pathexpr" && problem == problems.NameReadersPriority)
				prog, check, err := solutions.StandardProgram(suite, problem, strict)
				if err != nil {
					t.Fatal(err)
				}
				base := Options{
					RandomRuns: -1,
					DFSRuns:    400,
					DFSDepth:   12,
					DPORAudit:  true,
					Prune:      true,
					Pool:       true,
				}
				var ref Result
				for i, w := range workerCounts {
					opts := base
					opts.Workers = w
					res := Run(Program(prog), check, opts)
					if res.Err != nil && strings.Contains(res.Err.Error(), "dpor audit") {
						t.Fatalf("workers=%d: %v", w, res.Err)
					}
					if res.Stats.ExploredFraction <= 0 || res.Stats.ExploredFraction > 1 {
						t.Fatalf("workers=%d: ExploredFraction %v out of range", w, res.Stats.ExploredFraction)
					}
					if i == 0 {
						ref = res
						continue
					}
					if res.Found != ref.Found || res.Runs != ref.Runs || res.Stats != ref.Stats {
						t.Fatalf("workers=%d diverged from workers=%d:\n%+v\n%+v",
							w, workerCounts[0], res.Stats, ref.Stats)
					}
				}

				// The unreduced engine at the same budget: the reduced
				// tree is a subtree of the full one, so reduced never
				// needs more runs.
				plain := base
				plain.DPORAudit, plain.DPOR, plain.Prune = false, false, false
				plain.Workers = 1
				pres := Run(Program(prog), check, plain)
				if ref.Runs > pres.Runs {
					t.Fatalf("reduced search ran more schedules than unreduced: %d vs %d",
						ref.Runs, pres.Runs)
				}
				if pres.Found && !ref.Found {
					t.Fatalf("reduced search missed the unreduced finding (%d vs %d runs)",
						ref.Runs, pres.Runs)
				}
				if ref.Runs == pres.Runs && ref.Stats.Exhausted && !pres.Stats.Exhausted {
					t.Fatalf("reduced search exhausted at the full budget while unreduced did not")
				}
				if ref.Runs < pres.Runs {
					t.Logf("runs: %d reduced vs %d unreduced", ref.Runs, pres.Runs)
				}
			})
		}
	}
}

// On a scenario of truly independent processes the reduced search
// collapses to a handful of runs while plain DFS enumerates every
// interleaving — and the analytic count agrees exactly with what plain
// exhaustion executed.
func TestDPORIndependentProcessesCollapse(t *testing.T) {
	prog := Program(func(k kernel.Kernel, r *trace.Recorder) {
		for _, name := range []string{"a", "b"} {
			k.Spawn(name, func(p *kernel.Proc) {
				p.Yield()
				p.Yield()
			})
		}
	})
	exhaust := Options{RandomRuns: -1, DFSRuns: 1 << 20, DFSDepth: 64}
	plain := Run(prog, func(trace.Trace) []problems.Violation { return nil }, exhaust)
	if !plain.Stats.Exhausted {
		t.Fatalf("plain DFS did not exhaust (%d runs)", plain.Runs)
	}

	reduced := exhaust
	reduced.DPOR = true
	fast := Run(prog, func(trace.Trace) []problems.Violation { return nil }, reduced)
	if !fast.Stats.Exhausted {
		t.Fatalf("reduced DFS did not exhaust (%d runs)", fast.Runs)
	}
	if fast.Stats.ExploredFraction != 1 {
		t.Fatalf("exhausted search reports fraction %v", fast.Stats.ExploredFraction)
	}
	// Independent steps all commute: one schedule per equivalence class.
	if fast.Runs*4 > plain.Runs {
		t.Fatalf("independent processes barely reduced: %d vs %d runs", fast.Runs, plain.Runs)
	}
	// The analytic denominator is exact here and equals what plain
	// exhaustion actually enumerated: Runs minus one because the FIFO
	// baseline is judged once on its own and again as the DFS root.
	if !fast.Stats.ScheduleSpaceExact {
		t.Fatalf("expected an exact count, got bound 2^%.2f", fast.Stats.ScheduleSpaceLog2)
	}
	got := math.Round(math.Exp2(fast.Stats.ScheduleSpaceLog2))
	if int(got) != plain.Runs-1 {
		t.Fatalf("analytic count %v != %d enumerated schedules", got, plain.Runs-1)
	}
}

// exploredFraction is a pure function; pin its edge cases.
func TestExploredFraction(t *testing.T) {
	cases := []struct {
		runs      int
		exhausted bool
		log2      float64
		want      float64
	}{
		{0, false, 10, 0},           // nothing run yet
		{0, true, 10, 1},            // exhaustion wins regardless
		{1024, false, 10, 1},        // exactly the space
		{2048, false, 10, 1},        // clamped
		{512, false, 10, 0.5},       // half the space
		{1, false, 0, 1},            // single-schedule space
		{16, false, math.Inf(1), 0}, // unbounded space
	}
	for _, c := range cases {
		if got := exploredFraction(c.runs, c.exhausted, c.log2); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("exploredFraction(%d, %v, %v) = %v, want %v",
				c.runs, c.exhausted, c.log2, got, c.want)
		}
	}
}

// DPOR is rejected nowhere but composes everywhere: spot-check that the
// audit passes with the whole option surface enabled at once.
func TestDPORAuditFullComposition(t *testing.T) {
	inc, ok := problems.IncrementalOracleFor(problems.NameReadersPriority)
	if !ok {
		t.Fatal("no incremental oracle for readers-priority")
	}
	opts := Options{
		RandomRuns: 20,
		DFSRuns:    200,
		DFSDepth:   16,
		DPORAudit:  true,
		Prune:      true,
		Pool:       true,
		Checkpoint: true,
		Stream:     inc.New,
		Shrink:     true,
	}
	res := Run(figure1Program(), problems.CheckReadersPriority, opts)
	if res.Err != nil && strings.Contains(res.Err.Error(), "dpor audit") {
		t.Fatalf("audit failed under full composition: %v", res.Err)
	}
	if !res.Found {
		t.Fatalf("figure-1 anomaly not found under full composition (%d runs)", res.Runs)
	}
	if res.Stats.ScheduleSpaceLog2 <= 0 {
		t.Fatalf("schedule space not measured: %+v", res.Stats)
	}
}
