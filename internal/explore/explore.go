// Package explore hunts for oracle violations by exploring schedules of a
// simulated program.
//
// The paper's footnote 3 identifies a specific interleaving under which
// the Figure-1 path-expression solution misbehaves; Bloom constructed it
// by hand. This package mechanizes the construction: a program is run
// under many schedules — seeded random sampling and bounded systematic
// enumeration over the SimKernel's recorded choice sequences — until some
// run's trace fails its oracle. The offending schedule is returned as a
// replayable choice sequence, making the anomaly a reproducible artifact
// rather than an argument.
//
// Exploration is stateless-model-checking shaped but deliberately simple:
// programs under test are small scenario constructors, so bounded DFS
// over scheduling choices (without partial-order reduction) is enough.
package explore

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/trace"
)

// Program builds one run of the system under test on a fresh kernel and
// recorder. It must spawn all processes (it is called before Run) and be
// deterministic apart from scheduling: exploration assumes two runs with
// the same schedule produce the same trace.
type Program func(k kernel.Kernel, r *trace.Recorder)

// Oracle judges a completed run's trace.
type Oracle func(tr trace.Trace) []problems.Violation

// Result describes one exploration outcome.
type Result struct {
	// Found reports whether a violating schedule was discovered.
	Found bool
	// Schedule is the replayable choice sequence of the violating run.
	Schedule []kernel.Choice
	// Trace is the violating run's trace.
	Trace trace.Trace
	// Violations are the oracle findings for that run.
	Violations []problems.Violation
	// Runs is the number of schedules executed.
	Runs int
	// Err is set when the finding is a kernel error (deadlock, livelock)
	// rather than an oracle violation.
	Err error
}

// Options bounds the exploration.
type Options struct {
	// RandomRuns is the number of seeded-random schedules to sample
	// (seeds 1..RandomRuns). Default 200; negative disables the random
	// phase entirely (DFS-only exploration).
	RandomRuns int
	// DFSRuns bounds the number of systematic runs (0 disables DFS).
	DFSRuns int
	// DFSDepth bounds the length of the choice prefix the DFS branches
	// on; beyond it, runs continue FIFO. Default 40.
	DFSDepth int
	// MaxSteps is the per-run kernel step bound. Default 100000.
	MaxSteps int64
	// IgnoreKernelErrors skips runs that deadlock or hit the step limit
	// instead of counting them as findings. By default a kernel error is
	// a finding (with Violations nil and Err set).
	IgnoreKernelErrors bool
}

func (o Options) withDefaults() Options {
	if o.RandomRuns == 0 {
		o.RandomRuns = 200
	}
	if o.RandomRuns < 0 {
		o.RandomRuns = 0
	}
	if o.DFSDepth == 0 {
		o.DFSDepth = 40
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 100000
	}
	return o
}

// runOnce executes the program under the given policy and returns the
// kernel (for its recorded choices), the trace, and the kernel error.
func runOnce(prog Program, policy kernel.Policy, maxSteps int64) (*kernel.SimKernel, trace.Trace, error) {
	k := kernel.NewSim(kernel.WithPolicy(policy), kernel.WithMaxSteps(maxSteps))
	r := trace.NewRecorder(k)
	prog(k, r)
	err := k.Run()
	return k, r.Events(), err
}

// judge converts one run into a Result if it is a finding.
func judge(k *kernel.SimKernel, tr trace.Trace, err error, oracle Oracle, opts Options, runs int) (Result, bool) {
	if err != nil {
		if opts.IgnoreKernelErrors {
			return Result{}, false
		}
		return Result{Found: true, Schedule: k.Choices(), Trace: tr, Err: err, Runs: runs}, true
	}
	if vs := oracle(tr); len(vs) > 0 {
		return Result{Found: true, Schedule: k.Choices(), Trace: tr, Violations: vs, Runs: runs}, true
	}
	return Result{}, false
}

// Run explores schedules of prog until the oracle rejects one or the
// budget is exhausted.
func Run(prog Program, oracle Oracle, opts Options) Result {
	opts = opts.withDefaults()
	runs := 0

	// Phase 0: the deterministic FIFO baseline.
	k, tr, err := runOnce(prog, kernel.FIFO(), opts.MaxSteps)
	runs++
	if res, found := judge(k, tr, err, oracle, opts, runs); found {
		return res
	}

	// Phase 1: seeded random sampling.
	for seed := int64(1); seed <= int64(opts.RandomRuns); seed++ {
		k, tr, err := runOnce(prog, kernel.Random(seed), opts.MaxSteps)
		runs++
		if res, found := judge(k, tr, err, oracle, opts, runs); found {
			return res
		}
	}

	// Phase 2: bounded DFS over choice prefixes. The frontier holds
	// prefixes to try; running Replay(prefix) extends it FIFO beyond the
	// prefix, and the recorded choices tell us where alternatives exist.
	frontier := [][]kernel.Choice{nil}
	seen := map[string]bool{}
	for len(frontier) > 0 && runs-1-opts.RandomRuns < opts.DFSRuns {
		prefix := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		key := fmt.Sprint(prefix)
		if seen[key] {
			continue
		}
		seen[key] = true

		k, tr, err := runOnce(prog, kernel.Replay(prefix), opts.MaxSteps)
		runs++
		if res, found := judge(k, tr, err, oracle, opts, runs); found {
			return res
		}
		// Branch: for each decision point within depth (at or beyond the
		// prefix), schedule the alternatives not taken.
		choices := k.Choices()
		limit := len(choices)
		if limit > opts.DFSDepth {
			limit = opts.DFSDepth
		}
		for i := len(prefix); i < limit; i++ {
			for alt := 0; alt < choices[i].Ready; alt++ {
				if alt == choices[i].Picked {
					continue
				}
				branch := make([]kernel.Choice, i+1)
				copy(branch, choices[:i])
				branch[i] = kernel.Choice{Ready: choices[i].Ready, Picked: alt}
				frontier = append(frontier, branch)
			}
		}
	}
	return Result{Runs: runs}
}

// Replay re-executes prog under the given schedule and returns its trace
// and kernel error — used to double-check and to render findings.
func Replay(prog Program, schedule []kernel.Choice, maxSteps int64) (trace.Trace, error) {
	if maxSteps == 0 {
		maxSteps = 100000
	}
	_, tr, err := runOnce(prog, kernel.Replay(schedule), maxSteps)
	return tr, err
}
