// Package explore hunts for oracle violations by exploring schedules of a
// simulated program.
//
// The paper's footnote 3 identifies a specific interleaving under which
// the Figure-1 path-expression solution misbehaves; Bloom constructed it
// by hand. This package mechanizes the construction: a program is run
// under many schedules — seeded random sampling and bounded systematic
// enumeration over the SimKernel's recorded choice sequences — until some
// run's trace fails its oracle. The offending schedule is returned as a
// replayable choice sequence, making the anomaly a reproducible artifact
// rather than an argument.
//
// Exploration is stateless-model-checking shaped but deliberately simple:
// programs under test are small scenario constructors, so bounded DFS
// over scheduling choices (without partial-order reduction) is enough.
//
// # Parallelism and determinism
//
// Run executes schedules on Options.Workers goroutines (default: all
// cores) while keeping its result independent of the worker count. The
// trick is speculation rather than racing: a single driver consumes run
// outcomes in the canonical sequential order (seed order for the random
// phase, LIFO frontier order for DFS), and helper goroutines merely
// execute upcoming schedules ahead of time. Whatever finding the
// sequential engine would have reported, the parallel engine reports —
// same Schedule, same Runs count — because every run is deterministic
// given its policy, and the driver's walk over outcomes is unchanged.
// Workers: 1 spawns no helpers at all and is literally the sequential
// engine.
package explore

import (
	"runtime"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/trace"
)

// Program builds one run of the system under test on a fresh kernel and
// recorder. It must spawn all processes (it is called before Run) and be
// deterministic apart from scheduling: exploration assumes two runs with
// the same schedule produce the same trace. Programs must also be safe to
// run on several kernels concurrently (each invocation gets its own kernel
// and recorder; sharing mutable state between invocations would break
// determinism anyway).
type Program func(k kernel.Kernel, r *trace.Recorder)

// Oracle judges a completed run's trace.
type Oracle func(tr trace.Trace) []problems.Violation

// Result describes one exploration outcome.
type Result struct {
	// Found reports whether a violating schedule was discovered.
	Found bool
	// Schedule is the replayable choice sequence of the violating run.
	Schedule []kernel.Choice
	// Trace is the violating run's trace. When a streaming checker cut
	// the run short (Options.Stream) it is the partial history up to the
	// violation.
	Trace trace.Trace
	// Violations are the oracle findings for that run.
	Violations []problems.Violation
	// Runs is the number of schedules judged, counting the violating one.
	// Speculative runs executed by helper workers past the finding are not
	// counted, so Runs is identical for every Workers setting.
	Runs int
	// Pruned counts sibling schedules the DFS phase skipped via
	// fingerprint pruning; always 0 unless Options.Prune. Like Runs it is
	// driver-side bookkeeping, identical for every Workers setting.
	Pruned int
	// MinSchedule is the 1-minimal violating schedule the shrinker
	// produced (Options.Shrink): it still triggers the same violation, and
	// removing any single choice from it no longer does. Nil when
	// shrinking was off or the finding was not shrinkable. MinSchedule is
	// canonicalized — every Choice records the actual ready count observed
	// at its decision point, so it replays under kernel.ExactReplay.
	MinSchedule []kernel.Choice
	// ShrinkRuns is the number of replays the shrinker executed. Shrink
	// replays are not counted in Runs, so enabling Shrink changes neither
	// Runs nor anything else about how the finding was reached.
	ShrinkRuns int
	// Stats is the deterministic counter core of the final progress
	// snapshot, byte-identical across Workers settings like the rest of
	// the Result. The live observability fields (wall clock, throughput,
	// pool occupancy) exist only in the Stats snapshots delivered to
	// Options.Progress. With Options.Checkpoint the CheckpointForks,
	// SavedSteps, and ReplayedSteps counters quantify prefix sharing;
	// they are the one part of a Result that legitimately differs
	// between the checkpointed and replay-from-root engines.
	Stats StatsCore
	// Err is set when the finding is a kernel error (deadlock, livelock)
	// rather than an oracle violation, or when a PruneAudit cross-check
	// failed.
	Err error
}

// Options bounds the exploration.
type Options struct {
	// RandomRuns is the number of seeded-random schedules to sample
	// (seeds 1..RandomRuns). Default 200; negative disables the random
	// phase entirely (DFS-only exploration).
	RandomRuns int
	// DFSRuns bounds the number of systematic runs (0 disables DFS).
	DFSRuns int
	// DFSDepth bounds the length of the choice prefix the DFS branches
	// on; beyond it, runs continue FIFO. Default 40.
	DFSDepth int
	// MaxSteps is the per-run kernel step bound. Default 100000.
	MaxSteps int64
	// IgnoreKernelErrors skips runs that deadlock or hit the step limit
	// instead of counting them as findings. By default a kernel error is
	// a finding (with Violations nil and Err set).
	IgnoreKernelErrors bool
	// Workers is the number of goroutines executing schedules. 0 means
	// runtime.GOMAXPROCS(0). The Result is the same for every value (see
	// the package comment); Workers: 1 pins the sequential engine.
	Workers int
	// Prune enables schedule-space pruning in the DFS phase: decision
	// points whose kernel-state fingerprint was already branched from are
	// not branched again, and alternatives at invisible (pure-yield) steps
	// are skipped. Pruning typically reaches the first violation in far
	// fewer runs; it is heuristic (the fingerprint cannot see user data
	// state), so PruneAudit exists as a cross-check.
	Prune bool
	// PruneAudit runs the DFS budget twice — pruned and unpruned, both to
	// completion — and reports an error finding if the unpruned frontier
	// surfaced any violation rule the pruned search missed. It implies
	// Prune for the reported Result. Meant for test suites, not hunting.
	PruneAudit bool
	// Pool recycles kernels, recorders, and their internal buffers across
	// runs (kernel.SimKernel.Reset) instead of allocating fresh ones, and
	// hands findings out as copies. Purely a throughput knob: the Result
	// is identical with and without it.
	Pool bool
	// Stream, when non-nil, constructs a per-run streaming checker
	// mirroring the batch oracle (problems.IncrementalOracleFor). Runs
	// are judged by the stream — violating runs are cut short at the
	// first violation via kernel.SimKernel.Stop, and completed runs skip
	// the batch oracle entirely. The checker must agree with the oracle
	// on complete traces.
	Stream func() problems.StreamChecker
	// DPOR enables dynamic partial-order reduction in the DFS phase: the
	// kernel records which shared objects every scheduling step accessed
	// (kernel.WithDepTrace), and instead of branching at every visible
	// decision point the driver walks each completed run's dependency
	// trace, detects pairs of conflicting steps not ordered by
	// happens-before, and pushes a backtrack point at the earlier step's
	// branch group only (persistent sets). A sleep-set memory suppresses
	// re-proposing a process already scheduled from the same branch
	// group. The reduction composes with Prune (proposal points are
	// fingerprint-deduped), Pool, Stream, Shrink, and Checkpoint
	// (backtrack points register against checkpoint branch groups), and
	// all decisions are made on the driver in canonical order, so the
	// Result stays byte-identical at every Workers count. Like Prune the
	// dependency relation is a conservative heuristic; DPORAudit is the
	// cross-check. Result.Stats reports BacktrackPoints, DPORBlocked,
	// and the analytic ExploredFraction (see coverage.go).
	DPOR bool
	// DPORAudit runs the DFS budget twice — reduced and fully unreduced,
	// both to completion — and reports an error finding if the unreduced
	// frontier surfaced any violation rule the reduced search missed. It
	// implies DPOR for the reported Result. Meant for test suites and CI,
	// not hunting.
	DPORAudit bool
	// Checkpoint enables prefix-sharing DFS: after each clean run the
	// engine captures a kernel snapshot at every decision point it
	// branched from (kernel.SnapshotAt), and sibling schedules fork from
	// the checkpoint (kernel.WithRestore) instead of replaying their
	// whole prefix from the root — the re-driven prefix skips the
	// scheduler's per-step pipeline and the recorder serves prefix
	// events from the snapshot. Composes with Prune, Pool, Stream, and
	// Shrink. The Result is byte-identical to the replay-from-root
	// engine at every Workers count, apart from the
	// CheckpointForks/SavedSteps/ReplayedSteps counters in Result.Stats
	// that quantify the sharing.
	Checkpoint bool
	// CheckpointBudget bounds the number of live checkpoints (each holds
	// copies of its prefix's schedule, per-step artifacts, and trace
	// events). Over budget, the least valuable checkpoint is evicted:
	// fewest pending sibling schedules first — LRU weighted by remaining
	// subtree size — with ties broken least-recently-forked. Default 256.
	CheckpointBudget int
	// Shrink minimizes the finding's schedule by delta debugging before
	// Run returns: chunks of choices are removed and remaining choices
	// substituted with the FIFO default, re-running each candidate under
	// replay and re-judging it with the same oracle, until the schedule is
	// 1-minimal. The result lands in Result.MinSchedule; the replays are
	// counted in Result.ShrinkRuns, not Runs. Shrinking runs on the driver
	// and reuses the executor's (possibly pooled) kernels, so it is cheap
	// and Workers-independent.
	Shrink bool
	// Progress, when non-nil, receives Stats snapshots from the driver as
	// the search advances — per phase transition and per judged run.
	// Called on the driver goroutine; keep it cheap (renderers should
	// throttle themselves). Progress observes the search but must not
	// influence it.
	Progress func(Stats)
}

func (o Options) withDefaults() Options {
	if o.RandomRuns == 0 {
		o.RandomRuns = 200
	}
	if o.RandomRuns < 0 {
		o.RandomRuns = 0
	}
	if o.DFSDepth == 0 {
		o.DFSDepth = 40
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 100000
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.PruneAudit {
		o.Prune = true
	}
	if o.DPORAudit {
		o.DPOR = true
	}
	if o.CheckpointBudget == 0 {
		o.CheckpointBudget = 256
	}
	return o
}

// judge converts one run into a Result if it is a finding. Findings are
// handed out as copies: runOut's slices are views into (possibly pooled)
// executor state, and a Result outlives the run that produced it.
func judge(out runOut, oracle Oracle, opts Options, runs int) (Result, bool) {
	if out.err != nil {
		if opts.IgnoreKernelErrors {
			return Result{}, false
		}
		return finding(out, nil, out.err, runs), true
	}
	if out.streamed {
		// The streaming checker judged this run event by event; a
		// completed run with no stream findings is clean, so the batch
		// oracle is skipped entirely.
		if len(out.streamVs) > 0 {
			return finding(out, append([]problems.Violation(nil), out.streamVs...), nil, runs), true
		}
		return Result{}, false
	}
	if vs := oracle(out.tr); len(vs) > 0 {
		return finding(out, vs, nil, runs), true
	}
	return Result{}, false
}

func finding(out runOut, vs []problems.Violation, err error, runs int) Result {
	return Result{
		Found:      true,
		Schedule:   append([]kernel.Choice(nil), out.schedule...),
		Trace:      append(trace.Trace(nil), out.tr...),
		Violations: vs,
		Err:        err,
		Runs:       runs,
	}
}

// Run explores schedules of prog until the oracle rejects one or the
// budget is exhausted. The result does not depend on Options.Workers.
func Run(prog Program, oracle Oracle, opts Options) Result {
	opts = opts.withDefaults()
	e := newExecutor(opts)
	defer e.close()
	t := newTracker(e, opts)

	res := runPhases(e, prog, oracle, opts, t)
	if opts.Shrink && res.Found {
		t.phase("shrink")
		shrinkResult(e, prog, oracle, opts, &res, t)
	}
	res.Stats = t.deterministic(&res)
	t.st.StatsCore = res.Stats
	t.emit()
	return res
}

// runPhases is the search itself: FIFO baseline, seeded random sampling,
// bounded DFS.
func runPhases(e *executor, prog Program, oracle Oracle, opts Options, t *tracker) Result {
	// Phase 0: the deterministic FIFO baseline.
	t.phase("baseline")
	out := e.run(prog, kernel.FIFO())
	if opts.DPOR {
		// The baseline run's happens-before order is the analytic
		// denominator: its linear-extension count is the scenario's total
		// interleaving count (see coverage.go).
		log2, exact := coverageOf(out)
		t.noteCoverage(log2, exact)
	}
	t.ran()
	if res, found := judge(out, oracle, opts, t.st.Runs); found {
		return res
	}
	e.release(out)

	// Phase 1: seeded random sampling.
	if res, found := randomPhase(e, prog, oracle, opts, t); found {
		return res
	}

	// Phase 2: bounded DFS over choice prefixes. Running Replay(prefix)
	// extends the prefix FIFO, and the recorded choices tell us where
	// alternatives exist.
	return dfsPhase(e, prog, oracle, opts, t)
}

// Replay re-executes prog under the given schedule and returns its trace
// and kernel error — used to double-check and to render findings.
func Replay(prog Program, schedule []kernel.Choice, maxSteps int64) (trace.Trace, error) {
	if maxSteps == 0 {
		maxSteps = 100000
	}
	e := newExecutor(Options{MaxSteps: maxSteps})
	out := e.run(prog, kernel.Replay(schedule))
	return append(trace.Trace(nil), out.tr...), out.err
}
