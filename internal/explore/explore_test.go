package explore

import (
	"errors"
	"testing"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions/monitorsol"
	"repro/internal/solutions/pathexprsol"
	"repro/internal/trace"
)

// rwScenario builds the footnote-3 arrival pattern: one writer gets in,
// then a reader and a second writer arrive while the write is in
// progress.
func rwScenario(db problems.RWStore) Program {
	return func(k kernel.Kernel, r *trace.Recorder) {
		k.Spawn("writer1", func(p *kernel.Proc) {
			r.Request(p, problems.OpWrite, 0)
			db.Write(p, func() {
				r.Enter(p, problems.OpWrite, 0)
				for i := 0; i < 6; i++ {
					p.Yield() // long write: others arrive meanwhile
				}
				r.Exit(p, problems.OpWrite, 0)
			})
		})
		k.Spawn("reader", func(p *kernel.Proc) {
			p.Yield() // arrive during the write
			r.Request(p, problems.OpRead, 0)
			db.Read(p, func() {
				r.Enter(p, problems.OpRead, 0)
				p.Yield()
				r.Exit(p, problems.OpRead, 0)
			})
		})
		k.Spawn("writer2", func(p *kernel.Proc) {
			p.Yield()
			p.Yield()
			r.Request(p, problems.OpWrite, 0)
			db.Write(p, func() {
				r.Enter(p, problems.OpWrite, 0)
				p.Yield()
				r.Exit(p, problems.OpWrite, 0)
			})
		})
	}
}

// The paper's central claim, mechanized: exploring schedules of the
// Figure-1 path-expression solution finds a readers-priority violation
// (footnote 3).
func TestFigure1AnomalyFound(t *testing.T) {
	// The constructor runs inside the Program so each schedule gets a
	// fresh solution instance.
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(pathexprsol.NewReadersPriority())(k, r)
	})
	res := Run(perRun, problems.CheckReadersPriority, Options{RandomRuns: 300, DFSRuns: 500})
	if !res.Found {
		t.Fatalf("anomaly not found in %d runs", res.Runs)
	}
	if res.Err != nil {
		t.Fatalf("found a kernel error (%v), want a priority violation", res.Err)
	}
	// The finding must be replayable.
	tr, err := Replay(Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(pathexprsol.NewReadersPriority())(k, r)
	}), res.Schedule, 0)
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if vs := problems.CheckReadersPriority(tr); len(vs) == 0 {
		t.Fatalf("replayed schedule shows no violation:\n%s", tr)
	}
}

// The monitor readers-priority solution survives the same exploration.
func TestMonitorReadersPriorityClean(t *testing.T) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(monitorsol.NewReadersPriority())(k, r)
	})
	res := Run(perRun, problems.CheckReadersPriority, Options{RandomRuns: 150, DFSRuns: 300})
	if res.Found {
		t.Fatalf("unexpected finding after %d runs: %v err=%v\n%s",
			res.Runs, res.Violations, res.Err, res.Trace)
	}
	if res.Runs < 150 {
		t.Fatalf("only %d runs executed", res.Runs)
	}
}

// Exploration reports deadlocks as findings.
func TestDeadlockIsAFinding(t *testing.T) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		k.Spawn("stuck", func(p *kernel.Proc) { p.Park() })
	})
	res := Run(perRun, func(trace.Trace) []problems.Violation { return nil },
		Options{RandomRuns: 1, DFSRuns: 0})
	if !res.Found || !errors.Is(res.Err, kernel.ErrDeadlock) {
		t.Fatalf("res = %+v", res)
	}
}

// With TreatKernelErrorAsViolation off, deadlocks are skipped.
func TestKernelErrorSuppressed(t *testing.T) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		k.Spawn("stuck", func(p *kernel.Proc) { p.Park() })
	})
	opts := Options{RandomRuns: 3, DFSRuns: 0}
	opts.IgnoreKernelErrors = true
	res := Run(perRun, func(trace.Trace) []problems.Violation { return nil }, opts)
	if res.Found {
		t.Fatalf("res = %+v", res)
	}
}

// A trivially clean program exhausts its budget without findings, and the
// run counter accounts for FIFO + random + DFS phases.
func TestCleanProgramExhaustsBudget(t *testing.T) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		k.Spawn("a", func(p *kernel.Proc) { p.Yield() })
		k.Spawn("b", func(p *kernel.Proc) { p.Yield() })
	})
	res := Run(perRun, func(trace.Trace) []problems.Violation { return nil },
		Options{RandomRuns: 10, DFSRuns: 25})
	if res.Found {
		t.Fatalf("unexpected finding: %+v", res)
	}
	if res.Runs < 11 {
		t.Fatalf("runs = %d, want at least FIFO + 10 random", res.Runs)
	}
}

func BenchmarkExplorationRun(b *testing.B) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(monitorsol.NewReadersPriority())(k, r)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(perRun, problems.CheckReadersPriority, Options{RandomRuns: 5, DFSRuns: 0})
		if res.Found {
			b.Fatal("unexpected finding")
		}
	}
}

// Systematic DFS alone (no random sampling) also finds the footnote-3
// anomaly: the interleaving space of the scenario is small enough for
// bounded enumeration, which is the stronger guarantee — the bug cannot
// hide from the search.
func TestFigure1AnomalyFoundByDFSAlone(t *testing.T) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(pathexprsol.NewReadersPriority())(k, r)
	})
	res := Run(perRun, problems.CheckReadersPriority,
		Options{RandomRuns: -1, DFSRuns: 2000, DFSDepth: 24})
	if !res.Found {
		t.Fatalf("anomaly not found by DFS in %d runs", res.Runs)
	}
}
