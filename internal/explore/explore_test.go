package explore

import (
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions/monitorsol"
	"repro/internal/solutions/pathexprsol"
	"repro/internal/trace"
)

// rwScenario builds the footnote-3 arrival pattern: one writer gets in,
// then a reader and a second writer arrive while the write is in
// progress.
func rwScenario(db problems.RWStore) Program {
	return func(k kernel.Kernel, r *trace.Recorder) {
		k.Spawn("writer1", func(p *kernel.Proc) {
			r.Request(p, problems.OpWrite, trace.NoArg)
			db.Write(p, func() {
				r.Enter(p, problems.OpWrite, trace.NoArg)
				for i := 0; i < 6; i++ {
					p.Yield() // long write: others arrive meanwhile
				}
				r.Exit(p, problems.OpWrite, trace.NoArg)
			})
		})
		k.Spawn("reader", func(p *kernel.Proc) {
			p.Yield() // arrive during the write
			r.Request(p, problems.OpRead, trace.NoArg)
			db.Read(p, func() {
				r.Enter(p, problems.OpRead, trace.NoArg)
				p.Yield()
				r.Exit(p, problems.OpRead, trace.NoArg)
			})
		})
		k.Spawn("writer2", func(p *kernel.Proc) {
			p.Yield()
			p.Yield()
			r.Request(p, problems.OpWrite, trace.NoArg)
			db.Write(p, func() {
				r.Enter(p, problems.OpWrite, trace.NoArg)
				p.Yield()
				r.Exit(p, problems.OpWrite, trace.NoArg)
			})
		})
	}
}

// The paper's central claim, mechanized: exploring schedules of the
// Figure-1 path-expression solution finds a readers-priority violation
// (footnote 3).
func TestFigure1AnomalyFound(t *testing.T) {
	// The constructor runs inside the Program so each schedule gets a
	// fresh solution instance.
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(pathexprsol.NewReadersPriority())(k, r)
	})
	res := Run(perRun, problems.CheckReadersPriority, Options{RandomRuns: 300, DFSRuns: 500})
	if !res.Found {
		t.Fatalf("anomaly not found in %d runs", res.Runs)
	}
	if res.Err != nil {
		t.Fatalf("found a kernel error (%v), want a priority violation", res.Err)
	}
	// The finding must be replayable.
	tr, err := Replay(Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(pathexprsol.NewReadersPriority())(k, r)
	}), res.Schedule, 0)
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if vs := problems.CheckReadersPriority(tr); len(vs) == 0 {
		t.Fatalf("replayed schedule shows no violation:\n%s", tr)
	}
}

// The monitor readers-priority solution survives the same exploration.
func TestMonitorReadersPriorityClean(t *testing.T) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(monitorsol.NewReadersPriority())(k, r)
	})
	res := Run(perRun, problems.CheckReadersPriority, Options{RandomRuns: 150, DFSRuns: 300})
	if res.Found {
		t.Fatalf("unexpected finding after %d runs: %v err=%v\n%s",
			res.Runs, res.Violations, res.Err, res.Trace)
	}
	if res.Runs < 150 {
		t.Fatalf("only %d runs executed", res.Runs)
	}
}

// Exploration reports deadlocks as findings.
func TestDeadlockIsAFinding(t *testing.T) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		k.Spawn("stuck", func(p *kernel.Proc) { p.Park() })
	})
	res := Run(perRun, func(trace.Trace) []problems.Violation { return nil },
		Options{RandomRuns: 1, DFSRuns: 0})
	if !res.Found || !errors.Is(res.Err, kernel.ErrDeadlock) {
		t.Fatalf("res = %+v", res)
	}
}

// With TreatKernelErrorAsViolation off, deadlocks are skipped.
func TestKernelErrorSuppressed(t *testing.T) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		k.Spawn("stuck", func(p *kernel.Proc) { p.Park() })
	})
	opts := Options{RandomRuns: 3, DFSRuns: 0}
	opts.IgnoreKernelErrors = true
	res := Run(perRun, func(trace.Trace) []problems.Violation { return nil }, opts)
	if res.Found {
		t.Fatalf("res = %+v", res)
	}
}

// A trivially clean program exhausts its budget without findings, and the
// run counter accounts for FIFO + random + DFS phases.
func TestCleanProgramExhaustsBudget(t *testing.T) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		k.Spawn("a", func(p *kernel.Proc) { p.Yield() })
		k.Spawn("b", func(p *kernel.Proc) { p.Yield() })
	})
	res := Run(perRun, func(trace.Trace) []problems.Violation { return nil },
		Options{RandomRuns: 10, DFSRuns: 25})
	if res.Found {
		t.Fatalf("unexpected finding: %+v", res)
	}
	if res.Runs < 11 {
		t.Fatalf("runs = %d, want at least FIFO + 10 random", res.Runs)
	}
}

func BenchmarkExplorationRun(b *testing.B) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(monitorsol.NewReadersPriority())(k, r)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(perRun, problems.CheckReadersPriority, Options{RandomRuns: 5, DFSRuns: 0})
		if res.Found {
			b.Fatal("unexpected finding")
		}
	}
}

// Systematic DFS alone (no random sampling) also finds the footnote-3
// anomaly: the interleaving space of the scenario is small enough for
// bounded enumeration, which is the stronger guarantee — the bug cannot
// hide from the search.
func TestFigure1AnomalyFoundByDFSAlone(t *testing.T) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(pathexprsol.NewReadersPriority())(k, r)
	})
	res := Run(perRun, problems.CheckReadersPriority,
		Options{RandomRuns: -1, DFSRuns: 2000, DFSDepth: 24})
	if !res.Found {
		t.Fatalf("anomaly not found by DFS in %d runs", res.Runs)
	}
}

// Regression for the DFS budget: the DFS phase must execute exactly
// DFSRuns schedules (not fewer) when the frontier is rich enough, with the
// run counter accounting FIFO + random + DFS exactly. The old budget
// expression derived the DFS count from the total run counter and the
// random budget, which miscounts if the phases ever execute a different
// number of runs than their nominal budgets.
func TestDFSBudgetExact(t *testing.T) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(monitorsol.NewReadersPriority())(k, r)
	})
	opts := Options{RandomRuns: 10, DFSRuns: 50}
	res := Run(perRun, func(trace.Trace) []problems.Violation { return nil }, opts)
	if res.Found {
		t.Fatalf("unexpected finding: %+v", res)
	}
	if want := 1 + opts.RandomRuns + opts.DFSRuns; res.Runs != want {
		t.Fatalf("runs = %d, want exactly %d (1 FIFO + %d random + %d DFS)",
			res.Runs, want, opts.RandomRuns, opts.DFSRuns)
	}
}

// The determinism contract: Run returns the same Result regardless of
// Workers. Five oracle/option combinations over the Figure-1 program,
// exercising findings in the random phase, findings deep in the DFS
// phase, budget exhaustion without findings, and a clean solution.
func TestParallelMatchesSequential(t *testing.T) {
	figure1 := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(pathexprsol.NewReadersPriority())(k, r)
	})
	monitor := Program(func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(monitorsol.NewReadersPriority())(k, r)
	})
	never := func(trace.Trace) []problems.Violation { return nil }
	cases := []struct {
		name   string
		prog   Program
		oracle Oracle
		opts   Options
	}{
		{"random-phase-finding", figure1, problems.CheckReadersPriority,
			Options{RandomRuns: 300, DFSRuns: 600}},
		{"dfs-only-finding", figure1, problems.CheckReadersPriority,
			Options{RandomRuns: -1, DFSRuns: 2000, DFSDepth: 24}},
		{"writers-oracle", figure1, problems.CheckWritersPriority,
			Options{RandomRuns: 50, DFSRuns: 100}},
		{"budget-exhausted", figure1, never,
			Options{RandomRuns: 20, DFSRuns: 60}},
		{"clean-solution", monitor, problems.CheckReadersPriority,
			Options{RandomRuns: 30, DFSRuns: 60}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqOpts := tc.opts
			seqOpts.Workers = 1
			parOpts := tc.opts
			parOpts.Workers = 8
			seq := Run(tc.prog, tc.oracle, seqOpts)
			par := Run(tc.prog, tc.oracle, parOpts)
			if seq.Found != par.Found {
				t.Fatalf("Found: workers=1 %v, workers=8 %v", seq.Found, par.Found)
			}
			if !reflect.DeepEqual(seq.Schedule, par.Schedule) {
				t.Fatalf("Schedule diverged:\n  workers=1: %v\n  workers=8: %v",
					seq.Schedule, par.Schedule)
			}
			if seq.Runs != par.Runs {
				t.Fatalf("Runs: workers=1 %d, workers=8 %d", seq.Runs, par.Runs)
			}
			if (seq.Err == nil) != (par.Err == nil) {
				t.Fatalf("Err: workers=1 %v, workers=8 %v", seq.Err, par.Err)
			}
			if len(seq.Violations) != len(par.Violations) {
				t.Fatalf("Violations: workers=1 %d, workers=8 %d",
					len(seq.Violations), len(par.Violations))
			}
		})
	}
}

// A thousand deadlocking explorations must not strand goroutines: the
// kernel's shutdown path unwinds processes abandoned on deadlock, and the
// exploration engine waits for its helpers before returning.
func TestExplorationNoGoroutineLeak(t *testing.T) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		k.Spawn("stuck1", func(p *kernel.Proc) { p.Park() })
		k.Spawn("stuck2", func(p *kernel.Proc) { p.Yield(); p.Park() })
	})
	base := runtime.NumGoroutine()
	for i := 0; i < 1000; i++ {
		res := Run(perRun, func(trace.Trace) []problems.Violation { return nil },
			Options{RandomRuns: 2, DFSRuns: 2, Workers: 4})
		if !res.Found || !errors.Is(res.Err, kernel.ErrDeadlock) {
			t.Fatalf("run %d: res = %+v", i, res)
		}
	}
	// Unwinding is asynchronous: give stragglers a moment to exit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: started with %d, still %d after 1000 deadlocking runs",
				base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The binary dedup key must be injective: distinct choice sequences map to
// distinct keys (uvarint pairs are self-delimiting).
func TestScheduleKeyInjective(t *testing.T) {
	seqs := [][]kernel.Choice{
		nil,
		{{Ready: 1, Picked: 0}},
		{{Ready: 2, Picked: 0}},
		{{Ready: 2, Picked: 1}},
		{{Ready: 2, Picked: 1}, {Ready: 3, Picked: 2}},
		{{Ready: 2, Picked: 1}, {Ready: 3, Picked: 0}},
		{{Ready: 300, Picked: 299}},
		{{Ready: 300, Picked: 2}, {Ready: 1, Picked: 0}},
	}
	keys := map[string]int{}
	for i, s := range seqs {
		k := string(appendScheduleKey(nil, s))
		if j, dup := keys[k]; dup {
			t.Fatalf("sequences %d and %d share key %q", i, j, k)
		}
		keys[k] = i
	}
}
