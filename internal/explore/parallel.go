// The parallel exploration engine: a sequential driver plus speculative
// helper workers.
//
// Both exploration phases share one structure. The canonical order in
// which the sequential engine would execute schedules is known in advance
// (random: ascending seed) or discoverable as the search unfolds (DFS:
// LIFO frontier order). Helper goroutines claim upcoming schedules and
// execute them on private kernels; the driver walks the canonical order,
// adopting a helper's cached outcome when one exists and executing
// inline otherwise. Because every schedule is deterministic, the driver
// observes exactly the outcomes the sequential engine would have, so the
// reported Result — Schedule, Runs, Violations — is independent of the
// worker count. Speculation past a finding or past the budget is wasted
// work, never wrong answers.
package explore

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/trace"
)

// runOut is the outcome of executing one schedule.
type runOut struct {
	schedule []kernel.Choice
	tr       trace.Trace
	err      error
}

// executeOnce runs the program under the given policy on a fresh kernel.
// It is safe to call from multiple goroutines concurrently: each call gets
// its own kernel and recorder.
func executeOnce(prog Program, policy kernel.Policy, maxSteps int64) runOut {
	k := kernel.NewSim(kernel.WithPolicy(policy), kernel.WithMaxSteps(maxSteps))
	r := trace.NewRecorder(k)
	prog(k, r)
	err := k.Run()
	return runOut{schedule: k.Choices(), tr: r.Events(), err: err}
}

// randSlot holds the speculative outcome for one random seed.
type randSlot struct {
	claimed atomic.Bool
	done    chan struct{}
	out     runOut
}

// randomPhase samples seeds 1..RandomRuns in seed order. Helpers claim
// seeds through an atomic cursor and publish outcomes through per-slot
// channels; the driver consumes slots in seed order, so the first finding
// is always the lowest-seed finding — what the sequential scan reports.
func randomPhase(prog Program, oracle Oracle, opts Options, runs *int) (Result, bool) {
	n := opts.RandomRuns
	if n == 0 {
		return Result{}, false
	}
	helpers := opts.Workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	var (
		slots  []randSlot
		cancel atomic.Bool
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	if helpers > 0 {
		slots = make([]randSlot, n)
		for i := range slots {
			slots[i].done = make(chan struct{})
		}
		wg.Add(helpers)
		for w := 0; w < helpers; w++ {
			go func() {
				defer wg.Done()
				for !cancel.Load() {
					i := int(cursor.Add(1)) - 1
					if i >= n {
						return
					}
					s := &slots[i]
					if !s.claimed.CompareAndSwap(false, true) {
						continue // driver ran this seed inline
					}
					s.out = executeOnce(prog, kernel.Random(int64(i+1)), opts.MaxSteps)
					close(s.done)
				}
			}()
		}
		// Stop helpers before returning so goroutines never outlive the
		// phase; in-flight runs are bounded by MaxSteps.
		defer func() {
			cancel.Store(true)
			wg.Wait()
		}()
	}
	for i := 0; i < n; i++ {
		var out runOut
		if helpers > 0 && !slots[i].claimed.CompareAndSwap(false, true) {
			<-slots[i].done // claimed by a helper; adopt its outcome
			out = slots[i].out
		} else {
			out = executeOnce(prog, kernel.Random(int64(i+1)), opts.MaxSteps)
		}
		*runs++
		if res, found := judge(out, oracle, opts, *runs); found {
			return res, true
		}
	}
	return Result{}, false
}

// dfsNode is one frontier entry: a choice prefix to replay, plus the
// claim/publish machinery for speculative execution.
type dfsNode struct {
	prefix  []kernel.Choice
	claimed atomic.Bool
	done    chan struct{} // nil when running without helpers
	out     runOut
}

// dfsShared is the frontier shared between the DFS driver and helpers.
type dfsShared struct {
	mu    sync.Mutex
	cond  *sync.Cond
	stack []*dfsNode
	over  bool
}

// dfsPhase enumerates choice prefixes in LIFO frontier order with an
// explicit DFS-run budget. Helpers speculatively execute frontier entries
// nearest the top of the stack — the entries the driver will pop soonest —
// while the driver pops, dedups, judges, and expands strictly in the
// sequential order.
func dfsPhase(prog Program, oracle Oracle, opts Options, runs int) Result {
	if opts.DFSRuns <= 0 {
		return Result{Runs: runs}
	}
	helpers := opts.Workers - 1
	st := &dfsShared{}
	st.cond = sync.NewCond(&st.mu)
	st.stack = []*dfsNode{newDFSNode(nil, helpers > 0)}
	if helpers > 0 {
		var wg sync.WaitGroup
		wg.Add(helpers)
		for w := 0; w < helpers; w++ {
			go func() {
				defer wg.Done()
				dfsHelper(prog, opts, st)
			}()
		}
		defer func() {
			st.mu.Lock()
			st.over = true
			st.mu.Unlock()
			st.cond.Broadcast()
			wg.Wait()
		}()
	}

	// seen dedups frontier prefixes by compact binary key; dedup happens
	// at pop time (not push time) to preserve the sequential engine's
	// exploration order exactly.
	seen := map[string]bool{}
	var keyBuf []byte
	dfsRuns := 0 // explicit budget counter: exactly DFSRuns schedules execute
	for dfsRuns < opts.DFSRuns {
		st.mu.Lock()
		if len(st.stack) == 0 {
			st.mu.Unlock()
			break
		}
		node := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		st.mu.Unlock()

		keyBuf = appendScheduleKey(keyBuf[:0], node.prefix)
		if seen[string(keyBuf)] {
			continue
		}
		seen[string(keyBuf)] = true

		var out runOut
		if node.claimed.CompareAndSwap(false, true) {
			out = executeOnce(prog, kernel.Replay(node.prefix), opts.MaxSteps)
		} else {
			<-node.done // claimed by a helper; adopt its outcome
			out = node.out
		}
		dfsRuns++
		runs++
		if res, found := judge(out, oracle, opts, runs); found {
			return res
		}

		// Branch: for each decision point within depth (at or beyond the
		// prefix), schedule the alternatives not taken. Push order matches
		// the sequential engine, so LIFO pops explore the same tree.
		children := expandDFS(node.prefix, out.schedule, opts.DFSDepth, helpers > 0)
		if len(children) > 0 {
			st.mu.Lock()
			st.stack = append(st.stack, children...)
			st.mu.Unlock()
			st.cond.Broadcast()
		}
	}
	return Result{Runs: runs}
}

func newDFSNode(prefix []kernel.Choice, parallel bool) *dfsNode {
	n := &dfsNode{prefix: prefix}
	if parallel {
		n.done = make(chan struct{})
	}
	return n
}

// expandDFS builds the branch nodes of a completed run: every alternative
// choice not taken at each decision point from the end of the prefix up to
// the depth bound.
func expandDFS(prefix, schedule []kernel.Choice, depth int, parallel bool) []*dfsNode {
	limit := len(schedule)
	if limit > depth {
		limit = depth
	}
	var children []*dfsNode
	for i := len(prefix); i < limit; i++ {
		for alt := 0; alt < schedule[i].Ready; alt++ {
			if alt == schedule[i].Picked {
				continue
			}
			branch := make([]kernel.Choice, i+1)
			copy(branch, schedule[:i])
			branch[i] = kernel.Choice{Ready: schedule[i].Ready, Picked: alt}
			children = append(children, newDFSNode(branch, parallel))
		}
	}
	return children
}

// dfsHelper speculatively executes unclaimed frontier entries, scanning
// from the top of the stack (the driver's next pops). It parks on the
// condition variable when everything visible is claimed and exits when the
// phase is over.
func dfsHelper(prog Program, opts Options, st *dfsShared) {
	for {
		st.mu.Lock()
		var node *dfsNode
		for {
			if st.over {
				st.mu.Unlock()
				return
			}
			for i := len(st.stack) - 1; i >= 0; i-- {
				if st.stack[i].claimed.CompareAndSwap(false, true) {
					node = st.stack[i]
					break
				}
			}
			if node != nil {
				break
			}
			st.cond.Wait()
		}
		st.mu.Unlock()
		node.out = executeOnce(prog, kernel.Replay(node.prefix), opts.MaxSteps)
		close(node.done)
	}
}

// appendScheduleKey appends a compact binary encoding of the choice
// sequence: two uvarints per choice. The encoding is injective (uvarints
// are self-delimiting), so key equality is exactly prefix equality — the
// property the old fmt.Sprint key bought with O(prefix) reflection-based
// formatting per DFS node.
func appendScheduleKey(b []byte, cs []kernel.Choice) []byte {
	for _, c := range cs {
		b = binary.AppendUvarint(b, uint64(c.Ready))
		b = binary.AppendUvarint(b, uint64(c.Picked))
	}
	return b
}
