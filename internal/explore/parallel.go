// The parallel exploration engine: a sequential driver plus speculative
// helper workers.
//
// Both exploration phases share one structure. The canonical order in
// which the sequential engine would execute schedules is known in advance
// (random: ascending seed) or discoverable as the search unfolds (DFS:
// LIFO frontier order). Helper goroutines claim upcoming schedules and
// execute them on private kernels; the driver walks the canonical order,
// adopting a helper's cached outcome when one exists and executing
// inline otherwise. Because every schedule is deterministic, the driver
// observes exactly the outcomes the sequential engine would have, so the
// reported Result — Schedule, Runs, Violations — is independent of the
// worker count. Speculation past a finding or past the budget is wasted
// work, never wrong answers.
//
// All schedule-space pruning (fingerprint dedup, the invisible-step rule)
// happens on the driver, in canonical order, so pruning decisions are
// also independent of the worker count: helpers may speculatively execute
// schedules the driver later discards, which costs time but never changes
// the answer.
package explore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/trace"
)

// runOut is the outcome of executing one schedule. The slices are
// zero-copy views into the executing slot's buffers: valid until the slot
// is released (executor.release) and must be copied before escaping into
// a Result.
type runOut struct {
	schedule []kernel.Choice
	tr       trace.Trace
	err      error
	fps      []uint64 // state fingerprint at each decision point
	visible  []bool   // per-step visibility (false = pure yield)
	// Dependency-trace views (empty unless Options.DPOR): per-step object
	// accesses, the flattened ready-set ids per decision, and the readying
	// step of each pick. See kernel/deps.go.
	deps     []kernel.DepAccess
	readyIDs []int32
	causes   []int32
	streamVs []problems.Violation
	streamed bool // a streaming checker judged this run
	slot     *runSlot
}

// runSlot bundles the per-run machinery — a kernel, its recorder, and
// optionally a streaming checker wired to cut violating runs short. With
// pooling, slots are recycled through Reset instead of reallocated, so
// the steady-state cost of a run is the run itself, not its setup.
type runSlot struct {
	k      *kernel.SimKernel
	r      *trace.Recorder
	stream problems.StreamChecker
	vs     []problems.Violation
}

// executor runs schedules, optionally recycling slots (Options.Pool) and
// optionally attaching a streaming checker (Options.Stream). It is safe
// for concurrent use; each run executes on a private slot.
type executor struct {
	maxSteps   int64
	newStream  func() problems.StreamChecker
	pooled     bool
	checkpoint bool
	dpor       bool

	// slots counts runSlots ever created; reuses counts runs served by a
	// recycled slot. Atomics because helpers acquire concurrently; they
	// feed Stats observability fields only, never the deterministic
	// Result.
	slots  atomic.Int64
	reuses atomic.Int64

	mu   sync.Mutex
	free []*runSlot
	all  []*runSlot // every slot ever created, for close()
}

func newExecutor(opts Options) *executor {
	return &executor{
		maxSteps:   opts.MaxSteps,
		newStream:  opts.Stream,
		pooled:     opts.Pool,
		checkpoint: opts.Checkpoint,
		dpor:       opts.DPOR,
	}
}

// poolStats reports (slots created, runs served by a recycled slot) for
// Stats snapshots.
func (e *executor) poolStats() (int, int) {
	return int(e.slots.Load()), int(e.reuses.Load())
}

func (e *executor) acquire() *runSlot {
	if e.pooled {
		e.mu.Lock()
		if n := len(e.free); n > 0 {
			s := e.free[n-1]
			e.free[n-1] = nil
			e.free = e.free[:n-1]
			e.mu.Unlock()
			e.reuses.Add(1)
			return s
		}
		e.mu.Unlock()
	}
	e.slots.Add(1)
	kopts := []kernel.SimOption{kernel.WithMaxSteps(e.maxSteps)}
	if e.pooled {
		kopts = append(kopts, kernel.WithRecycle())
	}
	if e.dpor {
		kopts = append(kopts, kernel.WithDepTrace())
	}
	s := &runSlot{k: kernel.NewSim(kopts...)}
	s.r = trace.NewRecorder(s.k)
	if e.checkpoint {
		// Sample the recorder position at every decision point so the
		// driver can capture snapshots from this slot (kernel.SnapshotAt).
		s.k.SetDecisionMark(s.r.LenCooperative)
	}
	if e.pooled {
		e.mu.Lock()
		e.all = append(e.all, s)
		e.mu.Unlock()
	}
	if e.newStream != nil {
		s.stream = e.newStream()
		s.r.SetObserver(func(ev trace.Event) {
			if vs := s.stream.Observe(ev); len(vs) > 0 {
				s.vs = append(s.vs, vs...)
				s.k.Stop()
			}
		})
	}
	return s
}

// release returns out's slot to the freelist. Call only once every view
// in out (schedule, trace, fingerprints, visibility) has been consumed or
// copied; a released slot's next run overwrites them all.
func (e *executor) release(out runOut) {
	if !e.pooled || out.slot == nil {
		return
	}
	e.mu.Lock()
	e.free = append(e.free, out.slot)
	e.mu.Unlock()
}

// close releases every slot's recycled worker goroutines. Call once, when
// no run is in flight (the phases wait out their helpers before
// returning).
func (e *executor) close() {
	for _, s := range e.all {
		s.k.Close()
	}
}

// run executes prog once under the given policy. Safe to call from
// multiple goroutines concurrently.
func (e *executor) run(prog Program, policy kernel.Policy) runOut {
	s := e.acquire()
	s.k.Reset(kernel.WithPolicy(policy))
	s.r.Reset()
	if s.stream != nil {
		s.stream.Reset()
		s.vs = s.vs[:0]
	}
	prog(s.k, s.r)
	err := s.k.Run()
	return runOut{
		schedule: s.k.ChoicesView(),
		tr:       s.r.Snapshot(),
		err:      err,
		fps:      s.k.StepFingerprints(),
		visible:  s.k.StepVisibility(),
		deps:     s.k.DepAccesses(),
		readyIDs: s.k.ReadySetIDs(),
		causes:   s.k.ReadyCauses(),
		streamVs: s.vs,
		streamed: s.stream != nil,
		slot:     s,
	}
}

// runFrom executes prog resuming from a checkpoint: the kernel re-drives
// the snapshot's choice prefix in restore mode (per-step pipeline
// skipped), the recorder serves the prefix events from the snapshot, and
// the streaming checker, if any, is brought to the fork point by
// re-feeding it the prefix. tail schedules the decisions past the
// snapshot. By determinism the outcome is byte-identical to running the
// full schedule by replay from the root; only the cost differs.
func (e *executor) runFrom(prog Program, snap *kernel.Snapshot, prefix trace.Trace, tail kernel.Policy) runOut {
	s := e.acquire()
	s.k.Reset(kernel.WithPolicy(tail), kernel.WithRestore(snap))
	s.r.Reset()
	s.r.ResumeFrom(prefix)
	if s.stream != nil {
		s.stream.Reset()
		s.vs = s.vs[:0]
		for _, ev := range prefix {
			// Checkpoints are only registered from violation-free runs,
			// so re-feeding cannot fire the checker; collect defensively
			// anyway rather than dropping a finding.
			if vs := s.stream.Observe(ev); len(vs) > 0 {
				s.vs = append(s.vs, vs...)
			}
		}
	}
	prog(s.k, s.r)
	err := s.k.Run()
	return runOut{
		schedule: s.k.ChoicesView(),
		tr:       s.r.Snapshot(),
		err:      err,
		fps:      s.k.StepFingerprints(),
		visible:  s.k.StepVisibility(),
		deps:     s.k.DepAccesses(),
		readyIDs: s.k.ReadySetIDs(),
		causes:   s.k.ReadyCauses(),
		streamVs: s.vs,
		streamed: s.stream != nil,
		slot:     s,
	}
}

// randSlot holds the speculative outcome for one random seed.
type randSlot struct {
	claimed atomic.Bool
	done    chan struct{}
	out     runOut
}

// randomPhase samples seeds 1..RandomRuns in seed order. Helpers claim
// seeds through an atomic cursor and publish outcomes through per-slot
// channels; the driver consumes slots in seed order, so the first finding
// is always the lowest-seed finding — what the sequential scan reports.
func randomPhase(e *executor, prog Program, oracle Oracle, opts Options, t *tracker) (Result, bool) {
	n := opts.RandomRuns
	if n == 0 {
		return Result{}, false
	}
	t.phase("random")
	helpers := opts.Workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	var (
		slots  []randSlot
		cancel atomic.Bool
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	if helpers > 0 {
		slots = make([]randSlot, n)
		for i := range slots {
			slots[i].done = make(chan struct{})
		}
		wg.Add(helpers)
		for w := 0; w < helpers; w++ {
			go func() {
				defer wg.Done()
				for !cancel.Load() {
					i := int(cursor.Add(1)) - 1
					if i >= n {
						return
					}
					s := &slots[i]
					if !s.claimed.CompareAndSwap(false, true) {
						continue // driver ran this seed inline
					}
					s.out = e.run(prog, kernel.Random(int64(i+1)))
					close(s.done)
				}
			}()
		}
		// Stop helpers before returning so goroutines never outlive the
		// phase; in-flight runs are bounded by MaxSteps.
		defer func() {
			cancel.Store(true)
			wg.Wait()
		}()
	}
	for i := 0; i < n; i++ {
		var out runOut
		if helpers > 0 && !slots[i].claimed.CompareAndSwap(false, true) {
			<-slots[i].done // claimed by a helper; adopt its outcome
			out = slots[i].out
		} else {
			out = e.run(prog, kernel.Random(int64(i+1)))
		}
		t.ran()
		if res, found := judge(out, oracle, opts, t.st.Runs); found {
			return res, true
		}
		e.release(out)
	}
	return Result{}, false
}

// dfsNode is one frontier entry: a choice prefix to replay, plus the
// claim/publish machinery for speculative execution.
type dfsNode struct {
	prefix  []kernel.Choice
	claimed atomic.Bool
	done    chan struct{} // nil when running without helpers
	out     runOut
}

// dfsShared is the frontier shared between the DFS driver and helpers.
type dfsShared struct {
	mu    sync.Mutex
	cond  *sync.Cond
	stack []*dfsNode
	over  bool
}

// auditSet summarizes what a DFS pass found, for the PruneAudit
// cross-check: the distinct violation rules plus canonical tokens for
// kernel errors.
type auditSet map[string]bool

func (s auditSet) addRun(out runOut, oracle Oracle, opts Options) {
	if out.err != nil {
		if opts.IgnoreKernelErrors {
			return
		}
		if errors.Is(out.err, kernel.ErrDeadlock) {
			s["kernel-error:deadlock"] = true
		} else {
			s["kernel-error"] = true
		}
		return
	}
	if out.streamed {
		for _, v := range out.streamVs {
			s[v.Rule] = true
		}
		return
	}
	for _, v := range oracle(out.tr) {
		s[v.Rule] = true
	}
}

// dfsPhase enumerates choice prefixes in LIFO frontier order with an
// explicit DFS-run budget, dispatching to the audit harness when
// requested.
func dfsPhase(e *executor, prog Program, oracle Oracle, opts Options, t *tracker) Result {
	t.phase("dfs")
	if opts.PruneAudit || opts.DPORAudit {
		return dfsAudit(e, prog, oracle, opts, t)
	}
	res, _ := dfsScan(e, prog, oracle, opts, t, opts.Prune, opts.DPOR, false)
	return res
}

// dfsAudit cross-checks reduction: it runs the DFS budget twice in
// collect mode — once with the configured reductions (Prune and/or
// DPOR), once fully unreduced — and fails if the unreduced frontier
// surfaced any violation rule the reduced search missed. On success the
// result is exactly what a plain reduced DFS would have reported
// (collect mode behaves identically up to the first finding).
func dfsAudit(e *executor, prog Program, oracle Oracle, opts Options, t *tracker) Result {
	// The reference pass uses a silent tracker: its runs are not part of
	// the canonical counter stream the Result (and Progress) reports.
	ref0 := t.silent()
	res, got := dfsScan(e, prog, oracle, opts, t, opts.Prune, opts.DPOR, true)
	_, ref := dfsScan(e, prog, oracle, opts, ref0, false, false, true)
	var missing []string
	for rule := range ref {
		if !got[rule] {
			missing = append(missing, rule)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		res.Found = true
		if opts.DPORAudit {
			res.Err = fmt.Errorf("explore: dpor audit failed: reduced search missed %s",
				strings.Join(missing, ", "))
		} else {
			res.Err = fmt.Errorf("explore: prune audit failed: pruned search missed %s",
				strings.Join(missing, ", "))
		}
	}
	return res
}

// dfsScan is the DFS engine. prune enables fingerprint-based subtree
// skipping; dpor replaces exhaustive branching with happens-before
// driven backtrack points (see dpor.go); collect runs the full budget
// recording every finding's rule (for the audit) instead of returning
// at the first one. The returned Result is the first finding either
// way, so collect=false and collect=true agree on everything a caller
// of Run can observe.
func dfsScan(e *executor, prog Program, oracle Oracle, opts Options, t *tracker, prune, dpor, collect bool) (Result, auditSet) {
	found := auditSet{}
	if opts.DFSRuns <= 0 {
		return Result{Runs: t.st.Runs}, found
	}
	helpers := opts.Workers - 1
	st := &dfsShared{}
	st.cond = sync.NewCond(&st.mu)
	st.stack = []*dfsNode{newDFSNode(nil, helpers > 0)}
	if helpers > 0 {
		var wg sync.WaitGroup
		wg.Add(helpers)
		for w := 0; w < helpers; w++ {
			go func() {
				defer wg.Done()
				dfsHelper(e, prog, st)
			}()
		}
		defer func() {
			st.mu.Lock()
			st.over = true
			st.mu.Unlock()
			st.cond.Broadcast()
			wg.Wait()
		}()
	}

	// seen dedups frontier prefixes by compact binary key; dedup happens
	// at pop time (not push time) to preserve the sequential engine's
	// exploration order exactly. expanded dedups *states*: a decision
	// point whose fingerprint was already branched from is not branched
	// again, killing subtrees that differ only in how they arrived.
	seen := map[string]bool{}
	var expanded map[uint64]bool
	if prune {
		expanded = map[uint64]bool{}
	}
	// The DPOR state (sleep-set memory and analysis scratch) is per-scan
	// like the pruner's maps, so the audit's reference pass shares nothing
	// with the reduced pass.
	var dp *dporState
	if dpor {
		dp = newDPORState()
	}
	// The checkpoint registry (Options.Checkpoint) is per-scan, so the
	// audit's reference pass shares nothing with the pruned pass.
	var reg *ckptRegistry
	if opts.Checkpoint {
		reg = newCkptRegistry(opts.CheckpointBudget)
	}
	pruned := 0
	var keyBuf []byte
	var first Result
	dfsRuns := 0 // explicit budget counter: at most DFSRuns schedules execute
	for dfsRuns < opts.DFSRuns {
		st.mu.Lock()
		if len(st.stack) == 0 {
			st.mu.Unlock()
			break
		}
		node := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		t.st.Frontier = len(st.stack)
		st.mu.Unlock()

		// Build the node's binary key so that its branch-point prefix —
		// the node minus its final (branching) choice — is the leading
		// keyBuf[:branchEnd] bytes: appendScheduleKey is concatenative.
		n := len(node.prefix)
		keyBuf = keyBuf[:0]
		branchEnd := 0
		if n > 0 {
			keyBuf = appendScheduleKey(keyBuf, node.prefix[:n-1])
			branchEnd = len(keyBuf)
			keyBuf = appendScheduleKey(keyBuf, node.prefix[n-1:])
		}
		// Consume the node's checkpoint slot before the dedup check:
		// duplicate prefixes were counted as pending siblings when their
		// parent registered, so every pop pays one slot either way.
		var ent *ckptEntry
		if reg != nil && n > 0 {
			ent = reg.take(keyBuf[:branchEnd])
		}
		if seen[string(keyBuf)] {
			continue
		}
		seen[string(keyBuf)] = true

		var out runOut
		if node.claimed.CompareAndSwap(false, true) {
			if ent != nil {
				out = e.runFrom(prog, ent.snap, ent.events, kernel.Replay(node.prefix[ent.depth:]))
			} else {
				out = e.run(prog, kernel.Replay(node.prefix))
			}
		} else {
			<-node.done // claimed by a helper; adopt its outcome
			out = node.out
		}
		dfsRuns++
		if reg != nil {
			// Canonical accounting: a helper may have executed this run
			// by full replay, but the counters follow the driver's fork
			// decision so they are identical for every worker count.
			if ent != nil {
				t.forked(ent.depth, n-ent.depth)
			} else {
				t.replayed(n)
			}
		}
		t.st.Pruned = pruned
		t.ran()
		res, isFinding := judge(out, oracle, opts, t.st.Runs)
		if isFinding {
			if !collect {
				res.Pruned = pruned
				return res, found
			}
			found.addRun(out, oracle, opts)
			if !first.Found {
				first = res
				first.Pruned = pruned
			}
		}

		// Branch: for each decision point within depth (at or beyond the
		// prefix), schedule the alternatives not taken — or, with DPOR,
		// only the backtrack points the run's dependency trace demands.
		// Push order matches the sequential engine, so LIFO pops explore
		// the same tree.
		var children []*dfsNode
		if dp != nil {
			var blocked int
			children, blocked = dp.expand(node.prefix, out, opts.DFSDepth, helpers > 0, expanded, &pruned)
			t.st.BacktrackPoints += len(children)
			t.st.DPORBlocked += blocked
		} else {
			children = expandDFS(node.prefix, out, opts.DFSDepth, helpers > 0, expanded, &pruned)
		}
		if reg != nil && !isFinding && out.err == nil {
			reg.registerRun(out, children)
		}
		e.release(out)
		if len(children) > 0 {
			st.mu.Lock()
			st.stack = append(st.stack, children...)
			t.st.Frontier = len(st.stack)
			st.mu.Unlock()
			st.cond.Broadcast()
		}
	}
	t.st.Frontier = 0
	st.mu.Lock()
	if len(st.stack) == 0 {
		// The frontier emptied before the budget ran out: every schedule
		// the (possibly reduced) search wanted to run has been run.
		t.st.Exhausted = true
	}
	st.mu.Unlock()
	if !first.Found {
		first.Runs = t.st.Runs
		first.Pruned = pruned
	}
	return first, found
}

func newDFSNode(prefix []kernel.Choice, parallel bool) *dfsNode {
	n := &dfsNode{prefix: prefix}
	if parallel {
		n.done = make(chan struct{})
	}
	return n
}

// expandDFS builds the branch nodes of a completed run: every alternative
// choice not taken at each decision point from the end of the prefix up
// to the depth bound.
//
// With pruning (expanded non-nil) two classes of decision point are
// skipped wholesale:
//
//   - Invisible steps: if the step taken at point i was a pure yield, the
//     alternatives at i commute with it — the same picks are available,
//     from an equivalent state, at point i+1 — so the siblings at i are
//     redundant with the expansion one step later (the sleep-set idea
//     specialized to the one invisible operation the kernel has).
//   - Visited states: if some earlier run already branched from a
//     fingerprint-equal state, the alternatives here lead into subtrees
//     the search has already scheduled; branching again re-explores them
//     with a different arrival history.
//
// Skipped sibling counts accumulate into *pruned for reporting. The
// fingerprint is a heuristic abstraction (see kernel.Fingerprint);
// Options.PruneAudit cross-checks that pruning lost no violation.
func expandDFS(prefix []kernel.Choice, out runOut, depth int, parallel bool, expanded map[uint64]bool, pruned *int) []*dfsNode {
	schedule := out.schedule
	limit := len(schedule)
	if limit > depth {
		limit = depth
	}
	if expanded != nil {
		// Defensive: views are aligned on every judged path, but never
		// index past what the kernel recorded.
		if limit > len(out.visible) {
			limit = len(out.visible)
		}
		if limit > len(out.fps) {
			limit = len(out.fps)
		}
	}
	var children []*dfsNode
	for i := len(prefix); i < limit; i++ {
		if schedule[i].Ready < 2 {
			continue // no alternatives existed
		}
		if expanded != nil {
			if !out.visible[i] {
				*pruned += schedule[i].Ready - 1
				continue
			}
			if expanded[out.fps[i]] {
				*pruned += schedule[i].Ready - 1
				continue
			}
			expanded[out.fps[i]] = true
		}
		for alt := 0; alt < schedule[i].Ready; alt++ {
			if alt == schedule[i].Picked {
				continue
			}
			branch := make([]kernel.Choice, i+1)
			copy(branch, schedule[:i])
			branch[i] = kernel.Choice{Ready: schedule[i].Ready, Picked: alt}
			children = append(children, newDFSNode(branch, parallel))
		}
	}
	return children
}

// dfsHelper speculatively executes unclaimed frontier entries, scanning
// from the top of the stack (the driver's next pops). It parks on the
// condition variable when everything visible is claimed and exits when the
// phase is over.
func dfsHelper(e *executor, prog Program, st *dfsShared) {
	for {
		st.mu.Lock()
		var node *dfsNode
		for {
			if st.over {
				st.mu.Unlock()
				return
			}
			for i := len(st.stack) - 1; i >= 0; i-- {
				if st.stack[i].claimed.CompareAndSwap(false, true) {
					node = st.stack[i]
					break
				}
			}
			if node != nil {
				break
			}
			st.cond.Wait()
		}
		st.mu.Unlock()
		node.out = e.run(prog, kernel.Replay(node.prefix))
		close(node.done)
	}
}

// appendScheduleKey appends a compact binary encoding of the choice
// sequence: two uvarints per choice. The encoding is injective (uvarints
// are self-delimiting), so key equality is exactly prefix equality — the
// property the old fmt.Sprint key bought with O(prefix) reflection-based
// formatting per DFS node.
func appendScheduleKey(b []byte, cs []kernel.Choice) []byte {
	for _, c := range cs {
		b = binary.AppendUvarint(b, uint64(c.Ready))
		b = binary.AppendUvarint(b, uint64(c.Picked))
	}
	return b
}
