// Schedule files: findings as durable, replayable artifacts.
//
// A violating schedule is only worth keeping if it can be replayed later
// — in CI, in a bug report, on a colleague's machine — and if a replay
// that no longer matches the recorded run fails loudly instead of
// silently exploring a different interleaving. A SchedFile carries the
// choice sequence plus everything needed to detect drift: the kernel's
// run fingerprint (a chained hash over the scheduler state and decision
// at every step, kernel.SimKernel.RunFingerprint) sealed at save time,
// and the violation rules the replay must reproduce. Verify re-executes
// the schedule under kernel.ExactReplay — which already aborts if the
// ready set at any decision diverges from the recording — then compares
// the fingerprint and re-judges the trace with the oracle.
//
// Format version policy: Version is checked on read and must equal a
// version this code knows how to interpret (currently only
// SchedFileVersion). Any future format change — new required field,
// changed fingerprint definition, changed choice encoding — bumps the
// version; readers never guess at unknown versions.
package explore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/trace"
)

// SchedFileVersion is the current schedule-file format version.
const SchedFileVersion = 1

// schedFileKind marks the file as ours, so -replay rejects arbitrary JSON
// with a useful message.
const schedFileKind = "repro-schedule"

// KernelErrDeadlock and KernelErrOther are the canonical tokens recorded
// in SchedFile.KernelError when the finding is a kernel error rather than
// an oracle violation. Tokens, not error strings: error text is not part
// of the format's compatibility surface.
const (
	KernelErrDeadlock = "deadlock"
	KernelErrOther    = "error"
)

// SchedFile is the on-disk schedule artifact. Mechanism, Problem, and
// Scenario identify the program to rebuild at replay time; Fingerprint,
// Rules, and KernelError pin what the replay must reproduce.
type SchedFile struct {
	Version     int      `json:"version"`
	Kind        string   `json:"kind"`
	Mechanism   string   `json:"mechanism,omitempty"`
	Problem     string   `json:"problem,omitempty"`
	Scenario    string   `json:"scenario,omitempty"` // "figure" or "standard"
	Note        string   `json:"note,omitempty"`
	MaxSteps    int64    `json:"max_steps,omitempty"`
	Fingerprint string   `json:"fingerprint"` // %016x kernel run fingerprint
	Rules       []string `json:"rules,omitempty"`
	KernelError string   `json:"kernel_error,omitempty"`
	Choices     [][2]int `json:"choices"` // [ready, picked] per decision
}

// NewSchedFile builds an unsealed schedule file for the given schedule.
// Call Seal before writing it out.
func NewSchedFile(mechanism, problem, scenario string, schedule []kernel.Choice) *SchedFile {
	f := &SchedFile{
		Version:   SchedFileVersion,
		Kind:      schedFileKind,
		Mechanism: mechanism,
		Problem:   problem,
		Scenario:  scenario,
		Choices:   make([][2]int, len(schedule)),
	}
	for i, c := range schedule {
		f.Choices[i] = [2]int{c.Ready, c.Picked}
	}
	return f
}

// Schedule converts the file's choices back to a kernel choice sequence.
func (f *SchedFile) Schedule() []kernel.Choice {
	out := make([]kernel.Choice, len(f.Choices))
	for i, c := range f.Choices {
		out[i] = kernel.Choice{Ready: c[0], Picked: c[1]}
	}
	return out
}

func (f *SchedFile) maxSteps() int64 {
	if f.MaxSteps > 0 {
		return f.MaxSteps
	}
	return 100000
}

// validate checks the structural invariants a reader relies on.
func (f *SchedFile) validate() error {
	if f.Kind != schedFileKind {
		return fmt.Errorf("explore: not a schedule file (kind %q, want %q)", f.Kind, schedFileKind)
	}
	if f.Version != SchedFileVersion {
		return fmt.Errorf("explore: unsupported schedule file version %d (this build reads version %d)",
			f.Version, SchedFileVersion)
	}
	for i, c := range f.Choices {
		if c[0] < 1 || c[1] < 0 || c[1] >= c[0] {
			return fmt.Errorf("explore: choice %d out of range: ready=%d picked=%d", i, c[0], c[1])
		}
	}
	return nil
}

// exactReplay runs prog once under strict replay of schedule and returns
// the trace, the kernel run fingerprint, and the run's error. A
// divergence between schedule and program is reported as the policy's
// diagnostic, not as a run outcome.
func exactReplay(prog Program, schedule []kernel.Choice, maxSteps int64) (trace.Trace, uint64, error, error) {
	pol := kernel.NewExactReplay(schedule)
	k := kernel.NewSim(kernel.WithMaxSteps(maxSteps), kernel.WithPolicy(pol))
	r := trace.NewRecorder(k)
	prog(k, r)
	runErr := k.Run()
	if pol.Err() != nil {
		return r.Events(), 0, nil, pol.Err()
	}
	return r.Events(), k.RunFingerprint(), runErr, nil
}

// Seal replays the schedule against prog and records what replays must
// reproduce: the kernel run fingerprint and the oracle's violation rules
// (or the kernel error class). It fails if the schedule does not replay
// exactly against prog — a schedule that cannot survive its own save is
// not an artifact worth writing.
func (f *SchedFile) Seal(prog Program, oracle Oracle) error {
	if err := f.validate(); err != nil {
		return err
	}
	tr, fp, runErr, divErr := exactReplay(prog, f.Schedule(), f.maxSteps())
	if divErr != nil {
		return fmt.Errorf("explore: schedule does not replay against its own program: %w", divErr)
	}
	f.Fingerprint = fmt.Sprintf("%016x", fp)
	f.Rules = nil
	f.KernelError = ""
	if runErr != nil {
		if errors.Is(runErr, kernel.ErrDeadlock) {
			f.KernelError = KernelErrDeadlock
		} else {
			f.KernelError = KernelErrOther
		}
		return nil
	}
	for _, v := range oracle(tr) {
		f.Rules = append(f.Rules, v.Rule)
	}
	return nil
}

// Verify replays the schedule against prog with full drift detection:
// strict replay (ready counts must match the recording at every
// decision), fingerprint comparison, and oracle re-judgement — the
// replayed violations' rules must equal the recorded ones exactly. It
// returns the replayed trace and violations; a non-nil error means the
// artifact did not reproduce (the program drifted since it was saved, or
// the file is damaged).
func (f *SchedFile) Verify(prog Program, oracle Oracle) (trace.Trace, []problems.Violation, error) {
	if err := f.validate(); err != nil {
		return nil, nil, err
	}
	if _, err := strconv.ParseUint(f.Fingerprint, 16, 64); err != nil || len(f.Fingerprint) != 16 {
		return nil, nil, fmt.Errorf("explore: schedule file has no valid fingerprint (%q) — not sealed?", f.Fingerprint)
	}
	tr, fp, runErr, divErr := exactReplay(prog, f.Schedule(), f.maxSteps())
	if divErr != nil {
		return tr, nil, fmt.Errorf("explore: schedule replay diverged — program drifted since save: %w", divErr)
	}
	if got := fmt.Sprintf("%016x", fp); got != f.Fingerprint {
		return tr, nil, fmt.Errorf("explore: kernel fingerprint mismatch: file %s, replay %s — program drifted since save",
			f.Fingerprint, got)
	}
	if runErr != nil {
		switch {
		case f.KernelError == KernelErrDeadlock && errors.Is(runErr, kernel.ErrDeadlock):
			return tr, nil, nil
		case f.KernelError == KernelErrOther && !errors.Is(runErr, kernel.ErrDeadlock):
			return tr, nil, nil
		default:
			return tr, nil, fmt.Errorf("explore: replay produced kernel error %v, file records %q", runErr, f.KernelError)
		}
	}
	if f.KernelError != "" {
		return tr, nil, fmt.Errorf("explore: file records kernel error %q but the replay completed", f.KernelError)
	}
	vs := oracle(tr)
	rules := make([]string, len(vs))
	for i, v := range vs {
		rules[i] = v.Rule
	}
	if len(rules) != len(f.Rules) {
		return tr, vs, fmt.Errorf("explore: replay produced %d violations %v, file records %d %v",
			len(rules), rules, len(f.Rules), f.Rules)
	}
	for i := range rules {
		if rules[i] != f.Rules[i] {
			return tr, vs, fmt.Errorf("explore: replay violation %d is %q, file records %q", i, rules[i], f.Rules[i])
		}
	}
	return tr, vs, nil
}

// WriteFile writes the sealed artifact as indented JSON.
func (f *SchedFile) WriteFile(path string) error {
	if err := f.validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadSchedFile loads and validates a schedule file. Unknown versions and
// malformed choices are rejected here, before any replay is attempted.
func ReadSchedFile(path string) (*SchedFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f SchedFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("explore: %s: %w", path, err)
	}
	if err := f.validate(); err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return &f, nil
}
