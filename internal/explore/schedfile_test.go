package explore

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/trace"
)

var updateSched = flag.Bool("update", false, "regenerate golden .sched artifacts")

// The round-trip contract over the full T4 suite: for every mechanism x
// problem pairing, a schedule recorded from the standard program seals,
// writes, reads back, and verifies — and the replayed trace is
// byte-identical to the trace the seal saw.
func TestSchedFileRoundTripT4Suite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite round-trip is slow")
	}
	for _, suite := range solutions.All() {
		for _, problem := range problems.AllProblems() {
			suite, problem := suite, problem
			t.Run(suite.Mechanism+"/"+problem, func(t *testing.T) {
				t.Parallel()
				prog, check, err := solutions.StandardProgram(suite, problem, false)
				if err != nil {
					t.Fatal(err)
				}
				// Record a schedule by running the program once under a
				// seeded random policy (FIFO would leave an all-default
				// schedule, which trims to nothing interesting).
				e := newExecutor(Options{MaxSteps: 100000})
				defer e.close()
				out := e.run(Program(prog), kernel.Random(7))
				schedule := append([]kernel.Choice(nil), out.schedule...)
				e.release(out)

				f := NewSchedFile(suite.Mechanism, problem, "standard", schedule)
				if err := f.Seal(Program(prog), check); err != nil {
					t.Fatalf("Seal: %v", err)
				}
				sealedTr, _, err := f.Verify(Program(prog), check)
				if err != nil {
					t.Fatalf("Verify before write: %v", err)
				}

				path := filepath.Join(t.TempDir(), "roundtrip.sched")
				if err := f.WriteFile(path); err != nil {
					t.Fatalf("WriteFile: %v", err)
				}
				loaded, err := ReadSchedFile(path)
				if err != nil {
					t.Fatalf("ReadSchedFile: %v", err)
				}
				if !reflect.DeepEqual(loaded, f) {
					t.Fatalf("loaded file differs from written:\n  wrote: %+v\n  read:  %+v", f, loaded)
				}
				replayTr, _, err := loaded.Verify(Program(prog), check)
				if err != nil {
					t.Fatalf("Verify after round-trip: %v", err)
				}
				if !reflect.DeepEqual(sealedTr, replayTr) {
					t.Fatalf("round-trip replay trace diverged\nsealed:\n%s\nreplayed:\n%s", sealedTr, replayTr)
				}
			})
		}
	}
}

// The checked-in golden artifact: a shrunk Figure-1 finding saved as a
// .sched file must keep replaying to the identical violation. Regenerate
// with: go test ./internal/explore -run TestSchedFileGolden -update
func TestSchedFileGolden(t *testing.T) {
	golden := filepath.Join("testdata", "figure1.sched")
	prog := figure1Program()
	oracle := Oracle(problems.CheckReadersPriority)

	if *updateSched {
		res := Run(prog, oracle, Options{
			RandomRuns: 300, DFSRuns: 600, Shrink: true, Pool: true,
		})
		if !res.Found || res.Err != nil || res.MinSchedule == nil {
			t.Fatalf("cannot regenerate golden: found=%v err=%v min=%v",
				res.Found, res.Err, res.MinSchedule)
		}
		f := NewSchedFile("pathexpr", problems.NameReadersPriority, "figure", res.MinSchedule)
		f.Note = "shrunk footnote-3 readers-priority violation (golden artifact)"
		if err := f.Seal(prog, oracle); err != nil {
			t.Fatalf("Seal: %v", err)
		}
		if err := f.WriteFile(golden); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}

	f, err := ReadSchedFile(golden)
	if err != nil {
		t.Fatalf("reading golden artifact: %v (regenerate with -update)", err)
	}
	tr, vs, err := f.Verify(prog, oracle)
	if err != nil {
		t.Fatalf("golden artifact no longer reproduces: %v (regenerate with -update)", err)
	}
	if len(vs) == 0 {
		t.Fatalf("golden replay shows no violation:\n%s", tr)
	}
	// The golden artifact records an oracle finding, not a kernel error,
	// and stays small — that is the point of shrinking before saving.
	if f.KernelError != "" || len(f.Rules) == 0 {
		t.Fatalf("golden artifact malformed: rules=%v kernelError=%q", f.Rules, f.KernelError)
	}
}

// Damaged or drifted artifacts must fail loudly, with a diagnostic that
// names the problem.
func TestSchedFileRejects(t *testing.T) {
	prog := figure1Program()
	oracle := Oracle(problems.CheckReadersPriority)

	// A sealed, known-good file to mutate.
	e := newExecutor(Options{MaxSteps: 100000})
	defer e.close()
	out := e.run(prog, kernel.Random(3))
	schedule := append([]kernel.Choice(nil), out.schedule...)
	e.release(out)
	good := NewSchedFile("pathexpr", problems.NameReadersPriority, "figure", schedule)
	if err := good.Seal(prog, oracle); err != nil {
		t.Fatalf("Seal: %v", err)
	}

	t.Run("wrong-kind", func(t *testing.T) {
		f := *good
		f.Kind = "something-else"
		if err := f.validate(); err == nil || !strings.Contains(err.Error(), "not a schedule file") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unknown-version", func(t *testing.T) {
		f := *good
		f.Version = SchedFileVersion + 1
		if err := f.validate(); err == nil || !strings.Contains(err.Error(), "unsupported schedule file version") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("choice-out-of-range", func(t *testing.T) {
		f := *good
		f.Choices = append([][2]int{{2, 5}}, f.Choices...)
		if err := f.validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unsealed", func(t *testing.T) {
		f := NewSchedFile("pathexpr", problems.NameReadersPriority, "figure", schedule)
		if _, _, err := f.Verify(prog, oracle); err == nil || !strings.Contains(err.Error(), "fingerprint") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("drifted-program", func(t *testing.T) {
		// Replaying against a different program must trip drift detection:
		// either the strict replay diverges or the fingerprint mismatches.
		other := Program(func(k kernel.Kernel, r *trace.Recorder) {
			k.Spawn("lone", func(p *kernel.Proc) { p.Yield() })
		})
		if _, _, err := good.Verify(other, oracle); err == nil ||
			!strings.Contains(err.Error(), "drifted") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("malformed-json", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "bad.sched")
		if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSchedFile(path); err == nil {
			t.Fatal("malformed JSON accepted")
		}
	})
}
