// Counterexample shrinking: delta debugging over schedules.
//
// A finding's Schedule is the violating run's full choice sequence —
// typically dozens to hundreds of choices, most of them irrelevant to the
// violation. The paper's footnote-3 interleaving is persuasive precisely
// because Bloom's hand-built version is small enough to read; the
// shrinker recovers that quality mechanically. It minimizes along the two
// axes a schedule has: *length* (ddmin chunk removal — dropping a choice
// shifts the decision points after it, and the replay policy's FIFO
// fallback absorbs the tail) and *content* (substituting the FIFO default
// for individual picks, so the surviving non-default choices are exactly
// the deviations the violation needs). A final single-removal fixpoint
// pass guarantees 1-minimality: removing any one choice from MinSchedule
// no longer reproduces the violation.
//
// Every accepted candidate is canonicalized to what the kernel actually
// recorded while replaying it (clamped picks resolved, ready counts made
// exact, default tail trimmed), so the published MinSchedule replays
// under kernel.ExactReplay and can be saved as a schedule artifact.
//
// Shrinking runs on the driver goroutine and replays through the same
// executor as the search, reusing pooled kernels; with Options.Pool the
// steady-state cost of a shrink step is one short replay. Candidate
// generation is a pure function of the original schedule, so MinSchedule
// and ShrinkRuns are identical for every Options.Workers setting.
package explore

import (
	"errors"

	"repro/internal/kernel"
	"repro/internal/problems"
)

// shrinkTarget is the violation the minimized schedule must preserve:
// either "same oracle rule" (any of the original finding's rules) or
// "same kernel error class".
type shrinkTarget struct {
	wantErr      bool
	wantDeadlock bool
	rules        map[string]bool
}

// targetOf derives the preservation target from a finding. The second
// result is false when the finding is not shrinkable: no schedule, or an
// engine-level error (a PruneAudit failure) rather than a property of one
// run.
func targetOf(res *Result) (shrinkTarget, bool) {
	if len(res.Schedule) == 0 {
		return shrinkTarget{}, false
	}
	if res.Err != nil {
		if len(res.Violations) > 0 {
			// An audit error stapled onto an oracle finding; the Err is
			// not reproducible by replaying one schedule.
			return shrinkTarget{}, false
		}
		return shrinkTarget{
			wantErr:      true,
			wantDeadlock: errors.Is(res.Err, kernel.ErrDeadlock),
		}, true
	}
	tgt := shrinkTarget{rules: make(map[string]bool, len(res.Violations))}
	for _, v := range res.Violations {
		tgt.rules[v.Rule] = true
	}
	if len(tgt.rules) == 0 {
		return shrinkTarget{}, false
	}
	return tgt, true
}

// matches judges one candidate replay against the target.
func (tgt shrinkTarget) matches(out runOut, oracle Oracle, opts Options) bool {
	if out.err != nil {
		if !tgt.wantErr || opts.IgnoreKernelErrors {
			return false
		}
		if tgt.wantDeadlock {
			return errors.Is(out.err, kernel.ErrDeadlock)
		}
		return true
	}
	if tgt.wantErr {
		return false
	}
	var vs []problems.Violation
	if out.streamed {
		vs = out.streamVs
	} else {
		vs = oracle(out.tr)
	}
	for _, v := range vs {
		if tgt.rules[v.Rule] {
			return true
		}
	}
	return false
}

// shrinker is the minimization state: target, executor, and the tracker
// feeding ShrinkRuns/progress.
type shrinker struct {
	e      *executor
	prog   Program
	oracle Oracle
	opts   Options
	tgt    shrinkTarget
	t      *tracker
	res    *Result
}

// shrinkResult minimizes res.Schedule into res.MinSchedule. It mutates
// only MinSchedule and ShrinkRuns; the finding itself (Schedule, Trace,
// Violations, Runs) is untouched, so shrinking never changes what was
// found, only how it is presented.
func shrinkResult(e *executor, prog Program, oracle Oracle, opts Options, res *Result, t *tracker) {
	tgt, ok := targetOf(res)
	if !ok {
		return
	}
	s := &shrinker{e: e, prog: prog, oracle: oracle, opts: opts, tgt: tgt, t: t, res: res}
	best, ok := s.attempt(res.Schedule)
	if !ok {
		// The finding does not reproduce under plain replay. That means
		// the program is not schedule-deterministic — nothing the
		// shrinker does is sound, so leave MinSchedule nil.
		return
	}
	best = s.ddmin(best)
	best = s.substituteDefaults(best)
	best = s.oneMinimal(best)
	res.MinSchedule = best
}

// attempt replays cand and, when the run still matches the target,
// returns the canonicalized equivalent: the choices the kernel actually
// recorded (truncated to the candidate's length, default tail trimmed).
// The canonical form replays identically — picks beyond the candidate are
// the FIFO default the fallback would supply anyway — but has exact Ready
// values, which ExactReplay and the schedule-file fingerprint need.
func (s *shrinker) attempt(cand []kernel.Choice) ([]kernel.Choice, bool) {
	out := s.e.run(s.prog, kernel.Replay(cand))
	ok := s.tgt.matches(out, s.oracle, s.opts)
	var canon []kernel.Choice
	if ok {
		rec := out.schedule
		if len(rec) > len(cand) {
			rec = rec[:len(cand)]
		}
		canon = trimDefaultTail(append([]kernel.Choice(nil), rec...))
	}
	s.e.release(out)
	s.res.ShrinkRuns++
	bestLen := s.t.st.ShrinkLen
	if ok {
		bestLen = len(canon)
	}
	s.t.shrank(bestLen)
	return canon, ok
}

// trimDefaultTail drops trailing FIFO-default choices: Replay's fallback
// regenerates them, so they carry no information.
func trimDefaultTail(cs []kernel.Choice) []kernel.Choice {
	n := len(cs)
	for n > 0 && cs[n-1].Picked == 0 {
		n--
	}
	return cs[:n]
}

// ddmin is Zeller's delta-debugging minimization over the choice
// sequence: try removing each of n complement chunks, recursing to finer
// granularity when nothing at the current one reproduces the violation.
func (s *shrinker) ddmin(best []kernel.Choice) []kernel.Choice {
	n := 2
	for len(best) >= 2 {
		chunk := (len(best) + n - 1) / n
		reduced := false
		for start := 0; start < len(best); start += chunk {
			end := min(start+chunk, len(best))
			cand := make([]kernel.Choice, 0, len(best)-(end-start))
			cand = append(cand, best[:start]...)
			cand = append(cand, best[end:]...)
			if canon, ok := s.attempt(cand); ok {
				best = canon
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(best) {
				break
			}
			n = min(n*2, len(best))
		}
	}
	return best
}

// substituteDefaults tries to replace each surviving non-default pick
// with the FIFO default, so MinSchedule's non-zero picks are exactly the
// deviations the violation requires.
func (s *shrinker) substituteDefaults(best []kernel.Choice) []kernel.Choice {
	for i := 0; i < len(best); i++ {
		if best[i].Picked == 0 {
			continue
		}
		cand := append([]kernel.Choice(nil), best...)
		cand[i].Picked = 0
		if canon, ok := s.attempt(cand); ok {
			best = canon
			// The canonical form may be shorter (trimmed tail); the next
			// iteration re-checks from the current index.
			i--
		}
	}
	return best
}

// oneMinimal removes single choices to a fixpoint. ddmin already ends at
// granularity 1, but the substitutions after it can unlock further
// removals; this pass restores the guarantee that dropping any one choice
// from the result no longer reproduces the violation.
func (s *shrinker) oneMinimal(best []kernel.Choice) []kernel.Choice {
	for {
		improved := false
		for i := 0; i < len(best); i++ {
			cand := make([]kernel.Choice, 0, len(best)-1)
			cand = append(cand, best[:i]...)
			cand = append(cand, best[i+1:]...)
			if canon, ok := s.attempt(cand); ok {
				best = canon
				improved = true
				break
			}
		}
		if !improved {
			return best
		}
	}
}
