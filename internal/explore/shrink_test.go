package explore

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/trace"
)

// ruleSet collects the violation rules of a finding, the shrinker's
// preservation target.
func ruleSet(vs []problems.Violation) map[string]bool {
	set := make(map[string]bool, len(vs))
	for _, v := range vs {
		set[v.Rule] = true
	}
	return set
}

// hitsRule reports whether replaying schedule still triggers any of the
// target rules.
func hitsRule(t *testing.T, prog Program, schedule []kernel.Choice, rules map[string]bool, oracle Oracle) bool {
	t.Helper()
	tr, err := Replay(prog, schedule, 0)
	if err != nil {
		return false
	}
	for _, v := range oracle(tr) {
		if rules[v.Rule] {
			return true
		}
	}
	return false
}

// The shrinking property test: the minimized Figure-1 schedule still
// triggers the original violation rule, is drastically shorter than the
// finding (the acceptance bar is <= 25% of the original length), replays
// under strict ExactReplay (canonicalization), and is 1-minimal —
// removing any single choice no longer reproduces the violation.
func TestShrinkPreservesViolation(t *testing.T) {
	prog := figure1Program()
	oracle := Oracle(problems.CheckReadersPriority)
	res := Run(prog, oracle, Options{
		RandomRuns: 300, DFSRuns: 600, Shrink: true, Pool: true,
	})
	if !res.Found || res.Err != nil {
		t.Fatalf("no oracle finding: found=%v err=%v runs=%d", res.Found, res.Err, res.Runs)
	}
	if res.MinSchedule == nil {
		t.Fatalf("Shrink produced no MinSchedule (ShrinkRuns=%d)", res.ShrinkRuns)
	}
	if res.ShrinkRuns == 0 {
		t.Fatalf("ShrinkRuns = 0 with Shrink enabled")
	}
	rules := ruleSet(res.Violations)

	// Still the same violation.
	if !hitsRule(t, prog, res.MinSchedule, rules, oracle) {
		t.Fatalf("minimized schedule no longer triggers %v:\n%v", rules, res.MinSchedule)
	}

	// Much shorter than the finding.
	if len(res.MinSchedule)*4 > len(res.Schedule) {
		t.Fatalf("minimized schedule is %d choices, original %d (want <= 25%%)",
			len(res.MinSchedule), len(res.Schedule))
	}

	// Canonicalized: replays under strict ExactReplay, no drift.
	if _, _, _, divErr := exactReplay(prog, res.MinSchedule, 0); divErr != nil {
		t.Fatalf("MinSchedule is not canonical: %v", divErr)
	}

	// 1-minimal: dropping any single choice loses the violation.
	for i := range res.MinSchedule {
		cand := make([]kernel.Choice, 0, len(res.MinSchedule)-1)
		cand = append(cand, res.MinSchedule[:i]...)
		cand = append(cand, res.MinSchedule[i+1:]...)
		if hitsRule(t, prog, cand, rules, oracle) {
			t.Fatalf("not 1-minimal: removing choice %d of %v still violates", i, res.MinSchedule)
		}
	}
}

// Shrinking a kernel-error finding preserves the error class. A program
// that deadlocks under every schedule shrinks all the way to the empty
// schedule: plain FIFO already reproduces it.
func TestShrinkDeadlockFinding(t *testing.T) {
	prog := Program(func(k kernel.Kernel, r *trace.Recorder) {
		k.Spawn("stuck1", func(p *kernel.Proc) { p.Yield(); p.Park() })
		k.Spawn("stuck2", func(p *kernel.Proc) { p.Yield(); p.Park() })
	})
	res := Run(prog, func(trace.Trace) []problems.Violation { return nil },
		Options{RandomRuns: 3, DFSRuns: 0, Shrink: true})
	if !res.Found || !errors.Is(res.Err, kernel.ErrDeadlock) {
		t.Fatalf("res = %+v", res)
	}
	if len(res.MinSchedule) != 0 {
		t.Fatalf("MinSchedule = %v, want empty (FIFO deadlocks)", res.MinSchedule)
	}
	if _, err := Replay(prog, res.MinSchedule, 0); !errors.Is(err, kernel.ErrDeadlock) {
		t.Fatalf("replaying MinSchedule: err = %v, want deadlock", err)
	}
}

// The determinism contract extends to shrinking: with Shrink enabled the
// entire Result — MinSchedule, ShrinkRuns, Stats, everything — is
// byte-identical across Workers settings.
func TestShrinkWorkersDeterministic(t *testing.T) {
	oracle := Oracle(problems.CheckReadersPriority)
	cases := []struct {
		name string
		opts Options
	}{
		{"random-finding", Options{RandomRuns: 300, DFSRuns: 600, Shrink: true, Pool: true}},
		{"dfs-finding", Options{RandomRuns: -1, DFSRuns: 2000, DFSDepth: 24, Shrink: true, Pool: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqOpts := tc.opts
			seqOpts.Workers = 1
			parOpts := tc.opts
			parOpts.Workers = 8
			seq := Run(figure1Program(), oracle, seqOpts)
			par := Run(figure1Program(), oracle, parOpts)
			if !seq.Found {
				t.Fatalf("found nothing in %d runs", seq.Runs)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("Result depends on Workers with Shrink on:\n  w=1: %+v\n  w=8: %+v", seq, par)
			}
		})
	}
}

// Result.Stats carries only the deterministic counters, consistent with
// the rest of the Result; the wall-clock and pool fields are zeroed.
func TestResultStatsDeterministic(t *testing.T) {
	res := Run(figure1Program(), problems.CheckReadersPriority,
		Options{RandomRuns: 300, DFSRuns: 600, Shrink: true, Pool: true})
	want := StatsCore{
		Phase:      "done",
		Runs:       res.Runs,
		Pruned:     res.Pruned,
		ShrinkRuns: res.ShrinkRuns,
		ShrinkLen:  len(res.MinSchedule),
	}
	if res.Stats != want {
		t.Fatalf("Result.Stats = %+v, want %+v", res.Stats, want)
	}
}

// Progress snapshots arrive in phase order with monotonic counters, and
// observing them does not change the Result.
func TestProgressCallback(t *testing.T) {
	var snaps []Stats
	opts := Options{RandomRuns: 300, DFSRuns: 600, Shrink: true, Pool: true, Workers: 1}
	opts.Progress = func(s Stats) { snaps = append(snaps, s) }
	res := Run(figure1Program(), problems.CheckReadersPriority, opts)
	if !res.Found {
		t.Fatalf("found nothing in %d runs", res.Runs)
	}
	if len(snaps) == 0 {
		t.Fatal("Progress never called")
	}
	phaseRank := map[string]int{"baseline": 0, "random": 1, "dfs": 2, "shrink": 3, "done": 4}
	lastRank, lastRuns, lastShrink := -1, 0, 0
	sawShrink := false
	for i, s := range snaps {
		rank, ok := phaseRank[s.Phase]
		if !ok {
			t.Fatalf("snapshot %d: unknown phase %q", i, s.Phase)
		}
		if rank < lastRank {
			t.Fatalf("snapshot %d: phase %q after rank %d", i, s.Phase, lastRank)
		}
		if s.Runs < lastRuns || s.ShrinkRuns < lastShrink {
			t.Fatalf("snapshot %d: counters went backwards: %+v", i, s)
		}
		lastRank, lastRuns, lastShrink = rank, s.Runs, s.ShrinkRuns
		if s.Phase == "shrink" {
			sawShrink = true
		}
	}
	if !sawShrink {
		t.Fatal("no shrink-phase snapshot observed")
	}
	final := snaps[len(snaps)-1]
	if final.Phase != "done" || final.Runs != res.Runs || final.ShrinkRuns != res.ShrinkRuns {
		t.Fatalf("final snapshot %+v does not match Result (runs=%d shrinkRuns=%d)",
			final, res.Runs, res.ShrinkRuns)
	}
	// The same exploration without Progress returns the same Result.
	quiet := opts
	quiet.Progress = nil
	if again := Run(figure1Program(), problems.CheckReadersPriority, quiet); !reflect.DeepEqual(again, res) {
		t.Fatalf("Progress observation changed the Result:\n  with:    %+v\n  without: %+v", res, again)
	}
}
