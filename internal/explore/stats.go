package explore

import "time"

// Stats is a snapshot of the exploration engine's progress, delivered to
// Options.Progress as the driver judges runs and stamped (deterministic
// fields only) into Result.Stats when Run returns.
//
// The fields split into two groups. The counters — Phase, Runs, Pruned,
// Frontier, ShrinkRuns, ShrinkLen — are driver-side bookkeeping and are
// byte-identical for every Options.Workers setting, like everything else
// in a Result. The observability fields — Elapsed, RunsPerSec, PoolSlots,
// PoolReuses — depend on wall clock and worker count; they are populated
// in Progress snapshots for live rendering but zeroed in Result.Stats so
// results stay reproducible.
type Stats struct {
	// Phase is the engine's current phase: "baseline", "random", "dfs",
	// "shrink", or "done".
	Phase string
	// Runs is the number of schedules judged so far (shrink replays are
	// counted separately in ShrinkRuns).
	Runs int
	// Pruned counts sibling schedules skipped by fingerprint pruning.
	Pruned int
	// Frontier is the current DFS frontier depth (unexplored prefixes on
	// the stack); 0 outside the DFS phase.
	Frontier int
	// ShrinkRuns is the number of replays the shrinker has executed.
	ShrinkRuns int
	// ShrinkLen is the length of the best minimized schedule so far; 0
	// until the shrink phase starts.
	ShrinkLen int

	// Elapsed is the wall-clock time since Run started. Observability
	// only: zero in Result.Stats.
	Elapsed time.Duration
	// RunsPerSec is the judged-run throughput (including shrink replays).
	// Observability only: zero in Result.Stats.
	RunsPerSec float64
	// PoolSlots is the number of kernel slots the executor has created;
	// PoolReuses the number of runs served by a recycled slot. Both are
	// worker-dependent; observability only, zero in Result.Stats.
	PoolSlots  int
	PoolReuses int
}

// tracker owns the engine's Stats and feeds Options.Progress. It lives on
// the driver: every mutation happens on the single goroutine that judges
// runs, so no locking is needed, and the counter stream is identical for
// every worker count.
type tracker struct {
	e        *executor
	progress func(Stats)
	start    time.Time
	st       Stats
}

func newTracker(e *executor, opts Options) *tracker {
	return &tracker{e: e, progress: opts.Progress, start: time.Now()}
}

// silent returns a tracker sharing e but emitting no progress — for
// reference passes (PruneAudit) whose runs are not part of the canonical
// counter stream.
func (t *tracker) silent() *tracker {
	return &tracker{e: t.e, st: t.st}
}

// phase marks a phase transition.
func (t *tracker) phase(name string) {
	t.st.Phase = name
	t.emit()
}

// ran records one judged run.
func (t *tracker) ran() {
	t.st.Runs++
	t.emit()
}

// shrank records one shrinker replay and the current best length.
func (t *tracker) shrank(bestLen int) {
	t.st.ShrinkRuns++
	t.st.ShrinkLen = bestLen
	t.emit()
}

func (t *tracker) emit() {
	if t.progress == nil {
		return
	}
	s := t.st
	s.Elapsed = time.Since(t.start)
	if secs := s.Elapsed.Seconds(); secs > 0 {
		s.RunsPerSec = float64(s.Runs+s.ShrinkRuns) / secs
	}
	s.PoolSlots, s.PoolReuses = t.e.poolStats()
	t.progress(s)
}

// deterministic returns the final Stats for a Result: counters only, with
// the wall-clock and worker-dependent fields zeroed.
func (t *tracker) deterministic(res *Result) Stats {
	return Stats{
		Phase:      "done",
		Runs:       res.Runs,
		Pruned:     res.Pruned,
		ShrinkRuns: res.ShrinkRuns,
		ShrinkLen:  len(res.MinSchedule),
	}
}
