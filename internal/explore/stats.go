package explore

import "time"

// StatsCore is the deterministic core of the exploration engine's
// progress: driver-side counters that are byte-identical for every
// Options.Workers setting, like everything else in a Result. It is what
// Run stamps into Result.Stats — the wall-clock and pool observability
// fields live in Stats, the live view delivered to Options.Progress, and
// never reach a Result.
type StatsCore struct {
	// Phase is the engine's current phase: "baseline", "random", "dfs",
	// "shrink", or "done".
	Phase string
	// Runs is the number of schedules judged so far (shrink replays are
	// counted separately in ShrinkRuns).
	Runs int
	// Pruned counts sibling schedules skipped by fingerprint pruning.
	Pruned int
	// Frontier is the current DFS frontier depth (unexplored prefixes on
	// the stack); 0 outside the DFS phase.
	Frontier int
	// ShrinkRuns is the number of replays the shrinker has executed.
	ShrinkRuns int
	// ShrinkLen is the length of the best minimized schedule so far; 0
	// until the shrink phase starts.
	ShrinkLen int
	// CheckpointForks is the number of DFS runs that forked from a
	// checkpoint instead of replaying their prefix from the root
	// (Options.Checkpoint). Counted canonically on the driver, so it is
	// Workers-independent even though helper workers always execute by
	// full replay.
	CheckpointForks int
	// SavedSteps counts prefix steps served from a checkpoint across all
	// forked runs: steps the scheduler re-drove with the per-step
	// pipeline — policy consultation, choice/fingerprint/visibility/mark
	// recording, trace appends — skipped.
	SavedSteps int64
	// ReplayedSteps counts prefix steps executed through the full
	// pipeline: the whole prefix of DFS runs that found no usable
	// checkpoint, plus the post-checkpoint suffix of the prefix of
	// forked runs. Dense checkpoint hits show up as SavedSteps >>
	// ReplayedSteps. Zero (like CheckpointForks and SavedSteps) unless
	// Options.Checkpoint.
	ReplayedSteps int64
	// BacktrackPoints counts the backtrack nodes partial-order reduction
	// pushed onto the DFS frontier: the persistent-set branches the
	// happens-before analysis demanded. Zero unless Options.DPOR.
	BacktrackPoints int
	// DPORBlocked counts sibling alternatives that plain DFS branching
	// would have pushed and partial-order reduction did not — the
	// schedules proven commuting with an explored one. Zero unless
	// Options.DPOR.
	DPORBlocked int
	// Exhausted reports that the DFS frontier emptied before the run
	// budget did: every schedule the (possibly reduced) search considers
	// distinct has been judged.
	Exhausted bool
	// ScheduleSpaceLog2 is log2 of the total number of interleavings of
	// the scenario, computed from the baseline run's happens-before order
	// by linear-extension counting. Zero unless Options.DPOR.
	ScheduleSpaceLog2 float64
	// ScheduleSpaceExact reports whether ScheduleSpaceLog2 is an exact
	// linear-extension count (dynamic programming over the step DAG) or
	// the multinomial upper bound used when the DAG is too large.
	ScheduleSpaceExact bool
	// ExploredFraction is the judged fraction of the schedule space:
	// Runs / 2^ScheduleSpaceLog2, clamped to 1, and exactly 1 when
	// Exhausted (the reduced search covers every equivalence class even
	// though it ran far fewer schedules). Zero unless Options.DPOR.
	ExploredFraction float64
}

// Stats is a snapshot of the exploration engine's progress, delivered to
// Options.Progress as the driver judges runs. It embeds the
// deterministic StatsCore and adds observability fields — wall clock,
// throughput, pool occupancy — that depend on the machine and worker
// count; only the StatsCore part is stamped into Result.Stats, so
// results stay reproducible.
type Stats struct {
	StatsCore

	// Elapsed is the wall-clock time since Run started. Observability
	// only: never part of Result.Stats.
	Elapsed time.Duration
	// RunsPerSec is the judged-run throughput (including shrink replays).
	// Observability only: never part of Result.Stats.
	RunsPerSec float64
	// PoolSlots is the number of kernel slots the executor has created;
	// PoolReuses the number of runs served by a recycled slot. Both are
	// worker-dependent; observability only, never part of Result.Stats.
	PoolSlots  int
	PoolReuses int
}

// tracker owns the engine's Stats and feeds Options.Progress. It lives on
// the driver: every mutation happens on the single goroutine that judges
// runs, so no locking is needed, and the counter stream is identical for
// every worker count.
type tracker struct {
	e        *executor
	progress func(Stats)
	start    time.Time
	st       Stats

	// Schedule-space coverage, noted once from the baseline run when
	// Options.DPOR is on (see coverage.go).
	covered  bool
	covLog2  float64
	covExact bool
}

func newTracker(e *executor, opts Options) *tracker {
	return &tracker{e: e, progress: opts.Progress, start: time.Now()}
}

// silent returns a tracker sharing e but emitting no progress — for
// reference passes (PruneAudit) whose runs are not part of the canonical
// counter stream.
func (t *tracker) silent() *tracker {
	return &tracker{e: t.e, st: t.st}
}

// phase marks a phase transition.
func (t *tracker) phase(name string) {
	t.st.Phase = name
	t.emit()
}

// ran records one judged run.
func (t *tracker) ran() {
	t.st.Runs++
	t.emit()
}

// shrank records one shrinker replay and the current best length.
func (t *tracker) shrank(bestLen int) {
	t.st.ShrinkRuns++
	t.st.ShrinkLen = bestLen
	t.emit()
}

// forked records one DFS run that forked from a checkpoint: saved prefix
// steps were served from the snapshot, replayed steps ran the full
// pipeline.
func (t *tracker) forked(saved, replayed int) {
	t.st.CheckpointForks++
	t.st.SavedSteps += int64(saved)
	t.st.ReplayedSteps += int64(replayed)
}

// replayed records one DFS run that replayed its whole prefix from the
// root (no usable checkpoint).
func (t *tracker) replayed(prefix int) {
	t.st.ReplayedSteps += int64(prefix)
}

// noteCoverage records the scenario's schedule-space size, measured once
// from the baseline run's happens-before order.
func (t *tracker) noteCoverage(log2 float64, exact bool) {
	t.covered = true
	t.covLog2 = log2
	t.covExact = exact
	t.st.ScheduleSpaceLog2 = log2
	t.st.ScheduleSpaceExact = exact
}

func (t *tracker) emit() {
	if t.progress == nil {
		return
	}
	s := t.st
	s.Elapsed = time.Since(t.start)
	if secs := s.Elapsed.Seconds(); secs > 0 {
		s.RunsPerSec = float64(s.Runs+s.ShrinkRuns) / secs
	}
	s.PoolSlots, s.PoolReuses = t.e.poolStats()
	t.progress(s)
}

// deterministic returns the final StatsCore for a Result: the driver's
// canonical counters, with the live-only fields left behind in Stats.
func (t *tracker) deterministic(res *Result) StatsCore {
	st := StatsCore{
		Phase:           "done",
		Runs:            res.Runs,
		Pruned:          res.Pruned,
		ShrinkRuns:      res.ShrinkRuns,
		ShrinkLen:       len(res.MinSchedule),
		CheckpointForks: t.st.CheckpointForks,
		SavedSteps:      t.st.SavedSteps,
		ReplayedSteps:   t.st.ReplayedSteps,
		BacktrackPoints: t.st.BacktrackPoints,
		DPORBlocked:     t.st.DPORBlocked,
		Exhausted:       t.st.Exhausted,
	}
	if t.covered {
		st.ScheduleSpaceLog2 = t.covLog2
		st.ScheduleSpaceExact = t.covExact
		st.ExploredFraction = exploredFraction(res.Runs, t.st.Exhausted, t.covLog2)
	}
	return st
}
