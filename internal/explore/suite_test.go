package explore

import (
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/solutions/pathexprsol"
	"repro/internal/trace"
)

// figure1Program is the footnote-3 scenario over a fresh path-expression
// readers-priority instance per run — the exploration engine's canonical
// "there is a bug to find" workload.
func figure1Program() Program {
	return func(k kernel.Kernel, r *trace.Recorder) {
		rwScenario(pathexprsol.NewReadersPriority())(k, r)
	}
}

// Pruning must reach the first Figure-1 finding in at least 5x fewer
// schedules than plain DFS (the acceptance bar for this optimization),
// and both searches must find the anomaly at all.
func TestPruneReachesFindingFaster(t *testing.T) {
	opts := Options{RandomRuns: -1, DFSRuns: 2000, DFSDepth: 24}
	plain := Run(figure1Program(), problems.CheckReadersPriority, opts)
	if !plain.Found {
		t.Fatalf("plain DFS found nothing in %d runs", plain.Runs)
	}

	pruned := opts
	pruned.Prune = true
	fast := Run(figure1Program(), problems.CheckReadersPriority, pruned)
	if !fast.Found {
		t.Fatalf("pruned DFS found nothing in %d runs (pruned %d)", fast.Runs, fast.Pruned)
	}
	if fast.Err != nil {
		t.Fatalf("pruned DFS reported a kernel error: %v", fast.Err)
	}
	if fast.Runs*5 > plain.Runs {
		t.Fatalf("pruning saved too little: %d runs pruned vs %d plain (want >= 5x fewer)",
			fast.Runs, plain.Runs)
	}
	if fast.Pruned == 0 {
		t.Fatalf("pruned DFS reports Pruned = 0")
	}
	// The pruned finding must still replay to a real violation.
	tr, err := Replay(figure1Program(), fast.Schedule, 0)
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if vs := problems.CheckReadersPriority(tr); len(vs) == 0 {
		t.Fatalf("pruned finding does not replay:\n%s", tr)
	}
}

// The prune audit cross-check must pass over the full T4 suite: for every
// mechanism x problem pairing, the unpruned DFS frontier surfaces no
// violation rule that the pruned search missed. Findings themselves are
// fine (a few pairings are known-imperfect; that is the paper's point) —
// only an audit failure is a bug in the pruning.
func TestPruneAuditT4Suite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite audit is slow")
	}
	for _, suite := range solutions.All() {
		for _, problem := range problems.AllProblems() {
			suite, problem := suite, problem
			t.Run(suite.Mechanism+"/"+problem, func(t *testing.T) {
				t.Parallel()
				strict := !(suite.Mechanism == "pathexpr" && problem == problems.NameReadersPriority)
				prog, check, err := solutions.StandardProgram(suite, problem, strict)
				if err != nil {
					t.Fatal(err)
				}
				res := Run(Program(prog), check, Options{
					RandomRuns: -1,
					DFSRuns:    150,
					DFSDepth:   16,
					PruneAudit: true,
					Pool:       true,
				})
				if res.Err != nil && strings.Contains(res.Err.Error(), "prune audit") {
					t.Fatalf("prune audit failed: %v", res.Err)
				}
			})
		}
	}
}

// Pool and Prune are throughput knobs, not semantics knobs: pooled
// exploration returns exactly the unpooled Result, and pruned exploration
// is identical across worker counts (its pruning decisions are driver-side
// and canonical-order).
func TestPoolAndPruneDeterminism(t *testing.T) {
	oracle := Oracle(problems.CheckReadersPriority)
	base := Options{RandomRuns: 100, DFSRuns: 400, DFSDepth: 24}

	t.Run("pool-matches-unpooled", func(t *testing.T) {
		plain := Run(figure1Program(), oracle, base)
		pooled := base
		pooled.Pool = true
		got := Run(figure1Program(), oracle, pooled)
		if plain.Found != got.Found || plain.Runs != got.Runs ||
			!reflect.DeepEqual(plain.Schedule, got.Schedule) ||
			!reflect.DeepEqual(plain.Trace, got.Trace) ||
			!reflect.DeepEqual(plain.Violations, got.Violations) {
			t.Fatalf("pooled result diverged:\n  plain:  found=%v runs=%d sched=%v\n  pooled: found=%v runs=%d sched=%v",
				plain.Found, plain.Runs, plain.Schedule, got.Found, got.Runs, got.Schedule)
		}
	})

	t.Run("prune-workers-independent", func(t *testing.T) {
		opts := base
		opts.Prune = true
		opts.Pool = true
		opts.Workers = 1
		seq := Run(figure1Program(), oracle, opts)
		opts.Workers = 8
		par := Run(figure1Program(), oracle, opts)
		if seq.Found != par.Found || seq.Runs != par.Runs || seq.Pruned != par.Pruned ||
			!reflect.DeepEqual(seq.Schedule, par.Schedule) {
			t.Fatalf("pruned result depends on Workers:\n  w=1: found=%v runs=%d pruned=%d\n  w=8: found=%v runs=%d pruned=%d",
				seq.Found, seq.Runs, seq.Pruned, par.Found, par.Runs, par.Pruned)
		}
		if !seq.Found {
			t.Fatalf("pruned search found nothing in %d runs", seq.Runs)
		}
	})

	t.Run("stream-matches-batch-judging", func(t *testing.T) {
		inc, ok := problems.IncrementalOracleFor(problems.NameReadersPriority)
		if !ok {
			t.Fatal("no incremental oracle for readers-priority")
		}
		batch := Run(figure1Program(), inc.Check, base)
		streamed := base
		streamed.Pool = true
		streamed.Stream = inc.New
		got := Run(figure1Program(), inc.Check, streamed)
		// A streaming checker agrees with the batch oracle on complete
		// traces, so the first violating run — and therefore Runs — is
		// pinned. The streamed run is cut short at the violation, so its
		// recorded Schedule is a prefix of the batch run's, and the trace
		// may omit violations past the first.
		if batch.Found != got.Found || batch.Runs != got.Runs {
			t.Fatalf("streamed result diverged:\n  batch:  found=%v runs=%d\n  stream: found=%v runs=%d",
				batch.Found, batch.Runs, got.Found, got.Runs)
		}
		if len(got.Schedule) > len(batch.Schedule) ||
			!reflect.DeepEqual(got.Schedule, batch.Schedule[:len(got.Schedule)]) {
			t.Fatalf("streamed Schedule is not a prefix of the batch one:\n  batch:  %v\n  stream: %v",
				batch.Schedule, got.Schedule)
		}
		if len(got.Violations) == 0 {
			t.Fatalf("streamed finding carries no violations")
		}
		// The cut-short schedule must still replay to a violating run.
		tr, err := Replay(figure1Program(), got.Schedule, 0)
		if err != nil {
			t.Fatalf("replay failed: %v", err)
		}
		if vs := inc.Check(tr); len(vs) == 0 {
			t.Fatalf("streamed finding does not replay:\n%s", tr)
		}
	})
}

// The streaming overtaking checker must agree with the batch oracle on
// complete traces: same rule at the same sequence numbers, over hundreds
// of random schedules of both a buggy and a clean solution.
func TestStreamMatchesBatch(t *testing.T) {
	type vkey struct {
		rule string
		seq  int64
	}
	collect := func(vs []problems.Violation) []vkey {
		var out []vkey
		for _, v := range vs {
			out = append(out, vkey{v.Rule, v.Seq})
		}
		return out
	}
	for _, problem := range []string{problems.NameReadersPriority, problems.NameWritersPriority} {
		inc, ok := problems.IncrementalOracleFor(problem)
		if !ok {
			t.Fatalf("no incremental oracle for %s", problem)
		}
		checker := inc.New()
		for seed := int64(1); seed <= 300; seed++ {
			k := kernel.NewSim(kernel.WithPolicy(kernel.Random(seed)))
			r := trace.NewRecorder(k)
			figure1Program()(k, r)
			if err := k.Run(); err != nil {
				t.Fatalf("%s seed %d: %v", problem, seed, err)
			}
			tr := r.Events()

			checker.Reset()
			var streamed []problems.Violation
			for _, e := range tr {
				streamed = append(streamed, checker.Observe(e)...)
			}
			want := collect(inc.Check(tr))
			got := collect(streamed)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s seed %d: batch %v, stream %v\n%s", problem, seed, want, got, tr)
			}
		}
	}
}

// Pooled exploration parks worker goroutines between runs; Run must
// release them on exit (executor.close -> SimKernel.Close), so repeated
// pooled explorations cannot accumulate goroutines.
func TestPoolNoGoroutineLeak(t *testing.T) {
	perRun := Program(func(k kernel.Kernel, r *trace.Recorder) {
		k.Spawn("stuck1", func(p *kernel.Proc) { p.Park() })
		k.Spawn("stuck2", func(p *kernel.Proc) { p.Yield(); p.Park() })
	})
	base := runtime.NumGoroutine()
	for i := 0; i < 500; i++ {
		res := Run(perRun, func(trace.Trace) []problems.Violation { return nil },
			Options{RandomRuns: 2, DFSRuns: 2, Workers: 4, Pool: true})
		if !res.Found || !errors.Is(res.Err, kernel.ErrDeadlock) {
			t.Fatalf("run %d: res = %+v", i, res)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: started with %d, still %d after 500 pooled runs",
				base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A Reset kernel and recorder must be indistinguishable from fresh ones:
// for every T4 mechanism x problem pairing and a table of seeds, a reused
// (Reset between runs) kernel — in both plain and WithRecycle modes —
// produces byte-identical traces to a fresh kernel per run.
func TestResetReusedTracesIdentical(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 42}
	for _, mode := range []struct {
		name    string
		options []kernel.SimOption
	}{
		{"plain", nil},
		{"recycle", []kernel.SimOption{kernel.WithRecycle()}},
	} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			t.Parallel()
			for _, suite := range solutions.All() {
				for _, problem := range problems.AllProblems() {
					prog, _, err := solutions.StandardProgram(suite, problem, false)
					if err != nil {
						t.Fatal(err)
					}
					reused := kernel.NewSim(mode.options...)
					rr := trace.NewRecorder(reused)
					for _, seed := range seeds {
						fresh := kernel.NewSim(kernel.WithPolicy(kernel.Random(seed)))
						fr := trace.NewRecorder(fresh)
						prog(fresh, fr)
						freshErr := fresh.Run()

						reused.Reset(kernel.WithPolicy(kernel.Random(seed)))
						rr.Reset()
						prog(reused, rr)
						reusedErr := reused.Run()

						if (freshErr == nil) != (reusedErr == nil) {
							t.Fatalf("%s/%s seed %d: fresh err %v, reused err %v",
								suite.Mechanism, problem, seed, freshErr, reusedErr)
						}
						want, got := fr.Events(), rr.Events()
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("%s/%s seed %d: reused trace diverged\nfresh:\n%s\nreused:\n%s",
								suite.Mechanism, problem, seed, want, got)
						}
					}
					reused.Close()
				}
			}
		})
	}
}
