package kernel

// DepAccess records one shared-object access by a scheduling step. The
// dependency trace — the ordered list of (step, object) accesses of a
// run — is what the exploration engine's partial-order reduction
// consumes to reconstruct a happens-before relation: two steps of
// different processes are dependent iff they access a common object.
//
// Objects are opaque 64-bit identities: a per-process cell models the
// scheduling state one process exposes to others (its park permit,
// sleep timer, and lifecycle), and a single trace cell models the
// recorded event stream (the exploration oracles are sensitive to the
// relative order of *different* event kinds — a reader's Request vs a
// writer's Enter — so any two recording steps conflict unless already
// ordered). Every access is treated as a write; the relation is
// deliberately conservative, and Options.DPORAudit in package explore
// is the correctness gate for it.
type DepAccess struct {
	Step int32  // scheduling step performing the access; -1 before the first decision
	Obj  uint64 // accessed object identity
}

// objProc is the dependency-object identity of the per-process
// scheduling cell of process id.
func objProc(id int) uint64 { return uint64(id) }

// DepObjTrace is the dependency-object identity of the recorded trace —
// the single cell every recording step touches. Exported so consumers
// can separate the conservative recording conflicts from the true
// synchronization edges (per-process cells, readying causes): the
// exploration engine's race detection keeps trace conflicts (oracles
// are order-sensitive), while its schedule-space counting drops them
// (the denominator is the sync structure, not the instrumentation).
const DepObjTrace = uint64(1) << 63

// objTrace is the dependency-object identity of the recorded trace.
const objTrace = DepObjTrace

// WithDepTrace enables dependency-trace recording: the kernel records,
// per run, which shared objects each scheduling step accessed
// (DepAccesses), the ready set at every decision point (ReadySetIDs),
// and the step that readied each picked process (ReadyCauses). Like
// WithRecycle it persists across Reset; the records reuse their buffers,
// so the pooled exploration path stays allocation-free in steady state.
func WithDepTrace() SimOption {
	return func(k *SimKernel) { k.depTrace = true }
}

// noteDepLocked records an access to obj by the step in progress.
// Consecutive duplicate accesses are collapsed. Recording is suppressed
// while a snapshot prefix is re-driven: those records were pre-filled
// from the snapshot (WithRestore).
func (k *SimKernel) noteDepLocked(obj uint64) {
	if !k.depTrace || k.restore != nil {
		return
	}
	step := int32(k.steps) - 1
	if n := len(k.deps); n > 0 && k.deps[n-1].Step == step && k.deps[n-1].Obj == obj {
		return
	}
	k.deps = append(k.deps, DepAccess{Step: step, Obj: obj})
}

// NoteTraceDep records a trace-cell access by the step in progress; the
// trace recorder calls it whenever an event is recorded, alongside
// MarkStepVisible. Unlocked by the same cooperative-discipline argument
// as NowCooperative.
func (k *SimKernel) NoteTraceDep() {
	if !k.depTrace || k.restore != nil {
		return
	}
	step := int32(k.steps) - 1
	if n := len(k.deps); n > 0 && k.deps[n-1].Step == step && k.deps[n-1].Obj == objTrace {
		return
	}
	k.deps = append(k.deps, DepAccess{Step: step, Obj: objTrace})
}

// DepAccesses returns the run's dependency trace in nondecreasing step
// order. Empty unless WithDepTrace is enabled. Same aliasing contract
// as ChoicesView.
func (k *SimKernel) DepAccesses() []DepAccess {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.deps
}

// ReadySetIDs returns the process ids of every decision point's ready
// set, flattened in decision order: decision i's segment has length
// ChoicesView()[i].Ready and starts at the sum of the preceding
// decisions' Ready counts. Empty unless WithDepTrace is enabled. Same
// aliasing contract as ChoicesView.
func (k *SimKernel) ReadySetIDs() []int32 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.readyIDs
}

// ReadyCauses returns, per decision point, the scheduling step that
// readied the picked process (-1 for initial spawns and timer wakes),
// aligned with ChoicesView. Empty unless WithDepTrace is enabled. Same
// aliasing contract as ChoicesView.
func (k *SimKernel) ReadyCauses() []int32 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.causes
}
