package kernel

import (
	"reflect"
	"testing"
)

// collectDeps runs snapProgram under policy with dependency tracing and
// returns the recorded artifacts.
func collectDeps(t *testing.T, policy Policy) ([]DepAccess, []int32, []int32, []Choice) {
	t.Helper()
	k := NewSim(WithPolicy(policy), WithDepTrace())
	var events []string
	snapProgram(k, &events)
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return append([]DepAccess(nil), k.DepAccesses()...),
		append([]int32(nil), k.ReadySetIDs()...),
		append([]int32(nil), k.ReadyCauses()...),
		k.Choices()
}

// The dependency relation DPOR consumes — steps i and j are dependent
// iff they access a common object — must be symmetric and irreflexive by
// construction, and the records it is derived from must be well-formed:
// nondecreasing step order, steps within the run, adjacent duplicates
// collapsed, ready-set ids and causes aligned with the choices.
func TestDepTraceRelationProperties(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1979} {
		deps, readyIDs, causes, choices := collectDeps(t, Random(seed))
		if len(deps) == 0 {
			t.Fatalf("seed %d: no dependency accesses recorded", seed)
		}

		// Record well-formedness.
		total := 0
		for i, c := range choices {
			if c.Ready < 1 || c.Picked < 0 || c.Picked >= c.Ready {
				t.Fatalf("seed %d: malformed choice %d: %+v", seed, i, c)
			}
			total += c.Ready
		}
		if len(readyIDs) != total {
			t.Fatalf("seed %d: %d ready-set ids, want %d", seed, len(readyIDs), total)
		}
		if len(causes) != len(choices) {
			t.Fatalf("seed %d: %d causes, want %d", seed, len(causes), len(choices))
		}
		for i, c := range causes {
			if int(c) >= i {
				t.Fatalf("seed %d: cause of step %d is %d, not an earlier step", seed, i, c)
			}
		}
		for i := 1; i < len(deps); i++ {
			if deps[i].Step < deps[i-1].Step {
				t.Fatalf("seed %d: dependency trace out of order at %d: %v after %v",
					seed, i, deps[i], deps[i-1])
			}
			if deps[i] == deps[i-1] {
				t.Fatalf("seed %d: adjacent duplicate access %v", seed, deps[i])
			}
		}
		for _, d := range deps {
			if int(d.Step) >= len(choices) {
				t.Fatalf("seed %d: access %v beyond the run's %d steps", seed, d, len(choices))
			}
		}

		// The induced relation: dep(i, j) iff distinct steps share an
		// object. Symmetry and irreflexivity fall out of the definition;
		// exercise it as DPOR does, over the materialized pair set.
		objs := map[int32]map[uint64]bool{}
		for _, d := range deps {
			if d.Step < 0 {
				continue
			}
			if objs[d.Step] == nil {
				objs[d.Step] = map[uint64]bool{}
			}
			objs[d.Step][d.Obj] = true
		}
		dependent := func(i, j int32) bool {
			if i == j {
				return false
			}
			for o := range objs[i] {
				if objs[j][o] {
					return true
				}
			}
			return false
		}
		pairs := 0
		for i := range objs {
			for j := range objs {
				if dependent(i, j) {
					pairs++
					if !dependent(j, i) {
						t.Fatalf("seed %d: relation not symmetric at (%d, %d)", seed, i, j)
					}
				}
				if i == j && dependent(i, j) {
					t.Fatalf("seed %d: relation not irreflexive at %d", seed, i)
				}
			}
		}
		if pairs == 0 {
			t.Fatalf("seed %d: no dependent pairs in a program with unpark edges", seed)
		}
	}
}

// The same schedule must produce the same dependency trace no matter how
// it is driven — replayed from the root or restored from a snapshot at
// any depth. This is the stability DPOR's driver-side analysis relies on
// when checkpointed forks skip prefix replay.
func TestDepTraceStableAcrossSnapshotRestore(t *testing.T) {
	k := NewSim(WithPolicy(Random(42)), WithDepTrace())
	var events []string
	k.SetDecisionMark(func() int { return len(events) })
	snapProgram(k, &events)
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	schedule := k.Choices()
	baseDeps := append([]DepAccess(nil), k.DepAccesses()...)
	baseReady := append([]int32(nil), k.ReadySetIDs()...)
	baseCauses := append([]int32(nil), k.ReadyCauses()...)

	for depth := 1; depth < len(schedule); depth++ {
		snap, err := k.SnapshotAt(depth)
		if err != nil {
			t.Fatalf("SnapshotAt(%d): %v", depth, err)
		}
		k2 := NewSim(WithDepTrace())
		var events2 []string
		k2.Restore(snap, WithPolicy(Replay(schedule[depth:])))
		k2.SetDecisionMark(func() int { return len(events2) })
		snapProgram(k2, &events2)
		if err := k2.Run(); err != nil {
			t.Fatalf("depth %d: restored run: %v", depth, err)
		}
		if got := k2.DepAccesses(); !reflect.DeepEqual(got, baseDeps) {
			t.Fatalf("depth %d: dependency trace diverged\nbase:     %v\nrestored: %v", depth, baseDeps, got)
		}
		if got := k2.ReadySetIDs(); !reflect.DeepEqual(got, baseReady) {
			t.Fatalf("depth %d: ready-set ids diverged", depth)
		}
		if got := k2.ReadyCauses(); !reflect.DeepEqual(got, baseCauses) {
			t.Fatalf("depth %d: ready causes diverged", depth)
		}
	}
}

// Dependency tracing is opt-in and absent by default: without
// WithDepTrace the accessors stay empty and the snapshot carries no
// dependency payload.
func TestDepTraceOptIn(t *testing.T) {
	k := NewSim(WithPolicy(FIFO()))
	var events []string
	k.SetDecisionMark(func() int { return len(events) })
	snapProgram(k, &events)
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(k.DepAccesses()) != 0 || len(k.ReadySetIDs()) != 0 || len(k.ReadyCauses()) != 0 {
		t.Fatalf("dependency records present without WithDepTrace")
	}
	snap, err := k.SnapshotAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ReadyIDs != nil || snap.Causes != nil || snap.Deps != nil {
		t.Fatalf("snapshot carries dependency payload without WithDepTrace")
	}
}
