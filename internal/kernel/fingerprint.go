package kernel

// State fingerprinting for schedule-space pruning (package explore).
//
// The fingerprint is a 64-bit hash of the scheduler-visible state of a
// simulation: for every live process its identity, scheduling state,
// pending permit, wake time, and the number of scheduling steps it has
// completed; plus the virtual clock. Per-process contributions are
// combined by XOR, so the hash is maintained incrementally — a state
// transition swaps one process's old contribution for its new one in O(1)
// — and is independent of the *order* of the ready set. Order
// independence is deliberate: two states whose ready sets hold the same
// processes in different stamp orders reach the same set of successor
// states under systematic exploration (the DFS branches every index), so
// identifying them prunes redundant subtrees without hiding behavior.
//
// The per-process step count stands in for the program counter: a
// process's position in its (deterministic) body is determined by how
// many times it has been scheduled, provided its control flow between
// kernel operations depends only on state the kernel can see. Solution
// code whose branching manifests as kernel operations (park or not park,
// unpark or not) satisfies this; purely internal data divergence is
// invisible, which is why exploration offers a PruneAudit cross-check
// rather than claiming the hash is a sound state abstraction.

// fpMix is a splitmix64-style finalizer: a bijective mix whose output
// bits all depend on all input bits. Bijectivity matters — XOR-combining
// per-process hashes only discriminates well if no two field encodings
// collide systematically.
func fpMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Field salts keep the packed encoding injective-ish before mixing.
const (
	fpSaltID    = 0x9e3779b97f4a7c15
	fpSaltState = 0xc2b2ae3d27d4eb4f
	fpSaltSched = 0x165667b19e3779f9
	fpSaltWake  = 0x27d4eb2f165667c5
	fpSaltClock = 0x85ebca77c2b2ae63
	fpSaltPerm  = 0x2545f4914f6cdd1d
)

// fpContribution hashes one process's scheduler-visible state. Wake time
// is folded in only while sleeping, so a stale wakeAt from an earlier
// sleep cannot distinguish otherwise-identical states.
func fpContribution(sp *simProc) uint64 {
	h := uint64(sp.proc.id) * fpSaltID
	h ^= uint64(sp.state) * fpSaltState
	h ^= sp.schedCount * fpSaltSched
	if sp.state == stateSleeping {
		h ^= uint64(sp.wakeAt) * fpSaltWake
	}
	if sp.permit {
		h ^= fpSaltPerm
	}
	return fpMix(h)
}

// touchFPLocked re-hashes sp after a state transition, swapping its old
// contribution out of the kernel's running fingerprint.
func (k *SimKernel) touchFPLocked(sp *simProc) {
	c := fpContribution(sp)
	k.fp ^= sp.fpContrib ^ c
	sp.fpContrib = c
}

// fingerprintLocked reports the state hash at the current instant: the
// XOR of process contributions plus the virtual clock.
func (k *SimKernel) fingerprintLocked() uint64 {
	return k.fp ^ fpMix(uint64(k.now)*fpSaltClock)
}

// Fingerprint reports the current state hash. Two simulations that have
// reached fingerprint-equal states have (up to hash collision and the
// caveats above) the same scheduler-visible state and therefore the same
// reachable behaviors.
func (k *SimKernel) Fingerprint() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.fingerprintLocked()
}

// RunFingerprint hashes the entire run so far: a chain over the state
// fingerprint and the scheduling choice at every decision point. Unlike
// Fingerprint (an instantaneous, order-independent state hash), the run
// fingerprint is order-sensitive — two runs agree only if they made the
// same decisions from the same states in the same sequence. Schedule
// artifacts record it at save time and compare it at replay time, so a
// program that drifted since the recording is detected even when the
// replay happens to stay in range at every step.
func (k *SimKernel) RunFingerprint() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	fps := k.fps
	if len(fps) > len(k.choices) {
		fps = fps[:len(k.choices)]
	}
	h := fpMix(uint64(len(fps)) * fpSaltID)
	for i, fp := range fps {
		c := k.choices[i]
		h = fpMix(h ^ fp)
		h = fpMix(h ^ uint64(c.Ready)<<32 ^ uint64(uint32(c.Picked)))
	}
	return h
}
