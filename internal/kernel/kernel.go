// Package kernel provides the process substrate on which every
// synchronization mechanism in this repository is built.
//
// The paper's methodology requires running the same solution code both as a
// real concurrent program and as a deterministic simulation (so that
// specific interleavings, such as the Figure-1 anomaly, can be exhibited and
// checked). The kernel abstracts exactly what a synchronization mechanism
// needs from its host:
//
//   - processes (Spawn), identified and named;
//   - parking and unparking with permit semantics (no spurious wakeups);
//   - yielding and virtual-time sleeping;
//   - a clock (Now).
//
// Two implementations are provided:
//
//   - RealKernel: processes are goroutines, parking is a one-permit channel,
//     time is the wall clock. Solutions run with genuine parallelism.
//   - SimKernel: a deterministic cooperative scheduler. Exactly one process
//     runs at a time; every scheduling decision is made by a pluggable
//     Policy, so a run is reproducible from a seed or an explicit choice
//     sequence, and global deadlock is detected rather than hung on.
//
// Discipline required of mechanism code (enforced by convention, verified
// by the mechanism test suites):
//
//   - A process must not hold a sync.Mutex while parked. Mechanisms lock
//     their internal state, enqueue the current process, unlock, then Park.
//   - Unpark is called exactly once per Park, after removing the process
//     from whatever queue it was placed on (permit pairing). Park/Unpark
//     permits make the unlock-then-park window race-free: an Unpark that
//     arrives first simply makes the subsequent Park return immediately.
package kernel

import (
	"errors"
	"fmt"
)

// Time is a kernel timestamp. For RealKernel it is nanoseconds since the
// kernel was created; for SimKernel it is virtual ticks advanced by Sleep.
type Time = int64

// Kernel is the host substrate for processes.
type Kernel interface {
	// Spawn creates a new process that will execute fn. It may be called
	// before Run (to set up the initial process set) or from inside a
	// running process. Spawning from outside any process while Run is in
	// progress is not supported.
	Spawn(name string, fn func(p *Proc)) *Proc

	// SpawnDaemon creates a background process that does not count toward
	// termination or deadlock: Run returns when every non-daemon process
	// has finished, whatever state daemons are in, and parked daemons do
	// not make a deadlock. CSP-style resource servers are daemons — they
	// serve requests forever and are abandoned when the workload ends.
	SpawnDaemon(name string, fn func(p *Proc)) *Proc

	// Run executes spawned processes until all have terminated.
	//
	// SimKernel returns ErrDeadlock (wrapped, with the parked process
	// names) if every live process is parked and no sleeper can advance
	// the clock. RealKernel returns ErrTimeout if the processes do not
	// terminate within the configured watchdog.
	Run() error

	// Now reports the current kernel time.
	Now() Time
}

// ErrDeadlock is reported by SimKernel.Run when every live process is
// parked and virtual time cannot advance.
var ErrDeadlock = errors.New("kernel: deadlock: all processes parked")

// ErrTimeout is reported by RealKernel.Run when the watchdog expires before
// all processes terminate (almost always a lost-wakeup or deadlock bug in a
// mechanism or solution under test).
var ErrTimeout = errors.New("kernel: watchdog timeout waiting for processes")

// procImpl is the kernel-specific half of a Proc.
type procImpl interface {
	park()
	unpark()
	yield()
	sleep(ticks int64)
	exited()
}

// Proc is a handle to a kernel process. The same Proc value is passed to
// the process body and used by mechanisms to park/unpark it; it is valid to
// hold a *Proc after the process has terminated (Unpark on a terminated
// process is a no-op for SimKernel and harmless for RealKernel).
type Proc struct {
	id    int
	name  string
	label string // "name#id", interned at spawn: id and name are immutable
	k     Kernel
	impl  procImpl
}

// ID reports the process identifier, unique within its kernel and assigned
// in spawn order starting at 1.
func (p *Proc) ID() int { return p.id }

// Name reports the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel reports the kernel that owns this process.
func (p *Proc) Kernel() Kernel { return p.k }

// String formats the process as "name#id". The label is computed once at
// spawn (both fields are immutable), so hot paths — the trace recorder
// stamps it on every event — pay a field load, not a fmt.Sprintf.
func (p *Proc) String() string {
	if p.label == "" {
		return fmt.Sprintf("%s#%d", p.name, p.id)
	}
	return p.label
}

// Park blocks the calling process until a permit is available, consuming
// it. At most one permit is ever outstanding; a permit granted by Unpark
// before Park is called satisfies the next Park immediately. Park must only
// be called by the process itself, and never while holding a lock another
// process may need.
func (p *Proc) Park() { p.impl.park() }

// Unpark grants p a permit, waking it if it is parked. Permits do not
// accumulate beyond one. Unpark is called by other processes (typically by
// a mechanism that has dequeued p from a wait list).
func (p *Proc) Unpark() { p.impl.unpark() }

// Yield cedes the processor. Under SimKernel the process goes to the back
// of the ready set and the policy picks the next process to run; under
// RealKernel it hints the Go scheduler.
func (p *Proc) Yield() { p.impl.yield() }

// Sleep suspends the process for the given number of ticks. Under
// SimKernel this advances virtual time; under RealKernel a tick is the
// kernel's configured tick duration (default one microsecond). Sleeping
// for a non-positive duration is a Yield.
func (p *Proc) Sleep(ticks int64) {
	if ticks <= 0 {
		p.impl.yield()
		return
	}
	p.impl.sleep(ticks)
}
