package kernel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// RealKernel runs processes as goroutines against the wall clock. It is
// the production substrate: mechanisms built on it are ordinary concurrent
// Go libraries.
type RealKernel struct {
	tick     time.Duration
	watchdog time.Duration
	start    time.Time

	nextID atomic.Int64
	wg     sync.WaitGroup

	closeOnce sync.Once
	closed    chan struct{} // closed by Close; parked processes then unwind

	mu      sync.Mutex
	started bool
	done    chan struct{} // closed when wg drains during Run
}

// RealOption configures a RealKernel.
type RealOption func(*RealKernel)

// WithTick sets the wall-clock duration of one Sleep tick. The default is
// one microsecond, which keeps virtual-time workloads (alarm clock, disk
// scheduler arrival patterns) fast in tests.
func WithTick(d time.Duration) RealOption {
	return func(k *RealKernel) { k.tick = d }
}

// WithWatchdog sets how long Run waits for all processes to terminate
// before reporting ErrTimeout. The default is 30 seconds. A zero duration
// disables the watchdog.
func WithWatchdog(d time.Duration) RealOption {
	return func(k *RealKernel) { k.watchdog = d }
}

// NewReal creates a RealKernel.
func NewReal(opts ...RealOption) *RealKernel {
	k := &RealKernel{
		tick:     time.Microsecond,
		watchdog: 30 * time.Second,
		start:    time.Now(),
		closed:   make(chan struct{}),
	}
	for _, o := range opts {
		o(k)
	}
	return k
}

// Spawn implements Kernel. The process starts running immediately; Run
// merely waits for completion.
func (k *RealKernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, false)
}

// SpawnDaemon implements Kernel: the goroutine runs but Run does not wait
// for it; it is abandoned when the process exits.
func (k *RealKernel) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, true)
}

func (k *RealKernel) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	id := int(k.nextID.Add(1))
	p := &Proc{
		id:    id,
		name:  name,
		label: fmt.Sprintf("%s#%d", name, id),
		k:     k,
	}
	rp := &realProc{
		kernel: k,
		permit: make(chan struct{}, 1),
	}
	p.impl = rp
	if daemon {
		go fn(p)
		return p
	}
	k.wg.Add(1)
	go func() {
		defer k.wg.Done()
		fn(p)
	}()
	return p
}

// Run implements Kernel: it waits until every spawned process (including
// ones spawned transitively) has terminated, or the watchdog expires.
func (k *RealKernel) Run() error {
	done := make(chan struct{})
	go func() {
		k.wg.Wait()
		close(done)
	}()
	if k.watchdog <= 0 {
		<-done
		return nil
	}
	timer := time.NewTimer(k.watchdog)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
		return ErrTimeout
	}
}

// Now implements Kernel: nanoseconds since the kernel was created.
func (k *RealKernel) Now() Time { return int64(time.Since(k.start)) }

// Close abandons the kernel's remaining processes: every process blocked
// in Park — stuck non-daemons left behind by a watchdog timeout, and
// daemon servers parked waiting for requests that will never come — is
// unwound (its goroutine exits, running deferred calls) instead of
// leaking for the life of the host program. Processes that subsequently
// reach a Park unwind there too. This mirrors SimKernel's close-based
// shutdown; it is safe because the mechanism discipline forbids holding a
// lock another process may need while parked. Call Close after Run has
// returned; the kernel must not be used afterwards. Close is idempotent.
//
// A process spinning without ever parking cannot be unwound (goroutines
// are not preemptively killable); the watchdog reports it, Close cannot
// collect it.
func (k *RealKernel) Close() {
	k.closeOnce.Do(func() { close(k.closed) })
}

type realProc struct {
	kernel *RealKernel
	permit chan struct{}
}

func (rp *realProc) park() {
	select {
	case <-rp.permit:
	case <-rp.kernel.closed:
		// The kernel was abandoned: unwind this process instead of
		// waiting for a permit that will never come. Goexit runs deferred
		// calls, so the spawn wrapper's wg.Done still fires.
		runtime.Goexit()
	}
}
func (rp *realProc) yield()  { runtime.Gosched() }
func (rp *realProc) exited() {}

func (rp *realProc) unpark() {
	select {
	case rp.permit <- struct{}{}:
	default: // a permit is already pending; permits do not accumulate
	}
}

func (rp *realProc) sleep(ticks int64) {
	time.Sleep(time.Duration(ticks) * rp.kernel.tick)
}
