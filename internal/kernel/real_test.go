package kernel

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealRunsAllProcesses(t *testing.T) {
	k := NewReal()
	var count atomic.Int64
	for i := 0; i < 16; i++ {
		k.Spawn("w", func(p *Proc) { count.Add(1) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 16 {
		t.Fatalf("count = %d, want 16", count.Load())
	}
}

func TestRealParkUnpark(t *testing.T) {
	k := NewReal(WithWatchdog(5 * time.Second))
	var mu sync.Mutex
	var waiting *Proc
	woken := false
	k.Spawn("waiter", func(p *Proc) {
		mu.Lock()
		waiting = p
		mu.Unlock()
		p.Park()
		mu.Lock()
		woken = true
		mu.Unlock()
	})
	k.Spawn("waker", func(p *Proc) {
		for {
			mu.Lock()
			w := waiting
			mu.Unlock()
			if w != nil {
				w.Unpark()
				return
			}
			p.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken {
		t.Fatal("waiter never woke")
	}
}

func TestRealPermitBeforePark(t *testing.T) {
	k := NewReal(WithWatchdog(5 * time.Second))
	release := make(chan struct{})
	done := false
	p := k.Spawn("p", func(p *Proc) {
		<-release
		p.Park() // permit already pending
		done = true
	})
	p.Unpark()
	close(release)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("Park blocked despite pending permit")
	}
}

func TestRealWatchdog(t *testing.T) {
	k := NewReal(WithWatchdog(50 * time.Millisecond))
	k.Spawn("stuck", func(p *Proc) { p.Park() })
	err := k.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Run = %v, want ErrTimeout", err)
	}
	// Unwind the stuck goroutine so the test process exits cleanly.
	k.Close()
}

// A watchdog expiry must be recoverable: Run reports ErrTimeout, and Close
// then unwinds every process still blocked in Park — including the
// kernel's internal wg watcher — so repeated timed-out runs do not
// accumulate goroutines. Mirrors TestSimDeadlockReleasesGoroutines.
func TestRealWatchdogReleasesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		k := NewReal(WithWatchdog(time.Millisecond))
		for j := 0; j < 3; j++ {
			k.Spawn("stuck", func(p *Proc) { p.Park() })
		}
		if err := k.Run(); !errors.Is(err, ErrTimeout) {
			t.Fatalf("Run = %v, want ErrTimeout", err)
		}
		k.Close()
	}
	waitGoroutines(t, base+4)
}

// Daemons abandoned at normal termination are unwound by Close, whether
// parked waiting for requests or mid-Sleep (they unwind at their next
// Park). Mirrors TestSimDaemonsAndSleepersReleased.
func TestRealDaemonsAbandonedCleanly(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		k := NewReal(WithWatchdog(5 * time.Second))
		k.SpawnDaemon("server", func(p *Proc) {
			for {
				p.Park()
			}
		})
		k.SpawnDaemon("ticker", func(p *Proc) {
			for {
				p.Sleep(1)
				p.Park()
			}
		})
		k.Spawn("client", func(p *Proc) { p.Yield() })
		if err := k.Run(); err != nil {
			t.Fatalf("Run = %v; daemons must not be waited on", err)
		}
		k.Close()
	}
	waitGoroutines(t, base+4)
}

// Close is idempotent, and a process that parks only after Close unwinds
// immediately instead of blocking forever.
func TestRealCloseIdempotent(t *testing.T) {
	k := NewReal(WithWatchdog(5 * time.Second))
	k.Spawn("worker", func(p *Proc) {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Close()
	k.Close()
	base := runtime.NumGoroutine()
	k.SpawnDaemon("late", func(p *Proc) { p.Park() }) // parks after close: unwinds
	waitGoroutines(t, base+1)
}

// WithTick scales Sleep: the same tick count takes proportionally longer
// under a coarser tick, and the default microsecond tick keeps large
// virtual delays fast. Leak-checked like the SimKernel sleep tests.
func TestRealWithTickScaling(t *testing.T) {
	base := runtime.NumGoroutine()
	elapsed := func(tick time.Duration, ticks int64) time.Duration {
		k := NewReal(WithTick(tick), WithWatchdog(10*time.Second))
		var d time.Duration
		k.Spawn("sleeper", func(p *Proc) {
			start := time.Now()
			p.Sleep(ticks)
			d = time.Since(start)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		k.Close()
		return d
	}
	// 10 ticks of 2ms is a 20ms sleep; allow generous scheduler slop but
	// require at least half the nominal duration.
	if got := elapsed(2*time.Millisecond, 10); got < 10*time.Millisecond {
		t.Fatalf("Sleep(10 x 2ms) elapsed only %v", got)
	}
	// The default-scale regime: a million microsecond ticks must not take
	// anywhere near a wall-clock million microseconds per tick.
	if got := elapsed(time.Microsecond, 100_000); got > 5*time.Second {
		t.Fatalf("Sleep(100000 x 1us) took %v", got)
	}
	waitGoroutines(t, base)
}

func TestRealNowMonotonic(t *testing.T) {
	k := NewReal()
	t0 := k.Now()
	time.Sleep(time.Millisecond)
	t1 := k.Now()
	if t1 <= t0 {
		t.Fatalf("Now not increasing: %d then %d", t0, t1)
	}
}

func TestRealSleepTicks(t *testing.T) {
	k := NewReal(WithTick(time.Millisecond), WithWatchdog(10*time.Second))
	var elapsed time.Duration
	k.Spawn("sleeper", func(p *Proc) {
		start := time.Now()
		p.Sleep(20)
		elapsed = time.Since(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < 15*time.Millisecond {
		t.Fatalf("Sleep(20 x 1ms) elapsed only %v", elapsed)
	}
}

func TestRealProcIdentity(t *testing.T) {
	k := NewReal()
	seen := make(chan int, 2)
	p1 := k.Spawn("alpha", func(p *Proc) { seen <- p.ID() })
	p2 := k.Spawn("beta", func(p *Proc) { seen <- p.ID() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if p1.Name() != "alpha" || p2.Name() != "beta" {
		t.Fatalf("names = %q, %q", p1.Name(), p2.Name())
	}
	if p1.ID() == p2.ID() {
		t.Fatalf("duplicate IDs: %d", p1.ID())
	}
	a, b := <-seen, <-seen
	if a == b {
		t.Fatalf("process bodies observed duplicate IDs: %d", a)
	}
	if p1.String() != "alpha#1" {
		t.Fatalf("String = %q, want alpha#1", p1.String())
	}
}

func TestRealSpawnFromProcess(t *testing.T) {
	k := NewReal(WithWatchdog(5 * time.Second))
	var count atomic.Int64
	k.Spawn("parent", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Kernel().Spawn("child", func(c *Proc) { count.Add(1) })
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 4 {
		t.Fatalf("children run = %d, want 4", count.Load())
	}
}

func TestRealDaemonDoesNotBlockRun(t *testing.T) {
	k := NewReal(WithWatchdog(5 * time.Second))
	k.SpawnDaemon("server", func(p *Proc) { p.Park() }) // parks forever
	k.Spawn("worker", func(p *Proc) {})
	if err := k.Run(); err != nil {
		t.Fatalf("Run = %v; daemons must not be waited on", err)
	}
}

// The park/unpark handshake must be race-free under the mechanism
// discipline: decide to wait under a lock, park outside it.
func TestRealParkUnparkStress(t *testing.T) {
	k := NewReal(WithWatchdog(20 * time.Second))
	const rounds = 2000
	var mu sync.Mutex
	var queue []*Proc
	handoffs := 0

	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			mu.Lock()
			queue = append(queue, p)
			mu.Unlock()
			p.Park()
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < rounds; {
			mu.Lock()
			var target *Proc
			if len(queue) > 0 {
				target = queue[0]
				queue = queue[1:]
			}
			mu.Unlock()
			if target != nil {
				handoffs++
				target.Unpark()
				i++
			} else {
				p.Yield()
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if handoffs != rounds {
		t.Fatalf("handoffs = %d, want %d", handoffs, rounds)
	}
}

func BenchmarkRealParkUnparkHandoff(b *testing.B) {
	k := NewReal(WithWatchdog(0))
	pingCh := make(chan *Proc, 1)
	pongCh := make(chan *Proc, 1)
	// Strict alternation: each side parks after every unpark, so permits
	// never coalesce and every round is a genuine handoff.
	k.Spawn("pong", func(p *Proc) {
		pongCh <- p
		ping := <-pingCh
		for i := 0; i < b.N; i++ {
			p.Park()
			ping.Unpark()
		}
	})
	pong := <-pongCh
	b.ResetTimer()
	k.Spawn("ping", func(p *Proc) {
		pingCh <- p
		for i := 0; i < b.N; i++ {
			pong.Unpark()
			p.Park()
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
