package kernel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealRunsAllProcesses(t *testing.T) {
	k := NewReal()
	var count atomic.Int64
	for i := 0; i < 16; i++ {
		k.Spawn("w", func(p *Proc) { count.Add(1) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 16 {
		t.Fatalf("count = %d, want 16", count.Load())
	}
}

func TestRealParkUnpark(t *testing.T) {
	k := NewReal(WithWatchdog(5 * time.Second))
	var mu sync.Mutex
	var waiting *Proc
	woken := false
	k.Spawn("waiter", func(p *Proc) {
		mu.Lock()
		waiting = p
		mu.Unlock()
		p.Park()
		mu.Lock()
		woken = true
		mu.Unlock()
	})
	k.Spawn("waker", func(p *Proc) {
		for {
			mu.Lock()
			w := waiting
			mu.Unlock()
			if w != nil {
				w.Unpark()
				return
			}
			p.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken {
		t.Fatal("waiter never woke")
	}
}

func TestRealPermitBeforePark(t *testing.T) {
	k := NewReal(WithWatchdog(5 * time.Second))
	release := make(chan struct{})
	done := false
	p := k.Spawn("p", func(p *Proc) {
		<-release
		p.Park() // permit already pending
		done = true
	})
	p.Unpark()
	close(release)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("Park blocked despite pending permit")
	}
}

func TestRealWatchdog(t *testing.T) {
	k := NewReal(WithWatchdog(50 * time.Millisecond))
	k.Spawn("stuck", func(p *Proc) { p.Park() })
	err := k.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Run = %v, want ErrTimeout", err)
	}
	// Unblock the leaked goroutine so the test process exits cleanly.
	// (The spawned goroutine is still parked; give it its permit.)
}

func TestRealNowMonotonic(t *testing.T) {
	k := NewReal()
	t0 := k.Now()
	time.Sleep(time.Millisecond)
	t1 := k.Now()
	if t1 <= t0 {
		t.Fatalf("Now not increasing: %d then %d", t0, t1)
	}
}

func TestRealSleepTicks(t *testing.T) {
	k := NewReal(WithTick(time.Millisecond), WithWatchdog(10*time.Second))
	var elapsed time.Duration
	k.Spawn("sleeper", func(p *Proc) {
		start := time.Now()
		p.Sleep(20)
		elapsed = time.Since(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < 15*time.Millisecond {
		t.Fatalf("Sleep(20 x 1ms) elapsed only %v", elapsed)
	}
}

func TestRealProcIdentity(t *testing.T) {
	k := NewReal()
	seen := make(chan int, 2)
	p1 := k.Spawn("alpha", func(p *Proc) { seen <- p.ID() })
	p2 := k.Spawn("beta", func(p *Proc) { seen <- p.ID() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if p1.Name() != "alpha" || p2.Name() != "beta" {
		t.Fatalf("names = %q, %q", p1.Name(), p2.Name())
	}
	if p1.ID() == p2.ID() {
		t.Fatalf("duplicate IDs: %d", p1.ID())
	}
	a, b := <-seen, <-seen
	if a == b {
		t.Fatalf("process bodies observed duplicate IDs: %d", a)
	}
	if p1.String() != "alpha#1" {
		t.Fatalf("String = %q, want alpha#1", p1.String())
	}
}

func TestRealSpawnFromProcess(t *testing.T) {
	k := NewReal(WithWatchdog(5 * time.Second))
	var count atomic.Int64
	k.Spawn("parent", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Kernel().Spawn("child", func(c *Proc) { count.Add(1) })
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 4 {
		t.Fatalf("children run = %d, want 4", count.Load())
	}
}

func TestRealDaemonDoesNotBlockRun(t *testing.T) {
	k := NewReal(WithWatchdog(5 * time.Second))
	k.SpawnDaemon("server", func(p *Proc) { p.Park() }) // parks forever
	k.Spawn("worker", func(p *Proc) {})
	if err := k.Run(); err != nil {
		t.Fatalf("Run = %v; daemons must not be waited on", err)
	}
}

// The park/unpark handshake must be race-free under the mechanism
// discipline: decide to wait under a lock, park outside it.
func TestRealParkUnparkStress(t *testing.T) {
	k := NewReal(WithWatchdog(20 * time.Second))
	const rounds = 2000
	var mu sync.Mutex
	var queue []*Proc
	handoffs := 0

	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			mu.Lock()
			queue = append(queue, p)
			mu.Unlock()
			p.Park()
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < rounds; {
			mu.Lock()
			var target *Proc
			if len(queue) > 0 {
				target = queue[0]
				queue = queue[1:]
			}
			mu.Unlock()
			if target != nil {
				handoffs++
				target.Unpark()
				i++
			} else {
				p.Yield()
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if handoffs != rounds {
		t.Fatalf("handoffs = %d, want %d", handoffs, rounds)
	}
}

func BenchmarkRealParkUnparkHandoff(b *testing.B) {
	k := NewReal(WithWatchdog(0))
	pingCh := make(chan *Proc, 1)
	pongCh := make(chan *Proc, 1)
	// Strict alternation: each side parks after every unpark, so permits
	// never coalesce and every round is a genuine handoff.
	k.Spawn("pong", func(p *Proc) {
		pongCh <- p
		ping := <-pingCh
		for i := 0; i < b.N; i++ {
			p.Park()
			ping.Unpark()
		}
	})
	pong := <-pongCh
	b.ResetTimer()
	k.Spawn("ping", func(p *Proc) {
		pingCh <- p
		for i := 0; i < b.N; i++ {
			pong.Unpark()
			p.Park()
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
