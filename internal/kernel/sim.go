package kernel

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// procState is the scheduling state of a simulated process.
type procState int

const (
	stateRunnable procState = iota
	stateRunning
	stateParked
	stateSleeping
	stateDead
)

func (s procState) String() string {
	switch s {
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateParked:
		return "parked"
	case stateSleeping:
		return "sleeping"
	case stateDead:
		return "dead"
	}
	return "invalid"
}

// Policy decides which runnable process runs next. Pick receives the ready
// processes in a deterministic order (ascending readiness, ties by spawn
// order) and returns an index into that slice. A Policy together with the
// program fully determines a SimKernel run.
type Policy interface {
	Pick(ready []*Proc) int
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(ready []*Proc) int

// Pick implements Policy.
func (f PolicyFunc) Pick(ready []*Proc) int { return f(ready) }

// FIFO returns the round-robin policy: always run the process that has
// been ready longest. This is the kernel's default.
func FIFO() Policy { return PolicyFunc(func([]*Proc) int { return 0 }) }

// LIFO returns the most-recently-ready-first policy, useful for provoking
// overtaking behaviors.
func LIFO() Policy { return PolicyFunc(func(ready []*Proc) int { return len(ready) - 1 }) }

// Random returns a seeded uniformly random policy. The same seed and
// program produce the same schedule.
func Random(seed int64) Policy {
	rng := rand.New(rand.NewSource(seed))
	return PolicyFunc(func(ready []*Proc) int { return rng.Intn(len(ready)) })
}

// Choice records one scheduling decision: how many processes were ready
// and which index was chosen.
type Choice struct {
	Ready  int // number of ready processes at the decision point
	Picked int // index chosen, 0 <= Picked < Ready
}

// Replay returns a policy that follows the given choice sequence, then
// falls back to FIFO when the sequence is exhausted. Out-of-range choices
// are clamped. It is the building block of systematic schedule exploration
// (package explore).
func Replay(choices []Choice) Policy {
	i := 0
	return PolicyFunc(func(ready []*Proc) int {
		if i >= len(choices) {
			return 0
		}
		c := choices[i].Picked
		i++
		if c >= len(ready) {
			c = len(ready) - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	})
}

// ExactReplay is a Policy that follows a recorded choice sequence and
// refuses to improvise: at every decision point the observed ready count
// must equal the recorded Choice.Ready and the recorded pick must be in
// range. On divergence the policy fails the run (by returning an
// out-of-range index, which the kernel reports as an error) and records a
// diagnostic retrievable via Err. Once the recording is exhausted it
// falls back to FIFO, matching Replay, so schedules trimmed of their
// default tail still replay exactly.
//
// Use ExactReplay to re-execute saved schedule artifacts: if the program
// has drifted since the schedule was recorded, the replay fails loudly at
// the first divergent decision instead of silently exploring a different
// interleaving.
type ExactReplay struct {
	choices []Choice
	i       int
	err     error
}

// NewExactReplay returns a strict replay policy over the given recording.
func NewExactReplay(choices []Choice) *ExactReplay {
	return &ExactReplay{choices: choices}
}

// Pick implements Policy.
func (r *ExactReplay) Pick(ready []*Proc) int {
	if r.i >= len(r.choices) {
		return 0
	}
	c := r.choices[r.i]
	if c.Ready != len(ready) || c.Picked < 0 || c.Picked >= len(ready) {
		r.err = fmt.Errorf("kernel: replay diverged at decision %d: recorded %d ready (picked %d), observed %d ready",
			r.i, c.Ready, c.Picked, len(ready))
		return -1
	}
	r.i++
	return c.Picked
}

// Err reports the divergence diagnostic, or nil if the replay has
// followed the recording so far.
func (r *ExactReplay) Err() error { return r.err }

// errShutdown is the panic value used to unwind process goroutines when
// the kernel shuts down (deadlock, step limit, or normal termination with
// daemons still live). It never escapes the kernel: the spawn wrapper
// recovers it.
var errShutdown = errors.New("kernel: simulation shut down")

// SimKernel is a deterministic cooperative scheduler. Exactly one process
// executes at a time; control returns to the scheduler at every kernel
// operation (Park, Yield, Sleep, process exit). Virtual time advances only
// when no process is runnable and some process is sleeping.
//
// When Run returns — normal completion, deadlock, or step limit — every
// goroutine the kernel spawned is released: processes still blocked in a
// kernel operation are unwound (their resume channels are closed) and
// exit, so repeated simulation runs do not accumulate goroutines.
type SimKernel struct {
	policy   Policy
	maxSteps int64

	mu       sync.Mutex
	now      int64
	nextID   int
	readySeq int64 // monotonically increasing readiness stamp
	procs    []*simProc
	ready    []*simProc // invariant: sorted ascending by readyAt
	running  *simProc
	steps    int64
	choices  []Choice

	// fp is the incrementally maintained state fingerprint (XOR of
	// per-process contributions; see fingerprint.go). fps records the
	// fingerprint at each decision point, aligned with choices.
	fp  uint64
	fps []uint64

	// stepVisible tracks whether the step in progress performed a visible
	// action (park, unpark, sleep, spawn, exit, or a recorded trace
	// event); a step that only yielded is invisible, which the DFS pruner
	// exploits. visible is aligned with choices.
	stepVisible bool
	visible     []bool

	// readyScratch is reused across scheduling steps to present the ready
	// set to the Policy without a per-step allocation.
	readyScratch []*Proc

	// restore, when non-nil, makes schedule re-drive the snapshot's
	// choice prefix in restore mode (see WithRestore); cleared when the
	// prefix is exhausted and validated, and by Reset.
	restore *Snapshot

	// markFn, when set, is sampled at every decision point into marks,
	// aligned with choices (see SetDecisionMark).
	markFn func() int
	marks  []int

	// depTrace enables dependency-trace recording (WithDepTrace): deps
	// holds the per-step object accesses, readyIDs the flattened ready
	// set at each decision, and causes the readying step of each pick
	// (see deps.go).
	depTrace bool
	deps     []DepAccess
	readyIDs []int32
	causes   []int32

	// wg counts live process executions; Reset waits on it so a recycled
	// kernel never shares state with stragglers from the previous run.
	wg sync.WaitGroup

	// Worker-goroutine recycling (WithRecycle): instead of one goroutine
	// per process per run, worker goroutines park between runs and are fed
	// process bodies. procPool holds the previous run's simProcs for
	// in-place reuse — deterministic programs respawn the same processes
	// in the same order, so reuse also recovers the interned name labels.
	recycle     bool
	freeWorkers []*recWorker
	allWorkers  []*recWorker
	procPool    []*simProc

	// doneCh carries the run outcome from whichever goroutine detects
	// termination back to Run. Buffered so the finishing process never
	// blocks on the driver.
	doneCh        chan error
	started       bool
	finished      bool
	stopRequested bool
}

// SimOption configures a SimKernel.
type SimOption func(*SimKernel)

// WithPolicy sets the scheduling policy (default FIFO).
func WithPolicy(p Policy) SimOption {
	return func(k *SimKernel) { k.policy = p }
}

// WithMaxSteps bounds the number of scheduling steps Run will take before
// giving up with an error; it guards tests against livelocks. Zero (the
// default) means ten million steps.
func WithMaxSteps(n int64) SimOption {
	return func(k *SimKernel) { k.maxSteps = n }
}

// WithRecycle enables worker-goroutine and process-object recycling
// across Reset: spawning reuses a parked worker goroutine and the
// previous run's process objects instead of allocating fresh ones. Meant
// for run pools (package explore) that execute many runs on one kernel;
// a kernel with recycling enabled must be released with Close when it is
// no longer needed, or its parked workers leak.
func WithRecycle() SimOption {
	return func(k *SimKernel) { k.recycle = true }
}

// NewSim creates a SimKernel.
func NewSim(opts ...SimOption) *SimKernel {
	k := &SimKernel{
		policy:   FIFO(),
		maxSteps: 10_000_000,
		doneCh:   make(chan error, 1),
		choices:  make([]Choice, 0, 64),
	}
	for _, o := range opts {
		o(k)
	}
	return k
}

type simProc struct {
	proc         *Proc
	kernel       *SimKernel
	daemon       bool
	state        procState
	permit       bool
	wakeAt       int64  // valid when sleeping
	readyAt      int64  // readiness stamp for deterministic ordering
	readyCause   int32  // step that readied this process; -1 if none (see deps.go)
	schedCount   uint64 // completed scheduling steps (fingerprint PC proxy)
	fpContrib    uint64 // cached fingerprint contribution
	resume       chan struct{}
	resumeClosed bool // resume was closed by finishLocked; remake on reuse
}

// recWorker is a recycled worker goroutine, parked on feed between
// process executions (WithRecycle).
type recWorker struct {
	feed chan workJob
}

type workJob struct {
	sp *simProc
	fn func(p *Proc)
}

// workerLoop runs process bodies fed to a recycled worker until the
// kernel is closed.
func (k *SimKernel) workerLoop(w *recWorker) {
	for job := range w.feed {
		k.runJob(w, job)
	}
}

// runJob executes one process body on a recycled worker: wait for the
// first schedule, run, and record the exit. A shutdown unwind
// (errShutdown) is recovered here so the worker survives to the next run.
// The worker re-enters the freelist before wg.Done, so once Reset's
// wg.Wait returns every worker is reusable.
func (k *SimKernel) runJob(w *recWorker, job workJob) {
	defer func() {
		if r := recover(); r != nil && r != errShutdown {
			panic(r)
		}
		k.mu.Lock()
		k.freeWorkers = append(k.freeWorkers, w)
		k.mu.Unlock()
		k.wg.Done()
	}()
	if _, ok := <-job.sp.resume; !ok {
		return // kernel shut down before the first schedule
	}
	job.fn(job.sp.proc)
	job.sp.exited()
}

// Spawn implements Kernel. The process does not begin executing until the
// scheduler selects it.
func (k *SimKernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, false)
}

// SpawnDaemon implements Kernel: the process is scheduled normally but is
// invisible to termination and deadlock detection. When the last
// non-daemon process finishes, Run returns and remaining daemons are shut
// down: their goroutines are unwound and exit rather than staying parked.
func (k *SimKernel) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, true)
}

func (k *SimKernel) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	k.mu.Lock()
	k.nextID++
	id := k.nextID
	var sp *simProc
	var p *Proc
	if i := id - 1; k.recycle && i < len(k.procPool) {
		// Reuse the previous run's process at the same spawn position.
		// Deterministic programs respawn identically, so the id always
		// matches (ids are positional) and the name almost always does —
		// keeping the label without re-formatting it.
		sp = k.procPool[i]
		p = sp.proc
		if p.name != name {
			p.name = name
			p.label = fmt.Sprintf("%s#%d", name, id)
		}
		if sp.resumeClosed {
			sp.resume = make(chan struct{})
			sp.resumeClosed = false
		}
		sp.daemon = daemon
		sp.state = stateRunnable
		sp.permit = false
		sp.wakeAt = 0
		sp.schedCount = 0
		sp.fpContrib = 0
	} else {
		p = &Proc{id: id, name: name, label: fmt.Sprintf("%s#%d", name, id), k: k}
		sp = &simProc{
			proc:   p,
			kernel: k,
			daemon: daemon,
			state:  stateRunnable,
			resume: make(chan struct{}),
		}
		p.impl = sp
	}
	if k.finished {
		// Spawn after Run returned: never schedule; release the goroutine
		// (or worker) immediately so it cannot leak.
		sp.state = stateDead
		close(sp.resume)
		sp.resumeClosed = true
		k.mu.Unlock()
		return p
	}
	k.procs = append(k.procs, sp)
	k.stepVisible = true // the spawning step changed the ready set
	k.noteDepLocked(objProc(id))
	k.markReadyLocked(sp)
	k.wg.Add(1)
	if k.recycle {
		var w *recWorker
		if n := len(k.freeWorkers); n > 0 {
			w = k.freeWorkers[n-1]
			k.freeWorkers[n-1] = nil
			k.freeWorkers = k.freeWorkers[:n-1]
		} else {
			w = &recWorker{feed: make(chan workJob, 1)}
			k.allWorkers = append(k.allWorkers, w)
			go k.workerLoop(w)
		}
		k.mu.Unlock()
		w.feed <- workJob{sp: sp, fn: fn} // cap 1: an idle worker never blocks us
		return p
	}
	k.mu.Unlock()

	go func() {
		defer k.wg.Done()
		defer func() {
			if r := recover(); r != nil && r != errShutdown {
				panic(r)
			}
		}()
		if _, ok := <-sp.resume; !ok {
			return // kernel shut down before the first schedule
		}
		fn(p)
		sp.exited()
	}()
	return p
}

// markReadyLocked appends sp to the ready set with a fresh readiness stamp.
// Stamps increase monotonically and removal preserves order, so k.ready is
// always sorted by readyAt without any per-step sorting.
func (k *SimKernel) markReadyLocked(sp *simProc) {
	sp.state = stateRunnable
	k.readySeq++
	sp.readyAt = k.readySeq
	sp.readyCause = int32(k.steps) - 1
	k.ready = append(k.ready, sp)
	k.touchFPLocked(sp)
}

// Now implements Kernel: the virtual clock, in ticks.
func (k *SimKernel) Now() Time {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.now
}

// Steps reports how many scheduling decisions the kernel has made.
func (k *SimKernel) Steps() int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.steps
}

// Choices returns the scheduling decisions made so far, in order. The
// slice is a copy; it is the input to Replay-based exploration.
func (k *SimKernel) Choices() []Choice {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]Choice, len(k.choices))
	copy(out, k.choices)
	return out
}

// ChoicesView returns the recorded choice sequence without copying. Call
// only after Run has returned; the slice aliases kernel state and is valid
// until the next Reset. The zero-copy sibling of Choices for the
// exploration hot path.
func (k *SimKernel) ChoicesView() []Choice {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.choices
}

// StepFingerprints returns the state fingerprint at each decision point,
// aligned with ChoicesView: element i is the hash of the scheduler state
// from which choice i was made. Same aliasing contract as ChoicesView.
func (k *SimKernel) StepFingerprints() []uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	if len(k.fps) > len(k.choices) {
		return k.fps[:len(k.choices)]
	}
	return k.fps
}

// StepVisibility reports, for each executed step, whether it performed a
// visible action (park, unpark, sleep, spawn, exit, or a recorded trace
// event) as opposed to a pure yield. Aligned with ChoicesView; same
// aliasing contract.
func (k *SimKernel) StepVisibility() []bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.visible
}

// Stop requests that the run finish at the next scheduling step, as if
// the program had completed: Run returns nil with the partial history.
// Streaming oracles use it to cut violating runs short. Safe to call from
// a running process or (pointlessly, but harmlessly) after Run returned.
func (k *SimKernel) Stop() {
	k.mu.Lock()
	k.stopRequested = true
	k.mu.Unlock()
}

// Reset returns the kernel to its pristine pre-spawn state, retaining
// every allocation — choice, fingerprint, and scratch buffers keep their
// capacity — so a pooled kernel runs in zero-allocation steady state. The
// given options are applied on top of the kernel's current configuration
// (pass WithPolicy to change the schedule).
//
// Reset must only be called before any Spawn or after Run has returned.
// It blocks until every process goroutine from the previous run has
// unwound. Proc handles and slices obtained from the view accessors
// become invalid.
func (k *SimKernel) Reset(opts ...SimOption) {
	// Wait outside the lock: unwinding goroutines briefly take k.mu on
	// their way out.
	k.wg.Wait()
	k.mu.Lock()
	defer k.mu.Unlock()
	k.now = 0
	k.nextID = 0
	k.readySeq = 0
	if k.recycle {
		// Hand the finished run's processes to the pool for in-place
		// reuse (see spawn); the pool's previous backing array becomes
		// the next run's procs slice.
		k.procs, k.procPool = k.procPool[:0], k.procs
	} else {
		k.procs = k.procs[:0]
	}
	k.ready = k.ready[:0]
	k.running = nil
	k.steps = 0
	k.choices = k.choices[:0]
	k.fp = 0
	k.fps = k.fps[:0]
	k.stepVisible = false
	k.visible = k.visible[:0]
	k.restore = nil
	k.marks = k.marks[:0]
	k.deps = k.deps[:0]
	k.readyIDs = k.readyIDs[:0]
	k.causes = k.causes[:0]
	k.started = false
	k.finished = false
	k.stopRequested = false
	for _, o := range opts {
		o(k)
	}
}

// Close releases the kernel's recycled worker goroutines (WithRecycle);
// without recycling it is a no-op. It blocks until in-flight process
// executions finish unwinding. The kernel must not be used after Close.
func (k *SimKernel) Close() {
	k.wg.Wait()
	k.mu.Lock()
	ws := k.allWorkers
	k.allWorkers = nil
	k.freeWorkers = nil
	k.procPool = nil
	k.mu.Unlock()
	for _, w := range ws {
		close(w.feed)
	}
}

// NowCooperative reads the virtual clock without locking. Safe under the
// cooperative discipline: exactly one process runs at a time and the
// clock only advances inside schedule(), which runs on the yielding
// process's goroutine before the resume-channel handoff to the next —
// so every access is ordered by those handoffs. The trace recorder uses
// it to stamp events without a lock acquisition.
func (k *SimKernel) NowCooperative() Time { return k.now }

// MarkStepVisible marks the scheduling step in progress as visible to the
// DFS pruner (see StepVisibility). It must be called from the running
// process; the trace recorder calls it when an event is recorded, since
// recorded events are exactly what the exploration oracles can observe.
// Unlocked by the same cooperative-discipline argument as NowCooperative.
func (k *SimKernel) MarkStepVisible() { k.stepVisible = true }

// finishLocked marks the kernel finished and releases every goroutine
// still blocked in a kernel operation: closing a process's resume channel
// wakes it with ok=false, which unwinds its stack (see simProc.await).
func (k *SimKernel) finishLocked() {
	k.finished = true
	for _, sp := range k.procs {
		if sp.state != stateDead {
			close(sp.resume)
			sp.resumeClosed = true
		}
	}
}

// Run implements Kernel: it dispatches the first process and then waits
// for the run outcome. Run must be called exactly once.
//
// Scheduling is by direct handoff: each process giving up the processor
// runs the scheduling step on its own goroutine and resumes its successor
// directly, so a context switch costs one goroutine wakeup, not a bounce
// through a central scheduler loop (two wakeups). Whichever goroutine
// detects termination — every process dead, deadlock, step limit, Stop —
// delivers the outcome to Run over doneCh.
func (k *SimKernel) Run() error {
	k.mu.Lock()
	if k.started {
		k.mu.Unlock()
		return fmt.Errorf("kernel: SimKernel.Run called twice")
	}
	k.started = true
	k.mu.Unlock()

	next, fin, err := k.schedule(nil)
	if fin {
		return err
	}
	next.resume <- struct{}{} // hand the processor to the first pick
	return <-k.doneCh
}

// schedule performs one scheduling decision on the calling goroutine.
// self is the process giving up the processor (nil for the initial
// dispatch from Run). It returns the process to hand off to, or fin=true
// with the run outcome when the run is over — in which case finishLocked
// has already unwound every live process, and the caller delivers err.
func (k *SimKernel) schedule(self *simProc) (next *simProc, fin bool, err error) {
	k.mu.Lock()
	// Close out the previous step's visibility record (the running
	// process has handed control back, so stepVisible is final).
	if len(k.visible) < len(k.choices) {
		k.visible = append(k.visible, k.stepVisible)
	}
	if k.stopRequested {
		// Early exit on request (e.g. a streaming oracle found its
		// violation): finish cleanly with the partial history.
		k.finishLocked()
		k.mu.Unlock()
		return nil, true, nil
	}
	if k.steps >= k.maxSteps {
		k.finishLocked()
		k.mu.Unlock()
		return nil, true, fmt.Errorf("kernel: step limit (%d) exceeded; possible livelock", k.maxSteps)
	}
	if !k.anyNonDaemonLiveLocked() {
		// Every real process finished; shut down remaining daemons.
		k.finishLocked()
		k.mu.Unlock()
		return nil, true, nil
	}
	if len(k.ready) == 0 {
		// Try to advance virtual time to the earliest sleeper.
		if !k.wakeSleepersLocked() {
			live := k.parkedNamesLocked()
			k.finishLocked()
			k.mu.Unlock()
			return nil, true, fmt.Errorf("%w: %s", ErrDeadlock, strings.Join(live, ", "))
		}
	}
	if k.restore != nil {
		if k.steps < int64(k.restore.Depth) {
			// Restore re-drive: follow the snapshot's prefix directly.
			// The per-step pipeline is skipped — no policy consultation
			// and no choice/fingerprint/visibility/mark appends; those
			// records were pre-filled from the snapshot (WithRestore), so
			// the close-out append above naturally stays idle until the
			// prefix is exhausted.
			c := k.restore.Choices[k.steps]
			if c.Ready != len(k.ready) || c.Picked < 0 || c.Picked >= len(k.ready) {
				k.finishLocked()
				k.mu.Unlock()
				return nil, true, fmt.Errorf("kernel: snapshot restore diverged at step %d: snapshot has %d ready (picked %d), observed %d ready",
					k.steps, c.Ready, c.Picked, len(k.ready))
			}
			k.steps++
			next = k.ready[c.Picked]
			k.ready = append(k.ready[:c.Picked], k.ready[c.Picked+1:]...)
			next.state = stateRunning
			next.schedCount++
			k.touchFPLocked(next)
			k.stepVisible = false
			k.running = next
			k.mu.Unlock()
			return next, false, nil
		}
		// Prefix exhausted: the re-driven state must hash to the
		// snapshot's capture-point fingerprint, or the program diverged
		// from the run the snapshot was taken from.
		if got := k.fingerprintLocked(); got != k.restore.Fp {
			k.finishLocked()
			k.mu.Unlock()
			return nil, true, fmt.Errorf("kernel: snapshot restore diverged: state fingerprint %#x after re-driving %d steps, snapshot has %#x",
				got, k.restore.Depth, k.restore.Fp)
		}
		k.restore = nil
	}
	// k.ready is already in deterministic order (ascending readiness
	// stamp); expose it to the policy through the reusable scratch.
	if cap(k.readyScratch) < len(k.ready) {
		k.readyScratch = make([]*Proc, len(k.ready))
	}
	readyProcs := k.readyScratch[:len(k.ready)]
	for i, sp := range k.ready {
		readyProcs[i] = sp.proc
	}
	// The fingerprint at the decision point, before anything runs.
	k.fps = append(k.fps, k.fingerprintLocked())
	if k.markFn != nil {
		k.marks = append(k.marks, k.markFn())
	}
	if k.depTrace {
		for _, sp := range k.ready {
			k.readyIDs = append(k.readyIDs, int32(sp.proc.id))
		}
	}
	idx := k.policy.Pick(readyProcs)
	if idx < 0 || idx >= len(k.ready) {
		k.finishLocked()
		k.mu.Unlock()
		return nil, true, fmt.Errorf("kernel: policy picked %d of %d ready processes", idx, len(readyProcs))
	}
	k.choices = append(k.choices, Choice{Ready: len(readyProcs), Picked: idx})
	k.steps++
	next = k.ready[idx]
	if k.depTrace {
		k.causes = append(k.causes, next.readyCause)
	}
	k.ready = append(k.ready[:idx], k.ready[idx+1:]...)
	next.state = stateRunning
	next.schedCount++
	k.touchFPLocked(next)
	k.stepVisible = false
	k.running = next
	k.mu.Unlock()
	return next, false, nil
}

// handoff transfers the processor from sp (which has already recorded its
// new state under k.mu) to whatever the scheduler picks next, then blocks
// until sp is rescheduled. If the run is over it delivers the outcome to
// Run and unwinds; if the scheduler picked sp itself (possible after a
// yield), it returns immediately with no channel traffic at all.
func (sp *simProc) handoff() {
	k := sp.kernel
	next, fin, err := k.schedule(sp)
	switch {
	case fin:
		k.doneCh <- err
		sp.await() // our resume was closed by finishLocked: unwind
	case next == sp:
		// Rescheduled without a context switch; keep running.
	default:
		next.resume <- struct{}{}
		sp.await()
	}
}

// wakeSleepersLocked advances the clock to the earliest wake time and
// readies every sleeper due at that time. It reports whether any process
// was woken.
func (k *SimKernel) wakeSleepersLocked() bool {
	var earliest int64
	found := false
	for _, sp := range k.procs {
		if sp.state == stateSleeping && (!found || sp.wakeAt < earliest) {
			earliest = sp.wakeAt
			found = true
		}
	}
	if !found {
		return false
	}
	if earliest > k.now {
		k.now = earliest
	}
	for _, sp := range k.procs {
		if sp.state == stateSleeping && sp.wakeAt <= k.now {
			k.markReadyLocked(sp)
			sp.readyCause = -1 // woken by the clock, not by a step
		}
	}
	return true
}

// anyNonDaemonLiveLocked reports whether a non-daemon process has not yet
// terminated.
func (k *SimKernel) anyNonDaemonLiveLocked() bool {
	for _, sp := range k.procs {
		if !sp.daemon && sp.state != stateDead {
			return true
		}
	}
	return false
}

// parkedNamesLocked lists live non-daemon processes (all necessarily
// parked when called) for the deadlock report.
func (k *SimKernel) parkedNamesLocked() []string {
	var names []string
	for _, sp := range k.procs {
		if !sp.daemon && sp.state != stateDead {
			names = append(names, sp.proc.String())
		}
	}
	return names
}

// await blocks until the scheduler hands the processor back. If the kernel
// shut down instead (resume closed), it unwinds the process stack; the
// spawn wrapper recovers the sentinel and the goroutine exits.
func (sp *simProc) await() {
	if _, ok := <-sp.resume; !ok {
		panic(errShutdown)
	}
}

// checkLiveLocked unwinds the calling process if the kernel has already
// finished — this catches kernel operations issued while a process stack
// is being unwound (e.g. from a deferred cleanup).
func (k *SimKernel) checkLiveLocked() {
	if k.finished {
		k.mu.Unlock()
		panic(errShutdown)
	}
}

func (sp *simProc) park() {
	k := sp.kernel
	k.mu.Lock()
	k.checkLiveLocked()
	k.stepVisible = true
	k.noteDepLocked(objProc(sp.proc.id))
	if sp.permit {
		sp.permit = false
		k.touchFPLocked(sp)
		k.mu.Unlock()
		return
	}
	sp.state = stateParked
	k.touchFPLocked(sp)
	k.mu.Unlock()
	sp.handoff()
}

func (sp *simProc) unpark() {
	k := sp.kernel
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.finished {
		return
	}
	k.stepVisible = true
	k.noteDepLocked(objProc(sp.proc.id))
	switch sp.state {
	case stateParked:
		k.markReadyLocked(sp)
	case stateDead:
		// no-op
	default:
		sp.permit = true
		k.touchFPLocked(sp)
	}
}

func (sp *simProc) yield() {
	// A pure yield is the one invisible kernel operation: it perturbs
	// only the yielder's position in the ready order, which the state
	// fingerprint deliberately ignores.
	k := sp.kernel
	k.mu.Lock()
	k.checkLiveLocked()
	k.markReadyLocked(sp)
	k.mu.Unlock()
	sp.handoff()
}

func (sp *simProc) sleep(ticks int64) {
	k := sp.kernel
	k.mu.Lock()
	k.checkLiveLocked()
	k.stepVisible = true
	k.noteDepLocked(objProc(sp.proc.id))
	sp.state = stateSleeping
	sp.wakeAt = k.now + ticks
	k.touchFPLocked(sp)
	k.mu.Unlock()
	sp.handoff()
}

func (sp *simProc) exited() {
	k := sp.kernel
	k.mu.Lock()
	sp.state = stateDead
	k.stepVisible = true
	k.noteDepLocked(objProc(sp.proc.id))
	k.touchFPLocked(sp)
	k.mu.Unlock()
	// Hand the processor on; no resume will follow, so the goroutine
	// simply returns instead of parking.
	next, fin, err := k.schedule(sp)
	if fin {
		k.doneCh <- err
		return
	}
	next.resume <- struct{}{}
}
