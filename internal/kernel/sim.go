package kernel

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// procState is the scheduling state of a simulated process.
type procState int

const (
	stateRunnable procState = iota
	stateRunning
	stateParked
	stateSleeping
	stateDead
)

func (s procState) String() string {
	switch s {
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateParked:
		return "parked"
	case stateSleeping:
		return "sleeping"
	case stateDead:
		return "dead"
	}
	return "invalid"
}

// Policy decides which runnable process runs next. Pick receives the ready
// processes in a deterministic order (ascending readiness, ties by spawn
// order) and returns an index into that slice. A Policy together with the
// program fully determines a SimKernel run.
type Policy interface {
	Pick(ready []*Proc) int
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(ready []*Proc) int

// Pick implements Policy.
func (f PolicyFunc) Pick(ready []*Proc) int { return f(ready) }

// FIFO returns the round-robin policy: always run the process that has
// been ready longest. This is the kernel's default.
func FIFO() Policy { return PolicyFunc(func([]*Proc) int { return 0 }) }

// LIFO returns the most-recently-ready-first policy, useful for provoking
// overtaking behaviors.
func LIFO() Policy { return PolicyFunc(func(ready []*Proc) int { return len(ready) - 1 }) }

// Random returns a seeded uniformly random policy. The same seed and
// program produce the same schedule.
func Random(seed int64) Policy {
	rng := rand.New(rand.NewSource(seed))
	return PolicyFunc(func(ready []*Proc) int { return rng.Intn(len(ready)) })
}

// Choice records one scheduling decision: how many processes were ready
// and which index was chosen.
type Choice struct {
	Ready  int // number of ready processes at the decision point
	Picked int // index chosen, 0 <= Picked < Ready
}

// Replay returns a policy that follows the given choice sequence, then
// falls back to FIFO when the sequence is exhausted. Out-of-range choices
// are clamped. It is the building block of systematic schedule exploration
// (package explore).
func Replay(choices []Choice) Policy {
	i := 0
	return PolicyFunc(func(ready []*Proc) int {
		if i >= len(choices) {
			return 0
		}
		c := choices[i].Picked
		i++
		if c >= len(ready) {
			c = len(ready) - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	})
}

// errShutdown is the panic value used to unwind process goroutines when
// the kernel shuts down (deadlock, step limit, or normal termination with
// daemons still live). It never escapes the kernel: the spawn wrapper
// recovers it.
var errShutdown = errors.New("kernel: simulation shut down")

// SimKernel is a deterministic cooperative scheduler. Exactly one process
// executes at a time; control returns to the scheduler at every kernel
// operation (Park, Yield, Sleep, process exit). Virtual time advances only
// when no process is runnable and some process is sleeping.
//
// When Run returns — normal completion, deadlock, or step limit — every
// goroutine the kernel spawned is released: processes still blocked in a
// kernel operation are unwound (their resume channels are closed) and
// exit, so repeated simulation runs do not accumulate goroutines.
type SimKernel struct {
	policy   Policy
	maxSteps int64

	mu       sync.Mutex
	now      int64
	nextID   int
	readySeq int64 // monotonically increasing readiness stamp
	procs    []*simProc
	ready    []*simProc // invariant: sorted ascending by readyAt
	running  *simProc
	steps    int64
	choices  []Choice

	// readyScratch is reused across scheduling steps to present the ready
	// set to the Policy without a per-step allocation.
	readyScratch []*Proc

	stopCh   chan *simProc
	started  bool
	finished bool
}

// SimOption configures a SimKernel.
type SimOption func(*SimKernel)

// WithPolicy sets the scheduling policy (default FIFO).
func WithPolicy(p Policy) SimOption {
	return func(k *SimKernel) { k.policy = p }
}

// WithMaxSteps bounds the number of scheduling steps Run will take before
// giving up with an error; it guards tests against livelocks. Zero (the
// default) means ten million steps.
func WithMaxSteps(n int64) SimOption {
	return func(k *SimKernel) { k.maxSteps = n }
}

// NewSim creates a SimKernel.
func NewSim(opts ...SimOption) *SimKernel {
	k := &SimKernel{
		policy:   FIFO(),
		maxSteps: 10_000_000,
		stopCh:   make(chan *simProc),
		choices:  make([]Choice, 0, 64),
	}
	for _, o := range opts {
		o(k)
	}
	return k
}

type simProc struct {
	proc    *Proc
	kernel  *SimKernel
	daemon  bool
	state   procState
	permit  bool
	wakeAt  int64 // valid when sleeping
	readyAt int64 // readiness stamp for deterministic ordering
	resume  chan struct{}
}

// Spawn implements Kernel. The process does not begin executing until the
// scheduler selects it.
func (k *SimKernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, false)
}

// SpawnDaemon implements Kernel: the process is scheduled normally but is
// invisible to termination and deadlock detection. When the last
// non-daemon process finishes, Run returns and remaining daemons are shut
// down: their goroutines are unwound and exit rather than staying parked.
func (k *SimKernel) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, true)
}

func (k *SimKernel) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	k.mu.Lock()
	k.nextID++
	p := &Proc{id: k.nextID, name: name, k: k}
	sp := &simProc{
		proc:   p,
		kernel: k,
		daemon: daemon,
		state:  stateRunnable,
		resume: make(chan struct{}),
	}
	p.impl = sp
	if k.finished {
		// Spawn after Run returned: never schedule; release the goroutine
		// immediately so it cannot leak.
		sp.state = stateDead
		close(sp.resume)
		k.mu.Unlock()
		return p
	}
	k.procs = append(k.procs, sp)
	k.markReadyLocked(sp)
	k.mu.Unlock()

	go func() {
		defer func() {
			if r := recover(); r != nil && r != errShutdown {
				panic(r)
			}
		}()
		if _, ok := <-sp.resume; !ok {
			return // kernel shut down before the first schedule
		}
		fn(p)
		sp.exited()
	}()
	return p
}

// markReadyLocked appends sp to the ready set with a fresh readiness stamp.
// Stamps increase monotonically and removal preserves order, so k.ready is
// always sorted by readyAt without any per-step sorting.
func (k *SimKernel) markReadyLocked(sp *simProc) {
	sp.state = stateRunnable
	k.readySeq++
	sp.readyAt = k.readySeq
	k.ready = append(k.ready, sp)
}

// Now implements Kernel: the virtual clock, in ticks.
func (k *SimKernel) Now() Time {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.now
}

// Steps reports how many scheduling decisions the kernel has made.
func (k *SimKernel) Steps() int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.steps
}

// Choices returns the scheduling decisions made so far, in order. The
// slice is a copy; it is the input to Replay-based exploration.
func (k *SimKernel) Choices() []Choice {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]Choice, len(k.choices))
	copy(out, k.choices)
	return out
}

// finishLocked marks the kernel finished and releases every goroutine
// still blocked in a kernel operation: closing a process's resume channel
// wakes it with ok=false, which unwinds its stack (see simProc.await).
func (k *SimKernel) finishLocked() {
	k.finished = true
	for _, sp := range k.procs {
		if sp.state != stateDead {
			close(sp.resume)
		}
	}
}

// Run implements Kernel: it drives the scheduler until every process is
// dead, a deadlock is detected, or the step limit is hit. Run must be
// called exactly once, from the goroutine that created the kernel.
func (k *SimKernel) Run() error {
	k.mu.Lock()
	if k.started {
		k.mu.Unlock()
		return fmt.Errorf("kernel: SimKernel.Run called twice")
	}
	k.started = true
	k.mu.Unlock()

	for {
		k.mu.Lock()
		if k.steps >= k.maxSteps {
			k.finishLocked()
			k.mu.Unlock()
			return fmt.Errorf("kernel: step limit (%d) exceeded; possible livelock", k.maxSteps)
		}
		if !k.anyNonDaemonLiveLocked() {
			// Every real process finished; shut down remaining daemons.
			k.finishLocked()
			k.mu.Unlock()
			return nil
		}
		if len(k.ready) == 0 {
			// Try to advance virtual time to the earliest sleeper.
			if !k.wakeSleepersLocked() {
				live := k.parkedNamesLocked()
				k.finishLocked()
				k.mu.Unlock()
				return fmt.Errorf("%w: %s", ErrDeadlock, strings.Join(live, ", "))
			}
		}
		// k.ready is already in deterministic order (ascending readiness
		// stamp); expose it to the policy through the reusable scratch.
		if cap(k.readyScratch) < len(k.ready) {
			k.readyScratch = make([]*Proc, len(k.ready))
		}
		readyProcs := k.readyScratch[:len(k.ready)]
		for i, sp := range k.ready {
			readyProcs[i] = sp.proc
		}
		idx := k.policy.Pick(readyProcs)
		if idx < 0 || idx >= len(k.ready) {
			k.finishLocked()
			k.mu.Unlock()
			return fmt.Errorf("kernel: policy picked %d of %d ready processes", idx, len(readyProcs))
		}
		k.choices = append(k.choices, Choice{Ready: len(readyProcs), Picked: idx})
		k.steps++
		next := k.ready[idx]
		k.ready = append(k.ready[:idx], k.ready[idx+1:]...)
		next.state = stateRunning
		k.running = next
		k.mu.Unlock()

		next.resume <- struct{}{} // hand the processor to next
		<-k.stopCh                // wait for it to yield control back
	}
}

// wakeSleepersLocked advances the clock to the earliest wake time and
// readies every sleeper due at that time. It reports whether any process
// was woken.
func (k *SimKernel) wakeSleepersLocked() bool {
	var earliest int64
	found := false
	for _, sp := range k.procs {
		if sp.state == stateSleeping && (!found || sp.wakeAt < earliest) {
			earliest = sp.wakeAt
			found = true
		}
	}
	if !found {
		return false
	}
	if earliest > k.now {
		k.now = earliest
	}
	for _, sp := range k.procs {
		if sp.state == stateSleeping && sp.wakeAt <= k.now {
			k.markReadyLocked(sp)
		}
	}
	return true
}

// anyNonDaemonLiveLocked reports whether a non-daemon process has not yet
// terminated.
func (k *SimKernel) anyNonDaemonLiveLocked() bool {
	for _, sp := range k.procs {
		if !sp.daemon && sp.state != stateDead {
			return true
		}
	}
	return false
}

// parkedNamesLocked lists live non-daemon processes (all necessarily
// parked when called) for the deadlock report.
func (k *SimKernel) parkedNamesLocked() []string {
	var names []string
	for _, sp := range k.procs {
		if !sp.daemon && sp.state != stateDead {
			names = append(names, sp.proc.String())
		}
	}
	return names
}

// await blocks until the scheduler hands the processor back. If the kernel
// shut down instead (resume closed), it unwinds the process stack; the
// spawn wrapper recovers the sentinel and the goroutine exits.
func (sp *simProc) await() {
	if _, ok := <-sp.resume; !ok {
		panic(errShutdown)
	}
}

// stop hands control back to the scheduler and blocks until rescheduled.
// The caller must have already recorded its new state under k.mu.
func (sp *simProc) stop() {
	sp.kernel.stopCh <- sp
	sp.await()
}

// checkLiveLocked unwinds the calling process if the kernel has already
// finished — this catches kernel operations issued while a process stack
// is being unwound (e.g. from a deferred cleanup).
func (k *SimKernel) checkLiveLocked() {
	if k.finished {
		k.mu.Unlock()
		panic(errShutdown)
	}
}

func (sp *simProc) park() {
	k := sp.kernel
	k.mu.Lock()
	k.checkLiveLocked()
	if sp.permit {
		sp.permit = false
		k.mu.Unlock()
		return
	}
	sp.state = stateParked
	k.mu.Unlock()
	sp.stop()
}

func (sp *simProc) unpark() {
	k := sp.kernel
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.finished {
		return
	}
	switch sp.state {
	case stateParked:
		k.markReadyLocked(sp)
	case stateDead:
		// no-op
	default:
		sp.permit = true
	}
}

func (sp *simProc) yield() {
	k := sp.kernel
	k.mu.Lock()
	k.checkLiveLocked()
	k.markReadyLocked(sp)
	k.mu.Unlock()
	sp.stop()
}

func (sp *simProc) sleep(ticks int64) {
	k := sp.kernel
	k.mu.Lock()
	k.checkLiveLocked()
	sp.state = stateSleeping
	sp.wakeAt = k.now + ticks
	k.mu.Unlock()
	sp.stop()
}

func (sp *simProc) exited() {
	k := sp.kernel
	k.mu.Lock()
	sp.state = stateDead
	k.mu.Unlock()
	k.stopCh <- sp // return control; no resume will follow
}
