package kernel

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSimRunsAllProcesses(t *testing.T) {
	k := NewSim()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		k.Spawn(name, func(p *Proc) {
			order = append(order, p.Name())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("FIFO execution order = %q, want abc", got)
	}
}

func TestSimYieldInterleavesFIFO(t *testing.T) {
	k := NewSim()
	var order []string
	step := func(p *Proc) {
		for i := 0; i < 3; i++ {
			order = append(order, p.Name())
			p.Yield()
		}
	}
	k.Spawn("a", step)
	k.Spawn("b", step)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "ababab" {
		t.Fatalf("order = %q, want ababab", got)
	}
}

func TestSimLIFOPolicy(t *testing.T) {
	k := NewSim(WithPolicy(LIFO()))
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		k.Spawn(name, func(p *Proc) { order = append(order, p.Name()) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "cba" {
		t.Fatalf("LIFO order = %q, want cba", got)
	}
}

func TestSimParkUnpark(t *testing.T) {
	k := NewSim()
	var order []string
	var waiter *Proc
	waiter = k.Spawn("waiter", func(p *Proc) {
		order = append(order, "park")
		p.Park()
		order = append(order, "woken")
	})
	k.Spawn("waker", func(p *Proc) {
		order = append(order, "wake")
		waiter.Unpark()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "park,wake,woken" {
		t.Fatalf("order = %q", got)
	}
}

func TestSimPermitBeforePark(t *testing.T) {
	k := NewSim()
	hit := false
	p := k.Spawn("p", func(p *Proc) {
		p.Park() // permit already granted: must not block
		hit = true
	})
	p.Unpark() // grant permit before the process ever runs
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("process never completed")
	}
}

func TestSimPermitsDoNotAccumulate(t *testing.T) {
	k := NewSim()
	waiter := k.Spawn("waiter", func(p *Proc) {
		p.Yield() // let the waker run first
		p.Park()  // consumes the single coalesced permit
		p.Park()  // no second permit: parks forever
	})
	k.Spawn("waker", func(p *Proc) {
		// Both unparks land before the waiter parks; they must coalesce
		// into a single permit.
		waiter.Unpark()
		waiter.Unpark()
	})
	err := k.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want ErrDeadlock (permits must not accumulate)", err)
	}
}

func TestSimDeadlockDetection(t *testing.T) {
	k := NewSim()
	k.Spawn("stuck", func(p *Proc) { p.Park() })
	err := k.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
	if !strings.Contains(err.Error(), "stuck#1") {
		t.Fatalf("deadlock report %q does not name the parked process", err)
	}
}

func TestSimVirtualTimeSleep(t *testing.T) {
	k := NewSim()
	var wakeTimes []int64
	k.Spawn("late", func(p *Proc) {
		p.Sleep(100)
		wakeTimes = append(wakeTimes, k.Now())
	})
	k.Spawn("early", func(p *Proc) {
		p.Sleep(10)
		wakeTimes = append(wakeTimes, k.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(wakeTimes) != 2 || wakeTimes[0] != 10 || wakeTimes[1] != 100 {
		t.Fatalf("wake times = %v, want [10 100]", wakeTimes)
	}
}

func TestSimSleepZeroIsYield(t *testing.T) {
	k := NewSim()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) { order = append(order, "b") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "a1,b,a2" {
		t.Fatalf("order = %q, want a1,b,a2", got)
	}
	if k.Now() != 0 {
		t.Fatalf("clock advanced to %d on Sleep(0)", k.Now())
	}
}

func TestSimSpawnFromProcess(t *testing.T) {
	k := NewSim()
	var order []string
	k.Spawn("parent", func(p *Proc) {
		order = append(order, "parent")
		p.Kernel().Spawn("child", func(c *Proc) {
			order = append(order, "child")
		})
		order = append(order, "parent2")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "parent,parent2,child" {
		t.Fatalf("order = %q", got)
	}
}

func TestSimRandomPolicyDeterministic(t *testing.T) {
	run := func(seed int64) string {
		k := NewSim(WithPolicy(Random(seed)))
		var order []string
		for _, name := range []string{"a", "b", "c", "d"} {
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					order = append(order, p.Name())
					p.Yield()
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(order, "")
	}
	if run(1) != run(1) {
		t.Fatal("same seed produced different schedules")
	}
	// Distinct seeds almost certainly differ for this workload; check a few.
	base := run(1)
	differs := false
	for seed := int64(2); seed < 8; seed++ {
		if run(seed) != base {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("six different seeds all produced the FIFO schedule; Random policy inert?")
	}
}

func TestSimReplayReproducesSchedule(t *testing.T) {
	program := func(k Kernel, order *[]string) {
		for _, name := range []string{"a", "b", "c"} {
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 2; i++ {
					*order = append(*order, p.Name())
					p.Yield()
				}
			})
		}
	}
	k1 := NewSim(WithPolicy(Random(42)))
	var o1 []string
	program(k1, &o1)
	if err := k1.Run(); err != nil {
		t.Fatal(err)
	}
	k2 := NewSim(WithPolicy(Replay(k1.Choices())))
	var o2 []string
	program(k2, &o2)
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(o1, "") != strings.Join(o2, "") {
		t.Fatalf("replay diverged: %v vs %v", o1, o2)
	}
}

func TestSimExactReplayReproducesRun(t *testing.T) {
	program := func(k Kernel, order *[]string) {
		for _, name := range []string{"a", "b", "c"} {
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 2; i++ {
					*order = append(*order, p.Name())
					p.Yield()
				}
			})
		}
	}
	k1 := NewSim(WithPolicy(Random(7)))
	var o1 []string
	program(k1, &o1)
	if err := k1.Run(); err != nil {
		t.Fatal(err)
	}
	pol := NewExactReplay(k1.Choices())
	k2 := NewSim(WithPolicy(pol))
	var o2 []string
	program(k2, &o2)
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if pol.Err() != nil {
		t.Fatalf("exact replay of own recording diverged: %v", pol.Err())
	}
	if strings.Join(o1, "") != strings.Join(o2, "") {
		t.Fatalf("replay diverged: %v vs %v", o1, o2)
	}
	if f1, f2 := k1.RunFingerprint(), k2.RunFingerprint(); f1 != f2 {
		t.Fatalf("run fingerprints differ across identical runs: %#x vs %#x", f1, f2)
	}
}

func TestSimExactReplayFailsOnDrift(t *testing.T) {
	spin := func(k Kernel, n int) {
		for i := 0; i < n; i++ {
			k.Spawn("p", func(p *Proc) { p.Yield(); p.Yield() })
		}
	}
	k1 := NewSim()
	spin(k1, 3)
	if err := k1.Run(); err != nil {
		t.Fatal(err)
	}
	// "Drifted" program: one fewer process, so the ready counts at early
	// decisions no longer match the recording.
	pol := NewExactReplay(k1.Choices())
	k2 := NewSim(WithPolicy(pol))
	spin(k2, 2)
	err := k2.Run()
	if err == nil || pol.Err() == nil {
		t.Fatalf("exact replay of drifted program: run err=%v policy err=%v; want both non-nil", err, pol.Err())
	}
	if !strings.Contains(pol.Err().Error(), "replay diverged") {
		t.Fatalf("unexpected divergence diagnostic: %v", pol.Err())
	}
}

func TestSimRunFingerprintOrderSensitive(t *testing.T) {
	run := func(pol Policy) uint64 {
		k := NewSim(WithPolicy(pol))
		for _, name := range []string{"a", "b"} {
			k.Spawn(name, func(p *Proc) { p.Yield(); p.Yield() })
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.RunFingerprint()
	}
	if run(FIFO()) == run(LIFO()) {
		t.Fatal("FIFO and LIFO runs produced the same run fingerprint")
	}
}

func TestSimStepLimit(t *testing.T) {
	k := NewSim(WithMaxSteps(50))
	k.Spawn("spinner", func(p *Proc) {
		for {
			p.Yield()
		}
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("Run = %v, want step-limit error", err)
	}
}

func TestSimRunTwiceFails(t *testing.T) {
	k := NewSim()
	k.Spawn("p", func(p *Proc) {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}

func TestSimChoicesRecorded(t *testing.T) {
	k := NewSim()
	k.Spawn("a", func(p *Proc) { p.Yield() })
	k.Spawn("b", func(p *Proc) {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	choices := k.Choices()
	if len(choices) == 0 {
		t.Fatal("no choices recorded")
	}
	for i, c := range choices {
		if c.Picked < 0 || c.Picked >= c.Ready {
			t.Fatalf("choice %d out of range: %+v", i, c)
		}
	}
}

func TestSimUnparkDeadProcessIsNoop(t *testing.T) {
	k := NewSim()
	var done *Proc
	done = k.Spawn("done", func(p *Proc) {})
	k.Spawn("waker", func(p *Proc) {
		p.Yield() // let "done" finish first (FIFO)
		done.Unpark()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSimDaemonIgnoredForTermination(t *testing.T) {
	k := NewSim()
	served := 0
	var server *Proc
	server = k.SpawnDaemon("server", func(p *Proc) {
		for {
			p.Park() // wait for a "request"
			served++
		}
	})
	k.Spawn("client", func(p *Proc) {
		server.Unpark()
		p.Yield() // let the server run
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run = %v; parked daemon must not deadlock", err)
	}
	if served != 1 {
		t.Fatalf("served = %d, want 1", served)
	}
}

func TestSimDaemonOnlyDeadlockStillDetected(t *testing.T) {
	k := NewSim()
	k.SpawnDaemon("server", func(p *Proc) { p.Park() })
	k.Spawn("stuck", func(p *Proc) { p.Park() })
	err := k.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want deadlock", err)
	}
	if strings.Contains(err.Error(), "server") {
		t.Fatalf("deadlock report %q names a daemon", err)
	}
}

// Property: for any seed, a batch of independent counters each complete
// all their increments — scheduling policy must never lose a process.
func TestSimPropertyNoLostProcesses(t *testing.T) {
	f := func(seed int64, nProcs uint8) bool {
		n := int(nProcs%8) + 1
		k := NewSim(WithPolicy(Random(seed)))
		var total atomic.Int64
		for i := 0; i < n; i++ {
			k.Spawn("w", func(p *Proc) {
				for j := 0; j < 5; j++ {
					total.Add(1)
					p.Yield()
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return total.Load() == int64(5*n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimContextSwitch(b *testing.B) {
	k := NewSim(WithMaxSteps(int64(b.N)*4 + 1000))
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
	})
	k.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// Every scheduling step records exactly one choice, and Steps() matches.
func TestSimStepsMatchChoices(t *testing.T) {
	k := NewSim(WithPolicy(Random(3)))
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *Proc) {
			for j := 0; j < 5; j++ {
				p.Yield()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if int64(len(k.Choices())) != k.Steps() {
		t.Fatalf("choices = %d, steps = %d", len(k.Choices()), k.Steps())
	}
}

// Virtual time never goes backwards across a run with mixed sleeps.
func TestSimClockMonotone(t *testing.T) {
	k := NewSim()
	var stamps []Time
	for i := 0; i < 3; i++ {
		d := int64(i*7 + 1)
		k.Spawn("s", func(p *Proc) {
			for j := 0; j < 3; j++ {
				p.Sleep(d)
				stamps = append(stamps, k.Now())
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(stamps); i++ {
		if stamps[i] < stamps[i-1] {
			t.Fatalf("clock went backwards: %v", stamps)
		}
	}
}

// waitGoroutines polls until the goroutine count settles at or below
// want+slack, failing the test at the deadline. Kernel shutdown unwinds
// process goroutines asynchronously after Run returns.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, want <= %d", runtime.NumGoroutine(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A deadlocked run must release every process goroutine when Run returns:
// abandoned processes blocked in Park are unwound, not stranded.
func TestSimDeadlockReleasesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		k := NewSim()
		k.Spawn("stuck-a", func(p *Proc) { p.Park() })
		k.Spawn("stuck-b", func(p *Proc) { p.Yield(); p.Park() })
		if err := k.Run(); !errors.Is(err, ErrDeadlock) {
			t.Fatalf("Run = %v, want deadlock", err)
		}
	}
	waitGoroutines(t, base+4)
}

// Hitting the step limit must likewise release the spinning processes.
func TestSimStepLimitReleasesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		k := NewSim(WithMaxSteps(64))
		k.Spawn("spin-a", func(p *Proc) {
			for {
				p.Yield()
			}
		})
		k.Spawn("spin-b", func(p *Proc) {
			for {
				p.Yield()
			}
		})
		err := k.Run()
		if err == nil || !strings.Contains(err.Error(), "step limit") {
			t.Fatalf("Run = %v, want step-limit error", err)
		}
	}
	waitGoroutines(t, base+4)
}

// Daemons abandoned at normal termination are unwound too, and sleepers
// blocked mid-Sleep do not survive a deadlocked run.
func TestSimDaemonsAndSleepersReleased(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		k := NewSim()
		k.SpawnDaemon("server", func(p *Proc) {
			for {
				p.Park()
			}
		})
		k.Spawn("client", func(p *Proc) { p.Yield() })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	waitGoroutines(t, base+4)
}

// The ready set is maintained in readiness-stamp order without sorting;
// this property run cross-checks the scheduler's pick order against the
// stamps the policy observes (FIFO must equal arrival order).
func TestSimReadyOrderIsArrivalOrder(t *testing.T) {
	k := NewSim(WithPolicy(PolicyFunc(func(ready []*Proc) int {
		for i := 1; i < len(ready); i++ {
			if ready[i-1].ID() == ready[i].ID() {
				t.Errorf("duplicate ready entry %v", ready[i])
			}
		}
		return 0
	})))
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Yield()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
