package kernel

import (
	"errors"
	"fmt"
	"sort"
)

// Snapshot is a passive capture of the scheduler-visible prefix of a
// finished run: the first Depth scheduling decisions together with their
// per-step artifacts (fingerprints, visibility, decision marks) and the
// recorder position at the capture point. It contains no goroutine state
// — Go cannot capture a goroutine's stack, so user closures are excluded
// by construction. What makes a snapshot restorable anyway is the
// kernel's cooperative discipline: a run is fully determined by its
// choice sequence, so re-driving the captured choices re-creates the
// captured state exactly, and the snapshot lets the kernel skip the
// per-step scheduling pipeline while doing so (see WithRestore).
//
// A Snapshot owns its slices (SnapshotAt copies), so it stays valid
// across Reset and may be restored on a different kernel.
type Snapshot struct {
	Depth   int      // number of scheduling decisions captured
	Choices []Choice // the captured prefix, len == Depth
	Fps     []uint64 // state fingerprint at each captured decision point
	Visible []bool   // per-step visibility of each captured step
	Fp      uint64   // state fingerprint at the capture point (decision Depth)
	Marks   []int    // decision mark at each captured decision point
	Events  int      // decision mark (recorder position) at the capture point

	// Dependency-trace records of the captured prefix (see deps.go);
	// nil unless the source kernel ran with WithDepTrace.
	ReadyIDs []int32     // flattened ready-set ids per captured decision
	Causes   []int32     // readying step of each captured pick
	Deps     []DepAccess // object accesses of the captured steps
}

// SnapshotAt captures the first depth scheduling decisions of the run
// that just finished. It is legal only between runs — after Run has
// returned and before the next Reset — and requires decision marks
// (SetDecisionMark) so the recorder position at the capture point is
// known. The run must have made more than depth decisions: the snapshot
// records the state fingerprint *at* decision point depth, which was
// only observed if a decision was made there.
func (k *SimKernel) SnapshotAt(depth int) (*Snapshot, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.started && !k.finished {
		return nil, errors.New("kernel: SnapshotAt mid-run; snapshots are only legal between runs")
	}
	if k.markFn == nil {
		return nil, errors.New("kernel: SnapshotAt requires decision marks (SetDecisionMark)")
	}
	if depth < 0 || depth >= len(k.choices) || depth >= len(k.fps) ||
		depth >= len(k.marks) || depth > len(k.visible) {
		return nil, fmt.Errorf("kernel: SnapshotAt(%d) out of range: run made %d decisions", depth, len(k.choices))
	}
	s := &Snapshot{
		Depth:   depth,
		Choices: append([]Choice(nil), k.choices[:depth]...),
		Fps:     append([]uint64(nil), k.fps[:depth]...),
		Visible: append([]bool(nil), k.visible[:depth]...),
		Fp:      k.fps[depth],
		Marks:   append([]int(nil), k.marks[:depth]...),
		Events:  k.marks[depth],
	}
	if k.depTrace {
		s.ReadyIDs = append([]int32(nil), k.readyIDs[:readyIDOffset(k.choices, depth)]...)
		s.Causes = append([]int32(nil), k.causes[:depth]...)
		s.Deps = append([]DepAccess(nil), k.deps[:depCut(k.deps, depth)]...)
	}
	return s, nil
}

// readyIDOffset is the index into the flattened ready-set ids where
// decision depth's segment begins: the sum of the preceding decisions'
// ready counts.
func readyIDOffset(choices []Choice, depth int) int {
	off := 0
	for _, c := range choices[:depth] {
		off += c.Ready
	}
	return off
}

// depCut is the number of leading dependency accesses performed by steps
// before decision depth; deps is in nondecreasing step order.
func depCut(deps []DepAccess, depth int) int {
	return sort.Search(len(deps), func(i int) bool { return deps[i].Step >= int32(depth) })
}

// Truncate derives the snapshot of a shallower prefix of the same run,
// sharing s's backing arrays instead of copying: the per-step artifacts
// of the first depth decisions are a prefix of s's, and the fingerprint
// and recorder position at the new capture point are s's per-step
// records at index depth. The result is as restorable as s; callers that
// hold many snapshots of one run (the exploration engine checkpoints
// every branch point of a run) pay for one capture.
func (s *Snapshot) Truncate(depth int) (*Snapshot, error) {
	if depth < 0 || depth >= s.Depth {
		return nil, fmt.Errorf("kernel: Truncate(%d) out of range: snapshot depth %d", depth, s.Depth)
	}
	t := &Snapshot{
		Depth:   depth,
		Choices: s.Choices[:depth],
		Fps:     s.Fps[:depth],
		Visible: s.Visible[:depth],
		Fp:      s.Fps[depth],
		Marks:   s.Marks[:depth],
		Events:  s.Marks[depth],
	}
	if s.ReadyIDs != nil || s.Causes != nil || s.Deps != nil {
		t.ReadyIDs = s.ReadyIDs[:readyIDOffset(s.Choices, depth)]
		t.Causes = s.Causes[:depth]
		t.Deps = s.Deps[:depCut(s.Deps, depth)]
	}
	return t, nil
}

// WithRestore arms the next run to resume from s. The kernel re-drives
// the snapshot's choice prefix in restore mode: user code re-executes
// (goroutine stacks cannot be captured, so the prefix interleaving must
// be re-driven), but the per-step scheduling pipeline is skipped — no
// policy consultation and no choice/fingerprint/visibility/mark appends,
// those records being pre-filled from the snapshot instead. When the
// prefix is exhausted the kernel verifies the live state fingerprint
// against the snapshot's and fails the run loudly on divergence, then
// hands the suffix to the configured Policy. Pass it to Reset together
// with WithPolicy for the suffix schedule; a restore arms exactly one
// run and is cleared by the next Reset.
func WithRestore(s *Snapshot) SimOption {
	return func(k *SimKernel) {
		k.restore = s
		k.choices = append(k.choices[:0], s.Choices...)
		k.fps = append(k.fps[:0], s.Fps...)
		k.visible = append(k.visible[:0], s.Visible...)
		k.marks = append(k.marks[:0], s.Marks...)
		k.readyIDs = append(k.readyIDs[:0], s.ReadyIDs...)
		k.causes = append(k.causes[:0], s.Causes...)
		k.deps = append(k.deps[:0], s.Deps...)
	}
}

// Restore is Reset plus WithRestore(s): it returns the kernel to the
// pre-spawn state and arms the next run to resume from s. Like Reset
// and SnapshotAt it is legal only between runs, never from inside a
// running process.
func (k *SimKernel) Restore(s *Snapshot, opts ...SimOption) {
	k.Reset(append([]SimOption{WithRestore(s)}, opts...)...)
}

// SetDecisionMark installs fn to be sampled at every scheduling decision
// point; the sampled values are retrievable via DecisionMarks, aligned
// with ChoicesView. The exploration engine points it at the trace
// recorder's event count, so snapshots know the recorder position at
// each decision. The callback runs under the kernel lock on the
// scheduling goroutine — keep it trivial. It persists across Reset; nil
// removes it.
func (k *SimKernel) SetDecisionMark(fn func() int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.markFn = fn
}

// DecisionMarks returns the sampled decision marks, aligned with
// ChoicesView. Same aliasing contract as ChoicesView.
func (k *SimKernel) DecisionMarks() []int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.marks
}
