package kernel

import (
	"reflect"
	"strings"
	"testing"
)

// snapProgram spawns a small interleaving-rich program: three processes
// yielding, parking, and sleeping. events collects the observable
// execution order; marker is sampled at every decision point so
// SnapshotAt works.
func snapProgram(k *SimKernel, events *[]string) {
	mark := func(p *Proc, what string) { *events = append(*events, p.Name()+":"+what) }
	var waiter *Proc
	waiter = k.Spawn("waiter", func(p *Proc) {
		mark(p, "park")
		p.Park()
		mark(p, "woke")
	})
	k.Spawn("worker", func(p *Proc) {
		for i := 0; i < 3; i++ {
			mark(p, "step")
			p.Yield()
		}
		waiter.Unpark()
		mark(p, "unparked")
	})
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5)
		mark(p, "awake")
	})
}

// runSnapProgram executes snapProgram under policy and returns the
// observable event order, the recorded schedule, and the run fingerprint.
func runSnapProgram(t *testing.T, k *SimKernel, policy Policy) ([]string, []Choice, uint64) {
	t.Helper()
	var events []string
	k.Reset(WithPolicy(policy))
	k.SetDecisionMark(func() int { return len(events) })
	snapProgram(k, &events)
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return events, k.Choices(), k.RunFingerprint()
}

// A restored run must reproduce the source run exactly: same observable
// event order, same choices, same run fingerprint — at every checkpoint
// depth.
func TestSimSnapshotRestoreEveryDepth(t *testing.T) {
	k := NewSim()
	baseEvents, schedule, baseFp := runSnapProgram(t, k, Random(42))
	if len(schedule) < 4 {
		t.Fatalf("scenario too shallow: %d decisions", len(schedule))
	}
	for depth := 0; depth < len(schedule); depth++ {
		snap, err := k.SnapshotAt(depth)
		if err != nil {
			t.Fatalf("SnapshotAt(%d): %v", depth, err)
		}
		k2 := NewSim()
		var events []string
		k2.Restore(snap, WithPolicy(Replay(schedule[depth:])))
		k2.SetDecisionMark(func() int { return len(events) })
		snapProgram(k2, &events)
		if err := k2.Run(); err != nil {
			t.Fatalf("depth %d: restored run: %v", depth, err)
		}
		if !reflect.DeepEqual(events, baseEvents) {
			t.Fatalf("depth %d: events diverged:\nbase:     %v\nrestored: %v", depth, baseEvents, events)
		}
		if !reflect.DeepEqual(k2.Choices(), schedule) {
			t.Fatalf("depth %d: choices diverged", depth)
		}
		if fp := k2.RunFingerprint(); fp != baseFp {
			t.Fatalf("depth %d: run fingerprint %#x, want %#x", depth, fp, baseFp)
		}
		// The per-step artifact views must match too: the restored run's
		// pre-filled prefix plus its live suffix equals the source run's.
		if !reflect.DeepEqual(k2.StepFingerprints(), k.StepFingerprints()) {
			t.Fatalf("depth %d: step fingerprints diverged", depth)
		}
		if !reflect.DeepEqual(k2.StepVisibility(), k.StepVisibility()) {
			t.Fatalf("depth %d: step visibility diverged", depth)
		}
		// Re-snapshot the stale source kernel next iteration: views are
		// still valid because k has not been Reset.
	}
}

// Restoring on the same recycled kernel (the exploration pool's path)
// must behave identically to restoring on a fresh one.
func TestSimSnapshotRestoreRecycled(t *testing.T) {
	k := NewSim(WithRecycle())
	defer k.Close()
	baseEvents, schedule, baseFp := runSnapProgram(t, k, Random(7))
	snap, err := k.SnapshotAt(len(schedule) / 2)
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	k.Reset(WithPolicy(Replay(schedule[snap.Depth:])), WithRestore(snap))
	k.SetDecisionMark(func() int { return len(events) })
	snapProgram(k, &events)
	if err := k.Run(); err != nil {
		t.Fatalf("restored run: %v", err)
	}
	if !reflect.DeepEqual(events, baseEvents) {
		t.Fatalf("events diverged:\nbase:     %v\nrestored: %v", baseEvents, events)
	}
	if fp := k.RunFingerprint(); fp != baseFp {
		t.Fatalf("run fingerprint %#x, want %#x", fp, baseFp)
	}
}

// A snapshot restored against a program that diverges from the one it
// was captured from must fail loudly, not silently explore a different
// interleaving.
func TestSimSnapshotRestoreDivergenceDetected(t *testing.T) {
	k := NewSim()
	_, schedule, _ := runSnapProgram(t, k, Random(3))
	snap, err := k.SnapshotAt(len(schedule) - 1)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the capture-point fingerprint: the re-drive itself still
	// succeeds (the program really does follow the prefix), but the
	// validation at the fork point must reject the snapshot.
	snap.Fp ^= 0xdeadbeef
	k2 := NewSim()
	var events []string
	k2.Restore(snap, WithPolicy(Replay(schedule[snap.Depth:])))
	k2.SetDecisionMark(func() int { return len(events) })
	snapProgram(k2, &events)
	err = k2.Run()
	if err == nil || !strings.Contains(err.Error(), "restore diverged") {
		t.Fatalf("corrupted snapshot: err = %v, want restore-divergence error", err)
	}

	// A prefix whose choices do not fit the program diverges at re-drive.
	k3 := NewSim()
	snap2, err := k.SnapshotAt(2)
	if err != nil {
		t.Fatal(err)
	}
	snap2.Choices[1].Ready = 99
	k3.Restore(snap2)
	k3.SetDecisionMark(func() int { return 0 })
	var sink []string
	snapProgram(k3, &sink)
	err = k3.Run()
	if err == nil || !strings.Contains(err.Error(), "restore diverged") {
		t.Fatalf("corrupted prefix: err = %v, want restore-divergence error", err)
	}
}

// SnapshotAt guards its preconditions: decision marks must be enabled
// and the depth must be a decision point the run actually reached.
func TestSimSnapshotAtErrors(t *testing.T) {
	k := NewSim()
	k.Spawn("a", func(p *Proc) { p.Yield() })
	k.Spawn("b", func(p *Proc) { p.Yield() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.SnapshotAt(0); err == nil {
		t.Fatal("SnapshotAt without decision marks should fail")
	}
	k.SetDecisionMark(func() int { return 0 })
	_, schedule, _ := runSnapProgram(t, k, FIFO())
	if _, err := k.SnapshotAt(len(schedule)); err == nil {
		t.Fatal("SnapshotAt(len(schedule)) should be out of range")
	}
	if _, err := k.SnapshotAt(-1); err == nil {
		t.Fatal("SnapshotAt(-1) should be out of range")
	}
}
