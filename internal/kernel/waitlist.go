package kernel

// WaitList is an ordered list of waiting processes. It is the queue
// building block shared by all mechanisms: semaphores, monitor conditions,
// serializer queues, and path-expression selection all need
// longest-waiting-first (FIFO) dequeueing — the assumption the paper makes
// of the path-expression selection operator (§5.1) — while Hoare's priority
// conditions additionally need rank-ordered dequeueing.
//
// A WaitList is not safe for concurrent use; the owning mechanism guards it
// with its own state lock. Enqueueing records an arrival sequence number so
// that equal-rank waiters always dequeue in arrival order.
type WaitList struct {
	entries []waitEntry
	seq     int64
}

type waitEntry struct {
	p    *Proc
	rank int64
	seq  int64
	tag  any
}

// Push appends p with rank 0 (pure FIFO).
func (w *WaitList) Push(p *Proc) { w.PushRank(p, 0) }

// PushRank inserts p ordered by ascending rank; among equal ranks, arrival
// order is preserved. Rank is the monitor "priority wait" argument; pure
// FIFO lists use rank 0 everywhere.
func (w *WaitList) PushRank(p *Proc, rank int64) { w.PushTagged(p, rank, nil) }

// PushTagged is PushRank with an arbitrary tag retrievable at Pop time,
// used by mechanisms that must carry per-waiter data (e.g. a serializer
// guard or a requested disk track) alongside the process.
func (w *WaitList) PushTagged(p *Proc, rank int64, tag any) {
	w.seq++
	e := waitEntry{p: p, rank: rank, seq: w.seq, tag: tag}
	// Insert before the first entry with a strictly greater rank, keeping
	// arrival order among equal ranks. Linear scan from the back keeps the
	// common all-rank-zero case O(1).
	i := len(w.entries)
	for i > 0 && w.entries[i-1].rank > rank {
		i--
	}
	w.entries = append(w.entries, waitEntry{})
	copy(w.entries[i+1:], w.entries[i:])
	w.entries[i] = e
}

// Pop removes and returns the longest-waiting, lowest-rank process. It
// returns nil when the list is empty.
func (w *WaitList) Pop() *Proc {
	p, _ := w.PopTagged()
	return p
}

// PopTagged is Pop returning the waiter's tag as well.
func (w *WaitList) PopTagged() (*Proc, any) {
	if len(w.entries) == 0 {
		return nil, nil
	}
	e := w.entries[0]
	copy(w.entries, w.entries[1:])
	w.entries = w.entries[:len(w.entries)-1]
	return e.p, e.tag
}

// Peek returns the process that Pop would return, without removing it, or
// nil when the list is empty.
func (w *WaitList) Peek() *Proc {
	if len(w.entries) == 0 {
		return nil
	}
	return w.entries[0].p
}

// PeekTag returns the tag Pop would return, without removing it.
func (w *WaitList) PeekTag() any {
	if len(w.entries) == 0 {
		return nil
	}
	return w.entries[0].tag
}

// MinRank returns the rank of the head entry. It is meaningful only when
// Len() > 0; the boolean reports whether the list is non-empty. Monitor
// priority conditions expose this as Hoare's "minrank" query.
func (w *WaitList) MinRank() (int64, bool) {
	if len(w.entries) == 0 {
		return 0, false
	}
	return w.entries[0].rank, true
}

// Remove deletes p from the list wherever it is, reporting whether it was
// present. Mechanisms use it to implement cancellation and to steal a
// specific waiter.
func (w *WaitList) Remove(p *Proc) bool {
	for i := range w.entries {
		if w.entries[i].p == p {
			copy(w.entries[i:], w.entries[i+1:])
			w.entries = w.entries[:len(w.entries)-1]
			return true
		}
	}
	return false
}

// Len reports the number of waiting processes.
func (w *WaitList) Len() int { return len(w.entries) }

// Each calls fn for every waiter in dequeue order, with its rank and tag.
// It must not mutate the list.
func (w *WaitList) Each(fn func(p *Proc, rank int64, tag any)) {
	for _, e := range w.entries {
		fn(e.p, e.rank, e.tag)
	}
}
