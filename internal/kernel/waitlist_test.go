package kernel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkProc(id int) *Proc { return &Proc{id: id, name: "p"} }

func TestWaitListFIFO(t *testing.T) {
	var w WaitList
	ps := []*Proc{mkProc(1), mkProc(2), mkProc(3)}
	for _, p := range ps {
		w.Push(p)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	for i, want := range ps {
		if got := w.Pop(); got != want {
			t.Fatalf("Pop #%d = %v, want %v", i, got, want)
		}
	}
	if got := w.Pop(); got != nil {
		t.Fatalf("Pop on empty = %v, want nil", got)
	}
}

func TestWaitListRankOrdering(t *testing.T) {
	var w WaitList
	a, b, c, d := mkProc(1), mkProc(2), mkProc(3), mkProc(4)
	w.PushRank(a, 5)
	w.PushRank(b, 1)
	w.PushRank(c, 5)
	w.PushRank(d, 0)
	want := []*Proc{d, b, a, c} // ascending rank, arrival order within rank
	for i, wp := range want {
		if got := w.Pop(); got != wp {
			t.Fatalf("Pop #%d = %v, want %v", i, got, wp)
		}
	}
}

func TestWaitListMinRank(t *testing.T) {
	var w WaitList
	if _, ok := w.MinRank(); ok {
		t.Fatal("MinRank on empty reported ok")
	}
	w.PushRank(mkProc(1), 7)
	w.PushRank(mkProc(2), 3)
	if r, ok := w.MinRank(); !ok || r != 3 {
		t.Fatalf("MinRank = %d,%v, want 3,true", r, ok)
	}
}

func TestWaitListRemove(t *testing.T) {
	var w WaitList
	a, b, c := mkProc(1), mkProc(2), mkProc(3)
	w.Push(a)
	w.Push(b)
	w.Push(c)
	if !w.Remove(b) {
		t.Fatal("Remove(b) = false, want true")
	}
	if w.Remove(b) {
		t.Fatal("second Remove(b) = true, want false")
	}
	if got := w.Pop(); got != a {
		t.Fatalf("Pop = %v, want a", got)
	}
	if got := w.Pop(); got != c {
		t.Fatalf("Pop = %v, want c", got)
	}
}

func TestWaitListTags(t *testing.T) {
	var w WaitList
	a, b := mkProc(1), mkProc(2)
	w.PushTagged(a, 0, "ga")
	w.PushTagged(b, 0, 42)
	if tag := w.PeekTag(); tag != "ga" {
		t.Fatalf("PeekTag = %v, want ga", tag)
	}
	p, tag := w.PopTagged()
	if p != a || tag != "ga" {
		t.Fatalf("PopTagged = %v,%v", p, tag)
	}
	p, tag = w.PopTagged()
	if p != b || tag != 42 {
		t.Fatalf("PopTagged = %v,%v", p, tag)
	}
}

func TestWaitListEach(t *testing.T) {
	var w WaitList
	w.PushRank(mkProc(1), 2)
	w.PushRank(mkProc(2), 1)
	var ids []int
	var ranks []int64
	w.Each(func(p *Proc, rank int64, _ any) {
		ids = append(ids, p.ID())
		ranks = append(ranks, rank)
	})
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 1 || ranks[0] != 1 || ranks[1] != 2 {
		t.Fatalf("Each visited ids=%v ranks=%v", ids, ranks)
	}
}

// Property: dequeue order is a stable sort of the enqueue sequence by rank.
func TestWaitListPropertyStableRankSort(t *testing.T) {
	f := func(ranks []int8) bool {
		var w WaitList
		type rec struct {
			id   int
			rank int64
		}
		var in []rec
		for i, r8 := range ranks {
			r := int64(r8)
			if r < 0 {
				r = -r
			}
			in = append(in, rec{i + 1, r})
			w.PushRank(mkProc(i+1), r)
		}
		// Expected: stable sort by rank.
		expected := make([]rec, len(in))
		copy(expected, in)
		for i := 1; i < len(expected); i++ { // insertion sort = stable
			for j := i; j > 0 && expected[j-1].rank > expected[j].rank; j-- {
				expected[j-1], expected[j] = expected[j], expected[j-1]
			}
		}
		for _, e := range expected {
			got := w.Pop()
			if got == nil || got.ID() != e.id {
				return false
			}
		}
		return w.Pop() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved push/pop never corrupts the list; Len is
// consistent with the number of successful pops remaining.
func TestWaitListPropertyPushPopBalance(t *testing.T) {
	f := func(ops []bool, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var w WaitList
		n := 0
		id := 0
		for _, push := range ops {
			if push {
				id++
				w.PushRank(mkProc(id), int64(rng.Intn(4)))
				n++
			} else {
				p := w.Pop()
				if (p == nil) != (n == 0) {
					return false
				}
				if n > 0 {
					n--
				}
			}
			if w.Len() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWaitListPushPopFIFO(b *testing.B) {
	var w WaitList
	p := mkProc(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Push(p)
		w.Pop()
	}
}

func BenchmarkWaitListPushPopRanked(b *testing.B) {
	var w WaitList
	ps := make([]*Proc, 64)
	for i := range ps {
		ps[i] = mkProc(i)
	}
	for i, p := range ps {
		w.PushRank(p, int64(i%8))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := w.Pop()
		w.PushRank(p, int64(i%8))
	}
}
