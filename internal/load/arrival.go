package load

import (
	"fmt"
	"math/rand"
)

// Arrival models. Open-loop traffic (Poisson, uniform, burst) offers
// operations at externally scheduled instants regardless of how fast the
// system absorbs them — the load-testing regime that exposes queueing
// behavior and avoids coordinated omission, because latency is measured
// from the *intended* arrival time. Closed-loop traffic (a fixed client
// population with think time) models a bounded user base and measures the
// latency those users actually experience.

// ArrivalKind selects the traffic model of a load run.
type ArrivalKind int

const (
	// ArrivalClosed is closed-loop traffic: Config.Clients processes,
	// each issuing one operation at a time separated by exponentially
	// distributed think time with mean Config.ThinkTicks kernel ticks.
	ArrivalClosed ArrivalKind = iota
	// ArrivalPoisson is open-loop traffic with exponentially distributed
	// interarrival gaps at mean rate Config.RatePerSec.
	ArrivalPoisson
	// ArrivalUniform is open-loop traffic with gaps uniform on
	// [0, 2/rate], same mean rate as Poisson but bounded burstiness.
	ArrivalUniform
	// ArrivalBurst is open-loop traffic in bursts: Config.BurstSize
	// back-to-back arrivals, then one long gap, preserving the mean rate.
	ArrivalBurst
)

// String reports the CLI spelling of the arrival kind.
func (a ArrivalKind) String() string {
	switch a {
	case ArrivalClosed:
		return "closed"
	case ArrivalPoisson:
		return "poisson"
	case ArrivalUniform:
		return "uniform"
	case ArrivalBurst:
		return "burst"
	}
	return "invalid"
}

// Open reports whether the kind is an open-loop model.
func (a ArrivalKind) Open() bool { return a != ArrivalClosed }

// ParseArrival parses a CLI spelling of an arrival kind.
func ParseArrival(s string) (ArrivalKind, error) {
	switch s {
	case "closed":
		return ArrivalClosed, nil
	case "poisson":
		return ArrivalPoisson, nil
	case "uniform":
		return ArrivalUniform, nil
	case "burst":
		return ArrivalBurst, nil
	}
	return 0, fmt.Errorf("load: unknown arrival kind %q (want closed, poisson, uniform, or burst)", s)
}

// gapper produces the deterministic interarrival gap sequence of an
// open-loop run: given the same seed and parameters, the offered traffic
// is identical between runs even though real-kernel interleaving is not.
type gapper struct {
	kind    ArrivalKind
	rng     *rand.Rand
	meanGap float64 // ns between arrivals at the configured rate
	burst   int
	inBurst int
}

func newGapper(kind ArrivalKind, rate float64, burstSize int, rng *rand.Rand) *gapper {
	return &gapper{kind: kind, rng: rng, meanGap: 1e9 / rate, burst: burstSize}
}

// next returns the gap in nanoseconds before the following arrival.
func (g *gapper) next() int64 {
	switch g.kind {
	case ArrivalPoisson:
		return int64(g.rng.ExpFloat64() * g.meanGap)
	case ArrivalUniform:
		return int64(g.rng.Float64() * 2 * g.meanGap)
	case ArrivalBurst:
		g.inBurst++
		if g.inBurst < g.burst {
			return 0
		}
		g.inBurst = 0
		return int64(float64(g.burst) * g.meanGap)
	}
	return int64(g.meanGap)
}
