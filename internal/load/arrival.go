package load

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Arrival models. Open-loop traffic (Poisson, uniform, burst, diurnal,
// pareto) offers operations at externally scheduled instants regardless of
// how fast the system absorbs them — the load-testing regime that exposes
// queueing behavior and avoids coordinated omission, because latency is
// measured from the *intended* arrival time. Closed-loop traffic (a fixed
// client population with think time) models a bounded user base and
// measures the latency those users actually experience.

// ArrivalKind selects the traffic model of a load run.
type ArrivalKind int

const (
	// ArrivalClosed is closed-loop traffic: Config.Clients processes,
	// each issuing one operation at a time separated by exponentially
	// distributed think time with mean Config.ThinkTicks kernel ticks.
	ArrivalClosed ArrivalKind = iota
	// ArrivalPoisson is open-loop traffic with exponentially distributed
	// interarrival gaps at mean rate Config.RatePerSec.
	ArrivalPoisson
	// ArrivalUniform is open-loop traffic with gaps uniform on
	// [0, 2/rate], same mean rate as Poisson but bounded burstiness.
	ArrivalUniform
	// ArrivalBurst is open-loop traffic in bursts: Config.BurstSize
	// back-to-back arrivals, then one long gap, preserving the mean rate.
	ArrivalBurst
	// ArrivalDiurnal is open-loop Poisson traffic whose instantaneous
	// rate swings sinusoidally around Config.RatePerSec — between 0.2x
	// and 1.8x — over each Config.DiurnalPeriod: the compressed
	// day/night cycle of a long soak, so a run sees sustained peak and
	// trough regimes rather than one stationary rate.
	ArrivalDiurnal
	// ArrivalPareto is open-loop traffic with heavy-tailed (Lomax/Pareto
	// type II, shape paretoAlpha) interarrival gaps at the same mean rate:
	// most gaps are short, but rare very long gaps cluster the arrivals
	// into flash crowds far burstier than Poisson.
	ArrivalPareto
)

// String reports the CLI spelling of the arrival kind.
func (a ArrivalKind) String() string {
	switch a {
	case ArrivalClosed:
		return "closed"
	case ArrivalPoisson:
		return "poisson"
	case ArrivalUniform:
		return "uniform"
	case ArrivalBurst:
		return "burst"
	case ArrivalDiurnal:
		return "diurnal"
	case ArrivalPareto:
		return "pareto"
	}
	return "invalid"
}

// Open reports whether the kind is an open-loop model.
func (a ArrivalKind) Open() bool { return a != ArrivalClosed }

// OpenArrivals lists the open-loop kinds in evaluation order.
func OpenArrivals() []ArrivalKind {
	return []ArrivalKind{ArrivalPoisson, ArrivalUniform, ArrivalBurst, ArrivalDiurnal, ArrivalPareto}
}

// ParseArrival parses a CLI spelling of an arrival kind.
func ParseArrival(s string) (ArrivalKind, error) {
	switch s {
	case "closed":
		return ArrivalClosed, nil
	case "poisson":
		return ArrivalPoisson, nil
	case "uniform":
		return ArrivalUniform, nil
	case "burst":
		return ArrivalBurst, nil
	case "diurnal":
		return ArrivalDiurnal, nil
	case "pareto":
		return ArrivalPareto, nil
	}
	return 0, fmt.Errorf("load: unknown arrival kind %q (want closed, poisson, uniform, burst, diurnal, or pareto)", s)
}

// paretoAlpha is the Lomax shape of ArrivalPareto. 1.5 keeps the mean
// finite (alpha > 1, so the configured rate is honored) while the
// variance is infinite — the classic heavy-tail regime.
const paretoAlpha = 1.5

// diurnalSwing is the relative amplitude of ArrivalDiurnal's rate
// modulation: rate(t) = base * (1 ± diurnalSwing).
const diurnalSwing = 0.8

// gapper produces the deterministic interarrival gap sequence of an
// open-loop run: given the same seed and parameters, the offered traffic
// is identical between runs even though real-kernel interleaving is not.
type gapper struct {
	kind    ArrivalKind
	rng     *rand.Rand
	meanGap float64 // ns between arrivals at the configured rate
	burst   int
	inBurst int

	periodNs float64 // diurnal modulation period
	clockNs  float64 // diurnal cursor: cumulative intended time
}

func newGapper(kind ArrivalKind, rate float64, burstSize int, diurnalPeriod time.Duration, rng *rand.Rand) *gapper {
	return &gapper{
		kind:     kind,
		rng:      rng,
		meanGap:  1e9 / rate,
		burst:    burstSize,
		periodNs: float64(diurnalPeriod.Nanoseconds()),
	}
}

// next returns the gap in nanoseconds before the following arrival.
func (g *gapper) next() int64 {
	switch g.kind {
	case ArrivalPoisson:
		return int64(g.rng.ExpFloat64() * g.meanGap)
	case ArrivalUniform:
		return int64(g.rng.Float64() * 2 * g.meanGap)
	case ArrivalBurst:
		g.inBurst++
		if g.inBurst < g.burst {
			return 0
		}
		g.inBurst = 0
		return int64(float64(g.burst) * g.meanGap)
	case ArrivalDiurnal:
		// Exponential gap at the instantaneous rate of the sinusoid —
		// the standard thinning-free approximation for rates that vary
		// slowly relative to the gap.
		phase := 2 * math.Pi * g.clockNs / g.periodNs
		relRate := 1 + diurnalSwing*math.Sin(phase)
		gap := int64(g.rng.ExpFloat64() * g.meanGap / relRate)
		g.clockNs += float64(gap)
		return gap
	case ArrivalPareto:
		// Lomax: gap = scale * (U^(-1/alpha) - 1), scale chosen so the
		// mean is meanGap (mean = scale/(alpha-1) for alpha > 1).
		scale := g.meanGap * (paretoAlpha - 1)
		u := 1 - g.rng.Float64() // (0, 1]
		return int64(scale * (math.Pow(u, -1/paretoAlpha) - 1))
	}
	return int64(g.meanGap)
}
