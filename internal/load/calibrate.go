package load

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Harness calibration: before trusting a load run's numbers, measure the
// measuring stick. GOMAXPROCS writers hammer one shared Histogram and then
// one ShardedHistogram for the same wall-clock window; the ratio is the
// contention tax the shared counters charge on this machine. The load
// engine records through sharded histograms precisely so this tax never
// caps the observable arrival rate — the calibration archived in a report
// is the proof, per machine, rather than an asserted constant.

// CalibrateHistograms measures Record throughput (records/sec) for a
// shared Histogram versus a ShardedHistogram with the default shard count,
// each hammered by GOMAXPROCS concurrent writers for roughly d per
// variant. d is clamped below to 10ms so the result is never a
// division-by-epsilon artifact.
func CalibrateHistograms(d time.Duration) HarnessReport {
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	workers := runtime.GOMAXPROCS(0)

	shared := &Histogram{}
	sharedRate := hammer(workers, d, func(worker uint64, v int64) {
		shared.Record(v)
	})

	sh := NewSharded(0)
	shardedRate := hammer(workers, d, func(worker uint64, v int64) {
		sh.Record(worker, v)
	})

	rep := HarnessReport{
		Cores:                workers,
		HistShards:           sh.Shards(),
		SharedRecordsPerSec:  sharedRate,
		ShardedRecordsPerSec: shardedRate,
	}
	if sharedRate > 0 {
		rep.Speedup = shardedRate / sharedRate
	}
	return rep
}

// hammer runs workers goroutines calling record in a tight loop until the
// deadline and returns the aggregate records/sec. The value sequence per
// worker is a cheap LCG walk over a realistic latency range so bucket
// indices vary the way real latencies do (constant values would park every
// increment on one cache line and overstate contention).
func hammer(workers int, d time.Duration, record func(worker uint64, v int64)) float64 {
	var stop atomic.Bool
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker uint64) {
			defer wg.Done()
			x := worker*2654435761 + 1
			var n int64
			for !stop.Load() {
				x = x*6364136223846793005 + 1442695040888963407
				record(worker, int64(x>>40)) // ~[0, 16M) ns: microseconds to ms
				n++
			}
			total.Add(n)
		}(uint64(w))
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(total.Load()) / elapsed
}
