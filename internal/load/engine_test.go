package load

import (
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/solutions"
)

// TestGeneratorClampsAtDeadline drives the open-loop generator against a
// stub workload that records every intended arrival instant: no arrival
// may be issued past the deadline (the old code clamped only at cycle
// start, so the tail of a straddling cycle leaked past it), balanced
// cycles stay whole, and the offered schedule is deterministic per seed.
func TestGeneratorClampsAtDeadline(t *testing.T) {
	const d = 20 * time.Millisecond
	run := func() []int64 {
		cfg := Config{
			Mechanism:  "semaphore",
			Problem:    "bounded-buffer",
			Arrival:    ArrivalUniform,
			RatePerSec: 100_000,
			Duration:   d,
			Seed:       7,
		}
		if err := cfg.normalize(); err != nil {
			t.Fatal(err)
		}
		k := kernel.NewReal(kernel.WithTick(cfg.Tick), kernel.WithWatchdog(30*time.Second))
		defer k.Close()
		var mu sync.Mutex
		var ats []int64
		mk := func(name string) *class {
			c := newClass(name, 0.5, 1)
			c.do = func(p *kernel.Proc, at, seq int64) {
				mu.Lock()
				ats = append(ats, at)
				mu.Unlock()
			}
			return c
		}
		w := &workload{classes: []*class{mk("a"), mk("b")}, balanced: true}
		eng := &engine{cfg: &cfg, k: k, w: w}
		eng.budget.Store(math.MaxInt64)
		eng.deadlineNs = cfg.Duration.Nanoseconds()
		eng.spawnGenerator()
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		sort.Slice(ats, func(i, j int) bool { return ats[i] < ats[j] })
		return ats
	}
	ats := run()
	if len(ats) == 0 {
		t.Fatal("generator issued nothing")
	}
	if len(ats)%2 != 0 {
		t.Errorf("balanced workload issued %d arrivals (odd): a cycle was split", len(ats))
	}
	for _, at := range ats {
		if at > d.Nanoseconds() {
			t.Fatalf("arrival at %dns past deadline %dns", at, d.Nanoseconds())
		}
	}
	if again := run(); fmt.Sprint(again) != fmt.Sprint(ats) {
		t.Error("intended arrival schedule differs between identically-seeded runs")
	}
}

// Budget exactness, open loop: a MaxOps not divisible by the cycle size
// rounds down for balanced workloads (61 → 60, split 30/30), stays exact
// for single-class workloads (61 → 61) — and in both cases the batched
// claim's refund-and-stop makes issued equal the effective cap exactly,
// where the old exhaustion path silently swallowed the remainder.
func TestBudgetExactOpenLoop(t *testing.T) {
	testBudgetExact(t, ArrivalPoisson)
}

// Budget exactness, closed loop: Clients concurrent claimants refund what
// they cannot cover, so the population-wide issued total still matches.
func TestBudgetExactClosedLoop(t *testing.T) {
	testBudgetExact(t, ArrivalClosed)
}

func testBudgetExact(t *testing.T, arrival ArrivalKind) {
	cases := []struct {
		problem  string
		maxOps   int64
		want     int64
		perClass []int64
	}{
		{"bounded-buffer", 61, 60, []int64{30, 30}},
		{"fcfs", 61, 61, []int64{61}},
	}
	for _, tc := range cases {
		t.Run(tc.problem, func(t *testing.T) {
			cfg := testConfig("semaphore", tc.problem, arrival)
			cfg.Trace = false
			cfg.MaxOps = tc.maxOps
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				t.Fatalf("kernelErr=%v violations=%v", res.KernelErr, res.Violations)
			}
			if res.Issued != tc.want || res.Completed != tc.want {
				t.Fatalf("issued=%d completed=%d, want exactly %d", res.Issued, res.Completed, tc.want)
			}
			for i, c := range res.Classes {
				if c.Issued != tc.perClass[i] {
					t.Errorf("class %s issued %d, want %d", c.Name, c.Issued, tc.perClass[i])
				}
			}
		})
	}
}

// TestSoakSnapshots: a soak run streams incremental results whose
// histograms are consistent merged copies — every snapshot passes the same
// report validation as a final report, sequence numbers increase,
// completion counts are monotone, and a non-empty class never reports a
// zero quantile mid-run.
func TestSoakSnapshots(t *testing.T) {
	cfg := testConfig("monitor", "bounded-buffer", ArrivalPoisson)
	cfg.Trace = false
	cfg.MaxOps = 0
	cfg.Duration = 300 * time.Millisecond
	cfg.RatePerSec = 50_000
	cfg.SnapshotEvery = 50 * time.Millisecond
	var snaps []*Result
	cfg.OnSnapshot = func(r *Result) { snaps = append(snaps, r) }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() || res.Completed == 0 {
		t.Fatalf("kernelErr=%v completed=%d", res.KernelErr, res.Completed)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots delivered over a 300ms run at 50ms intervals")
	}
	lastSeq, lastCompleted := 0, int64(0)
	for i, s := range snaps {
		if s.SnapshotSeq <= lastSeq {
			t.Fatalf("snapshot %d: seq %d not increasing past %d", i, s.SnapshotSeq, lastSeq)
		}
		lastSeq = s.SnapshotSeq
		if s.Completed < lastCompleted {
			t.Fatalf("snapshot %d: completed %d regressed below %d", i, s.Completed, lastCompleted)
		}
		lastCompleted = s.Completed
		rep := NewReport()
		rep.Runs = append(rep.Runs, s.Report())
		if err := rep.Validate(); err != nil {
			t.Fatalf("snapshot %d fails report validation: %v", i, err)
		}
		if rep.Runs[0].SnapshotSeq != s.SnapshotSeq {
			t.Fatalf("snapshot %d: report seq %d != result seq %d", i, rep.Runs[0].SnapshotSeq, s.SnapshotSeq)
		}
		for _, c := range s.Classes {
			if c.Total.Count() > 0 && c.Total.Quantile(0.99) == 0 && c.Total.Max() > 0 {
				t.Fatalf("snapshot %d class %s: Count=%d Max=%d but q99=0",
					i, c.Name, c.Total.Count(), c.Total.Max())
			}
		}
	}
	if res.SnapshotSeq != 0 {
		t.Fatalf("final result has snapshot seq %d, want 0", res.SnapshotSeq)
	}
}

// TestGeneratorSustainsBatchedArrivals: the batched-budget generator
// issues the full cap exactly at a high offered rate. The default size
// keeps CI fast; LOAD_MILLION=1 scales the same run to the acceptance
// tier's 10^6 arrivals.
func TestGeneratorSustainsBatchedArrivals(t *testing.T) {
	var ops int64 = 30_000
	if os.Getenv("LOAD_MILLION") == "1" {
		ops = 1_000_000
	} else if testing.Short() {
		ops = 5_000
	}
	cfg := Config{
		Mechanism:  "semaphore-fast",
		Problem:    "fcfs",
		Arrival:    ArrivalPoisson,
		RatePerSec: 1_000_000,
		MaxOps:     ops,
		Watchdog:   5 * time.Minute,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("kernelErr=%v violations=%v", res.KernelErr, res.Violations)
	}
	if res.Issued != ops || res.Completed != ops {
		t.Fatalf("issued=%d completed=%d, want %d", res.Issued, res.Completed, ops)
	}
	if res.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
}

// The scalable-variant suites run through the same load matrix as the six
// historical mechanisms: canonical problems, one open and one closed
// model, real kernel, oracle-judged traces.
func TestLoadVariantsMatrix(t *testing.T) {
	for _, s := range solutions.Variants() {
		for _, problem := range DefaultProblems() {
			for _, arrival := range []ArrivalKind{ArrivalPoisson, ArrivalClosed} {
				s, problem, arrival := s, problem, arrival
				t.Run(s.Mechanism+"/"+problem+"/"+arrival.String(), func(t *testing.T) {
					t.Parallel()
					res, err := Run(testConfig(s.Mechanism, problem, arrival))
					if err != nil {
						t.Fatalf("Run: %v", err)
					}
					if res.Failed() {
						t.Fatalf("kernelErr=%v violations=%v", res.KernelErr, res.Violations)
					}
					if res.Completed == 0 || res.Completed != res.Issued {
						t.Fatalf("completed %d of %d issued", res.Completed, res.Issued)
					}
					rep := NewReport()
					rep.Runs = append(rep.Runs, res.Report())
					if err := rep.Validate(); err != nil {
						t.Fatalf("report invalid: %v", err)
					}
				})
			}
		}
	}
}

// The new open-loop traffic models, smoke-tested like uniform/burst.
func TestLoadDiurnalAndPareto(t *testing.T) {
	for _, arrival := range []ArrivalKind{ArrivalDiurnal, ArrivalPareto} {
		cfg := testConfig("monitor", "bounded-buffer", arrival)
		cfg.DiurnalPeriod = 10 * time.Millisecond // several full cycles per run
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", arrival, err)
		}
		if res.Failed() || res.Completed != res.Issued {
			t.Fatalf("%v: kernelErr=%v violations=%v completed=%d/%d",
				arrival, res.KernelErr, res.Violations, res.Completed, res.Issued)
		}
	}
}
