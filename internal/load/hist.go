package load

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Latency histogram: fixed log-scale buckets so the hot path is a pure
// index-and-increment — no allocation, no resizing, no locking. The
// layout is HDR-style: values below 2^histSubBits land in unit-width
// buckets; above that, each power-of-two octave is split into
// histSubBuckets sub-buckets, bounding the relative quantile error at
// 1/histSubBuckets (~3%) across the full int64 nanosecond range. All
// counters are atomics, so one histogram can be shared by every client
// process of a load run without a merge step.

const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits // sub-buckets per octave
	// histBuckets covers bucketIndex's full range: the unit region plus
	// one sub-bucket block per octave from histSubBits through 62 (the
	// int64 sign bit never appears; negatives clamp to zero).
	histBuckets = (64 - histSubBits) * histSubBuckets
)

// Histogram is a fixed-size log-scale latency histogram in nanoseconds.
// The zero value is ready to use. Record is safe for concurrent use and
// allocation-free; readers (Quantile, Max, ...) may run concurrently with
// writers and observe a momentarily inconsistent but monotone view, so
// summaries are normally taken after the run completes.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Int64
}

// bucketIndex maps a non-negative value to its bucket. Values below
// 2^histSubBits map to unit buckets; larger values map by exponent and
// the histSubBits bits after the leading one.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= histSubBits
	sub := (u >> (exp - histSubBits)) & (histSubBuckets - 1)
	return (exp-histSubBits)*histSubBuckets + int(sub) + histSubBuckets
}

// bucketUpper is the largest value mapping to bucket i — the
// representative value quantiles report, so reported quantiles never
// understate the true value by more than the bucket width.
func bucketUpper(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	i -= histSubBuckets
	exp := uint(i/histSubBuckets) + histSubBits
	sub := uint64(i % histSubBuckets)
	base := uint64(1) << exp
	upper := base + (sub+1)*(base>>histSubBits) - 1
	if upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// Record adds one observation. Negative values clamp to zero (the clock
// is monotone, but an open-loop operation can complete before its
// intended arrival instant when the generator is catching up).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() int64 { return int64(h.count.Load()) }

// Max reports the largest recorded value, 0 when empty.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean reports the arithmetic mean, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile reports the q-quantile (0 < q <= 1) as the upper bound of the
// bucket containing that rank, clamped to the recorded maximum. Returns 0
// when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			v := bucketUpper(i)
			if m := h.max.Load(); v > m {
				v = m
			}
			return v
		}
	}
	return h.max.Load()
}

// BucketCount is one non-empty bucket, exported in reports so downstream
// tooling can validate and re-aggregate histograms.
type BucketCount struct {
	Index int    `json:"index"`
	Count uint64 `json:"count"`
}

// NonZeroBuckets returns the occupied buckets in ascending index order.
func (h *Histogram) NonZeroBuckets() []BucketCount {
	var out []BucketCount
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			out = append(out, BucketCount{Index: i, Count: c})
		}
	}
	return out
}

// BucketUpperBound exposes the bucket→value mapping for report tooling.
func BucketUpperBound(i int) int64 {
	if i < 0 || i >= histBuckets {
		return 0
	}
	return bucketUpper(i)
}

// NumBuckets reports the fixed bucket count of every Histogram.
func NumBuckets() int { return histBuckets }
