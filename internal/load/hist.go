package load

import (
	"math"
	"math/bits"
	"runtime"
	"sync/atomic"
)

// Latency histogram: fixed log-scale buckets so the hot path is a pure
// index-and-increment — no allocation, no resizing, no locking. The
// layout is HDR-style: values below 2^histSubBits land in unit-width
// buckets; above that, each power-of-two octave is split into
// histSubBuckets sub-buckets, bounding the relative quantile error at
// 1/histSubBuckets (~3%) across the full int64 nanosecond range. All
// counters are atomics, so one histogram can be shared by every client
// process of a load run without a merge step.

const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits // sub-buckets per octave
	// histBuckets covers bucketIndex's full range: the unit region plus
	// one sub-bucket block per octave from histSubBits through 62 (the
	// int64 sign bit never appears; negatives clamp to zero).
	histBuckets = (64 - histSubBits) * histSubBuckets
)

// Histogram is a fixed-size log-scale latency histogram in nanoseconds.
// The zero value is ready to use. Record is safe for concurrent use and
// allocation-free; readers (Quantile, Max, ...) may run concurrently with
// writers and observe a momentarily inconsistent but monotone view, so
// summaries are normally taken after the run completes.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Int64
}

// bucketIndex maps a non-negative value to its bucket. Values below
// 2^histSubBits map to unit buckets; larger values map by exponent and
// the histSubBits bits after the leading one.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= histSubBits
	sub := (u >> (exp - histSubBits)) & (histSubBuckets - 1)
	return (exp-histSubBits)*histSubBuckets + int(sub) + histSubBuckets
}

// bucketUpper is the largest value mapping to bucket i — the
// representative value quantiles report, so reported quantiles never
// understate the true value by more than the bucket width.
func bucketUpper(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	i -= histSubBuckets
	exp := uint(i/histSubBuckets) + histSubBits
	sub := uint64(i % histSubBuckets)
	base := uint64(1) << exp
	upper := base + (sub+1)*(base>>histSubBits) - 1
	if upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// Record adds one observation. Negative values clamp to zero (the clock
// is monotone, but an open-loop operation can complete before its
// intended arrival instant when the generator is catching up).
//
// Publication order is the mid-run consistency contract soak snapshots
// depend on: max is raised first, the bucket next, count last. A reader
// that observes count >= n therefore observes the buckets and a max
// covering those n observations, so Quantile can never clamp a non-empty
// histogram's answer to a stale zero max (the pre-soak bug: max was
// published last, and a concurrent Quantile between the bucket increment
// and the max update reported 0 for a histogram with data).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(uint64(v))
	h.count.Add(1)
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() int64 { return int64(h.count.Load()) }

// Max reports the largest recorded value, 0 when empty.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean reports the arithmetic mean, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile reports the q-quantile as the upper bound of the bucket
// containing that rank, clamped to the recorded maximum.
//
// The quantile function is defined on (0, 1]; arguments outside it are
// handled explicitly rather than silently: NaN returns 0 (no rank is
// meaningful), q <= 0 clamps to the lowest recorded observation (rank 1),
// and q > 1 clamps to 1 (the maximum). Returns 0 when the histogram is
// empty. Safe against concurrent Record: the rank is taken against a
// count snapshot whose observations are fully published (see Record), so
// a non-empty histogram never reports 0 unless 0 was recorded.
func (h *Histogram) Quantile(q float64) int64 {
	if math.IsNaN(q) {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(1)
	if q > 0 {
		rank = uint64(math.Ceil(q * float64(n)))
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			v := bucketUpper(i)
			if m := h.max.Load(); v > m {
				v = m
			}
			return v
		}
	}
	return h.max.Load()
}

// BucketCount is one non-empty bucket, exported in reports so downstream
// tooling can validate and re-aggregate histograms.
type BucketCount struct {
	Index int    `json:"index"`
	Count uint64 `json:"count"`
}

// NonZeroBuckets returns the occupied buckets in ascending index order.
func (h *Histogram) NonZeroBuckets() []BucketCount {
	var out []BucketCount
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			out = append(out, BucketCount{Index: i, Count: c})
		}
	}
	return out
}

// BucketUpperBound exposes the bucket→value mapping for report tooling.
func BucketUpperBound(i int) int64 {
	if i < 0 || i >= histBuckets {
		return 0
	}
	return bucketUpper(i)
}

// NumBuckets reports the fixed bucket count of every Histogram.
func NumBuckets() int { return histBuckets }

// Merge folds src's observations into h, bucket for bucket — the lossless
// reduction for sharded recording (merging shards is bit-identical to
// having recorded the combined stream into one histogram, which
// TestShardedMergeProperty pins).
//
// Merge may run while src is still being written (soak snapshots do).
// The read order mirrors Record's publication order so the merged view is
// self-consistent: buckets are read first and count is derived from the
// same reads (never from src.count, which could exceed the buckets seen),
// and max is read after the buckets, so it covers every observation the
// buckets contributed. sum is read best-effort; it only feeds the
// advisory mean.
func (h *Histogram) Merge(src *Histogram) {
	var total uint64
	for i := range src.counts {
		if c := src.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
			total += c
		}
	}
	if total == 0 {
		return
	}
	h.count.Add(total)
	h.sum.Add(src.sum.Load())
	m := src.max.Load()
	for {
		cur := h.max.Load()
		if m <= cur || h.max.CompareAndSwap(cur, m) {
			return
		}
	}
}

// ShardedHistogram splits recording across cache-line-independent
// Histogram shards so a million clients do not serialize on one set of
// atomic counters (the shared-histogram Record line is the first thing
// that collapses at scale — see CalibrateHistograms). Each Record picks a
// shard by caller-supplied key; reads merge.
type ShardedHistogram struct {
	shards []Histogram
	mask   uint64
}

// NewSharded creates a sharded histogram with n shards, rounded up to a
// power of two; n <= 0 selects defaultHistShards().
func NewSharded(n int) *ShardedHistogram {
	if n <= 0 {
		n = defaultHistShards()
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return &ShardedHistogram{shards: make([]Histogram, p), mask: uint64(p - 1)}
}

// defaultHistShards covers GOMAXPROCS with a power of two, capped at 16:
// past core count extra shards only cost merge time.
func defaultHistShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Record adds one observation to the key's shard. Allocation-free, like
// Histogram.Record; keys from distinct workers should differ (the load
// engine uses the operation sequence number) so traffic spreads.
func (s *ShardedHistogram) Record(key uint64, v int64) {
	s.shards[key&s.mask].Record(v)
}

// Shards reports the shard count.
func (s *ShardedHistogram) Shards() int { return len(s.shards) }

// Count reports the total observations across shards.
func (s *ShardedHistogram) Count() int64 {
	var n int64
	for i := range s.shards {
		n += s.shards[i].Count()
	}
	return n
}

// Merged reduces the shards into a fresh private Histogram. The result is
// immutable-by-convention (nothing else holds it), which is what makes
// summaries taken mid-run internally consistent.
func (s *ShardedHistogram) Merged() *Histogram {
	out := &Histogram{}
	for i := range s.shards {
		out.Merge(&s.shards[i])
	}
	return out
}
