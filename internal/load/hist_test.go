package load

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Every representable value must land in range, and the round trips
// value→bucket→upper must never understate the value.
func TestBucketIndexRoundTrip(t *testing.T) {
	values := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1_000, 12_345,
		1 << 20, (1 << 20) + 7, 1e9, 1e12, math.MaxInt64 / 2, math.MaxInt64}
	prev := -1
	for _, v := range values {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d outside [0,%d)", v, i, histBuckets)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		if up := bucketUpper(i); up < v {
			t.Fatalf("bucketUpper(%d) = %d < recorded value %d", i, up, v)
		}
	}
	for i := 0; i < histBuckets; i += 17 {
		up := bucketUpper(i)
		if got := bucketIndex(up); got != i {
			t.Fatalf("bucketIndex(bucketUpper(%d)) = %d", i, got)
		}
	}
}

// Quantiles of a known uniform population must stay within one
// sub-bucket (~3% relative error) of the exact answer.
func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	const n = 100_000
	for i := int64(1); i <= n; i++ {
		h.Record(i)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		exact := int64(math.Ceil(q * n))
		got := h.Quantile(q)
		if got < exact {
			t.Fatalf("q%.2f = %d understates exact %d", q, got, exact)
		}
		if float64(got) > float64(exact)*(1+1.0/histSubBuckets)+1 {
			t.Fatalf("q%.2f = %d overstates exact %d beyond bucket error", q, got, exact)
		}
	}
	if h.Max() != n {
		t.Fatalf("max = %d, want %d", h.Max(), n)
	}
	wantMean := float64(n+1) / 2
	if m := h.Mean(); math.Abs(m-wantMean) > 1 {
		t.Fatalf("mean = %v, want %v", m, wantMean)
	}
}

func TestQuantileClampedToMax(t *testing.T) {
	var h Histogram
	h.Record(1_000_003) // lands mid-bucket; upper bound exceeds it
	if got := h.Quantile(1.0); got != 1_000_003 {
		t.Fatalf("q1.0 = %d, want clamp to recorded max 1000003", got)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("empty histogram not all-zero: count=%d max=%d mean=%v q99=%d",
			h.Count(), h.Max(), h.Mean(), h.Quantile(0.99))
	}
	if bs := h.NonZeroBuckets(); len(bs) != 0 {
		t.Fatalf("empty histogram has %d non-zero buckets", len(bs))
	}
}

func TestNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative record mishandled: count=%d max=%d", h.Count(), h.Max())
	}
}

// The hot path must not allocate: the histogram sits on every operation
// completion of a load run.
func TestRecordDoesNotAllocate(t *testing.T) {
	var h Histogram
	v := int64(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 997
	}); allocs != 0 {
		t.Fatalf("Record allocates %v per op", allocs)
	}
}

// Concurrent recording must be race-free (checked under -race) and lose
// no observations.
func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, each = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < each; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Fatalf("count = %d, want %d", h.Count(), workers*each)
	}
	var sum uint64
	for _, b := range h.NonZeroBuckets() {
		sum += b.Count
	}
	if sum != workers*each {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*each)
	}
}

// A summarized histogram must satisfy the same validation benchjson
// applies to ingested reports.
func TestSummarizePassesValidation(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 5000; i++ {
		h.Record(i * 13)
	}
	s := Summarize(&h)
	if err := s.validate(5000); err != nil {
		t.Fatalf("summary of live histogram invalid: %v", err)
	}
	var empty Histogram
	se := Summarize(&empty)
	if err := se.validate(0); err != nil {
		t.Fatalf("summary of empty histogram invalid: %v", err)
	}
}

// The quantile function's domain contract: out-of-range arguments are
// clamped or rejected explicitly, never fed into a bogus rank computation
// (NaN used to poison math.Ceil into rank 0 and q>1 into ranks past the
// population).
func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 30; i++ { // all in unit buckets: exact answers
		h.Record(i)
	}
	cases := []struct {
		name string
		q    float64
		want int64
	}{
		{"nan", math.NaN(), 0},
		{"negative", -1, 1},
		{"zero", 0, 1},
		{"tiny", 1e-12, 1},
		{"median", 0.5, 15},
		{"one", 1, 30},
		{"above-one", 1.5, 30},
		{"inf", math.Inf(1), 30},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %d, want %d", tc.name, tc.q, got, tc.want)
		}
	}
	var empty Histogram
	for _, q := range []float64{math.NaN(), -1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty: Quantile(%v) = %d, want 0", q, got)
		}
	}
}

// The mid-run consistency contract soak snapshots rely on: while writers
// record strictly positive values, any reader that observes Count > 0 must
// observe non-zero quantiles — Record's publication order (max first,
// count last) makes a stale-zero max impossible. Run under -race this also
// sweeps the reader/writer interleavings of Quantile and Merge.
func TestQuantileNeverZeroMidRun(t *testing.T) {
	var h Histogram
	sh := NewSharded(4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := 1000 + rng.Int63n(4000)
				h.Record(v)
				sh.Record(i, v)
			}
		}(int64(w + 1))
	}
	for i := 0; i < 2000; i++ {
		if h.Count() > 0 {
			for _, q := range []float64{0.5, 0.99, 1} {
				if got := h.Quantile(q); got == 0 {
					t.Fatalf("shared: Count=%d but Quantile(%v)=0", h.Count(), q)
				}
			}
		}
		m := sh.Merged()
		if m.Count() > 0 {
			if got := m.Quantile(0.99); got == 0 {
				t.Fatalf("merged: Count=%d but q99=0", m.Count())
			}
			if m.Max() == 0 {
				t.Fatalf("merged: Count=%d but Max=0", m.Count())
			}
		}
	}
	close(stop)
	wg.Wait()
}

// Merging shards must be lossless: bit-identical buckets, count, sum, and
// max to recording the combined stream into one histogram.
func TestShardedMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var ref Histogram
	sh := NewSharded(8)
	for i := uint64(0); i < 50_000; i++ {
		v := rng.Int63n(1<<40) - 10 // includes negatives: clamp path too
		ref.Record(v)
		sh.Record(i, v)
	}
	if got := sh.Count(); got != ref.Count() {
		t.Fatalf("sharded Count = %d, want %d", got, ref.Count())
	}
	m := sh.Merged()
	if m.Count() != ref.Count() || m.Max() != ref.Max() || m.Mean() != ref.Mean() {
		t.Fatalf("merged count/max/mean = %d/%d/%v, want %d/%d/%v",
			m.Count(), m.Max(), m.Mean(), ref.Count(), ref.Max(), ref.Mean())
	}
	got, want := m.NonZeroBuckets(), ref.NonZeroBuckets()
	if len(got) != len(want) {
		t.Fatalf("merged has %d non-zero buckets, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: merged %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if m.Quantile(q) != ref.Quantile(q) {
			t.Fatalf("q%v: merged %d, want %d", q, m.Quantile(q), ref.Quantile(q))
		}
	}
}

// Sharded recording must stay as allocation-free as the shared path: it
// replaces it on every operation completion.
func TestShardedRecordDoesNotAllocate(t *testing.T) {
	sh := NewSharded(0)
	key, v := uint64(0), int64(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		sh.Record(key, v)
		key++
		v += 997
	}); allocs != 0 {
		t.Fatalf("sharded Record allocates %v per op", allocs)
	}
}

// Calibration smoke: sane fields, and the archived form validates.
func TestCalibrateHistograms(t *testing.T) {
	hr := CalibrateHistograms(20 * time.Millisecond)
	if err := hr.validate(); err != nil {
		t.Fatalf("calibration invalid: %v", err)
	}
	if hr.Cores != runtime.GOMAXPROCS(0) {
		t.Errorf("cores = %d, want %d", hr.Cores, runtime.GOMAXPROCS(0))
	}
	if hr.SharedRecordsPerSec <= 0 || hr.ShardedRecordsPerSec <= 0 || hr.Speedup <= 0 {
		t.Errorf("zero rate in calibration: %+v", hr)
	}
	rep := NewReport()
	rep.Harness = &hr
	rep.Runs = append(rep.Runs, RunReport{}) // invalid run: Validate must still reach it
	if err := rep.Validate(); err == nil {
		t.Error("invalid run accepted")
	}
}

func BenchmarkHistogramRecordShared(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Record(v)
			v = v*6364136223846793005 + 1442695040888963407
			if v < 0 {
				v = -v
			}
		}
	})
}

func BenchmarkHistogramRecordSharded(b *testing.B) {
	sh := NewSharded(0)
	var worker atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		key := worker.Add(1)
		v := int64(1)
		for pb.Next() {
			sh.Record(key, v)
			v = v*6364136223846793005 + 1442695040888963407
			if v < 0 {
				v = -v
			}
		}
	})
}
