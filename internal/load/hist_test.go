package load

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// Every representable value must land in range, and the round trips
// value→bucket→upper must never understate the value.
func TestBucketIndexRoundTrip(t *testing.T) {
	values := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1_000, 12_345,
		1 << 20, (1 << 20) + 7, 1e9, 1e12, math.MaxInt64 / 2, math.MaxInt64}
	prev := -1
	for _, v := range values {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d outside [0,%d)", v, i, histBuckets)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		if up := bucketUpper(i); up < v {
			t.Fatalf("bucketUpper(%d) = %d < recorded value %d", i, up, v)
		}
	}
	for i := 0; i < histBuckets; i += 17 {
		up := bucketUpper(i)
		if got := bucketIndex(up); got != i {
			t.Fatalf("bucketIndex(bucketUpper(%d)) = %d", i, got)
		}
	}
}

// Quantiles of a known uniform population must stay within one
// sub-bucket (~3% relative error) of the exact answer.
func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	const n = 100_000
	for i := int64(1); i <= n; i++ {
		h.Record(i)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		exact := int64(math.Ceil(q * n))
		got := h.Quantile(q)
		if got < exact {
			t.Fatalf("q%.2f = %d understates exact %d", q, got, exact)
		}
		if float64(got) > float64(exact)*(1+1.0/histSubBuckets)+1 {
			t.Fatalf("q%.2f = %d overstates exact %d beyond bucket error", q, got, exact)
		}
	}
	if h.Max() != n {
		t.Fatalf("max = %d, want %d", h.Max(), n)
	}
	wantMean := float64(n+1) / 2
	if m := h.Mean(); math.Abs(m-wantMean) > 1 {
		t.Fatalf("mean = %v, want %v", m, wantMean)
	}
}

func TestQuantileClampedToMax(t *testing.T) {
	var h Histogram
	h.Record(1_000_003) // lands mid-bucket; upper bound exceeds it
	if got := h.Quantile(1.0); got != 1_000_003 {
		t.Fatalf("q1.0 = %d, want clamp to recorded max 1000003", got)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("empty histogram not all-zero: count=%d max=%d mean=%v q99=%d",
			h.Count(), h.Max(), h.Mean(), h.Quantile(0.99))
	}
	if bs := h.NonZeroBuckets(); len(bs) != 0 {
		t.Fatalf("empty histogram has %d non-zero buckets", len(bs))
	}
}

func TestNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative record mishandled: count=%d max=%d", h.Count(), h.Max())
	}
}

// The hot path must not allocate: the histogram sits on every operation
// completion of a load run.
func TestRecordDoesNotAllocate(t *testing.T) {
	var h Histogram
	v := int64(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 997
	}); allocs != 0 {
		t.Fatalf("Record allocates %v per op", allocs)
	}
}

// Concurrent recording must be race-free (checked under -race) and lose
// no observations.
func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, each = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < each; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Fatalf("count = %d, want %d", h.Count(), workers*each)
	}
	var sum uint64
	for _, b := range h.NonZeroBuckets() {
		sum += b.Count
	}
	if sum != workers*each {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*each)
	}
}

// A summarized histogram must satisfy the same validation benchjson
// applies to ingested reports.
func TestSummarizePassesValidation(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 5000; i++ {
		h.Record(i * 13)
	}
	s := Summarize(&h)
	if err := s.validate(5000); err != nil {
		t.Fatalf("summary of live histogram invalid: %v", err)
	}
	var empty Histogram
	se := Summarize(&empty)
	if err := se.validate(0); err != nil {
		t.Fatalf("summary of empty histogram invalid: %v", err)
	}
}
