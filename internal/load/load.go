// Package load generates traffic against the real kernel and measures
// it. The paper evaluates synchronization mechanisms qualitatively —
// expressive power, modularity, ease of use; this package adds the
// quantitative axis: the same solutions the simulator verifies
// exhaustively are run as genuinely concurrent Go on kernel.RealKernel
// under generated load, and their latency, throughput, and per-class
// fairness are measured.
//
// Two traffic models are provided (see ArrivalKind): open-loop arrivals
// (Poisson, uniform, burst) that offer operations at scheduled instants
// regardless of backlog — latency is measured from the intended arrival
// time, so queueing delay is never hidden by coordinated omission — and
// closed-loop traffic from a fixed client population with think time.
//
// The sim↔real loop: a run can record its history into the ordinary
// trace.Recorder and have it judged by the same problem oracles the
// exploration engine uses. Exclusion and resource-safety constraints are
// exact on real traces and are checked here; FCFS/priority ordering
// constraints are only exact on deterministic traces and remain the
// simulator's job. A property proven over every schedule in simulation
// is thereby continuously spot-checked under real concurrency (and,
// in CI, under the race detector).
package load

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/trace"
)

// Config parameterizes one load run.
type Config struct {
	Mechanism string      // key into solutions.All
	Problem   string      // one of LoadProblems
	Arrival   ArrivalKind // traffic model

	// RatePerSec is the open-loop offered rate (mean arrivals/second).
	RatePerSec float64
	// BurstSize is the arrivals per burst for ArrivalBurst.
	BurstSize int

	// Clients is the closed-loop population size.
	Clients int
	// ThinkTicks is the closed-loop mean think time between a client's
	// operations, in kernel ticks (exponentially distributed; 0 disables
	// thinking).
	ThinkTicks int64

	// Duration bounds the traffic-generation phase on the kernel clock;
	// operations in flight at the deadline are drained, not cut. Zero
	// means MaxOps alone governs (both zero: 1 second).
	Duration time.Duration
	// MaxOps caps the number of operations issued. Zero means unbounded
	// (Duration governs). Balanced workloads round down to whole cycles.
	MaxOps int64

	// Seed makes the offered traffic (arrival instants, class choices,
	// think times) deterministic; the real-kernel interleaving of course
	// is not. Defaults to 1.
	Seed int64

	// ReadFraction is the read share of RW workloads (default 0.9 — a
	// reader flood, the regime that exposes writer starvation).
	ReadFraction float64
	// BufferCap is the bounded-buffer capacity (default the standard
	// workload's solutions.StdBufferCap).
	BufferCap int
	// WorkYields stretches each operation body with yields, widening the
	// contention windows the oracles observe.
	WorkYields int

	// Tick is the kernel tick (default 1µs); Watchdog bounds Run
	// (default Duration + 30s).
	Tick     time.Duration
	Watchdog time.Duration

	// Trace records the run into a trace.Recorder and judges it with the
	// problem's oracle (exclusion/safety rules; see the package comment).
	// Costs memory proportional to the operation count.
	Trace bool

	// HistShards is the shard count of each class's latency histograms
	// (rounded up to a power of two). 0 selects a default covering
	// GOMAXPROCS; 1 pins the legacy single shared histogram (every
	// recorder contends on one set of atomics — the calibration
	// baseline).
	HistShards int

	// DiurnalPeriod is the modulation period of ArrivalDiurnal (default
	// 60s): the offered rate swings sinusoidally around RatePerSec over
	// each period.
	DiurnalPeriod time.Duration

	// SnapshotEvery streams incremental soak snapshots: every interval of
	// kernel-clock time, OnSnapshot is called with a mid-run Result whose
	// histograms are consistent merged copies (quantiles of a non-empty
	// class are never 0 — see Histogram.Record's publication order).
	// Zero, or a nil OnSnapshot, disables snapshots. The callback runs on
	// a kernel daemon while the run is in flight; it must not block for
	// long and must not touch the kernel.
	SnapshotEvery time.Duration
	OnSnapshot    func(*Result)
}

// normalize fills defaults and validates; it mutates the (caller-copied)
// config so the Result reports the effective parameters.
func (cfg *Config) normalize() error {
	if _, ok := solutions.ByMechanism(cfg.Mechanism); !ok {
		return fmt.Errorf("load: unknown mechanism %q", cfg.Mechanism)
	}
	if cfg.Arrival.Open() {
		if cfg.RatePerSec == 0 {
			cfg.RatePerSec = 1000
		}
		if cfg.RatePerSec < 0 {
			return fmt.Errorf("load: negative rate %v", cfg.RatePerSec)
		}
		if cfg.Arrival == ArrivalBurst {
			if cfg.BurstSize == 0 {
				cfg.BurstSize = 8
			}
			if cfg.BurstSize < 2 {
				return fmt.Errorf("load: burst size %d < 2", cfg.BurstSize)
			}
		}
	} else {
		if cfg.Clients == 0 {
			cfg.Clients = 4
		}
		if cfg.Clients < 0 {
			return fmt.Errorf("load: negative client count %d", cfg.Clients)
		}
		if cfg.ThinkTicks < 0 {
			return fmt.Errorf("load: negative think time %d", cfg.ThinkTicks)
		}
	}
	if cfg.Duration < 0 || cfg.MaxOps < 0 {
		return fmt.Errorf("load: negative duration or op cap")
	}
	if cfg.Duration == 0 && cfg.MaxOps == 0 {
		cfg.Duration = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ReadFraction == 0 {
		cfg.ReadFraction = 0.9
	}
	if cfg.ReadFraction < 0 || cfg.ReadFraction > 1 {
		return fmt.Errorf("load: read fraction %v outside [0,1]", cfg.ReadFraction)
	}
	if cfg.BufferCap == 0 {
		cfg.BufferCap = solutions.StdBufferCap
	}
	if cfg.BufferCap < 1 {
		return fmt.Errorf("load: buffer capacity %d < 1", cfg.BufferCap)
	}
	if cfg.WorkYields < 0 {
		return fmt.Errorf("load: negative work yields %d", cfg.WorkYields)
	}
	if cfg.Tick == 0 {
		cfg.Tick = time.Microsecond
	}
	if cfg.Watchdog == 0 {
		cfg.Watchdog = cfg.Duration + 30*time.Second
	}
	if cfg.HistShards < 0 {
		return fmt.Errorf("load: negative histogram shard count %d", cfg.HistShards)
	}
	if cfg.DiurnalPeriod < 0 || cfg.SnapshotEvery < 0 {
		return fmt.Errorf("load: negative diurnal period or snapshot interval")
	}
	if cfg.DiurnalPeriod == 0 {
		cfg.DiurnalPeriod = time.Minute
	}
	return nil
}

// ClassResult is one operation class's measurements.
type ClassResult struct {
	Name      string
	Issued    int64
	Completed int64
	Wait      *Histogram // intended arrival → admission
	Total     *Histogram // intended arrival → completion
}

// Result is the outcome of one load run, or — when SnapshotSeq > 0 — an
// incremental soak snapshot of a run still in flight.
type Result struct {
	Config    Config
	ElapsedNs int64
	Issued    int64
	Completed int64
	Classes   []ClassResult

	// SnapshotSeq is 0 for a final result and the 1-based snapshot index
	// for incremental results delivered via Config.OnSnapshot.
	SnapshotSeq int

	// ClientCompleted is the per-client completion count of a
	// closed-loop run (fairness between identical clients); JainIndex is
	// its Jain fairness index — 1.0 when every client completed equally.
	ClientCompleted []int64
	JainIndex       float64

	// KernelErr is the kernel's verdict, non-nil when the watchdog
	// expired before every issued operation drained (a lost wakeup or
	// deadlock in the mechanism under load).
	KernelErr error

	// Judged reports whether a trace was recorded and judged;
	// TraceEvents and Violations are its size and oracle findings.
	Judged      bool
	TraceEvents int
	Violations  []problems.Violation
}

// Throughput reports completed operations per second of elapsed run time.
func (r *Result) Throughput() float64 {
	if r.ElapsedNs <= 0 {
		return 0
	}
	return float64(r.Completed) / (float64(r.ElapsedNs) / 1e9)
}

// Failed reports whether the run found anything wrong — a kernel error
// or an oracle violation.
func (r *Result) Failed() bool { return r.KernelErr != nil || len(r.Violations) > 0 }

// Run executes one load run to completion and reports its measurements.
// The returned error covers configuration problems only; a failure of the
// system under load (watchdog expiry, oracle violation) is reported in
// the Result so its partial measurements stay observable.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	suite, _ := solutions.ByMechanism(cfg.Mechanism)

	k := kernel.NewReal(kernel.WithTick(cfg.Tick), kernel.WithWatchdog(cfg.Watchdog))
	// Abandon stragglers (and CSP server daemons) when done: their
	// goroutines unwind at their next Park instead of leaking.
	defer k.Close()

	var rec *trace.Recorder
	if cfg.Trace {
		rec = trace.NewRecorder(k)
	}
	w, err := buildWorkload(&cfg, suite, k, rec)
	if err != nil {
		return nil, err
	}

	eng := &engine{cfg: &cfg, k: k, w: w}
	eng.budget.Store(math.MaxInt64)
	if cfg.MaxOps > 0 {
		// Balanced workloads issue whole cycles only (a partial cycle —
		// say a deposit with no matching remove — can never drain), so the
		// effective budget rounds down to a cycle multiple; both loops then
		// make issued counts match it exactly (refund-and-stop below).
		if w.balanced {
			cfg.MaxOps -= cfg.MaxOps % int64(len(w.classes))
		}
		eng.budget.Store(cfg.MaxOps)
	}
	eng.deadlineNs = math.MaxInt64
	if cfg.Duration > 0 {
		eng.deadlineNs = cfg.Duration.Nanoseconds()
	}

	eng.spawnSnapshotter()
	if cfg.Arrival.Open() {
		eng.spawnGenerator()
	} else {
		eng.spawnClients()
	}
	kernelErr := k.Run()
	eng.snapMu.Lock()
	eng.snapDone = true // no snapshot callbacks past this point
	eng.snapMu.Unlock()

	res := eng.collect(kernelErr, 0)
	if rec != nil {
		tr := rec.Events()
		res.Judged = true
		res.TraceEvents = len(tr)
		res.Violations = w.judge(tr)
	}
	return res, nil
}

// collect assembles a Result from the engine's live counters. For the
// final result (snapshotSeq 0) everything has quiesced; for soak snapshots
// it runs concurrently with the clients, and the read order keeps the
// result self-consistent: a class's histograms are merged before its
// completed counter is read, and completed before issued, so
// hist-count <= completed-later-observed <= issued holds and the report
// validator's invariants are satisfied mid-run.
func (e *engine) collect(kernelErr error, snapshotSeq int) *Result {
	res := &Result{
		Config:      *e.cfg,
		ElapsedNs:   e.k.Now(),
		KernelErr:   kernelErr,
		SnapshotSeq: snapshotSeq,
	}
	for _, c := range e.w.classes {
		cr := ClassResult{
			Name:  c.name,
			Wait:  c.wait.Merged(),
			Total: c.total.Merged(),
		}
		cr.Completed = c.completed.Load()
		cr.Issued = c.issued.Load()
		res.Issued += cr.Issued
		res.Completed += cr.Completed
		res.Classes = append(res.Classes, cr)
	}
	if !e.cfg.Arrival.Open() {
		for i := range e.clients {
			res.ClientCompleted = append(res.ClientCompleted, e.clients[i].completed.Load())
		}
		res.JainIndex = jain(res.ClientCompleted)
	}
	return res
}

// spawnSnapshotter starts the soak daemon: every SnapshotEvery of kernel
// time it hands an incremental Result to OnSnapshot. A daemon process does
// not block run termination; snapMu/snapDone fence the callback against
// the final collection so a late-firing snapshot can never interleave
// with the caller's post-run reporting.
func (e *engine) spawnSnapshotter() {
	cfg := e.cfg
	if cfg.SnapshotEvery <= 0 || cfg.OnSnapshot == nil {
		return
	}
	ticks := cfg.SnapshotEvery.Nanoseconds() / cfg.Tick.Nanoseconds()
	if ticks < 1 {
		ticks = 1
	}
	e.k.SpawnDaemon("soak-snapshot", func(p *kernel.Proc) {
		for seq := 1; ; seq++ {
			p.Sleep(ticks)
			res := e.collect(nil, seq)
			e.snapMu.Lock()
			if !e.snapDone {
				cfg.OnSnapshot(res)
			}
			e.snapMu.Unlock()
		}
	})
}

// engine holds the shared issuing state of one run.
type engine struct {
	cfg        *Config
	k          *kernel.RealKernel
	w          *workload
	budget     atomic.Int64 // operations remaining to issue
	deadlineNs int64        // kernel-clock issue deadline
	opSeq      atomic.Int64
	clients    []clientState

	snapMu   sync.Mutex // fences OnSnapshot against final collection
	snapDone bool
}

type clientState struct {
	completed atomic.Int64
}

// pickClass selects a class by weight with rng.
func (e *engine) pickClass(rng *rand.Rand) *class {
	cs := e.w.classes
	if len(cs) == 1 {
		return cs[0]
	}
	x := rng.Float64()
	var acc float64
	for _, c := range cs {
		acc += c.weight
		if x < acc {
			return c
		}
	}
	return cs[len(cs)-1]
}

// genBatchCycles is how many issuing cycles' worth of budget the open-loop
// generator claims per atomic operation: at >=10^6 arrivals/run the
// per-arrival budget CAS was measurable, and one claim per 64 cycles
// amortizes it to noise while the refund-and-stop keeps issued counts
// exact.
const genBatchCycles = 64

// spawnGenerator issues open-loop traffic: a generator process walks the
// deterministic arrival schedule, sleeping until each intended instant
// and spawning a fresh process per arrival. Arrivals never wait for
// earlier operations to finish — that is what makes the loop open.
//
// Deadline clamping is per arrival: each cycle's arrival instants are
// drawn before anything is issued, and a cycle whose last instant falls
// past the deadline is dropped whole (for weighted single-op cycles this
// is exact per-arrival clamping; balanced workloads cannot issue a
// partial cycle — the unmatched operations could never drain — so the
// straddling cycle is dropped entirely, and no arrival is ever issued
// past the deadline). Budget exhaustion refunds the unissued remainder
// instead of silently swallowing it, so issued totals equal the effective
// MaxOps exactly.
func (e *engine) spawnGenerator() {
	cfg := e.cfg
	e.k.Spawn("loadgen", func(gp *kernel.Proc) {
		rng := rand.New(rand.NewSource(cfg.Seed))
		g := newGapper(cfg.Arrival, cfg.RatePerSec, cfg.BurstSize, cfg.DiurnalPeriod, rng)
		tickNs := cfg.Tick.Nanoseconds()
		n := 1
		if e.w.balanced {
			n = len(e.w.classes)
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		cycleAt := make([]int64, n)
		next := int64(0)
		credits := int64(0) // budget claimed but not yet issued
		defer func() {
			if credits > 0 {
				e.budget.Add(credits)
			}
		}()
		for {
			// Draw the whole cycle first: every class once for balanced
			// workloads (in shuffled order, so the interleaving of
			// deposit/remove arrivals still varies), one weighted pick
			// otherwise.
			if e.w.balanced {
				rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
			}
			for i := 0; i < n; i++ {
				cycleAt[i] = next
				next += g.next()
			}
			if cycleAt[n-1] > e.deadlineNs {
				return
			}
			// Claim budget in batches; the generator is the run's only
			// consumer, so an overdraft refund leaves the remainder exact.
			if credits < int64(n) {
				claim := int64(n) * genBatchCycles
				if rem := e.budget.Add(-claim); rem < 0 {
					e.budget.Add(-rem) // refund the overdraft
					claim += rem
				}
				credits += claim
				if credits < int64(n) {
					// Budget cannot cover another full cycle; hand any
					// sub-cycle remainder back (only possible when MaxOps
					// was not cycle-aligned, which Run pre-rounds away for
					// balanced workloads).
					return
				}
			}
			credits -= int64(n)
			for i := 0; i < n; i++ {
				var c *class
				if e.w.balanced {
					c = e.w.classes[order[i]]
				} else {
					c = e.pickClass(rng)
				}
				at := cycleAt[i]
				// Sleep until the intended instant; if the generator is
				// behind schedule it spawns immediately (the backlog is
				// charged to the operation's latency via at).
				if now := e.k.Now(); at > now {
					gp.Sleep((at-now)/tickNs + 1)
				}
				seq := e.opSeq.Add(1)
				c.issued.Add(1)
				e.k.Spawn(c.name, func(p *kernel.Proc) {
					c.do(p, at, seq)
					c.completed.Add(1)
				})
			}
		}
	})
}

// spawnClients issues closed-loop traffic: a fixed population, each
// client running one operation at a time with exponential think time.
// Balanced workloads issue whole cycles in fixed class order per client —
// fixed order makes the population deadlock-free (a client blocked in
// deposit has a personally balanced history, so all-blocked-in-deposit
// would imply an empty buffer, contradiction; symmetrically for remove).
func (e *engine) spawnClients() {
	cfg := e.cfg
	e.clients = make([]clientState, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		cl := &e.clients[i]
		clientSeed := cfg.Seed + int64(i)*7919
		e.k.Spawn("client", func(p *kernel.Proc) {
			rng := rand.New(rand.NewSource(clientSeed))
			for {
				if e.k.Now() >= e.deadlineNs {
					return
				}
				n := 1
				if e.w.balanced {
					n = len(e.w.classes)
				}
				if e.budget.Add(int64(-n)) < 0 {
					// Refund-and-stop: the budget cannot cover this cycle.
					// Every client claims whole cycles and Run pre-rounds
					// MaxOps to a cycle multiple, so after each loser's
					// refund the issued total matches the budget exactly
					// (the old behavior swallowed up to n-1 ops here).
					e.budget.Add(int64(n))
					return
				}
				if e.w.balanced {
					for _, c := range e.w.classes {
						e.runOne(c, p, cl)
					}
				} else {
					e.runOne(e.pickClass(rng), p, cl)
				}
				if cfg.ThinkTicks > 0 {
					p.Sleep(int64(rng.ExpFloat64() * float64(cfg.ThinkTicks)))
				}
			}
		})
	}
}

func (e *engine) runOne(c *class, p *kernel.Proc, cl *clientState) {
	at := e.k.Now()
	c.issued.Add(1)
	c.do(p, at, e.opSeq.Add(1))
	c.completed.Add(1)
	cl.completed.Add(1)
}

// jain is the Jain fairness index of the per-client completion counts:
// (Σx)² / (n·Σx²), 1.0 when all equal, →1/n under total starvation of
// all but one client.
func jain(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		f := float64(x)
		sum += f
		sumSq += f * f
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
