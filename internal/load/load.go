// Package load generates traffic against the real kernel and measures
// it. The paper evaluates synchronization mechanisms qualitatively —
// expressive power, modularity, ease of use; this package adds the
// quantitative axis: the same solutions the simulator verifies
// exhaustively are run as genuinely concurrent Go on kernel.RealKernel
// under generated load, and their latency, throughput, and per-class
// fairness are measured.
//
// Two traffic models are provided (see ArrivalKind): open-loop arrivals
// (Poisson, uniform, burst) that offer operations at scheduled instants
// regardless of backlog — latency is measured from the intended arrival
// time, so queueing delay is never hidden by coordinated omission — and
// closed-loop traffic from a fixed client population with think time.
//
// The sim↔real loop: a run can record its history into the ordinary
// trace.Recorder and have it judged by the same problem oracles the
// exploration engine uses. Exclusion and resource-safety constraints are
// exact on real traces and are checked here; FCFS/priority ordering
// constraints are only exact on deterministic traces and remain the
// simulator's job. A property proven over every schedule in simulation
// is thereby continuously spot-checked under real concurrency (and,
// in CI, under the race detector).
package load

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/trace"
)

// Config parameterizes one load run.
type Config struct {
	Mechanism string      // key into solutions.All
	Problem   string      // one of LoadProblems
	Arrival   ArrivalKind // traffic model

	// RatePerSec is the open-loop offered rate (mean arrivals/second).
	RatePerSec float64
	// BurstSize is the arrivals per burst for ArrivalBurst.
	BurstSize int

	// Clients is the closed-loop population size.
	Clients int
	// ThinkTicks is the closed-loop mean think time between a client's
	// operations, in kernel ticks (exponentially distributed; 0 disables
	// thinking).
	ThinkTicks int64

	// Duration bounds the traffic-generation phase on the kernel clock;
	// operations in flight at the deadline are drained, not cut. Zero
	// means MaxOps alone governs (both zero: 1 second).
	Duration time.Duration
	// MaxOps caps the number of operations issued. Zero means unbounded
	// (Duration governs). Balanced workloads round down to whole cycles.
	MaxOps int64

	// Seed makes the offered traffic (arrival instants, class choices,
	// think times) deterministic; the real-kernel interleaving of course
	// is not. Defaults to 1.
	Seed int64

	// ReadFraction is the read share of RW workloads (default 0.9 — a
	// reader flood, the regime that exposes writer starvation).
	ReadFraction float64
	// BufferCap is the bounded-buffer capacity (default the standard
	// workload's solutions.StdBufferCap).
	BufferCap int
	// WorkYields stretches each operation body with yields, widening the
	// contention windows the oracles observe.
	WorkYields int

	// Tick is the kernel tick (default 1µs); Watchdog bounds Run
	// (default Duration + 30s).
	Tick     time.Duration
	Watchdog time.Duration

	// Trace records the run into a trace.Recorder and judges it with the
	// problem's oracle (exclusion/safety rules; see the package comment).
	// Costs memory proportional to the operation count.
	Trace bool
}

// normalize fills defaults and validates; it mutates the (caller-copied)
// config so the Result reports the effective parameters.
func (cfg *Config) normalize() error {
	if _, ok := solutions.ByMechanism(cfg.Mechanism); !ok {
		return fmt.Errorf("load: unknown mechanism %q", cfg.Mechanism)
	}
	if cfg.Arrival.Open() {
		if cfg.RatePerSec == 0 {
			cfg.RatePerSec = 1000
		}
		if cfg.RatePerSec < 0 {
			return fmt.Errorf("load: negative rate %v", cfg.RatePerSec)
		}
		if cfg.Arrival == ArrivalBurst {
			if cfg.BurstSize == 0 {
				cfg.BurstSize = 8
			}
			if cfg.BurstSize < 2 {
				return fmt.Errorf("load: burst size %d < 2", cfg.BurstSize)
			}
		}
	} else {
		if cfg.Clients == 0 {
			cfg.Clients = 4
		}
		if cfg.Clients < 0 {
			return fmt.Errorf("load: negative client count %d", cfg.Clients)
		}
		if cfg.ThinkTicks < 0 {
			return fmt.Errorf("load: negative think time %d", cfg.ThinkTicks)
		}
	}
	if cfg.Duration < 0 || cfg.MaxOps < 0 {
		return fmt.Errorf("load: negative duration or op cap")
	}
	if cfg.Duration == 0 && cfg.MaxOps == 0 {
		cfg.Duration = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ReadFraction == 0 {
		cfg.ReadFraction = 0.9
	}
	if cfg.ReadFraction < 0 || cfg.ReadFraction > 1 {
		return fmt.Errorf("load: read fraction %v outside [0,1]", cfg.ReadFraction)
	}
	if cfg.BufferCap == 0 {
		cfg.BufferCap = solutions.StdBufferCap
	}
	if cfg.BufferCap < 1 {
		return fmt.Errorf("load: buffer capacity %d < 1", cfg.BufferCap)
	}
	if cfg.WorkYields < 0 {
		return fmt.Errorf("load: negative work yields %d", cfg.WorkYields)
	}
	if cfg.Tick == 0 {
		cfg.Tick = time.Microsecond
	}
	if cfg.Watchdog == 0 {
		cfg.Watchdog = cfg.Duration + 30*time.Second
	}
	return nil
}

// ClassResult is one operation class's measurements.
type ClassResult struct {
	Name      string
	Issued    int64
	Completed int64
	Wait      *Histogram // intended arrival → admission
	Total     *Histogram // intended arrival → completion
}

// Result is the outcome of one load run.
type Result struct {
	Config    Config
	ElapsedNs int64
	Issued    int64
	Completed int64
	Classes   []ClassResult

	// ClientCompleted is the per-client completion count of a
	// closed-loop run (fairness between identical clients); JainIndex is
	// its Jain fairness index — 1.0 when every client completed equally.
	ClientCompleted []int64
	JainIndex       float64

	// KernelErr is the kernel's verdict, non-nil when the watchdog
	// expired before every issued operation drained (a lost wakeup or
	// deadlock in the mechanism under load).
	KernelErr error

	// Judged reports whether a trace was recorded and judged;
	// TraceEvents and Violations are its size and oracle findings.
	Judged      bool
	TraceEvents int
	Violations  []problems.Violation
}

// Throughput reports completed operations per second of elapsed run time.
func (r *Result) Throughput() float64 {
	if r.ElapsedNs <= 0 {
		return 0
	}
	return float64(r.Completed) / (float64(r.ElapsedNs) / 1e9)
}

// Failed reports whether the run found anything wrong — a kernel error
// or an oracle violation.
func (r *Result) Failed() bool { return r.KernelErr != nil || len(r.Violations) > 0 }

// Run executes one load run to completion and reports its measurements.
// The returned error covers configuration problems only; a failure of the
// system under load (watchdog expiry, oracle violation) is reported in
// the Result so its partial measurements stay observable.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	suite, _ := solutions.ByMechanism(cfg.Mechanism)

	k := kernel.NewReal(kernel.WithTick(cfg.Tick), kernel.WithWatchdog(cfg.Watchdog))
	// Abandon stragglers (and CSP server daemons) when done: their
	// goroutines unwind at their next Park instead of leaking.
	defer k.Close()

	var rec *trace.Recorder
	if cfg.Trace {
		rec = trace.NewRecorder(k)
	}
	w, err := buildWorkload(&cfg, suite, k, rec)
	if err != nil {
		return nil, err
	}

	eng := &engine{cfg: &cfg, k: k, w: w}
	eng.budget.Store(math.MaxInt64)
	if cfg.MaxOps > 0 {
		eng.budget.Store(cfg.MaxOps)
	}
	eng.deadlineNs = math.MaxInt64
	if cfg.Duration > 0 {
		eng.deadlineNs = cfg.Duration.Nanoseconds()
	}

	if cfg.Arrival.Open() {
		eng.spawnGenerator()
	} else {
		eng.spawnClients()
	}
	kernelErr := k.Run()

	res := &Result{Config: cfg, ElapsedNs: k.Now(), KernelErr: kernelErr}
	for _, c := range w.classes {
		cr := ClassResult{
			Name:      c.name,
			Issued:    c.issued.Load(),
			Completed: c.completed.Load(),
			Wait:      c.wait,
			Total:     c.total,
		}
		res.Issued += cr.Issued
		res.Completed += cr.Completed
		res.Classes = append(res.Classes, cr)
	}
	if !cfg.Arrival.Open() {
		for i := range eng.clients {
			res.ClientCompleted = append(res.ClientCompleted, eng.clients[i].completed.Load())
		}
		res.JainIndex = jain(res.ClientCompleted)
	}
	if rec != nil {
		tr := rec.Events()
		res.Judged = true
		res.TraceEvents = len(tr)
		res.Violations = w.judge(tr)
	}
	return res, nil
}

// engine holds the shared issuing state of one run.
type engine struct {
	cfg        *Config
	k          *kernel.RealKernel
	w          *workload
	budget     atomic.Int64 // operations remaining to issue
	deadlineNs int64        // kernel-clock issue deadline
	opSeq      atomic.Int64
	clients    []clientState
}

type clientState struct {
	completed atomic.Int64
}

// pickClass selects a class by weight with rng.
func (e *engine) pickClass(rng *rand.Rand) *class {
	cs := e.w.classes
	if len(cs) == 1 {
		return cs[0]
	}
	x := rng.Float64()
	var acc float64
	for _, c := range cs {
		acc += c.weight
		if x < acc {
			return c
		}
	}
	return cs[len(cs)-1]
}

// spawnGenerator issues open-loop traffic: a generator process walks the
// deterministic arrival schedule, sleeping until each intended instant
// and spawning a fresh process per arrival. Arrivals never wait for
// earlier operations to finish — that is what makes the loop open.
func (e *engine) spawnGenerator() {
	cfg := e.cfg
	e.k.Spawn("loadgen", func(gp *kernel.Proc) {
		rng := rand.New(rand.NewSource(cfg.Seed))
		g := newGapper(cfg.Arrival, cfg.RatePerSec, cfg.BurstSize, rng)
		tickNs := cfg.Tick.Nanoseconds()
		order := make([]int, len(e.w.classes))
		for i := range order {
			order[i] = i
		}
		next := int64(0)
		for {
			// One issuing cycle: every class once for balanced
			// workloads (in shuffled order, so the interleaving of
			// deposit/remove arrivals still varies), one weighted pick
			// otherwise.
			n := 1
			if e.w.balanced {
				n = len(order)
				rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
			}
			if next > e.deadlineNs || e.budget.Add(int64(-n)) < 0 {
				return
			}
			for i := 0; i < n; i++ {
				var c *class
				if e.w.balanced {
					c = e.w.classes[order[i]]
				} else {
					c = e.pickClass(rng)
				}
				at := next
				// Sleep until the intended instant; if the generator is
				// behind schedule it spawns immediately (the backlog is
				// charged to the operation's latency via at).
				if now := e.k.Now(); at > now {
					gp.Sleep((at-now)/tickNs + 1)
				}
				seq := e.opSeq.Add(1)
				c.issued.Add(1)
				e.k.Spawn(c.name, func(p *kernel.Proc) {
					c.do(p, at, seq)
					c.completed.Add(1)
				})
				next += g.next()
			}
		}
	})
}

// spawnClients issues closed-loop traffic: a fixed population, each
// client running one operation at a time with exponential think time.
// Balanced workloads issue whole cycles in fixed class order per client —
// fixed order makes the population deadlock-free (a client blocked in
// deposit has a personally balanced history, so all-blocked-in-deposit
// would imply an empty buffer, contradiction; symmetrically for remove).
func (e *engine) spawnClients() {
	cfg := e.cfg
	e.clients = make([]clientState, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		cl := &e.clients[i]
		clientSeed := cfg.Seed + int64(i)*7919
		e.k.Spawn("client", func(p *kernel.Proc) {
			rng := rand.New(rand.NewSource(clientSeed))
			for {
				if e.k.Now() >= e.deadlineNs {
					return
				}
				n := 1
				if e.w.balanced {
					n = len(e.w.classes)
				}
				if e.budget.Add(int64(-n)) < 0 {
					return
				}
				if e.w.balanced {
					for _, c := range e.w.classes {
						e.runOne(c, p, cl)
					}
				} else {
					e.runOne(e.pickClass(rng), p, cl)
				}
				if cfg.ThinkTicks > 0 {
					p.Sleep(int64(rng.ExpFloat64() * float64(cfg.ThinkTicks)))
				}
			}
		})
	}
}

func (e *engine) runOne(c *class, p *kernel.Proc, cl *clientState) {
	at := e.k.Now()
	c.issued.Add(1)
	c.do(p, at, e.opSeq.Add(1))
	c.completed.Add(1)
	cl.completed.Add(1)
}

// jain is the Jain fairness index of the per-client completion counts:
// (Σx)² / (n·Σx²), 1.0 when all equal, →1/n under total starvation of
// all but one client.
func jain(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		f := float64(x)
		sum += f
		sumSq += f * f
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
