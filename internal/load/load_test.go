package load

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/solutions"
)

// testConfig is a small, fast run: op-count bounded, traced, judged.
func testConfig(mech, problem string, arrival ArrivalKind) Config {
	return Config{
		Mechanism:  mech,
		Problem:    problem,
		Arrival:    arrival,
		RatePerSec: 20_000,
		Clients:    4,
		ThinkTicks: 20,
		MaxOps:     60,
		WorkYields: 2,
		Watchdog:   30 * time.Second,
		Trace:      true,
	}
}

// The acceptance matrix: every mechanism × the canonical problem trio,
// under one open-loop and one closed-loop model, on the real kernel,
// with the recorded trace judged clean by the problem oracle.
func TestLoadMatrix(t *testing.T) {
	for _, s := range solutions.All() {
		for _, problem := range DefaultProblems() {
			for _, arrival := range []ArrivalKind{ArrivalPoisson, ArrivalClosed} {
				s, problem, arrival := s, problem, arrival
				t.Run(s.Mechanism+"/"+problem+"/"+arrival.String(), func(t *testing.T) {
					t.Parallel()
					res, err := Run(testConfig(s.Mechanism, problem, arrival))
					if err != nil {
						t.Fatalf("Run: %v", err)
					}
					if res.KernelErr != nil {
						t.Fatalf("kernel error: %v", res.KernelErr)
					}
					if res.Completed == 0 || res.Completed != res.Issued {
						t.Fatalf("completed %d of %d issued", res.Completed, res.Issued)
					}
					if !res.Judged {
						t.Fatal("run was not judged despite Trace: true")
					}
					if len(res.Violations) != 0 {
						t.Fatalf("oracle violations: %v", res.Violations)
					}
					// Each operation records request/enter/exit.
					if want := 3 * int(res.Completed); res.TraceEvents != want {
						t.Fatalf("trace has %d events, want %d", res.TraceEvents, want)
					}
					if res.ElapsedNs <= 0 || res.Throughput() <= 0 {
						t.Fatalf("elapsed=%dns throughput=%v", res.ElapsedNs, res.Throughput())
					}
					for _, c := range res.Classes {
						if c.Completed > 0 && c.Total.Count() != c.Completed {
							t.Fatalf("class %s: total histogram %d vs completed %d",
								c.Name, c.Total.Count(), c.Completed)
						}
					}
					rep := NewReport()
					rep.Runs = append(rep.Runs, res.Report())
					if err := rep.Validate(); err != nil {
						t.Fatalf("report invalid: %v", err)
					}
				})
			}
		}
	}
}

// The remaining open-loop models, smoke-tested on one pairing each.
func TestLoadUniformAndBurst(t *testing.T) {
	for _, arrival := range []ArrivalKind{ArrivalUniform, ArrivalBurst} {
		cfg := testConfig("monitor", "bounded-buffer", arrival)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", arrival, err)
		}
		if res.Failed() || res.Completed != res.Issued {
			t.Fatalf("%v: kernelErr=%v violations=%v completed=%d/%d",
				arrival, res.KernelErr, res.Violations, res.Completed, res.Issued)
		}
	}
}

// A closed-loop RW run must report both classes and a meaningful Jain
// index over its identical clients.
func TestLoadClosedLoopFairness(t *testing.T) {
	cfg := testConfig("semaphore", "readers-priority", ArrivalClosed)
	cfg.MaxOps = 200
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("kernelErr=%v violations=%v", res.KernelErr, res.Violations)
	}
	if len(res.Classes) != 2 {
		t.Fatalf("classes = %d, want read+write", len(res.Classes))
	}
	if len(res.ClientCompleted) != cfg.Clients {
		t.Fatalf("client counts = %d, want %d", len(res.ClientCompleted), cfg.Clients)
	}
	if res.JainIndex <= 0 || res.JainIndex > 1.0000001 {
		t.Fatalf("jain = %v outside (0,1]", res.JainIndex)
	}
	var reads int64
	for _, c := range res.Classes {
		if c.Name == "read" {
			reads = c.Completed
		}
	}
	if reads == 0 {
		t.Fatal("0.9 read fraction produced no reads")
	}
}

// A duration-bounded run must stop issuing at the deadline and drain.
func TestLoadDurationBounded(t *testing.T) {
	cfg := testConfig("monitor", "fcfs", ArrivalPoisson)
	cfg.MaxOps = 0
	cfg.Duration = 50 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() || res.Completed == 0 || res.Completed != res.Issued {
		t.Fatalf("kernelErr=%v completed=%d/%d", res.KernelErr, res.Completed, res.Issued)
	}
}

func TestLoadConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"mechanism", Config{Mechanism: "mutex", Problem: "fcfs"}, "unknown mechanism"},
		{"problem", Config{Mechanism: "monitor", Problem: "disk-scheduler"}, "not load-generable"},
		{"fraction", Config{Mechanism: "monitor", Problem: "fcfs", ReadFraction: 1.5}, "read fraction"},
		{"burst", Config{Mechanism: "monitor", Problem: "fcfs", Arrival: ArrivalBurst, BurstSize: 1}, "burst size"},
	}
	for _, tc := range cases {
		_, err := Run(tc.cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// A run over a daemon-backed solution (CSP spawns server daemons) must
// not leak goroutines once Close has unwound them.
func TestLoadReleasesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		cfg := testConfig("csp", "bounded-buffer", ArrivalPoisson)
		cfg.Trace = false
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("goroutines grew from %d to %d after runs closed", base, n)
	}
}
