package load

import (
	"fmt"
	"io"
	"time"
)

// The load report is the subsystem's interchange format: cmd/syncload
// emits it, cmd/benchjson ingests and archives it, CI uploads it. The
// schema is versioned and deterministic — struct-only (no maps), fixed
// field order — so reports diff cleanly across commits.

// SchemaVersion identifies the report layout. Bump on any breaking
// change; benchjson rejects reports from other versions.
const SchemaVersion = "repro-load/v1"

// Report is a set of load runs, typically one per mechanism × problem ×
// arrival pairing of a matrix sweep.
type Report struct {
	Schema string      `json:"schema"`
	Runs   []RunReport `json:"runs"`

	// Harness, when present, archives the measurement-harness calibration
	// (shared vs sharded histogram throughput) the runs were taken under —
	// the evidence that the harness itself was not the bottleneck.
	Harness *HarnessReport `json:"harness,omitempty"`
}

// NewReport returns an empty report at the current schema version.
func NewReport() *Report { return &Report{Schema: SchemaVersion} }

// RunReport is one load run: the effective configuration, aggregate
// results, and per-class measurements.
type RunReport struct {
	Mechanism string `json:"mechanism"`
	Problem   string `json:"problem"`
	Arrival   string `json:"arrival"`

	// SnapshotSeq is 0 for a final report and the 1-based index of an
	// incremental soak snapshot (ElapsedNs is then the snapshot instant).
	SnapshotSeq int `json:"snapshot_seq,omitempty"`

	RatePerSec   float64 `json:"rate_per_sec,omitempty"`
	BurstSize    int     `json:"burst_size,omitempty"`
	Clients      int     `json:"clients,omitempty"`
	ThinkTicks   int64   `json:"think_ticks,omitempty"`
	Seed         int64   `json:"seed"`
	ReadFraction float64 `json:"read_fraction,omitempty"`
	BufferCap    int     `json:"buffer_cap,omitempty"`
	WorkYields   int     `json:"work_yields,omitempty"`
	HistShards   int     `json:"hist_shards,omitempty"`

	ElapsedNs        int64   `json:"elapsed_ns"`
	Issued           int64   `json:"issued"`
	Completed        int64   `json:"completed"`
	ThroughputOpsSec float64 `json:"throughput_ops_sec"`

	Classes []ClassReport `json:"classes"`

	// Closed-loop fairness between identical clients.
	ClientCompleted []int64 `json:"client_completed,omitempty"`
	JainIndex       float64 `json:"jain_index,omitempty"`

	// KernelError is set when the run's watchdog expired before all
	// issued operations drained.
	KernelError string `json:"kernel_error,omitempty"`

	// Judged reports whether the run was traced and oracle-checked;
	// Violations holds the findings (rendered), empty when clean.
	Judged      bool     `json:"judged"`
	TraceEvents int      `json:"trace_events,omitempty"`
	Violations  []string `json:"violations,omitempty"`
}

// ClassReport is one operation class's share and latency.
type ClassReport struct {
	Name      string `json:"name"`
	Issued    int64  `json:"issued"`
	Completed int64  `json:"completed"`
	// CompletedShare is this class's fraction of all completed
	// operations in the run — the fairness axis: under a reader flood, a
	// starving writer class shows a completed share far below its issued
	// share.
	CompletedShare float64 `json:"completed_share"`
	IssuedShare    float64 `json:"issued_share"`

	Wait  LatencySummary `json:"wait"`  // intended arrival → admission
	Total LatencySummary `json:"total"` // intended arrival → completion
}

// LatencySummary is the exported form of a Histogram: headline quantiles
// plus the non-zero buckets, so downstream tooling can validate the
// quantiles against the raw counts and re-aggregate across runs.
type LatencySummary struct {
	Count  int64         `json:"count"`
	P50Ns  int64         `json:"p50_ns"`
	P90Ns  int64         `json:"p90_ns"`
	P99Ns  int64         `json:"p99_ns"`
	MaxNs  int64         `json:"max_ns"`
	MeanNs float64       `json:"mean_ns"`
	Bucket []BucketCount `json:"buckets,omitempty"`
}

// Summarize exports a histogram.
func Summarize(h *Histogram) LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		P50Ns:  h.Quantile(0.50),
		P90Ns:  h.Quantile(0.90),
		P99Ns:  h.Quantile(0.99),
		MaxNs:  h.Max(),
		MeanNs: h.Mean(),
		Bucket: h.NonZeroBuckets(),
	}
}

// Report converts a run result to its interchange form.
func (r *Result) Report() RunReport {
	cfg := &r.Config
	rr := RunReport{
		Mechanism:        cfg.Mechanism,
		Problem:          cfg.Problem,
		Arrival:          cfg.Arrival.String(),
		SnapshotSeq:      r.SnapshotSeq,
		Seed:             cfg.Seed,
		WorkYields:       cfg.WorkYields,
		HistShards:       cfg.HistShards,
		ElapsedNs:        r.ElapsedNs,
		Issued:           r.Issued,
		Completed:        r.Completed,
		ThroughputOpsSec: r.Throughput(),
		ClientCompleted:  r.ClientCompleted,
		JainIndex:        r.JainIndex,
		Judged:           r.Judged,
		TraceEvents:      r.TraceEvents,
	}
	if cfg.Arrival.Open() {
		rr.RatePerSec = cfg.RatePerSec
		if cfg.Arrival == ArrivalBurst {
			rr.BurstSize = cfg.BurstSize
		}
	} else {
		rr.Clients = cfg.Clients
		rr.ThinkTicks = cfg.ThinkTicks
	}
	switch cfg.Problem {
	case "bounded-buffer":
		rr.BufferCap = cfg.BufferCap
	case "readers-priority", "writers-priority", "fcfs-rw":
		rr.ReadFraction = cfg.ReadFraction
	}
	if r.KernelErr != nil {
		rr.KernelError = r.KernelErr.Error()
	}
	for _, c := range r.Classes {
		cr := ClassReport{
			Name:      c.Name,
			Issued:    c.Issued,
			Completed: c.Completed,
			Wait:      Summarize(c.Wait),
			Total:     Summarize(c.Total),
		}
		if r.Completed > 0 {
			cr.CompletedShare = float64(c.Completed) / float64(r.Completed)
		}
		if r.Issued > 0 {
			cr.IssuedShare = float64(c.Issued) / float64(r.Issued)
		}
		rr.Classes = append(rr.Classes, cr)
	}
	for _, v := range r.Violations {
		rr.Violations = append(rr.Violations, v.String())
	}
	return rr
}

// Validate checks a report's internal consistency and returns the first
// problem found as an error whose message carries the JSON path of the
// offending field (e.g. "runs[1].classes[0].wait: ..."). It is shared by
// cmd/syncload (sanity-check before emitting) and cmd/benchjson
// (reject malformed input before archiving).
func (rep *Report) Validate() error {
	if rep.Schema != SchemaVersion {
		return fmt.Errorf("schema: got %q, want %q", rep.Schema, SchemaVersion)
	}
	if len(rep.Runs) == 0 {
		return fmt.Errorf("runs: report has no runs")
	}
	for i := range rep.Runs {
		if err := rep.Runs[i].validate(); err != nil {
			return fmt.Errorf("runs[%d].%w", i, err)
		}
	}
	if rep.Harness != nil {
		if err := rep.Harness.validate(); err != nil {
			return fmt.Errorf("harness.%w", err)
		}
	}
	return nil
}

// HarnessReport archives the measurement-harness calibration recorded by
// CalibrateHistograms alongside the runs it accompanied: how fast the
// shared and sharded histograms absorb Record calls on this machine, and
// hence how much headroom the harness has over the offered load. Archived
// so a regression in recorded throughput is distinguishable from a
// regression in the mechanisms under test.
type HarnessReport struct {
	Cores                int     `json:"cores"`
	HistShards           int     `json:"hist_shards"`
	SharedRecordsPerSec  float64 `json:"shared_records_per_sec"`
	ShardedRecordsPerSec float64 `json:"sharded_records_per_sec"`
	// Speedup = sharded/shared. On one core it hovers near 1 (sharding
	// buys nothing without parallel writers); the >= 5x acceptance claim
	// applies at 8+ cores.
	Speedup float64 `json:"speedup"`
}

func (h *HarnessReport) validate() error {
	if h.Cores < 1 {
		return fmt.Errorf("cores: %d, want >= 1", h.Cores)
	}
	if h.HistShards < 1 {
		return fmt.Errorf("hist_shards: %d, want >= 1", h.HistShards)
	}
	if h.SharedRecordsPerSec < 0 || h.ShardedRecordsPerSec < 0 {
		return fmt.Errorf("records_per_sec: negative rate")
	}
	if h.Speedup < 0 {
		return fmt.Errorf("speedup: negative")
	}
	return nil
}

func (rr *RunReport) validate() error {
	if rr.Mechanism == "" {
		return fmt.Errorf("mechanism: empty")
	}
	if rr.Problem == "" {
		return fmt.Errorf("problem: empty")
	}
	if _, err := ParseArrival(rr.Arrival); err != nil {
		return fmt.Errorf("arrival: %v", err)
	}
	if rr.Issued < 0 || rr.Completed < 0 || rr.Completed > rr.Issued {
		return fmt.Errorf("completed: %d completed vs %d issued", rr.Completed, rr.Issued)
	}
	if rr.ElapsedNs < 0 {
		return fmt.Errorf("elapsed_ns: negative (%d)", rr.ElapsedNs)
	}
	if len(rr.Classes) == 0 {
		return fmt.Errorf("classes: empty")
	}
	var sum int64
	for j := range rr.Classes {
		c := &rr.Classes[j]
		if err := c.validate(); err != nil {
			return fmt.Errorf("classes[%d].%w", j, err)
		}
		sum += c.Completed
	}
	if sum != rr.Completed {
		return fmt.Errorf("completed: run total %d but classes sum to %d", rr.Completed, sum)
	}
	if rr.JainIndex < 0 || rr.JainIndex > 1.0000001 {
		return fmt.Errorf("jain_index: %v outside [0,1]", rr.JainIndex)
	}
	return nil
}

func (c *ClassReport) validate() error {
	if c.Name == "" {
		return fmt.Errorf("name: empty")
	}
	if c.Issued < 0 || c.Completed < 0 || c.Completed > c.Issued {
		return fmt.Errorf("completed: %d completed vs %d issued", c.Completed, c.Issued)
	}
	if bad(c.CompletedShare) || bad(c.IssuedShare) {
		return fmt.Errorf("completed_share: shares must lie in [0,1]")
	}
	// Bound histogram sizes by issued, not completed: in a timed-out run
	// an in-flight operation may have recorded its wait latency before
	// its completion counter ticked.
	if err := c.Wait.validate(c.Issued); err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if err := c.Total.validate(c.Issued); err != nil {
		return fmt.Errorf("total: %w", err)
	}
	return nil
}

func bad(share float64) bool { return share < 0 || share > 1 }

// validate cross-checks a latency summary against its own buckets.
// issued is the class's issued-operation count; a histogram cannot hold
// more observations than operations that were issued.
func (s *LatencySummary) validate(issued int64) error {
	if s.Count < 0 {
		return fmt.Errorf("negative count %d", s.Count)
	}
	if s.Count > issued {
		return fmt.Errorf("count %d exceeds issued operations %d", s.Count, issued)
	}
	var sum uint64
	last := -1
	for _, b := range s.Bucket {
		if b.Index < 0 || b.Index >= NumBuckets() {
			return fmt.Errorf("bucket index %d outside [0,%d)", b.Index, NumBuckets())
		}
		if b.Index <= last {
			return fmt.Errorf("bucket indices not strictly ascending at index %d", b.Index)
		}
		if b.Count == 0 {
			return fmt.Errorf("bucket %d has zero count (must be omitted)", b.Index)
		}
		last = b.Index
		sum += b.Count
	}
	if sum != uint64(s.Count) {
		return fmt.Errorf("bucket counts sum to %d, count is %d", sum, s.Count)
	}
	if s.Count == 0 {
		if s.P50Ns != 0 || s.P90Ns != 0 || s.P99Ns != 0 || s.MaxNs != 0 || s.MeanNs != 0 {
			return fmt.Errorf("empty histogram with non-zero summary values")
		}
		return nil
	}
	if s.P50Ns < 0 {
		return fmt.Errorf("negative p50 %d", s.P50Ns)
	}
	if !(s.P50Ns <= s.P90Ns && s.P90Ns <= s.P99Ns && s.P99Ns <= s.MaxNs) {
		return fmt.Errorf("quantiles not monotone: p50=%d p90=%d p99=%d max=%d",
			s.P50Ns, s.P90Ns, s.P99Ns, s.MaxNs)
	}
	return nil
}

// Render writes a human-readable summary of the report.
func (rep *Report) Render(w io.Writer) {
	for i := range rep.Runs {
		rr := &rep.Runs[i]
		fmt.Fprintf(w, "%s/%s %s%s: %d/%d ops in %v, %.0f ops/s%s\n",
			rr.Mechanism, rr.Problem, rr.Arrival, trafficParams(rr),
			rr.Completed, rr.Issued, time.Duration(rr.ElapsedNs).Round(time.Millisecond),
			rr.ThroughputOpsSec, verdict(rr))
		for j := range rr.Classes {
			c := &rr.Classes[j]
			fmt.Fprintf(w, "  %-8s n=%-6d share=%.2f  wait p50=%v p99=%v max=%v  total p50=%v p99=%v\n",
				c.Name, c.Completed, c.CompletedShare,
				ns(c.Wait.P50Ns), ns(c.Wait.P99Ns), ns(c.Wait.MaxNs),
				ns(c.Total.P50Ns), ns(c.Total.P99Ns))
		}
		if len(rr.ClientCompleted) > 0 {
			fmt.Fprintf(w, "  clients=%d jain=%.3f\n", len(rr.ClientCompleted), rr.JainIndex)
		}
		for _, v := range rr.Violations {
			fmt.Fprintf(w, "  VIOLATION %s\n", v)
		}
	}
}

func trafficParams(rr *RunReport) string {
	if rr.Clients > 0 {
		return fmt.Sprintf(" clients=%d think=%d", rr.Clients, rr.ThinkTicks)
	}
	s := fmt.Sprintf(" rate=%g/s", rr.RatePerSec)
	if rr.BurstSize > 0 {
		s += fmt.Sprintf(" burst=%d", rr.BurstSize)
	}
	return s
}

func verdict(rr *RunReport) string {
	switch {
	case rr.KernelError != "":
		return ", KERNEL ERROR: " + rr.KernelError
	case !rr.Judged:
		return ""
	case len(rr.Violations) > 0:
		return fmt.Sprintf(", %d ORACLE VIOLATIONS", len(rr.Violations))
	default:
		return fmt.Sprintf(", oracle clean (%d events)", rr.TraceEvents)
	}
}

func ns(v int64) time.Duration { return time.Duration(v).Round(time.Microsecond) }
