package load

import (
	"strings"
	"testing"

	"repro/internal/solutions"
)

// TestSynthLoad runs a generated problem (seed 3 is a known load-safe,
// oracle-clean set) through the full load engine on every mechanism, the
// same acceptance bar as the canonical trio: all issued operations
// complete, the trace is judged clean by the derived oracle, and every
// op records its request/enter/exit triple. Mechanisms whose vocabulary
// cannot express the set (path expressions on most sampled sets) are
// skipped — that refusal is itself part of the contract.
func TestSynthLoad(t *testing.T) {
	for _, s := range solutions.All() {
		s := s
		t.Run(s.Mechanism, func(t *testing.T) {
			t.Parallel()
			res, err := Run(testConfig(s.Mechanism, "synth:3", ArrivalClosed))
			if err != nil {
				if strings.Contains(err.Error(), "cannot run") {
					t.Skipf("inexpressible: %v", err)
				}
				t.Fatalf("Run: %v", err)
			}
			if res.KernelErr != nil {
				t.Fatalf("kernel error: %v", res.KernelErr)
			}
			if res.Completed == 0 || res.Completed != res.Issued {
				t.Fatalf("completed %d of %d issued", res.Completed, res.Issued)
			}
			if !res.Judged {
				t.Fatal("run was not judged despite Trace: true")
			}
			if len(res.Violations) != 0 {
				t.Fatalf("derived-oracle violations: %v", res.Violations)
			}
			if want := 3 * int(res.Completed); res.TraceEvents != want {
				t.Fatalf("trace has %d events, want %d", res.TraceEvents, want)
			}
		})
	}
}

// TestSynthLoadRefusals pins the errors for sets the load path must turn
// away: malformed seeds and sets whose constraints are only feasible at
// their own concurrency (see Set.LoadSafe).
func TestSynthLoadRefusals(t *testing.T) {
	cases := []struct {
		problem, want string
	}{
		{"synth:abc", "bad synth seed"},
		// Seed 5's set excludes on waiting(c0)>=2, which latches shut
		// under open-ended traffic.
		{"synth:5", "not load-generable"},
	}
	for _, tc := range cases {
		_, err := Run(testConfig("semaphore", tc.problem, ArrivalClosed))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Run(%s): err = %v, want containing %q", tc.problem, err, tc.want)
		}
	}
}
