package load

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/synth"
	"repro/internal/trace"
)

// A workload binds one solution instance to a set of operation classes
// the traffic generator can issue. Classes are the unit of measurement:
// each has its own latency histograms and counters, so fairness between
// request types (the writer-starvation axis of the readers–writers
// problems) falls out of the per-class totals.

// class is one operation type of a workload under measurement.
type class struct {
	name   string
	weight float64 // selection probability for unbalanced workloads

	wait  *ShardedHistogram // intended-arrival → admission (queueing delay)
	total *ShardedHistogram // intended-arrival → completion

	issued    atomic.Int64
	completed atomic.Int64

	// do performs one operation on behalf of p. at is the intended
	// arrival instant on the kernel clock (the latency origin — for
	// open-loop traffic this predates the process actually running, which
	// is exactly the point: scheduling backlog is latency the offered
	// traffic observed). seq is a unique operation sequence number used
	// for item identity.
	do func(p *kernel.Proc, at int64, seq int64)
}

// workload is the set of classes plus issuing rules.
type workload struct {
	classes []*class
	// balanced workloads (bounded buffer: deposit/remove) must be issued
	// in equal numbers or leftover operations block forever; the
	// generators issue them in full cycles over the classes.
	balanced bool
	// judge maps a recorded trace to oracle findings. Only the
	// constraints that are exact on real-kernel traces are judged:
	// exclusion and resource-safety rules, not FCFS/priority ordering
	// (see DESIGN.md §8 — ordering is verified exhaustively in
	// simulation; the real-runtime leg cross-checks the safety side).
	judge func(tr trace.Trace) []problems.Violation
}

// LoadProblems lists the problems the load subsystem can generate
// traffic for, in evaluation order. The first three are the canonical
// cross-mechanism comparison set; the RW variants ride along for free.
func LoadProblems() []string {
	return []string{
		problems.NameBoundedBuffer,
		problems.NameReadersPriority,
		problems.NameFCFS,
		problems.NameWritersPriority,
		problems.NameFCFSRW,
	}
}

// DefaultProblems is the canonical mechanism-comparison trio.
func DefaultProblems() []string {
	return []string{problems.NameBoundedBuffer, problems.NameReadersPriority, problems.NameFCFS}
}

func newClass(name string, weight float64, shards int) *class {
	return &class{name: name, weight: weight, wait: NewSharded(shards), total: NewSharded(shards)}
}

// yieldWork stretches an operation body, creating real contention windows
// the oracles can observe.
func yieldWork(p *kernel.Proc, n int) {
	for i := 0; i < n; i++ {
		p.Yield()
	}
}

// runBody is every class's operation body: stamp the admission instant,
// do the work, and — when tracing — emit the Enter/Exit pair around it.
// The pair lives in one function so the recorded interval can never be
// left open, whatever the caller does (synclint's bracket analyzer
// checks exactly this).
func runBody(rec *trace.Recorder, p *kernel.Proc, op string, arg int64, yields int, enter *int64, now func() int64) {
	*enter = now()
	if rec == nil {
		yieldWork(p, yields)
		return
	}
	rec.Enter(p, op, arg)
	yieldWork(p, yields)
	rec.Exit(p, op, arg)
}

// buildWorkload constructs the workload for cfg on kernel k, recording
// into rec when non-nil.
func buildWorkload(cfg *Config, s solutions.Suite, k kernel.Kernel, rec *trace.Recorder) (*workload, error) {
	yields := cfg.WorkYields
	now := k.Now
	if seedStr, ok := strings.CutPrefix(cfg.Problem, "synth:"); ok {
		seed, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("load: bad synth seed %q (want synth:<seed>)", seedStr)
		}
		return buildSynthWorkload(seed, s, k, rec, cfg, yields, now)
	}
	switch cfg.Problem {
	case problems.NameBoundedBuffer:
		bb := s.NewBoundedBuffer(k, cfg.BufferCap)
		dep := newClass(problems.OpDeposit, 0.5, cfg.HistShards)
		rem := newClass(problems.OpRemove, 0.5, cfg.HistShards)
		dep.do = func(p *kernel.Proc, at, seq int64) {
			if rec != nil {
				rec.Request(p, problems.OpDeposit, seq)
			}
			var enter int64
			bb.Deposit(p, seq, func() {
				runBody(rec, p, problems.OpDeposit, seq, yields, &enter, now)
			})
			end := now()
			dep.wait.Record(uint64(seq), enter-at)
			dep.total.Record(uint64(seq), end-at)
		}
		rem.do = func(p *kernel.Proc, at, seq int64) {
			if rec != nil {
				rec.Request(p, problems.OpRemove, trace.NoArg)
			}
			var enter int64
			bb.Remove(p, func(item int64) {
				runBody(rec, p, problems.OpRemove, item, yields, &enter, now)
			})
			end := now()
			rem.wait.Record(uint64(seq), enter-at)
			rem.total.Record(uint64(seq), end-at)
		}
		capacity := cfg.BufferCap
		return &workload{
			classes:  []*class{dep, rem},
			balanced: true,
			judge: func(tr trace.Trace) []problems.Violation {
				return problems.CheckBoundedBuffer(tr, capacity, 0)
			},
		}, nil

	case problems.NameFCFS:
		res := s.NewFCFS(k)
		use := newClass(problems.OpUse, 1, cfg.HistShards)
		use.do = func(p *kernel.Proc, at, seq int64) {
			if rec != nil {
				rec.Request(p, problems.OpUse, trace.NoArg)
			}
			var enter int64
			res.Use(p, func() {
				runBody(rec, p, problems.OpUse, trace.NoArg, yields, &enter, now)
			})
			end := now()
			use.wait.Record(uint64(seq), enter-at)
			use.total.Record(uint64(seq), end-at)
		}
		return &workload{
			classes: []*class{use},
			judge: func(tr trace.Trace) []problems.Violation {
				return problems.CheckFCFS(tr, false)
			},
		}, nil

	case problems.NameReadersPriority, problems.NameWritersPriority, problems.NameFCFSRW:
		newDB, _ := solutions.RWConstructor(s, cfg.Problem)
		db := newDB(k)
		rd := newClass(problems.OpRead, cfg.ReadFraction, cfg.HistShards)
		wr := newClass(problems.OpWrite, 1-cfg.ReadFraction, cfg.HistShards)
		rd.do = func(p *kernel.Proc, at, seq int64) {
			if rec != nil {
				rec.Request(p, problems.OpRead, trace.NoArg)
			}
			var enter int64
			db.Read(p, func() {
				runBody(rec, p, problems.OpRead, trace.NoArg, yields, &enter, now)
			})
			end := now()
			rd.wait.Record(uint64(seq), enter-at)
			rd.total.Record(uint64(seq), end-at)
		}
		wr.do = func(p *kernel.Proc, at, seq int64) {
			if rec != nil {
				rec.Request(p, problems.OpWrite, trace.NoArg)
			}
			var enter int64
			db.Write(p, func() {
				runBody(rec, p, problems.OpWrite, trace.NoArg, yields, &enter, now)
			})
			end := now()
			wr.wait.Record(uint64(seq), enter-at)
			wr.total.Record(uint64(seq), end-at)
		}
		problem := cfg.Problem
		return &workload{
			classes: []*class{rd, wr},
			judge: func(tr trace.Trace) []problems.Violation {
				return problems.CheckRW(problem, tr, false)
			},
		}, nil
	}
	return nil, fmt.Errorf("load: problem %q is not load-generable (supported: %v, plus synth:<seed>)", cfg.Problem, LoadProblems())
}

// buildSynthWorkload generates the constraint set for the seed and runs
// it through the mechanism's synth adapter, so generated problems get
// the same load treatment as the canonical ones. Traffic weights follow
// each class's share of the generated workload's operations; sets whose
// constraints couple the classes (slots, history) are issued in
// balanced cycles. Judging uses the derived oracle in non-strict mode —
// the same exclusion-and-safety-only discipline as the canonical
// problems on real-kernel traces.
//
// Unlike runBody, the Enter/Exit emissions here are split across hook
// closures by design: the synth adapter fires Enter inside the grant
// decision and Exit before the release, under its own exclusion, so
// the recorded interval is atomic with the gate's view (see
// synth.Hooks). Resource.Do invokes each hook exactly once, in order.
//
//synclint:allow bracket: intervals open in the Enter hook and close in the Exit hook; pairing is the Resource.Do contract, not lexical structure
func buildSynthWorkload(seed int64, s solutions.Suite, k kernel.Kernel, rec *trace.Recorder, cfg *Config, yields int, now func() int64) (*workload, error) {
	set := synth.Generate(seed)
	if err := set.LoadSafe(); err != nil {
		return nil, err
	}
	res, err := synth.NewResource(s.Mechanism, set, k)
	if err != nil {
		return nil, fmt.Errorf("load: %s cannot run %s: %w", s.Mechanism, set.Name, err)
	}
	totalOps := 0
	for _, c := range set.Classes {
		totalOps += c.Ops()
	}
	var classes []*class
	for ci := range set.Classes {
		sc := set.Classes[ci]
		cl := newClass(sc.Name, float64(sc.Ops())/float64(totalOps), cfg.HistShards)
		cl.do = func(p *kernel.Proc, at, seq int64) {
			arg, has := int64(0), false
			ra := trace.NoArg
			if len(sc.Args) > 0 {
				arg, has = sc.Args[seq%int64(len(sc.Args))], true
				ra = arg
			}
			var enter int64
			h := synth.Hooks{Enter: func() { enter = now() }}
			if rec != nil {
				h = synth.Hooks{
					Request: func() { rec.Request(p, sc.Name, ra) },
					Enter:   func() { enter = now(); rec.Enter(p, sc.Name, ra) },
					Exit:    func() { rec.Exit(p, sc.Name, ra) },
				}
			}
			res.Do(p, ci, arg, has, h, func() { yieldWork(p, yields) })
			end := now()
			cl.wait.Record(uint64(seq), enter-at)
			cl.total.Record(uint64(seq), end-at)
		}
		classes = append(classes, cl)
	}
	return &workload{
		classes:  classes,
		balanced: set.Balanced(),
		judge: func(tr trace.Trace) []problems.Violation {
			return set.Check(tr, false)
		},
	}, nil
}
