package monitor

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
)

// Model-based testing: a reference automaton of Hoare monitor semantics
// (entry FIFO, per-condition rank queues, urgent stack discipline as a
// FIFO of parked signallers, signal-and-urgent-wait handoff) is run
// against the implementation on randomly generated per-process programs,
// and the order of critical-section entries must match exactly.
//
// The automaton mirrors the SimKernel's FIFO policy: whenever the monitor
// becomes free, the next occupant is the longest-parked urgent process,
// else the longest-waiting entrant; Signal transfers occupancy
// immediately.

// modelOp is one step of a process's program.
type modelOp struct {
	kind int // 0 = wait on cond[c], 1 = signal cond[c], 2 = plain section
	cond int
	rank int64
}

// modelSection is one monitor section (enter … exit).
type modelSection []modelOp

// modelProgram is the per-process list of sections.
type modelProgram [][]modelSection

// The reference automaton mirrors the implementation over the FIFO
// SimKernel exactly: one process runs until it parks (blocked entry,
// wait, or signal handoff); unparked processes join a FIFO ready queue;
// releases hand occupancy to the longest-parked urgent process, then the
// longest-waiting entrant.
type refWaiter struct {
	proc int
	rank int64
	seq  int
}

type refState struct {
	progs    modelProgram
	section  []int // current section index per process
	ip       []int // instruction pointer within the section
	occupant int
	entry    []int
	urgent   []int
	conds    map[int][]refWaiter
	ready    []int
	history  []string
	seq      int
}

// release hands occupancy to the next waiter (urgent first) and makes it
// ready; with no waiters the monitor goes free.
func (st *refState) release() {
	if len(st.urgent) > 0 {
		st.occupant = st.urgent[0]
		st.urgent = st.urgent[1:]
		st.ready = append(st.ready, st.occupant)
		return
	}
	if len(st.entry) > 0 {
		st.occupant = st.entry[0]
		st.entry = st.entry[1:]
		st.ready = append(st.ready, st.occupant)
		return
	}
	st.occupant = -1
}

// runReference executes the programs under the reference semantics and
// returns the synchronization history.
func runReference(progs modelProgram) []string {
	n := len(progs)
	st := &refState{
		progs:    progs,
		section:  make([]int, n),
		ip:       make([]int, n),
		occupant: -1,
		conds:    map[int][]refWaiter{},
	}
	// atEntry[i]: process i is about to Enter (start of a section) rather
	// than resuming mid-section with occupancy already granted.
	atEntry := make([]bool, n)
	for i := 0; i < n; i++ {
		if len(progs[i]) > 0 {
			st.ready = append(st.ready, i)
			atEntry[i] = true
		}
	}

	steps := 0
	for len(st.ready) > 0 && steps < 100000 {
		steps++
		proc := st.ready[0]
		st.ready = st.ready[1:]

		// Run proc until it parks or finishes its program.
	running:
		for {
			if atEntry[proc] {
				if st.occupant == -1 {
					st.occupant = proc
					atEntry[proc] = false
				} else if st.occupant == proc {
					// occupancy was handed to us while parked at entry
					atEntry[proc] = false
				} else {
					st.entry = append(st.entry, proc)
					break running // parked at entry
				}
			}
			section := st.progs[proc][st.section[proc]]
			if st.ip[proc] >= len(section) {
				// Exit the monitor.
				st.history = append(st.history, fmt.Sprintf("exit%d", proc))
				st.release()
				st.section[proc]++
				st.ip[proc] = 0
				if st.section[proc] >= len(st.progs[proc]) {
					break running // program done; proc never parks again
				}
				atEntry[proc] = true
				continue // try to enter the next section immediately
			}
			op := section[st.ip[proc]]
			st.ip[proc]++
			switch op.kind {
			case 0: // wait
				st.history = append(st.history, fmt.Sprintf("wait%d.%d", proc, op.cond))
				st.seq++
				w := refWaiter{proc: proc, rank: op.rank, seq: st.seq}
				q := st.conds[op.cond]
				pos := len(q)
				for pos > 0 && q[pos-1].rank > w.rank {
					pos--
				}
				q = append(q, refWaiter{})
				copy(q[pos+1:], q[pos:])
				q[pos] = w
				st.conds[op.cond] = q
				st.release()
				break running // parked on the condition
			case 1: // signal
				q := st.conds[op.cond]
				if len(q) == 0 {
					st.history = append(st.history, fmt.Sprintf("sig%d.%d-noop", proc, op.cond))
					continue
				}
				w := q[0]
				st.conds[op.cond] = q[1:]
				st.history = append(st.history, fmt.Sprintf("sig%d.%d->%d", proc, op.cond, w.proc))
				st.urgent = append(st.urgent, proc)
				st.occupant = w.proc
				st.ready = append(st.ready, w.proc)
				break running // parked on urgent
			default:
				st.history = append(st.history, fmt.Sprintf("sec%d", proc))
			}
		}
	}
	return st.history
}

// Compare only the wait/signal/exit/sec events, which fully determine
// the synchronization behavior.
func filterHistory(h []string) []string {
	var out []string
	for _, e := range h {
		if len(e) >= 5 && e[:5] == "enter" {
			continue
		}
		out = append(out, e)
	}
	return out
}

// runImplementation executes the same programs on the real Monitor over
// the simulated kernel (FIFO policy) and records the same event alphabet.
func runImplementation(progs modelProgram, nconds int) ([]string, error) {
	k := kernel.NewSim()
	m := New("model")
	conds := make([]*Condition, nconds)
	for i := range conds {
		conds[i] = m.NewCondition(fmt.Sprintf("c%d", i))
	}
	var history []string
	n := len(progs)
	for proc := 0; proc < n; proc++ {
		proc := proc
		prog := progs[proc]
		k.Spawn(fmt.Sprintf("p%d", proc), func(p *kernel.Proc) {
			for _, section := range prog {
				m.Enter(p)
				for _, op := range section {
					switch op.kind {
					case 0:
						history = append(history, fmt.Sprintf("wait%d.%d", proc, op.cond))
						conds[op.cond].WaitRank(p, op.rank)
					case 1:
						q := conds[op.cond]
						if q.Waiting() == 0 {
							history = append(history, fmt.Sprintf("sig%d.%d-noop", proc, op.cond))
							continue
						}
						// Record the signalled target like the reference:
						// the head of the condition queue.
						history = append(history, fmt.Sprintf("sig%d.%d->?", proc, op.cond))
						q.Signal(p)
					default:
						history = append(history, fmt.Sprintf("sec%d", proc))
					}
				}
				history = append(history, fmt.Sprintf("exit%d", proc))
				m.Exit(p)
			}
		})
	}
	err := k.Run()
	return history, err
}

// normalize the reference's signal records to the implementation's
// (target unknown) form so the alphabets match.
func normalizeSignals(h []string) []string {
	out := make([]string, len(h))
	for i, e := range h {
		if idx := indexOf(e, "->"); idx >= 0 && e[:3] == "sig" {
			out[i] = e[:idx] + "->?"
		} else {
			out[i] = e
		}
	}
	return out
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// randomProgram builds n processes with random sections. Signals are
// generated liberally (no-op signals are fine); waits are bounded so the
// reference's FIFO run terminates (a wait with no future signal deadlocks
// both sides identically — those runs are skipped).
func randomProgram(rng *rand.Rand, n, nconds int) modelProgram {
	progs := make(modelProgram, n)
	for i := range progs {
		sections := 1 + rng.Intn(2)
		for s := 0; s < sections; s++ {
			var section modelSection
			for o := 0; o < 1+rng.Intn(3); o++ {
				switch rng.Intn(4) {
				case 0:
					section = append(section, modelOp{kind: 0, cond: rng.Intn(nconds), rank: int64(rng.Intn(3))})
				case 1, 2:
					section = append(section, modelOp{kind: 1, cond: rng.Intn(nconds)})
				default:
					section = append(section, modelOp{kind: 2})
				}
			}
			progs[i] = append(progs[i], section)
		}
	}
	return progs
}

func cloneProgram(p modelProgram) modelProgram {
	out := make(modelProgram, len(p))
	for i, sections := range p {
		out[i] = append([]modelSection{}, sections...)
	}
	return out
}

// Property: on every random program where both sides terminate, the
// reference automaton and the implementation produce identical
// synchronization histories.
func TestPropertyModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n, nconds = 3, 2
		progs := randomProgram(rng, n, nconds)

		ref := normalizeSignals(filterHistory(runReference(cloneProgram(progs))))
		impl, err := runImplementation(cloneProgram(progs), nconds)
		impl = normalizeSignals(filterHistory(impl))
		if err != nil {
			// Deadlocked program (waits without signals): the reference
			// must also have stalled early — it cannot have produced MORE
			// exits than the implementation.
			return countExits(ref) >= countExits(impl)
		}
		if fmt.Sprint(ref) != fmt.Sprint(impl) {
			t.Logf("programs: %+v", progs)
			t.Logf("ref:  %v", ref)
			t.Logf("impl: %v", impl)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func countExits(h []string) int {
	n := 0
	for _, e := range h {
		if len(e) >= 4 && e[:4] == "exit" {
			n++
		}
	}
	return n
}
