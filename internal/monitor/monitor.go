// Package monitor implements Hoare monitors ("Monitors: An Operating
// System Structuring Concept", CACM 17(10), 1974 — the paper's reference
// [13]) on the kernel substrate.
//
// The semantics are Hoare's original, which the paper's analysis depends
// on:
//
//   - At most one process is inside the monitor (the occupant).
//   - Signal is "signal-and-urgent-wait": if a process is waiting on the
//     condition, the signaller immediately hands the monitor to the
//     longest-waiting (or lowest-rank) waiter and parks on the monitor's
//     urgent queue. The signalled process therefore resumes with the
//     condition it waited for still true — no re-check loop is needed,
//     and none of the solutions in package solutions use one.
//   - When the occupant leaves (Exit or Wait), urgent waiters are resumed
//     in preference to new entrants.
//   - Conditions support Hoare's "priority wait": Wait(rank) enqueues
//     ordered by ascending rank, and MinRank exposes the head's rank (the
//     disk-head scheduler in [13] is built on exactly this pair).
//
// Misuse (exiting a monitor one is not inside, signalling from outside,
// waiting on another monitor's condition) panics: these are compile-time
// errors in a language with monitors, and the paper's modularity analysis
// assumes they cannot happen silently.
package monitor

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
)

// Monitor is a Hoare monitor.
type Monitor struct {
	name string

	mu       sync.Mutex
	occupant *kernel.Proc
	entry    kernel.WaitList
	urgent   kernel.WaitList
}

// New creates a monitor. The name appears in misuse panics and traces.
func New(name string) *Monitor { return &Monitor{name: name} }

// Name reports the monitor's name.
func (m *Monitor) Name() string { return m.name }

// Enter acquires the monitor, blocking while another process occupies it.
// Entry is FIFO among entrants, but processes on the urgent queue (parked
// signallers) are always admitted first when the monitor is released.
func (m *Monitor) Enter(p *kernel.Proc) {
	m.mu.Lock()
	if m.occupant == nil {
		m.occupant = p
		m.mu.Unlock()
		return
	}
	if m.occupant == p {
		m.mu.Unlock()
		panic(fmt.Sprintf("monitor %s: %s re-entered (monitors are not reentrant)", m.name, p))
	}
	m.entry.Push(p)
	m.mu.Unlock()
	p.Park()
}

// Exit releases the monitor: the longest-parked signaller (urgent queue)
// resumes if there is one, otherwise the longest-waiting entrant is
// admitted.
func (m *Monitor) Exit(p *kernel.Proc) {
	m.mu.Lock()
	m.checkOccupantLocked(p, "Exit")
	next := m.releaseLocked()
	m.mu.Unlock()
	if next != nil {
		next.Unpark()
	}
}

// Do runs body with the monitor held; it is Enter/Exit with panic safety.
func (m *Monitor) Do(p *kernel.Proc, body func()) {
	m.Enter(p)
	defer m.Exit(p)
	body()
}

// releaseLocked picks the next occupant (urgent first, then entry) and
// installs it, or marks the monitor free. It returns the process to
// unpark, if any.
func (m *Monitor) releaseLocked() *kernel.Proc {
	if w := m.urgent.Pop(); w != nil {
		m.occupant = w
		return w
	}
	if w := m.entry.Pop(); w != nil {
		m.occupant = w
		return w
	}
	m.occupant = nil
	return nil
}

func (m *Monitor) checkOccupantLocked(p *kernel.Proc, op string) {
	if m.occupant != p {
		panic(fmt.Sprintf("monitor %s: %s called %s while occupant is %v", m.name, p, op, m.occupant))
	}
}

// Occupied reports whether some process is inside the monitor. Advisory
// under the real kernel; exact between scheduling points under SimKernel.
func (m *Monitor) Occupied() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.occupant != nil
}

// EntryWaiting reports how many processes are blocked at Enter.
func (m *Monitor) EntryWaiting() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.entry.Len()
}

// Condition is a Hoare condition variable bound to a monitor. The paper
// identifies condition queues as the monitor's construct for request-time
// and request-type information (§4.1), and priority ranks as its construct
// for parameter information.
type Condition struct {
	m       *Monitor
	name    string
	waiters kernel.WaitList
}

// NewCondition creates a condition variable on m.
func (m *Monitor) NewCondition(name string) *Condition {
	return &Condition{m: m, name: name}
}

// Name reports the condition's name.
func (c *Condition) Name() string { return c.name }

// Wait releases the monitor and blocks until signalled, FIFO among
// waiters. The caller must occupy the monitor; it occupies it again when
// Wait returns.
func (c *Condition) Wait(p *kernel.Proc) { c.WaitRank(p, 0) }

// WaitRank is Hoare's priority wait: waiters are resumed in ascending rank
// order (arrival order among equal ranks). The disk-head scheduler waits
// with the requested cylinder as rank.
func (c *Condition) WaitRank(p *kernel.Proc, rank int64) {
	m := c.m
	m.mu.Lock()
	m.checkOccupantLocked(p, "Wait("+c.name+")")
	c.waiters.PushRank(p, rank)
	next := m.releaseLocked()
	m.mu.Unlock()
	if next != nil {
		next.Unpark()
	}
	p.Park()
	// On resume the signaller (or releaser) has installed us as occupant.
}

// Signal wakes the highest-priority waiter, if any, handing it the monitor
// immediately; the signaller parks on the urgent queue and resumes when
// the monitor is next released. Signalling an empty condition is a no-op
// (Hoare semantics) and the signaller keeps the monitor.
func (c *Condition) Signal(p *kernel.Proc) {
	m := c.m
	m.mu.Lock()
	m.checkOccupantLocked(p, "Signal("+c.name+")")
	w := c.waiters.Pop()
	if w == nil {
		m.mu.Unlock()
		return
	}
	m.urgent.Push(p)
	m.occupant = w
	m.mu.Unlock()
	w.Unpark()
	p.Park()
	// On resume we occupy the monitor again (installed by a releaser).
}

// SignalAll drains the condition by signalling until no waiter remains.
// Each signalled process runs (under Hoare semantics) before the next is
// woken. This is an extension — Hoare monitors have no broadcast — used by
// tests and examples, never by the paper's solutions.
func (c *Condition) SignalAll(p *kernel.Proc) {
	for c.Waiting() > 0 {
		c.Signal(p)
	}
}

// Waiting reports the number of processes waiting on the condition —
// Hoare's "condition.queue" boolean, generalized to a count. Callers
// should hold the monitor for an exact answer.
func (c *Condition) Waiting() int {
	c.m.mu.Lock()
	defer c.m.mu.Unlock()
	return c.waiters.Len()
}

// Queue reports whether any process waits on the condition (Hoare's
// `cond.queue` primitive, used by the alarm-clock and disk-head monitors).
func (c *Condition) Queue() bool { return c.Waiting() > 0 }

// MinRank reports the rank of the next waiter to be resumed; ok is false
// when no process is waiting. This is Hoare's `condition.minrank`.
func (c *Condition) MinRank() (int64, bool) {
	c.m.mu.Lock()
	defer c.m.mu.Unlock()
	return c.waiters.MinRank()
}
