package monitor

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/kernel"
)

func TestMutualExclusion(t *testing.T) {
	k := kernel.NewSim(kernel.WithPolicy(kernel.Random(3)))
	m := New("mx")
	inside, maxInside := 0, 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *kernel.Proc) {
			for j := 0; j < 8; j++ {
				m.Enter(p)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Yield()
				inside--
				m.Exit(p)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("maxInside = %d, want 1", maxInside)
	}
}

func TestEntryIsFIFO(t *testing.T) {
	k := kernel.NewSim()
	m := New("mx")
	var order []int
	k.Spawn("holder", func(p *kernel.Proc) {
		m.Enter(p)
		// Let five entrants queue up.
		for i := 0; i < 6; i++ {
			p.Yield()
		}
		m.Exit(p)
	})
	for i := 0; i < 5; i++ {
		k.Spawn("e", func(p *kernel.Proc) {
			m.Enter(p)
			order = append(order, p.ID())
			m.Exit(p)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[2 3 4 5 6]" {
		t.Fatalf("entry order = %v, want FIFO", order)
	}
}

// The defining Hoare property: a signalled process resumes immediately,
// before the signaller and before any waiting entrant, so the condition it
// waited for is still true — no re-check loop.
func TestSignalAndUrgentWait(t *testing.T) {
	k := kernel.NewSim()
	m := New("mx")
	c := m.NewCondition("c")
	var order []string
	flag := false

	k.Spawn("waiter", func(p *kernel.Proc) {
		m.Enter(p)
		order = append(order, "wait")
		c.Wait(p)
		// Hoare semantics: flag must still be true; nobody ran in between.
		if !flag {
			t.Error("condition not true at wakeup: not Hoare semantics")
		}
		order = append(order, "woken")
		flag = false
		m.Exit(p)
	})
	k.Spawn("signaller", func(p *kernel.Proc) {
		m.Enter(p)
		flag = true
		order = append(order, "signal")
		c.Signal(p)
		// We resume only after the waiter released the monitor; by then it
		// has consumed the flag.
		if flag {
			t.Error("signaller resumed before signalled process ran")
		}
		order = append(order, "signaller-resumed")
		m.Exit(p)
	})
	// A third process tries to barge in between signal and wakeup.
	k.Spawn("barger", func(p *kernel.Proc) {
		p.Yield() // let the others get going
		m.Enter(p)
		order = append(order, "barger")
		m.Exit(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[wait signal woken signaller-resumed barger]"
	if fmt.Sprint(order) != want {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestSignalEmptyConditionIsNoop(t *testing.T) {
	k := kernel.NewSim()
	m := New("mx")
	c := m.NewCondition("c")
	k.Spawn("p", func(p *kernel.Proc) {
		m.Enter(p)
		c.Signal(p) // nobody waiting: no-op, we keep the monitor
		if m.Occupied() != true {
			t.Error("lost the monitor after no-op signal")
		}
		m.Exit(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConditionFIFO(t *testing.T) {
	k := kernel.NewSim()
	m := New("mx")
	c := m.NewCondition("c")
	var order []int
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *kernel.Proc) {
			m.Enter(p)
			c.Wait(p)
			order = append(order, p.ID())
			m.Exit(p)
		})
	}
	k.Spawn("sig", func(p *kernel.Proc) {
		for i := 0; i < 4; i++ {
			m.Enter(p)
			c.Signal(p)
			m.Exit(p)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[1 2 3 4]" {
		t.Fatalf("wakeup order = %v, want FIFO", order)
	}
}

func TestPriorityWait(t *testing.T) {
	k := kernel.NewSim()
	m := New("mx")
	c := m.NewCondition("c")
	var order []int64
	ranks := []int64{50, 10, 30, 20, 40}
	for _, r := range ranks {
		k.Spawn("w", func(p *kernel.Proc) {
			m.Enter(p)
			c.WaitRank(p, r)
			order = append(order, r)
			m.Exit(p)
		})
	}
	k.Spawn("sig", func(p *kernel.Proc) {
		p.Yield() // let all waiters enqueue
		for i := 0; i < len(ranks); i++ {
			m.Enter(p)
			c.Signal(p)
			m.Exit(p)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[10 20 30 40 50]" {
		t.Fatalf("wakeup order = %v, want ascending rank", order)
	}
}

func TestMinRankAndQueue(t *testing.T) {
	k := kernel.NewSim()
	m := New("mx")
	c := m.NewCondition("c")
	for _, r := range []int64{25, 5} {
		k.Spawn("w", func(p *kernel.Proc) {
			m.Enter(p)
			c.WaitRank(p, r)
			m.Exit(p)
		})
	}
	k.Spawn("check", func(p *kernel.Proc) {
		m.Enter(p)
		if !c.Queue() {
			t.Error("Queue() = false with waiters")
		}
		if r, ok := c.MinRank(); !ok || r != 5 {
			t.Errorf("MinRank = %d,%v, want 5,true", r, ok)
		}
		c.SignalAll(p)
		if c.Queue() {
			t.Error("Queue() = true after SignalAll")
		}
		m.Exit(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUrgentPreferredOverEntry(t *testing.T) {
	k := kernel.NewSim()
	m := New("mx")
	c := m.NewCondition("c")
	var order []string
	k.Spawn("waiter", func(p *kernel.Proc) {
		m.Enter(p)
		c.Wait(p)
		order = append(order, "waiter")
		m.Exit(p) // releases: urgent (signaller) must beat the entrant
	})
	k.Spawn("signaller", func(p *kernel.Proc) {
		m.Enter(p)
		c.Signal(p)
		order = append(order, "signaller")
		m.Exit(p)
	})
	k.Spawn("entrant", func(p *kernel.Proc) {
		p.Yield()
		m.Enter(p) // queued while signaller holds the monitor
		order = append(order, "entrant")
		m.Exit(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[waiter signaller entrant]" {
		t.Fatalf("order = %v", order)
	}
}

func TestMisusePanics(t *testing.T) {
	cases := []struct {
		name string
		body func(m *Monitor, c *Condition, p *kernel.Proc)
	}{
		{"exit-not-occupant", func(m *Monitor, c *Condition, p *kernel.Proc) { m.Exit(p) }},
		{"wait-outside", func(m *Monitor, c *Condition, p *kernel.Proc) { c.Wait(p) }},
		{"signal-outside", func(m *Monitor, c *Condition, p *kernel.Proc) { c.Signal(p) }},
		{"reenter", func(m *Monitor, c *Condition, p *kernel.Proc) { m.Enter(p); m.Enter(p) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := kernel.NewSim()
			m := New("mx")
			c := m.NewCondition("c")
			var recovered any
			k.Spawn("bad", func(p *kernel.Proc) {
				defer func() { recovered = recover() }()
				tc.body(m, c, p)
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if recovered == nil {
				t.Fatal("misuse did not panic")
			}
		})
	}
}

func TestDoReleasesOnPanic(t *testing.T) {
	k := kernel.NewSim()
	m := New("mx")
	entered := false
	k.Spawn("panicker", func(p *kernel.Proc) {
		defer func() { recover() }()
		m.Do(p, func() { panic("boom") })
	})
	k.Spawn("next", func(p *kernel.Proc) {
		m.Enter(p)
		entered = true
		m.Exit(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !entered {
		t.Fatal("monitor not released after panic inside Do")
	}
}

// Bounded buffer on a monitor, real kernel with -race: the canonical smoke
// test for condition-variable correctness under true parallelism.
func TestBoundedBufferReal(t *testing.T) {
	k := kernel.NewReal(kernel.WithWatchdog(30 * time.Second))
	m := New("buffer")
	notFull := m.NewCondition("notfull")
	notEmpty := m.NewCondition("notempty")
	const cap = 4
	var buf []int

	const items = 2000
	var got []int
	k.Spawn("producer", func(p *kernel.Proc) {
		for i := 0; i < items; i++ {
			m.Enter(p)
			if len(buf) == cap {
				notFull.Wait(p)
			}
			buf = append(buf, i)
			notEmpty.Signal(p)
			m.Exit(p)
		}
	})
	k.Spawn("consumer", func(p *kernel.Proc) {
		for i := 0; i < items; i++ {
			m.Enter(p)
			if len(buf) == 0 {
				notEmpty.Wait(p)
			}
			got = append(got, buf[0])
			buf = buf[1:]
			notFull.Signal(p)
			m.Exit(p)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != items {
		t.Fatalf("consumed %d items, want %d", len(got), items)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d = %d (lost or reordered)", i, v)
		}
	}
}

func BenchmarkMonitorEnterExitUncontended(b *testing.B) {
	k := kernel.NewReal()
	m := New("bench")
	done := make(chan struct{})
	k.Spawn("p", func(p *kernel.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Enter(p)
			m.Exit(p)
		}
		close(done)
	})
	<-done
}

func BenchmarkMonitorSignalWaitPingPong(b *testing.B) {
	k := kernel.NewReal(kernel.WithWatchdog(0))
	m := New("bench")
	turnA := m.NewCondition("turnA")
	turnB := m.NewCondition("turnB")
	turn := 0 // 0 = A's turn, 1 = B's turn; strict alternation
	b.ResetTimer()
	k.Spawn("a", func(p *kernel.Proc) {
		for i := 0; i < b.N; i++ {
			m.Enter(p)
			if turn != 0 {
				turnA.Wait(p)
			}
			turn = 1
			turnB.Signal(p)
			m.Exit(p)
		}
	})
	k.Spawn("b", func(p *kernel.Proc) {
		for i := 0; i < b.N; i++ {
			m.Enter(p)
			if turn != 1 {
				turnB.Wait(p)
			}
			turn = 0
			turnA.Signal(p)
			m.Exit(p)
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
