// Package pathexpr implements Campbell–Habermann path expressions ("The
// Specification of Process Synchronization by Path Expressions", LNCS 16,
// 1974 — the paper's reference [7]) on the kernel substrate.
//
// A path expression declares the permitted orderings of operations on a
// resource:
//
//	path {read} , write end
//
// with four operators (the version Bloom's §5.1 analyzes):
//
//   - sequencing "a ; b": an execution of b must be preceded by a
//     completed execution of a (cyclically, since the path repeats);
//   - selection "a , b": exactly one of the alternatives executes per
//     cycle; the implementation resumes the longest-waiting process, the
//     assumption Bloom adds explicitly ("the selection operator always
//     chooses the process that has been waiting longest");
//   - concurrency "{ a }": a burst — once one execution of a starts, any
//     number may run concurrently; the burst ends only when all finish;
//   - repetition: the path…end pair itself cycles indefinitely.
//
// A resource is governed by a *list* of paths; an operation named in
// several paths must satisfy all of them. Operations not named in any
// path are unconstrained.
//
// The implementation follows Campbell and Habermann's own translation to
// P/V operations on (FIFO) semaphores, so the blocking behavior is the
// published one, not an approximation; a separate symbolic interpreter
// (Checker) provides admissibility checking and cross-validation.
package pathexpr

import (
	"fmt"
	"strings"
)

// Node is a path-expression AST node.
type Node interface {
	// render writes the node's source form to b; prec is the enclosing
	// operator's binding strength, used to decide parenthesization.
	render(b *strings.Builder, prec int)
}

// Precedence levels for rendering: sequence binds loosest, selection
// tighter, primaries tightest (matching the grammar in parse.go).
const (
	precSeq = iota
	precSel
	precPrim
)

// Seq is "e1 ; e2 ; …": the elements execute in order, cyclically.
type Seq struct {
	Elems []Node
}

// Sel is "e1 , e2 , …": exactly one alternative executes per cycle.
type Sel struct {
	Alts []Node
}

// Burst is "{ e }": concurrent executions of e, ending when all complete.
type Burst struct {
	Inner Node
}

// OpRef names an operation of the resource.
type OpRef struct {
	Name string
}

func (s *Seq) render(b *strings.Builder, prec int) {
	if prec > precSeq {
		b.WriteByte('(')
	}
	for i, e := range s.Elems {
		if i > 0 {
			b.WriteString(" ; ")
		}
		e.render(b, precSel)
	}
	if prec > precSeq {
		b.WriteByte(')')
	}
}

func (s *Sel) render(b *strings.Builder, prec int) {
	if prec > precSel {
		b.WriteByte('(')
	}
	for i, a := range s.Alts {
		if i > 0 {
			b.WriteString(" , ")
		}
		a.render(b, precPrim)
	}
	if prec > precSel {
		b.WriteByte(')')
	}
}

func (bu *Burst) render(b *strings.Builder, prec int) {
	b.WriteByte('{')
	bu.Inner.render(b, precSeq)
	b.WriteByte('}')
}

func (o *OpRef) render(b *strings.Builder, prec int) { b.WriteString(o.Name) }

// Path is one parsed "path … end" declaration.
type Path struct {
	// Bound is the numeric-operator multiplicity: up to Bound cycles of
	// the expression may be in progress at once. The 1974 dialect always
	// has Bound 1; "path n : e end" (Flon–Habermann) sets it to n.
	Bound  int64
	Expr   Node
	Source string // original text, for reports and structural analysis
}

// String renders the path in canonical source form.
func (p *Path) String() string {
	var b strings.Builder
	b.WriteString("path ")
	if p.Bound > 1 {
		fmt.Fprintf(&b, "%d : ", p.Bound)
	}
	p.Expr.render(&b, precSeq)
	b.WriteString(" end")
	return b.String()
}

// opsOf collects the operation names referenced under n, in first-
// appearance order, appending to seen/out.
func opsOf(n Node, seen map[string]bool, out *[]string) {
	switch v := n.(type) {
	case *OpRef:
		if !seen[v.Name] {
			seen[v.Name] = true
			*out = append(*out, v.Name)
		}
	case *Seq:
		for _, e := range v.Elems {
			opsOf(e, seen, out)
		}
	case *Sel:
		for _, a := range v.Alts {
			opsOf(a, seen, out)
		}
	case *Burst:
		opsOf(v.Inner, seen, out)
	}
}

// Ops lists the operations the path constrains, in first-appearance order.
func (p *Path) Ops() []string {
	seen := map[string]bool{}
	var out []string
	opsOf(p.Expr, seen, &out)
	return out
}
