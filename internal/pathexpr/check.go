package pathexpr

import "fmt"

// Checker is a symbolic interpreter for a compiled path set. It executes
// the same compiled program as Set.Exec, but over integer state and
// atomically: an operation can start iff its entire prologue can run
// without blocking. It serves two purposes:
//
//   - admissibility checking of operation histories (cmd/pathc, the
//     problem oracles' reference), and
//   - cross-validation of the blocking runtime: on sequential histories
//     the runtime and the checker must agree (asserted by property tests),
//     which is the ablation DESIGN.md §6.2 calls for.
//
// The one semantic difference from the blocking runtime is deliberate:
// the runtime acquires prologue semaphores one at a time and can block
// *mid-prologue* (holding earlier semaphores), whereas the checker's
// all-or-nothing trial never enters such partial states. For histories the
// checker admits, the two agree; histories the checker rejects leave the
// runtime blocked rather than failed.
type Checker struct {
	set    *Set
	sems   []int64
	bursts []int64
	active map[string]int // op -> number of started, unfinished executions
}

// NewChecker creates a checker over s with fresh initial state.
func NewChecker(s *Set) *Checker {
	c := &Checker{
		set:    s,
		sems:   make([]int64, len(s.semInit)),
		bursts: make([]int64, s.burstCnt),
		active: map[string]int{},
	}
	copy(c.sems, s.semInit)
	return c
}

// snapshot copies the mutable state for trial-and-rollback.
func (c *Checker) snapshot() ([]int64, []int64) {
	sems := make([]int64, len(c.sems))
	copy(sems, c.sems)
	bursts := make([]int64, len(c.bursts))
	copy(bursts, c.bursts)
	return sems, bursts
}

func (c *Checker) restore(sems, bursts []int64) {
	copy(c.sems, sems)
	copy(c.bursts, bursts)
}

// trial executes steps over the symbolic state, reporting false (state
// partially mutated — callers roll back) if a P would block.
func (c *Checker) trial(steps []step) bool {
	for _, st := range steps {
		switch v := st.(type) {
		case stepP:
			if c.sems[v.sem] == 0 {
				return false
			}
			c.sems[v.sem]--
		case stepV:
			c.sems[v.sem]++
		case stepBurst:
			if v.enter {
				c.bursts[v.burst]++
				if c.bursts[v.burst] == 1 && !c.trial(v.inner) {
					return false
				}
			} else {
				c.bursts[v.burst]--
				if c.bursts[v.burst] == 0 && !c.trial(v.inner) {
					return false
				}
			}
		}
	}
	return true
}

// CanStart reports whether op could begin executing now. Unconstrained
// operations can always start.
func (c *Checker) CanStart(op string) bool {
	o := c.set.ops[op]
	if o == nil {
		return true
	}
	sems, bursts := c.snapshot()
	defer c.restore(sems, bursts)
	for _, g := range o.gates {
		if !c.trial(g.pre) {
			return false
		}
	}
	return true
}

// Start begins an execution of op, or reports an error if its prologue
// would block.
func (c *Checker) Start(op string) error {
	o := c.set.ops[op]
	if o == nil {
		c.active[op]++
		return nil
	}
	sems, bursts := c.snapshot()
	for _, g := range o.gates {
		if !c.trial(g.pre) {
			c.restore(sems, bursts)
			return fmt.Errorf("pathexpr: %q cannot start in the current state", op)
		}
	}
	c.active[op]++
	return nil
}

// Finish completes the oldest unfinished execution of op. Epilogues never
// block. Finishing an op with no active execution is an error.
func (c *Checker) Finish(op string) error {
	if c.active[op] == 0 {
		return fmt.Errorf("pathexpr: Finish(%q) with no active execution", op)
	}
	c.active[op]--
	o := c.set.ops[op]
	if o == nil {
		return nil
	}
	for i := len(o.gates) - 1; i >= 0; i-- {
		if !c.trial(o.gates[i].post) {
			// Epilogues consist of V and burst-exit steps only; a blocked
			// epilogue indicates a compiler bug.
			panic(fmt.Sprintf("pathexpr: epilogue of %q blocked", op))
		}
	}
	return nil
}

// Active reports the number of started, unfinished executions of op.
func (c *Checker) Active(op string) int { return c.active[op] }

// Exec performs a complete (start+finish) execution of op, or reports an
// error if it cannot start.
func (c *Checker) Exec(op string) error {
	if err := c.Start(op); err != nil {
		return err
	}
	return c.Finish(op)
}

// Admissible reports whether the sequential history (complete executions,
// one at a time) is permitted by the path set, and if not, the index of
// the first inadmissible operation.
func (c *Checker) Admissible(history []string) (bool, int) {
	for i, op := range history {
		if err := c.Exec(op); err != nil {
			return false, i
		}
	}
	return true, -1
}

// Startable lists the constrained operations that could start now, sorted.
func (c *Checker) Startable() []string {
	var out []string
	for _, op := range c.set.Ops() {
		if c.CanStart(op) {
			out = append(out, op)
		}
	}
	return out
}
