package pathexpr

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
)

func TestCheckerSequenceAdmissibility(t *testing.T) {
	set := MustCompile("path a ; b end")
	cases := []struct {
		history []string
		ok      bool
		failAt  int
	}{
		{[]string{"a", "b"}, true, -1},
		{[]string{"a", "b", "a", "b"}, true, -1},
		{[]string{"b"}, false, 0},
		{[]string{"a", "a"}, false, 1},
		{[]string{"a", "b", "b"}, false, 2},
	}
	for _, tc := range cases {
		c := NewChecker(set)
		ok, at := c.Admissible(tc.history)
		if ok != tc.ok || at != tc.failAt {
			t.Errorf("Admissible(%v) = %v,%d, want %v,%d", tc.history, ok, at, tc.ok, tc.failAt)
		}
	}
}

func TestCheckerSelection(t *testing.T) {
	set := MustCompile("path a , b end")
	c := NewChecker(set)
	// Each cycle permits exactly one of a,b; any sequence of single ops
	// is admissible.
	if ok, _ := c.Admissible([]string{"a", "b", "b", "a"}); !ok {
		t.Fatal("alternating selection rejected")
	}
}

func TestCheckerBurstConcurrency(t *testing.T) {
	set := MustCompile("path {read} , write end")
	c := NewChecker(set)
	// Two overlapping reads are fine; write must wait for both to finish.
	if err := c.Start("read"); err != nil {
		t.Fatal(err)
	}
	if err := c.Start("read"); err != nil {
		t.Fatal(err)
	}
	if c.CanStart("write") {
		t.Fatal("write startable during reads")
	}
	if err := c.Finish("read"); err != nil {
		t.Fatal(err)
	}
	if c.CanStart("write") {
		t.Fatal("write startable with one read still active")
	}
	if err := c.Finish("read"); err != nil {
		t.Fatal(err)
	}
	if !c.CanStart("write") {
		t.Fatal("write not startable after reads done")
	}
	if err := c.Exec("write"); err != nil {
		t.Fatal(err)
	}
	if c.Active("read") != 0 || c.Active("write") != 0 {
		t.Fatal("active counts wrong")
	}
}

func TestCheckerWriteExcludesRead(t *testing.T) {
	set := MustCompile("path {read} , write end")
	c := NewChecker(set)
	if err := c.Start("write"); err != nil {
		t.Fatal(err)
	}
	if c.CanStart("read") {
		t.Fatal("read startable during write")
	}
	if c.CanStart("write") {
		t.Fatal("second write startable during write")
	}
	if err := c.Finish("write"); err != nil {
		t.Fatal(err)
	}
	if !c.CanStart("read") {
		t.Fatal("read not startable after write")
	}
}

func TestCheckerFinishWithoutStart(t *testing.T) {
	set := MustCompile("path a end")
	c := NewChecker(set)
	if err := c.Finish("a"); err == nil {
		t.Fatal("Finish without Start accepted")
	}
}

func TestCheckerUnconstrainedOps(t *testing.T) {
	set := MustCompile("path a end")
	c := NewChecker(set)
	if !c.CanStart("other") {
		t.Fatal("unconstrained op not startable")
	}
	if err := c.Exec("other"); err != nil {
		t.Fatal(err)
	}
}

func TestCheckerStartable(t *testing.T) {
	set := MustCompile("path a ; b end")
	c := NewChecker(set)
	if got := fmt.Sprint(c.Startable()); got != "[a]" {
		t.Fatalf("Startable = %v", got)
	}
	if err := c.Exec("a"); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(c.Startable()); got != "[b]" {
		t.Fatalf("Startable after a = %v", got)
	}
}

func TestCheckerConjunction(t *testing.T) {
	set := MustCompile("path a ; b end", "path c ; b end")
	c := NewChecker(set)
	if c.CanStart("b") {
		t.Fatal("b startable before a and c")
	}
	if err := c.Exec("a"); err != nil {
		t.Fatal(err)
	}
	if c.CanStart("b") {
		t.Fatal("b startable before c")
	}
	if err := c.Exec("c"); err != nil {
		t.Fatal(err)
	}
	if !c.CanStart("b") {
		t.Fatal("b not startable after a and c")
	}
}

// Cross-validation ablation (DESIGN.md §6.2): on random sequential
// histories, the blocking runtime and the symbolic checker must agree —
// every history the checker admits executes without blocking on the
// runtime, for a variety of path sets.
func TestCheckerRuntimeAgreementOnAdmissibleHistories(t *testing.T) {
	sets := []string{
		"path a end",
		"path a ; b end",
		"path a , b end",
		"path {read} , write end",
		"path a ; b ; c end",
		"path (a , b) ; c end",
		"path {a ; b} , c end",
		"path a ; b end path c ; b end",
	}
	for _, src := range sets {
		src := src
		t.Run(src, func(t *testing.T) {
			f := func(seed int64, n uint8) bool {
				set := MustCompile(src)
				checker := NewChecker(set)
				rng := rand.New(rand.NewSource(seed))
				ops := set.Ops()

				// Build an admissible history greedily.
				var history []string
				for i := 0; i < int(n%24); i++ {
					startable := checker.Startable()
					if len(startable) == 0 {
						break
					}
					op := startable[rng.Intn(len(startable))]
					if err := checker.Exec(op); err != nil {
						return false
					}
					history = append(history, op)
				}
				_ = ops

				// The blocking runtime must execute it without parking.
				k := kernel.NewSim()
				completed := 0
				k.Spawn("p", func(p *kernel.Proc) {
					for _, op := range history {
						set.Exec(p, op, func() { completed++ })
					}
				})
				if err := k.Run(); err != nil {
					t.Logf("history %v: %v", history, err)
					return false
				}
				return completed == len(history)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Conversely: a history the checker rejects must leave a single-process
// runtime parked (deadlocked) at or before the rejected operation.
func TestCheckerRuntimeAgreementOnInadmissibleHistories(t *testing.T) {
	set := MustCompile("path a ; b end")
	inadmissible := [][]string{
		{"b"},
		{"a", "a"},
		{"a", "b", "b"},
	}
	for _, history := range inadmissible {
		checker := NewChecker(set)
		if ok, _ := checker.Admissible(history); ok {
			t.Fatalf("checker admitted %v", history)
		}
		set.Reset()
		k := kernel.NewSim()
		completed := 0
		k.Spawn("p", func(p *kernel.Proc) {
			for _, op := range history {
				set.Exec(p, op, func() { completed++ })
			}
		})
		if err := k.Run(); err == nil {
			t.Fatalf("runtime completed inadmissible history %v", history)
		}
		if completed >= len(history) {
			t.Fatalf("runtime executed all of %v", history)
		}
	}
}

func BenchmarkCheckerCanStart(b *testing.B) {
	set := MustCompile("path {read} , write end")
	c := NewChecker(set)
	if err := c.Start("read"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.CanStart("write")
	}
}

func BenchmarkCheckerAdmissible(b *testing.B) {
	set := MustCompile("path a ; b end")
	history := make([]string, 0, 200)
	for i := 0; i < 100; i++ {
		history = append(history, "a", "b")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewChecker(set)
		if ok, _ := c.Admissible(history); !ok {
			b.Fatal("rejected")
		}
	}
}
