package pathexpr

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/semaphore"
)

// The compiler realizes Campbell and Habermann's translation of path
// expressions into P and V operations: every operation occurrence in a
// path acquires a *prologue* before its body and runs an *epilogue* after
// it. The translation rules are
//
//	path n : S end    s := Sem(n);  T(S, [P(s)], [V(s)])   (n defaults to 1)
//	T(e1 ; … ; en)    link semaphores c1…c(n-1) := Sem(0);
//	                  T(e1, pre, [V(c1)]), T(ei, [P(c(i-1))], [V(ci)]),
//	                  T(en, [P(c(n-1))], post)
//	T(e1 , … , en)    every alternative gets the same (pre, post); FIFO
//	                  semaphores make the selection resume the longest
//	                  waiter, Bloom's §5.1 assumption
//	T({ e })          counter n := 0 guarded by a mutex;
//	                  pre'  = lock; n++; if n == 1 { pre };  unlock
//	                  post' = lock; n--; if n == 0 { post }; unlock
//	T(op)             attach (pre, post) to op
//
// An operation named in several paths must satisfy all of them: its
// prologues run in path-declaration order and its epilogues in reverse.
// An operation occurring twice within one path is rejected (its two
// gate sets would wrongly compose as a conjunction).

// step is one abstract prologue/epilogue instruction. The same compiled
// program drives both the blocking runtime (Set.Exec) and the symbolic
// interpreter (Checker), which keeps them in lockstep by construction.
type step interface{ isStep() }

type stepP struct{ sem int } // P(sems[sem]); blocks while count is 0

type stepV struct{ sem int } // V(sems[sem])

// stepBurst guards inner steps with a burst counter: on enter, the counter
// is incremented and inner runs only for the first member; on exit it is
// decremented and inner runs only for the last.
type stepBurst struct {
	burst int
	enter bool // true: n++ / first-runs-inner; false: n-- / last-runs-inner
	inner []step
}

func (stepP) isStep()     {}
func (stepV) isStep()     {}
func (stepBurst) isStep() {}

// gate is one operation occurrence's prologue/epilogue pair from one path.
type gate struct {
	pathIdx int
	pre     []step
	post    []step
}

// Op is one constrained operation of the compiled set.
type Op struct {
	name  string
	gates []gate // in path-declaration order
}

// Name reports the operation name.
func (o *Op) Name() string { return o.name }

// Set is a compiled collection of paths governing one resource.
type Set struct {
	paths    []*Path
	semInit  []int64 // initial counts of the abstract semaphores
	burstCnt int     // number of burst counters
	ops      map[string]*Op

	sems   []*semaphore.Semaphore // runtime state
	bursts []*burstState
}

type burstState struct {
	mu semaphore.Semaphore // binary semaphore guarding n; initialized to 1
	n  int64
}

type compiler struct {
	set     *Set
	pathIdx int
	inPath  map[string]bool // duplicate-occurrence detection per path
	err     error
}

// Compile parses and compiles one or more path declarations. Each source
// string may itself contain several "path … end" declarations.
func Compile(sources ...string) (*Set, error) {
	var paths []*Path
	for _, src := range sources {
		ps, err := ParseList(src)
		if err != nil {
			return nil, err
		}
		paths = append(paths, ps...)
	}
	return CompileList(paths)
}

// MustCompile is Compile panicking on error, for statically known paths.
func MustCompile(sources ...string) *Set {
	s, err := Compile(sources...)
	if err != nil {
		panic(err)
	}
	return s
}

// CompileList compiles already-parsed paths.
func CompileList(paths []*Path) (*Set, error) {
	set := &Set{ops: map[string]*Op{}}
	c := &compiler{set: set}
	for i, p := range paths {
		c.pathIdx = i
		c.inPath = map[string]bool{}
		bound := p.Bound
		if bound < 1 {
			bound = 1 // zero-value Paths built by hand behave as the 1974 dialect
		}
		root := c.newSem(bound)
		c.compile(p.Expr, []step{stepP{root}}, []step{stepV{root}})
		if c.err != nil {
			return nil, c.err
		}
	}
	set.paths = append(set.paths, paths...)

	// Instantiate runtime state.
	set.sems = make([]*semaphore.Semaphore, len(set.semInit))
	for i, init := range set.semInit {
		set.sems[i] = semaphore.New(init)
	}
	set.bursts = make([]*burstState, set.burstCnt)
	for i := range set.bursts {
		b := &burstState{}
		b.mu.V() // initialize the guard to 1
		set.bursts[i] = b
	}
	return set, nil
}

func (c *compiler) newSem(init int64) int {
	c.set.semInit = append(c.set.semInit, init)
	return len(c.set.semInit) - 1
}

func (c *compiler) newBurst() int {
	c.set.burstCnt++
	return c.set.burstCnt - 1
}

func (c *compiler) compile(n Node, pre, post []step) {
	if c.err != nil {
		return
	}
	switch v := n.(type) {
	case *OpRef:
		if c.inPath[v.Name] {
			c.err = fmt.Errorf("pathexpr: operation %q occurs more than once in path %d; multiple occurrences within one path are not supported", v.Name, c.pathIdx+1)
			return
		}
		c.inPath[v.Name] = true
		op := c.set.ops[v.Name]
		if op == nil {
			op = &Op{name: v.Name}
			c.set.ops[v.Name] = op
		}
		op.gates = append(op.gates, gate{pathIdx: c.pathIdx, pre: pre, post: post})
	case *Seq:
		last := len(v.Elems) - 1
		prevLink := -1
		for i, e := range v.Elems {
			epre, epost := pre, post
			if i > 0 {
				epre = []step{stepP{prevLink}}
			}
			if i < last {
				link := c.newSem(0)
				epost = []step{stepV{link}}
				prevLink = link
			}
			c.compile(e, epre, epost)
		}
	case *Sel:
		for _, a := range v.Alts {
			c.compile(a, pre, post)
		}
	case *Burst:
		b := c.newBurst()
		c.compile(v.Inner,
			[]step{stepBurst{burst: b, enter: true, inner: pre}},
			[]step{stepBurst{burst: b, enter: false, inner: post}})
	default:
		c.err = fmt.Errorf("pathexpr: unknown node %T", n)
	}
}

// Paths returns the compiled path declarations.
func (s *Set) Paths() []*Path { return s.paths }

// Ops lists the constrained operation names, sorted.
func (s *Set) Ops() []string {
	out := make([]string, 0, len(s.ops))
	for name := range s.ops {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Constrained reports whether op is named in any path.
func (s *Set) Constrained(op string) bool {
	_, ok := s.ops[op]
	return ok
}

// Exec performs operation op with body as its implementation: the
// compiled prologues run (blocking as the paths require) before body, and
// the epilogues after. Operations not named in any path run unconstrained,
// per Campbell–Habermann.
func (s *Set) Exec(p *kernel.Proc, op string, body func()) {
	o := s.ops[op]
	if o == nil {
		body()
		return
	}
	for _, g := range o.gates {
		s.run(p, g.pre)
	}
	defer func() {
		for i := len(o.gates) - 1; i >= 0; i-- {
			s.run(p, o.gates[i].post)
		}
	}()
	body()
}

// run executes compiled steps for process p, blocking as required.
func (s *Set) run(p *kernel.Proc, steps []step) {
	for _, st := range steps {
		switch v := st.(type) {
		case stepP:
			s.sems[v.sem].P(p)
		case stepV:
			s.sems[v.sem].V()
		case stepBurst:
			b := s.bursts[v.burst]
			b.mu.P(p)
			if v.enter {
				b.n++
				if b.n == 1 {
					s.run(p, v.inner)
				}
			} else {
				b.n--
				if b.n == 0 {
					s.run(p, v.inner)
				}
			}
			b.mu.V()
		}
	}
}

// Reset reinstantiates the runtime state (semaphores and burst counters),
// abandoning any in-flight executions. For use between independent runs in
// tests and benchmarks; never while processes are inside Exec.
func (s *Set) Reset() {
	for i, init := range s.semInit {
		s.sems[i] = semaphore.New(init)
	}
	for i := range s.bursts {
		b := &burstState{}
		b.mu.V()
		s.bursts[i] = b
	}
}
