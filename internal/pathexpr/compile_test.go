package pathexpr

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/kernel"
)

func TestExecUnconstrainedOp(t *testing.T) {
	set := MustCompile("path a end")
	k := kernel.NewSim()
	ran := false
	k.Spawn("p", func(p *kernel.Proc) {
		set.Exec(p, "unrelated", func() { ran = true })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("unconstrained op did not run")
	}
	if set.Constrained("unrelated") || !set.Constrained("a") {
		t.Fatal("Constrained misreports")
	}
}

// path a end: executions of a are mutually exclusive but unlimited in
// number (the path repeats).
func TestSingleOpPathSerializes(t *testing.T) {
	set := MustCompile("path a end")
	k := kernel.NewSim(kernel.WithPolicy(kernel.Random(9)))
	inside, maxInside, runs := 0, 0, 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *kernel.Proc) {
			for j := 0; j < 5; j++ {
				set.Exec(p, "a", func() {
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					p.Yield()
					inside--
					runs++
				})
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 || runs != 20 {
		t.Fatalf("maxInside=%d runs=%d", maxInside, runs)
	}
}

// path a ; b end: strict alternation starting with a.
func TestSequenceAlternates(t *testing.T) {
	set := MustCompile("path a ; b end")
	k := kernel.NewSim()
	var order []string
	k.Spawn("bproc", func(p *kernel.Proc) {
		for i := 0; i < 3; i++ {
			set.Exec(p, "b", func() { order = append(order, "b") })
		}
	})
	k.Spawn("aproc", func(p *kernel.Proc) {
		for i := 0; i < 3; i++ {
			set.Exec(p, "a", func() { order = append(order, "a") })
			p.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[a b a b a b]" {
		t.Fatalf("order = %v, want strict alternation", order)
	}
}

// path {read} , write end: classic readers-writers exclusion.
func TestBurstReadersWriterExclusion(t *testing.T) {
	set := MustCompile("path {read} , write end")
	k := kernel.NewSim(kernel.WithPolicy(kernel.Random(21)))
	readers, writers := 0, 0
	violations := 0
	maxReaders := 0
	for i := 0; i < 4; i++ {
		k.Spawn("reader", func(p *kernel.Proc) {
			for j := 0; j < 6; j++ {
				set.Exec(p, "read", func() {
					readers++
					if writers > 0 {
						violations++
					}
					if readers > maxReaders {
						maxReaders = readers
					}
					p.Yield()
					readers--
				})
			}
		})
	}
	for i := 0; i < 2; i++ {
		k.Spawn("writer", func(p *kernel.Proc) {
			for j := 0; j < 4; j++ {
				set.Exec(p, "write", func() {
					writers++
					if writers > 1 || readers > 0 {
						violations++
					}
					p.Yield()
					writers--
				})
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("violations = %d", violations)
	}
	if maxReaders < 2 {
		t.Fatalf("maxReaders = %d; burst never admitted concurrent readers", maxReaders)
	}
}

// Selection resumes the longest-waiting process (FIFO semaphores): with
// "path a , b end", a blocked a-request queued before a b-request is
// served first.
func TestSelectionLongestWaiting(t *testing.T) {
	set := MustCompile("path a , b end")
	k := kernel.NewSim()
	var order []string
	k.Spawn("holder", func(p *kernel.Proc) {
		set.Exec(p, "a", func() {
			for i := 0; i < 4; i++ {
				p.Yield() // let a-waiter then b-waiter queue up
			}
		})
	})
	k.Spawn("awaiter", func(p *kernel.Proc) {
		set.Exec(p, "a", func() { order = append(order, "a") })
	})
	k.Spawn("bwaiter", func(p *kernel.Proc) {
		p.Yield() // ensure awaiter requests first
		set.Exec(p, "b", func() { order = append(order, "b") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[a b]" {
		t.Fatalf("order = %v, want longest-waiting first", order)
	}
}

// An operation constrained by two paths must satisfy both.
func TestConjunctionAcrossPaths(t *testing.T) {
	set := MustCompile("path a ; b end", "path c ; b end")
	k := kernel.NewSim()
	var order []string
	k.Spawn("b", func(p *kernel.Proc) {
		set.Exec(p, "b", func() { order = append(order, "b") })
	})
	k.Spawn("a", func(p *kernel.Proc) {
		p.Yield()
		set.Exec(p, "a", func() { order = append(order, "a") })
	})
	k.Spawn("c", func(p *kernel.Proc) {
		p.Yield()
		p.Yield()
		set.Exec(p, "c", func() { order = append(order, "c") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// b needs both a and c to have completed.
	if fmt.Sprint(order) != "[a c b]" {
		t.Fatalf("order = %v, want b last", order)
	}
}

func TestDuplicateOpInOnePathRejected(t *testing.T) {
	if _, err := Compile("path a ; a end"); err == nil {
		t.Fatal("duplicate occurrence accepted")
	}
}

func TestSequenceBlocksOutOfOrder(t *testing.T) {
	set := MustCompile("path a ; b end")
	k := kernel.NewSim()
	k.Spawn("b-first", func(p *kernel.Proc) {
		set.Exec(p, "b", func() {})
	})
	if err := k.Run(); !errors.Is(err, kernel.ErrDeadlock) {
		t.Fatalf("Run = %v, want deadlock (b before a)", err)
	}
}

func TestReset(t *testing.T) {
	set := MustCompile("path a ; b end")
	k := kernel.NewSim()
	k.Spawn("p", func(p *kernel.Proc) {
		set.Exec(p, "a", func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	set.Reset()
	// After reset, b must block again (a has not run in the new epoch).
	k2 := kernel.NewSim()
	k2.Spawn("p", func(p *kernel.Proc) {
		set.Exec(p, "b", func() {})
	})
	if err := k2.Run(); !errors.Is(err, kernel.ErrDeadlock) {
		t.Fatalf("Run after Reset = %v, want deadlock", err)
	}
}

func TestOpsSorted(t *testing.T) {
	set := MustCompile("path z , a end", "path m end")
	ops := set.Ops()
	if fmt.Sprint(ops) != "[a m z]" {
		t.Fatalf("Ops = %v", ops)
	}
}

// Burst of a sequence: "{a ; b}" — each cycle's a;b pair may overlap other
// pairs, but the first entrant opens the burst and the last closes it.
func TestBurstOfSequence(t *testing.T) {
	set := MustCompile("path {a ; b} , c end")
	k := kernel.NewSim()
	var order []string
	k.Spawn("p1", func(p *kernel.Proc) {
		set.Exec(p, "a", func() { order = append(order, "a") })
		set.Exec(p, "b", func() { order = append(order, "b") })
	})
	k.Spawn("cproc", func(p *kernel.Proc) {
		set.Exec(p, "c", func() { order = append(order, "c") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// c can only run when the a;b burst is closed.
	if fmt.Sprint(order) != "[a b c]" {
		t.Fatalf("order = %v", order)
	}
}

// Real kernel + race detector: the compiled runtime under parallelism.
func TestRuntimeRealKernelStress(t *testing.T) {
	set := MustCompile("path {read} , write end")
	k := kernel.NewReal(kernel.WithWatchdog(30 * time.Second))
	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	readers, writers, violations := 0, 0, 0
	for i := 0; i < 6; i++ {
		k.Spawn("reader", func(p *kernel.Proc) {
			for j := 0; j < 200; j++ {
				set.Exec(p, "read", func() {
					<-mu
					readers++
					if writers > 0 {
						violations++
					}
					mu <- struct{}{}
					p.Yield()
					<-mu
					readers--
					mu <- struct{}{}
				})
			}
		})
	}
	for i := 0; i < 2; i++ {
		k.Spawn("writer", func(p *kernel.Proc) {
			for j := 0; j < 100; j++ {
				set.Exec(p, "write", func() {
					<-mu
					writers++
					if writers > 1 || readers > 0 {
						violations++
					}
					mu <- struct{}{}
					<-mu
					writers--
					mu <- struct{}{}
				})
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("violations = %d", violations)
	}
}

func BenchmarkExecSingleOpPath(b *testing.B) {
	set := MustCompile("path a end")
	k := kernel.NewReal()
	done := make(chan struct{})
	k.Spawn("p", func(p *kernel.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			set.Exec(p, "a", func() {})
		}
		close(done)
	})
	<-done
}

func BenchmarkExecBurstReader(b *testing.B) {
	set := MustCompile("path {read} , write end")
	k := kernel.NewReal()
	done := make(chan struct{})
	k.Spawn("p", func(p *kernel.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			set.Exec(p, "read", func() {})
		}
		close(done)
	})
	<-done
}
