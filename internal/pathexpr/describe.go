package pathexpr

import (
	"fmt"
	"sort"
	"strings"
)

// Describe renders the compiled Campbell–Habermann translation: the
// semaphores with their initial counts, the burst counters, and each
// operation's prologue/epilogue program. This is the "compiled output" of
// the path compiler, printed by cmd/pathc -translate; it makes the
// P/V-level meaning of a path declaration inspectable.
func (s *Set) Describe() string {
	var b strings.Builder
	b.WriteString("paths:\n")
	for i, p := range s.paths {
		fmt.Fprintf(&b, "  %d: %s\n", i+1, p)
	}
	fmt.Fprintf(&b, "semaphores: %d\n", len(s.semInit))
	for i, init := range s.semInit {
		fmt.Fprintf(&b, "  s%d init %d\n", i, init)
	}
	if s.burstCnt > 0 {
		fmt.Fprintf(&b, "burst counters: %d\n", s.burstCnt)
	}
	b.WriteString("operations:\n")

	names := make([]string, 0, len(s.ops))
	for name := range s.ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		op := s.ops[name]
		fmt.Fprintf(&b, "  %s:\n", name)
		for _, g := range op.gates {
			fmt.Fprintf(&b, "    path %d: prologue %s\n", g.pathIdx+1, describeSteps(g.pre))
			fmt.Fprintf(&b, "            epilogue %s\n", describeSteps(g.post))
		}
	}
	return b.String()
}

// describeSteps renders a step list in a compact P/V notation.
func describeSteps(steps []step) string {
	if len(steps) == 0 {
		return "(none)"
	}
	parts := make([]string, 0, len(steps))
	for _, st := range steps {
		parts = append(parts, describeStep(st))
	}
	return strings.Join(parts, "; ")
}

func describeStep(st step) string {
	switch v := st.(type) {
	case stepP:
		return fmt.Sprintf("P(s%d)", v.sem)
	case stepV:
		return fmt.Sprintf("V(s%d)", v.sem)
	case stepBurst:
		if v.enter {
			return fmt.Sprintf("burst%d++{first: %s}", v.burst, describeSteps(v.inner))
		}
		return fmt.Sprintf("burst%d--{last: %s}", v.burst, describeSteps(v.inner))
	}
	return "?"
}
