package pathexpr

import (
	"strings"
	"testing"
)

func TestDescribeReadersWriters(t *testing.T) {
	set := MustCompile("path {read} , write end")
	out := set.Describe()
	for _, want := range []string{
		"s0 init 1",         // the path's root semaphore
		"burst counters: 1", // {read}
		"write:",            // both ops listed
		"read:",
		"P(s0)", "V(s0)", // write's gates
		"burst0++{first: P(s0)}", // read's burst-guarded prologue
		"burst0--{last: V(s0)}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeSequenceLinks(t *testing.T) {
	set := MustCompile("path 3 : a ; b end")
	out := set.Describe()
	if !strings.Contains(out, "s0 init 3") {
		t.Errorf("numeric bound not reflected:\n%s", out)
	}
	if !strings.Contains(out, "s1 init 0") {
		t.Errorf("sequence link semaphore missing:\n%s", out)
	}
	// a: pre P(s0), post V(s1); b: pre P(s1), post V(s0).
	if !strings.Contains(out, "prologue P(s1)") || !strings.Contains(out, "epilogue V(s1)") {
		t.Errorf("link wiring not shown:\n%s", out)
	}
}

func TestDescribeFigure1Compiles(t *testing.T) {
	set := MustCompile(`
		path writeattempt end
		path { requestread } , requestwrite end
		path { read } , (openwrite ; write) end
	`)
	out := set.Describe()
	if !strings.Contains(out, "path 3: prologue") {
		t.Errorf("multi-path gates not attributed:\n%s", out)
	}
	if !strings.Contains(out, "openwrite") {
		t.Errorf("figure ops missing:\n%s", out)
	}
}
