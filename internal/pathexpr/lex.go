package pathexpr

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// tokKind classifies lexical tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokPath  // keyword "path"
	tokEnd   // keyword "end"
	tokSemi  // ;
	tokComma // ,
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokColon  // :
	tokNumber // decimal integer (the numeric operator bound)
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokPath:
		return `"path"`
	case tokEnd:
		return `"end"`
	case tokSemi:
		return `";"`
	case tokComma:
		return `","`
	case tokLBrace:
		return `"{"`
	case tokRBrace:
		return `"}"`
	case tokLParen:
		return `"("`
	case tokRParen:
		return `")"`
	case tokColon:
		return `":"`
	case tokNumber:
		return "number"
	}
	return "invalid token"
}

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string
	pos  int // byte offset in the input
}

// SyntaxError reports a lexical or parse error with its byte offset.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("pathexpr: offset %d: %s", e.Pos, e.Msg)
}

// lexer tokenizes a path-expression source string.
type lexer struct {
	src string
	pos int
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentCont(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

// next returns the next token, or an error for an illegal character.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if unicode.IsSpace(r) {
			l.pos += size
			continue
		}
		start := l.pos
		switch r {
		case ';':
			l.pos++
			return token{tokSemi, ";", start}, nil
		case ',':
			l.pos++
			return token{tokComma, ",", start}, nil
		case '{':
			l.pos++
			return token{tokLBrace, "{", start}, nil
		case '}':
			l.pos++
			return token{tokRBrace, "}", start}, nil
		case '(':
			l.pos++
			return token{tokLParen, "(", start}, nil
		case ')':
			l.pos++
			return token{tokRParen, ")", start}, nil
		case ':':
			l.pos++
			return token{tokColon, ":", start}, nil
		}
		if r >= '0' && r <= '9' {
			l.pos += size
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			return token{tokNumber, l.src[start:l.pos], start}, nil
		}
		if isIdentStart(r) {
			l.pos += size
			for l.pos < len(l.src) {
				r2, s2 := utf8.DecodeRuneInString(l.src[l.pos:])
				if !isIdentCont(r2) {
					break
				}
				l.pos += s2
			}
			text := l.src[start:l.pos]
			switch text {
			case "path":
				return token{tokPath, text, start}, nil
			case "end":
				return token{tokEnd, text, start}, nil
			}
			return token{tokIdent, text, start}, nil
		}
		return token{}, &SyntaxError{start, fmt.Sprintf("illegal character %q", r)}
	}
	return token{tokEOF, "", l.pos}, nil
}
