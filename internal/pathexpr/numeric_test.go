package pathexpr

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/kernel"
)

// Tests for the Flon–Habermann numeric operator ("path n : e end"),
// the second-generation extension Bloom's §5.1 credits with fixing the
// synchronization-state and history weaknesses of the 1974 dialect.

func TestParseNumericBound(t *testing.T) {
	p, err := Parse("path 3 : deposit ; remove end")
	if err != nil {
		t.Fatal(err)
	}
	if p.Bound != 3 {
		t.Fatalf("Bound = %d, want 3", p.Bound)
	}
	if p.String() != "path 3 : deposit ; remove end" {
		t.Fatalf("String = %q", p.String())
	}
	// Round trip.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if p2.Bound != 3 {
		t.Fatalf("reparsed Bound = %d", p2.Bound)
	}
}

func TestParseDefaultBoundIsOne(t *testing.T) {
	p, err := Parse("path a end")
	if err != nil {
		t.Fatal(err)
	}
	if p.Bound != 1 {
		t.Fatalf("Bound = %d, want 1", p.Bound)
	}
	if p.String() != "path a end" {
		t.Fatalf("String = %q (bound 1 must not render)", p.String())
	}
}

func TestParseNumericErrors(t *testing.T) {
	for _, src := range []string{
		"path 0 : a end",                    // bound must be positive
		"path 3 a end",                      // missing colon
		"path 3 : end",                      // missing expression
		"path a : b end",                    // bound must be a number
		"path 99999999999999999999 : a end", // overflow
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

// path 2 : a end — up to two concurrent executions of a, never three.
func TestNumericBoundLimitsConcurrency(t *testing.T) {
	set := MustCompile("path 2 : a end")
	k := kernel.NewSim(kernel.WithPolicy(kernel.Random(13)))
	inside, maxInside := 0, 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *kernel.Proc) {
			for j := 0; j < 6; j++ {
				set.Exec(p, "a", func() {
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					p.Yield()
					inside--
				})
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 2 {
		t.Fatalf("maxInside = %d, want exactly 2 (bound reached, never exceeded)", maxInside)
	}
}

// path n : (deposit ; remove) end IS the n-slot bounded buffer: deposits
// lead removes by at most n, and removes never lead deposits.
func TestNumericBoundedBufferDiscipline(t *testing.T) {
	const n = 3
	set := MustCompile(fmt.Sprintf("path %d : deposit ; remove end", n))
	checker := NewChecker(set)

	// Fill to capacity.
	for i := 0; i < n; i++ {
		if err := checker.Exec("deposit"); err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
	}
	if checker.CanStart("deposit") {
		t.Fatal("deposit startable at full capacity")
	}
	if err := checker.Exec("remove"); err != nil {
		t.Fatal(err)
	}
	if !checker.CanStart("deposit") {
		t.Fatal("deposit not startable after a remove")
	}
	// Drain.
	for i := 0; i < n-1; i++ {
		if err := checker.Exec("remove"); err != nil {
			t.Fatal(err)
		}
	}
	if checker.CanStart("remove") {
		t.Fatal("remove startable on empty buffer")
	}
}

// The runtime enforces the same discipline under blocking execution.
func TestNumericBoundedBufferRuntime(t *testing.T) {
	const n = 2
	set := MustCompile(fmt.Sprintf("path %d : deposit ; remove end", n))
	k := kernel.NewSim()
	occupancy, maxOcc, minOcc := 0, 0, 0
	const items = 10
	k.Spawn("producer", func(p *kernel.Proc) {
		for i := 0; i < items; i++ {
			set.Exec(p, "deposit", func() { occupancy++ })
			if occupancy > maxOcc {
				maxOcc = occupancy
			}
		}
	})
	k.Spawn("consumer", func(p *kernel.Proc) {
		for i := 0; i < items; i++ {
			set.Exec(p, "remove", func() { occupancy-- })
			if occupancy < minOcc {
				minOcc = occupancy
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxOcc > n {
		t.Fatalf("occupancy reached %d, bound %d", maxOcc, n)
	}
	if minOcc < 0 {
		t.Fatalf("occupancy went negative: %d", minOcc)
	}
	if occupancy != 0 {
		t.Fatalf("final occupancy = %d", occupancy)
	}
}

// A consumer ahead of any producer blocks (and the sim kernel sees the
// deadlock when no producer ever comes).
func TestNumericRemoveBeforeDepositBlocks(t *testing.T) {
	set := MustCompile("path 4 : deposit ; remove end")
	k := kernel.NewSim()
	k.Spawn("consumer", func(p *kernel.Proc) {
		set.Exec(p, "remove", func() {})
	})
	if err := k.Run(); !errors.Is(err, kernel.ErrDeadlock) {
		t.Fatalf("Run = %v, want deadlock", err)
	}
}

// The checker and runtime agree on the numeric dialect too (extends the
// cross-validation ablation).
func TestNumericCheckerRuntimeAgreement(t *testing.T) {
	set := MustCompile("path 2 : a ; b end")
	checker := NewChecker(set)
	history := []string{"a", "a", "b", "a", "b", "b"}
	if ok, at := checker.Admissible(history); !ok {
		t.Fatalf("checker rejected at %d", at)
	}
	set.Reset()
	k := kernel.NewSim()
	done := 0
	k.Spawn("p", func(p *kernel.Proc) {
		for _, op := range history {
			set.Exec(p, op, func() { done++ })
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != len(history) {
		t.Fatalf("done = %d", done)
	}
	// And an inadmissible one: three a's with bound 2.
	checker2 := NewChecker(set)
	if ok, _ := checker2.Admissible([]string{"a", "a", "a"}); ok {
		t.Fatal("checker admitted a third cycle under bound 2")
	}
}

func BenchmarkNumericPathExec(b *testing.B) {
	set := MustCompile("path 8 : deposit ; remove end")
	k := kernel.NewReal()
	done := make(chan struct{})
	k.Spawn("p", func(p *kernel.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			set.Exec(p, "deposit", func() {})
			set.Exec(p, "remove", func() {})
		}
		close(done)
	})
	<-done
}
