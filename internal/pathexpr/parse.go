package pathexpr

import (
	"fmt"
	"strconv"
)

// Grammar (sequence binds loosest — Figure 1 of Bloom's paper writes
// "{read} , (openwrite ; write)", parenthesizing a sequence used as a
// selection alternative, which fixes the relative precedence):
//
//	pathlist := path+
//	path     := "path" [ NUMBER ":" ] expr "end"
//	expr     := alt { ";" alt }
//	alt      := prim { "," prim }
//	prim     := IDENT | "{" expr "}" | "(" expr ")"
//
// The optional NUMBER prefix is the *numeric operator* of the second-
// generation path expressions (Flon–Habermann [10], discussed in Bloom's
// §5.1 as the fix for explicit synchronization-state and history
// information): "path n : e end" permits up to n cycles of e to be in
// progress simultaneously. "path e end" is "path 1 : e end". With it the
// bounded buffer is directly expressible — path n : (deposit ; remove)
// end — which the 1974 dialect cannot do (experiment E1).
type parser struct {
	lex  *lexer
	tok  token
	src  string
	err  error
	base int // offset of the current path's "path" keyword
}

// Parse parses a single "path … end" declaration.
func Parse(src string) (*Path, error) {
	paths, err := ParseList(src)
	if err != nil {
		return nil, err
	}
	if len(paths) != 1 {
		return nil, &SyntaxError{0, fmt.Sprintf("expected exactly one path, found %d", len(paths))}
	}
	return paths[0], nil
}

// ParseList parses one or more "path … end" declarations from src.
func ParseList(src string) ([]*Path, error) {
	p := &parser{lex: &lexer{src: src}, src: src}
	p.advance()
	if p.err != nil {
		return nil, p.err
	}
	var out []*Path
	for p.tok.kind != tokEOF {
		path := p.parsePath()
		if p.err != nil {
			return nil, p.err
		}
		out = append(out, path)
	}
	if len(out) == 0 {
		return nil, &SyntaxError{0, "no path declarations"}
	}
	return out, nil
}

// MustParseList is ParseList panicking on error, for statically known
// sources (the solution packages' literal paths).
func MustParseList(src string) []*Path {
	paths, err := ParseList(src)
	if err != nil {
		panic(err)
	}
	return paths
}

func (p *parser) advance() {
	if p.err != nil {
		return
	}
	tok, err := p.lex.next()
	if err != nil {
		p.err = err
		return
	}
	p.tok = tok
}

func (p *parser) fail(format string, args ...any) {
	if p.err == nil {
		p.err = &SyntaxError{p.tok.pos, fmt.Sprintf(format, args...)}
	}
}

func (p *parser) expect(kind tokKind) token {
	tok := p.tok
	if tok.kind != kind {
		p.fail("expected %s, found %s %q", kind, tok.kind, tok.text)
		return tok
	}
	p.advance()
	return tok
}

func (p *parser) parsePath() *Path {
	start := p.tok.pos
	p.base = start
	p.expect(tokPath)
	bound := int64(1)
	if p.tok.kind == tokNumber {
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil || n < 1 {
			p.fail("numeric operator bound %q must be a positive integer", p.tok.text)
			return nil
		}
		bound = n
		p.advance()
		p.expect(tokColon)
	}
	expr := p.parseExpr()
	endTok := p.expect(tokEnd)
	if p.err != nil {
		return nil
	}
	return &Path{
		Bound:  bound,
		Expr:   expr,
		Source: p.src[start : endTok.pos+len(endTok.text)],
	}
}

func (p *parser) parseExpr() Node {
	first := p.parseAlt()
	if p.err != nil {
		return nil
	}
	if p.tok.kind != tokSemi {
		return first
	}
	seq := &Seq{Elems: []Node{first}}
	for p.tok.kind == tokSemi {
		p.advance()
		e := p.parseAlt()
		if p.err != nil {
			return nil
		}
		seq.Elems = append(seq.Elems, e)
	}
	return seq
}

func (p *parser) parseAlt() Node {
	first := p.parsePrim()
	if p.err != nil {
		return nil
	}
	if p.tok.kind != tokComma {
		return first
	}
	sel := &Sel{Alts: []Node{first}}
	for p.tok.kind == tokComma {
		p.advance()
		a := p.parsePrim()
		if p.err != nil {
			return nil
		}
		sel.Alts = append(sel.Alts, a)
	}
	return sel
}

func (p *parser) parsePrim() Node {
	switch p.tok.kind {
	case tokIdent:
		name := p.tok.text
		p.advance()
		return &OpRef{Name: name}
	case tokLBrace:
		p.advance()
		inner := p.parseExpr()
		p.expect(tokRBrace)
		if p.err != nil {
			return nil
		}
		return &Burst{Inner: inner}
	case tokLParen:
		p.advance()
		inner := p.parseExpr()
		p.expect(tokRParen)
		if p.err != nil {
			return nil
		}
		return inner
	default:
		p.fail(`expected operation, "{", or "(", found %s %q`, p.tok.kind, p.tok.text)
		return nil
	}
}
