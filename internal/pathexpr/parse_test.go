package pathexpr

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleOp(t *testing.T) {
	p, err := Parse("path read end")
	if err != nil {
		t.Fatal(err)
	}
	op, ok := p.Expr.(*OpRef)
	if !ok || op.Name != "read" {
		t.Fatalf("Expr = %#v", p.Expr)
	}
	if p.String() != "path read end" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestParseSequence(t *testing.T) {
	p, err := Parse("path a ; b ; c end")
	if err != nil {
		t.Fatal(err)
	}
	seq, ok := p.Expr.(*Seq)
	if !ok || len(seq.Elems) != 3 {
		t.Fatalf("Expr = %#v", p.Expr)
	}
}

func TestParseSelection(t *testing.T) {
	p, err := Parse("path a , b end")
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := p.Expr.(*Sel)
	if !ok || len(sel.Alts) != 2 {
		t.Fatalf("Expr = %#v", p.Expr)
	}
}

// Sequence binds loosest: "a , b ; c" is "(a , b) ; c".
func TestPrecedenceSelectionTighter(t *testing.T) {
	p, err := Parse("path a , b ; c end")
	if err != nil {
		t.Fatal(err)
	}
	seq, ok := p.Expr.(*Seq)
	if !ok || len(seq.Elems) != 2 {
		t.Fatalf("top = %#v, want Seq of 2", p.Expr)
	}
	if _, ok := seq.Elems[0].(*Sel); !ok {
		t.Fatalf("first element = %#v, want Sel", seq.Elems[0])
	}
}

func TestParseParensOverridePrecedence(t *testing.T) {
	p, err := Parse("path a , (b ; c) end")
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := p.Expr.(*Sel)
	if !ok || len(sel.Alts) != 2 {
		t.Fatalf("top = %#v, want Sel of 2", p.Expr)
	}
	if _, ok := sel.Alts[1].(*Seq); !ok {
		t.Fatalf("second alternative = %#v, want Seq", sel.Alts[1])
	}
}

func TestParseBurst(t *testing.T) {
	p, err := Parse("path { read } , write end")
	if err != nil {
		t.Fatal(err)
	}
	sel := p.Expr.(*Sel)
	burst, ok := sel.Alts[0].(*Burst)
	if !ok {
		t.Fatalf("first alternative = %#v, want Burst", sel.Alts[0])
	}
	if op := burst.Inner.(*OpRef); op.Name != "read" {
		t.Fatalf("burst inner = %#v", burst.Inner)
	}
}

// Figure 1 of the paper, verbatim.
func TestParseFigure1(t *testing.T) {
	src := `
		path writeattempt end
		path { requestread } , requestwrite end
		path { read } , (openwrite ; write) end
	`
	paths, err := ParseList(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("paths = %d, want 3", len(paths))
	}
	if got := paths[2].String(); got != "path {read} , (openwrite ; write) end" {
		t.Fatalf("canonical form = %q", got)
	}
	ops := paths[2].Ops()
	if strings.Join(ops, " ") != "read openwrite write" {
		t.Fatalf("ops = %v", ops)
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"path read end",
		"path a ; b end",
		"path a , b , c end",
		"path {read} , write end",
		"path {requestread} , requestwrite end",
		"path {read} , (openwrite ; write) end",
		"path (a , b) ; {c ; d} end",
		"path {a , b} end",
	}
	for _, src := range cases {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		// The canonical rendering must itself parse to the same rendering.
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", p.String(), err)
		}
		if p.String() != p2.String() {
			t.Fatalf("round trip changed: %q -> %q", p.String(), p2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src    string
		substr string
	}{
		{"", "no path"},
		{"path end", "expected operation"},
		{"path a", `expected "end"`},
		{"path a ; end", "expected operation"},
		{"path a , , b end", "expected operation"},
		{"path { a end", `expected "}"`},
		{"path ( a end", `expected ")"`},
		{"read end", `expected "path"`},
		{"path a end trailing", `expected "path"`},
		{"path a % b end", "illegal character"},
		{"path path end", "expected operation"},
	}
	for _, tc := range cases {
		_, err := ParseList(tc.src)
		if err == nil {
			t.Errorf("ParseList(%q) succeeded, want error containing %q", tc.src, tc.substr)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("ParseList(%q) error = %q, want substring %q", tc.src, err, tc.substr)
		}
	}
}

func TestParseRejectsMultiplePathsInParse(t *testing.T) {
	if _, err := Parse("path a end path b end"); err == nil {
		t.Fatal("Parse accepted two paths")
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := ParseList("path a %")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if se.Pos != 7 {
		t.Fatalf("Pos = %d, want 7", se.Pos)
	}
}

func TestPathSourcePreserved(t *testing.T) {
	paths, err := ParseList("  path a ; b end   path c end")
	if err != nil {
		t.Fatal(err)
	}
	if paths[0].Source != "path a ; b end" {
		t.Fatalf("Source = %q", paths[0].Source)
	}
	if paths[1].Source != "path c end" {
		t.Fatalf("Source = %q", paths[1].Source)
	}
}

func TestMustParseListPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParseList("path")
}

func BenchmarkParseFigure1(b *testing.B) {
	src := `
		path writeattempt end
		path { requestread } , requestwrite end
		path { read } , (openwrite ; write) end
	`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseList(src); err != nil {
			b.Fatal(err)
		}
	}
}

// Crash-freedom fuzz: ParseList must return a value or an error on any
// input, never panic, and any successfully parsed input must re-render
// and re-parse cleanly.
func TestParseArbitraryInputNoPanic(t *testing.T) {
	f := func(src string) bool {
		paths, err := ParseList(src)
		if err != nil {
			return true
		}
		for _, p := range paths {
			rp, err := Parse(p.String())
			if err != nil || rp.String() != p.String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// A few adversarial shapes by hand.
	for _, src := range []string{
		"path", "end", "path path path", "path ; end", "path (((a))) end",
		"path {{{a}}} end", "path 1:1:1 end", "path ::: end", "path a;;b end",
		"path \x00 end", "path 🙂 end",
	} {
		ParseList(src) // must not panic
	}
}
