package pathexpr

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
)

// randomNode builds a random path-expression AST over a fixed operation
// alphabet. Each operation name is used at most once (the compiler's
// one-occurrence-per-path rule), so generation draws from a shrinking
// pool.
func randomNode(rng *rand.Rand, pool *[]string, depth int) Node {
	if depth <= 0 || len(*pool) == 0 || rng.Intn(3) == 0 {
		if len(*pool) == 0 {
			return nil
		}
		i := rng.Intn(len(*pool))
		name := (*pool)[i]
		*pool = append((*pool)[:i], (*pool)[i+1:]...)
		return &OpRef{Name: name}
	}
	switch rng.Intn(3) {
	case 0:
		var elems []Node
		for i := 0; i < 2+rng.Intn(2); i++ {
			if n := randomNode(rng, pool, depth-1); n != nil {
				elems = append(elems, n)
			}
		}
		if len(elems) == 0 {
			return nil
		}
		if len(elems) == 1 {
			return elems[0]
		}
		return &Seq{Elems: elems}
	case 1:
		var alts []Node
		for i := 0; i < 2+rng.Intn(2); i++ {
			if n := randomNode(rng, pool, depth-1); n != nil {
				alts = append(alts, n)
			}
		}
		if len(alts) == 0 {
			return nil
		}
		if len(alts) == 1 {
			return alts[0]
		}
		return &Sel{Alts: alts}
	default:
		inner := randomNode(rng, pool, depth-1)
		if inner == nil {
			return nil
		}
		return &Burst{Inner: inner}
	}
}

func freshPool() []string {
	var out []string
	for i := 0; i < 8; i++ {
		out = append(out, fmt.Sprintf("op%d", i))
	}
	return out
}

// Property: rendering a random AST and reparsing it yields the same
// canonical rendering (parser and renderer are inverse up to canonical
// form), and the result compiles.
func TestPropertyRenderParseRoundTrip(t *testing.T) {
	f := func(seed int64, bound uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pool := freshPool()
		node := randomNode(rng, &pool, 3)
		if node == nil {
			return true
		}
		p := &Path{Bound: int64(bound%5) + 1, Expr: node}
		src := p.String()
		reparsed, err := Parse(src)
		if err != nil {
			t.Logf("source %q: %v", src, err)
			return false
		}
		if reparsed.String() != src {
			t.Logf("round trip changed %q -> %q", src, reparsed.String())
			return false
		}
		if reparsed.Bound != p.Bound {
			return false
		}
		if _, err := CompileList([]*Path{reparsed}); err != nil {
			t.Logf("compile of %q: %v", src, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: for a random path, the checker's greedy admissible histories
// always execute to completion on the blocking runtime (the strong form
// of the cross-validation ablation, now over random path shapes).
func TestPropertyCheckerAdmitsImpliesRuntimeRuns(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pool := freshPool()
		node := randomNode(rng, &pool, 3)
		if node == nil {
			return true
		}
		p := &Path{Bound: int64(rng.Intn(3)) + 1, Expr: node}
		set, err := CompileList([]*Path{p})
		if err != nil {
			return false
		}
		checker := NewChecker(set)
		var history []string
		for i := 0; i < int(steps%20); i++ {
			startable := checker.Startable()
			if len(startable) == 0 {
				break
			}
			op := startable[rng.Intn(len(startable))]
			if err := checker.Exec(op); err != nil {
				return false
			}
			history = append(history, op)
		}
		// Replay on the blocking runtime (single process; must not block).
		set.Reset()
		return runtimeExecutes(set, history)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ops listed by a path equal the ops the compiled set
// constrains.
func TestPropertyOpsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pool := freshPool()
		node := randomNode(rng, &pool, 3)
		if node == nil {
			return true
		}
		p := &Path{Bound: 1, Expr: node}
		set, err := CompileList([]*Path{p})
		if err != nil {
			return false
		}
		want := p.Ops()
		got := set.Ops()
		if len(want) != len(got) {
			return false
		}
		wantSet := map[string]bool{}
		for _, op := range want {
			wantSet[op] = true
		}
		for _, op := range got {
			if !wantSet[op] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// runtimeExecutes replays a sequential history on the blocking runtime
// under the simulated kernel and reports whether it ran to completion
// (a blocked prologue shows up as a kernel deadlock).
func runtimeExecutes(set *Set, history []string) bool {
	k := kernel.NewSim()
	completed := 0
	k.Spawn("p", func(p *kernel.Proc) {
		for _, op := range history {
			set.Exec(p, op, func() { completed++ })
		}
	})
	if err := k.Run(); err != nil {
		return false
	}
	return completed == len(history)
}
