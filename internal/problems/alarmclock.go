package problems

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/trace"
)

// The alarm clock is Hoare's [13] second footnote-2 test case for *request
// parameter* information: wakeme(n) blocks the caller for n ticks of a
// logical clock driven by tick().

// OpWakeMe and OpTick are the clock's operation names in traces. A
// wakeme's argument is its absolute due time (tick count); a tick's
// argument is the clock value after the tick.
const (
	OpWakeMe = "wakeme"
	OpTick   = "tick"
)

// AlarmClockSpec is the alarm clock's scheme.
func AlarmClockSpec() core.Scheme {
	return core.Scheme{
		Name: NameAlarmClock,
		Constraints: []core.Constraint{
			{
				ID:   "wake-not-early",
				Kind: core.Exclusion,
				Uses: []core.InfoType{core.RequestParams, core.LocalState},
				Desc: "if the clock has not reached a sleeper's due time then exclude its wakeup",
			},
		},
	}
}

// AlarmClock is the clock interface. WakeMe's body runs when the sleeper
// wakes; Tick advances the logical clock by one.
type AlarmClock interface {
	WakeMe(p *kernel.Proc, ticks int64, body func())
	Tick(p *kernel.Proc)
}

// Sleeper is one workload arrival: after Delay yields, sleep for Ticks.
type Sleeper struct {
	Ticks int64
	Delay int
}

// ClockConfig parameterizes the alarm-clock workload: one driver process
// ticking the clock TotalTicks times (yielding between ticks) and one
// process per sleeper.
type ClockConfig struct {
	Sleepers   []Sleeper
	TotalTicks int
}

// SpawnAlarmClock spawns the workload processes against ac on k,
// recording into r; the caller runs the kernel (exploration replays the
// same spawns under many schedules). The driver tracks the number of ticks issued so far to compute each
// sleeper's absolute due time for the oracle. The clock runs for at least
// TotalTicks and then keeps ticking until every sleeper has woken (bounded
// by a generous safety margin), so liveness does not depend on the
// scheduling policy interleaving sleepers ahead of the clock.
func SpawnAlarmClock(k kernel.Kernel, ac AlarmClock, r *trace.Recorder, cfg ClockConfig) error {
	var issued atomic.Int64 // ticks issued; read by sleepers for due times
	var woken atomic.Int64
	total := int64(len(cfg.Sleepers))
	for _, s := range cfg.Sleepers {
		s := s
		k.Spawn("sleeper", func(p *kernel.Proc) {
			for y := 0; y < s.Delay; y++ {
				p.Yield()
			}
			due := issued.Load() + s.Ticks
			r.Request(p, OpWakeMe, due)
			ac.WakeMe(p, s.Ticks, func() {
				r.Enter(p, OpWakeMe, due)
				r.Exit(p, OpWakeMe, due)
			})
			woken.Add(1)
		})
	}
	k.Spawn("clock", func(p *kernel.Proc) {
		limit := int64(cfg.TotalTicks) + 100*total + 100
		for i := int64(0); i < limit; i++ {
			if i >= int64(cfg.TotalTicks) && woken.Load() == total {
				return
			}
			// issued advances only after Tick completes: a sleeper that
			// registers while Tick is in flight must compute its due time
			// from the clock value the solution has definitely reached
			// (an overestimate would make correct wakeups look early).
			n := issued.Load() + 1
			r.Enter(p, OpTick, n)
			ac.Tick(p)
			issued.Store(n)
			r.Exit(p, OpTick, n)
			// Sleep rather than Yield: sleeping cedes the processor to
			// runnable sleepers under every policy (a yielded clock can
			// monopolize a LIFO schedule).
			p.Sleep(1)
		}
	})
	return nil
}

// DriveAlarmClock spawns the workload via SpawnAlarmClock and returns the kernel's
// verdict from running it to completion.
func DriveAlarmClock(k kernel.Kernel, ac AlarmClock, r *trace.Recorder, cfg ClockConfig) error {
	if err := SpawnAlarmClock(k, ac, r, cfg); err != nil {
		return err
	}
	return k.Run()
}

// CheckAlarmClock judges a clock trace: no sleeper wakes before its due
// tick has been issued, and every sleeper that requested eventually woke.
//
// "Issued" is measured at tick Enter events: under Hoare signalling a
// sleeper due at tick n runs during tick n's processing, i.e. after the
// tick's Enter but possibly before its Exit.
func CheckAlarmClock(tr trace.Trace) []Violation {
	var out []Violation
	ticks := int64(0)
	requested := 0
	woken := 0
	for _, e := range tr {
		switch {
		case e.Kind == trace.KindEnter && e.Op == OpTick:
			ticks++
			if e.Arg != ticks {
				out = append(out, Violation{
					Rule:   "instrumentation",
					Detail: fmt.Sprintf("tick %d recorded with argument %d", ticks, e.Arg),
					Seq:    e.Seq,
				})
			}
		case e.Kind == trace.KindRequest && e.Op == OpWakeMe:
			requested++
		case e.Kind == trace.KindEnter && e.Op == OpWakeMe:
			woken++
			if ticks < e.Arg {
				out = append(out, Violation{
					Rule:   "wake-not-early",
					Detail: fmt.Sprintf("%s woke at tick %d, due at %d", e.Proc, ticks, e.Arg),
					Seq:    e.Seq,
				})
			}
		}
	}
	if woken != requested {
		out = append(out, Violation{
			Rule:   "wake-eventually",
			Detail: fmt.Sprintf("%d sleepers requested, %d woke", requested, woken),
		})
	}
	return out
}
