package problems

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/trace"
)

// The bounded buffer is the paper's test case for *local state*
// information (footnote 2): whether the buffer is full or empty is
// information the unsynchronized resource has anyway.

// OpDeposit and OpRemove are the buffer's operation names in traces.
const (
	OpDeposit = "deposit"
	OpRemove  = "remove"
)

// BoundedBufferSpec is the bounded buffer's synchronization scheme.
func BoundedBufferSpec() core.Scheme {
	return core.Scheme{
		Name: NameBoundedBuffer,
		Constraints: []core.Constraint{
			{
				ID:   "buffer-exclusion",
				Kind: core.Exclusion,
				Uses: []core.InfoType{core.SyncState},
				Desc: "if an operation is in progress then exclude all operations",
			},
			{
				ID:   "buffer-no-overflow",
				Kind: core.Exclusion,
				Uses: []core.InfoType{core.LocalState},
				Desc: "if the buffer is full then exclude depositors",
			},
			{
				ID:   "buffer-no-underflow",
				Kind: core.Exclusion,
				Uses: []core.InfoType{core.LocalState},
				Desc: "if the buffer is empty then exclude removers",
			},
		},
	}
}

// BoundedBuffer is the resource interface a solution implements. The
// solution owns the buffer storage (its local state); body must be
// invoked exactly once, at the point where the operation logically
// executes on the buffer, with whatever exclusion the scheme requires in
// force.
type BoundedBuffer interface {
	// Deposit stores item; body is called at the deposit point.
	Deposit(p *kernel.Proc, item int64, body func())
	// Remove takes the oldest item; body is called at the removal point
	// with the removed item.
	Remove(p *kernel.Proc, body func(item int64))
	// Cap reports the buffer capacity the solution was built with.
	Cap() int
}

// BBConfig parameterizes the bounded-buffer workload.
type BBConfig struct {
	Producers        int
	Consumers        int
	ItemsPerProducer int
	// WorkYields stretches each operation body with yields, creating
	// opportunities for interleaving (and for oracles to catch overlap).
	WorkYields int
}

// TotalItems reports the number of items the workload transfers.
func (c BBConfig) TotalItems() int { return c.Producers * c.ItemsPerProducer }

// SpawnBoundedBuffer spawns the workload processes against bb on k,
// recording into r; the caller runs the kernel. Total items must divide
// evenly among consumers.
func SpawnBoundedBuffer(k kernel.Kernel, bb BoundedBuffer, r *trace.Recorder, cfg BBConfig) error {
	total := cfg.TotalItems()
	if cfg.Consumers <= 0 || total%cfg.Consumers != 0 {
		return fmt.Errorf("problems: %d items do not divide among %d consumers", total, cfg.Consumers)
	}
	perConsumer := total / cfg.Consumers

	for pi := 0; pi < cfg.Producers; pi++ {
		base := int64(pi+1) * 1_000_000
		k.Spawn("producer", func(p *kernel.Proc) {
			for i := 0; i < cfg.ItemsPerProducer; i++ {
				item := base + int64(i)
				r.Request(p, OpDeposit, item)
				bb.Deposit(p, item, func() {
					r.Enter(p, OpDeposit, item)
					for y := 0; y < cfg.WorkYields; y++ {
						p.Yield()
					}
					r.Exit(p, OpDeposit, item)
				})
			}
		})
	}
	for ci := 0; ci < cfg.Consumers; ci++ {
		k.Spawn("consumer", func(p *kernel.Proc) {
			for i := 0; i < perConsumer; i++ {
				r.Request(p, OpRemove, trace.NoArg)
				bb.Remove(p, func(item int64) {
					r.Enter(p, OpRemove, item)
					for y := 0; y < cfg.WorkYields; y++ {
						p.Yield()
					}
					r.Exit(p, OpRemove, item)
				})
			}
		})
	}
	return nil
}

// DriveBoundedBuffer spawns the workload via SpawnBoundedBuffer and returns the kernel's
// verdict from running it to completion.
func DriveBoundedBuffer(k kernel.Kernel, bb BoundedBuffer, r *trace.Recorder, cfg BBConfig) error {
	if err := SpawnBoundedBuffer(k, bb, r, cfg); err != nil {
		return err
	}
	return k.Run()
}

// CheckBoundedBuffer judges a bounded-buffer trace against the scheme.
// expectedItems is the total the workload should transfer (0 skips the
// completeness check).
func CheckBoundedBuffer(tr trace.Trace, capacity int, expectedItems int) []Violation {
	ivs, vs := requireIntervals(tr)
	if vs != nil {
		return vs
	}
	var out []Violation

	// buffer-exclusion: no two operation executions overlap.
	out = append(out, overlapViolations("buffer-exclusion", ivs,
		func(a, b string) bool { return false })...)

	// Occupancy bounds: walk in sequence order.
	occ := 0
	for _, e := range tr {
		switch {
		case e.Kind == trace.KindEnter && e.Op == OpDeposit:
			if occ >= capacity {
				out = append(out, Violation{
					Rule:   "buffer-no-overflow",
					Detail: fmt.Sprintf("deposit enters with occupancy %d of %d", occ, capacity),
					Seq:    e.Seq,
				})
			}
		case e.Kind == trace.KindExit && e.Op == OpDeposit:
			occ++
		case e.Kind == trace.KindEnter && e.Op == OpRemove:
			if occ <= 0 {
				out = append(out, Violation{
					Rule:   "buffer-no-underflow",
					Detail: "remove enters with empty buffer",
					Seq:    e.Seq,
				})
			}
		case e.Kind == trace.KindExit && e.Op == OpRemove:
			occ--
		}
	}

	// Item integrity: every deposited item removed exactly once.
	deposited := map[int64]int{}
	removed := map[int64]int{}
	nDep, nRem := 0, 0
	for _, iv := range ivs {
		if !iv.Started() {
			// A request-only interval never transferred an item.
			continue
		}
		switch iv.Op {
		case OpDeposit:
			deposited[iv.Arg]++
			nDep++
		case OpRemove:
			removed[iv.Arg]++
			nRem++
		}
	}
	for item, n := range removed {
		if deposited[item] != n {
			out = append(out, Violation{
				Rule:   "item-integrity",
				Detail: fmt.Sprintf("item %d removed %d times but deposited %d times", item, n, deposited[item]),
			})
		}
	}
	if expectedItems > 0 && (nDep != expectedItems || nRem != expectedItems) {
		out = append(out, Violation{
			Rule:   "completeness",
			Detail: fmt.Sprintf("deposits=%d removes=%d, want %d each", nDep, nRem, expectedItems),
		})
	}
	return out
}
