package problems

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/trace"
)

// The disk-head scheduler is a footnote-2 test case for *request
// parameter* information: the order of service is determined by the track
// number passed with each request. The reference policy is Hoare's [13]
// elevator (SCAN): the head sweeps upward serving the nearest pending
// track above it, reverses at the top, and sweeps down.

// OpSeek is the scheduler's operation name in traces; the track is its
// argument.
const OpSeek = "seek"

// DiskSpec is the disk-head scheduler's scheme.
func DiskSpec() core.Scheme {
	return core.Scheme{
		Name: NameDisk,
		Constraints: []core.Constraint{
			{
				ID:   "disk-exclusion",
				Kind: core.Exclusion,
				Uses: []core.InfoType{core.SyncState},
				Desc: "if a transfer is in progress then exclude all requests",
			},
			{
				ID:   "scan-order",
				Kind: core.Priority,
				Uses: []core.InfoType{core.RequestParams, core.SyncState},
				Desc: "if A's track is next in the current sweep then A has priority (elevator rule)",
			},
		},
	}
}

// Disk is the scheduler interface: body runs while the head is positioned
// at track, exclusively.
type Disk interface {
	Seek(p *kernel.Proc, track int64, body func())
}

// DiskRequest is one workload arrival: after Delay yields (from workload
// start, measured on the issuing process), request the given track.
type DiskRequest struct {
	Track int64
	Delay int
}

// DiskConfig parameterizes the disk workload: one process per request,
// staggered by Delay yields so the pending set builds up in a controlled
// way on the simulated kernel.
type DiskConfig struct {
	Requests   []DiskRequest
	WorkYields int // transfer length
}

// SpawnDisk spawns the workload processes against d on k, recording
// into r; the caller runs the kernel.
func SpawnDisk(k kernel.Kernel, d Disk, r *trace.Recorder, cfg DiskConfig) error {
	for _, req := range cfg.Requests {
		req := req
		k.Spawn("io", func(p *kernel.Proc) {
			for y := 0; y < req.Delay; y++ {
				p.Yield()
			}
			r.Request(p, OpSeek, req.Track)
			d.Seek(p, req.Track, func() {
				r.Enter(p, OpSeek, req.Track)
				for y := 0; y < cfg.WorkYields; y++ {
					p.Yield()
				}
				r.Exit(p, OpSeek, req.Track)
			})
		})
	}
	return nil
}

// DriveDisk spawns the workload via SpawnDisk and returns the kernel's
// verdict from running it to completion.
func DriveDisk(k kernel.Kernel, d Disk, r *trace.Recorder, cfg DiskConfig) error {
	if err := SpawnDisk(k, d, r, cfg); err != nil {
		return err
	}
	return k.Run()
}

// ScanReference simulates the elevator policy over a request schedule:
// given (requestSeq, track) pairs in arrival order and the service
// durations implied by the trace, it is used by tests to produce expected
// orders for fully pre-loaded pending sets.
//
// For a pending set all present before service begins, SCAN from
// initialHead moving up serves: ascending tracks >= head, then descending
// tracks < head.
func ScanReference(initialHead int64, tracks []int64) []int64 {
	up := make([]int64, 0, len(tracks))
	down := make([]int64, 0, len(tracks))
	for _, t := range tracks {
		if t >= initialHead {
			up = append(up, t)
		} else {
			down = append(down, t)
		}
	}
	sort.Slice(up, func(i, j int) bool { return up[i] < up[j] })
	sort.Slice(down, func(i, j int) bool { return down[i] > down[j] })
	return append(up, down...)
}

// SeekDistance sums head movement over a service order starting at head.
func SeekDistance(initialHead int64, order []int64) int64 {
	head := initialHead
	var total int64
	for _, t := range order {
		d := t - head
		if d < 0 {
			d = -d
		}
		total += d
		head = t
	}
	return total
}

// CheckDisk judges a disk trace. Exclusion is always checked. When
// checkScan is true (deterministic traces), the service order is checked
// against the elevator rule: at each admission, the chosen track must be
// the SCAN-correct next track among the requests pending at the decision
// point. Requests that arrive between the previous operation's completion
// and this admission are treated as optionally visible (either decision
// is accepted), which makes the check robust to decision-point jitter.
func CheckDisk(tr trace.Trace, initialHead int64, checkScan bool) []Violation {
	ivs, vs := requireIntervals(tr)
	if vs != nil {
		return vs
	}
	var out []Violation
	out = append(out, overlapViolations("disk-exclusion", ivs,
		func(a, b string) bool { return false })...)
	if !checkScan || len(ivs) == 0 {
		return out
	}

	// Service order = interval order (already by EnterSeq).
	head := initialHead
	dirUp := true
	prevExit := int64(0)
	served := map[int]bool{} // index into ivs
	for si, cur := range ivs {
		if !cur.Started() {
			// A request-only interval was never served; it stays pending
			// for the decisions above but is not a service step itself.
			continue
		}
		// Pending sets at the two candidate decision points. The strict
		// point is where the scheduler actually decided: the previous
		// completion for a busy disk, or the served request's own arrival
		// for an idle disk (an idle scheduler serves an arrival at once).
		decision := prevExit
		if cur.RequestSeq > decision {
			decision = cur.RequestSeq
		}
		var strict, loose []int64 // tracks (excluding cur) pending
		for i, iv := range ivs {
			if served[i] || i == si {
				continue
			}
			if iv.RequestSeq != 0 && iv.RequestSeq < decision {
				strict = append(strict, iv.Arg)
			}
			if iv.RequestSeq != 0 && iv.RequestSeq < cur.EnterSeq {
				loose = append(loose, iv.Arg)
			}
		}
		okStrict := scanAccepts(head, dirUp, cur.Arg, strict)
		okLoose := scanAccepts(head, dirUp, cur.Arg, loose)
		if !okStrict && !okLoose {
			out = append(out, Violation{
				Rule: "scan-order",
				Detail: fmt.Sprintf("served track %d from head %d (dir up=%v) with pending %v",
					cur.Arg, head, dirUp, loose),
				Seq: cur.EnterSeq,
			})
		}
		// Advance oracle state by the actual choice.
		if cur.Arg > head {
			dirUp = true
		} else if cur.Arg < head {
			dirUp = false
		}
		head = cur.Arg
		served[si] = true
		prevExit = cur.ExitSeq
	}
	return out
}

// scanAccepts reports whether serving track next is consistent with the
// elevator rule given head position, direction, and the other pending
// tracks. With an empty pending set any choice is legal (the request
// arrived while the head was idle).
func scanAccepts(head int64, dirUp bool, track int64, pending []int64) bool {
	if len(pending) == 0 {
		return true
	}
	expected := scanNext(head, dirUp, append([]int64{track}, pending...))
	return expected == track
}

// scanNext picks the elevator-correct next track: the nearest pending
// track in the current direction (inclusive of the head position), else
// the nearest in the reverse direction.
func scanNext(head int64, dirUp bool, pending []int64) int64 {
	var bestFwd, bestRev int64
	haveFwd, haveRev := false, false
	for _, t := range pending {
		if dirUp {
			if t >= head && (!haveFwd || t < bestFwd) {
				bestFwd, haveFwd = t, true
			}
			if t < head && (!haveRev || t > bestRev) {
				bestRev, haveRev = t, true
			}
		} else {
			if t <= head && (!haveFwd || t > bestFwd) {
				bestFwd, haveFwd = t, true
			}
			if t > head && (!haveRev || t < bestRev) {
				bestRev, haveRev = t, true
			}
		}
	}
	if haveFwd {
		return bestFwd
	}
	return bestRev
}
