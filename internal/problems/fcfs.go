package problems

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/trace"
)

// The FCFS resource is the paper's test case for *request time*
// information (footnote 2): the only priority rule is arrival order.

// OpUse is the allocator's single operation name in traces.
const OpUse = "use"

// FCFSSpec is the first-come-first-served allocator's scheme.
func FCFSSpec() core.Scheme {
	return core.Scheme{
		Name: NameFCFS,
		Constraints: []core.Constraint{
			{
				ID:   "resource-exclusion",
				Kind: core.Exclusion,
				Uses: []core.InfoType{core.SyncState},
				Desc: "if a process is using the resource then exclude all others",
			},
			{
				ID:   "fcfs-order",
				Kind: core.Priority,
				Uses: []core.InfoType{core.RequestTime},
				Desc: "if A requested before B then A has priority over B",
			},
		},
	}
}

// Resource is the FCFS allocator interface: one operation, served
// strictly in arrival order.
type Resource interface {
	// Use runs body with exclusive use of the resource.
	Use(p *kernel.Proc, body func())
}

// FCFSConfig parameterizes the allocator workload.
type FCFSConfig struct {
	Processes  int
	Rounds     int
	WorkYields int
	// GapYields inserts yields between a process's rounds so arrivals
	// interleave rather than batch.
	GapYields int
}

// SpawnFCFS spawns the workload processes against res on k, recording
// into r; the caller runs the kernel.
func SpawnFCFS(k kernel.Kernel, res Resource, r *trace.Recorder, cfg FCFSConfig) error {
	for i := 0; i < cfg.Processes; i++ {
		k.Spawn("user", func(p *kernel.Proc) {
			for j := 0; j < cfg.Rounds; j++ {
				r.Request(p, OpUse, trace.NoArg)
				res.Use(p, func() {
					r.Enter(p, OpUse, trace.NoArg)
					for y := 0; y < cfg.WorkYields; y++ {
						p.Yield()
					}
					r.Exit(p, OpUse, trace.NoArg)
				})
				for y := 0; y < cfg.GapYields; y++ {
					p.Yield()
				}
			}
		})
	}
	return nil
}

// DriveFCFS spawns the workload via SpawnFCFS and returns the kernel's
// verdict from running it to completion.
func DriveFCFS(k kernel.Kernel, res Resource, r *trace.Recorder, cfg FCFSConfig) error {
	if err := SpawnFCFS(k, res, r, cfg); err != nil {
		return err
	}
	return k.Run()
}

// CheckFCFS judges an allocator trace: exclusive use, admitted strictly in
// request order.
//
// The order check is exact and therefore meaningful on deterministic
// (SimKernel) traces, where nothing can reorder a request between its
// recording and its arrival at the mechanism; real-kernel runs should be
// judged on exclusion only (pass checkOrder=false).
func CheckFCFS(tr trace.Trace, checkOrder bool) []Violation {
	ivs, vs := requireIntervals(tr)
	if vs != nil {
		return vs
	}
	var out []Violation
	out = append(out, overlapViolations("resource-exclusion", ivs,
		func(a, b string) bool { return false })...)

	if checkOrder {
		for _, iv := range ivs {
			if iv.RequestSeq == 0 {
				out = append(out, Violation{Rule: "instrumentation",
					Detail: fmt.Sprintf("%s has no request event", iv), Seq: iv.EnterSeq})
			}
		}
		// An admission out of request order counts only if a release
		// happened while the earlier request was waiting (see the
		// release-window discussion in rw.go).
		out = append(out, orderInversions("fcfs-order", ivs, releaseSeqs(tr, OpUse))...)
	}
	return out
}
