package problems

import (
	"fmt"

	"repro/internal/trace"
)

// Streaming oracles. The batch oracles (CheckReadersPriority and friends)
// judge a completed trace; exploration runs hundreds of thousands of
// schedules through them, and a violating run keeps executing — and
// copying its whole trace — long after the violation is already in the
// history. A StreamChecker observes events as they are recorded, so the
// exploration engine can stop a violating run at the first violation
// (kernel.SimKernel.Stop) with the partial trace as evidence.
//
// A streaming checker must agree with its batch oracle on complete
// traces: same violations at the same sequence numbers (details may be
// phrased differently). Both views charge admissions against favored
// requests that never got admitted — the streaming checker as the events
// arrive, the batch oracle via the request-only intervals that interval
// reconstruction emits for blocked-forever waiters — so early exit loses
// no findings on truncated traces. TestStreamMatchesBatch pins the
// agreement.

// StreamChecker observes a trace event by event, in sequence order, and
// reports violations as soon as they are observable. Reset returns the
// checker to its initial state for reuse across runs.
type StreamChecker interface {
	Observe(e trace.Event) []Violation
	Reset()
}

// IncrementalOracle couples a problem's batch oracle with a streaming
// refinement: Check judges completed traces (the explore.Oracle shape);
// New builds a fresh per-run StreamChecker enabling early exit.
type IncrementalOracle struct {
	Check func(tr trace.Trace) []Violation
	New   func() StreamChecker
}

// IncrementalOracleFor returns the streaming oracle for problems that
// have one: the readers/writers-priority pair the schedule explorer
// hunts. The second result is false for problems without a streaming
// refinement (their batch oracle remains the only judge).
func IncrementalOracleFor(problem string) (IncrementalOracle, bool) {
	switch problem {
	case NameReadersPriority:
		return IncrementalOracle{
			Check: CheckReadersPriority,
			New: func() StreamChecker {
				return newOvertakingStream(OpRead, OpWrite, "readers-priority")
			},
		}, true
	case NameWritersPriority:
		return IncrementalOracle{
			Check: CheckWritersPriority,
			New: func() StreamChecker {
				return newOvertakingStream(OpWrite, OpRead, "writers-priority")
			},
		}, true
	}
	return IncrementalOracle{}, false
}

// pendingReq is one favored request awaiting admission.
type pendingReq struct {
	procID int
	proc   string
	reqSeq int64
}

// overtakingStream is the streaming form of checkNoOvertaking: a loser
// admission is a violation exactly when some favored request is still
// waiting and a release (any read/write exit) has occurred since that
// request — the same release-window rule the batch oracle applies,
// evaluated at the loser's Enter event instead of over reconstructed
// intervals.
type overtakingStream struct {
	favored, loser, rule string

	pending  []pendingReq // favored requests not yet admitted, FIFO
	lastExit int64        // highest release (exit) seq seen so far
}

func newOvertakingStream(favored, loser, rule string) *overtakingStream {
	return &overtakingStream{favored: favored, loser: loser, rule: rule}
}

// Reset implements StreamChecker.
func (s *overtakingStream) Reset() {
	s.pending = s.pending[:0]
	s.lastExit = 0
}

// Observe implements StreamChecker.
func (s *overtakingStream) Observe(e trace.Event) []Violation {
	switch e.Kind {
	case trace.KindRequest:
		if e.Op == s.favored {
			s.pending = append(s.pending, pendingReq{procID: e.ProcID, proc: e.Proc, reqSeq: e.Seq})
		}
		return nil
	case trace.KindExit:
		// Any exit of either operation is a release point at which the
		// mechanism makes an admission decision (cf. releaseSeqs).
		if e.Op == OpRead || e.Op == OpWrite {
			s.lastExit = e.Seq
		}
		return nil
	case trace.KindEnter:
		if e.Op == s.favored {
			// Admitted: its request is no longer waiting. Per-process
			// requests are FIFO (one outstanding request at a time), so
			// the first match is the right one.
			for i, p := range s.pending {
				if p.procID == e.ProcID {
					s.pending = append(s.pending[:i], s.pending[i+1:]...)
					break
				}
			}
			return nil
		}
		if e.Op != s.loser {
			return nil
		}
		var out []Violation
		for _, p := range s.pending {
			if s.lastExit > p.reqSeq {
				out = append(out, Violation{
					Rule: s.rule,
					Detail: fmt.Sprintf("%s %s admitted while %s %s was waiting (requested @%d)",
						e.Proc, e.Op, p.proc, s.favored, p.reqSeq),
					Seq: e.Seq,
				})
			}
		}
		return out
	}
	return nil
}
