package problems

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/trace"
)

// The one-slot buffer is Campbell and Habermann's [7] example and the
// footnote-2 test case for *history* information: whether a get may
// proceed depends on whether a put has already been executed — a fact
// about completed operations, not about processes currently inside the
// resource.

// OpPut and OpGet are the slot's operation names in traces.
const (
	OpPut = "put"
	OpGet = "get"
)

// OneSlotSpec is the one-slot buffer's scheme.
func OneSlotSpec() core.Scheme {
	return core.Scheme{
		Name: NameOneSlot,
		Constraints: []core.Constraint{
			{
				ID:   "slot-alternation",
				Kind: core.Exclusion,
				Uses: []core.InfoType{core.History},
				Desc: "if the last completed operation was not a put then exclude gets; if it was a put then exclude puts (operations alternate, beginning with put)",
			},
		},
	}
}

// OneSlot is the buffer interface: Put stores into the single slot, Get
// empties it. The solution owns the slot storage.
type OneSlot interface {
	Put(p *kernel.Proc, item int64, body func())
	Get(p *kernel.Proc, body func(item int64))
}

// OneSlotConfig parameterizes the workload.
type OneSlotConfig struct {
	Producers        int
	Consumers        int
	ItemsPerProducer int
}

// TotalItems reports the number of items the workload transfers.
func (c OneSlotConfig) TotalItems() int { return c.Producers * c.ItemsPerProducer }

// SpawnOneSlot spawns the workload processes against s on k, recording
// into r; the caller runs the kernel.
func SpawnOneSlot(k kernel.Kernel, s OneSlot, r *trace.Recorder, cfg OneSlotConfig) error {
	total := cfg.TotalItems()
	if cfg.Consumers <= 0 || total%cfg.Consumers != 0 {
		return fmt.Errorf("problems: %d items do not divide among %d consumers", total, cfg.Consumers)
	}
	perConsumer := total / cfg.Consumers
	for pi := 0; pi < cfg.Producers; pi++ {
		base := int64(pi+1) * 1_000_000
		k.Spawn("producer", func(p *kernel.Proc) {
			for i := 0; i < cfg.ItemsPerProducer; i++ {
				item := base + int64(i)
				r.Request(p, OpPut, item)
				s.Put(p, item, func() {
					r.Enter(p, OpPut, item)
					r.Exit(p, OpPut, item)
				})
			}
		})
	}
	for ci := 0; ci < cfg.Consumers; ci++ {
		k.Spawn("consumer", func(p *kernel.Proc) {
			for i := 0; i < perConsumer; i++ {
				r.Request(p, OpGet, trace.NoArg)
				s.Get(p, func(item int64) {
					r.Enter(p, OpGet, item)
					r.Exit(p, OpGet, item)
				})
			}
		})
	}
	return nil
}

// DriveOneSlot spawns the workload via SpawnOneSlot and returns the kernel's
// verdict from running it to completion.
func DriveOneSlot(k kernel.Kernel, s OneSlot, r *trace.Recorder, cfg OneSlotConfig) error {
	if err := SpawnOneSlot(k, s, r, cfg); err != nil {
		return err
	}
	return k.Run()
}

// CheckOneSlot judges a one-slot trace: puts and gets strictly alternate
// beginning with a put, no executions overlap, and each get returns the
// value of the immediately preceding put. expectedItems 0 skips the
// completeness check.
func CheckOneSlot(tr trace.Trace, expectedItems int) []Violation {
	ivs, vs := requireIntervals(tr)
	if vs != nil {
		return vs
	}
	var out []Violation
	out = append(out, overlapViolations("slot-alternation", ivs,
		func(a, b string) bool { return false })...)

	wantPut := true
	var lastItem int64
	puts, gets := 0, 0
	for _, iv := range ivs {
		if !iv.Started() {
			// A request-only interval never executed; it neither advances
			// the alternation nor consumes an item.
			continue
		}
		switch iv.Op {
		case OpPut:
			puts++
			if !wantPut {
				out = append(out, Violation{
					Rule:   "slot-alternation",
					Detail: fmt.Sprintf("%s executed while the slot was full", iv),
					Seq:    iv.EnterSeq,
				})
				continue
			}
			lastItem = iv.Arg
			wantPut = false
		case OpGet:
			gets++
			if wantPut {
				out = append(out, Violation{
					Rule:   "slot-alternation",
					Detail: fmt.Sprintf("%s executed while the slot was empty", iv),
					Seq:    iv.EnterSeq,
				})
				continue
			}
			if iv.Arg != lastItem {
				out = append(out, Violation{
					Rule:   "item-integrity",
					Detail: fmt.Sprintf("%s returned %d, slot held %d", iv, iv.Arg, lastItem),
					Seq:    iv.EnterSeq,
				})
			}
			wantPut = true
		}
	}
	if expectedItems > 0 && (puts != expectedItems || gets != expectedItems) {
		out = append(out, Violation{
			Rule:   "completeness",
			Detail: fmt.Sprintf("puts=%d gets=%d, want %d each", puts, gets, expectedItems),
		})
	}
	return out
}
