// Package problems defines the paper's test-problem suite (footnote 2):
//
//	bounded buffer        — local state
//	first-come-first-served resource — request time
//	readers-priority database [8]    — request type + synchronization state
//	disk-head scheduler [13]         — request parameters
//	alarm clock [13]                 — request parameters
//	one-slot buffer [7]              — history
//
// plus the two readers–writers variants the independence analysis needs
// (§4.2): writers-priority and FCFS readers–writers.
//
// Each problem contributes three artifacts:
//
//   - a Spec: the synchronization scheme as core.Constraints with stable
//     IDs (variants share IDs exactly where the paper says the constraints
//     are shared);
//   - a resource interface plus a workload Driver that spawns processes on
//     a kernel and instruments every operation with Request/Enter/Exit
//     events — solutions receive a body callback and invoke it exactly
//     once while the operation is admitted, so the driver does all
//     recording and the oracle judges only observable history;
//   - an oracle Check function mapping a trace to Violations.
//
// Solutions (package solutions/...) implement the interfaces, one per
// mechanism; correctness is never asserted by the solution, only by the
// oracle over its traces.
package problems

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// Violation is one oracle finding.
type Violation struct {
	Rule   string // constraint ID or liveness rule violated
	Detail string
	Seq    int64 // trace position, 0 if not applicable
}

func (v Violation) String() string {
	if v.Seq != 0 {
		return fmt.Sprintf("%s @%d: %s", v.Rule, v.Seq, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Rule, v.Detail)
}

// Names of the problems, used as registry keys throughout.
const (
	NameBoundedBuffer   = "bounded-buffer"
	NameFCFS            = "fcfs"
	NameReadersPriority = "readers-priority"
	NameWritersPriority = "writers-priority"
	NameFCFSRW          = "fcfs-rw"
	NameDisk            = "disk-scheduler"
	NameAlarmClock      = "alarm-clock"
	NameOneSlot         = "one-slot-buffer"
)

// AllProblems lists the suite in the paper's order (footnote-2 set first,
// then the variant problems used by the independence analysis).
func AllProblems() []string {
	return []string{
		NameBoundedBuffer,
		NameFCFS,
		NameReadersPriority,
		NameDisk,
		NameAlarmClock,
		NameOneSlot,
		NameWritersPriority,
		NameFCFSRW,
	}
}

// SpecOf returns the scheme for a problem name.
func SpecOf(name string) (core.Scheme, bool) {
	switch name {
	case NameBoundedBuffer:
		return BoundedBufferSpec(), true
	case NameFCFS:
		return FCFSSpec(), true
	case NameReadersPriority:
		return ReadersPrioritySpec(), true
	case NameWritersPriority:
		return WritersPrioritySpec(), true
	case NameFCFSRW:
		return FCFSRWSpec(), true
	case NameDisk:
		return DiskSpec(), true
	case NameAlarmClock:
		return AlarmClockSpec(), true
	case NameOneSlot:
		return OneSlotSpec(), true
	}
	return core.Scheme{}, false
}

// requireIntervals reconstructs intervals or reports an instrumentation
// violation.
func requireIntervals(tr trace.Trace) ([]trace.Interval, []Violation) {
	ivs, err := tr.Intervals()
	if err != nil {
		return nil, []Violation{{Rule: "instrumentation", Detail: err.Error()}}
	}
	return ivs, nil
}

// seqEnd is a sequence number beyond any recorded event. A request-only
// interval (a waiter never admitted by trace end) is treated as entering
// at seqEnd by the priority oracles: it waited forever, so anything
// admitted after its request overtook it.
const seqEnd = int64(^uint64(0) >> 1)

// enterOrEnd is the admission point of iv for ordering comparisons, with
// never-admitted waiters pushed past the end of the trace.
func enterOrEnd(iv trace.Interval) int64 {
	if !iv.Started() {
		return seqEnd
	}
	return iv.EnterSeq
}

// releaseSeqs returns the ascending sequence numbers of Exit events for
// the given operations — the observable release points at which a
// mechanism makes an admission decision.
func releaseSeqs(tr trace.Trace, ops ...string) []int64 {
	var out []int64
	for _, e := range tr {
		if e.Kind != trace.KindExit {
			continue
		}
		for _, op := range ops {
			if e.Op == op {
				out = append(out, e.Seq) // trace is already in seq order
				break
			}
		}
	}
	return out
}

// anyInWindow reports whether some seq in the ascending slice lies
// strictly between lo and hi.
func anyInWindow(seqs []int64, lo, hi int64) bool {
	for _, s := range seqs {
		if s >= hi {
			return false
		}
		if s > lo {
			return true
		}
	}
	return false
}

// overlapViolations reports every overlapping pair (a, b) where the pair
// is forbidden by allowed: allowed(opA, opB) reports whether the two
// operations may execute concurrently.
func overlapViolations(rule string, ivs []trace.Interval, allowed func(a, b string) bool) []Violation {
	var out []Violation
	for _, pair := range trace.OverlappingPairs(ivs) {
		a, b := pair[0], pair[1]
		if allowed(a.Op, b.Op) {
			continue
		}
		out = append(out, Violation{
			Rule:   rule,
			Detail: fmt.Sprintf("%s overlaps %s", a, b),
			Seq:    b.EnterSeq,
		})
	}
	return out
}
