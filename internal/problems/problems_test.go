package problems

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// tb builds traces directly for oracle tests: each spec is
// "proc:kind:op:arg"; seq is the position.
func tb(t *testing.T, specs ...string) trace.Trace {
	t.Helper()
	var tr trace.Trace
	for i, s := range specs {
		parts := strings.Split(s, ":")
		if len(parts) < 3 {
			t.Fatalf("bad event spec %q", s)
		}
		var kind trace.Kind
		switch parts[1] {
		case "req":
			kind = trace.KindRequest
		case "in":
			kind = trace.KindEnter
		case "out":
			kind = trace.KindExit
		default:
			t.Fatalf("bad kind %q", parts[1])
		}
		var arg int64
		if len(parts) == 4 {
			fmt.Sscanf(parts[3], "%d", &arg)
		}
		var pid int
		fmt.Sscanf(parts[0], "%d", &pid)
		tr = append(tr, trace.Event{
			Seq:    int64(i + 1),
			ProcID: pid,
			Proc:   fmt.Sprintf("p#%d", pid),
			Kind:   kind,
			Op:     parts[2],
			Arg:    arg,
		})
	}
	return tr
}

func wantClean(t *testing.T, vs []Violation) {
	t.Helper()
	if len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

func wantRule(t *testing.T, vs []Violation, rule string) {
	t.Helper()
	for _, v := range vs {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("no %q violation in %v", rule, vs)
}

// ---- T4: the footnote-2 problem set covers all six information types ----

func TestProblemSetCoversAllInfoTypes(t *testing.T) {
	footnote2 := []string{
		NameBoundedBuffer, NameFCFS, NameReadersPriority,
		NameDisk, NameAlarmClock, NameOneSlot,
	}
	covered := map[core.InfoType]bool{}
	for _, name := range footnote2 {
		spec, ok := SpecOf(name)
		if !ok {
			t.Fatalf("no spec for %s", name)
		}
		for _, it := range spec.InfoTypes() {
			covered[it] = true
		}
	}
	for _, it := range core.AllInfoTypes() {
		if !covered[it] {
			t.Errorf("information type %q not covered by the test set", it)
		}
	}
}

func TestAllProblemsHaveSpecs(t *testing.T) {
	for _, name := range AllProblems() {
		spec, ok := SpecOf(name)
		if !ok {
			t.Errorf("SpecOf(%q) missing", name)
			continue
		}
		if spec.Name != name {
			t.Errorf("spec name %q != problem name %q", spec.Name, name)
		}
		if len(spec.Constraints) == 0 {
			t.Errorf("%s has no constraints", name)
		}
	}
	if _, ok := SpecOf("nonsense"); ok {
		t.Error("SpecOf accepted unknown problem")
	}
}

// The variants share exactly the exclusion constraint (the premise of the
// §4.2 independence analysis).
func TestRWVariantsShareExclusionConstraint(t *testing.T) {
	rp, wp, ff := ReadersPrioritySpec(), WritersPrioritySpec(), FCFSRWSpec()
	for _, pair := range [][2]core.Scheme{{rp, wp}, {rp, ff}, {wp, ff}} {
		shared := core.SharedConstraints(pair[0], pair[1])
		if fmt.Sprint(shared) != "[rw-exclusion]" {
			t.Fatalf("shared(%s, %s) = %v", pair[0].Name, pair[1].Name, shared)
		}
	}
}

// ---- bounded buffer oracle ----

func TestCheckBoundedBufferClean(t *testing.T) {
	tr := tb(t,
		"1:req:deposit:7", "1:in:deposit:7", "1:out:deposit:7",
		"2:req:remove", "2:in:remove:7", "2:out:remove:7",
	)
	wantClean(t, CheckBoundedBuffer(tr, 1, 1))
}

func TestCheckBoundedBufferOverflow(t *testing.T) {
	tr := tb(t,
		"1:in:deposit:1", "1:out:deposit:1",
		"1:in:deposit:2", "1:out:deposit:2", // capacity 1 exceeded
	)
	wantRule(t, CheckBoundedBuffer(tr, 1, 0), "buffer-no-overflow")
}

func TestCheckBoundedBufferUnderflow(t *testing.T) {
	tr := tb(t, "2:in:remove:0", "2:out:remove:0")
	wantRule(t, CheckBoundedBuffer(tr, 4, 0), "buffer-no-underflow")
}

func TestCheckBoundedBufferOverlap(t *testing.T) {
	tr := tb(t,
		"1:in:deposit:1", "2:in:remove:1", "1:out:deposit:1", "2:out:remove:1",
	)
	wantRule(t, CheckBoundedBuffer(tr, 4, 0), "buffer-exclusion")
}

func TestCheckBoundedBufferItemIntegrity(t *testing.T) {
	tr := tb(t,
		"1:in:deposit:1", "1:out:deposit:1",
		"2:in:remove:9", "2:out:remove:9", // removed an item never deposited
	)
	wantRule(t, CheckBoundedBuffer(tr, 4, 0), "item-integrity")
}

func TestCheckBoundedBufferCompleteness(t *testing.T) {
	tr := tb(t, "1:in:deposit:1", "1:out:deposit:1")
	wantRule(t, CheckBoundedBuffer(tr, 4, 5), "completeness")
}

// ---- FCFS oracle ----

func TestCheckFCFSClean(t *testing.T) {
	tr := tb(t,
		"1:req:use", "2:req:use",
		"1:in:use", "1:out:use",
		"2:in:use", "2:out:use",
	)
	wantClean(t, CheckFCFS(tr, true))
}

func TestCheckFCFSOrderViolation(t *testing.T) {
	// Process 3 holds the resource; 1 then 2 request; at 3's completion
	// (the release) process 2 is admitted past the waiting process 1.
	tr := tb(t,
		"3:in:use",
		"1:req:use", "2:req:use",
		"3:out:use",
		"2:in:use", "2:out:use", // overtakes process 1
		"1:in:use", "1:out:use",
	)
	wantRule(t, CheckFCFS(tr, true), "fcfs-order")
	// With order checking off (real-kernel mode) the trace is clean.
	wantClean(t, CheckFCFS(tr, false))
}

func TestCheckFCFSInversionWithoutReleaseAccepted(t *testing.T) {
	// Process 2 enters out of request order, but no release happened
	// while 1 waited: the grant predates 1's request (observable-grant
	// rule), so the trace is admissible.
	tr := tb(t,
		"1:req:use", "2:req:use",
		"2:in:use", "2:out:use",
		"1:in:use", "1:out:use",
	)
	wantClean(t, CheckFCFS(tr, true))
}

func TestCheckFCFSExclusionViolation(t *testing.T) {
	tr := tb(t,
		"1:req:use", "2:req:use",
		"1:in:use", "2:in:use", "1:out:use", "2:out:use",
	)
	wantRule(t, CheckFCFS(tr, false), "resource-exclusion")
}

// ---- readers-writers oracles ----

func TestCheckRWExclusionAllowsConcurrentReads(t *testing.T) {
	tr := tb(t,
		"1:in:read", "2:in:read", "1:out:read", "2:out:read",
	)
	wantClean(t, CheckRWExclusion(tr))
}

func TestCheckRWExclusionWriterOverlapsReader(t *testing.T) {
	tr := tb(t,
		"1:in:read", "2:in:write", "1:out:read", "2:out:write",
	)
	wantRule(t, CheckRWExclusion(tr), "rw-exclusion")
}

func TestCheckRWExclusionTwoWriters(t *testing.T) {
	tr := tb(t,
		"1:in:write", "2:in:write", "1:out:write", "2:out:write",
	)
	wantRule(t, CheckRWExclusion(tr), "rw-exclusion")
}

// The footnote-3 anomaly, as a trace: a reader requests while a write is
// in progress; a second writer is admitted before the waiting reader.
func TestCheckReadersPriorityCatchesFigure1Anomaly(t *testing.T) {
	tr := tb(t,
		"1:req:write", "1:in:write",
		"2:req:read", // reader arrives during the write
		"3:req:write",
		"1:out:write",
		"3:in:write", "3:out:write", // second writer overtakes the reader
		"2:in:read", "2:out:read",
	)
	wantRule(t, CheckReadersPriority(tr), "readers-priority")
	// The same trace is a *correct* writers-priority history.
	wantClean(t, CheckWritersPriority(tr))
}

func TestCheckReadersPriorityCleanHistory(t *testing.T) {
	tr := tb(t,
		"1:req:write", "1:in:write",
		"2:req:read",
		"3:req:write",
		"1:out:write",
		"2:in:read", "2:out:read", // reader admitted first: correct
		"3:in:write", "3:out:write",
	)
	wantClean(t, CheckReadersPriority(tr))
	// And that history violates writers-priority.
	wantRule(t, CheckWritersPriority(tr), "writers-priority")
}

func TestCheckFCFSRW(t *testing.T) {
	ordered := tb(t,
		"1:req:read", "2:req:write",
		"1:in:read", "1:out:read",
		"2:in:write", "2:out:write",
	)
	wantClean(t, CheckFCFSRW(ordered))
	// Process 3 is mid-write when 1 and 2 request; at its completion the
	// later-requested writer is admitted past the waiting reader.
	inverted := tb(t,
		"3:in:write",
		"1:req:read", "2:req:write",
		"3:out:write",
		"2:in:write", "2:out:write",
		"1:in:read", "1:out:read",
	)
	wantRule(t, CheckFCFSRW(inverted), "rw-fcfs")
}

func TestCheckRWComposite(t *testing.T) {
	tr := tb(t,
		"1:req:write", "1:in:write",
		"2:req:read",
		"3:req:write",
		"1:out:write",
		"3:in:write", "3:out:write",
		"2:in:read", "2:out:read",
	)
	vs := CheckRW(NameReadersPriority, tr, true)
	wantRule(t, vs, "readers-priority")
	wantClean(t, CheckRW(NameReadersPriority, tr, false))
	wantClean(t, CheckRW(NameWritersPriority, tr, true))
}

// ---- disk oracle ----

func TestScanReference(t *testing.T) {
	order := ScanReference(50, []int64{10, 60, 55, 90, 20})
	if fmt.Sprint(order) != "[55 60 90 20 10]" {
		t.Fatalf("order = %v", order)
	}
	if d := SeekDistance(50, order); d != 120 {
		t.Fatalf("distance = %d, want 120", d)
	}
}

func TestCheckDiskCleanScan(t *testing.T) {
	// All requests pending before service; SCAN from 50 moving up.
	tr := tb(t,
		"1:req:seek:55", "2:req:seek:10", "3:req:seek:60",
		"1:in:seek:55", "1:out:seek:55",
		"3:in:seek:60", "3:out:seek:60",
		"2:in:seek:10", "2:out:seek:10",
	)
	wantClean(t, CheckDisk(tr, 50, true))
}

func TestCheckDiskScanViolation(t *testing.T) {
	// Head at 50 moving up with 55 and 60 pending: serving 60 first
	// violates the elevator rule.
	tr := tb(t,
		"1:req:seek:55", "2:req:seek:60",
		"2:in:seek:60", "2:out:seek:60",
		"1:in:seek:55", "1:out:seek:55",
	)
	wantRule(t, CheckDisk(tr, 50, true), "scan-order")
	wantClean(t, CheckDisk(tr, 50, false)) // exclusion only
}

func TestCheckDiskExclusion(t *testing.T) {
	tr := tb(t,
		"1:req:seek:5", "2:req:seek:6",
		"1:in:seek:5", "2:in:seek:6", "1:out:seek:5", "2:out:seek:6",
	)
	wantRule(t, CheckDisk(tr, 0, false), "disk-exclusion")
}

func TestCheckDiskLateArrivalsAccepted(t *testing.T) {
	// A request arriving between the previous completion and the next
	// admission may or may not be seen by the scheduler; both services
	// must be accepted.
	tr := tb(t,
		"1:req:seek:55",
		"1:in:seek:55", "1:out:seek:55",
		"2:req:seek:70", // arrives after 55 completes
		"3:req:seek:60",
		"2:in:seek:70", "2:out:seek:70", // 70 before 60 is wrong only if 60 was visible
		"3:in:seek:60", "3:out:seek:60",
	)
	// 60 requested before 70's admission, so strict SCAN would pick 60;
	// but both were invisible at 55's completion, so the loose rule
	// accepts the trace.
	wantClean(t, CheckDisk(tr, 50, true))
}

// ---- alarm clock oracle ----

func TestCheckAlarmClockClean(t *testing.T) {
	tr := tb(t,
		"1:req:wakeme:2",
		"9:in:tick:1", "9:out:tick:1",
		"9:in:tick:2",
		"1:in:wakeme:2", "1:out:wakeme:2", // wakes during tick 2: fine
		"9:out:tick:2",
	)
	wantClean(t, CheckAlarmClock(tr))
}

func TestCheckAlarmClockEarlyWake(t *testing.T) {
	tr := tb(t,
		"1:req:wakeme:3",
		"9:in:tick:1", "9:out:tick:1",
		"1:in:wakeme:3", "1:out:wakeme:3", // woke two ticks early
		"9:in:tick:2", "9:out:tick:2",
		"9:in:tick:3", "9:out:tick:3",
	)
	wantRule(t, CheckAlarmClock(tr), "wake-not-early")
}

func TestCheckAlarmClockLostSleeper(t *testing.T) {
	tr := tb(t,
		"1:req:wakeme:1",
		"9:in:tick:1", "9:out:tick:1",
	)
	wantRule(t, CheckAlarmClock(tr), "wake-eventually")
}

// ---- one-slot oracle ----

func TestCheckOneSlotClean(t *testing.T) {
	tr := tb(t,
		"1:in:put:5", "1:out:put:5",
		"2:in:get:5", "2:out:get:5",
		"1:in:put:6", "1:out:put:6",
		"2:in:get:6", "2:out:get:6",
	)
	wantClean(t, CheckOneSlot(tr, 2))
}

func TestCheckOneSlotDoublePut(t *testing.T) {
	tr := tb(t,
		"1:in:put:5", "1:out:put:5",
		"1:in:put:6", "1:out:put:6",
	)
	wantRule(t, CheckOneSlot(tr, 0), "slot-alternation")
}

func TestCheckOneSlotGetFirst(t *testing.T) {
	tr := tb(t, "2:in:get:0", "2:out:get:0")
	wantRule(t, CheckOneSlot(tr, 0), "slot-alternation")
}

func TestCheckOneSlotWrongValue(t *testing.T) {
	tr := tb(t,
		"1:in:put:5", "1:out:put:5",
		"2:in:get:9", "2:out:get:9",
	)
	wantRule(t, CheckOneSlot(tr, 0), "item-integrity")
}

func TestCheckOneSlotCompleteness(t *testing.T) {
	tr := tb(t, "1:in:put:5", "1:out:put:5")
	wantRule(t, CheckOneSlot(tr, 3), "completeness")
}

func TestViolationString(t *testing.T) {
	v := Violation{Rule: "r", Detail: "d", Seq: 4}
	if v.String() != "r @4: d" {
		t.Fatalf("String = %q", v.String())
	}
	v2 := Violation{Rule: "r", Detail: "d"}
	if v2.String() != "r: d" {
		t.Fatalf("String = %q", v2.String())
	}
}
