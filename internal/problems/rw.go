package problems

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/trace"
)

// The readers–writers family is the paper's central example. The
// readers-priority database [8] is the footnote-2 test case for *request
// type* and *synchronization state*; the writers-priority and FCFS
// variants exist for the §4.2 independence analysis: all three share the
// "rw-exclusion" constraint and differ only in the priority constraint.

// OpRead and OpWrite are the database's operation names in traces.
const (
	OpRead  = "read"
	OpWrite = "write"
)

// rwExclusion is the constraint shared verbatim by all three variants.
func rwExclusion() core.Constraint {
	return core.Constraint{
		ID:   "rw-exclusion",
		Kind: core.Exclusion,
		Uses: []core.InfoType{core.RequestType, core.SyncState},
		Desc: "if a writer is active then exclude everyone; if a reader is active then exclude writers",
	}
}

// ReadersPrioritySpec: readers are admitted in preference to waiting
// writers (Courtois–Heymans–Parnas problem 1; writers may starve).
func ReadersPrioritySpec() core.Scheme {
	return core.Scheme{
		Name: NameReadersPriority,
		Constraints: []core.Constraint{
			rwExclusion(),
			{
				ID:   "readers-priority",
				Kind: core.Priority,
				Uses: []core.InfoType{core.RequestType},
				Desc: "if readers and writers are waiting then readers have priority over writers",
			},
		},
	}
}

// WritersPrioritySpec: writers are admitted in preference to waiting
// readers (CHP problem 2; readers may starve).
func WritersPrioritySpec() core.Scheme {
	return core.Scheme{
		Name: NameWritersPriority,
		Constraints: []core.Constraint{
			rwExclusion(),
			{
				ID:   "writers-priority",
				Kind: core.Priority,
				Uses: []core.InfoType{core.RequestType},
				Desc: "if readers and writers are waiting then writers have priority over readers",
			},
		},
	}
}

// FCFSRWSpec: requests are admitted strictly in arrival order (reads
// still share). Same exclusion constraint; the priority constraint uses
// request time instead of request type.
func FCFSRWSpec() core.Scheme {
	return core.Scheme{
		Name: NameFCFSRW,
		Constraints: []core.Constraint{
			rwExclusion(),
			{
				ID:   "rw-fcfs",
				Kind: core.Priority,
				Uses: []core.InfoType{core.RequestTime},
				Desc: "if A requested before B then A is admitted before B",
			},
		},
	}
}

// RWStore is the database interface a solution implements: body runs
// while the operation is admitted.
type RWStore interface {
	Read(p *kernel.Proc, body func())
	Write(p *kernel.Proc, body func())
}

// RWConfig parameterizes the readers–writers workload.
type RWConfig struct {
	Readers     int
	Writers     int
	Rounds      int // operations per process
	ReadYields  int // body length of a read
	WriteYields int // body length of a write
	GapYields   int // pause between a process's operations
}

// SpawnRW spawns the workload processes against db on k, recording
// into r; the caller runs the kernel.
func SpawnRW(k kernel.Kernel, db RWStore, r *trace.Recorder, cfg RWConfig) error {
	for i := 0; i < cfg.Readers; i++ {
		k.Spawn("reader", func(p *kernel.Proc) {
			for j := 0; j < cfg.Rounds; j++ {
				r.Request(p, OpRead, trace.NoArg)
				db.Read(p, func() {
					r.Enter(p, OpRead, trace.NoArg)
					for y := 0; y < cfg.ReadYields; y++ {
						p.Yield()
					}
					r.Exit(p, OpRead, trace.NoArg)
				})
				for y := 0; y < cfg.GapYields; y++ {
					p.Yield()
				}
			}
		})
	}
	for i := 0; i < cfg.Writers; i++ {
		k.Spawn("writer", func(p *kernel.Proc) {
			for j := 0; j < cfg.Rounds; j++ {
				r.Request(p, OpWrite, trace.NoArg)
				db.Write(p, func() {
					r.Enter(p, OpWrite, trace.NoArg)
					for y := 0; y < cfg.WriteYields; y++ {
						p.Yield()
					}
					r.Exit(p, OpWrite, trace.NoArg)
				})
				for y := 0; y < cfg.GapYields; y++ {
					p.Yield()
				}
			}
		})
	}
	return nil
}

// DriveRW spawns the workload via SpawnRW and returns the kernel's
// verdict from running it to completion.
func DriveRW(k kernel.Kernel, db RWStore, r *trace.Recorder, cfg RWConfig) error {
	if err := SpawnRW(k, db, r, cfg); err != nil {
		return err
	}
	return k.Run()
}

// CheckRWExclusion judges the shared exclusion constraint: writes overlap
// nothing; reads may overlap reads.
func CheckRWExclusion(tr trace.Trace) []Violation {
	ivs, vs := requireIntervals(tr)
	if vs != nil {
		return vs
	}
	return overlapViolations("rw-exclusion", ivs,
		func(a, b string) bool { return a == OpRead && b == OpRead })
}

// CheckReadersPriority judges the readers-priority constraint: once a
// reader has requested, no writer may be admitted before that reader.
// (A reader waits only for a writer that was *already admitted* when the
// reader arrived — the CHP problem-1 statement. The Figure-1 anomaly of
// the paper's footnote 3 is exactly a violation of this rule.)
//
// Exact on deterministic traces; see CheckFCFS for the real-kernel caveat.
func CheckReadersPriority(tr trace.Trace) []Violation {
	return checkNoOvertaking(tr, OpRead, OpWrite, "readers-priority")
}

// CheckWritersPriority is the symmetric judgement: once a writer has
// requested, no reader may be admitted before it.
func CheckWritersPriority(tr trace.Trace) []Violation {
	return checkNoOvertaking(tr, OpWrite, OpRead, "writers-priority")
}

// checkNoOvertaking reports every case where an interval of op loser was
// *granted* admission while a favored-op request was waiting.
//
// Grant moments are not directly observable in a trace: a mechanism hands
// the resource over at a release point, and the admitted process records
// its Enter only when it next runs. A loser Enter between the favored
// request and its admission is therefore a violation only if some release
// (an Exit of either operation) occurred after the favored process was
// already waiting — otherwise the grant decision predates the favored
// request and no priority rule was broken. The paper's footnote-3 anomaly
// satisfies this rule (the first writer's completion is the release at
// which the second writer is wrongly preferred).
func checkNoOvertaking(tr trace.Trace, favored, loser, rule string) []Violation {
	ivs, vs := requireIntervals(tr)
	if vs != nil {
		return vs
	}
	exits := releaseSeqs(tr, OpRead, OpWrite)
	var out []Violation
	for _, f := range ivs {
		if f.Op != favored || f.RequestSeq == 0 {
			continue
		}
		// A favored waiter never admitted by trace end (Started() false)
		// waited forever: every later loser admission overtook it.
		fEnter := enterOrEnd(f)
		for _, l := range ivs {
			if l.Op != loser || !l.Started() {
				continue
			}
			if l.EnterSeq > f.RequestSeq && l.EnterSeq < fEnter &&
				anyInWindow(exits, f.RequestSeq, l.EnterSeq) {
				admitted := fmt.Sprintf("admitted @%d", f.EnterSeq)
				if !f.Started() {
					admitted = "never admitted"
				}
				out = append(out, Violation{
					Rule: rule,
					Detail: fmt.Sprintf("%s admitted while %s was waiting (requested @%d, %s)",
						l, f, f.RequestSeq, admitted),
					Seq: l.EnterSeq,
				})
			}
		}
	}
	return out
}

// CheckFCFSRW judges the FCFS variant: admissions occur strictly in
// request order, subject to the same release-window rule as
// checkNoOvertaking (see there). Read–read pairs are exempt: two reads
// are admitted into a shared phase, so their relative Enter order is a
// recording artifact (a Hoare signal cascade grants a batch of readers
// FIFO but they record their Enters in scheduler order), not an
// admission decision.
func CheckFCFSRW(tr trace.Trace) []Violation {
	ivs, vs := requireIntervals(tr)
	if vs != nil {
		return vs
	}
	var out []Violation
	for _, iv := range ivs {
		if iv.RequestSeq == 0 {
			out = append(out, Violation{Rule: "instrumentation",
				Detail: fmt.Sprintf("%s has no request event", iv), Seq: iv.EnterSeq})
		}
	}
	exits := releaseSeqs(tr, OpRead, OpWrite)
	out = append(out, orderInversionsFiltered("rw-fcfs", ivs, exits,
		func(a, b trace.Interval) bool { return a.Op == OpRead && b.Op == OpRead })...)
	return out
}

// orderInversions reports pairs admitted out of request order where a
// release fell inside the waiting window.
func orderInversions(rule string, ivs []trace.Interval, exits []int64) []Violation {
	return orderInversionsFiltered(rule, ivs, exits, nil)
}

// orderInversionsFiltered is orderInversions with an exemption predicate:
// pairs for which exempt(waiting, jumped) is true are not reported.
func orderInversionsFiltered(rule string, ivs []trace.Interval, exits []int64, exempt func(a, b trace.Interval) bool) []Violation {
	var out []Violation
	for _, waiting := range ivs { // the earlier-requested interval
		if waiting.RequestSeq == 0 {
			continue
		}
		// A waiter never admitted by trace end waited forever; any later
		// request that did get in jumped it (see enterOrEnd).
		wEnter := enterOrEnd(waiting)
		for _, jumped := range ivs { // the one that entered first
			if jumped.RequestSeq == 0 || jumped.RequestSeq <= waiting.RequestSeq || !jumped.Started() {
				continue
			}
			if exempt != nil && exempt(waiting, jumped) {
				continue
			}
			if jumped.EnterSeq < wEnter &&
				anyInWindow(exits, waiting.RequestSeq, jumped.EnterSeq) {
				out = append(out, Violation{
					Rule:   rule,
					Detail: fmt.Sprintf("%s admitted before earlier request %s", jumped, waiting),
					Seq:    jumped.EnterSeq,
				})
			}
		}
	}
	return out
}

// CheckRW composes the exclusion check with the variant's priority check.
func CheckRW(problem string, tr trace.Trace, checkPriority bool) []Violation {
	out := CheckRWExclusion(tr)
	if !checkPriority {
		return out
	}
	switch problem {
	case NameReadersPriority:
		out = append(out, CheckReadersPriority(tr)...)
	case NameWritersPriority:
		out = append(out, CheckWritersPriority(tr)...)
	case NameFCFSRW:
		out = append(out, CheckFCFSRW(tr)...)
	}
	return out
}
