// Scalable semaphore variants.
//
// The baseline Semaphore in this package is strictly FIFO with direct
// hand-off: every V funnels through one mutex and the permit is handed to
// the longest waiter. That is exactly the selection assumption the paper
// makes (§5.1) — and exactly what collapses under a million clients, where
// the hand-off mutex becomes a global serialization point.
//
// Fast is the first rung of the complexity hierarchy above test-and-set: a
// fetch-and-add/CAS fast path that touches no lock when permits are
// available, paying for it with Mesa-style barging. A process that arrives
// while a woken waiter is still being rescheduled can steal the permit, so
// admission is NOT first-come-first-served. The sacrifice is deliberate
// and measured: package solutions/semscale runs Fast through the same
// oracles and load matrix as the baseline, and the FCFS criterion is the
// one it fails (see DESIGN.md §8).
package semaphore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/kernel"
)

// Fast is a counting semaphore with a lock-free acquire/release fast path
// and Mesa (barging) semantics: V publishes the permit by incrementing a
// shared counter before waking a waiter, so the woken process re-contends
// and can lose to a late arrival.
type Fast struct {
	count   atomic.Int64 // available permits; never negative
	mu      sync.Mutex   // guards waiters only — never held across Park
	waiters kernel.WaitList
}

// NewFast creates a fast-path semaphore with the given initial count.
// Negative initial counts are rejected, matching New.
func NewFast(initial int64) *Fast {
	if initial < 0 {
		panic(fmt.Sprintf("semaphore: negative initial count %d", initial))
	}
	s := &Fast{}
	s.count.Store(initial)
	return s
}

// tryAcquire claims one permit by CAS, without blocking or queueing.
func (s *Fast) tryAcquire() bool {
	for {
		c := s.count.Load()
		if c <= 0 {
			return false
		}
		if s.count.CompareAndSwap(c, c-1) {
			return true
		}
	}
}

// P decrements the semaphore, blocking while no permits are available.
//
// Unlike Semaphore.P there is no FIFO guarantee: the uncontended path is a
// single CAS that never consults the wait queue, so a late arrival barges
// past queued waiters. The slow path re-checks the counter after taking
// the queue lock — V increments the counter before it inspects the queue,
// so a process that observes zero permits under the lock is guaranteed to
// be seen (and woken) by the V that next publishes one.
func (s *Fast) P(p *kernel.Proc) {
	for {
		if s.tryAcquire() {
			return
		}
		s.mu.Lock()
		if s.tryAcquire() { // closes the publish/park window, see above
			s.mu.Unlock()
			return
		}
		s.waiters.Push(p)
		s.mu.Unlock()
		p.Park()
		// Mesa semantics: the wakeup is advisory, not a hand-off. The
		// permit that triggered it may already be gone; re-contend.
	}
}

// TryP attempts to decrement without blocking, reporting success. It
// barges: unlike Semaphore.TryP it can succeed while older processes are
// queued, which is precisely the FCFS sacrifice the variant makes.
func (s *Fast) TryP() bool {
	return s.tryAcquire()
}

// V increments the semaphore and wakes the longest waiter, if any. The
// increment is published before the queue is inspected, so a concurrent P
// either sees the permit on its locked re-check or is already queued and
// gets the wakeup.
func (s *Fast) V() {
	s.count.Add(1)
	s.mu.Lock()
	w := s.waiters.Pop()
	s.mu.Unlock()
	if w != nil {
		w.Unpark()
	}
}

// Value reports the current count; advisory, as for Semaphore.Value.
func (s *Fast) Value() int64 { return s.count.Load() }

// Waiting reports the number of processes blocked in P. A woken process
// that is re-contending is not counted until it re-queues.
func (s *Fast) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiters.Len()
}
