package semaphore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
)

// Model-based testing: a reference automaton of FIFO-semaphore semantics
// run against the implementation on random multi-process P/V programs
// under the FIFO SimKernel. The observable history is the sequence of
// completed operations (p<proc> when a P returns, v<proc> when a V is
// issued); the reference mirrors the kernel's run-until-block scheduling.

type semOp struct {
	isV bool
	sem int
}

type semProgram [][]semOp

// runSemReference simulates the programs against integer semaphores with
// FIFO queues and direct handoff, under run-until-block FIFO scheduling.
func runSemReference(progs semProgram, inits []int64) []string {
	n := len(progs)
	counts := append([]int64{}, inits...)
	queues := make([][]int, len(inits))
	ip := make([]int, n)
	pending := make([]string, n) // P completion to record on resume
	var ready []int
	var history []string
	for i := 0; i < n; i++ {
		if len(progs[i]) > 0 {
			ready = append(ready, i)
		}
	}
	steps := 0
	for len(ready) > 0 && steps < 100000 {
		steps++
		proc := ready[0]
		ready = ready[1:]
		if pending[proc] != "" {
			// The process resumes inside its P, which completes now —
			// matching the implementation, which records the completion
			// when the woken process next runs.
			history = append(history, pending[proc])
			pending[proc] = ""
		}
	running:
		for ip[proc] < len(progs[proc]) {
			op := progs[proc][ip[proc]]
			ip[proc]++
			if op.isV {
				history = append(history, fmt.Sprintf("v%d.%d", proc, op.sem))
				if len(queues[op.sem]) > 0 {
					// direct handoff to the longest waiter
					w := queues[op.sem][0]
					queues[op.sem] = queues[op.sem][1:]
					pending[w] = fmt.Sprintf("p%d.%d", w, op.sem)
					ready = append(ready, w)
				} else {
					counts[op.sem]++
				}
			} else {
				if counts[op.sem] > 0 && len(queues[op.sem]) == 0 {
					counts[op.sem]--
					history = append(history, fmt.Sprintf("p%d.%d", proc, op.sem))
				} else {
					queues[op.sem] = append(queues[op.sem], proc)
					break running // parked; resumes via handoff
				}
			}
		}
	}
	return history
}

// runSemImplementation executes the same programs on real Semaphores over
// the FIFO SimKernel.
func runSemImplementation(progs semProgram, inits []int64) ([]string, error) {
	k := kernel.NewSim()
	sems := make([]*Semaphore, len(inits))
	for i, init := range inits {
		sems[i] = New(init)
	}
	var history []string
	for proc := range progs {
		proc := proc
		prog := progs[proc]
		k.Spawn(fmt.Sprintf("p%d", proc), func(p *kernel.Proc) {
			for _, op := range prog {
				if op.isV {
					history = append(history, fmt.Sprintf("v%d.%d", proc, op.sem))
					sems[op.sem].V()
				} else {
					sems[op.sem].P(p)
					history = append(history, fmt.Sprintf("p%d.%d", proc, op.sem))
				}
			}
		})
	}
	err := k.Run()
	return history, err
}

// Property: reference and implementation produce identical completion
// histories on every random program; if the implementation deadlocks, the
// reference is stuck at the same point (same history prefix).
func TestPropertySemaphoreModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nProcs := 2 + rng.Intn(3)
		nSems := 1 + rng.Intn(2)
		inits := make([]int64, nSems)
		for i := range inits {
			inits[i] = int64(rng.Intn(2))
		}
		progs := make(semProgram, nProcs)
		for i := range progs {
			for o := 0; o < 1+rng.Intn(5); o++ {
				progs[i] = append(progs[i], semOp{
					isV: rng.Intn(2) == 0,
					sem: rng.Intn(nSems),
				})
			}
		}
		ref := runSemReference(progs, inits)
		impl, err := runSemImplementation(progs, inits)
		if fmt.Sprint(ref) != fmt.Sprint(impl) {
			t.Logf("progs: %+v inits: %v", progs, inits)
			t.Logf("ref:  %v", ref)
			t.Logf("impl: %v (err %v)", impl, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: under single-process execution, Value always equals
// initial + Vs - completed Ps, and TryP succeeds exactly when Value > 0
// with nobody waiting.
func TestPropertySingleProcessAccounting(t *testing.T) {
	f := func(ops []bool, init uint8) bool {
		s := New(int64(init % 8))
		want := int64(init % 8)
		ok := true
		k := kernel.NewSim()
		k.Spawn("p", func(p *kernel.Proc) {
			for _, isV := range ops {
				if isV {
					s.V()
					want++
				} else {
					got := s.TryP()
					if got != (want > 0) {
						ok = false
						return
					}
					if got {
						want--
					}
				}
				if s.Value() != want {
					ok = false
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
