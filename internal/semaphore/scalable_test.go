package semaphore

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/kernel"
)

func TestFastPWithPositiveCountDoesNotBlock(t *testing.T) {
	k := kernel.NewSim()
	s := NewFast(2)
	done := 0
	k.Spawn("p", func(p *kernel.Proc) {
		s.P(p)
		s.P(p)
		done = 2
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 || s.Value() != 0 {
		t.Fatalf("done=%d value=%d", done, s.Value())
	}
}

func TestFastPBlocksAtZeroUntilV(t *testing.T) {
	k := kernel.NewSim()
	s := NewFast(0)
	var order []string
	k.Spawn("waiter", func(p *kernel.Proc) {
		s.P(p)
		order = append(order, "acquired")
	})
	k.Spawn("releaser", func(p *kernel.Proc) {
		order = append(order, "releasing")
		s.V()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[releasing acquired]" {
		t.Fatalf("order = %v", order)
	}
}

// TestFastBargesPastWaiter pins the FCFS sacrifice: with the baseline
// Semaphore this schedule is impossible (V hands the permit directly to
// the queued waiter), but Fast publishes the permit to the shared counter,
// so a process that is already running takes it before the woken waiter is
// rescheduled.
func TestFastBargesPastWaiter(t *testing.T) {
	k := kernel.NewSim()
	s := NewFast(0)
	var order []string
	k.Spawn("waiter", func(p *kernel.Proc) {
		s.P(p)
		order = append(order, "waiter")
	})
	k.Spawn("barger", func(p *kernel.Proc) {
		s.V()  // wakes the waiter, but the permit sits in the counter
		s.P(p) // steals it before the waiter is rescheduled
		order = append(order, "barger")
		s.V() // hand it back so the waiter can finish
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[barger waiter]" {
		t.Fatalf("order = %v, want the barger to overtake the queued waiter", order)
	}
}

// TestTryPBargingContrast: the same one-waiter scenario through TryP. The
// baseline refuses the permit while a waiter is queued; the scalable
// variants barge.
func TestTryPBargingContrast(t *testing.T) {
	run := func(tryAfterV func(p *kernel.Proc) bool, v func(), spawnWaiter func(k kernel.Kernel)) bool {
		k := kernel.NewSim()
		spawnWaiter(k)
		got := false
		k.Spawn("barger", func(p *kernel.Proc) {
			v()
			got = tryAfterV(p)
			if !got {
				v() // baseline handed the permit to the waiter already
			} else {
				v() // return the stolen permit to unblock the waiter
			}
		})
		if err := k.Run(); err != nil {
			panic(err)
		}
		return got
	}

	base := New(0)
	if run(func(*kernel.Proc) bool { return base.TryP() }, base.V,
		func(k kernel.Kernel) { k.Spawn("w", func(p *kernel.Proc) { base.P(p) }) }) {
		t.Error("baseline TryP barged past a queued waiter")
	}
	fast := NewFast(0)
	if !run(func(*kernel.Proc) bool { return fast.TryP() }, fast.V,
		func(k kernel.Kernel) { k.Spawn("w", func(p *kernel.Proc) { fast.P(p) }) }) {
		t.Error("Fast.TryP failed to barge: permit was published but not stolen")
	}
	st := NewStriped(0, 4)
	if !run(func(p *kernel.Proc) bool { return st.TryP(p) }, st.V,
		func(k kernel.Kernel) { k.Spawn("w", func(p *kernel.Proc) { st.P(p) }) }) {
		t.Error("Striped.TryP failed to barge: permit was published but not stolen")
	}
}

// TestFastWakeOrderWithoutBargers: absent bargers the central queue still
// wakes longest-waiting first, so the variant degrades to FIFO when
// uncontested — the property the load matrix fairness columns quantify.
func TestFastWakeOrderWithoutBargers(t *testing.T) {
	k := kernel.NewSim()
	s := NewFast(0)
	var order []int
	for i := 1; i <= 5; i++ {
		k.Spawn("w", func(p *kernel.Proc) {
			s.P(p)
			order = append(order, p.ID())
		})
	}
	k.Spawn("releaser", func(p *kernel.Proc) {
		for i := 0; i < 5; i++ {
			s.V()
			p.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i+1 {
			t.Fatalf("wake order = %v, want FIFO by spawn order", order)
		}
	}
}

func TestStripedBasics(t *testing.T) {
	s := NewStriped(10, 3)
	if s.Stripes() != 4 {
		t.Fatalf("Stripes() = %d, want shard count rounded up to 4", s.Stripes())
	}
	if s.Value() != 10 {
		t.Fatalf("Value() = %d, want the initial count summed across shards", s.Value())
	}
	if DefaultStripes() < 1 || DefaultStripes()&(DefaultStripes()-1) != 0 {
		t.Fatalf("DefaultStripes() = %d, want a positive power of two", DefaultStripes())
	}
	k := kernel.NewSim()
	drained := 0
	k.Spawn("p", func(p *kernel.Proc) {
		for s.TryP(p) {
			drained++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if drained != 10 || s.Value() != 0 {
		t.Fatalf("drained %d permits (value %d), want all 10 via steal scan", drained, s.Value())
	}
}

func TestStripedPBlocksAtZeroUntilV(t *testing.T) {
	k := kernel.NewSim()
	s := NewStriped(0, 4)
	var order []string
	k.Spawn("waiter", func(p *kernel.Proc) {
		s.P(p)
		order = append(order, "acquired")
	})
	k.Spawn("releaser", func(p *kernel.Proc) {
		order = append(order, "releasing")
		s.V()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[releasing acquired]" {
		t.Fatalf("order = %v", order)
	}
}

func TestNegativeInitialPanicsScalable(t *testing.T) {
	for name, f := range map[string]func(){
		"fast":    func() { NewFast(-1) },
		"striped": func() { NewStriped(-1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: negative initial count accepted", name)
				}
			}()
			f()
		}()
	}
}

// TestScalableStressReal mirrors TestCountingSemaphoreStressReal for both
// variants: under the race detector, the pool limit must hold and every
// permit must be conserved (final Value == initial) despite barging.
func TestScalableStressReal(t *testing.T) {
	type sem interface {
		P(p *kernel.Proc)
		V()
		Value() int64
	}
	for name, mk := range map[string]func(int64) sem{
		"fast":    func(n int64) sem { return NewFast(n) },
		"striped": func(n int64) sem { return NewStriped(n, 4) },
	} {
		t.Run(name, func(t *testing.T) {
			k := kernel.NewReal(kernel.WithWatchdog(30 * time.Second))
			const limit = 3
			s := mk(limit)
			mu := NewMutex()
			inUse, maxUse := 0, 0
			for i := 0; i < 20; i++ {
				k.Spawn("user", func(p *kernel.Proc) {
					for j := 0; j < 50; j++ {
						s.P(p)
						mu.Lock(p)
						inUse++
						if inUse > maxUse {
							maxUse = inUse
						}
						mu.Unlock(p)
						p.Yield()
						mu.Lock(p)
						inUse--
						mu.Unlock(p)
						s.V()
					}
				})
			}
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if maxUse > limit {
				t.Fatalf("pool admitted %d concurrent users, limit %d", maxUse, limit)
			}
			if s.Value() != limit {
				t.Fatalf("final count = %d, want %d (permit leaked or conjured)", s.Value(), limit)
			}
		})
	}
}

// Property: single-process P/V interleavings keep Value exact for both
// variants, matching TestSemaphorePropertyCounting for the baseline.
func TestScalablePropertyCounting(t *testing.T) {
	f := func(initial uint8, ops []bool, stripes uint8) bool {
		init := int64(initial % 16)
		fast := NewFast(init)
		striped := NewStriped(init, int(stripes%8))
		count := init
		ok := true
		k := kernel.NewSim()
		k.Spawn("p", func(p *kernel.Proc) {
			for _, isV := range ops {
				if isV {
					fast.V()
					striped.V()
					count++
				} else if count > 0 {
					fast.P(p)
					striped.P(p)
					count--
				}
				if fast.Value() != count || striped.Value() != count {
					ok = false
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFastUncontendedPV(b *testing.B) {
	k := kernel.NewReal()
	s := NewFast(1)
	done := make(chan struct{})
	k.Spawn("p", func(p *kernel.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.P(p)
			s.V()
		}
		close(done)
	})
	<-done
}

func BenchmarkStripedUncontendedPV(b *testing.B) {
	k := kernel.NewReal()
	s := NewStriped(1, 0)
	done := make(chan struct{})
	k.Spawn("p", func(p *kernel.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.P(p)
			s.V()
		}
		close(done)
	})
	<-done
}
