// Package semaphore implements Dijkstra counting and binary semaphores on
// the kernel substrate.
//
// Semaphores are the paper's "low level" baseline (§1: "the need for a
// mechanism that is higher level than semaphores … is widely recognized")
// and double as the compile target for path expressions: the
// Campbell–Habermann translation realizes every path operator with P/V
// prologues and epilogues (package pathexpr).
//
// The implementation is strictly FIFO and barge-free: V hands the permit
// directly to the longest-waiting process instead of incrementing the
// count, so a late arrival can never overtake a waiter. Longest-waiting
// wakeup is the selection assumption the paper makes in §5.1, and the FIFO
// guarantee is what makes semaphore-built schedulers (and the path
// expression translation) deterministic under the simulated kernel.
package semaphore

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
)

// Semaphore is a FIFO counting semaphore.
type Semaphore struct {
	mu      sync.Mutex
	count   int64
	waiters kernel.WaitList
}

// New creates a semaphore with the given initial count. Negative initial
// counts are rejected (they have no Dijkstra interpretation).
func New(initial int64) *Semaphore {
	if initial < 0 {
		panic(fmt.Sprintf("semaphore: negative initial count %d", initial))
	}
	return &Semaphore{count: initial}
}

// P (Dijkstra's "proberen"; acquire) decrements the semaphore, blocking the
// calling process while the count is zero. Waiters are admitted strictly
// first-come-first-served.
func (s *Semaphore) P(p *kernel.Proc) {
	s.mu.Lock()
	if s.count > 0 && s.waiters.Len() == 0 {
		s.count--
		s.mu.Unlock()
		return
	}
	s.waiters.Push(p)
	s.mu.Unlock()
	p.Park()
}

// TryP attempts to decrement without blocking, reporting success. It
// respects FIFO fairness: it fails if any process is already waiting, even
// when the count is positive.
func (s *Semaphore) TryP() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count > 0 && s.waiters.Len() == 0 {
		s.count--
		return true
	}
	return false
}

// V (Dijkstra's "verhogen"; release) increments the semaphore. If a
// process is waiting, the permit is handed directly to the
// longest-waiting one, which resumes inside its P.
func (s *Semaphore) V() {
	s.mu.Lock()
	if w := s.waiters.Pop(); w != nil {
		s.mu.Unlock()
		w.Unpark()
		return
	}
	s.count++
	s.mu.Unlock()
}

// Value reports the current count. It is advisory: by the time the caller
// inspects it, it may have changed. Tests use it on the simulated kernel,
// where it is exact between scheduling points.
func (s *Semaphore) Value() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Waiting reports the number of processes blocked in P.
func (s *Semaphore) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiters.Len()
}

// Mutex is a binary semaphore with owner tracking: a convenience for
// mutual-exclusion use, with misuse detection that a bare Semaphore cannot
// provide (unlocking a mutex one does not hold panics).
type Mutex struct {
	mu      sync.Mutex
	owner   *kernel.Proc
	waiters kernel.WaitList
}

// NewMutex creates an unlocked Mutex.
func NewMutex() *Mutex { return &Mutex{} }

// Lock acquires the mutex FIFO, blocking while another process holds it.
// Recursive locking panics (the 1979 constructs are all non-reentrant).
func (m *Mutex) Lock(p *kernel.Proc) {
	m.mu.Lock()
	if m.owner == nil {
		m.owner = p
		m.mu.Unlock()
		return
	}
	if m.owner == p {
		m.mu.Unlock()
		panic(fmt.Sprintf("semaphore: recursive Lock by %s", p))
	}
	m.waiters.Push(p)
	m.mu.Unlock()
	p.Park()
}

// Unlock releases the mutex, handing it to the longest waiter if any.
// Unlocking a mutex not held by p panics.
func (m *Mutex) Unlock(p *kernel.Proc) {
	m.mu.Lock()
	if m.owner != p {
		owner := m.owner
		m.mu.Unlock()
		panic(fmt.Sprintf("semaphore: %s unlocking mutex owned by %v", p, owner))
	}
	next := m.waiters.Pop()
	m.owner = next
	m.mu.Unlock()
	if next != nil {
		next.Unpark()
	}
}

// Holder reports the current owner (nil when unlocked); advisory, exact
// only under the simulated kernel.
func (m *Mutex) Holder() *kernel.Proc {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.owner
}
