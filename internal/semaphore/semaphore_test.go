package semaphore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/kernel"
)

func TestPWithPositiveCountDoesNotBlock(t *testing.T) {
	k := kernel.NewSim()
	s := New(2)
	done := 0
	k.Spawn("p", func(p *kernel.Proc) {
		s.P(p)
		s.P(p)
		done = 2
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 || s.Value() != 0 {
		t.Fatalf("done=%d value=%d", done, s.Value())
	}
}

func TestPBlocksAtZeroUntilV(t *testing.T) {
	k := kernel.NewSim()
	s := New(0)
	var order []string
	k.Spawn("waiter", func(p *kernel.Proc) {
		s.P(p)
		order = append(order, "acquired")
	})
	k.Spawn("releaser", func(p *kernel.Proc) {
		order = append(order, "releasing")
		s.V()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[releasing acquired]" {
		t.Fatalf("order = %v", order)
	}
}

func TestFIFOAdmissionOrder(t *testing.T) {
	k := kernel.NewSim()
	s := New(0)
	var order []int
	for i := 1; i <= 5; i++ {
		k.Spawn("w", func(p *kernel.Proc) {
			s.P(p)
			order = append(order, p.ID())
		})
	}
	k.Spawn("releaser", func(p *kernel.Proc) {
		for i := 0; i < 5; i++ {
			s.V()
			p.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i+1 {
			t.Fatalf("admission order = %v, want FIFO by spawn order", order)
		}
	}
}

func TestNoBargingPastWaiters(t *testing.T) {
	k := kernel.NewSim()
	s := New(0)
	var order []string
	k.Spawn("first", func(p *kernel.Proc) {
		s.P(p)
		order = append(order, "first")
	})
	k.Spawn("releaser", func(p *kernel.Proc) {
		s.V() // hands off directly to "first"
		// Spawn a late arrival; even though V happened, the permit was
		// handed to the waiter, so the late P must block until the next V.
		p.Kernel().Spawn("late", func(q *kernel.Proc) {
			s.P(q)
			order = append(order, "late")
		})
		p.Yield()
		s.V()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[first late]" {
		t.Fatalf("order = %v", order)
	}
}

func TestTryP(t *testing.T) {
	k := kernel.NewSim()
	s := New(1)
	k.Spawn("p", func(p *kernel.Proc) {
		if !s.TryP() {
			t.Error("TryP failed with count 1")
		}
		if s.TryP() {
			t.Error("TryP succeeded with count 0")
		}
		s.V()
		if !s.TryP() {
			t.Error("TryP failed after V")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTryPRespectsWaiters(t *testing.T) {
	k := kernel.NewSim()
	s := New(0)
	k.Spawn("waiter", func(p *kernel.Proc) { s.P(p) })
	k.Spawn("barger", func(p *kernel.Proc) {
		s.V() // permit handed to waiter, not to the count
		if s.TryP() {
			t.Error("TryP stole a handed-off permit")
		}
		s.V() // no waiters now? waiter consumed the first V... this V has no waiter yet
		// count is now 1, no waiters: TryP must succeed.
		if !s.TryP() {
			t.Error("TryP failed with positive count and no waiters")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeInitialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestDeadlockDetectedBySim(t *testing.T) {
	k := kernel.NewSim()
	s := New(0)
	k.Spawn("stuck", func(p *kernel.Proc) { s.P(p) })
	if err := k.Run(); !errors.Is(err, kernel.ErrDeadlock) {
		t.Fatalf("Run = %v, want deadlock", err)
	}
}

func TestMutexExclusionSim(t *testing.T) {
	k := kernel.NewSim(kernel.WithPolicy(kernel.Random(7)))
	m := NewMutex()
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *kernel.Proc) {
			for j := 0; j < 10; j++ {
				m.Lock(p)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Yield() // tempt another process to enter
				inside--
				m.Unlock(p)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max processes inside critical section = %d, want 1", maxInside)
	}
}

func TestMutexMisuse(t *testing.T) {
	k := kernel.NewSim()
	m := NewMutex()
	var recovered any
	k.Spawn("bad", func(p *kernel.Proc) {
		defer func() { recovered = recover() }()
		m.Unlock(p) // not held
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recovered == nil {
		t.Fatal("Unlock of unheld mutex did not panic")
	}

	k2 := kernel.NewSim()
	m2 := NewMutex()
	var recovered2 any
	k2.Spawn("rec", func(p *kernel.Proc) {
		defer func() { recovered2 = recover() }()
		m2.Lock(p)
		m2.Lock(p) // recursive
	})
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if recovered2 == nil {
		t.Fatal("recursive Lock did not panic")
	}
}

func TestMutexHolder(t *testing.T) {
	k := kernel.NewSim()
	m := NewMutex()
	k.Spawn("p", func(p *kernel.Proc) {
		if m.Holder() != nil {
			t.Error("fresh mutex has a holder")
		}
		m.Lock(p)
		if m.Holder() != p {
			t.Error("Holder != p after Lock")
		}
		m.Unlock(p)
		if m.Holder() != nil {
			t.Error("Holder != nil after Unlock")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// Real-kernel stress: counting semaphore as a bounded resource pool; with
// -race this doubles as a data-race check on the P/V fast paths.
func TestCountingSemaphoreStressReal(t *testing.T) {
	k := kernel.NewReal(kernel.WithWatchdog(30 * time.Second))
	const limit = 3
	s := New(limit)
	mu := NewMutex()
	inUse, maxUse := 0, 0
	for i := 0; i < 20; i++ {
		k.Spawn("user", func(p *kernel.Proc) {
			for j := 0; j < 50; j++ {
				s.P(p)
				mu.Lock(p)
				inUse++
				if inUse > maxUse {
					maxUse = inUse
				}
				mu.Unlock(p)
				p.Yield()
				mu.Lock(p)
				inUse--
				mu.Unlock(p)
				s.V()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxUse > limit {
		t.Fatalf("pool admitted %d concurrent users, limit %d", maxUse, limit)
	}
	if s.Value() != limit {
		t.Fatalf("final count = %d, want %d", s.Value(), limit)
	}
}

// Property: any interleaving of k.P and k.V that never over-releases keeps
// Value() == initial + Vs - Ps, and never goes negative, when run by a
// single process (no blocking involved).
func TestSemaphorePropertyCounting(t *testing.T) {
	f := func(initial uint8, ops []bool) bool {
		init := int64(initial % 16)
		s := New(init)
		count := init
		ok := true
		k := kernel.NewSim()
		k.Spawn("p", func(p *kernel.Proc) {
			for _, isV := range ops {
				if isV {
					s.V()
					count++
				} else if count > 0 {
					s.P(p)
					count--
				}
				if s.Value() != count {
					ok = false
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSemaphoreUncontendedPV(b *testing.B) {
	k := kernel.NewReal()
	s := New(1)
	done := make(chan struct{})
	k.Spawn("p", func(p *kernel.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.P(p)
			s.V()
		}
		close(done)
	})
	<-done
}

func BenchmarkSemaphoreContendedHandoff(b *testing.B) {
	k := kernel.NewReal(kernel.WithWatchdog(0))
	s := New(1)
	const procs = 4
	per := b.N/procs + 1
	b.ResetTimer()
	for i := 0; i < procs; i++ {
		k.Spawn("w", func(p *kernel.Proc) {
			for j := 0; j < per; j++ {
				s.P(p)
				s.V()
			}
		})
	}
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
