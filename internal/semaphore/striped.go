package semaphore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/kernel"
)

// stripe is one shard of a Striped semaphore's permit count, padded to a
// cache line so shards owned by different cores do not false-share.
type stripe struct {
	n atomic.Int64
	_ [56]byte
}

// Striped is a counting semaphore whose permit count is split across
// cache-line-padded shards. Each process has a home shard (hashed from its
// kernel ID), so uncontended P/V traffic from different processes lands on
// different cache lines instead of one global counter — the striping that
// "A Complexity-Based Hierarchy for Multiprocessor Synchronization" places
// above single-word fetch-and-add.
//
// What it gives up, and how: a permit freed on shard A is invisible to a
// fast-path P on shard B until B's steal scan reaches A, and waiters park
// in one central queue woken in Mesa style, so — like Fast — admission
// order is not FCFS, and "fairness" is only fairness among shards, not
// among processes. Those sacrificed Bloom criteria are measured, not
// asserted, by solutions/semscale and the load matrix.
//
// Liveness around the park/publish race uses a Dekker-style store-then-
// check protocol on seq-cst atomics: P announces itself in a waiter count
// before its final (locked) steal scan; V publishes its credit before
// checking the waiter count. Whichever order the two interleave in, at
// least one side observes the other, so a parked waiter always has a V
// responsible for waking it.
type Striped struct {
	shards  []stripe
	mask    uint64
	rot     atomic.Uint64 // V-side credit cursor: spreads frees across shards
	waiters atomic.Int64  // processes announced for / parked in the slow path
	mu      sync.Mutex    // guards queue only — never held across Park
	queue   kernel.WaitList
}

// DefaultStripes reports the shard count NewStriped uses when given
// shards <= 0: the smallest power of two covering GOMAXPROCS, capped at 16.
func DefaultStripes() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewStriped creates a striped semaphore with the given initial count
// spread round-robin across the shards. shards is rounded up to a power of
// two; shards <= 0 selects DefaultStripes. Negative initial counts are
// rejected, matching New.
func NewStriped(initial int64, shards int) *Striped {
	if initial < 0 {
		panic(fmt.Sprintf("semaphore: negative initial count %d", initial))
	}
	if shards <= 0 {
		shards = DefaultStripes()
	}
	p := 1
	for p < shards {
		p <<= 1
	}
	s := &Striped{shards: make([]stripe, p), mask: uint64(p - 1)}
	for i := int64(0); i < initial; i++ {
		s.shards[uint64(i)&s.mask].n.Add(1)
	}
	return s
}

// home hashes a process ID onto a shard (splitmix64 finalizer, so
// consecutive spawn-order IDs scatter).
func (s *Striped) home(p *kernel.Proc) uint64 {
	z := uint64(p.ID()) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return (z ^ (z >> 31)) & s.mask
}

// tryShard claims one permit from shard i by CAS.
func (s *Striped) tryShard(i uint64) bool {
	c := &s.shards[i].n
	for {
		v := c.Load()
		if v <= 0 {
			return false
		}
		if c.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// steal scans every shard starting at home, claiming the first free
// permit. It succeeds whenever the summed count is positive and no
// concurrent claimer beats it to every positive shard.
func (s *Striped) steal(home uint64) bool {
	for k := uint64(0); k <= s.mask; k++ {
		if s.tryShard((home + k) & s.mask) {
			return true
		}
	}
	return false
}

// P decrements the semaphore, blocking while no shard has a permit.
// The fast path touches only the caller's home shard; on miss it steals
// from the other shards before queueing centrally. Not FCFS — see the
// type comment.
func (s *Striped) P(p *kernel.Proc) {
	h := s.home(p)
	for {
		if s.tryShard(h) || s.steal(h) {
			return
		}
		s.mu.Lock()
		s.waiters.Add(1) // announce before the final scan (Dekker store)
		if s.steal(h) {  // final scan: sees any credit published before V's check
			s.waiters.Add(-1)
			s.mu.Unlock()
			return
		}
		s.queue.Push(p)
		s.mu.Unlock()
		p.Park()
		// Mesa wakeup: the popping V published a credit somewhere, but a
		// barger may have taken it already; re-contend from the top.
	}
}

// TryP attempts to decrement without blocking, reporting success. Like
// Fast.TryP it barges past queued waiters.
func (s *Striped) TryP(p *kernel.Proc) bool {
	h := s.home(p)
	return s.tryShard(h) || s.steal(h)
}

// V increments the semaphore on a rotating shard, then rescues a parked
// waiter if one is announced: the credit is published before the waiter
// count is checked (Dekker check), so V and a racing P cannot both miss
// each other. The wakeup is advisory — the woken process re-contends for
// the published credit and can lose it to a barger, in which case it
// re-parks and the barger's own V becomes responsible for the queue.
func (s *Striped) V() {
	i := s.rot.Add(1) & s.mask
	s.shards[i].n.Add(1)
	if s.waiters.Load() == 0 {
		return
	}
	s.mu.Lock()
	w := s.queue.Pop()
	if w != nil {
		s.waiters.Add(-1)
	}
	s.mu.Unlock()
	if w != nil {
		w.Unpark()
	}
}

// Value reports the summed count across shards. Advisory: the shards are
// read one at a time, so a concurrent P/V pair can make the sum transiently
// miss or double-see a permit. Exact between scheduling points on the
// simulated kernel.
func (s *Striped) Value() int64 {
	var sum int64
	for i := range s.shards {
		sum += s.shards[i].n.Load()
	}
	return sum
}

// Stripes reports the shard count.
func (s *Striped) Stripes() int { return len(s.shards) }

// Waiting reports the number of processes parked in (or committed to) the
// slow path.
func (s *Striped) Waiting() int {
	return int(s.waiters.Load())
}
