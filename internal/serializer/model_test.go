package serializer

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
)

// Model-based testing: a reference automaton of serializer possession —
// FIFO entry, guarded queues with head-only eligibility, longest-waiting
// selection across queues, automatic re-evaluation at every release — is
// checked against the implementation on random programs under the FIFO
// SimKernel. Guards are thresholds over a shared counter mutated inside
// possession; crowds are exercised by the unit and conformance suites.

type serOp struct {
	isEnq bool
	queue int
	thr   int // enqueue guard: counter >= thr
	delta int // bump: counter += delta
}

type serSection []serOp

type serProgram [][]serSection

// runSerReference mirrors Serializer's release policy (no crowds: rejoin
// is always empty, so eligible queue heads come first, then entrants).
func runSerReference(progs serProgram, nqueues int) []string {
	n := len(progs)
	counter := 0
	possessor := -1
	var entry []int
	type waiter struct {
		proc  int
		thr   int
		stamp int
	}
	queues := make([][]waiter, nqueues)
	stamp := 0

	section := make([]int, n) // current section index
	ip := make([]int, n)      // instruction pointer
	pendingDeq := make([]string, n)
	atEntry := make([]bool, n)
	var ready []int
	var history []string
	for i := 0; i < n; i++ {
		if len(progs[i]) > 0 {
			ready = append(ready, i)
			atEntry[i] = true
		}
	}

	// release picks the next possessor: the longest-waiting eligible
	// queue head (reporting which queue it came from), then the entry
	// queue (fromQ = -1). The caller makes the choice ready and, for a
	// queue waiter, sets its pending dequeue record.
	release := func() (int, int) {
		best := -1
		bestStamp := 0
		bestQ := -1
		for qi := range queues {
			if len(queues[qi]) == 0 {
				continue
			}
			h := queues[qi][0]
			if counter >= h.thr && (best < 0 || h.stamp < bestStamp) {
				best, bestStamp, bestQ = h.proc, h.stamp, qi
			}
		}
		if best >= 0 {
			queues[bestQ] = queues[bestQ][1:]
			possessor = best
			return best, bestQ
		}
		if len(entry) > 0 {
			next := entry[0]
			entry = entry[1:]
			possessor = next
			return next, -1
		}
		possessor = -1
		return -1, -1
	}
	handoff := func(self int) {
		next, fromQ := release()
		if next < 0 || next == self {
			return
		}
		if fromQ >= 0 {
			pendingDeq[next] = fmt.Sprintf("q%d.%d", next, fromQ)
		}
		ready = append(ready, next)
	}

	steps := 0
	for len(ready) > 0 && steps < 100000 {
		steps++
		proc := ready[0]
		ready = ready[1:]
		if pendingDeq[proc] != "" {
			history = append(history, pendingDeq[proc])
			pendingDeq[proc] = ""
		}
	running:
		for {
			if atEntry[proc] {
				if possessor == -1 {
					possessor = proc
					atEntry[proc] = false
				} else if possessor == proc {
					atEntry[proc] = false
				} else {
					entry = append(entry, proc)
					break running
				}
			}
			sec := progs[proc][section[proc]]
			if ip[proc] >= len(sec) {
				// Exit.
				history = append(history, fmt.Sprintf("x%d", proc))
				handoff(proc)
				section[proc]++
				ip[proc] = 0
				if section[proc] >= len(progs[proc]) {
					break running
				}
				atEntry[proc] = true
				continue
			}
			op := sec[ip[proc]]
			ip[proc]++
			if !op.isEnq {
				counter += op.delta
				history = append(history, fmt.Sprintf("b%d:%d", proc, counter))
				continue
			}
			// Enqueue: push self, release; if the release picks us, we
			// continue at once (the implementation's Park consumes the
			// self-granted permit without a scheduler switch).
			stamp++
			queues[op.queue] = append(queues[op.queue], waiter{proc, op.thr, stamp})
			next, fromQ := release()
			if next == proc {
				history = append(history, fmt.Sprintf("q%d.%d", proc, op.queue))
				continue
			}
			if next >= 0 {
				if fromQ >= 0 {
					pendingDeq[next] = fmt.Sprintf("q%d.%d", next, fromQ)
				}
				ready = append(ready, next)
			}
			break running // parked until admitted
		}
	}
	return history
}

// runSerImplementation executes the same programs on a real Serializer.
func runSerImplementation(progs serProgram, nqueues int) ([]string, error) {
	k := kernel.NewSim()
	s := New("model")
	queues := make([]*Queue, nqueues)
	for i := range queues {
		queues[i] = s.NewQueue(fmt.Sprintf("q%d", i))
	}
	counter := 0
	var history []string
	for proc := range progs {
		proc := proc
		prog := progs[proc]
		k.Spawn(fmt.Sprintf("p%d", proc), func(p *kernel.Proc) {
			for _, sec := range prog {
				s.Enter(p)
				for _, op := range sec {
					if op.isEnq {
						op := op
						queues[op.queue].Enqueue(p, func() bool { return counter >= op.thr })
						history = append(history, fmt.Sprintf("q%d.%d", proc, op.queue))
					} else {
						counter += op.delta
						history = append(history, fmt.Sprintf("b%d:%d", proc, counter))
					}
				}
				history = append(history, fmt.Sprintf("x%d", proc))
				s.Exit(p)
			}
		})
	}
	err := k.Run()
	return history, err
}

// Property: reference and implementation produce identical histories.
func TestPropertySerializerModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nProcs := 2 + rng.Intn(3)
		nqueues := 1 + rng.Intn(2)
		progs := make(serProgram, nProcs)
		for i := range progs {
			sections := 1 + rng.Intn(2)
			for sIdx := 0; sIdx < sections; sIdx++ {
				var sec serSection
				for o := 0; o < 1+rng.Intn(3); o++ {
					if rng.Intn(2) == 0 {
						sec = append(sec, serOp{isEnq: true, queue: rng.Intn(nqueues), thr: rng.Intn(4)})
					} else {
						sec = append(sec, serOp{delta: rng.Intn(3)})
					}
				}
				progs[i] = append(progs[i], sec)
			}
		}
		ref := runSerReference(progs, nqueues)
		impl, err := runSerImplementation(progs, nqueues)
		if fmt.Sprint(ref) != fmt.Sprint(impl) {
			t.Logf("progs: %+v", progs)
			t.Logf("ref:  %v", ref)
			t.Logf("impl: %v (err %v)", impl, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
