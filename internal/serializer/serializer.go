// Package serializer implements Atkinson–Hewitt serializers
// ("Synchronization and Proof Techniques for Serializers", IEEE TSE 5(1),
// 1979 — the paper's reference [3]) on the kernel substrate.
//
// A serializer is a monitor-like envelope with three differences the paper
// analyzes (§5.2):
//
//   - Automatic signalling. There is no Signal. A process waits with
//     Enqueue(queue, guarantee); whenever possession of the serializer is
//     released, the guarantees of queue heads are re-evaluated and an
//     eligible waiter resumes. Waiting processes therefore cannot be
//     "forgotten", and no total signalling order must be designed.
//   - Queues hold processes waiting for *different* conditions in one FIFO
//     line: order information and type information are carried separately
//     (the guarantee distinguishes the type), which is how serializers
//     dissolve the monitor's request-type/request-time queue conflict.
//     Only the head of a queue is eligible: a later waiter never overtakes
//     the head, which is exactly what makes single-queue FCFS schemes
//     exact.
//   - Crowds. JoinCrowd releases possession for the duration of the
//     resource access and records membership, so "how many processes are
//     currently reading" is mechanism state (synchronization state
//     information, §3 category 4) rather than hand-maintained counts, and
//     the resource runs *outside* the serializer — resolving the nested
//     monitor call problem structurally.
//
// Possession transfer on release is deterministic: crowd leavers wanting
// to rejoin resume first (they only need to record their departure), then
// the longest-waiting eligible queue head, then entrants FIFO.
package serializer

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
)

// Serializer is one serializer instance.
type Serializer struct {
	name string

	mu        sync.Mutex
	possessor *kernel.Proc
	entry     kernel.WaitList
	rejoin    kernel.WaitList
	queues    []*Queue
	stamp     int64
}

// New creates a serializer. The name appears in misuse panics.
func New(name string) *Serializer { return &Serializer{name: name} }

// Name reports the serializer's name.
func (s *Serializer) Name() string { return s.name }

// Enter gains possession of the serializer, FIFO among entrants. Waiting
// queue heads whose guarantees hold are admitted in preference to
// entrants at every release, so entrants cannot barge past woken waiters.
func (s *Serializer) Enter(p *kernel.Proc) {
	s.mu.Lock()
	// Invariant: when the serializer is idle, no queue head is eligible —
	// guaranteed state changes only under possession, and every release
	// admits eligible heads before going idle. So an idle serializer can
	// be entered directly.
	if s.possessor == nil {
		s.possessor = p
		s.mu.Unlock()
		return
	}
	if s.possessor == p {
		s.mu.Unlock()
		panic(fmt.Sprintf("serializer %s: %s re-entered", s.name, p))
	}
	s.entry.Push(p)
	s.mu.Unlock()
	p.Park()
}

// Exit releases possession.
func (s *Serializer) Exit(p *kernel.Proc) {
	s.mu.Lock()
	s.checkPossessorLocked(p, "Exit")
	next := s.releaseLocked()
	s.mu.Unlock()
	if next != nil {
		next.Unpark()
	}
}

// Do runs body with possession held; Enter/Exit with panic safety.
func (s *Serializer) Do(p *kernel.Proc, body func()) {
	s.Enter(p)
	defer s.Exit(p)
	body()
}

func (s *Serializer) checkPossessorLocked(p *kernel.Proc, op string) {
	if s.possessor != p {
		panic(fmt.Sprintf("serializer %s: %s called %s while possessor is %v", s.name, p, op, s.possessor))
	}
}

// releaseLocked selects the next possessor: rejoining crowd leavers, then
// the longest-waiting eligible queue head, then entrants. Returns the
// process to unpark, or nil if the serializer goes idle.
func (s *Serializer) releaseLocked() *kernel.Proc {
	if w := s.rejoin.Pop(); w != nil {
		s.possessor = w
		return w
	}
	var bestQ *Queue
	var bestStamp int64
	for _, q := range s.queues {
		if !q.headEligibleLocked() {
			continue
		}
		st := q.headStampLocked()
		if bestQ == nil || st < bestStamp {
			bestQ, bestStamp = q, st
		}
	}
	if bestQ != nil {
		w, _ := bestQ.waiters.PopTagged()
		s.possessor = w
		return w
	}
	if w := s.entry.Pop(); w != nil {
		s.possessor = w
		return w
	}
	s.possessor = nil
	return nil
}

// Possessed reports whether some process holds the serializer; advisory
// under the real kernel.
func (s *Serializer) Possessed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.possessor != nil
}

// Queue is a FIFO wait queue inside a serializer. Waiters may wait for
// different guarantees; only the head is ever eligible to resume.
type Queue struct {
	s       *Serializer
	name    string
	waiters kernel.WaitList // tags: *queueTag
}

type queueTag struct {
	guarantee func() bool
	stamp     int64
}

// NewQueue creates a queue on s.
func (s *Serializer) NewQueue(name string) *Queue {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := &Queue{s: s, name: name}
	s.queues = append(s.queues, q)
	return q
}

// Name reports the queue's name.
func (q *Queue) Name() string { return q.name }

func (q *Queue) headEligibleLocked() bool {
	tag := q.waiters.PeekTag()
	if tag == nil {
		return false
	}
	return tag.(*queueTag).guarantee()
}

func (q *Queue) headStampLocked() int64 {
	return q.waiters.PeekTag().(*queueTag).stamp
}

// Enqueue releases possession and blocks until the caller is at the head
// of q and guarantee holds; it then resumes holding possession again. The
// guarantee is evaluated only under the serializer's state lock at
// possession-release points, so it must depend only on state protected by
// the serializer (including queue and crowd states) and must not call
// locking accessors such as Len or Size (use the *G helpers).
func (q *Queue) Enqueue(p *kernel.Proc, guarantee func() bool) {
	q.EnqueueRank(p, 0, guarantee)
}

// EnqueueRank is Enqueue into a priority queue: waiters are ordered by
// ascending rank (arrival order among equal ranks) and, as always, only
// the head is eligible. Priority queues are the extension Bloom notes was
// added to serializers to handle request-parameter information ("local
// variables and priority queues had to be added later", §5.2); the
// disk-head and alarm-clock solutions need them.
func (q *Queue) EnqueueRank(p *kernel.Proc, rank int64, guarantee func() bool) {
	s := q.s
	s.mu.Lock()
	s.checkPossessorLocked(p, "Enqueue("+q.name+")")
	s.stamp++
	q.waiters.PushTagged(p, rank, &queueTag{guarantee: guarantee, stamp: s.stamp})
	next := s.releaseLocked()
	s.mu.Unlock()
	if next != nil {
		next.Unpark()
	}
	p.Park()
	// We resume as possessor, dequeued, with guarantee true.
}

// Len reports the number of processes waiting in q.
func (q *Queue) Len() int {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	return q.waiters.Len()
}

// Empty reports whether q has no waiters.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// LenG returns a guarantee-safe closure reporting the queue length: it
// reads the waiter list without re-locking, for use inside guarantees
// (which already run under the serializer's lock). The readers-priority
// solution uses it to express "no reader is waiting".
func (q *Queue) LenG() func() int {
	return func() int { return q.waiters.Len() }
}

// Crowd records the set of processes currently accessing the resource
// outside the serializer.
type Crowd struct {
	s       *Serializer
	name    string
	members map[*kernel.Proc]bool
}

// NewCrowd creates a crowd on s.
func (s *Serializer) NewCrowd(name string) *Crowd {
	return &Crowd{s: s, name: name, members: make(map[*kernel.Proc]bool)}
}

// Name reports the crowd's name.
func (c *Crowd) Name() string { return c.name }

// Join executes body as a member of the crowd, with possession released
// for the duration — the serializer's join_crowd … leave_crowd bracket.
// The caller must hold possession; it holds it again when Join returns.
func (c *Crowd) Join(p *kernel.Proc, body func()) {
	s := c.s
	s.mu.Lock()
	s.checkPossessorLocked(p, "Join("+c.name+")")
	c.members[p] = true
	next := s.releaseLocked()
	s.mu.Unlock()
	if next != nil {
		next.Unpark()
	}

	defer func() {
		// leave_crowd: regain possession (rejoiners have priority), then
		// record departure so guarantees observe it at our next release.
		s.mu.Lock()
		if s.possessor == nil {
			// Same invariant as Enter: idle implies no eligible heads and
			// an empty rejoin list, so possession can be taken directly.
			s.possessor = p
			s.mu.Unlock()
		} else {
			s.rejoin.Push(p)
			s.mu.Unlock()
			p.Park()
		}
		s.mu.Lock()
		delete(c.members, p)
		s.mu.Unlock()
	}()
	body()
}

// Size reports the crowd's membership count.
func (c *Crowd) Size() int {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return len(c.members)
}

// Empty reports whether no process is in the crowd. It is the canonical
// serializer guarantee ("crowd.empty()").
func (c *Crowd) Empty() bool { return c.Size() == 0 }

// sizeLocked is Size without locking, for use inside guarantees (which run
// under the serializer's state lock).
func (c *Crowd) sizeLocked() int { return len(c.members) }

// EmptyG returns a guarantee closure usable inside Enqueue: it reads crowd
// state without re-locking (guarantees already run under the serializer's
// lock). Using Empty directly inside a guarantee would self-deadlock.
func (c *Crowd) EmptyG() func() bool {
	return func() bool { return c.sizeLocked() == 0 }
}

// SizeG returns a guarantee-safe closure reporting the crowd size.
func (c *Crowd) SizeG() func() int {
	return func() int { return c.sizeLocked() }
}
