package serializer

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/kernel"
)

func always() bool { return true }

func TestPossessionExclusion(t *testing.T) {
	k := kernel.NewSim(kernel.WithPolicy(kernel.Random(5)))
	s := New("s")
	inside, maxInside := 0, 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *kernel.Proc) {
			for j := 0; j < 6; j++ {
				s.Do(p, func() {
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					p.Yield()
					inside--
				})
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("maxInside = %d, want 1", maxInside)
	}
}

// Automatic signalling: an Enqueue waiter resumes as soon as a release
// makes its guarantee true — nobody ever signals.
func TestAutomaticSignalling(t *testing.T) {
	k := kernel.NewSim()
	s := New("s")
	q := s.NewQueue("q")
	ready := false
	var order []string
	k.Spawn("waiter", func(p *kernel.Proc) {
		s.Enter(p)
		q.Enqueue(p, func() bool { return ready })
		order = append(order, "resumed")
		s.Exit(p)
	})
	k.Spawn("setter", func(p *kernel.Proc) {
		s.Enter(p)
		ready = true
		order = append(order, "set")
		s.Exit(p) // release re-evaluates the waiter's guarantee
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[set resumed]" {
		t.Fatalf("order = %v", order)
	}
}

// Only the head of a queue is eligible: a later waiter with a true
// guarantee must not overtake a head with a false one. This head-blocking
// is what makes single-queue FCFS schemes exact (paper §5.2).
func TestQueueHeadBlocksFollowers(t *testing.T) {
	k := kernel.NewSim()
	s := New("s")
	q := s.NewQueue("q")
	headOK := false
	var order []string
	k.Spawn("head", func(p *kernel.Proc) {
		s.Enter(p)
		q.Enqueue(p, func() bool { return headOK })
		order = append(order, "head")
		s.Exit(p)
	})
	k.Spawn("follower", func(p *kernel.Proc) {
		s.Enter(p)
		q.Enqueue(p, always) // true guarantee, but behind head
		order = append(order, "follower")
		s.Exit(p)
	})
	k.Spawn("unblocker", func(p *kernel.Proc) {
		p.Yield()
		s.Enter(p)
		headOK = true
		s.Exit(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[head follower]" {
		t.Fatalf("order = %v, want head before follower", order)
	}
}

// Across queues, the longest-waiting eligible head resumes first.
func TestLongestWaitingHeadAcrossQueues(t *testing.T) {
	k := kernel.NewSim()
	s := New("s")
	q1 := s.NewQueue("q1")
	q2 := s.NewQueue("q2")
	go2 := false
	var order []string
	k.Spawn("first", func(p *kernel.Proc) {
		s.Enter(p)
		q1.Enqueue(p, func() bool { return go2 })
		order = append(order, "first")
		s.Exit(p)
	})
	k.Spawn("second", func(p *kernel.Proc) {
		s.Enter(p)
		q2.Enqueue(p, func() bool { return go2 })
		order = append(order, "second")
		s.Exit(p)
	})
	k.Spawn("release", func(p *kernel.Proc) {
		s.Enter(p)
		go2 = true
		s.Exit(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[first second]" {
		t.Fatalf("order = %v, want arrival order across queues", order)
	}
}

// Crowds: Join releases possession during the body, so crowd members run
// concurrently with serializer occupants and with each other.
func TestCrowdReleasesPossession(t *testing.T) {
	k := kernel.NewSim()
	s := New("s")
	c := s.NewCrowd("readers")
	var order []string
	k.Spawn("member", func(p *kernel.Proc) {
		s.Enter(p)
		c.Join(p, func() {
			order = append(order, "in-crowd")
			p.Yield() // another process takes the serializer meanwhile
			order = append(order, "crowd-done")
		})
		s.Exit(p)
	})
	k.Spawn("other", func(p *kernel.Proc) {
		// FIFO scheduling runs "member" first; it is inside the crowd
		// body (possession released) when we enter.
		s.Enter(p)
		order = append(order, "other-inside")
		s.Exit(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[in-crowd other-inside crowd-done]"
	if fmt.Sprint(order) != want {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestCrowdMembershipTracksJoiners(t *testing.T) {
	k := kernel.NewSim()
	s := New("s")
	c := s.NewCrowd("c")
	var sizes []int
	for i := 0; i < 3; i++ {
		k.Spawn("m", func(p *kernel.Proc) {
			s.Enter(p)
			c.Join(p, func() {
				sizes = append(sizes, c.Size())
				p.Yield()
			})
			s.Exit(p)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 0 {
		t.Fatalf("final crowd size = %d, want 0", c.Size())
	}
	max := 0
	for _, n := range sizes {
		if n > max {
			max = n
		}
	}
	if max < 2 {
		t.Fatalf("max observed crowd size = %d, want >= 2 (members should overlap)", max)
	}
}

// The canonical serializer pattern: writers wait for the crowd to empty.
func TestEmptyGuarantee(t *testing.T) {
	k := kernel.NewSim()
	s := New("s")
	readers := s.NewCrowd("readers")
	wq := s.NewQueue("writers")
	var order []string
	k.Spawn("reader", func(p *kernel.Proc) {
		s.Enter(p)
		readers.Join(p, func() {
			order = append(order, "read-start")
			p.Yield()
			p.Yield()
			order = append(order, "read-end")
		})
		s.Exit(p)
	})
	k.Spawn("writer", func(p *kernel.Proc) {
		s.Enter(p)
		wq.Enqueue(p, readers.EmptyG())
		order = append(order, "write")
		s.Exit(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[read-start read-end write]"
	if fmt.Sprint(order) != want {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestMisusePanics(t *testing.T) {
	cases := []struct {
		name string
		body func(s *Serializer, q *Queue, c *Crowd, p *kernel.Proc)
	}{
		{"exit-not-possessor", func(s *Serializer, q *Queue, c *Crowd, p *kernel.Proc) { s.Exit(p) }},
		{"enqueue-outside", func(s *Serializer, q *Queue, c *Crowd, p *kernel.Proc) { q.Enqueue(p, always) }},
		{"join-outside", func(s *Serializer, q *Queue, c *Crowd, p *kernel.Proc) { c.Join(p, func() {}) }},
		{"reenter", func(s *Serializer, q *Queue, c *Crowd, p *kernel.Proc) { s.Enter(p); s.Enter(p) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := kernel.NewSim()
			s := New("s")
			q := s.NewQueue("q")
			c := s.NewCrowd("c")
			var recovered any
			k.Spawn("bad", func(p *kernel.Proc) {
				defer func() { recovered = recover() }()
				tc.body(s, q, c, p)
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if recovered == nil {
				t.Fatal("misuse did not panic")
			}
		})
	}
}

func TestUnsatisfiableGuaranteeDeadlocks(t *testing.T) {
	k := kernel.NewSim()
	s := New("s")
	q := s.NewQueue("q")
	k.Spawn("stuck", func(p *kernel.Proc) {
		s.Enter(p)
		q.Enqueue(p, func() bool { return false })
	})
	if err := k.Run(); !errors.Is(err, kernel.ErrDeadlock) {
		t.Fatalf("Run = %v, want deadlock", err)
	}
}

func TestQueueLen(t *testing.T) {
	k := kernel.NewSim()
	s := New("s")
	q := s.NewQueue("q")
	k.Spawn("w", func(p *kernel.Proc) {
		s.Enter(p)
		// NOTE: guarantees run under the serializer's state lock; they
		// must not call locking accessors like q.Len() (use the *G
		// guarantee helpers for crowd state).
		q.Enqueue(p, func() bool { return false })
	})
	k.Spawn("check", func(p *kernel.Proc) {
		p.Yield()
		if q.Len() != 1 || q.Empty() {
			t.Errorf("Len = %d Empty = %v, want 1,false", q.Len(), q.Empty())
		}
	})
	err := k.Run()
	if !errors.Is(err, kernel.ErrDeadlock) {
		t.Fatalf("Run = %v, want deadlock (waiter intentionally stuck)", err)
	}
}

// Readers–writers through crowds on the real kernel with -race: crowd
// bookkeeping and possession handoff under true parallelism.
func TestReadersWritersCrowdReal(t *testing.T) {
	k := kernel.NewReal(kernel.WithWatchdog(30 * time.Second))
	s := New("db")
	readers := s.NewCrowd("readers")
	writers := s.NewCrowd("writers")
	wq := s.NewQueue("wq")
	rq := s.NewQueue("rq")

	var mu = make(chan struct{}, 1) // plain channel mutex to check invariants
	mu <- struct{}{}
	activeR, activeW, violations := 0, 0, 0

	enterR := func() {
		<-mu
		activeR++
		if activeW > 0 {
			violations++
		}
		mu <- struct{}{}
	}
	exitR := func() { <-mu; activeR--; mu <- struct{}{} }
	enterW := func() {
		<-mu
		activeW++
		if activeW > 1 || activeR > 0 {
			violations++
		}
		mu <- struct{}{}
	}
	exitW := func() { <-mu; activeW--; mu <- struct{}{} }

	for i := 0; i < 6; i++ {
		k.Spawn("reader", func(p *kernel.Proc) {
			for j := 0; j < 100; j++ {
				s.Enter(p)
				rq.Enqueue(p, writers.EmptyG())
				readers.Join(p, func() {
					enterR()
					p.Yield()
					exitR()
				})
				s.Exit(p)
			}
		})
	}
	for i := 0; i < 2; i++ {
		k.Spawn("writer", func(p *kernel.Proc) {
			for j := 0; j < 50; j++ {
				s.Enter(p)
				wq.Enqueue(p, func() bool {
					return readers.SizeG()() == 0 && writers.SizeG()() == 0
				})
				writers.Join(p, func() {
					enterW()
					p.Yield()
					exitW()
				})
				s.Exit(p)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("exclusion violations = %d", violations)
	}
}

func BenchmarkSerializerEnterExit(b *testing.B) {
	k := kernel.NewReal()
	s := New("bench")
	done := make(chan struct{})
	k.Spawn("p", func(p *kernel.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Enter(p)
			s.Exit(p)
		}
		close(done)
	})
	<-done
}

func BenchmarkSerializerCrowdJoin(b *testing.B) {
	k := kernel.NewReal()
	s := New("bench")
	c := s.NewCrowd("c")
	done := make(chan struct{})
	k.Spawn("p", func(p *kernel.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Enter(p)
			c.Join(p, func() {})
			s.Exit(p)
		}
		close(done)
	})
	<-done
}
