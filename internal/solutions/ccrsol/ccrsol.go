// Package ccrsol implements the full problem suite with Brinch Hansen's
// conditional critical regions [6].
//
// The pattern the evaluation engine extracts from this source: guards
// express local-state and parameter conditions directly, but request time
// and synchronization state must be reified into hand-maintained counters
// and tickets (wantR/wantW, next/serving) because a guard can see only the
// protected variables, not the waiting processes.
package ccrsol

import (
	"repro/internal/ccr"
	"repro/internal/kernel"
	"repro/internal/problems"
)

// BoundedBuffer is the canonical CCR example: `region buf when len <  cap`.
type BoundedBuffer struct {
	r        *ccr.Region
	buf      []int64
	capacity int
}

// NewBoundedBuffer creates a buffer with the given capacity.
func NewBoundedBuffer(capacity int) *BoundedBuffer {
	return &BoundedBuffer{r: ccr.New("bounded-buffer"), capacity: capacity}
}

// Cap implements problems.BoundedBuffer.
func (b *BoundedBuffer) Cap() int { return b.capacity }

// Deposit implements problems.BoundedBuffer.
func (b *BoundedBuffer) Deposit(p *kernel.Proc, item int64, body func()) {
	b.r.Execute(p, func() bool { return len(b.buf) < b.capacity }, func() {
		body()
		b.buf = append(b.buf, item)
	})
}

// Remove implements problems.BoundedBuffer.
func (b *BoundedBuffer) Remove(p *kernel.Proc, body func(int64)) {
	b.r.Execute(p, func() bool { return len(b.buf) > 0 }, func() {
		item := b.buf[0]
		b.buf = b.buf[1:]
		body(item)
	})
}

// FCFS shows the CCR workaround for request-time information: guards
// cannot see arrival order, so it is reified into ticket numbers — one
// region entry to take a ticket, a guarded entry to await one's turn.
type FCFS struct {
	r       *ccr.Region
	next    int64
	serving int64
}

// NewFCFS creates the allocator.
func NewFCFS() *FCFS {
	return &FCFS{r: ccr.New("fcfs")}
}

// Use implements problems.Resource.
func (f *FCFS) Use(p *kernel.Proc, body func()) {
	var ticket int64
	f.r.Execute(p, ccr.True, func() {
		ticket = f.next
		f.next++
	})
	f.r.Await(p, func() bool { return f.serving == ticket })
	body()
	f.r.Execute(p, ccr.True, func() { f.serving++ })
}

// rwVars is the protected variable bundle shared by the readers–writers
// variants. wantR/wantW reify "a reader/writer is waiting" — the
// synchronization-state information guards cannot otherwise see.
type rwVars struct {
	r       *ccr.Region
	readers int
	writing bool
	wantR   int
	wantW   int
}

// ReadersPriority: readers pass whenever no writer is active; writers
// additionally wait for wantR == 0.
type ReadersPriority struct{ v rwVars }

// NewReadersPriority creates the database.
func NewReadersPriority() *ReadersPriority {
	return &ReadersPriority{rwVars{r: ccr.New("readers-priority")}}
}

// Read implements problems.RWStore.
func (d *ReadersPriority) Read(p *kernel.Proc, body func()) {
	v := &d.v
	v.r.Execute(p, ccr.True, func() { v.wantR++ })
	v.r.Execute(p, func() bool { return !v.writing }, func() {
		v.wantR--
		v.readers++
	})
	body()
	v.r.Execute(p, ccr.True, func() { v.readers-- })
}

// Write implements problems.RWStore.
func (d *ReadersPriority) Write(p *kernel.Proc, body func()) {
	v := &d.v
	v.r.Execute(p, func() bool {
		return !v.writing && v.readers == 0 && v.wantR == 0
	}, func() {
		v.writing = true
	})
	body()
	v.r.Execute(p, ccr.True, func() { v.writing = false })
}

// WritersPriority mirrors ReadersPriority with the wantW counter: the
// changed constraint swaps which side maintains a want-count and which
// guard consults it; the exclusion conditions (!writing, readers == 0)
// are untouched.
type WritersPriority struct{ v rwVars }

// NewWritersPriority creates the database.
func NewWritersPriority() *WritersPriority {
	return &WritersPriority{rwVars{r: ccr.New("writers-priority")}}
}

// Read implements problems.RWStore.
func (d *WritersPriority) Read(p *kernel.Proc, body func()) {
	v := &d.v
	v.r.Execute(p, func() bool {
		return !v.writing && v.wantW == 0
	}, func() {
		v.readers++
	})
	body()
	v.r.Execute(p, ccr.True, func() { v.readers-- })
}

// Write implements problems.RWStore.
func (d *WritersPriority) Write(p *kernel.Proc, body func()) {
	v := &d.v
	v.r.Execute(p, ccr.True, func() { v.wantW++ })
	v.r.Execute(p, func() bool { return !v.writing && v.readers == 0 }, func() {
		v.wantW--
		v.writing = true
	})
	body()
	v.r.Execute(p, ccr.True, func() { v.writing = false })
}

// FCFSRW combines the ticket idiom with the exclusion guards: admission
// strictly in ticket order, reads sharing once admitted.
type FCFSRW struct {
	r       *ccr.Region
	next    int64
	serving int64
	readers int
	writing bool
}

// NewFCFSRW creates the database.
func NewFCFSRW() *FCFSRW {
	return &FCFSRW{r: ccr.New("fcfs-rw")}
}

func (d *FCFSRW) ticket(p *kernel.Proc) int64 {
	var t int64
	d.r.Execute(p, ccr.True, func() {
		t = d.next
		d.next++
	})
	return t
}

// Read implements problems.RWStore.
func (d *FCFSRW) Read(p *kernel.Proc, body func()) {
	t := d.ticket(p)
	d.r.Execute(p, func() bool { return d.serving == t && !d.writing }, func() {
		d.serving++
		d.readers++
	})
	body()
	d.r.Execute(p, ccr.True, func() { d.readers-- })
}

// Write implements problems.RWStore.
func (d *FCFSRW) Write(p *kernel.Proc, body func()) {
	t := d.ticket(p)
	d.r.Execute(p, func() bool {
		return d.serving == t && !d.writing && d.readers == 0
	}, func() {
		d.serving++
		d.writing = true
	})
	body()
	d.r.Execute(p, ccr.True, func() { d.writing = false })
}

// Disk keeps the pending track set as protected data; each waiter's guard
// asks "is the elevator's next choice my track?" — guards evaluate
// parameters naturally, but the elevator state machine itself is ordinary
// code, not mechanism.
type Disk struct {
	r       *ccr.Region
	pending []int64
	headpos int64
	up      bool
	busy    bool
}

// NewDisk creates the scheduler with the head parked at start. (The
// maximum track is not needed: guards compare tracks directly.)
func NewDisk(start, maxTrack int64) *Disk {
	return &Disk{r: ccr.New("disk"), headpos: start, up: true}
}

// scanNext picks the elevator-correct next track from pending.
func (d *Disk) scanNext() (int64, bool) {
	if len(d.pending) == 0 {
		return 0, false
	}
	var bestFwd, bestRev int64
	haveFwd, haveRev := false, false
	for _, t := range d.pending {
		if d.up {
			if t >= d.headpos && (!haveFwd || t < bestFwd) {
				bestFwd, haveFwd = t, true
			}
			if t < d.headpos && (!haveRev || t > bestRev) {
				bestRev, haveRev = t, true
			}
		} else {
			if t <= d.headpos && (!haveFwd || t > bestFwd) {
				bestFwd, haveFwd = t, true
			}
			if t > d.headpos && (!haveRev || t < bestRev) {
				bestRev, haveRev = t, true
			}
		}
	}
	if haveFwd {
		return bestFwd, true
	}
	return bestRev, true
}

func (d *Disk) remove(track int64) {
	for i, t := range d.pending {
		if t == track {
			d.pending = append(d.pending[:i], d.pending[i+1:]...)
			return
		}
	}
}

// Seek implements problems.Disk.
func (d *Disk) Seek(p *kernel.Proc, track int64, body func()) {
	d.r.Execute(p, ccr.True, func() { d.pending = append(d.pending, track) })
	d.r.Execute(p, func() bool {
		if d.busy {
			return false
		}
		next, ok := d.scanNext()
		return ok && next == track
	}, func() {
		d.busy = true
		if track > d.headpos {
			d.up = true
		} else if track < d.headpos {
			d.up = false
		}
		d.headpos = track
		d.remove(track)
	})
	body()
	d.r.Execute(p, ccr.True, func() { d.busy = false })
}

// AlarmClock: the due time is plain protected data; the guard compares it
// with the clock — the CCR sweet spot for parameter information.
type AlarmClock struct {
	r   *ccr.Region
	now int64
}

// NewAlarmClock creates the clock at time zero.
func NewAlarmClock() *AlarmClock {
	return &AlarmClock{r: ccr.New("alarm-clock")}
}

// WakeMe implements problems.AlarmClock.
func (a *AlarmClock) WakeMe(p *kernel.Proc, ticks int64, body func()) {
	var due int64
	a.r.Execute(p, ccr.True, func() { due = a.now + ticks })
	a.r.Await(p, func() bool { return a.now >= due })
	body()
}

// Tick implements problems.AlarmClock.
func (a *AlarmClock) Tick(p *kernel.Proc) {
	a.r.Execute(p, ccr.True, func() { a.now++ })
}

// OneSlot: the history bit is a protected boolean.
type OneSlot struct {
	r    *ccr.Region
	slot int64
	full bool
}

// NewOneSlot creates an empty slot.
func NewOneSlot() *OneSlot {
	return &OneSlot{r: ccr.New("one-slot")}
}

// Put implements problems.OneSlot.
func (s *OneSlot) Put(p *kernel.Proc, item int64, body func()) {
	s.r.Execute(p, func() bool { return !s.full }, func() {
		body()
		s.slot = item
		s.full = true
	})
}

// Get implements problems.OneSlot.
func (s *OneSlot) Get(p *kernel.Proc, body func(int64)) {
	s.r.Execute(p, func() bool { return s.full }, func() {
		body(s.slot)
		s.full = false
	})
}

// Compile-time checks that every solution satisfies its problem interface.
var (
	_ problems.BoundedBuffer = (*BoundedBuffer)(nil)
	_ problems.Resource      = (*FCFS)(nil)
	_ problems.RWStore       = (*ReadersPriority)(nil)
	_ problems.RWStore       = (*WritersPriority)(nil)
	_ problems.RWStore       = (*FCFSRW)(nil)
	_ problems.Disk          = (*Disk)(nil)
	_ problems.AlarmClock    = (*AlarmClock)(nil)
	_ problems.OneSlot       = (*OneSlot)(nil)
)
