package ccrsol

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
)

// These tests pin CCR-specific idioms: the ticket reification of request
// time, the want-counters that reify waiting-set information, and guards
// over parameters.

// FCFS tickets: strict service order even when later processes would be
// ready first.
func TestFCFSTicketOrder(t *testing.T) {
	k := kernel.NewSim(kernel.WithPolicy(kernel.Random(3)))
	f := NewFCFS()
	var order []int
	for i := 0; i < 5; i++ {
		k.Spawn("user", func(p *kernel.Proc) {
			f.Use(p, func() {
				order = append(order, p.ID())
				p.Yield()
			})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Ticket draw order under this seed is the admission order; assert
	// strict consistency: each process's position equals its draw order.
	if len(order) != 5 {
		t.Fatalf("order = %v", order)
	}
	seen := map[int]bool{}
	for _, id := range order {
		if seen[id] {
			t.Fatalf("duplicate service: %v", order)
		}
		seen[id] = true
	}
}

// The wantR counter: a writer cannot slip in while a reader is between
// its announcement and its admission.
func TestReadersPriorityWantCounter(t *testing.T) {
	k := kernel.NewSim()
	db := NewReadersPriority()
	var order []string
	k.Spawn("w1", func(p *kernel.Proc) {
		db.Write(p, func() {
			order = append(order, "w1")
			for i := 0; i < 6; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("r", func(p *kernel.Proc) {
		p.Yield()
		db.Read(p, func() { order = append(order, "r") })
	})
	k.Spawn("w2", func(p *kernel.Proc) {
		p.Yield()
		p.Yield()
		db.Write(p, func() { order = append(order, "w2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[w1 r w2]" {
		t.Fatalf("order = %v: the waiting reader must beat the second writer", order)
	}
}

// The wantW counter in the mirror solution: an arriving reader waits
// behind an announced writer.
func TestWritersPriorityWantCounter(t *testing.T) {
	k := kernel.NewSim()
	db := NewWritersPriority()
	var order []string
	k.Spawn("r1", func(p *kernel.Proc) {
		db.Read(p, func() {
			order = append(order, "r1")
			for i := 0; i < 6; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("w", func(p *kernel.Proc) {
		p.Yield()
		db.Write(p, func() { order = append(order, "w") })
	})
	k.Spawn("r2", func(p *kernel.Proc) {
		p.Yield()
		p.Yield()
		db.Read(p, func() { order = append(order, "r2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[r1 w r2]" {
		t.Fatalf("order = %v", order)
	}
}

// FCFSRW tickets serialize across types while reads still share once
// admitted in order.
func TestFCFSRWTicketsAllowReadSharing(t *testing.T) {
	k := kernel.NewSim()
	db := NewFCFSRW()
	concurrent := 0
	maxConcurrent := 0
	for i := 0; i < 3; i++ {
		k.Spawn("reader", func(p *kernel.Proc) {
			db.Read(p, func() {
				concurrent++
				if concurrent > maxConcurrent {
					maxConcurrent = concurrent
				}
				p.Yield()
				p.Yield()
				concurrent--
			})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxConcurrent < 2 {
		t.Fatalf("maxConcurrent = %d: consecutive reads must overlap", maxConcurrent)
	}
}

// Disk guards over parameters: the pending set and the scan choice are
// all protected data; a batch is served in elevator order.
func TestDiskGuardScanOrder(t *testing.T) {
	k := kernel.NewSim()
	d := NewDisk(50, 200)
	var order []int64
	for _, track := range []int64{55, 10, 60, 90, 20} {
		track := track
		k.Spawn("io", func(p *kernel.Proc) {
			d.Seek(p, track, func() {
				order = append(order, track)
				p.Yield()
				p.Yield()
			})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[55 60 90 20 10]" {
		t.Fatalf("service order = %v", order)
	}
}

// The alarm clock guard "now >= due" wakes sleepers in due order via
// guard re-evaluation at region exits.
func TestAlarmClockGuardWakeups(t *testing.T) {
	k := kernel.NewSim()
	ac := NewAlarmClock()
	var woke []int64
	for _, ticks := range []int64{5, 1, 3} {
		ticks := ticks
		k.Spawn("sleeper", func(p *kernel.Proc) {
			ac.WakeMe(p, ticks, func() { woke = append(woke, ticks) })
		})
	}
	k.Spawn("clock", func(p *kernel.Proc) {
		for i := 0; i < 6; i++ {
			p.Yield()
			ac.Tick(p)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(woke) != "[1 3 5]" {
		t.Fatalf("wake order = %v", woke)
	}
}

// The bounded buffer guard is the canonical CCR example; a full buffer
// blocks the producer.
func TestBoundedBufferGuard(t *testing.T) {
	k := kernel.NewSim()
	bb := NewBoundedBuffer(1)
	var order []string
	k.Spawn("producer", func(p *kernel.Proc) {
		bb.Deposit(p, 1, func() { order = append(order, "d1") })
		bb.Deposit(p, 2, func() { order = append(order, "d2") })
	})
	k.Spawn("consumer", func(p *kernel.Proc) {
		bb.Remove(p, func(int64) { order = append(order, "g1") })
		bb.Remove(p, func(int64) { order = append(order, "g2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[d1 g1 d2 g2]" {
		t.Fatalf("order = %v", order)
	}
}

// OneSlot's history bit alternates puts and gets.
func TestOneSlotHistoryBit(t *testing.T) {
	k := kernel.NewSim()
	s := NewOneSlot()
	var got []int64
	k.Spawn("producer", func(p *kernel.Proc) {
		for i := int64(1); i <= 3; i++ {
			s.Put(p, i, func() {})
		}
	})
	k.Spawn("consumer", func(p *kernel.Proc) {
		for i := 0; i < 3; i++ {
			s.Get(p, func(v int64) { got = append(got, v) })
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("got = %v", got)
	}
}
