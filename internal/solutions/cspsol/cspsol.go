// Package cspsol implements the full problem suite in the
// message-passing style of Hoare's CSP [20] — executing the extension the
// paper's §6 calls for ("we have not looked extensively at
// message-passing models … it is important to be able to evaluate and
// compare them").
//
// Every resource is a *server daemon* owning its state outright; clients
// interact over synchronous channels. The recurring shapes:
//
//   - exclusion constraints become guards on the server's Select;
//   - request-type information is which channel a request arrives on;
//   - request-time information is channel FIFO order (single-channel
//     protocols give exact FCFS, the serializer's trick in CSP clothing);
//   - synchronization state is the server's own counters and explicit
//     pending-request lists — the CSP analogue of the monitor's hand-kept
//     state (Select guards cannot express "no reader is waiting": they
//     are evaluated at alternation entry and go stale while parked);
//   - history is simply the server's control flow: the one-slot server
//     alternates receive(put); receive(get) and needs no state at all.
//
// Client bodies must run on the client's own process (the kernel yields
// inside a body belong to that process), so operations that carry a body
// use an admit/done protocol rather than having the server call the body.
package cspsol

import (
	"repro/internal/csp"
	"repro/internal/kernel"
	"repro/internal/problems"
)

// seekReq is a disk request message.
type seekReq struct {
	track int64
	grant *csp.Chan
}

// wakeReq is an alarm-clock request message.
type wakeReq struct {
	ticks int64
	grant *csp.Chan
}

// BoundedBuffer: a server serializes all operations (the spec's
// buffer-exclusion) and admits them under local-state guards.
type BoundedBuffer struct {
	net      *csp.Net
	admitDep *csp.Chan
	admitRem *csp.Chan
	done     *csp.Chan
	capacity int
}

// NewBoundedBuffer creates the buffer and starts its server daemon.
func NewBoundedBuffer(k kernel.Kernel, capacity int) *BoundedBuffer {
	n := csp.NewNet()
	b := &BoundedBuffer{
		net:      n,
		admitDep: n.NewChan("deposit"),
		admitRem: n.NewChan("remove"),
		done:     n.NewChan("done"),
		capacity: capacity,
	}
	k.SpawnDaemon("bb-server", func(p *kernel.Proc) {
		var buf []int64
		reserved := 0 // slots promised to admitted depositors
		busy := false
		for {
			idx, v := csp.Select(p, []csp.Case{
				{Chan: b.admitDep, Guard: func() bool { return !busy && reserved < b.capacity }},
				{Chan: b.admitRem, Guard: func() bool { return !busy && len(buf) > 0 }},
				{Chan: b.done, Guard: func() bool { return busy }},
			})
			switch idx {
			case 0:
				reserved++
				busy = true
				v.(csp.Call).Reply(p, nil)
			case 1:
				item := buf[0]
				buf = buf[1:]
				busy = true
				v.(csp.Call).Reply(p, item)
			case 2:
				// v carries a deposit's item, or nil for a remove-done.
				if item, ok := v.(int64); ok {
					buf = append(buf, item)
				} else {
					reserved--
				}
				busy = false
			}
		}
	})
	return b
}

// Cap implements problems.BoundedBuffer.
func (b *BoundedBuffer) Cap() int { return b.capacity }

// Deposit implements problems.BoundedBuffer.
func (b *BoundedBuffer) Deposit(p *kernel.Proc, item int64, body func()) {
	b.net.DoCall(p, b.admitDep, nil)
	body()
	b.done.Send(p, item)
}

// Remove implements problems.BoundedBuffer.
func (b *BoundedBuffer) Remove(p *kernel.Proc, body func(int64)) {
	item := b.net.DoCall(p, b.admitRem, nil).(int64)
	body(item)
	b.done.Send(p, nil)
}

// FCFS: a single request channel is the FIFO; the server completes one
// use before receiving the next.
type FCFS struct {
	net     *csp.Net
	acquire *csp.Chan
	release *csp.Chan
}

// NewFCFS creates the allocator and starts its server daemon.
func NewFCFS(k kernel.Kernel) *FCFS {
	n := csp.NewNet()
	f := &FCFS{net: n, acquire: n.NewChan("acquire"), release: n.NewChan("release")}
	k.SpawnDaemon("fcfs-server", func(p *kernel.Proc) {
		for {
			call := f.acquire.Recv(p).(csp.Call)
			call.Reply(p, nil)
			f.release.Recv(p)
		}
	})
	return f
}

// Use implements problems.Resource.
func (f *FCFS) Use(p *kernel.Proc, body func()) {
	f.net.DoCall(p, f.acquire, nil)
	body()
	f.release.Send(p, nil)
}

// rwReqMsg is an admission request carrying the client's private grant
// channel — the waiting sets live in the server as explicit lists, the
// CSP analogue of the monitor's hand-kept synchronization state. (A
// guard over Chan.Pending cannot serve here: guards are evaluated when
// the server enters Select, and a request arriving while the server is
// parked would be matched against the stale registration.)
type rwReqMsg struct {
	grant *csp.Chan
}

// rwServer is the common readers–writers client surface; the variants
// differ only in the server's grant policy.
type rwServer struct {
	net        *csp.Net
	admitRead  *csp.Chan
	admitWrite *csp.Chan
	readDone   *csp.Chan
	writeDone  *csp.Chan
}

func newRWServer(n *csp.Net) rwServer {
	return rwServer{
		net:        n,
		admitRead:  n.NewChan("read"),
		admitWrite: n.NewChan("write"),
		readDone:   n.NewChan("read-done"),
		writeDone:  n.NewChan("write-done"),
	}
}

// Read implements problems.RWStore.
func (s *rwServer) Read(p *kernel.Proc, body func()) {
	grant := s.net.NewChan("grant")
	s.admitRead.Send(p, rwReqMsg{grant: grant})
	grant.Recv(p)
	body()
	s.readDone.Send(p, nil)
}

// Write implements problems.RWStore.
func (s *rwServer) Write(p *kernel.Proc, body func()) {
	grant := s.net.NewChan("grant")
	s.admitWrite.Send(p, rwReqMsg{grant: grant})
	grant.Recv(p)
	body()
	s.writeDone.Send(p, nil)
}

// rwState is the server-side bookkeeping shared by the variants.
type rwState struct {
	readers       int
	writing       bool
	pendingReads  []rwReqMsg
	pendingWrites []rwReqMsg
}

// serveRW runs the server loop: block for one event, then drain every
// event already communicated (pending senders) so the grant policy always
// decides on the complete announced state, then grant.
func serveRW(p *kernel.Proc, s rwServer, grantPolicy func(p *kernel.Proc, st *rwState)) {
	var st rwState
	apply := func(idx int, v any) {
		switch idx {
		case 0:
			st.pendingReads = append(st.pendingReads, v.(rwReqMsg))
		case 1:
			st.pendingWrites = append(st.pendingWrites, v.(rwReqMsg))
		case 2:
			st.readers--
		case 3:
			st.writing = false
		}
	}
	cases := []csp.Case{
		{Chan: s.admitRead},
		{Chan: s.admitWrite},
		{Chan: s.readDone},
		{Chan: s.writeDone},
	}
	for {
		idx, v := csp.Select(p, cases)
		apply(idx, v)
		for s.admitRead.Pending()+s.admitWrite.Pending()+
			s.readDone.Pending()+s.writeDone.Pending() > 0 {
			idx, v := csp.Select(p, cases) // immediate: a sender is waiting
			apply(idx, v)
		}
		grantPolicy(p, &st)
	}
}

// ReadersPriority: pending reads are granted whenever no write is active;
// a write is granted only when nothing is reading and no reader waits.
type ReadersPriority struct{ rwServer }

// NewReadersPriority creates the database and starts its server daemon.
func NewReadersPriority(k kernel.Kernel) *ReadersPriority {
	d := &ReadersPriority{newRWServer(csp.NewNet())}
	k.SpawnDaemon("rw-server", func(p *kernel.Proc) {
		serveRW(p, d.rwServer, func(p *kernel.Proc, st *rwState) {
			if !st.writing {
				for _, r := range st.pendingReads {
					st.readers++
					r.grant.Send(p, nil)
				}
				st.pendingReads = st.pendingReads[:0]
			}
			if !st.writing && st.readers == 0 && len(st.pendingReads) == 0 && len(st.pendingWrites) > 0 {
				w := st.pendingWrites[0]
				st.pendingWrites = st.pendingWrites[1:]
				st.writing = true
				w.grant.Send(p, nil)
			}
		})
	})
	return d
}

// WritersPriority mirrors ReadersPriority: pending writes bar new reads.
type WritersPriority struct{ rwServer }

// NewWritersPriority creates the database and starts its server daemon.
func NewWritersPriority(k kernel.Kernel) *WritersPriority {
	d := &WritersPriority{newRWServer(csp.NewNet())}
	k.SpawnDaemon("rw-server", func(p *kernel.Proc) {
		serveRW(p, d.rwServer, func(p *kernel.Proc, st *rwState) {
			if !st.writing && st.readers == 0 && len(st.pendingWrites) > 0 {
				w := st.pendingWrites[0]
				st.pendingWrites = st.pendingWrites[1:]
				st.writing = true
				w.grant.Send(p, nil)
			}
			if !st.writing && len(st.pendingWrites) == 0 {
				for _, r := range st.pendingReads {
					st.readers++
					r.grant.Send(p, nil)
				}
				st.pendingReads = st.pendingReads[:0]
			}
		})
	})
	return d
}

// FCFSRW sends every request — reads and writes alike — down ONE channel,
// so channel FIFO is the admission order; the server simply refuses to
// receive the next request until the current one is admissible.
type FCFSRW struct {
	net     *csp.Net
	request *csp.Chan
	done    *csp.Chan
}

type rwReq struct {
	isRead bool
	grant  *csp.Chan
}

// NewFCFSRW creates the database and starts its server daemon.
func NewFCFSRW(k kernel.Kernel) *FCFSRW {
	n := csp.NewNet()
	d := &FCFSRW{net: n, request: n.NewChan("request"), done: n.NewChan("done")}
	k.SpawnDaemon("fcfs-rw-server", func(p *kernel.Proc) {
		readers, writing := 0, false
		var head *rwReq // the oldest request, not yet admitted
		apply := func(v any) {
			if v.(bool) { // true = a read finished
				readers--
			} else {
				writing = false
			}
		}
		for {
			if head == nil {
				// Nothing pending: serve completions and the next request
				// as they come. Taking requests one at a time off a single
				// FIFO channel is what makes the admission order exact.
				idx, v := csp.Select(p, []csp.Case{{Chan: d.request}, {Chan: d.done}})
				if idx == 1 {
					apply(v)
					continue
				}
				r := v.(rwReq)
				head = &r
			}
			admissible := (head.isRead && !writing) ||
				(!head.isRead && !writing && readers == 0)
			if !admissible {
				// Head-of-line blocking: accept only completions until the
				// head can go.
				apply(d.done.Recv(p))
				continue
			}
			if head.isRead {
				readers++
			} else {
				writing = true
			}
			head.grant.Send(p, nil)
			head = nil
		}
	})
	return d
}

// Read implements problems.RWStore.
func (d *FCFSRW) Read(p *kernel.Proc, body func()) {
	grant := d.net.NewChan("grant")
	d.request.Send(p, rwReq{isRead: true, grant: grant})
	grant.Recv(p)
	body()
	d.done.Send(p, true)
}

// Write implements problems.RWStore.
func (d *FCFSRW) Write(p *kernel.Proc, body func()) {
	grant := d.net.NewChan("grant")
	d.request.Send(p, rwReq{isRead: false, grant: grant})
	grant.Recv(p)
	body()
	d.done.Send(p, false)
}

// Disk: the server absorbs requests into an explicit pending list and
// grants them in elevator order — request parameters travel in the
// message, scheduling state lives in the server.
type Disk struct {
	net  *csp.Net
	req  *csp.Chan
	done *csp.Chan
}

// NewDisk creates the scheduler and starts its server daemon.
func NewDisk(k kernel.Kernel, start, maxTrack int64) *Disk {
	n := csp.NewNet()
	d := &Disk{net: n, req: n.NewChan("seek"), done: n.NewChan("done")}
	k.SpawnDaemon("disk-server", func(p *kernel.Proc) {
		var pending []seekReq
		headpos, up, busy := start, true, false
		grant := func(r seekReq) {
			busy = true
			if r.track > headpos {
				up = true
			} else if r.track < headpos {
				up = false
			}
			headpos = r.track
			r.grant.Send(p, nil)
		}
		for {
			idx, v := csp.Select(p, []csp.Case{
				{Chan: d.req},
				{Chan: d.done, Guard: func() bool { return busy }},
			})
			if idx == 0 {
				r := v.(seekReq)
				if !busy {
					grant(r)
				} else {
					pending = append(pending, r)
				}
				continue
			}
			// A transfer finished: pick the elevator-next request.
			busy = false
			if len(pending) == 0 {
				continue
			}
			bestFwd, bestRev := -1, -1
			for i, r := range pending {
				if up {
					if r.track >= headpos && (bestFwd < 0 || r.track < pending[bestFwd].track) {
						bestFwd = i
					}
					if r.track < headpos && (bestRev < 0 || r.track > pending[bestRev].track) {
						bestRev = i
					}
				} else {
					if r.track <= headpos && (bestFwd < 0 || r.track > pending[bestFwd].track) {
						bestFwd = i
					}
					if r.track > headpos && (bestRev < 0 || r.track < pending[bestRev].track) {
						bestRev = i
					}
				}
			}
			pick := bestFwd
			if pick < 0 {
				pick = bestRev
			}
			r := pending[pick]
			pending = append(pending[:pick], pending[pick+1:]...)
			grant(r)
		}
	})
	return d
}

// Seek implements problems.Disk.
func (d *Disk) Seek(p *kernel.Proc, track int64, body func()) {
	grant := d.net.NewChan("grant")
	d.req.Send(p, seekReq{track: track, grant: grant})
	grant.Recv(p)
	body()
	d.done.Send(p, nil)
}

// AlarmClock: the server keeps (due, grant) pairs and answers them as
// ticks arrive.
type AlarmClock struct {
	net  *csp.Net
	req  *csp.Chan
	tick *csp.Chan
}

// NewAlarmClock creates the clock and starts its server daemon.
func NewAlarmClock(k kernel.Kernel) *AlarmClock {
	n := csp.NewNet()
	a := &AlarmClock{net: n, req: n.NewChan("wakeme"), tick: n.NewChan("tick")}
	k.SpawnDaemon("clock-server", func(p *kernel.Proc) {
		now := int64(0)
		var pending []wakeReq
		for {
			idx, v := csp.Select(p, []csp.Case{
				{Chan: a.req},
				{Chan: a.tick},
			})
			switch idx {
			case 0:
				r := v.(wakeReq)
				if now+r.ticks <= now {
					r.grant.Send(p, nil)
					continue
				}
				r.ticks += now // convert to absolute due time
				pending = append(pending, r)
			case 1:
				now++
				rest := pending[:0]
				for _, r := range pending {
					if r.ticks <= now {
						r.grant.Send(p, nil)
					} else {
						rest = append(rest, r)
					}
				}
				pending = rest
				v.(csp.Call).Reply(p, nil) // tick is synchronous
			}
		}
	})
	return a
}

// WakeMe implements problems.AlarmClock.
func (a *AlarmClock) WakeMe(p *kernel.Proc, ticks int64, body func()) {
	grant := a.net.NewChan("grant")
	a.req.Send(p, wakeReq{ticks: ticks, grant: grant})
	grant.Recv(p)
	body()
}

// Tick implements problems.AlarmClock.
func (a *AlarmClock) Tick(p *kernel.Proc) {
	a.net.DoCall(p, a.tick, nil)
}

// OneSlot is the purest CSP solution in the suite: the alternation
// constraint (history information) is the server's program counter — no
// state, no guards. The admit/done bracket keeps client bodies strictly
// inside the alternation.
type OneSlot struct {
	net     *csp.Net
	put     *csp.Chan
	putDone *csp.Chan
	get     *csp.Chan
	getDone *csp.Chan
}

// NewOneSlot creates the slot and starts its server daemon.
func NewOneSlot(k kernel.Kernel) *OneSlot {
	n := csp.NewNet()
	s := &OneSlot{
		net:     n,
		put:     n.NewChan("put"),
		putDone: n.NewChan("put-done"),
		get:     n.NewChan("get"),
		getDone: n.NewChan("get-done"),
	}
	k.SpawnDaemon("slot-server", func(p *kernel.Proc) {
		for {
			putCall := s.put.Recv(p).(csp.Call) // history: a put must come first
			putCall.Reply(p, nil)               // admit the put
			item := s.putDone.Recv(p).(int64)   // the put's body has run

			getCall := s.get.Recv(p).(csp.Call) // then exactly one get
			getCall.Reply(p, item)              // admit it with the value
			s.getDone.Recv(p)                   // the get's body has run
		}
	})
	return s
}

// Put implements problems.OneSlot.
func (s *OneSlot) Put(p *kernel.Proc, item int64, body func()) {
	s.net.DoCall(p, s.put, nil)
	body()
	s.putDone.Send(p, item)
}

// Get implements problems.OneSlot.
func (s *OneSlot) Get(p *kernel.Proc, body func(int64)) {
	item := s.net.DoCall(p, s.get, nil).(int64)
	body(item)
	s.getDone.Send(p, nil)
}

// Compile-time checks that every solution satisfies its problem interface.
var (
	_ problems.BoundedBuffer = (*BoundedBuffer)(nil)
	_ problems.Resource      = (*FCFS)(nil)
	_ problems.RWStore       = (*ReadersPriority)(nil)
	_ problems.RWStore       = (*WritersPriority)(nil)
	_ problems.RWStore       = (*FCFSRW)(nil)
	_ problems.Disk          = (*Disk)(nil)
	_ problems.AlarmClock    = (*AlarmClock)(nil)
	_ problems.OneSlot       = (*OneSlot)(nil)
)
