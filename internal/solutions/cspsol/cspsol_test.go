package cspsol

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
)

// These tests pin CSP-specific behaviors: channel-FIFO as request order,
// Pending probes as waiting-set information, head-of-line blocking in the
// single-channel FCFS server, and alternation as server control flow.

func TestFCFSChannelOrder(t *testing.T) {
	k := kernel.NewSim()
	f := NewFCFS(k)
	var order []int
	for i := 0; i < 5; i++ {
		k.Spawn("user", func(p *kernel.Proc) {
			f.Use(p, func() {
				order = append(order, p.ID())
				p.Yield()
			})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The server daemon is process 1; users are 2..6.
	if fmt.Sprint(order) != "[2 3 4 5 6]" {
		t.Fatalf("order = %v", order)
	}
}

// Readers-priority via the PendingG probe: a reader arriving while a
// writer waits is admitted first.
func TestReadersPriorityPendingProbe(t *testing.T) {
	k := kernel.NewSim()
	db := NewReadersPriority(k)
	var order []string
	k.Spawn("r1", func(p *kernel.Proc) {
		db.Read(p, func() {
			order = append(order, "r1")
			for i := 0; i < 6; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("w", func(p *kernel.Proc) {
		p.Yield()
		db.Write(p, func() { order = append(order, "w") })
	})
	k.Spawn("r2", func(p *kernel.Proc) {
		p.Yield()
		p.Yield()
		db.Read(p, func() { order = append(order, "r2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[r1 r2 w]" {
		t.Fatalf("order = %v: the arriving reader must pass the waiting writer", order)
	}
}

// Writers-priority is the mirror: the reader waits behind the writer.
func TestWritersPriorityPendingProbe(t *testing.T) {
	k := kernel.NewSim()
	db := NewWritersPriority(k)
	var order []string
	k.Spawn("r1", func(p *kernel.Proc) {
		db.Read(p, func() {
			order = append(order, "r1")
			for i := 0; i < 6; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("w", func(p *kernel.Proc) {
		p.Yield()
		db.Write(p, func() { order = append(order, "w") })
	})
	k.Spawn("r2", func(p *kernel.Proc) {
		p.Yield()
		p.Yield()
		db.Read(p, func() { order = append(order, "r2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[r1 w r2]" {
		t.Fatalf("order = %v", order)
	}
}

// FCFSRW head-of-line blocking: the writer at the head of the single
// request channel holds back a later reader even during active reads.
func TestFCFSRWHeadOfLine(t *testing.T) {
	k := kernel.NewSim()
	db := NewFCFSRW(k)
	var order []string
	k.Spawn("r1", func(p *kernel.Proc) {
		db.Read(p, func() {
			order = append(order, "r1")
			for i := 0; i < 6; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("w", func(p *kernel.Proc) {
		db.Write(p, func() { order = append(order, "w") })
	})
	k.Spawn("r2", func(p *kernel.Proc) {
		p.Yield()
		db.Read(p, func() { order = append(order, "r2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[r1 w r2]" {
		t.Fatalf("order = %v", order)
	}
}

// The one-slot server's control flow IS the alternation: competing
// producers and consumers cannot break it.
func TestOneSlotServerControlFlow(t *testing.T) {
	k := kernel.NewSim(kernel.WithPolicy(kernel.Random(5)))
	s := NewOneSlot(k)
	var order []string
	for i := 0; i < 2; i++ {
		k.Spawn("producer", func(p *kernel.Proc) {
			for j := 0; j < 3; j++ {
				s.Put(p, int64(j), func() { order = append(order, "p") })
			}
		})
		k.Spawn("consumer", func(p *kernel.Proc) {
			for j := 0; j < 3; j++ {
				s.Get(p, func(int64) { order = append(order, "g") })
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 12 {
		t.Fatalf("order = %v", order)
	}
	for i, tag := range order {
		want := "p"
		if i%2 == 1 {
			want = "g"
		}
		if tag != want {
			t.Fatalf("order = %v: alternation broken at %d", order, i)
		}
	}
}

// The bounded-buffer server's reserved count blocks depositors at
// capacity even before their bodies complete.
func TestBoundedBufferReservationDiscipline(t *testing.T) {
	k := kernel.NewSim()
	bb := NewBoundedBuffer(k, 1)
	var order []string
	k.Spawn("p1", func(p *kernel.Proc) {
		bb.Deposit(p, 1, func() {
			order = append(order, "d1")
			p.Yield() // hold the admission while p2 tries
			p.Yield()
		})
	})
	k.Spawn("p2", func(p *kernel.Proc) {
		p.Yield()
		bb.Deposit(p, 2, func() { order = append(order, "d2") })
	})
	k.Spawn("consumer", func(p *kernel.Proc) {
		p.Yield()
		bb.Remove(p, func(int64) { order = append(order, "g1") })
		bb.Remove(p, func(int64) { order = append(order, "g2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[d1 g1 d2 g2]" {
		t.Fatalf("order = %v: second deposit must wait for the removal", order)
	}
}

// The disk server grants a pre-loaded batch in elevator order.
func TestDiskServerScanOrder(t *testing.T) {
	k := kernel.NewSim()
	d := NewDisk(k, 50, 200)
	var order []int64
	for _, track := range []int64{55, 10, 60, 90} {
		track := track
		k.Spawn("io", func(p *kernel.Proc) {
			d.Seek(p, track, func() {
				order = append(order, track)
				p.Yield()
				p.Yield()
			})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[55 60 90 10]" {
		t.Fatalf("service order = %v", order)
	}
}

// The alarm-clock server answers all due sleepers within the tick call.
func TestAlarmClockServerSynchronousTick(t *testing.T) {
	k := kernel.NewSim()
	ac := NewAlarmClock(k)
	woke := 0
	for i := 0; i < 2; i++ {
		k.Spawn("sleeper", func(p *kernel.Proc) {
			ac.WakeMe(p, 1, func() { woke++ })
		})
	}
	k.Spawn("clock", func(p *kernel.Proc) {
		p.Yield() // let sleepers register
		p.Yield()
		ac.Tick(p)
		p.Yield() // let the grants land
		if woke != 2 {
			t.Errorf("woke = %d after the due tick", woke)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 2 {
		t.Fatalf("woke = %d", woke)
	}
}
