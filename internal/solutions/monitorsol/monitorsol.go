// Package monitorsol implements the full problem suite with Hoare
// monitors [13].
//
// These solutions are objects of study for the evaluation engine (package
// eval) as well as working code: the §5.2 findings the engine reproduces —
// condition queues carry request-time and request-type information
// directly, priority waits carry parameters, synchronization state must be
// kept by hand as monitor-local counts, and the request-type/request-time
// conflict needs two-stage queueing — are all visible in this source.
package monitorsol

import (
	"repro/internal/kernel"
	"repro/internal/monitor"
	"repro/internal/problems"
)

// BoundedBuffer is the classic Hoare bounded buffer: local state (the
// slice) guards deposits and removals via two conditions.
type BoundedBuffer struct {
	m        *monitor.Monitor
	notFull  *monitor.Condition
	notEmpty *monitor.Condition
	buf      []int64
	capacity int
}

// NewBoundedBuffer creates a buffer with the given capacity.
func NewBoundedBuffer(capacity int) *BoundedBuffer {
	m := monitor.New("bounded-buffer")
	return &BoundedBuffer{
		m:        m,
		notFull:  m.NewCondition("notfull"),
		notEmpty: m.NewCondition("notempty"),
		capacity: capacity,
	}
}

// Cap implements problems.BoundedBuffer.
func (b *BoundedBuffer) Cap() int { return b.capacity }

// Deposit implements problems.BoundedBuffer.
func (b *BoundedBuffer) Deposit(p *kernel.Proc, item int64, body func()) {
	b.m.Enter(p)
	if len(b.buf) == b.capacity {
		b.notFull.Wait(p)
		// Hoare semantics: the condition holds on resumption.
	}
	body()
	b.buf = append(b.buf, item)
	b.notEmpty.Signal(p)
	b.m.Exit(p)
}

// Remove implements problems.BoundedBuffer.
func (b *BoundedBuffer) Remove(p *kernel.Proc, body func(int64)) {
	b.m.Enter(p)
	if len(b.buf) == 0 {
		b.notEmpty.Wait(p)
	}
	item := b.buf[0]
	b.buf = b.buf[1:]
	body(item)
	b.notFull.Signal(p)
	b.m.Exit(p)
}

// FCFS is the first-come-first-served allocator: a single FIFO condition
// queue is exactly the request-time information the problem needs.
type FCFS struct {
	m    *monitor.Monitor
	turn *monitor.Condition
	busy bool
}

// NewFCFS creates the allocator.
func NewFCFS() *FCFS {
	m := monitor.New("fcfs")
	return &FCFS{m: m, turn: m.NewCondition("turn")}
}

// Use implements problems.Resource.
func (f *FCFS) Use(p *kernel.Proc, body func()) {
	f.m.Enter(p)
	if f.busy || f.turn.Queue() {
		f.turn.Wait(p)
	}
	f.busy = true
	f.m.Exit(p)

	body()

	f.m.Enter(p)
	f.busy = false
	f.turn.Signal(p)
	f.m.Exit(p)
}

// rwState is the monitor-local bookkeeping shared by the readers–writers
// variants: synchronization state the paper notes monitors force the user
// to maintain by hand.
type rwState struct {
	m       *monitor.Monitor
	okRead  *monitor.Condition
	okWrite *monitor.Condition
	readers int
	writing bool
}

func newRWState(name string) *rwState {
	m := monitor.New(name)
	return &rwState{
		m:       m,
		okRead:  m.NewCondition("okread"),
		okWrite: m.NewCondition("okwrite"),
	}
}

// ReadersPriority is the Courtois–Heymans–Parnas problem 1 monitor: an
// arriving reader waits only for an *active* writer, and at write
// completion waiting readers are resumed in preference to waiting writers.
type ReadersPriority struct{ *rwState }

// NewReadersPriority creates the database.
func NewReadersPriority() *ReadersPriority {
	return &ReadersPriority{newRWState("readers-priority")}
}

// Read implements problems.RWStore.
func (d *ReadersPriority) Read(p *kernel.Proc, body func()) {
	d.m.Enter(p)
	if d.writing {
		d.okRead.Wait(p)
	}
	d.readers++
	d.okRead.Signal(p) // cascade: admit every waiting reader
	d.m.Exit(p)

	body()

	d.m.Enter(p)
	d.readers--
	if d.readers == 0 {
		d.okWrite.Signal(p)
	}
	d.m.Exit(p)
}

// Write implements problems.RWStore.
func (d *ReadersPriority) Write(p *kernel.Proc, body func()) {
	d.m.Enter(p)
	if d.writing || d.readers > 0 {
		d.okWrite.Wait(p)
	}
	d.writing = true
	d.m.Exit(p)

	body()

	d.m.Enter(p)
	d.writing = false
	if d.okRead.Queue() {
		d.okRead.Signal(p) // waiting readers beat waiting writers
	} else {
		d.okWrite.Signal(p)
	}
	d.m.Exit(p)
}

// WritersPriority is CHP problem 2: an arriving reader also waits when any
// writer is *waiting*, and writers are resumed in preference to readers.
// Note against ReadersPriority how little changes: the priority constraint
// is carried entirely by the two queue-preference sites, while the
// exclusion constraint (conditions for proceeding, active counts) is
// untouched — the constraint-independence finding of §5.2.
type WritersPriority struct{ *rwState }

// NewWritersPriority creates the database.
func NewWritersPriority() *WritersPriority {
	return &WritersPriority{newRWState("writers-priority")}
}

// Read implements problems.RWStore.
func (d *WritersPriority) Read(p *kernel.Proc, body func()) {
	d.m.Enter(p)
	if d.writing || d.okWrite.Queue() {
		d.okRead.Wait(p)
	}
	d.readers++
	if !d.okWrite.Queue() {
		d.okRead.Signal(p) // cascade only while no writer is waiting
	}
	d.m.Exit(p)

	body()

	d.m.Enter(p)
	d.readers--
	if d.readers == 0 {
		d.okWrite.Signal(p)
	}
	d.m.Exit(p)
}

// Write implements problems.RWStore.
func (d *WritersPriority) Write(p *kernel.Proc, body func()) {
	d.m.Enter(p)
	if d.writing || d.readers > 0 {
		d.okWrite.Wait(p)
	}
	d.writing = true
	d.m.Exit(p)

	body()

	d.m.Enter(p)
	d.writing = false
	if d.okWrite.Queue() {
		d.okWrite.Signal(p) // waiting writers beat waiting readers
	} else {
		d.okRead.Signal(p)
	}
	d.m.Exit(p)
}

// FCFSRW is the FCFS readers–writers variant and the §5.2 two-stage
// queueing demonstration: request order and request type conflict in
// monitors because both are carried by queues, so processes first line up
// on a single FIFO condition (order) and the monitor keeps a parallel
// queue of their types (type) to decide cascades.
type FCFSRW struct {
	m       *monitor.Monitor
	turn    *monitor.Condition
	types   []bool // parallel to turn's queue: true = reader
	readers int
	writing bool
}

// NewFCFSRW creates the database.
func NewFCFSRW() *FCFSRW {
	m := monitor.New("fcfs-rw")
	return &FCFSRW{m: m, turn: m.NewCondition("turn")}
}

// Read implements problems.RWStore.
func (d *FCFSRW) Read(p *kernel.Proc, body func()) {
	d.m.Enter(p)
	if d.writing || d.turn.Queue() {
		d.types = append(d.types, true)
		d.turn.Wait(p)
		d.types = d.types[1:] // we were the head
	}
	d.readers++
	if len(d.types) > 0 && d.types[0] {
		d.turn.Signal(p) // next in line is also a reader: cascade
	}
	d.m.Exit(p)

	body()

	d.m.Enter(p)
	d.readers--
	if d.readers == 0 && d.turn.Queue() {
		d.turn.Signal(p)
	}
	d.m.Exit(p)
}

// Write implements problems.RWStore.
func (d *FCFSRW) Write(p *kernel.Proc, body func()) {
	d.m.Enter(p)
	if d.writing || d.readers > 0 || d.turn.Queue() {
		d.types = append(d.types, false)
		d.turn.Wait(p)
		d.types = d.types[1:]
		// A writer may be signalled at read-completion while other reads
		// are still active only if readers==0; the signalling sites
		// guarantee it.
	}
	d.writing = true
	d.m.Exit(p)

	body()

	d.m.Enter(p)
	d.writing = false
	if d.turn.Queue() {
		d.turn.Signal(p)
	}
	d.m.Exit(p)
}

// Disk is Hoare's disk-head (elevator) scheduler: the priority wait
// carries the request parameter (the track) directly.
type Disk struct {
	m         *monitor.Monitor
	upsweep   *monitor.Condition
	downsweep *monitor.Condition
	headpos   int64
	up        bool
	busy      bool
	maxTrack  int64
}

// NewDisk creates the scheduler with the head parked at start.
func NewDisk(start, maxTrack int64) *Disk {
	m := monitor.New("disk")
	return &Disk{
		m:         m,
		upsweep:   m.NewCondition("upsweep"),
		downsweep: m.NewCondition("downsweep"),
		headpos:   start,
		up:        true,
		maxTrack:  maxTrack,
	}
}

// Seek implements problems.Disk.
func (d *Disk) Seek(p *kernel.Proc, track int64, body func()) {
	d.m.Enter(p)
	if d.busy {
		if track > d.headpos || (track == d.headpos && d.up) {
			d.upsweep.WaitRank(p, track)
		} else {
			d.downsweep.WaitRank(p, d.maxTrack-track)
		}
	}
	d.busy = true
	if track > d.headpos {
		d.up = true
	} else if track < d.headpos {
		d.up = false
	}
	d.headpos = track
	d.m.Exit(p)

	body()

	d.m.Enter(p)
	d.busy = false
	if d.up {
		if d.upsweep.Queue() {
			d.upsweep.Signal(p)
		} else if d.downsweep.Queue() {
			d.up = false
			d.downsweep.Signal(p)
		}
	} else {
		if d.downsweep.Queue() {
			d.downsweep.Signal(p)
		} else if d.upsweep.Queue() {
			d.up = true
			d.upsweep.Signal(p)
		}
	}
	d.m.Exit(p)
}

// AlarmClock is Hoare's alarm clock: priority wait ranked by absolute due
// time; each tick (and each wakeup) cascades to the next due sleeper.
type AlarmClock struct {
	m      *monitor.Monitor
	wakeup *monitor.Condition
	now    int64
}

// NewAlarmClock creates the clock at time zero.
func NewAlarmClock() *AlarmClock {
	m := monitor.New("alarm-clock")
	return &AlarmClock{m: m, wakeup: m.NewCondition("wakeup")}
}

// WakeMe implements problems.AlarmClock.
func (a *AlarmClock) WakeMe(p *kernel.Proc, ticks int64, body func()) {
	a.m.Enter(p)
	alarm := a.now + ticks
	if alarm > a.now {
		a.wakeup.WaitRank(p, alarm)
		// Cascade: wake the next sleeper if it is also due.
		if r, ok := a.wakeup.MinRank(); ok && r <= a.now {
			a.wakeup.Signal(p)
		}
	}
	body()
	a.m.Exit(p)
}

// Tick implements problems.AlarmClock.
func (a *AlarmClock) Tick(p *kernel.Proc) {
	a.m.Enter(p)
	a.now++
	if r, ok := a.wakeup.MinRank(); ok && r <= a.now {
		a.wakeup.Signal(p)
	}
	a.m.Exit(p)
}

// OneSlot is the one-slot buffer: the history fact "a put has completed"
// is modeled as the full flag.
type OneSlot struct {
	m        *monitor.Monitor
	nonFull  *monitor.Condition
	nonEmpty *monitor.Condition
	slot     int64
	full     bool
}

// NewOneSlot creates an empty slot.
func NewOneSlot() *OneSlot {
	m := monitor.New("one-slot")
	return &OneSlot{
		m:        m,
		nonFull:  m.NewCondition("nonfull"),
		nonEmpty: m.NewCondition("nonempty"),
	}
}

// Put implements problems.OneSlot.
func (s *OneSlot) Put(p *kernel.Proc, item int64, body func()) {
	s.m.Enter(p)
	if s.full {
		s.nonFull.Wait(p)
	}
	body()
	s.slot = item
	s.full = true
	s.nonEmpty.Signal(p)
	s.m.Exit(p)
}

// Get implements problems.OneSlot.
func (s *OneSlot) Get(p *kernel.Proc, body func(int64)) {
	s.m.Enter(p)
	if !s.full {
		s.nonEmpty.Wait(p)
	}
	body(s.slot)
	s.full = false
	s.nonFull.Signal(p)
	s.m.Exit(p)
}

// Compile-time checks that every solution satisfies its problem interface.
var (
	_ problems.BoundedBuffer = (*BoundedBuffer)(nil)
	_ problems.Resource      = (*FCFS)(nil)
	_ problems.RWStore       = (*ReadersPriority)(nil)
	_ problems.RWStore       = (*WritersPriority)(nil)
	_ problems.RWStore       = (*FCFSRW)(nil)
	_ problems.Disk          = (*Disk)(nil)
	_ problems.AlarmClock    = (*AlarmClock)(nil)
	_ problems.OneSlot       = (*OneSlot)(nil)
)
