package monitorsol

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/trace"
)

// These tests pin monitor-specific behaviors the conformance suite only
// checks indirectly: cascade wakeups, queue-preference sites, priority
// ranks, and the two-stage queue bookkeeping.

// At EndWrite, ALL waiting readers are admitted (cascade) before any
// writer — the readers-priority preference site.
func TestReadersPriorityCascadeDrainsAllReaders(t *testing.T) {
	k := kernel.NewSim()
	db := NewReadersPriority()
	var order []string
	k.Spawn("writer1", func(p *kernel.Proc) {
		db.Write(p, func() {
			order = append(order, "w1")
			for i := 0; i < 6; i++ {
				p.Yield() // three readers and writer2 arrive meanwhile
			}
		})
	})
	for i := 0; i < 3; i++ {
		k.Spawn("reader", func(p *kernel.Proc) {
			db.Read(p, func() { order = append(order, fmt.Sprintf("r%d", p.ID())) })
		})
	}
	k.Spawn("writer2", func(p *kernel.Proc) {
		p.Yield()
		db.Write(p, func() { order = append(order, "w2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 5 {
		t.Fatalf("order = %v", order)
	}
	if order[0] != "w1" || order[len(order)-1] != "w2" {
		t.Fatalf("order = %v, want w1 first, all readers, then w2", order)
	}
}

// In the writers-priority monitor, a reader arriving while a writer
// merely WAITS (not writes) must block — the okWrite.Queue() test.
func TestWritersPriorityReaderBlocksBehindWaitingWriter(t *testing.T) {
	k := kernel.NewSim()
	db := NewWritersPriority()
	var order []string
	k.Spawn("reader1", func(p *kernel.Proc) {
		db.Read(p, func() {
			order = append(order, "r1")
			for i := 0; i < 4; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("writer", func(p *kernel.Proc) {
		p.Yield()
		db.Write(p, func() { order = append(order, "w") })
	})
	k.Spawn("reader2", func(p *kernel.Proc) {
		p.Yield()
		p.Yield() // arrive after the writer queued
		db.Read(p, func() { order = append(order, "r2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[r1 w r2]" {
		t.Fatalf("order = %v: reader2 must wait behind the queued writer", order)
	}
}

// The FCFSRW two-stage bookkeeping: the types list mirrors the condition
// queue exactly through a mixed admission sequence.
func TestFCFSRWStrictArrivalOrder(t *testing.T) {
	k := kernel.NewSim()
	db := NewFCFSRW()
	var order []string
	add := func(tag string) func() {
		return func() { order = append(order, tag) }
	}
	k.Spawn("w1", func(p *kernel.Proc) {
		db.Write(p, func() {
			add("w1")()
			for i := 0; i < 6; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("r1", func(p *kernel.Proc) { db.Read(p, add("r1")) })
	k.Spawn("w2", func(p *kernel.Proc) { p.Yield(); db.Write(p, add("w2")) })
	k.Spawn("r2", func(p *kernel.Proc) { p.Yield(); p.Yield(); db.Read(p, add("r2")) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Arrival: w1 active, then r1, w2, r2 queue. FCFS: r1, w2, r2.
	if fmt.Sprint(order) != "[w1 r1 w2 r2]" {
		t.Fatalf("order = %v", order)
	}
}

// Hoare's disk monitor serves a pre-loaded batch in exact elevator order.
func TestDiskServesPreloadedBatchInScanOrder(t *testing.T) {
	k := kernel.NewSim()
	d := NewDisk(50, 200)
	r := trace.NewRecorder(k)
	cfg := problems.DiskConfig{
		Requests: []problems.DiskRequest{
			{Track: 55}, {Track: 10}, {Track: 60}, {Track: 90}, {Track: 20},
		},
		WorkYields: 3,
	}
	if err := problems.DriveDisk(k, d, r, cfg); err != nil {
		t.Fatal(err)
	}
	var order []int64
	for _, iv := range r.Events().MustIntervals() {
		order = append(order, iv.Arg)
	}
	if fmt.Sprint(order) != "[55 60 90 20 10]" {
		t.Fatalf("service order = %v, want SCAN from 50", order)
	}
}

// Two sleepers due at the same tick both wake on that tick — the
// signal cascade in WakeMe.
func TestAlarmClockCascadeSameDueTick(t *testing.T) {
	k := kernel.NewSim()
	ac := NewAlarmClock()
	woke := 0
	for i := 0; i < 3; i++ {
		k.Spawn("sleeper", func(p *kernel.Proc) {
			ac.WakeMe(p, 2, func() { woke++ })
		})
	}
	k.Spawn("clock", func(p *kernel.Proc) {
		for i := 0; i < 2; i++ {
			p.Yield()
			ac.Tick(p)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Fatalf("woke = %d, want 3 (cascade must drain equal ranks)", woke)
	}
}

func TestAlarmClockZeroTicksImmediate(t *testing.T) {
	k := kernel.NewSim()
	ac := NewAlarmClock()
	done := false
	k.Spawn("sleeper", func(p *kernel.Proc) {
		ac.WakeMe(p, 0, func() { done = true })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("WakeMe(0) blocked")
	}
}

// The bounded buffer hands slots to waiting producers one-for-one with
// removals (Hoare signal = direct handoff; no lost wakeups with many
// waiters).
func TestBoundedBufferManyWaitingProducers(t *testing.T) {
	k := kernel.NewSim()
	bb := NewBoundedBuffer(1)
	deposited := 0
	for i := 0; i < 4; i++ {
		k.Spawn("producer", func(p *kernel.Proc) {
			bb.Deposit(p, int64(p.ID()), func() { deposited++ })
		})
	}
	k.Spawn("consumer", func(p *kernel.Proc) {
		for i := 0; i < 4; i++ {
			bb.Remove(p, func(int64) {})
			p.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if deposited != 4 {
		t.Fatalf("deposited = %d", deposited)
	}
}

// OneSlot alternation from competing producers.
func TestOneSlotCompetingProducers(t *testing.T) {
	k := kernel.NewSim()
	s := NewOneSlot()
	var got []int64
	for i := 0; i < 2; i++ {
		k.Spawn("producer", func(p *kernel.Proc) {
			for j := 0; j < 3; j++ {
				s.Put(p, int64(p.ID()*10+j), func() {})
			}
		})
	}
	k.Spawn("consumer", func(p *kernel.Proc) {
		for i := 0; i < 6; i++ {
			s.Get(p, func(v int64) { got = append(got, v) })
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("got %d items", len(got))
	}
}

func TestFCFSSingleCondition(t *testing.T) {
	k := kernel.NewSim()
	f := NewFCFS()
	var order []int
	for i := 0; i < 5; i++ {
		k.Spawn("user", func(p *kernel.Proc) {
			f.Use(p, func() {
				order = append(order, p.ID())
				p.Yield()
			})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[1 2 3 4 5]" {
		t.Fatalf("order = %v", order)
	}
}
