// Package pathexprsol implements the problem suite with
// Campbell–Habermann path expressions [7], including the paper's Figure 1
// (readers-priority) and Figure 2 (writers-priority) solutions verbatim.
//
// The paper's §5.1 findings are all visible here:
//
//   - request type and exclusion: direct (the paths themselves);
//   - history: direct (the one-slot buffer is a two-element path);
//   - request time: accessible given longest-waiting selection, "although
//     additional request operations may be needed" (see FCFSRW's request
//     gate);
//   - priority: only indirect, via the Figure-1/Figure-2 synchronization-
//     procedure cascades — and the Figure-1 solution really does exhibit
//     the footnote-3 anomaly, which package eval demonstrates;
//   - parameters and local state: not expressible in paths at all; the
//     disk scheduler, alarm clock, and bounded buffer fall back to
//     synchronization procedures around explicit bookkeeping, with paths
//     reduced to supplying mutual exclusion.
package pathexprsol

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/pathexpr"
	"repro/internal/problems"
	"repro/internal/semaphore"
)

// Figure1Paths is the paper's Figure 1, verbatim.
const Figure1Paths = `
	path writeattempt end
	path { requestread } , requestwrite end
	path { read } , (openwrite ; write) end
`

// Figure2Paths is the paper's Figure 2, verbatim.
const Figure2Paths = `
	path readattempt end
	path requestread , { requestwrite } end
	path { openread ; read } , write end
`

// ReadersPriority is the Figure 1 solution. The procedure bodies follow
// the figure exactly:
//
//	requestwrite = begin openwrite end
//	writeattempt = begin requestwrite end
//	requestread  = begin read end
//	READ  = begin requestread end
//	WRITE = begin writeattempt ; write end
//
// Footnote 3 of the paper proves this solution wrong: a second writer can
// overtake a waiting reader. We implement it anyway — reproducing that
// anomaly is experiment F1.
type ReadersPriority struct {
	set *pathexpr.Set
}

// NewReadersPriority compiles Figure 1.
func NewReadersPriority() *ReadersPriority {
	return &ReadersPriority{set: pathexpr.MustCompile(Figure1Paths)}
}

// Read implements problems.RWStore: READ = begin requestread end, with
// requestread = begin read end.
func (d *ReadersPriority) Read(p *kernel.Proc, body func()) {
	d.set.Exec(p, "requestread", func() {
		d.set.Exec(p, "read", body)
	})
}

// Write implements problems.RWStore: WRITE = begin writeattempt ; write
// end, with writeattempt = begin requestwrite end and requestwrite =
// begin openwrite end.
func (d *ReadersPriority) Write(p *kernel.Proc, body func()) {
	d.set.Exec(p, "writeattempt", func() {
		d.set.Exec(p, "requestwrite", func() {
			d.set.Exec(p, "openwrite", func() {})
		})
	})
	d.set.Exec(p, "write", body)
}

// WritersPriority is the Figure 2 solution, verbatim:
//
//	readattempt  = begin requestread end
//	requestread  = begin openread end
//	requestwrite = begin write end
//	READ  = begin readattempt ; read end
//	WRITE = begin requestwrite end
type WritersPriority struct {
	set *pathexpr.Set
}

// NewWritersPriority compiles Figure 2.
func NewWritersPriority() *WritersPriority {
	return &WritersPriority{set: pathexpr.MustCompile(Figure2Paths)}
}

// Read implements problems.RWStore.
func (d *WritersPriority) Read(p *kernel.Proc, body func()) {
	d.set.Exec(p, "readattempt", func() {
		d.set.Exec(p, "requestread", func() {
			d.set.Exec(p, "openread", func() {})
		})
	})
	d.set.Exec(p, "read", body)
}

// Write implements problems.RWStore.
func (d *WritersPriority) Write(p *kernel.Proc, body func()) {
	d.set.Exec(p, "requestwrite", func() {
		d.set.Exec(p, "write", body)
	})
}

// FCFSRW needs the "additional request operations" of §5.1 in earnest: a
// pass gate (FIFO by the longest-waiting selection rule) must stay HELD
// until the operation is admitted, or a late reader could join the read
// burst past a writer already waiting. Admission is therefore split into
// start/end halves so the start can be executed inside the pass bracket
// while the body runs outside it:
//
//	path pass end
//	path {startread ; endread} , (startwrite ; endwrite) end
//
// READ  = pass { startread } ; body ; endread
//
//	WRITE = pass { startwrite } ; body ; endwrite
type FCFSRW struct {
	set *pathexpr.Set
}

// NewFCFSRW compiles the two paths.
func NewFCFSRW() *FCFSRW {
	return &FCFSRW{set: pathexpr.MustCompile(
		"path pass end",
		"path {startread ; endread} , (startwrite ; endwrite) end",
	)}
}

// Read implements problems.RWStore.
func (d *FCFSRW) Read(p *kernel.Proc, body func()) {
	d.set.Exec(p, "pass", func() {
		d.set.Exec(p, "startread", func() {})
	})
	body()
	d.set.Exec(p, "endread", func() {})
}

// Write implements problems.RWStore.
func (d *FCFSRW) Write(p *kernel.Proc, body func()) {
	d.set.Exec(p, "pass", func() {
		d.set.Exec(p, "startwrite", func() {})
	})
	body()
	d.set.Exec(p, "endwrite", func() {})
}

// FCFS: the single-operation path serializes executions, and FIFO
// semaphore queues make the service order the arrival order.
type FCFS struct {
	set *pathexpr.Set
}

// NewFCFS compiles the path.
func NewFCFS() *FCFS {
	return &FCFS{set: pathexpr.MustCompile("path use end")}
}

// Use implements problems.Resource.
func (f *FCFS) Use(p *kernel.Proc, body func()) {
	f.set.Exec(p, "use", body)
}

// OneSlot is Campbell–Habermann's own example: the whole synchronization
// scheme is one path. History information is the path's position.
type OneSlot struct {
	set  *pathexpr.Set
	slot int64
}

// NewOneSlot compiles the path.
func NewOneSlot() *OneSlot {
	return &OneSlot{set: pathexpr.MustCompile("path put ; get end")}
}

// Put implements problems.OneSlot.
func (s *OneSlot) Put(p *kernel.Proc, item int64, body func()) {
	s.set.Exec(p, "put", func() {
		body()
		s.slot = item
	})
}

// Get implements problems.OneSlot.
func (s *OneSlot) Get(p *kernel.Proc, body func(int64)) {
	s.set.Exec(p, "get", func() {
		body(s.slot)
	})
}

// BoundedBuffer: paths cannot express "the buffer is full" (local state),
// so the counting is done by auxiliary semaphores acting as
// synchronization procedures — the §5.1 finding — while a path supplies
// the operations' mutual exclusion.
type BoundedBuffer struct {
	set      *pathexpr.Set
	slots    *semaphore.Semaphore
	items    *semaphore.Semaphore
	buf      []int64
	capacity int
}

// NewBoundedBuffer creates a buffer with the given capacity.
func NewBoundedBuffer(capacity int) *BoundedBuffer {
	return &BoundedBuffer{
		set:      pathexpr.MustCompile("path deposit , remove end"),
		slots:    semaphore.New(int64(capacity)),
		items:    semaphore.New(0),
		capacity: capacity,
	}
}

// Cap implements problems.BoundedBuffer.
func (b *BoundedBuffer) Cap() int { return b.capacity }

// Deposit implements problems.BoundedBuffer.
func (b *BoundedBuffer) Deposit(p *kernel.Proc, item int64, body func()) {
	b.slots.P(p) // synchronization procedure: await a free slot
	b.set.Exec(p, "deposit", func() {
		body()
		b.buf = append(b.buf, item)
	})
	b.items.V()
}

// Remove implements problems.BoundedBuffer.
func (b *BoundedBuffer) Remove(p *kernel.Proc, body func(int64)) {
	b.items.P(p) // synchronization procedure: await an item
	b.set.Exec(p, "remove", func() {
		item := b.buf[0]
		b.buf = b.buf[1:]
		body(item)
	})
	b.slots.V()
}

// Disk: request parameters are invisible to paths, so the elevator lives
// entirely in synchronization procedures; the lock/unlock path plays the
// role of a binary semaphore (its alternation is exactly mutual
// exclusion). This is the paper's conclusion about parameter information
// made concrete: the mechanism contributes nothing but the mutex.
type Disk struct {
	set     *pathexpr.Set
	pending []*diskReq
	headpos int64
	up      bool
	busy    bool
}

type diskReq struct {
	track int64
	gate  *semaphore.Semaphore
}

// NewDisk creates the scheduler with the head parked at start.
func NewDisk(start, maxTrack int64) *Disk {
	return &Disk{
		set:     pathexpr.MustCompile("path lock ; unlock end"),
		headpos: start,
		up:      true,
	}
}

func (d *Disk) lock(p *kernel.Proc)   { d.set.Exec(p, "lock", func() {}) }
func (d *Disk) unlock(p *kernel.Proc) { d.set.Exec(p, "unlock", func() {}) }

// Seek implements problems.Disk.
func (d *Disk) Seek(p *kernel.Proc, track int64, body func()) {
	d.lock(p)
	if !d.busy {
		d.busy = true
		d.moveTo(track)
		d.unlock(p)
	} else {
		req := &diskReq{track: track, gate: semaphore.New(0)}
		d.pending = append(d.pending, req)
		d.unlock(p)
		req.gate.P(p)
	}

	body()

	d.lock(p)
	if next := d.pickNext(); next != nil {
		d.moveTo(next.track)
		d.unlock(p)
		next.gate.V()
	} else {
		d.busy = false
		d.unlock(p)
	}
}

func (d *Disk) moveTo(track int64) {
	if track > d.headpos {
		d.up = true
	} else if track < d.headpos {
		d.up = false
	}
	d.headpos = track
}

func (d *Disk) pickNext() *diskReq {
	if len(d.pending) == 0 {
		return nil
	}
	bestFwd, bestRev := -1, -1
	for i, r := range d.pending {
		if d.up {
			if r.track >= d.headpos && (bestFwd < 0 || r.track < d.pending[bestFwd].track) {
				bestFwd = i
			}
			if r.track < d.headpos && (bestRev < 0 || r.track > d.pending[bestRev].track) {
				bestRev = i
			}
		} else {
			if r.track <= d.headpos && (bestFwd < 0 || r.track > d.pending[bestFwd].track) {
				bestFwd = i
			}
			if r.track > d.headpos && (bestRev < 0 || r.track < d.pending[bestRev].track) {
				bestRev = i
			}
		}
	}
	idx := bestFwd
	if idx < 0 {
		idx = bestRev
	}
	req := d.pending[idx]
	d.pending = append(d.pending[:idx], d.pending[idx+1:]...)
	return req
}

// AlarmClock: like the disk, all the scheduling is synchronization
// procedures behind a path-built mutex — the alarmclock case the paper
// attributes to [11].
type AlarmClock struct {
	set     *pathexpr.Set
	now     int64
	pending []*alarmReq
}

type alarmReq struct {
	due  int64
	gate *semaphore.Semaphore
}

// NewAlarmClock creates the clock at time zero.
func NewAlarmClock() *AlarmClock {
	return &AlarmClock{set: pathexpr.MustCompile("path lock ; unlock end")}
}

func (a *AlarmClock) lock(p *kernel.Proc)   { a.set.Exec(p, "lock", func() {}) }
func (a *AlarmClock) unlock(p *kernel.Proc) { a.set.Exec(p, "unlock", func() {}) }

// WakeMe implements problems.AlarmClock.
func (a *AlarmClock) WakeMe(p *kernel.Proc, ticks int64, body func()) {
	a.lock(p)
	due := a.now + ticks
	if due <= a.now {
		a.unlock(p)
		body()
		return
	}
	req := &alarmReq{due: due, gate: semaphore.New(0)}
	a.pending = append(a.pending, req)
	a.unlock(p)
	req.gate.P(p)
	body()
}

// Tick implements problems.AlarmClock.
func (a *AlarmClock) Tick(p *kernel.Proc) {
	a.lock(p)
	a.now++
	var due []*alarmReq
	rest := a.pending[:0]
	for _, r := range a.pending {
		if r.due <= a.now {
			due = append(due, r)
		} else {
			rest = append(rest, r)
		}
	}
	a.pending = rest
	a.unlock(p)
	for _, r := range due {
		r.gate.V()
	}
}

// Compile-time checks that every solution satisfies its problem interface.
var (
	_ problems.BoundedBuffer = (*BoundedBuffer)(nil)
	_ problems.Resource      = (*FCFS)(nil)
	_ problems.RWStore       = (*ReadersPriority)(nil)
	_ problems.RWStore       = (*WritersPriority)(nil)
	_ problems.RWStore       = (*FCFSRW)(nil)
	_ problems.Disk          = (*Disk)(nil)
	_ problems.AlarmClock    = (*AlarmClock)(nil)
	_ problems.OneSlot       = (*OneSlot)(nil)
)

// BoundedBufferNumeric is the second-generation dialect version of the
// bounded buffer: with the Flon–Habermann numeric operator the whole
// synchronization scheme is ONE path and the auxiliary semaphores of
// BoundedBuffer disappear — the paper's §5.1 observation that "the
// weaknesses revealed by this method of analysis correspond … with those
// that the mechanism designers have attempted to correct in later
// versions", made executable (experiment E1).
type BoundedBufferNumeric struct {
	set      *pathexpr.Set
	buf      []int64
	capacity int
}

// NewBoundedBufferNumeric creates a buffer with the given capacity.
// Two paths carry the whole scheme: the numeric path is the occupancy
// discipline (deposits lead removes by at most capacity), and the
// selection path serializes the operations — both pure path dialect.
func NewBoundedBufferNumeric(capacity int) *BoundedBufferNumeric {
	return &BoundedBufferNumeric{
		set: pathexpr.MustCompile(
			fmt.Sprintf("path %d : deposit ; remove end", capacity),
			"path deposit , remove end",
		),
		capacity: capacity,
	}
}

// Cap implements problems.BoundedBuffer.
func (b *BoundedBufferNumeric) Cap() int { return b.capacity }

// Deposit implements problems.BoundedBuffer.
func (b *BoundedBufferNumeric) Deposit(p *kernel.Proc, item int64, body func()) {
	b.set.Exec(p, "deposit", func() {
		body()
		b.buf = append(b.buf, item)
	})
}

// Remove implements problems.BoundedBuffer.
func (b *BoundedBufferNumeric) Remove(p *kernel.Proc, body func(int64)) {
	b.set.Exec(p, "remove", func() {
		item := b.buf[0]
		b.buf = b.buf[1:]
		body(item)
	})
}

// Paths reports the solution's path declarations in canonical form, for
// the E1 report.
func (b *BoundedBufferNumeric) Paths() []string {
	var out []string
	for _, p := range b.set.Paths() {
		out = append(out, p.String())
	}
	return out
}

var _ problems.BoundedBuffer = (*BoundedBufferNumeric)(nil)
